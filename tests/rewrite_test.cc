// Tests for query answering through mappings (rewriting, no target
// materialization). The ground truth throughout is chase + CertainAnswers.
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "rewrite/rewrite.h"
#include "workload/generators.h"

namespace mm2::rewrite {
namespace {

using instance::Instance;
using instance::Tuple;
using instance::Value;
using logic::Atom;
using logic::ConjunctiveQuery;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Term V(const char* name) { return Term::Var(name); }
Term C(const char* s) { return Term::Const(Value::String(s)); }

model::Schema Src() {
  return SchemaBuilder("S", Metamodel::kRelational)
      .Relation("Names", {{"SID", DataType::Int64()},
                          {"Name", DataType::String()}},
                {"SID"})
      .Relation("Addresses", {{"SID", DataType::Int64()},
                              {"Address", DataType::String()},
                              {"Country", DataType::String()}},
                {"SID"})
      .Build();
}

model::Schema Tgt() {
  return SchemaBuilder("T", Metamodel::kRelational)
      .Relation("NamesP", {{"SID", DataType::Int64()},
                           {"Name", DataType::String()}},
                {"SID"})
      .Relation("Foreign", {{"SID", DataType::Int64()},
                            {"Address", DataType::String()},
                            {"Country", DataType::String()}},
                {"SID"})
      .Build();
}

Mapping EvolveMapping() {
  Tgd names;
  names.body = {Atom{"Names", {V("s"), V("n")}}};
  names.head = {Atom{"NamesP", {V("s"), V("n")}}};
  Tgd foreign;
  foreign.body = {Atom{"Addresses", {V("s"), V("a"), V("c")}}};
  foreign.head = {Atom{"Foreign", {V("s"), V("a"), V("c")}}};
  return Mapping::FromTgds("m", Src(), Tgt(), {names, foreign});
}

Instance SrcDb() {
  Instance db;
  db.DeclareRelation("Names", 2);
  db.DeclareRelation("Addresses", 3);
  EXPECT_TRUE(db.Insert("Names", {Value::Int64(1), Value::String("Ada")}).ok());
  EXPECT_TRUE(db.Insert("Names", {Value::Int64(2), Value::String("Bob")}).ok());
  EXPECT_TRUE(db.Insert("Addresses", {Value::Int64(1), Value::String("12 Oak"),
                                      Value::String("US")})
                  .ok());
  EXPECT_TRUE(db.Insert("Addresses", {Value::Int64(2), Value::String("5 Rue"),
                                      Value::String("FR")})
                  .ok());
  return db;
}

std::set<Tuple> ChaseGroundTruth(const Mapping& mapping,
                                 const ConjunctiveQuery& query,
                                 const Instance& source) {
  auto chased = chase::RunChase(mapping, source);
  EXPECT_TRUE(chased.ok());
  auto answers = chase::CertainAnswers(query, chased->target);
  EXPECT_TRUE(answers.ok());
  return std::set<Tuple>(answers->begin(), answers->end());
}

TEST(RewriteTest, SingleAtomQueryAgreesWithChase) {
  ConjunctiveQuery q;
  q.head = Atom{"Q", {V("n")}};
  q.body = {Atom{"NamesP", {V("s"), V("n")}}};
  auto answers = AnswerOnSource(EvolveMapping(), q, SrcDb());
  ASSERT_TRUE(answers.ok()) << answers.status();
  std::set<Tuple> got(answers->begin(), answers->end());
  EXPECT_EQ(got, ChaseGroundTruth(EvolveMapping(), q, SrcDb()));
  EXPECT_EQ(got.size(), 2u);
}

TEST(RewriteTest, JoinQueryAgreesWithChase) {
  // Join across target relations on the carried SID.
  ConjunctiveQuery q;
  q.head = Atom{"Q", {V("n"), V("a")}};
  q.body = {Atom{"NamesP", {V("s"), V("n")}},
            Atom{"Foreign", {V("s"), V("a"), V("c")}}};
  auto answers = AnswerOnSource(EvolveMapping(), q, SrcDb());
  ASSERT_TRUE(answers.ok());
  std::set<Tuple> got(answers->begin(), answers->end());
  EXPECT_EQ(got, ChaseGroundTruth(EvolveMapping(), q, SrcDb()));
  EXPECT_EQ(got.size(), 2u);
}

TEST(RewriteTest, ConstantInQueryFilters) {
  ConjunctiveQuery q;
  q.head = Atom{"Q", {V("a")}};
  q.body = {Atom{"Foreign", {V("s"), V("a"), C("US")}}};
  auto answers = AnswerOnSource(EvolveMapping(), q, SrcDb());
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][0], Value::String("12 Oak"));
}

TEST(RewriteTest, ExistentialPositionsAreNotCertain) {
  // Mapping invents the target column: asking for it certainly must yield
  // nothing, while projecting it away yields everything.
  Tgd invent;
  invent.body = {Atom{"Names", {V("s"), V("n")}}};
  invent.head = {Atom{"Foreign", {V("s"), V("a"), V("c")}}};  // a, c invented
  Mapping m = Mapping::FromTgds("m", Src(), Tgt(), {invent});

  ConjunctiveQuery ask_invented;
  ask_invented.head = Atom{"Q", {V("a")}};
  ask_invented.body = {Atom{"Foreign", {V("s"), V("a"), V("c")}}};
  auto none = AnswerOnSource(m, ask_invented, SrcDb());
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_EQ(ChaseGroundTruth(m, ask_invented, SrcDb()).size(), 0u);

  ConjunctiveQuery ask_sid;
  ask_sid.head = Atom{"Q", {V("s")}};
  ask_sid.body = {Atom{"Foreign", {V("s"), V("a"), V("c")}}};
  auto sids = AnswerOnSource(m, ask_sid, SrcDb());
  ASSERT_TRUE(sids.ok());
  EXPECT_EQ(sids->size(), 2u);
}

TEST(RewriteTest, JoinOnInventedValueIsCertain) {
  // Same existential shared through one rule head: joins on it succeed
  // certainly even though its value is unknown (the naive-table effect).
  model::Schema tgt =
      SchemaBuilder("T2", Metamodel::kRelational)
          .Relation("A", {{"x", DataType::Int64()}, {"e", DataType::String()}})
          .Relation("B", {{"e", DataType::String()}, {"x", DataType::Int64()}})
          .Build();
  Tgd tgd;
  tgd.body = {Atom{"Names", {V("s"), V("n")}}};
  tgd.head = {Atom{"A", {V("s"), V("e")}}, Atom{"B", {V("e"), V("s")}}};
  Mapping m = Mapping::FromTgds("m", Src(), tgt, {tgd});

  ConjunctiveQuery q;
  q.head = Atom{"Q", {V("x"), V("y")}};
  q.body = {Atom{"A", {V("x"), V("e")}}, Atom{"B", {V("e"), V("y")}}};
  auto answers = AnswerOnSource(m, q, SrcDb());
  ASSERT_TRUE(answers.ok());
  std::set<Tuple> got(answers->begin(), answers->end());
  EXPECT_EQ(got, ChaseGroundTruth(m, q, SrcDb()));
  // x joins to itself through the shared existential.
  EXPECT_TRUE(got.count({Value::Int64(1), Value::Int64(1)}) > 0);
}

TEST(RewriteTest, UnmatchableQueryRelationYieldsNothing) {
  ConjunctiveQuery q;
  q.head = Atom{"Q", {V("x")}};
  q.body = {Atom{"NoSuchRelation", {V("x")}}};
  auto result = RewriteQuery(EvolveMapping(), q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dropped_unresolvable, 1u);
  EXPECT_TRUE(result->rules.clauses.empty());
}

TEST(RewriteTest, InvalidQueryRejected) {
  ConjunctiveQuery q;
  q.head = Atom{"Q", {V("unbound")}};
  q.body = {Atom{"NamesP", {V("s"), V("n")}}};
  EXPECT_FALSE(RewriteQuery(EvolveMapping(), q).ok());
}

TEST(RewriteTest, ChainPropagationMatchesStepwiseExchange) {
  mm2::workload::EvolutionChain chain =
      mm2::workload::MakeEvolutionChain(3, 4);
  mm2::workload::Rng rng(9);
  Instance db = mm2::workload::MakeChainInstance(chain, 12, &rng);

  // Query over the last schema: join Left and Right on the key.
  const model::Schema& last = chain.schemas.back();
  const model::Relation& left = last.relations()[0];
  const model::Relation& right = last.relations()[1];
  ConjunctiveQuery q;
  q.head = Atom{"Q", {V("k")}};
  Atom la;
  la.relation = left.name();
  la.terms.push_back(V("k"));
  for (std::size_t i = 1; i < left.arity(); ++i) {
    la.terms.push_back(V(("l" + std::to_string(i)).c_str()));
  }
  Atom ra;
  ra.relation = right.name();
  ra.terms.push_back(V("k"));
  for (std::size_t i = 1; i < right.arity(); ++i) {
    ra.terms.push_back(V(("r" + std::to_string(i)).c_str()));
  }
  q.body = {la, ra};

  auto through_chain = AnswerThroughChain(chain.steps, q, db);
  ASSERT_TRUE(through_chain.ok()) << through_chain.status();

  // Ground truth: migrate stepwise, then query.
  Instance current = db;
  for (const Mapping& step : chain.steps) {
    auto result = chase::RunChase(step, current);
    ASSERT_TRUE(result.ok());
    current = result->target;
  }
  auto truth = chase::CertainAnswers(q, current);
  ASSERT_TRUE(truth.ok());
  std::set<Tuple> got(through_chain->begin(), through_chain->end());
  std::set<Tuple> want(truth->begin(), truth->end());
  EXPECT_EQ(got, want);
  EXPECT_EQ(got.size(), 12u);
}

TEST(RewriteTest, EmptyChainRejected) {
  ConjunctiveQuery q;
  q.head = Atom{"Q", {V("x")}};
  q.body = {Atom{"R", {V("x")}}};
  EXPECT_FALSE(AnswerThroughChain({}, q, Instance()).ok());
}

}  // namespace
}  // namespace mm2::rewrite
