// Tests for the chase resource-budget watchdog: graceful stops on tuple /
// wall / rss budgets, external cancellation, breach diagnostics (dominant
// rule + flight-recorder dump), and budget forwarding through
// runtime::Exchange.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "instance/instance.h"
#include "logic/formula.h"
#include "logic/mapping.h"
#include "model/schema.h"
#include "obs/obs.h"
#include "runtime/runtime.h"

namespace mm2::chase {
namespace {

using instance::Instance;
using instance::Value;
using logic::Atom;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Term V(const char* name) { return Term::Var(name); }

// R(x,y) -> exists z. R(y,z): provably non-terminating under the
// restricted chase — every round invents a fresh null that re-enables the
// body, so only a budget (or max_rounds) can stop it.
Tgd DivergingTgd() {
  Tgd walk;
  walk.body = {Atom{"R", {V("x"), V("y")}}};
  walk.head = {Atom{"R", {V("y"), Term::Var("z")}}};
  return walk;
}

Instance SeedInstance() {
  Instance db;
  db.DeclareRelation("R", 2);
  EXPECT_TRUE(db.Insert("R", {Value::Int64(1), Value::Int64(2)}).ok());
  return db;
}

TEST(WatchdogTest, TupleBudgetStopsDivergingChaseGracefully) {
  ChaseOptions options;
  options.tuple_budget = 25;
  options.max_rounds = 100000;  // the budget must fire long before this
  auto result = ChaseInstance({DivergingTgd()}, {}, SeedInstance(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->breach.has_value());
  const ChaseBreach& breach = result->breach.value();
  EXPECT_EQ(breach.kind, "tuples");
  EXPECT_EQ(breach.limit, 25u);
  EXPECT_GT(breach.observed, 25u);
  EXPECT_GT(breach.round, 0u);
  // The dominant rule is named (there is only one candidate here).
  EXPECT_FALSE(breach.dominant_rule.empty());
  EXPECT_NE(breach.diagnostic.find("tuples budget breached"),
            std::string::npos);
  EXPECT_NE(breach.diagnostic.find(breach.dominant_rule), std::string::npos);
  // Partial state is intact: stats counted the completed rounds and the
  // target holds everything derived before the stop.
  EXPECT_GT(result->stats.rounds, 0u);
  EXPECT_GT(result->stats.tgd_firings, 0u);
  EXPECT_GT(result->target.TotalTuples(), 1u);
}

TEST(WatchdogTest, BreachDiagnosticCarriesFlightRecorderDump) {
  obs::Context obs;
  obs.events.Configure(obs::EventFormat::kText, /*sink=*/nullptr);
  ChaseOptions options;
  options.tuple_budget = 10;
  options.max_rounds = 100000;
  options.obs = &obs;
  auto result = ChaseInstance({DivergingTgd()}, {}, SeedInstance(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->breach.has_value());
  // Heartbeats were recorded each round, the breach event closed the ring,
  // and the diagnostic embeds the dump.
  EXPECT_NE(result->breach->diagnostic.find("-- flight recorder"),
            std::string::npos);
  EXPECT_NE(result->breach->diagnostic.find("chase.heartbeat"),
            std::string::npos);
  bool saw_heartbeat = false;
  bool saw_breach = false;
  for (const obs::Event& e : obs.events.Recent()) {
    if (e.name == "chase.heartbeat") saw_heartbeat = true;
    if (e.name == "chase.breach") saw_breach = true;
  }
  EXPECT_TRUE(saw_heartbeat);
  EXPECT_TRUE(saw_breach);
  // The budget stop is mirrored as a counter.
  obs::MetricsSnapshot snap = obs.metrics.Snapshot();
  bool found = false;
  for (const obs::CounterSnapshot& c : snap.counters) {
    if (c.name == "chase.budget_stops") {
      found = true;
      EXPECT_EQ(c.value, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(WatchdogTest, HeartbeatRefreshesProgressGauges) {
  obs::Context obs;
  ChaseOptions options;
  options.tuple_budget = 10;
  options.max_rounds = 100000;
  options.obs = &obs;
  auto result = ChaseInstance({DivergingTgd()}, {}, SeedInstance(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  obs::MetricsSnapshot snap = obs.metrics.Snapshot();
  std::int64_t round = -1;
  std::int64_t total = -1;
  std::int64_t nulls = -1;
  for (const obs::GaugeSnapshot& g : snap.gauges) {
    if (g.name == "chase.progress.round") round = g.value;
    if (g.name == "chase.progress.total_tuples") total = g.value;
    if (g.name == "chase.progress.nulls_created") nulls = g.value;
  }
  EXPECT_EQ(round, static_cast<std::int64_t>(result->stats.rounds));
  EXPECT_EQ(total, static_cast<std::int64_t>(result->target.TotalTuples()));
  EXPECT_EQ(nulls, static_cast<std::int64_t>(result->stats.nulls_created));
}

TEST(WatchdogTest, WallBudgetStopsDivergingChase) {
  ChaseOptions options;
  options.wall_budget_us = 2000;  // 2ms: a few rounds at most
  options.max_rounds = 100000000;
  auto result = ChaseInstance({DivergingTgd()}, {}, SeedInstance(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->breach.has_value());
  EXPECT_EQ(result->breach->kind, "wall_us");
  EXPECT_GT(result->breach->observed, result->breach->limit);
}

TEST(WatchdogTest, RssBudgetBelowCurrentUsageTripsImmediately) {
  ChaseOptions options;
  options.rss_budget_kb = 1;  // any live process is over this
  options.max_rounds = 100000;
  auto result = ChaseInstance({DivergingTgd()}, {}, SeedInstance(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->breach.has_value());
  EXPECT_EQ(result->breach->kind, "rss_kb");
  EXPECT_EQ(result->breach->round, 1u);
}

TEST(WatchdogTest, ZeroBudgetsMeanUnlimited) {
  // A terminating rule set under all-zero budgets runs exactly as before.
  Tgd copy;
  copy.body = {Atom{"R", {V("x"), V("y")}}};
  copy.head = {Atom{"Q", {V("x")}}};
  ChaseOptions options;
  auto result = ChaseInstance({copy}, {}, SeedInstance(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->breach.has_value());
  EXPECT_EQ(result->target.Find("Q")->size(), 1u);
}

TEST(WatchdogTest, PreTrippedExternalTokenStopsAfterFirstRound) {
  obs::CancelToken token;
  token.RequestStop("admission control");
  ChaseOptions options;
  options.cancel = &token;
  options.max_rounds = 100000;
  auto result = ChaseInstance({DivergingTgd()}, {}, SeedInstance(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->breach.has_value());
  EXPECT_EQ(result->breach->kind, "cancel");
  EXPECT_EQ(result->breach->round, 1u);
  EXPECT_NE(result->breach->diagnostic.find("admission control"),
            std::string::npos);
}

TEST(WatchdogTest, BudgetsWorkAtEveryThreadCount) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ChaseOptions options;
    options.tuple_budget = 25;
    options.threads = threads;
    options.max_rounds = 100000;
    auto result =
        ChaseInstance({DivergingTgd()}, {}, SeedInstance(), options);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result->breach.has_value()) << "threads=" << threads;
    EXPECT_EQ(result->breach->kind, "tuples");
  }
}

TEST(WatchdogTest, ComputeCoreHonorsCancelToken) {
  // A pre-tripped token returns the input unchanged (still a valid
  // solution, just not minimized).
  Instance db;
  db.DeclareRelation("P", 2);
  ASSERT_TRUE(db.Insert("P", {Value::Int64(1), Value::Int64(2)}).ok());
  ASSERT_TRUE(db.Insert("P", {Value::Int64(1), Value::LabeledNull(7)}).ok());
  obs::CancelToken token;
  token.RequestStop("stop");
  Instance partial = ComputeCore(db, nullptr, 0, &token);
  EXPECT_EQ(partial.TotalTuples(), 2u);
  // Without the token the redundant null-tuple folds away.
  Instance core = ComputeCore(db);
  EXPECT_EQ(core.TotalTuples(), 1u);
}

TEST(WatchdogTest, MaxRoundsErrorCarriesFlightDump) {
  obs::Context obs;
  obs.events.Configure(obs::EventFormat::kText, /*sink=*/nullptr);
  ChaseOptions options;
  options.max_rounds = 5;
  options.obs = &obs;
  auto result = ChaseInstance({DivergingTgd()}, {}, SeedInstance(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("max_rounds"), std::string::npos);
  EXPECT_NE(result.status().message().find("-- flight recorder"),
            std::string::npos);
}

TEST(WatchdogForesightTest, AutoArmsTupleBudgetOnNonTerminatingClosure) {
  // The known-negative classifier case: R(x,y) -> exists z. R(y,z) cycles
  // through a special edge, so a stratified run with no explicit budget
  // must arm a conservative tuple budget on its own and stop gracefully
  // instead of chasing forever.
  obs::Context obs;
  std::ostringstream sink;
  obs.events.Configure(obs::EventFormat::kText, &sink);
  ChaseOptions options;
  options.stratified = true;
  options.max_rounds = 100000000;  // foresight must fire long before this
  options.obs = &obs;
  auto result = ChaseInstance({DivergingTgd()}, {}, SeedInstance(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->breach.has_value());
  EXPECT_EQ(result->breach->kind, "tuples");
  EXPECT_TRUE(result->stats.foresight_armed);
  EXPECT_FALSE(result->stats.predicted_terminating);
  // The warning event announced the arming before the chase started (the
  // sink, not the ring: thousands of budgeted rounds of heartbeats have
  // long since evicted it from the flight recorder).
  std::string events = sink.str();
  std::size_t foresight_at = events.find("chase.foresight");
  ASSERT_NE(foresight_at, std::string::npos);
  EXPECT_NE(events.find("warn", 0), std::string::npos);
  EXPECT_NE(events.find("termination=potentially_non_terminating"),
            std::string::npos);
  EXPECT_NE(events.find("auto_tuple_budget="), std::string::npos);
  EXPECT_LT(foresight_at, events.find("chase.heartbeat"));
  // Mirrored into the metric families explain reads.
  obs::MetricsSnapshot snap = obs.metrics.Snapshot();
  const obs::CounterSnapshot* armed = snap.FindCounter("chase.foresight.armed");
  ASSERT_NE(armed, nullptr);
  EXPECT_EQ(armed->value, 1u);
  const obs::GaugeSnapshot* terminating =
      snap.FindGauge("chase.foresight.terminating");
  ASSERT_NE(terminating, nullptr);
  EXPECT_EQ(terminating->value, 0);
}

TEST(WatchdogForesightTest, ExplicitBudgetSuppressesAutoArm) {
  // An explicit (generous) wall budget means the user already bounded the
  // run; foresight must not stack a tuple budget on top.
  ChaseOptions options;
  options.stratified = true;
  options.wall_budget_us = 5000;
  options.max_rounds = 100000000;
  auto result = ChaseInstance({DivergingTgd()}, {}, SeedInstance(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->breach.has_value());
  EXPECT_EQ(result->breach->kind, "wall_us");
  EXPECT_FALSE(result->stats.foresight_armed);
  EXPECT_FALSE(result->stats.predicted_terminating);
}

TEST(WatchdogForesightTest, TerminatingClosureNeverArms) {
  Tgd copy;
  copy.body = {Atom{"R", {V("x"), V("y")}}};
  copy.head = {Atom{"Q", {V("x")}}};
  ChaseOptions options;
  options.stratified = true;
  auto result = ChaseInstance({copy}, {}, SeedInstance(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->breach.has_value());
  EXPECT_FALSE(result->stats.foresight_armed);
  EXPECT_TRUE(result->stats.predicted_terminating);
  EXPECT_LE(result->stats.rounds, result->stats.predicted_rounds);
}

TEST(WatchdogTest, ExchangeForwardsBudgetsAndSkipsCore) {
  // s-t tgd mappings always terminate, so force the budget with a tiny
  // tuple limit and a multi-tuple source.
  model::Schema s = SchemaBuilder("S", Metamodel::kRelational)
                        .Relation("Emp", {{"eid", DataType::Int64()}})
                        .Build();
  model::Schema t = SchemaBuilder("T", Metamodel::kRelational)
                        .Relation("Worker", {{"eid", DataType::Int64()},
                                             {"mgr", DataType::Int64()}})
                        .Build();
  Tgd tgd;
  tgd.body = {Atom{"Emp", {V("e")}}};
  tgd.head = {Atom{"Worker", {V("e"), Term::Var("m")}}};
  Mapping mapping = Mapping::FromTgds("m", s, t, {tgd});
  Instance db = Instance::EmptyFor(s);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db.Insert("Emp", {Value::Int64(i)}).ok());
  }
  runtime::ExchangeOptions options;
  options.tuple_budget = 1;
  options.compute_core = true;
  options.track_provenance = true;
  auto result = runtime::Exchange(mapping, db, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->breach.has_value());
  EXPECT_EQ(result->breach->kind, "tuples");
  // Core minimization was skipped: the partial target is served as-is
  // (pre_core_tuples stays 0, the not-computed marker).
  EXPECT_EQ(result->pre_core_tuples, 0u);
  EXPECT_GT(result->target.TotalTuples(), 0u);
  // Provenance of the partial run is still queryable.
  EXPECT_GT(result->provenance.size(), 0u);
}

}  // namespace
}  // namespace mm2::chase
