#include <gtest/gtest.h>

#include "instance/value.h"
#include "logic/formula.h"
#include "logic/mapping.h"
#include "logic/term.h"
#include "model/schema.h"

namespace mm2::logic {
namespace {

using instance::Value;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Term V(const char* name) { return Term::Var(name); }
Term C(std::int64_t v) { return Term::Const(Value::Int64(v)); }

TEST(TermTest, KindsAndToString) {
  EXPECT_EQ(V("x").ToString(), "x");
  EXPECT_EQ(C(3).ToString(), "3");
  Term f = Term::Func("f", {V("x"), C(1)});
  EXPECT_EQ(f.ToString(), "f(x, 1)");
  EXPECT_TRUE(f.is_function());
  EXPECT_TRUE(f.ContainsVariable("x"));
  EXPECT_FALSE(f.ContainsVariable("y"));
}

TEST(TermTest, CollectVariablesRecursesIntoFunctions) {
  Term nested = Term::Func("f", {V("x"), Term::Func("g", {V("y")})});
  std::set<std::string> vars;
  nested.CollectVariables(&vars);
  EXPECT_EQ(vars, (std::set<std::string>{"x", "y"}));
}

TEST(SubstitutionTest, ApplyChasesBindings) {
  Substitution s;
  s.Bind("x", V("y"));
  s.Bind("y", C(3));
  EXPECT_EQ(s.Apply(V("x")), C(3));
  EXPECT_EQ(s.Apply(V("z")), V("z"));
  Term f = Term::Func("f", {V("x")});
  EXPECT_EQ(s.Apply(f).ToString(), "f(3)");
}

TEST(UnifyTest, VariableBindsToConstant) {
  Substitution s;
  EXPECT_TRUE(UnifyTerms(V("x"), C(5), &s));
  EXPECT_EQ(s.Apply(V("x")), C(5));
}

TEST(UnifyTest, ConstantsMustMatch) {
  Substitution s;
  EXPECT_TRUE(UnifyTerms(C(5), C(5), &s));
  EXPECT_FALSE(UnifyTerms(C(5), C(6), &s));
}

TEST(UnifyTest, FunctionsUnifyStructurally) {
  Substitution s;
  Term f1 = Term::Func("f", {V("x"), C(1)});
  Term f2 = Term::Func("f", {C(2), V("y")});
  EXPECT_TRUE(UnifyTerms(f1, f2, &s));
  EXPECT_EQ(s.Apply(V("x")), C(2));
  EXPECT_EQ(s.Apply(V("y")), C(1));
  Substitution s2;
  EXPECT_FALSE(UnifyTerms(Term::Func("f", {V("x")}),
                          Term::Func("g", {V("x")}), &s2));
}

TEST(UnifyTest, OccursCheckRejectsCyclicBinding) {
  Substitution s;
  EXPECT_FALSE(UnifyTerms(V("x"), Term::Func("f", {V("x")}), &s));
}

TEST(UnifyTest, TransitiveUnification) {
  Substitution s;
  EXPECT_TRUE(UnifyTerms(V("x"), V("y"), &s));
  EXPECT_TRUE(UnifyTerms(V("y"), C(7), &s));
  EXPECT_EQ(s.Apply(V("x")), C(7));
}

TEST(AtomTest, SubstitutionAndUnification) {
  Atom a{"R", {V("x"), C(1)}};
  Atom b{"R", {C(2), V("y")}};
  Substitution s;
  EXPECT_TRUE(UnifyAtoms(a, b, &s));
  EXPECT_EQ(a.ApplySubstitution(s).ToString(), "R(2, 1)");
  Atom c{"S", {V("x")}};
  Substitution s2;
  EXPECT_FALSE(UnifyAtoms(a, c, &s2));
  Atom d{"R", {V("x")}};  // wrong arity
  Substitution s3;
  EXPECT_FALSE(UnifyAtoms(a, d, &s3));
}

Tgd MakeTgd() {
  // Names(sid, n) -> Students(n, a)   [a existential]
  Tgd tgd;
  tgd.body = {Atom{"Names", {V("sid"), V("n")}}};
  tgd.head = {Atom{"Students", {V("n"), V("a")}}};
  return tgd;
}

TEST(TgdTest, VariableClassification) {
  Tgd tgd = MakeTgd();
  EXPECT_EQ(tgd.BodyVariables(), (std::set<std::string>{"sid", "n"}));
  EXPECT_EQ(tgd.ExistentialVariables(), (std::set<std::string>{"a"}));
  EXPECT_FALSE(tgd.IsFull());
  Tgd full;
  full.body = {Atom{"R", {V("x")}}};
  full.head = {Atom{"T", {V("x")}}};
  EXPECT_TRUE(full.IsFull());
}

TEST(TgdTest, RenameVariablesIsCaptureFree) {
  Tgd tgd = MakeTgd();
  NameGenerator gen("v");
  Tgd renamed = tgd.RenameVariables(&gen);
  EXPECT_EQ(renamed.BodyVariables().size(), 2u);
  EXPECT_EQ(renamed.ExistentialVariables().size(), 1u);
  for (const std::string& v : renamed.BodyVariables()) {
    EXPECT_EQ(v.rfind("v", 0), 0u) << v;
  }
}

TEST(TgdTest, ValidateAgainstSchemas) {
  model::Schema src = SchemaBuilder("S", Metamodel::kRelational)
                          .Relation("Names", {{"SID", DataType::Int64()},
                                              {"Name", DataType::String()}})
                          .Build();
  model::Schema tgt = SchemaBuilder("T", Metamodel::kRelational)
                          .Relation("Students", {{"Name", DataType::String()},
                                                 {"Addr", DataType::String()}})
                          .Build();
  EXPECT_TRUE(MakeTgd().Validate(&src, &tgt).ok());

  Tgd bad = MakeTgd();
  bad.body[0].relation = "Missing";
  EXPECT_EQ(bad.Validate(&src, &tgt).code(), StatusCode::kNotFound);

  Tgd bad_arity = MakeTgd();
  bad_arity.head[0].terms.push_back(V("z"));
  EXPECT_FALSE(bad_arity.Validate(&src, &tgt).ok());

  Tgd empty;
  EXPECT_FALSE(empty.Validate(nullptr, nullptr).ok());

  Tgd with_func = MakeTgd();
  with_func.head[0].terms[1] = Term::Func("f", {V("sid")});
  EXPECT_FALSE(with_func.Validate(nullptr, nullptr).ok());
}

TEST(EgdTest, Validate) {
  Egd egd;
  egd.body = {Atom{"R", {V("x"), V("y")}}, Atom{"R", {V("x"), V("z")}}};
  egd.left = "y";
  egd.right = "z";
  EXPECT_TRUE(egd.Validate(nullptr).ok());
  egd.right = "unbound";
  EXPECT_FALSE(egd.Validate(nullptr).ok());
}

TEST(SkolemizeTest, ExistentialsBecomeFunctionsOfBodyVars) {
  Tgd tgd = MakeTgd();
  NameGenerator gen("f");
  std::set<std::string> functions;
  SoTgdClause clause = Skolemize(tgd, &gen, &functions);
  EXPECT_EQ(functions.size(), 1u);
  ASSERT_EQ(clause.head.size(), 1u);
  const Term& skolem = clause.head[0].terms[1];
  ASSERT_TRUE(skolem.is_function());
  EXPECT_EQ(skolem.args().size(), 2u);  // f(n, sid)
  // Universal variable passes through untouched.
  EXPECT_TRUE(clause.head[0].terms[0].is_variable());
}

TEST(DeskolemizeTest, RoundTripsSimpleTgds) {
  Tgd tgd = MakeTgd();
  NameGenerator gen("f");
  SoTgd so;
  so.clauses.push_back(Skolemize(tgd, &gen, &so.functions));
  auto back = Deskolemize(so);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0].body, tgd.body);
  EXPECT_EQ((*back)[0].ExistentialVariables().size(), 1u);
}

TEST(DeskolemizeTest, RejectsFunctionSharedAcrossClauses) {
  // f appears in two clauses: genuinely second-order.
  SoTgd so;
  so.functions = {"f"};
  SoTgdClause c1;
  c1.body = {Atom{"R", {V("x")}}};
  c1.head = {Atom{"T", {V("x"), Term::Func("f", {V("x")})}}};
  SoTgdClause c2;
  c2.body = {Atom{"S", {V("x")}}};
  c2.head = {Atom{"U", {Term::Func("f", {V("x")})}}};
  so.clauses = {c1, c2};
  EXPECT_FALSE(Deskolemize(so).has_value());
}

TEST(DeskolemizeTest, RejectsNestedAndEqualityFunctions) {
  SoTgd nested;
  nested.functions = {"f", "g"};
  SoTgdClause c;
  c.body = {Atom{"R", {V("x")}}};
  c.head = {Atom{"T", {Term::Func("f", {Term::Func("g", {V("x")})})}}};
  nested.clauses = {c};
  EXPECT_FALSE(Deskolemize(nested).has_value());

  SoTgd with_eq;
  with_eq.functions = {"f"};
  SoTgdClause c2;
  c2.body = {Atom{"R", {V("x"), V("y")}}};
  c2.equalities = {{Term::Func("f", {V("x")}), Term::Func("f", {V("y")})}};
  c2.head = {Atom{"T", {V("x")}}};
  with_eq.clauses = {c2};
  EXPECT_FALSE(Deskolemize(with_eq).has_value());
}

TEST(DeskolemizeTest, RejectsRepeatedOrNonVariableArguments) {
  SoTgd repeated;
  repeated.functions = {"f"};
  SoTgdClause c;
  c.body = {Atom{"R", {V("x")}}};
  c.head = {Atom{"T", {Term::Func("f", {V("x"), V("x")})}}};
  repeated.clauses = {c};
  EXPECT_FALSE(Deskolemize(repeated).has_value());

  SoTgd with_const;
  with_const.functions = {"f"};
  SoTgdClause c2;
  c2.body = {Atom{"R", {V("x")}}};
  c2.head = {Atom{"T", {Term::Func("f", {C(1)})}}};
  with_const.clauses = {c2};
  EXPECT_FALSE(Deskolemize(with_const).has_value());
}

TEST(ConjunctiveQueryTest, Validate) {
  ConjunctiveQuery q;
  q.head = Atom{"Q", {V("x")}};
  q.body = {Atom{"R", {V("x"), V("y")}}};
  EXPECT_TRUE(q.Validate().ok());
  q.head = Atom{"Q", {V("z")}};
  EXPECT_FALSE(q.Validate().ok());
  q.head = Atom{"Q", {V("x")}};
  q.body.clear();
  EXPECT_FALSE(q.Validate().ok());
}

TEST(MappingTest, FromTgdsAndSkolemized) {
  model::Schema src = SchemaBuilder("S", Metamodel::kRelational)
                          .Relation("Names", {{"SID", DataType::Int64()},
                                              {"Name", DataType::String()}})
                          .Build();
  model::Schema tgt = SchemaBuilder("T", Metamodel::kRelational)
                          .Relation("Students", {{"Name", DataType::String()},
                                                 {"Addr", DataType::String()}})
                          .Build();
  Mapping m = Mapping::FromTgds("m", src, tgt, {MakeTgd()});
  EXPECT_FALSE(m.is_second_order());
  EXPECT_EQ(m.ClauseCount(), 1u);
  EXPECT_TRUE(m.Validate().ok());

  SoTgd so = m.Skolemized();
  EXPECT_EQ(so.clauses.size(), 1u);
  EXPECT_EQ(so.functions.size(), 1u);

  Mapping m2 = Mapping::FromSoTgd("m2", src, tgt, so);
  EXPECT_TRUE(m2.is_second_order());
  EXPECT_EQ(m2.ClauseCount(), 1u);
  // Skolemized() on an SO mapping returns the SO-tgd itself.
  EXPECT_EQ(m2.Skolemized().clauses.size(), 1u);
}

TEST(MappingTest, ValidateCatchesVocabularyErrors) {
  model::Schema src = SchemaBuilder("S", Metamodel::kRelational)
                          .Relation("Names", {{"SID", DataType::Int64()},
                                              {"Name", DataType::String()}})
                          .Build();
  model::Schema tgt = SchemaBuilder("T", Metamodel::kRelational)
                          .Relation("Students", {{"Name", DataType::String()},
                                                 {"Addr", DataType::String()}})
                          .Build();
  Tgd bad;
  bad.body = {Atom{"Nope", {V("x")}}};
  bad.head = {Atom{"Students", {V("x"), V("x")}}};
  Mapping m = Mapping::FromTgds("bad", src, tgt, {bad});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(SoTgdTest, AllFunctionTermsDeduplicates) {
  SoTgd so;
  so.functions = {"f"};
  SoTgdClause c;
  c.body = {Atom{"R", {V("x")}}};
  Term fx = Term::Func("f", {V("x")});
  c.head = {Atom{"T", {fx, fx}}};
  so.clauses = {c};
  EXPECT_EQ(so.AllFunctionTerms().size(), 1u);
}

}  // namespace
}  // namespace mm2::logic
