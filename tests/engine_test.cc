#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "engine/engine.h"
#include "logic/formula.h"
#include "model/schema.h"
#include "workload/generators.h"

namespace mm2::engine {
namespace {

using instance::Instance;
using instance::Value;
using logic::Atom;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Term V(const char* name) { return Term::Var(name); }

model::Schema SimpleSchema(const char* name, const char* rel) {
  return SchemaBuilder(name, Metamodel::kRelational)
      .Relation(rel, {{"Id", DataType::Int64()}, {"X", DataType::String()}},
                {"Id"})
      .Build();
}

Mapping CopyMapping(const char* name, const model::Schema& src,
                    const char* src_rel, const model::Schema& tgt,
                    const char* tgt_rel) {
  Tgd tgd;
  tgd.body = {Atom{src_rel, {V("i"), V("x")}}};
  tgd.head = {Atom{tgt_rel, {V("i"), V("x")}}};
  return Mapping::FromTgds(name, src, tgt, {tgd});
}

TEST(RepositoryTest, PutGetAndVersions) {
  Repository repo;
  EXPECT_FALSE(repo.HasSchema("A"));
  EXPECT_EQ(repo.SchemaVersion("A"), 0u);
  ASSERT_TRUE(repo.PutSchema(SimpleSchema("A", "R")).ok());
  EXPECT_TRUE(repo.HasSchema("A"));
  EXPECT_EQ(repo.SchemaVersion("A"), 1u);
  ASSERT_TRUE(repo.PutSchema(SimpleSchema("A", "R2")).ok());
  EXPECT_EQ(repo.SchemaVersion("A"), 2u);
  auto schema = repo.GetSchema("A");
  ASSERT_TRUE(schema.ok());
  EXPECT_NE(schema->FindRelation("R2"), nullptr);
  EXPECT_FALSE(repo.GetSchema("Missing").ok());
  EXPECT_EQ(repo.SchemaNames(), (std::vector<std::string>{"A"}));
}

TEST(RepositoryTest, RejectsInvalidArtifacts) {
  Repository repo;
  model::Schema bad("Bad", Metamodel::kRelational);
  bad.AddRelation(model::Relation("R", {{"a", DataType::Int64(), false}}));
  bad.AddRelation(model::Relation("R", {{"a", DataType::Int64(), false}}));
  EXPECT_FALSE(repo.PutSchema(bad).ok());
  model::Schema unnamed("", Metamodel::kRelational);
  EXPECT_FALSE(repo.PutSchema(unnamed).ok());
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = SimpleSchema("A", "R");
    b_ = SimpleSchema("B", "T");
    c_ = SimpleSchema("C", "U");
    ASSERT_TRUE(engine_.repo().PutSchema(a_).ok());
    ASSERT_TRUE(engine_.repo().PutSchema(b_).ok());
    ASSERT_TRUE(engine_.repo().PutSchema(c_).ok());
    ASSERT_TRUE(
        engine_.repo().PutMapping(CopyMapping("ab", a_, "R", b_, "T")).ok());
    ASSERT_TRUE(
        engine_.repo().PutMapping(CopyMapping("bc", b_, "T", c_, "U")).ok());

    Instance db = Instance::EmptyFor(a_);
    ASSERT_TRUE(db.Insert("R", {Value::Int64(1), Value::String("x")}).ok());
    ASSERT_TRUE(db.Insert("R", {Value::Int64(2), Value::String("y")}).ok());
    ASSERT_TRUE(engine_.repo().PutInstance("dbA", std::move(db)).ok());
  }

  model::Schema a_, b_, c_;
  Engine engine_;
};

TEST_F(EngineTest, ComposeRegistersResult) {
  ASSERT_TRUE(engine_.Compose("ac", "ab", "bc").ok());
  auto composed = engine_.repo().GetMapping("ac");
  ASSERT_TRUE(composed.ok());
  EXPECT_EQ(composed->source().name(), "A");
  EXPECT_EQ(composed->target().name(), "C");
}

TEST_F(EngineTest, ComposeChecksMidSchema) {
  ASSERT_TRUE(
      engine_.repo().PutMapping(CopyMapping("ac_direct", a_, "R", c_, "U"))
          .ok());
  EXPECT_FALSE(engine_.Compose("bad", "ab", "ac_direct").ok());
}

TEST_F(EngineTest, ExchangeMigratesInstance) {
  ASSERT_TRUE(engine_.Exchange("dbB", "ab", "dbA").ok());
  auto db = engine_.repo().GetInstance("dbB");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Find("T")->size(), 2u);
}

TEST_F(EngineTest, MatchFindsCorrespondences) {
  auto result = engine_.Match("A", "B");
  ASSERT_TRUE(result.ok());
  // R.Id ~ T.Id, R.X ~ T.X at least.
  EXPECT_GE(result->best.size(), 2u);
}

TEST_F(EngineTest, InverseAndInvert) {
  ASSERT_TRUE(engine_.Invert("ba_syntactic", "ab").ok());
  ASSERT_TRUE(engine_.ComputeInverse("ba", "ab").ok());
  auto inv = engine_.repo().GetMapping("ba");
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv->source().name(), "B");
  EXPECT_EQ(inv->target().name(), "A");
}

TEST_F(EngineTest, ScriptRunsFullEvolutionScenario) {
  // The Section 6 flow as a script: compose the chain, invert it, diff to
  // find new parts, exchange the data.
  std::string script = R"(
# schema evolution scenario
compose ac ab bc
invert ca ac
exchange dbC ac dbA
match A C
)";
  auto log = engine_.RunScript(script);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(log->size(), 4u);
  EXPECT_TRUE(engine_.repo().HasMapping("ac"));
  EXPECT_TRUE(engine_.repo().HasMapping("ca"));
  auto db = engine_.repo().GetInstance("dbC");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Find("U")->size(), 2u);
}

TEST_F(EngineTest, ScriptMergeWithCorrespondences) {
  std::string script = "merge AB abL abR A B R.Id=T.Id R.X=T.X";
  auto log = engine_.RunScript(script);
  ASSERT_TRUE(log.ok()) << log.status();
  auto merged = engine_.repo().GetSchema("AB");
  ASSERT_TRUE(merged.ok());
  // R and T collapse into one relation.
  EXPECT_EQ(merged->relations().size(), 1u);
  EXPECT_TRUE(engine_.repo().HasMapping("abL"));
  EXPECT_TRUE(engine_.repo().HasMapping("abR"));
}

TEST_F(EngineTest, ScriptModelGenAndDiff) {
  model::Schema er =
      SchemaBuilder("ER", Metamodel::kEntityRelationship)
          .EntityType("Person", "", {{"Id", DataType::Int64()},
                                     {"Name", DataType::String()}})
          .EntitySet("Persons", "Person")
          .Build();
  ASSERT_TRUE(engine_.repo().PutSchema(er).ok());
  std::string script = R"(
modelgen ERrel er2rel ER tpt
extract ABext abextmap ab
diff ABdiff abdiffmap ab
)";
  auto log = engine_.RunScript(script);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_TRUE(engine_.repo().HasSchema("ERrel"));
  EXPECT_TRUE(engine_.repo().HasMapping("er2rel"));
  EXPECT_TRUE(engine_.repo().HasSchema("ABext"));
  // ab carries everything, so the diff schema is empty but registered...
  // an empty schema is still a schema.
  EXPECT_TRUE(engine_.repo().HasSchema("ABdiff"));
}

TEST_F(EngineTest, ScriptErrorsAreReportedWithLineNumbers) {
  auto unknown = engine_.RunScript("frobnicate x y");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("line 1"), std::string::npos);

  auto missing_args = engine_.RunScript("\ncompose onlyone");
  ASSERT_FALSE(missing_args.ok());
  EXPECT_NE(missing_args.status().message().find("line 2"),
            std::string::npos);

  auto bad_corr = engine_.RunScript("merge X l r A B notacorr");
  EXPECT_FALSE(bad_corr.ok());

  auto bad_strategy = engine_.RunScript("modelgen S M ER xyz");
  EXPECT_FALSE(bad_strategy.ok());

  // Comments and blank lines are fine.
  auto noop = engine_.RunScript("\n# nothing here\n\n");
  ASSERT_TRUE(noop.ok());
  EXPECT_TRUE(noop->empty());
}

TEST_F(EngineTest, ScriptStatsAndTraceReportChaseTelemetry) {
  // A mapping whose head has an existential variable, so the chase invents
  // one labeled null per source row.
  Tgd tgd;
  tgd.body = {Atom{"R", {V("i"), V("x")}}};
  tgd.head = {Atom{"T", {V("i"), V("n")}}};
  ASSERT_TRUE(
      engine_.repo().PutMapping(Mapping::FromTgds("abnull", a_, b_, {tgd}))
          .ok());

  std::string trace_file = ::testing::TempDir() + "mm2_engine_trace.json";
  std::string script = "trace " + trace_file +
                       "\n"
                       "exchange dbBn abnull dbA\n"
                       "stats\n";
  auto log = engine_.RunScript(script);
  ASSERT_TRUE(log.ok()) << log.status();

  // The `stats` command dumps the registry into the script log.
  std::string joined;
  for (const std::string& line : *log) joined += line + "\n";
  EXPECT_NE(joined.find("counter chase.rounds"), std::string::npos) << joined;
  EXPECT_NE(joined.find("counter chase.nulls_created"), std::string::npos);
  EXPECT_NE(joined.find("histogram op.exchange.latency_us"),
            std::string::npos);

  // And the engine-owned registry has nonzero chase telemetry.
  obs::MetricsSnapshot snap = engine_.observability().metrics.Snapshot();
  EXPECT_GT(snap.FindCounter("chase.rounds")->value, 0u);
  EXPECT_GT(snap.FindCounter("chase.tgd_firings")->value, 0u);
  EXPECT_EQ(snap.FindCounter("chase.nulls_created")->value, 2u);
  EXPECT_GT(snap.FindCounter("chase.assignments_matched")->value, 0u);
  EXPECT_EQ(snap.FindHistogram("op.exchange.latency_us")->count, 1u);

  // The trace file holds Chrome trace_event JSON with the engine-op span
  // nesting above the chase spans.
  std::ifstream in(trace_file);
  ASSERT_TRUE(in.good()) << "trace file not written: " << trace_file;
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string trace = buffer.str();
  EXPECT_EQ(trace.find("{\"traceEvents\": ["), 0u);
  EXPECT_NE(trace.find("op.exchange"), std::string::npos);
  EXPECT_NE(trace.find("exchange.run"), std::string::npos);
  EXPECT_NE(trace.find("chase.run"), std::string::npos);
  EXPECT_NE(trace.find("chase.round"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  // Tracing was disabled again when the script finished.
  EXPECT_FALSE(engine_.observability().tracer.enabled());
}

TEST_F(EngineTest, SetObservabilityAttachesExternalCollector) {
  obs::Context collector;
  engine_.SetObservability(&collector);
  ASSERT_TRUE(engine_.Exchange("dbB", "ab", "dbA").ok());
  obs::MetricsSnapshot snap = collector.metrics.Snapshot();
  ASSERT_NE(snap.FindCounter("op.exchange.calls"), nullptr);
  EXPECT_EQ(snap.FindCounter("op.exchange.calls")->value, 1u);
  EXPECT_GT(snap.FindCounter("chase.rounds")->value, 0u);

  // Reverting to the engine-owned context stops feeding the collector.
  engine_.SetObservability(nullptr);
  ASSERT_TRUE(engine_.Exchange("dbB2", "ab", "dbA").ok());
  EXPECT_EQ(collector.metrics.Snapshot().FindCounter("op.exchange.calls")
                ->value,
            1u);
}

TEST_F(EngineTest, FailedOperatorCountsAsError) {
  obs::Context collector;
  engine_.SetObservability(&collector);
  EXPECT_FALSE(engine_.Compose("nope", "ab", "missing").ok());
  obs::MetricsSnapshot snap = collector.metrics.Snapshot();
  EXPECT_EQ(snap.FindCounter("op.compose.calls")->value, 1u);
  EXPECT_EQ(snap.FindCounter("op.compose.errors")->value, 1u);
}

TEST(EngineScenarioTest, Fig5EvolutionEndToEnd) {
  // The full Fig. 5 scenario driven through the engine: V over S; S
  // evolves to S'; re-derive mapV-S' by composition and migrate D.
  workload::EvolutionChain chain = workload::MakeEvolutionChain(2, 4);
  Engine engine;
  for (const model::Schema& s : chain.schemas) {
    ASSERT_TRUE(engine.repo().PutSchema(s).ok());
  }
  for (const logic::Mapping& m : chain.steps) {
    ASSERT_TRUE(engine.repo().PutMapping(m).ok());
  }
  workload::Rng rng(1);
  ASSERT_TRUE(engine.repo()
                  .PutInstance("D", workload::MakeChainInstance(chain, 5, &rng))
                  .ok());
  std::string script = R"(
compose evolve step0 step1
exchange Dnew evolve D
)";
  auto log = engine.RunScript(script);
  ASSERT_TRUE(log.ok()) << log.status();
  auto migrated = engine.repo().GetInstance("Dnew");
  ASSERT_TRUE(migrated.ok());
  EXPECT_EQ(migrated->TotalTuples(), 10u);
}

}  // namespace
}  // namespace mm2::engine
