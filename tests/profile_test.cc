// Tests for the obs profiler layer: histogram quantile estimates, span
// aggregation into phase costs, and per-constraint chase attribution.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "chase/chase.h"
#include "logic/formula.h"
#include "model/schema.h"
#include "obs/obs.h"
#include "obs/profile.h"

namespace mm2::obs {
namespace {

using chase::ChaseOptions;
using instance::Instance;
using instance::Value;
using logic::Atom;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::DataType;

Term V(const char* name) { return Term::Var(name); }

// -- histogram quantiles ----------------------------------------------------

TEST(HistogramQuantileTest, EmptyHistogramIsAllZero) {
  MetricsRegistry registry;
  registry.GetHistogram("h", {1, 10, 100});
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot* h = snap.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->p50(), 0);
  EXPECT_EQ(h->p95(), 0);
  EXPECT_EQ(h->p99(), 0);
  EXPECT_EQ(h->mean(), 0);
}

TEST(HistogramQuantileTest, SingleSampleEveryQuantileIsTheSample) {
  MetricsRegistry registry;
  registry.GetHistogram("h", {1, 10, 100}).Record(42);
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot* h = snap.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  // Clamped to the observed extrema: one sample pins min == max == 42.
  EXPECT_EQ(h->p50(), 42);
  EXPECT_EQ(h->p95(), 42);
  EXPECT_EQ(h->p99(), 42);
}

TEST(HistogramQuantileTest, AllSamplesInOneBucketStayWithinExtrema) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("h", {1000});
  for (int i = 0; i < 100; ++i) hist.Record(500 + i);  // all in bucket <=1000
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot* h = snap.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->p50(), 500);
  EXPECT_LE(h->p50(), 599);
  EXPECT_GE(h->p99(), h->p50());
  EXPECT_LE(h->p99(), 599);
  EXPECT_LE(h->p95(), h->p99());
}

TEST(HistogramQuantileTest, QuantilesAreMonotoneAcrossBuckets) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("h", {10, 100, 1000});
  for (int i = 0; i < 50; ++i) hist.Record(5);
  for (int i = 0; i < 45; ++i) hist.Record(50);
  for (int i = 0; i < 5; ++i) hist.Record(500);
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot* h = snap.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_LE(h->p50(), h->p95());
  EXPECT_LE(h->p95(), h->p99());
  EXPECT_LE(h->p99(), h->max);
  EXPECT_LE(h->p50(), 10);    // median within the first bucket
  EXPECT_GT(h->p95(), 10);    // p95 beyond it
}

// -- deterministic stats output ---------------------------------------------

TEST(MetricsSnapshotTest, LinesAreSortedByNameWithinEachKind) {
  MetricsRegistry registry;
  registry.GetCounter("zeta").Increment();
  registry.GetCounter("alpha").Increment();
  registry.GetGauge("mid").Set(1);
  registry.GetHistogram("h2", {1}).Record(1);
  registry.GetHistogram("h1", {1}).Record(1);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.histograms.size(), 2u);
  EXPECT_EQ(snap.histograms[0].name, "h1");
  // Identical registries must print identically (golden-output stability).
  EXPECT_EQ(snap.ToString(), registry.Snapshot().ToString());
  EXPECT_NE(snap.ToString().find("p95="), std::string::npos);
}

// -- span aggregation (phases) ----------------------------------------------

TEST(ProfilerTest, AggregatesNestedSpansIntoSelfTime) {
  Context ctx;
  ctx.tracer.Enable();
  {
    ObsSpan outer(&ctx, "outer");
    {
      ObsSpan inner(&ctx, "inner");
    }
    {
      ObsSpan inner(&ctx, "inner");
    }
  }
  ProfileReport report = Profiler::Build(ctx);
  ASSERT_EQ(report.phases.size(), 2u);
  const PhaseCost* outer = nullptr;
  const PhaseCost* inner = nullptr;
  for (const PhaseCost& p : report.phases) {
    if (p.name == "outer") outer = &p;
    if (p.name == "inner") inner = &p;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 2u);
  // outer's self time excludes the two inner spans.
  EXPECT_LE(outer->self_us, outer->total_us);
  EXPECT_GE(outer->total_us, inner->total_us);
  EXPECT_GE(inner->self_us, 0);
  double share_sum = 0;
  for (const PhaseCost& p : report.phases) share_sum += p.share;
  if (report.phase_total_us > 0) {
    EXPECT_NEAR(share_sum, 1.0, 1e-9);
  }
}

TEST(ProfilerTest, AggregatesSpansFromMultipleThreads) {
  Context ctx;
  ctx.tracer.Enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ctx] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ObsSpan outer(&ctx, "worker");
        ObsSpan inner(&ctx, "step");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ProfileReport report = Profiler::Build(ctx);
  ASSERT_EQ(report.phases.size(), 2u);
  for (const PhaseCost& p : report.phases) {
    EXPECT_EQ(p.count, static_cast<std::uint64_t>(kThreads) * kSpansPerThread)
        << p.name;
  }
}

TEST(ProfilerTest, EmptyContextYieldsEmptyReportAndValidText) {
  Context ctx;
  ProfileReport report = Profiler::Build(ctx);
  EXPECT_TRUE(report.operators.empty());
  EXPECT_TRUE(report.rules.empty());
  EXPECT_TRUE(report.phases.empty());
  EXPECT_EQ(report.DominantRule(), nullptr);
  EXPECT_NE(report.ToString().find("no chase recorded"), std::string::npos);
  EXPECT_NE(report.ToJson().find("\"rules\": []"), std::string::npos);
}

// -- per-constraint chase attribution ---------------------------------------

// Two tgds over one source: a cheap copy rule and a quadratic self-join
// rule. The join rule must dominate the attribution.
chase::ChaseOptions WithObs(Context* ctx) {
  ChaseOptions options;
  options.obs = ctx;
  return options;
}

TEST(ProfilerTest, ChaseRuleAttributionNamesTheDominantTgd) {
  model::Schema src =
      model::SchemaBuilder("S", model::Metamodel::kRelational)
          .Relation("R", {{"A", DataType::Int64()}, {"B", DataType::Int64()}},
                    {"A"})
          .Build();
  model::Schema tgt =
      model::SchemaBuilder("T", model::Metamodel::kRelational)
          .Relation("Copy", {{"A", DataType::Int64()},
                             {"B", DataType::Int64()}},
                    {"A"})
          .Relation("Join", {{"A", DataType::Int64()},
                             {"B", DataType::Int64()}},
                    {"A"})
          .Build();
  Tgd copy;
  copy.body = {Atom{"R", {V("x"), V("y")}}};
  copy.head = {Atom{"Copy", {V("x"), V("y")}}};
  Tgd join;  // R(x,y) & R(z,w) -> Join(x,w): quadratic trigger count
  join.body = {Atom{"R", {V("x"), V("y")}}, Atom{"R", {V("z"), V("w")}}};
  join.head = {Atom{"Join", {V("x"), V("w")}}};
  Mapping mapping = Mapping::FromTgds("m", src, tgt, {copy, join});

  Instance db;
  db.DeclareRelation("R", 2);
  for (int i = 0; i < 60; ++i) {
    db.InsertUnchecked("R", {Value::Int64(i), Value::Int64(i + 1)});
  }

  Context ctx;
  auto result = chase::RunChase(mapping, db, WithObs(&ctx));
  ASSERT_TRUE(result.ok()) << result.status();

  // The raw stats carry one slot per rule with round distributions.
  ASSERT_EQ(result->stats.rules.size(), 2u);
  const chase::RuleStats& copy_stats = result->stats.rules[0];
  const chase::RuleStats& join_stats = result->stats.rules[1];
  EXPECT_EQ(copy_stats.label, "tgd0:R->Copy");
  EXPECT_EQ(join_stats.label, "tgd1:R+R->Join");
  EXPECT_EQ(copy_stats.firings, 60u);
  EXPECT_EQ(join_stats.firings, 3600u);  // 60x60 cross product
  EXPECT_EQ(copy_stats.nulls_created, 0u);
  // Per-round distribution: one timing sample per round per rule.
  EXPECT_EQ(copy_stats.round_us.size(), result->stats.rounds);
  EXPECT_EQ(join_stats.round_us.size(), result->stats.rounds);
  // The join rule tests quadratically more triggers than the copy rule.
  EXPECT_GT(join_stats.triggers_tested, copy_stats.triggers_tested);

  // The profiler reads the mirrored metrics back into a ranked table.
  ProfileReport report = Profiler::Build(ctx);
  ASSERT_EQ(report.rules.size(), 2u);
  const RuleCost* dominant = report.DominantRule();
  ASSERT_NE(dominant, nullptr);
  EXPECT_EQ(dominant->label, "tgd1:R+R->Join");
  EXPECT_EQ(dominant->kind, "tgd");
  EXPECT_GT(dominant->share, 0.5);
  EXPECT_EQ(dominant->firings, 3600u);
  EXPECT_GT(dominant->rounds, 0u);
  double share_sum = 0;
  for (const RuleCost& rule : report.rules) share_sum += rule.share;
  EXPECT_NEAR(share_sum, 1.0, 1e-9);

  std::string text = report.ToString();
  EXPECT_NE(text.find("dominant rule: tgd1:R+R->Join"), std::string::npos);
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"label\": \"tgd1:R+R->Join\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"tgd\""), std::string::npos);
}

TEST(ProfilerTest, EgdRulesAreAttributedAndLabeled) {
  // Close {R(1,a), R(1,b)} under key A -> B: one egd unification.
  logic::Egd key;
  key.body = {Atom{"R", {V("x"), V("y")}}, Atom{"R", {V("x"), V("z")}}};
  key.left = "y";
  key.right = "z";
  Instance db;
  db.DeclareRelation("R", 2);
  db.InsertUnchecked("R", {Value::Int64(1), Value::LabeledNull(0)});
  db.InsertUnchecked("R", {Value::Int64(1), Value::Int64(7)});

  Context ctx;
  auto result = chase::ChaseInstance({}, {key}, db, WithObs(&ctx));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->stats.rules.size(), 1u);
  EXPECT_EQ(result->stats.rules[0].label, "egd0:R+R:y=z");
  EXPECT_EQ(result->stats.rules[0].unifications, 1u);
  EXPECT_EQ(result->stats.rules[0].firings, 1u);

  ProfileReport report = Profiler::Build(ctx);
  ASSERT_EQ(report.rules.size(), 1u);
  EXPECT_EQ(report.rules[0].kind, "egd");
}

// Minimal structural JSON check shared with the tracer tests' approach.
bool JsonWellFormed(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(ProfilerTest, ParallelismSectionAppearsOnlyForParallelRuns) {
  model::Schema src =
      model::SchemaBuilder("S", model::Metamodel::kRelational)
          .Relation("R", {{"A", DataType::Int64()}, {"B", DataType::Int64()}},
                    {"A"})
          .Build();
  model::Schema tgt =
      model::SchemaBuilder("T", model::Metamodel::kRelational)
          .Relation("Join", {{"A", DataType::Int64()},
                             {"B", DataType::Int64()}},
                    {"A"})
          .Build();
  Tgd join;
  join.body = {Atom{"R", {V("x"), V("y")}}, Atom{"R", {V("z"), V("w")}}};
  join.head = {Atom{"Join", {V("x"), V("w")}}};
  Mapping mapping = Mapping::FromTgds("m", src, tgt, {join});
  Instance db;
  db.DeclareRelation("R", 2);
  for (int i = 0; i < 40; ++i) {
    db.InsertUnchecked("R", {Value::Int64(i), Value::Int64(i + 1)});
  }

  // Serial run: no chase.parallel.* metrics, no parallelism section.
  {
    Context ctx;
    ChaseOptions options = WithObs(&ctx);
    options.threads = 1;
    auto result = chase::RunChase(mapping, db, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->stats.workers, 1u);
    ProfileReport report = Profiler::Build(ctx);
    EXPECT_FALSE(report.parallel.any());
    EXPECT_EQ(report.ToString().find("parallelism:"), std::string::npos);
  }

  // 4-worker run: the mirrored pool telemetry must surface in the report,
  // both as text and JSON.
  {
    Context ctx;
    ChaseOptions options = WithObs(&ctx);
    options.threads = 4;
    auto result = chase::RunChase(mapping, db, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->stats.workers, 4u);
    EXPECT_GT(result->stats.parallel_regions, 0u);
    EXPECT_GT(result->stats.parallel_tasks, 0u);
    ProfileReport report = Profiler::Build(ctx);
    ASSERT_TRUE(report.parallel.any());
    EXPECT_EQ(report.parallel.workers, 4u);
    EXPECT_GT(report.parallel.regions, 0u);
    EXPECT_GE(report.parallel.tasks, report.parallel.regions);
    EXPECT_GE(report.parallel.speedup, 0.0);
    std::string text = report.ToString();
    EXPECT_NE(text.find("parallelism:"), std::string::npos) << text;
    EXPECT_NE(text.find("workers"), std::string::npos);
    std::string json = report.ToJson();
    EXPECT_TRUE(JsonWellFormed(json)) << json;
    EXPECT_NE(json.find("\"parallel\": {"), std::string::npos) << json;
    EXPECT_NE(json.find("\"workers\": 4"), std::string::npos) << json;
  }
}

TEST(ProfilerTest, JsonReportIsWellFormed) {
  Context ctx;
  ctx.tracer.Enable();
  {
    ObsSpan span(&ctx, "op.exchange");
  }
  ctx.metrics.GetCounter("op.exchange.calls").Increment();
  ctx.metrics.GetHistogram("op.exchange.latency_us").Record(12.5);
  ctx.metrics.GetCounter("chase.rule.tgd0:R->T.wall_us").Increment(100);
  ctx.metrics.GetCounter("chase.rule.tgd0:R->T.firings").Increment(3);
  std::string json = Profiler::Build(ctx).ToJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"operators\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"exchange\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"tgd0:R->T\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\": ["), std::string::npos);
}

}  // namespace
}  // namespace mm2::obs
