#include <gtest/gtest.h>

#include "text/sexpr.h"

namespace mm2::text {
namespace {

using instance::Instance;
using instance::Value;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

model::Schema SampleSchema() {
  return SchemaBuilder("S", Metamodel::kRelational)
      .Relation("Names", {{"SID", DataType::Int64()},
                          {"Name", DataType::String()},
                          {"Score", DataType::Double(), true}},
                {"SID"})
      .Relation("Addresses", {{"SID", DataType::Int64()},
                              {"City", DataType::String()}},
                {"SID"})
      .ForeignKey("Addresses", {"SID"}, "Names", {"SID"})
      .Build();
}

TEST(SexprSchemaTest, RoundTripsRelational) {
  model::Schema original = SampleSchema();
  std::string rendered = SchemaToText(original);
  auto parsed = ParseSchema(rendered);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << rendered;
  EXPECT_EQ(parsed->name(), "S");
  EXPECT_EQ(parsed->metamodel(), Metamodel::kRelational);
  ASSERT_EQ(parsed->relations().size(), 2u);
  const model::Relation* names = parsed->FindRelation("Names");
  ASSERT_NE(names, nullptr);
  EXPECT_EQ(names->AttributeNames(),
            (std::vector<std::string>{"SID", "Name", "Score"}));
  EXPECT_TRUE(names->IsKeyAttribute(0));
  EXPECT_TRUE(names->attribute(2).nullable);
  EXPECT_TRUE(names->attribute(2).type->Equals(*DataType::Double()));
  ASSERT_EQ(parsed->foreign_keys().size(), 1u);
  EXPECT_EQ(parsed->foreign_keys()[0].to_relation, "Names");
  // Idempotence: rendering the parse matches the original rendering.
  EXPECT_EQ(SchemaToText(*parsed), rendered);
}

TEST(SexprSchemaTest, RoundTripsEr) {
  model::Schema er =
      SchemaBuilder("ER", Metamodel::kEntityRelationship)
          .EntityType("Person", "", {{"Id", DataType::Int64()}}, false)
          .EntityType("Employee", "Person", {{"Dept", DataType::String()}})
          .EntityType("Ghost", "Person", {}, true)
          .EntitySet("Persons", "Person")
          .Build();
  std::string rendered = SchemaToText(er);
  auto parsed = ParseSchema(rendered);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << rendered;
  EXPECT_EQ(parsed->entity_types().size(), 3u);
  EXPECT_EQ(parsed->FindEntityType("Employee")->parent, "Person");
  EXPECT_TRUE(parsed->FindEntityType("Ghost")->abstract);
  ASSERT_EQ(parsed->entity_sets().size(), 1u);
  EXPECT_EQ(parsed->entity_sets()[0].root_type, "Person");
  EXPECT_EQ(SchemaToText(*parsed), rendered);
}

TEST(SexprInstanceTest, RoundTripsAllValueKinds) {
  Instance db;
  db.DeclareRelation("R", 6);
  ASSERT_TRUE(db.Insert("R", {Value::Int64(-42), Value::Double(2.5),
                              Value::String("a \"quoted\" \\ string"),
                              Value::Bool(true), Value::Date(100),
                              Value::LabeledNull(7)})
                  .ok());
  ASSERT_TRUE(db.Insert("R", {Value::Int64(1), Value::Double(0.0),
                              Value::String(""), Value::Bool(false),
                              Value::Null(), Value::Null()})
                  .ok());
  std::string rendered = InstanceToText(db);
  auto parsed = ParseInstance(rendered);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << rendered;
  EXPECT_TRUE(parsed->Equals(db))
      << rendered << "\nparsed:\n" << parsed->ToString();
}

TEST(SexprInstanceTest, CommentsAndWhitespaceIgnored) {
  auto parsed = ParseInstance(R"(
; a comment
(instance
  (Names (1 "Ada") ; inline comment
         (2 "Bob"))
)
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Find("Names")->size(), 2u);
}

TEST(SexprParseErrorTest, ReportsOffset) {
  EXPECT_FALSE(ParseSchema("(schema X unknownmeta)").ok());
  EXPECT_FALSE(ParseSchema("(notaschema X relational)").ok());
  EXPECT_FALSE(ParseSchema("(schema X relational").ok());  // missing ')'
  EXPECT_FALSE(ParseSchema("").ok());
  EXPECT_FALSE(ParseInstance("(instance (R (unparsable!)))").ok());
  EXPECT_FALSE(ParseInstance("(instance (R (1) (1 2)))").ok());  // arity
  auto err = ParseSchema("(schema X relational (relation))");
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().message().find("offset"), std::string::npos);
}

TEST(SexprParseErrorTest, SchemaValidationStillApplies) {
  // Structurally fine, semantically broken (dangling fk).
  auto parsed = ParseSchema(
      "(schema X relational (relation R (attr a int64)) "
      "(fk R (a) Missing (b)))");
  EXPECT_FALSE(parsed.ok());
}

TEST(SexprInstanceTest, NumericEdgeCases) {
  auto parsed = ParseInstance("(instance (R (-5 +3 1.5e2)))");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const instance::Tuple& t = *parsed->Find("R")->tuples().begin();
  EXPECT_EQ(t[0], Value::Int64(-5));
  EXPECT_EQ(t[1], Value::Int64(3));
  EXPECT_EQ(t[2], Value::Double(150.0));
}

}  // namespace
}  // namespace mm2::text
