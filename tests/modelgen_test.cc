#include <gtest/gtest.h>

#include "chase/chase.h"
#include "instance/instance.h"
#include "modelgen/modelgen.h"
#include "model/schema.h"

namespace mm2::modelgen {
namespace {

using instance::Instance;
using instance::Value;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

// The Fig. 2 hierarchy: Person <- Employee, Person <- Customer.
model::Schema PersonEr() {
  return SchemaBuilder("ER", Metamodel::kEntityRelationship)
      .EntityType("Person", "",
                  {{"Id", DataType::Int64()}, {"Name", DataType::String()}})
      .EntityType("Employee", "Person", {{"Dept", DataType::String()}})
      .EntityType("Customer", "Person",
                  {{"CreditScore", DataType::Int64()},
                   {"BillingAddr", DataType::String()}})
      .EntitySet("Persons", "Person")
      .Build();
}

// An ER instance with one entity of each concrete type.
Instance PersonInstance(const model::Schema& er) {
  Instance db = Instance::EmptyFor(er);
  auto layout =
      instance::ComputeEntitySetLayout(er, *er.FindEntitySet("Persons"));
  EXPECT_TRUE(layout.ok());
  auto add = [&](const char* type, std::vector<Value> attrs) {
    auto tuple = instance::MakeEntityTuple(*layout, er, type, attrs);
    ASSERT_TRUE(tuple.ok()) << tuple.status();
    ASSERT_TRUE(db.Insert("Persons", *tuple).ok());
  };
  add("Person", {Value::Int64(1), Value::String("Ada")});
  add("Employee", {Value::Int64(2), Value::String("Bob"),
                   Value::String("R&D")});
  add("Customer", {Value::Int64(3), Value::String("Cyd"), Value::Int64(700),
                   Value::String("12 Oak")});
  return db;
}

TEST(ModelGenTest, TablePerTypeShape) {
  auto result = ErToRelational(PersonEr(), InheritanceStrategy::kTablePerType);
  ASSERT_TRUE(result.ok()) << result.status();
  // One table per type.
  ASSERT_EQ(result->relational.relations().size(), 3u);
  const model::Relation* person = result->relational.FindRelation("Person");
  const model::Relation* employee =
      result->relational.FindRelation("Employee");
  ASSERT_NE(person, nullptr);
  ASSERT_NE(employee, nullptr);
  EXPECT_EQ(person->AttributeNames(),
            (std::vector<std::string>{"Id", "Name"}));
  EXPECT_EQ(employee->AttributeNames(),
            (std::vector<std::string>{"Id", "Dept"}));
  // Subtype tables carry a foreign key to the parent.
  ASSERT_EQ(result->relational.foreign_keys().size(), 2u);
  EXPECT_EQ(result->relational.foreign_keys()[0].to_relation, "Person");
  // Fragments: the Person table covers all three types.
  bool found_root_fragment = false;
  for (const MappingFragment& f : result->fragments) {
    if (f.table == "Person") {
      EXPECT_EQ(f.types.size(), 3u);
      found_root_fragment = true;
    }
  }
  EXPECT_TRUE(found_root_fragment);
}

TEST(ModelGenTest, TablePerTypeExchange) {
  model::Schema er = PersonEr();
  auto result = ErToRelational(er, InheritanceStrategy::kTablePerType);
  ASSERT_TRUE(result.ok());
  auto exchanged = chase::RunChase(result->mapping, PersonInstance(er));
  ASSERT_TRUE(exchanged.ok()) << exchanged.status();
  // All three entities land in Person; one row each in Employee/Customer.
  EXPECT_EQ(exchanged->target.Find("Person")->size(), 3u);
  EXPECT_EQ(exchanged->target.Find("Employee")->size(), 1u);
  EXPECT_EQ(exchanged->target.Find("Customer")->size(), 1u);
  EXPECT_TRUE(exchanged->target.Find("Employee")->Contains(
      {Value::Int64(2), Value::String("R&D")}));
}

TEST(ModelGenTest, SingleTableShapeAndExchange) {
  model::Schema er = PersonEr();
  auto result = ErToRelational(er, InheritanceStrategy::kSingleTable);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->relational.relations().size(), 1u);
  const model::Relation& table = result->relational.relations()[0];
  EXPECT_EQ(table.name(), "Person");
  // Discriminator + 5 layout columns.
  EXPECT_EQ(table.arity(), 6u);
  EXPECT_EQ(table.attribute(0).name, "Discriminator");
  // Subtype columns are nullable; root columns are not.
  EXPECT_FALSE(table.attribute(1).nullable);  // Id
  EXPECT_TRUE(table.attribute(3).nullable);   // Dept

  auto exchanged = chase::RunChase(result->mapping, PersonInstance(er));
  ASSERT_TRUE(exchanged.ok());
  EXPECT_EQ(exchanged->target.Find("Person")->size(), 3u);
  // The employee row: discriminator set, customer columns NULL.
  bool found = false;
  for (const instance::Tuple& t :
       exchanged->target.Find("Person")->tuples()) {
    if (t[0] == Value::String("Employee")) {
      found = true;
      EXPECT_EQ(t[1], Value::Int64(2));
      EXPECT_EQ(t[3], Value::String("R&D"));
      EXPECT_TRUE(t[4].is_null());
      EXPECT_TRUE(t[5].is_null());
    }
  }
  EXPECT_TRUE(found);
}

TEST(ModelGenTest, TablePerConcreteShapeAndExchange) {
  model::Schema er = PersonEr();
  auto result =
      ErToRelational(er, InheritanceStrategy::kTablePerConcrete);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->relational.relations().size(), 3u);
  const model::Relation* customer =
      result->relational.FindRelation("Customer");
  ASSERT_NE(customer, nullptr);
  // Full flattened row: no joins needed.
  EXPECT_EQ(customer->AttributeNames(),
            (std::vector<std::string>{"Id", "Name", "CreditScore",
                                      "BillingAddr"}));
  EXPECT_TRUE(result->relational.foreign_keys().empty());

  auto exchanged = chase::RunChase(result->mapping, PersonInstance(er));
  ASSERT_TRUE(exchanged.ok());
  // Each entity lands in exactly its own table.
  EXPECT_EQ(exchanged->target.Find("Person")->size(), 1u);
  EXPECT_EQ(exchanged->target.Find("Employee")->size(), 1u);
  EXPECT_EQ(exchanged->target.Find("Customer")->size(), 1u);
  EXPECT_TRUE(exchanged->target.Find("Employee")->Contains(
      {Value::Int64(2), Value::String("Bob"), Value::String("R&D")}));
}

TEST(ModelGenTest, AbstractRootGetsNoRows) {
  model::Schema er =
      SchemaBuilder("ER", Metamodel::kEntityRelationship)
          .EntityType("Shape", "", {{"Id", DataType::Int64()}}, true)
          .EntityType("Circle", "Shape", {{"R", DataType::Double()}})
          .EntitySet("Shapes", "Shape")
          .Build();
  auto result = ErToRelational(er, InheritanceStrategy::kTablePerConcrete);
  ASSERT_TRUE(result.ok());
  // Only the concrete Circle gets a table.
  ASSERT_EQ(result->relational.relations().size(), 1u);
  EXPECT_EQ(result->relational.relations()[0].name(), "Circle");
}

TEST(ModelGenTest, RejectsErSchemaWithoutEntitySets) {
  model::Schema er = SchemaBuilder("ER", Metamodel::kEntityRelationship)
                         .EntityType("Person", "", {{"Id", DataType::Int64()}})
                         .Build();
  auto result = ErToRelational(er, InheritanceStrategy::kTablePerType);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModelGenTest, RejectsRootWithoutAttributes) {
  model::Schema er = SchemaBuilder("ER", Metamodel::kEntityRelationship)
                         .EntityType("Thing", "", {})
                         .EntitySet("Things", "Thing")
                         .Build();
  auto result = ErToRelational(er, InheritanceStrategy::kTablePerType);
  EXPECT_FALSE(result.ok());
}

TEST(ModelGenTest, AllStrategiesProduceValidMappings) {
  model::Schema er = PersonEr();
  for (InheritanceStrategy strategy :
       {InheritanceStrategy::kSingleTable, InheritanceStrategy::kTablePerType,
        InheritanceStrategy::kTablePerConcrete}) {
    auto result = ErToRelational(er, strategy);
    ASSERT_TRUE(result.ok()) << InheritanceStrategyToString(strategy);
    EXPECT_TRUE(result->relational.Validate().ok());
    EXPECT_TRUE(result->mapping.Validate().ok());
    EXPECT_FALSE(result->fragments.empty());
  }
}

TEST(RelationalToNestedTest, FoldsChildrenIntoCollections) {
  model::Schema rel =
      SchemaBuilder("S", Metamodel::kRelational)
          .Relation("Order", {{"OrderId", DataType::Int64()},
                              {"Customer", DataType::String()}},
                    {"OrderId"})
          .Relation("Item", {{"OrderId", DataType::Int64()},
                             {"Sku", DataType::String()},
                             {"Qty", DataType::Int64()}},
                    {"Sku"})
          .ForeignKey("Item", {"OrderId"}, "Order", {"OrderId"})
          .Build();
  auto result = RelationalToNested(rel);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->nested.relations().size(), 1u);
  const model::Relation& doc = result->nested.relations()[0];
  EXPECT_EQ(doc.name(), "Order_doc");
  ASSERT_EQ(doc.arity(), 3u);
  // The folded child: collection<struct<Sku, Qty>> (FK column dropped).
  const model::Attribute& items = doc.attribute(2);
  EXPECT_EQ(items.name, "Item");
  ASSERT_EQ(items.type->kind(), DataType::Kind::kCollection);
  EXPECT_EQ(items.type->element()->kind(), DataType::Kind::kStruct);
  EXPECT_EQ(items.type->element()->fields().size(), 2u);
  EXPECT_TRUE(result->mapping.Validate().ok());
}

TEST(RelationalToNestedTest, StandaloneRelationsPassThrough) {
  model::Schema rel = SchemaBuilder("S", Metamodel::kRelational)
                          .Relation("Log", {{"Ts", DataType::Int64()},
                                            {"Msg", DataType::String()}})
                          .Build();
  auto result = RelationalToNested(rel);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->nested.relations().size(), 1u);
  EXPECT_EQ(result->nested.relations()[0].name(), "Log_doc");
  EXPECT_EQ(result->nested.relations()[0].arity(), 2u);
}

}  // namespace
}  // namespace mm2::modelgen
