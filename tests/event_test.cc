// Tests for the structured event log / flight recorder (obs/event.h) and
// the cooperative CancelToken.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/event.h"

namespace mm2::obs {
namespace {

TEST(EventLogTest, DisabledByDefault) {
  EventLog log;
  EXPECT_FALSE(log.enabled());
  EXPECT_EQ(log.format(), EventFormat::kOff);
  log.Emit(EventLevel::kInfo, "e", {});
  EXPECT_EQ(log.emitted(), 0u);
  EXPECT_TRUE(log.Recent().empty());
  EXPECT_EQ(log.DumpRecent(), "");
}

TEST(EventLogTest, RecordsToSinkAndRing) {
  EventLog log;
  std::ostringstream sink;
  log.Configure(EventFormat::kText, &sink);
  EXPECT_TRUE(log.enabled());
  log.Emit(EventLevel::kInfo, "chase.heartbeat",
           {F("round", std::uint64_t{2}), F("rule", "tgd0")});
  EXPECT_EQ(log.emitted(), 1u);
  std::string line = sink.str();
  EXPECT_NE(line.find("chase.heartbeat"), std::string::npos);
  EXPECT_NE(line.find("round=2"), std::string::npos);
  EXPECT_NE(line.find("rule=tgd0"), std::string::npos);
  std::vector<Event> recent = log.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].name, "chase.heartbeat");
  EXPECT_EQ(recent[0].seq, 1u);
}

TEST(EventLogTest, FlightRecorderOnlyModeNeedsNoSink) {
  EventLog log;
  log.Configure(EventFormat::kText, /*sink=*/nullptr);
  log.Emit(EventLevel::kInfo, "e1", {});
  log.Emit(EventLevel::kWarn, "e2", {});
  EXPECT_EQ(log.Recent().size(), 2u);
  std::string dump = log.DumpRecent();
  EXPECT_NE(dump.find("-- flight recorder (last 2 events) --"),
            std::string::npos);
  EXPECT_NE(dump.find("e1"), std::string::npos);
  EXPECT_NE(dump.find("e2"), std::string::npos);
}

TEST(EventLogTest, RingKeepsLastNInOrder) {
  EventLog log(/*ring_capacity=*/4);
  log.Configure(EventFormat::kText, /*sink=*/nullptr);
  for (int i = 0; i < 10; ++i) {
    log.Emit(EventLevel::kInfo, "e" + std::to_string(i), {});
  }
  std::vector<Event> recent = log.Recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent[0].name, "e6");
  EXPECT_EQ(recent[3].name, "e9");
  EXPECT_EQ(log.emitted(), 10u);
  // Seq keeps counting across the wrap.
  EXPECT_EQ(recent[3].seq, 10u);
}

TEST(EventLogTest, JsonLinesAreWellFormed) {
  EventLog log;
  std::ostringstream sink;
  log.Configure(EventFormat::kJson, &sink);
  log.Emit(EventLevel::kWarn, "test.event",
           {F("text", "say \"hi\"\nback\\slash"), F("n", std::int64_t{-3}),
            F("x", 2.5)});
  std::string line = sink.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  line.pop_back();
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"level\": \"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"event\": \"test.event\""), std::string::npos);
  // Escapes: quote, newline, backslash; numbers unquoted.
  EXPECT_NE(line.find("say \\\"hi\\\"\\nback\\\\slash"), std::string::npos);
  EXPECT_NE(line.find("\"n\": -3"), std::string::npos);
  EXPECT_NE(line.find("\"x\": 2.5"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(EventLogTest, MinLevelFiltersAtTheDoor) {
  EventLog log;
  log.Configure(EventFormat::kText, /*sink=*/nullptr);
  log.SetMinLevel(EventLevel::kWarn);
  log.Emit(EventLevel::kDebug, "dropped", {});
  log.Emit(EventLevel::kInfo, "dropped too", {});
  log.Emit(EventLevel::kError, "kept", {});
  std::vector<Event> recent = log.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].name, "kept");
}

TEST(EventLogTest, ConfigureFromEnvReadsMm2Log) {
  {
    EventLog log;
    ::setenv("MM2_LOG", "json", 1);
    log.ConfigureFromEnv();
    EXPECT_EQ(log.format(), EventFormat::kJson);
  }
  {
    EventLog log;
    ::setenv("MM2_LOG", "text", 1);
    log.ConfigureFromEnv();
    EXPECT_EQ(log.format(), EventFormat::kText);
  }
  {
    EventLog log;
    ::setenv("MM2_LOG", "off", 1);
    log.ConfigureFromEnv();
    EXPECT_EQ(log.format(), EventFormat::kOff);
    EXPECT_FALSE(log.enabled());
  }
  {
    EventLog log;
    ::unsetenv("MM2_LOG");
    log.ConfigureFromEnv();
    EXPECT_EQ(log.format(), EventFormat::kOff);
  }
}

TEST(EventLogTest, ParseEventLevelRoundTripsNames) {
  for (EventLevel level : {EventLevel::kDebug, EventLevel::kInfo,
                           EventLevel::kWarn, EventLevel::kError}) {
    EventLevel parsed = EventLevel::kDebug;
    ASSERT_TRUE(ParseEventLevel(EventLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  EventLevel untouched = EventLevel::kError;
  EXPECT_FALSE(ParseEventLevel("verbose", &untouched));
  EXPECT_FALSE(ParseEventLevel("", &untouched));
  EXPECT_EQ(untouched, EventLevel::kError);
}

TEST(EventLogTest, ConfigureFromEnvReadsMm2LogLevel) {
  {
    EventLog log;
    ::setenv("MM2_LOG", "text", 1);
    ::setenv("MM2_LOG_LEVEL", "warn", 1);
    log.ConfigureFromEnv();
    EXPECT_EQ(log.format(), EventFormat::kText);
    EXPECT_EQ(log.min_level(), EventLevel::kWarn);
    log.Emit(EventLevel::kInfo, "dropped", {});
    log.Emit(EventLevel::kWarn, "kept", {});
    std::vector<Event> recent = log.Recent();
    ASSERT_EQ(recent.size(), 1u);
    EXPECT_EQ(recent[0].name, "kept");
  }
  {
    // An unparsable level leaves the default (keep everything) in place.
    EventLog log;
    ::setenv("MM2_LOG_LEVEL", "loudest", 1);
    log.ConfigureFromEnv();
    EXPECT_EQ(log.min_level(), EventLevel::kDebug);
  }
  {
    // MM2_LOG_LEVEL alone does not switch the log on.
    EventLog log;
    ::unsetenv("MM2_LOG");
    ::setenv("MM2_LOG_LEVEL", "error", 1);
    log.ConfigureFromEnv();
    EXPECT_EQ(log.format(), EventFormat::kOff);
    EXPECT_EQ(log.min_level(), EventLevel::kError);
  }
  ::unsetenv("MM2_LOG_LEVEL");
  ::unsetenv("MM2_LOG");
}

TEST(EventLogTest, ConfigureFileWritesAndFailsOnBadPath) {
  EventLog log;
  EXPECT_FALSE(
      log.ConfigureFile(EventFormat::kJson, "/nonexistent-dir/x.log").ok());
  std::string path = ::testing::TempDir() + "/event_test_log.jsonl";
  ASSERT_TRUE(log.ConfigureFile(EventFormat::kJson, path).ok());
  log.Emit(EventLevel::kInfo, "to.file", {F("k", "v")});
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"event\": \"to.file\""), std::string::npos);
}

TEST(EventLogTest, ClearEmptiesTheRing) {
  EventLog log;
  log.Configure(EventFormat::kText, /*sink=*/nullptr);
  log.Emit(EventLevel::kInfo, "e", {});
  ASSERT_EQ(log.Recent().size(), 1u);
  log.Clear();
  EXPECT_TRUE(log.Recent().empty());
  EXPECT_EQ(log.DumpRecent(), "");
}

TEST(EventLogTest, ConcurrentEmittersDoNotLoseEvents) {
  EventLog log(/*ring_capacity=*/1024);
  log.Configure(EventFormat::kText, /*sink=*/nullptr);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Emit(EventLevel::kInfo, "t" + std::to_string(t),
                 {F("i", static_cast<std::int64_t>(i))});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(log.emitted(), static_cast<std::uint64_t>(kThreads * kPerThread));
  std::vector<Event> recent = log.Recent();
  EXPECT_EQ(recent.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // Seq numbers are unique and dense.
  std::vector<std::uint64_t> seqs;
  for (const Event& e : recent) seqs.push_back(e.seq);
  std::sort(seqs.begin(), seqs.end());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], i + 1);
  }
}

TEST(CancelTokenTest, FirstStopReasonWins) {
  CancelToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.reason(), "");
  token.RequestStop("budget breached");
  token.RequestStop("second caller");
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.reason(), "budget breached");
  token.Reset();
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.reason(), "");
}

TEST(CancelTokenTest, ConcurrentRequestsAreSafe) {
  CancelToken token;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(
        [&token, t] { token.RequestStop("caller " + std::to_string(t)); });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_NE(token.reason().find("caller "), std::string::npos);
}

TEST(RssProbeTest, ReportsPlausibleValues) {
  double peak = PeakRssKb();
  double current = CurrentRssKb();
  // On Linux both reads succeed and peak >= current modulo races; at
  // minimum both are non-negative and peak is nonzero for a live process.
  EXPECT_GE(peak, 0.0);
  EXPECT_GE(current, 0.0);
  EXPECT_GT(peak, 0.0);
}

}  // namespace
}  // namespace mm2::obs
