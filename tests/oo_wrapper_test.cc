// Tests for relational => OO wrapper generation (the wrapper-generation
// usage scenario): schema shape, fragment compilation, roundtripping, and
// object-level update propagation over arbitrary generated schemas.
#include <gtest/gtest.h>

#include "modelgen/modelgen.h"
#include "runtime/runtime.h"
#include "transgen/transgen.h"
#include "workload/generators.h"

namespace mm2::modelgen {
namespace {

using instance::Instance;
using instance::Value;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

model::Schema Shop() {
  return SchemaBuilder("Shop", Metamodel::kRelational)
      .Relation("Orders", {{"OrderId", DataType::Int64()},
                           {"CustomerId", DataType::Int64()},
                           {"Total", DataType::Double()}},
                {"OrderId"})
      .Relation("Customers", {{"CustomerId", DataType::Int64()},
                              {"Name", DataType::String()}},
                {"CustomerId"})
      .ForeignKey("Orders", {"CustomerId"}, "Customers", {"CustomerId"})
      .Build();
}

TEST(OoWrapperTest, SchemaShape) {
  auto result = RelationalToOo(Shop());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->oo.metamodel(), Metamodel::kObjectOriented);
  EXPECT_EQ(result->oo.entity_types().size(), 2u);
  EXPECT_EQ(result->oo.entity_sets().size(), 2u);
  const model::EntityType* orders = result->oo.FindEntityType("Orders");
  ASSERT_NE(orders, nullptr);
  EXPECT_EQ(orders->attributes.size(), 3u);
  ASSERT_NE(result->oo.FindEntitySet("OrdersSet"), nullptr);
  EXPECT_EQ(result->oo.FindEntitySet("OrdersSet")->root_type, "Orders");
  EXPECT_EQ(result->fragments.size(), 2u);
  EXPECT_TRUE(result->mapping.Validate().ok());
}

TEST(OoWrapperTest, RejectsDegenerateInput) {
  model::Schema empty("E", Metamodel::kRelational);
  EXPECT_FALSE(RelationalToOo(empty).ok());
}

TEST(OoWrapperTest, ViewsRoundtripPerEntitySet) {
  auto result = RelationalToOo(Shop());
  ASSERT_TRUE(result.ok());
  // One compiled view bundle per entity set.
  for (const model::EntitySet& set : result->oo.entity_sets()) {
    auto views = transgen::CompileFragments(result->oo, set.name, Shop(),
                                            result->fragments);
    ASSERT_TRUE(views.ok()) << set.name << ": " << views.status();
    // Build an object extent and roundtrip it.
    Instance entities = Instance::EmptyFor(result->oo);
    auto layout = instance::ComputeEntitySetLayout(result->oo, set);
    ASSERT_TRUE(layout.ok());
    std::vector<Value> values;
    for (std::size_t i = 0; i < layout->columns.size(); ++i) {
      values.push_back(Value::Int64(static_cast<std::int64_t>(i)));
    }
    auto tuple = instance::MakeEntityTuple(*layout, result->oo,
                                           set.root_type, values);
    ASSERT_TRUE(tuple.ok());
    ASSERT_TRUE(entities.Insert(set.name, *tuple).ok());
    auto ok = transgen::VerifyRoundtrip(*views, result->oo, Shop(), entities);
    ASSERT_TRUE(ok.ok()) << ok.status();
    EXPECT_TRUE(*ok);
  }
}

TEST(OoWrapperTest, ObjectUpdatesPropagateToTables) {
  model::Schema shop = Shop();
  auto result = RelationalToOo(shop);
  ASSERT_TRUE(result.ok());
  auto views = transgen::CompileFragments(result->oo, "CustomersSet", shop,
                                          result->fragments);
  ASSERT_TRUE(views.ok());

  runtime::UpdatePropagator propagator(*views, result->fragments,
                                       result->oo, shop);
  ASSERT_TRUE(propagator.Initialize(Instance::EmptyFor(result->oo)).ok());

  auto layout = instance::ComputeEntitySetLayout(
      result->oo, *result->oo.FindEntitySet("CustomersSet"));
  ASSERT_TRUE(layout.ok());
  auto ada = instance::MakeEntityTuple(*layout, result->oo, "Customers",
                                       {Value::Int64(1),
                                        Value::String("Ada")});
  ASSERT_TRUE(ada.ok());
  runtime::EntityOp insert;
  insert.kind = runtime::EntityOp::Kind::kInsert;
  insert.entity = *ada;
  auto deltas = propagator.Apply(insert);
  ASSERT_TRUE(deltas.ok()) << deltas.status();
  ASSERT_EQ(deltas->count("Customers"), 1u);
  EXPECT_TRUE(propagator.tables().Find("Customers")->Contains(
      {Value::Int64(1), Value::String("Ada")}));
}

TEST(OoWrapperTest, WorksAcrossRandomSchemas) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    workload::Rng rng(seed);
    model::Schema schema =
        workload::RandomRelationalSchema("R", 4, 5, &rng);
    auto result = RelationalToOo(schema);
    ASSERT_TRUE(result.ok()) << result.status();
    Instance db = workload::RandomInstance(schema, 5, &rng);
    // Wrap every table's rows as objects, then push them back down and
    // compare with the original table.
    for (const model::EntitySet& set : result->oo.entity_sets()) {
      auto views = transgen::CompileFragments(result->oo, set.name, schema,
                                              result->fragments);
      ASSERT_TRUE(views.ok()) << views.status();
      Instance entities = Instance::EmptyFor(result->oo);
      auto layout = instance::ComputeEntitySetLayout(result->oo, set);
      ASSERT_TRUE(layout.ok());
      const instance::RelationInstance* table = db.Find(set.root_type);
      ASSERT_NE(table, nullptr);
      for (const instance::Tuple& row : table->tuples()) {
        std::vector<Value> values(row.begin(), row.end());
        auto tuple = instance::MakeEntityTuple(*layout, result->oo,
                                               set.root_type, values);
        ASSERT_TRUE(tuple.ok());
        entities.InsertUnchecked(set.name, *tuple);
      }
      Instance tables;
      ASSERT_TRUE(transgen::ApplyUpdateViews(*views, result->oo, schema,
                                             entities, &tables)
                      .ok());
      EXPECT_EQ(tables.Find(set.root_type)->tuples(), table->tuples())
          << "seed=" << seed << " set=" << set.name;
    }
  }
}

}  // namespace
}  // namespace mm2::modelgen
