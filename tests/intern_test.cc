// Tests for the string intern pool and the compact Value representation:
// pool round-trips, hash/equality/order consistency, text-layer identity
// (parse -> intern -> print), and cross-thread interning races (the latter
// is in scripts/check.sh's --tsan filter).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "instance/instance.h"
#include "instance/intern.h"
#include "instance/value.h"
#include "text/sexpr.h"

namespace mm2::instance {
namespace {

TEST(InternPool, RoundTripsAndDeduplicates) {
  StringPool& pool = StringPool::Global();
  StringPool::StringId a = pool.Intern("intern_round_trip_a");
  StringPool::StringId b = pool.Intern("intern_round_trip_b");
  EXPECT_EQ(pool.Get(a), "intern_round_trip_a");
  EXPECT_EQ(pool.Get(b), "intern_round_trip_b");
  EXPECT_NE(a, b);
  // Re-interning returns the same id — the pool is canonical.
  EXPECT_EQ(pool.Intern("intern_round_trip_a"), a);
  EXPECT_EQ(pool.Intern(std::string("intern_round_trip_a")), a);
}

TEST(InternPool, CachesTheHashComputedAtInternTime) {
  StringPool& pool = StringPool::Global();
  const std::string s = "intern_hash_cache_probe";
  StringPool::StringId id = pool.Intern(s);
  EXPECT_EQ(pool.HashOf(id), StringPool::HashBytes(s));
}

TEST(InternPool, CompareIsLexicographicAndReflexive) {
  StringPool& pool = StringPool::Global();
  StringPool::StringId apple = pool.Intern("apple");
  StringPool::StringId banana = pool.Intern("banana");
  EXPECT_EQ(pool.Compare(apple, apple), 0);
  EXPECT_LT(pool.Compare(apple, banana), 0);
  EXPECT_GT(pool.Compare(banana, apple), 0);
}

TEST(InternPool, StatsCountDistinctStringsAndHits) {
  StringPool& pool = StringPool::Global();
  StringPool::Stats before = pool.GetStats();
  pool.Intern("intern_stats_unique_1");
  pool.Intern("intern_stats_unique_2");
  pool.Intern("intern_stats_unique_1");  // hit
  StringPool::Stats after = pool.GetStats();
  EXPECT_EQ(after.strings, before.strings + 2);
  EXPECT_EQ(after.misses, before.misses + 2);
  EXPECT_GE(after.hits, before.hits + 1);
  EXPECT_GE(after.bytes, before.bytes + 2 * sizeof("intern_stats_unique_1") -
                             2);  // payload bytes, no terminators
}

TEST(InternPool, GetReferencesAreStableAcrossGrowth) {
  StringPool& pool = StringPool::Global();
  StringPool::StringId id = pool.Intern("stable_reference_probe");
  const std::string* addr = &pool.Get(id);
  // Force thousands of inserts; entry storage is append-only chunks, so the
  // earlier reference must not move.
  for (int i = 0; i < 5000; ++i) {
    pool.Intern("stable_reference_filler_" + std::to_string(i));
  }
  EXPECT_EQ(&pool.Get(id), addr);
  EXPECT_EQ(pool.Get(id), "stable_reference_probe");
}

// The --tsan gate runs this: concurrent threads interning overlapping string
// sets must agree on every id and never tear an entry.
TEST(InternPool, ConcurrentInterningAgreesOnIds) {
  constexpr int kThreads = 8;
  constexpr int kStrings = 300;
  std::vector<std::vector<StringPool::StringId>> ids(
      kThreads, std::vector<StringPool::StringId>(kStrings));
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &ids] {
      StringPool& pool = StringPool::Global();
      for (int i = 0; i < kStrings; ++i) {
        // Every thread interns the same key set, in a different order.
        int k = (i * 7 + t * 13) % kStrings;
        ids[t][static_cast<std::size_t>(k)] =
            pool.Intern("race_key_" + std::to_string(k));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  StringPool& pool = StringPool::Global();
  for (int k = 0; k < kStrings; ++k) {
    StringPool::StringId expected = ids[0][static_cast<std::size_t>(k)];
    EXPECT_EQ(pool.Get(expected), "race_key_" + std::to_string(k));
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(ids[t][static_cast<std::size_t>(k)], expected)
          << "thread " << t << " key " << k;
    }
  }
}

TEST(ValueIntern, StaysCompactAndTriviallyCopyable) {
  EXPECT_EQ(sizeof(Value), 16u);
  EXPECT_TRUE(std::is_trivially_copyable_v<Value>);
}

TEST(ValueIntern, StringEqualityIsIdEquality) {
  Value a = Value::String("interned_equality_probe");
  Value b = Value::String("interned_equality_probe");
  Value c = Value::String("interned_equality_other");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.string_id(), b.string_id());
  EXPECT_NE(a, c);
  EXPECT_EQ(a.str(), "interned_equality_probe");
}

TEST(ValueIntern, InternedStringConstructorMatchesString) {
  StringPool::StringId id = StringPool::Global().Intern("batch_loader_probe");
  Value direct = Value::InternedString(id);
  Value via_string = Value::String("batch_loader_probe");
  EXPECT_EQ(direct, via_string);
  EXPECT_EQ(direct.Hash(), via_string.Hash());
  EXPECT_EQ(direct.str(), via_string.str());
}

TEST(ValueIntern, OrderMatchesLexicographicStringOrder) {
  std::vector<std::string> raw = {"pear",  "apple", "Banana", "apple2",
                                  "",      "zoo",   "app",    "banana"};
  std::vector<Value> values;
  values.reserve(raw.size());
  for (const std::string& s : raw) values.push_back(Value::String(s));
  std::sort(values.begin(), values.end());
  std::sort(raw.begin(), raw.end());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(values[i].str(), raw[i]) << "position " << i;
  }
}

TEST(ValueIntern, EqualValuesHashEqual) {
  EXPECT_EQ(Value::String("hash_probe").Hash(),
            Value::String("hash_probe").Hash());
  EXPECT_EQ(Value::Int64(42).Hash(), Value::Int64(42).Hash());
  // IEEE: -0.0 == 0.0, so their hashes must agree too.
  EXPECT_EQ(Value::Double(-0.0), Value::Double(0.0));
  EXPECT_EQ(Value::Double(-0.0).Hash(), Value::Double(0.0).Hash());
  // Kinds separate: Int64(1) != Bool(true) even with equal payloads.
  EXPECT_NE(Value::Int64(1), Value::Bool(true));
}

TEST(ValueIntern, TupleHashFoldsCachedHashesConsistently) {
  Tuple t = {Value::String("alpha"), Value::Int64(7), Value::Double(2.5)};
  Tuple copy = t;  // memcpy-able copy must hash identically
  EXPECT_EQ(TupleHash{}(t), TupleHash{}(copy));
  Tuple rebuilt = {Value::String("alpha"), Value::Int64(7),
                   Value::Double(2.5)};
  EXPECT_EQ(TupleHash{}(t), TupleHash{}(rebuilt));
}

// Text-layer identity: parse -> (values intern on construction) -> print
// must reproduce the input, and reparsing the print yields an equal
// instance. This is the "interning is invisible to serialization" check.
TEST(ValueIntern, TextRoundTripIsIdentity) {
  const std::string text =
      "(instance\n"
      "  (Emp (\"ada\" 1 3.500000) (\"grace\" 2 2.250000))\n"
      "  (Tags (\"a b\" #t) (\"quote\\\"d\" #f) (\"\" #t))\n"
      "  (Mixed (null N7 d:19000))\n"
      ")\n";
  auto parsed = text::ParseInstance(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  std::string printed = text::InstanceToText(*parsed);
  auto reparsed = text::ParseInstance(printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_TRUE(parsed->Equals(*reparsed)) << printed;
  // Printing is deterministic and stable under re-interning.
  EXPECT_EQ(printed, text::InstanceToText(*reparsed));
}

// Sorted-set iteration order (what InstanceToText prints) must follow the
// string order, not id order: ids are assigned in intern order, which here
// is deliberately reverse-alphabetical.
TEST(ValueIntern, IterationOrderIsStringOrderNotInternOrder) {
  Instance db;
  db.DeclareRelation("S", 1);
  db.InsertUnchecked("S", {Value::String("zebra_order_probe")});
  db.InsertUnchecked("S", {Value::String("mango_order_probe")});
  db.InsertUnchecked("S", {Value::String("apple_order_probe")});
  const RelationInstance* rel = db.Find("S");
  ASSERT_NE(rel, nullptr);
  std::vector<std::string> seen;
  for (const Tuple& t : rel->tuples()) seen.push_back(t[0].str());
  std::vector<std::string> sorted = seen;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(seen, sorted);
}

}  // namespace
}  // namespace mm2::instance
