#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace mm2::obs {
namespace {

TEST(MetricsTest, CounterGaugeBasics) {
  MetricsRegistry registry;
  registry.GetCounter("c").Increment();
  registry.GetCounter("c").Increment(4);
  registry.GetGauge("g").Set(7);
  registry.GetGauge("g").Add(-2);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.FindCounter("c"), nullptr);
  EXPECT_EQ(snap.FindCounter("c")->value, 5u);
  ASSERT_NE(snap.FindGauge("g"), nullptr);
  EXPECT_EQ(snap.FindGauge("g")->value, 5);
  EXPECT_EQ(snap.FindCounter("missing"), nullptr);

  registry.Reset();
  EXPECT_EQ(registry.Snapshot().FindCounter("c")->value, 0u);
}

TEST(MetricsTest, HistogramBucketsAndPercentiles) {
  Histogram hist({10, 100, 1000});
  for (int i = 0; i < 90; ++i) hist.Record(5);    // bucket <=10
  for (int i = 0; i < 9; ++i) hist.Record(50);    // bucket <=100
  hist.Record(5000);                               // overflow

  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.min(), 5);
  EXPECT_EQ(hist.max(), 5000);
  std::vector<std::uint64_t> counts = hist.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 90u);
  EXPECT_EQ(counts[1], 9u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);

  MetricsRegistry registry;
  registry.GetHistogram("h", {10, 100, 1000});
  for (int i = 0; i < 90; ++i) registry.GetHistogram("h").Record(5);
  for (int i = 0; i < 10; ++i) registry.GetHistogram("h").Record(50);
  MetricsSnapshot registry_snap = registry.Snapshot();
  const HistogramSnapshot* snap = registry_snap.FindHistogram("h");
  ASSERT_NE(snap, nullptr);
  EXPECT_LE(snap->Percentile(0.5), 10);   // median in the first bucket
  EXPECT_GT(snap->Percentile(0.99), 10);  // p99 lands in the second
  EXPECT_LE(snap->Percentile(0.99), 100);
  EXPECT_EQ(snap->Percentile(1.0), 50);   // clamped to observed max
}

TEST(MetricsTest, ConcurrentRecordingSmoke) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIterations; ++i) {
        registry.GetCounter("hits").Increment();
        registry.GetGauge("level").Add(1);
        registry.GetHistogram("lat", {1, 10, 100}).Record(i % 200);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.FindCounter("hits")->value,
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(snap.FindGauge("level")->value, kThreads * kIterations);
  const HistogramSnapshot* hist = snap.FindHistogram("lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, static_cast<std::uint64_t>(kThreads) * kIterations);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : hist->counts) bucket_total += c;
  EXPECT_EQ(bucket_total, hist->count);
}

TEST(TracerTest, SpanNestingAndAttributes) {
  Tracer tracer;
  // Disabled tracer: ids are 0 and nothing is recorded.
  EXPECT_EQ(tracer.BeginSpan("ignored"), 0u);
  tracer.EndSpan(0);
  EXPECT_EQ(tracer.completed_spans(), 0u);

  tracer.Enable();
  std::uint64_t root = tracer.BeginSpan("root");
  std::uint64_t child = tracer.BeginSpan("child");
  tracer.SetAttribute(child, "rows", "42");
  std::uint64_t grandchild = tracer.BeginSpan("grandchild");
  tracer.EndSpan(grandchild);
  tracer.EndSpan(child);
  std::uint64_t sibling = tracer.BeginSpan("sibling");
  tracer.EndSpan(sibling);
  tracer.EndSpan(root);

  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Snapshot is start-ordered: root, child, grandchild, sibling.
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent_id, root);
  EXPECT_EQ(spans[2].name, "grandchild");
  EXPECT_EQ(spans[2].parent_id, child);
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[3].parent_id, root);
  ASSERT_EQ(spans[1].attributes.size(), 1u);
  EXPECT_EQ(spans[1].attributes[0].first, "rows");
  EXPECT_EQ(spans[1].attributes[0].second, "42");

  std::string text = tracer.ToText();
  EXPECT_NE(text.find("root"), std::string::npos);
  EXPECT_NE(text.find("  child"), std::string::npos);
  EXPECT_NE(text.find("    grandchild"), std::string::npos);
  EXPECT_NE(text.find("rows=42"), std::string::npos);
}

TEST(TracerTest, ObsSpanRaiiIsNullSafe) {
  {
    ObsSpan span(nullptr, "nothing");
    span.SetAttribute("k", "v");
  }
  Context ctx;
  ctx.tracer.Enable();
  {
    ObsSpan outer(&ctx, "outer");
    ObsSpan inner(&ctx, "inner");
    inner.SetAttribute("n", std::uint64_t{7});
  }
  std::vector<SpanRecord> spans = ctx.tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
}

// Minimal structural JSON check: balanced braces/brackets outside strings,
// quotes closed. Enough to catch malformed escaping or truncation.
bool JsonWellFormed(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(TracerTest, ChromeJsonWellFormed) {
  Context ctx;
  ctx.tracer.Enable();
  {
    ObsSpan op(&ctx, "op.exchange");
    op.SetAttribute("quote\"and\\slash", "line\nbreak\ttab");
    ObsSpan round(&ctx, "chase.round");
  }
  std::string json = ctx.tracer.ToChromeJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_EQ(json.find("{\"traceEvents\": ["), 0u);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("op.exchange"), std::string::npos);
  EXPECT_NE(json.find("chase.round"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);  // newline was escaped
  // One "ph" event per completed span.
  std::size_t events = 0;
  for (std::size_t pos = json.find("\"ph\""); pos != std::string::npos;
       pos = json.find("\"ph\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 2u);
}

TEST(OpSpanTest, RecordsCallsLatencyAndErrors) {
  Context ctx;
  {
    OpSpan ok_op(&ctx, "compose");
    ok_op.Finish(Status::OK());
  }
  {
    OpSpan bad_op(&ctx, "compose");
    Status out = bad_op.Finish(Status::Unsupported("too big"));
    EXPECT_EQ(out.code(), StatusCode::kUnsupported);
  }
  { OpSpan destructor_ok(&ctx, "compose"); }

  MetricsSnapshot snap = ctx.metrics.Snapshot();
  EXPECT_EQ(snap.FindCounter("op.compose.calls")->value, 3u);
  EXPECT_EQ(snap.FindCounter("op.compose.errors")->value, 1u);
  EXPECT_EQ(snap.FindHistogram("op.compose.latency_us")->count, 3u);
}

}  // namespace
}  // namespace mm2::obs
