#include <gtest/gtest.h>

#include "chase/chase.h"
#include "logic/implication.h"
#include "text/sexpr.h"

namespace mm2::text {
namespace {

using instance::Value;
using logic::Mapping;

constexpr char kFig6Mapping[] = R"(
(mapping mapSSp
  (source (schema S relational
    (relation Names (attr SID int64 key) (attr Name string))
    (relation Addresses (attr SID int64 key) (attr Address string)
              (attr Country string))))
  (target (schema Sprime relational
    (relation NamesP (attr SID int64 key) (attr Name string))
    (relation Local (attr SID int64 key) (attr Address string))
    (relation Foreign (attr SID int64 key) (attr Address string)
              (attr Country string))))
  (tgd (body (Names s n)) (head (NamesP s n)))
  (tgd (body (Addresses s a "US")) (head (Local s a)))
  (tgd (body (Addresses s a c)) (head (Foreign s a c))))
)";

TEST(MappingTextTest, ParsesFig6Mapping) {
  auto m = ParseMapping(kFig6Mapping);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->name(), "mapSSp");
  EXPECT_EQ(m->source().name(), "S");
  EXPECT_EQ(m->target().name(), "Sprime");
  ASSERT_EQ(m->tgds().size(), 3u);
  // The "US" constant survives.
  EXPECT_EQ(m->tgds()[1].body[0].terms[2],
            logic::Term::Const(Value::String("US")));
  EXPECT_TRUE(m->Validate().ok());
}

TEST(MappingTextTest, RoundTripPreservesSemantics) {
  auto original = ParseMapping(kFig6Mapping);
  ASSERT_TRUE(original.ok());
  std::string rendered = MappingToText(*original);
  auto reparsed = ParseMapping(rendered);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << rendered;
  auto equivalent = logic::AreEquivalent(*original, *reparsed);
  ASSERT_TRUE(equivalent.ok()) << equivalent.status();
  EXPECT_TRUE(*equivalent);
  // Rendering is a fixpoint after one round.
  EXPECT_EQ(MappingToText(*reparsed), rendered);
}

TEST(MappingTextTest, EgdsRoundTrip) {
  const char* text = R"(
(mapping keyed
  (source (schema S relational (relation R (attr a int64) (attr b string))))
  (target (schema T relational (relation U (attr a int64) (attr b string))))
  (tgd (body (R x y)) (head (U x y)))
  (egd (body (U k v1) (U k v2)) (eq v1 v2)))
)";
  auto m = ParseMapping(text);
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_EQ(m->target_egds().size(), 1u);
  EXPECT_EQ(m->target_egds()[0].left, "v1");
  auto reparsed = ParseMapping(MappingToText(*m));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->target_egds().size(), 1u);
}

TEST(MappingTextTest, ParsedMappingExecutes) {
  auto m = ParseMapping(kFig6Mapping);
  ASSERT_TRUE(m.ok());
  instance::Instance db;
  db.DeclareRelation("Names", 2);
  db.DeclareRelation("Addresses", 3);
  ASSERT_TRUE(db.Insert("Names", {Value::Int64(1), Value::String("Ada")}).ok());
  ASSERT_TRUE(db.Insert("Addresses", {Value::Int64(1), Value::String("x"),
                                      Value::String("US")})
                  .ok());
  auto result = chase::RunChase(*m, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->target.Find("Local")->size(), 1u);
  EXPECT_EQ(result->target.Find("NamesP")->size(), 1u);
}

TEST(MappingTextTest, Errors) {
  EXPECT_FALSE(ParseMapping("(notamapping x)").ok());
  EXPECT_FALSE(ParseMapping("(mapping m)").ok());  // no source/target
  EXPECT_FALSE(ParseMapping(R"(
(mapping m
  (source (schema S relational (relation R (attr a int64))))
  (target (schema T relational (relation U (attr a int64))))
  (tgd (body (Missing x)) (head (U x)))))").ok());  // vocabulary error
  EXPECT_FALSE(ParseMapping(R"(
(mapping m
  (source (schema S relational (relation R (attr a int64))))
  (target (schema T relational (relation U (attr a int64))))
  (tgd (body (R x)))))").ok());  // malformed tgd
  // Numeric-looking garbage term.
  EXPECT_FALSE(ParseMapping(R"(
(mapping m
  (source (schema S relational (relation R (attr a int64))))
  (target (schema T relational (relation U (attr a int64))))
  (tgd (body (R 12x)) (head (U y)))))").ok());
}

}  // namespace
}  // namespace mm2::text
