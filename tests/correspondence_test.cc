// Tests for the Fig. 4 scenario: interpreting correspondences between
// snowflake schemas as join-equality mapping constraints.
#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "chase/chase.h"
#include "match/correspondence.h"
#include "model/schema.h"

namespace mm2::match {
namespace {

using instance::Instance;
using instance::Value;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

// Fig. 4's source: Empl(EID, Name, Tel, AID) -> Addr(AID, City, Zip).
model::Schema EmplSchema() {
  return SchemaBuilder("S", Metamodel::kRelational)
      .Relation("Empl",
                {{"EID", DataType::Int64()},
                 {"Name", DataType::String()},
                 {"Tel", DataType::String()},
                 {"AID", DataType::Int64()}},
                {"EID"})
      .Relation("Addr",
                {{"AID", DataType::Int64()},
                 {"City", DataType::String()},
                 {"Zip", DataType::String()}},
                {"AID"})
      .ForeignKey("Empl", {"AID"}, "Addr", {"AID"})
      .Build();
}

// Fig. 4's target: Staff(SID, Name, BirthDate, City).
model::Schema StaffSchema() {
  return SchemaBuilder("T", Metamodel::kRelational)
      .Relation("Staff",
                {{"SID", DataType::Int64()},
                 {"Name", DataType::String()},
                 {"BirthDate", DataType::Date()},
                 {"City", DataType::String()}},
                {"SID"})
      .Build();
}

std::vector<Correspondence> Fig4Correspondences() {
  return {
      {{"Empl", "EID"}, {"Staff", "SID"}, 1.0},
      {{"Empl", "Name"}, {"Staff", "Name"}, 1.0},
      {{"Addr", "City"}, {"Staff", "City"}, 1.0},
  };
}

TEST(CorrespondenceTest, Fig4ProducesThreeConstraints) {
  auto constraints = InterpretCorrespondences(EmplSchema(), "Empl",
                                              StaffSchema(), "Staff",
                                              Fig4Correspondences());
  ASSERT_TRUE(constraints.ok()) << constraints.status();
  ASSERT_EQ(constraints->size(), 3u);

  // Constraint 1 (root): pi_EID(Empl) = pi_SID(Staff) — no join.
  EXPECT_EQ((*constraints)[0].forward.body.size(), 1u);
  EXPECT_EQ((*constraints)[0].forward.body[0].relation, "Empl");
  EXPECT_EQ((*constraints)[0].forward.head.size(), 1u);
  EXPECT_EQ((*constraints)[0].forward.head[0].relation, "Staff");

  // Constraint 3 (City): source side joins Empl with Addr.
  EXPECT_EQ((*constraints)[2].forward.body.size(), 2u);
  EXPECT_EQ((*constraints)[2].forward.body[0].relation, "Empl");
  EXPECT_EQ((*constraints)[2].forward.body[1].relation, "Addr");
  // Tgds must be valid over the schemas.
  model::Schema src = EmplSchema();
  model::Schema tgt = StaffSchema();
  for (const InterpretedConstraint& c : *constraints) {
    EXPECT_TRUE(c.forward.Validate(&src, &tgt).ok())
        << c.forward.ToString();
    EXPECT_TRUE(c.backward.Validate(&tgt, &src).ok())
        << c.backward.ToString();
  }
}

TEST(CorrespondenceTest, RequiresRootCorrespondence) {
  std::vector<Correspondence> corrs = {
      {{"Empl", "Name"}, {"Staff", "Name"}, 1.0},
  };
  auto constraints = InterpretCorrespondences(EmplSchema(), "Empl",
                                              StaffSchema(), "Staff", corrs);
  EXPECT_FALSE(constraints.ok());
}

TEST(CorrespondenceTest, RejectsUnreachableRelation) {
  model::Schema src = SchemaBuilder("S", Metamodel::kRelational)
                          .Relation("Empl", {{"EID", DataType::Int64()}},
                                    {"EID"})
                          .Relation("Island", {{"X", DataType::String()}})
                          .Build();
  std::vector<Correspondence> corrs = {
      {{"Empl", "EID"}, {"Staff", "SID"}, 1.0},
      {{"Island", "X"}, {"Staff", "Name"}, 1.0},
  };
  auto constraints =
      InterpretCorrespondences(src, "Empl", StaffSchema(), "Staff", corrs);
  EXPECT_FALSE(constraints.ok());
}

TEST(CorrespondenceTest, RejectsCompositeKeyRoot) {
  model::Schema src =
      SchemaBuilder("S", Metamodel::kRelational)
          .Relation("Empl",
                    {{"A", DataType::Int64()}, {"B", DataType::Int64()}},
                    {"A", "B"})
          .Build();
  auto constraints = InterpretCorrespondences(
      src, "Empl", StaffSchema(), "Staff",
      {{{"Empl", "A"}, {"Staff", "SID"}, 1.0}});
  EXPECT_FALSE(constraints.ok());
}

TEST(CorrespondenceTest, RejectsContainerLevelCorrespondence) {
  std::vector<Correspondence> corrs = Fig4Correspondences();
  corrs.push_back({{"Empl", ""}, {"Staff", ""}, 1.0});
  auto constraints = InterpretCorrespondences(EmplSchema(), "Empl",
                                              StaffSchema(), "Staff", corrs);
  EXPECT_FALSE(constraints.ok());
}

Instance SourceDb() {
  Instance db;
  db.DeclareRelation("Empl", 4);
  db.DeclareRelation("Addr", 3);
  auto ins = [&](const char* rel, instance::Tuple t) {
    ASSERT_TRUE(db.Insert(rel, std::move(t)).ok());
  };
  ins("Empl", {Value::Int64(1), Value::String("Ada"), Value::String("x1"),
               Value::Int64(10)});
  ins("Empl", {Value::Int64(2), Value::String("Bob"), Value::String("x2"),
               Value::Int64(11)});
  ins("Addr", {Value::Int64(10), Value::String("Berlin"),
               Value::String("10115")});
  ins("Addr", {Value::Int64(11), Value::String("Paris"),
               Value::String("75001")});
  return db;
}

TEST(CorrespondenceTest, SourceExpressionsEvaluate) {
  auto constraints = InterpretCorrespondences(EmplSchema(), "Empl",
                                              StaffSchema(), "Staff",
                                              Fig4Correspondences());
  ASSERT_TRUE(constraints.ok());
  auto catalog = algebra::Catalog::FromSchema(EmplSchema());
  ASSERT_TRUE(catalog.ok());
  Instance db = SourceDb();

  // Constraint 3: pi_{EID, City}(Empl JOIN Addr).
  auto table = algebra::Evaluate(*(*constraints)[2].source_expr, *catalog, db);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->columns, (std::vector<std::string>{"key", "val"}));
  ASSERT_EQ(table->rows.size(), 2u);
  std::set<instance::Tuple> rows(table->rows.begin(), table->rows.end());
  EXPECT_TRUE(rows.count({Value::Int64(1), Value::String("Berlin")}) > 0);
  EXPECT_TRUE(rows.count({Value::Int64(2), Value::String("Paris")}) > 0);
}

TEST(CorrespondenceTest, ForwardMappingExchangesData) {
  auto constraints = InterpretCorrespondences(EmplSchema(), "Empl",
                                              StaffSchema(), "Staff",
                                              Fig4Correspondences());
  ASSERT_TRUE(constraints.ok());
  auto mapping = MappingFromConstraints("fig4", EmplSchema(), StaffSchema(),
                                        *constraints);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  // Key the Staff relation so the chase merges the per-constraint
  // contributions of one employee into one row.
  logic::Egd key;
  key.body = {logic::Atom{"Staff",
                          {logic::Term::Var("s"), logic::Term::Var("n1"),
                           logic::Term::Var("b1"), logic::Term::Var("c1")}},
              logic::Atom{"Staff",
                          {logic::Term::Var("s"), logic::Term::Var("n2"),
                           logic::Term::Var("b2"), logic::Term::Var("c2")}}};
  logic::Mapping with_key = *mapping;
  key.left = "n1";
  key.right = "n2";
  with_key.AddTargetEgd(key);
  key.left = "b1";
  key.right = "b2";
  with_key.AddTargetEgd(key);
  key.left = "c1";
  key.right = "c2";
  with_key.AddTargetEgd(key);

  auto result = chase::RunChase(with_key, SourceDb());
  ASSERT_TRUE(result.ok()) << result.status();
  const instance::RelationInstance* staff = result->target.Find("Staff");
  ASSERT_NE(staff, nullptr);
  EXPECT_EQ(staff->size(), 2u);
  for (const instance::Tuple& t : staff->tuples()) {
    EXPECT_TRUE(t[0].is_constant());          // SID carried over
    EXPECT_TRUE(t[1].is_constant());          // Name carried over
    EXPECT_TRUE(t[2].is_labeled_null());      // BirthDate unknown
    EXPECT_TRUE(t[3].is_constant());          // City joined from Addr
  }
}

TEST(CorrespondenceTest, ConstraintsHoldOnConsistentInstances) {
  // Populate both sides consistently and check that each constraint's two
  // expressions agree — the instance-level reading of Fig. 4.
  auto constraints = InterpretCorrespondences(EmplSchema(), "Empl",
                                              StaffSchema(), "Staff",
                                              Fig4Correspondences());
  ASSERT_TRUE(constraints.ok());
  Instance db = SourceDb();
  db.DeclareRelation("Staff", 4);
  ASSERT_TRUE(db.Insert("Staff", {Value::Int64(1), Value::String("Ada"),
                                  Value::Date(100), Value::String("Berlin")})
                  .ok());
  ASSERT_TRUE(db.Insert("Staff", {Value::Int64(2), Value::String("Bob"),
                                  Value::Date(200), Value::String("Paris")})
                  .ok());
  auto src_cat = algebra::Catalog::FromSchema(EmplSchema());
  auto tgt_cat = algebra::Catalog::FromSchema(StaffSchema());
  ASSERT_TRUE(src_cat.ok() && tgt_cat.ok());
  algebra::Catalog cat = *src_cat;
  cat.Merge(*tgt_cat);
  for (const InterpretedConstraint& c : *constraints) {
    auto lhs = algebra::Evaluate(*c.source_expr, cat, db);
    auto rhs = algebra::Evaluate(*c.target_expr, cat, db);
    ASSERT_TRUE(lhs.ok() && rhs.ok());
    EXPECT_TRUE(lhs->SetEquals(*rhs)) << c.ToString();
  }
}

}  // namespace
}  // namespace mm2::match
