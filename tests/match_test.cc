#include <gtest/gtest.h>

#include "match/matcher.h"
#include "model/schema.h"

namespace mm2::match {
namespace {

using model::DataType;
using model::ElementRef;
using model::Metamodel;
using model::SchemaBuilder;

model::Schema LeftSchema() {
  return SchemaBuilder("L", Metamodel::kRelational)
      .Relation("Employee",
                {{"EmployeeId", DataType::Int64()},
                 {"FullName", DataType::String()},
                 {"Department", DataType::String()},
                 {"Salary", DataType::Double()}},
                {"EmployeeId"})
      .Relation("Project",
                {{"ProjectId", DataType::Int64()},
                 {"Title", DataType::String()}},
                {"ProjectId"})
      .Build();
}

model::Schema RightSchema() {
  return SchemaBuilder("R", Metamodel::kRelational)
      .Relation("Empl",
                {{"EmplId", DataType::Int64()},
                 {"Name", DataType::String()},
                 {"Dept", DataType::String()},
                 {"Pay", DataType::Double()}},
                {"EmplId"})
      .Relation("Proj",
                {{"ProjId", DataType::Int64()},
                 {"ProjTitle", DataType::String()}},
                {"ProjId"})
      .Build();
}

TEST(MatcherTest, IdenticalNamesScoreHighest) {
  model::Schema s = LeftSchema();
  SchemaMatcher matcher;
  double same = matcher.LexicalSimilarity(s, {"Employee", "Salary"}, s,
                                          {"Employee", "Salary"});
  double diff = matcher.LexicalSimilarity(s, {"Employee", "Salary"}, s,
                                          {"Project", "Title"});
  EXPECT_GT(same, 0.9);
  EXPECT_LT(diff, same);
}

TEST(MatcherTest, ContainerAndAttributeElementsNeverMatch) {
  model::Schema s = LeftSchema();
  SchemaMatcher matcher;
  EXPECT_DOUBLE_EQ(matcher.LexicalSimilarity(s, {"Employee", ""}, s,
                                             {"Employee", "FullName"}),
                   0.0);
}

TEST(MatcherTest, AbbreviationsMatchViaTokensAndTrigrams) {
  model::Schema l = LeftSchema();
  model::Schema r = RightSchema();
  SchemaMatcher matcher;
  double sim = matcher.LexicalSimilarity(l, {"Employee", "EmployeeId"}, r,
                                         {"Empl", "EmplId"});
  EXPECT_GT(sim, 0.4);
  double dept = matcher.LexicalSimilarity(l, {"Employee", "Department"}, r,
                                          {"Empl", "Dept"});
  EXPECT_GT(dept, 0.4);
}

TEST(MatcherTest, ThesaurusBridgesSynonyms) {
  model::Schema l = LeftSchema();
  model::Schema r = RightSchema();
  MatchOptions plain;
  SchemaMatcher no_thesaurus(plain);
  MatchOptions with;
  with.thesaurus = {{"salary", "pay"}};
  SchemaMatcher thesaurus(with);
  double before = no_thesaurus.LexicalSimilarity(l, {"Employee", "Salary"}, r,
                                                 {"Empl", "Pay"});
  double after = thesaurus.LexicalSimilarity(l, {"Employee", "Salary"}, r,
                                             {"Empl", "Pay"});
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.5);
}

std::vector<Correspondence> ReferenceAlignment() {
  return {
      {{"Employee", "EmployeeId"}, {"Empl", "EmplId"}, 1.0},
      {{"Employee", "FullName"}, {"Empl", "Name"}, 1.0},
      {{"Employee", "Department"}, {"Empl", "Dept"}, 1.0},
      {{"Employee", "Salary"}, {"Empl", "Pay"}, 1.0},
      {{"Project", "ProjectId"}, {"Proj", "ProjId"}, 1.0},
      {{"Project", "Title"}, {"Proj", "ProjTitle"}, 1.0},
  };
}

TEST(MatcherTest, EndToEndRecallWithThesaurus) {
  MatchOptions options;
  options.thesaurus = {{"salary", "pay"}, {"name", "fullname"}};
  options.top_k = 3;
  SchemaMatcher matcher(options);
  MatchResult result = matcher.Match(LeftSchema(), RightSchema());

  double recall = CandidateRecall(result, ReferenceAlignment());
  EXPECT_GE(recall, 0.8) << result.ToString();
}

TEST(MatcherTest, StructuralPropagationHelpsAmbiguousAttributes) {
  // Two relations each with an attribute "Id"-ish: structure should route
  // Employee.Department to Empl.Dept rather than Proj.ProjTitle.
  SchemaMatcher matcher;
  MatchResult result = matcher.Match(LeftSchema(), RightSchema());
  bool found = false;
  for (const Correspondence& c : result.best) {
    if (c.source == ElementRef{"Employee", "Department"}) {
      found = true;
      EXPECT_EQ(c.target.container, "Empl");
    }
  }
  EXPECT_TRUE(found);
}

TEST(MatcherTest, TopKReturnsAllViableCandidates) {
  MatchOptions options;
  options.top_k = 5;
  options.threshold = 0.2;
  SchemaMatcher matcher(options);
  MatchResult result = matcher.Match(LeftSchema(), RightSchema());
  auto it = result.candidates.find(ElementRef{"Employee", "FullName"});
  ASSERT_NE(it, result.candidates.end());
  EXPECT_GE(it->second.size(), 2u);  // more than just the best
  // Candidates are sorted best-first.
  for (std::size_t i = 1; i < it->second.size(); ++i) {
    EXPECT_GE(it->second[i - 1].score, it->second[i].score);
  }
}

TEST(MatcherTest, ThresholdSuppressesWeakMatches) {
  MatchOptions options;
  options.threshold = 0.99;
  SchemaMatcher matcher(options);
  MatchResult result = matcher.Match(LeftSchema(), RightSchema());
  EXPECT_TRUE(result.best.empty());
}

TEST(MatcherTest, EmptySchemasYieldNoMatches) {
  model::Schema empty("E", Metamodel::kRelational);
  SchemaMatcher matcher;
  MatchResult result = matcher.Match(empty, RightSchema());
  EXPECT_TRUE(result.best.empty());
}

TEST(MatchQualityTest, PrecisionRecallF1) {
  std::vector<Correspondence> reference = ReferenceAlignment();
  // Proposal with 3 correct out of 4 proposed, 6 in reference.
  std::vector<Correspondence> proposed = {
      reference[0], reference[1], reference[2],
      {{"Project", "Title"}, {"Empl", "Name"}, 0.4},
  };
  MatchQuality q = EvaluateMatch(proposed, reference);
  EXPECT_DOUBLE_EQ(q.precision, 0.75);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
  EXPECT_GT(q.f1, 0.59);
  EXPECT_LT(q.f1, 0.61);

  MatchQuality zero = EvaluateMatch({}, reference);
  EXPECT_DOUBLE_EQ(zero.precision, 0.0);
  EXPECT_DOUBLE_EQ(zero.f1, 0.0);
}

TEST(MatcherTest, ErSchemasMatchEntityTypes) {
  model::Schema er1 =
      SchemaBuilder("A", Metamodel::kEntityRelationship)
          .EntityType("Person", "", {{"Id", DataType::Int64()},
                                     {"Name", DataType::String()}})
          .EntitySet("Persons", "Person")
          .Build();
  model::Schema er2 =
      SchemaBuilder("B", Metamodel::kEntityRelationship)
          .EntityType("Individual", "", {{"PersonId", DataType::Int64()},
                                         {"PersonName", DataType::String()}})
          .EntitySet("Individuals", "Individual")
          .Build();
  SchemaMatcher matcher;
  MatchResult result = matcher.Match(er1, er2);
  bool name_matched = false;
  for (const Correspondence& c : result.best) {
    if (c.source == ElementRef{"Person", "Name"} &&
        c.target == ElementRef{"Individual", "PersonName"}) {
      name_matched = true;
    }
  }
  EXPECT_TRUE(name_matched) << result.ToString();
}

}  // namespace
}  // namespace mm2::match
