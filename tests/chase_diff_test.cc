// Differential test for the chase executors: the naive nested-loop path
// (ChaseOptions::naive, the pre-index implementation kept as oracle) must
// agree with the index-backed path and with the semi-naive delta path on
// every randomly generated mapping. Agreement means identical status codes
// and, on success, instances equal up to null renaming — checked as
// homomorphic equivalence plus equal core sizes (cores of hom-equivalent
// instances are isomorphic). Full-tgd closure cases invent no nulls, so
// there the results must be exactly equal.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "instance/instance.h"
#include "instance/value.h"
#include "logic/formula.h"
#include "logic/mapping.h"
#include "model/schema.h"
#include "text/sexpr.h"
#include "workload/generators.h"

namespace mm2::chase {
namespace {

using instance::Instance;
using instance::Value;
using logic::Atom;
using logic::Egd;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using workload::Rng;

ChaseOptions NaiveMode() {
  ChaseOptions o;
  o.naive = true;
  o.semi_naive = false;
  return o;
}

ChaseOptions IndexedMode() {
  ChaseOptions o;
  o.naive = false;
  o.semi_naive = false;
  return o;
}

ChaseOptions SemiNaiveMode() { return ChaseOptions{}; }  // the default

bool HomEquivalent(const Instance& a, const Instance& b) {
  return ExistsHomomorphism(a, b) && ExistsHomomorphism(b, a);
}

// A random data-exchange scenario: all-Int64 relational schemas (small
// constant domains maximize join hits and egd collisions), s-t tgds with
// joins and existentials, and occasional target key egds.
struct Scenario {
  model::Schema source{"Src", model::Metamodel::kRelational};
  model::Schema target{"Tgt", model::Metamodel::kRelational};
  std::vector<Tgd> tgds;
  std::vector<Egd> egds;
  Instance db;
};

model::Relation IntRelation(const std::string& name, std::size_t arity) {
  std::vector<model::Attribute> attrs;
  for (std::size_t i = 0; i < arity; ++i) {
    attrs.push_back({"a" + std::to_string(i), model::DataType::Int64()});
  }
  return model::Relation(name, std::move(attrs), {0});
}

Scenario MakeScenario(std::uint64_t seed) {
  Rng rng(seed + 1);
  Scenario s;

  std::size_t source_rels = 2 + rng.Uniform(3);  // 2..4
  std::size_t target_rels = 2 + rng.Uniform(2);  // 2..3
  std::vector<std::size_t> src_arity(source_rels);
  std::vector<std::size_t> tgt_arity(target_rels);
  for (std::size_t i = 0; i < source_rels; ++i) {
    src_arity[i] = 1 + rng.Uniform(3);  // 1..3
    s.source.AddRelation(IntRelation("R" + std::to_string(i), src_arity[i]));
  }
  for (std::size_t i = 0; i < target_rels; ++i) {
    tgt_arity[i] = 1 + rng.Uniform(3);
    s.target.AddRelation(IntRelation("T" + std::to_string(i), tgt_arity[i]));
  }

  // Tgds: 1-2 body atoms over shared variables (joins), 1-2 head atoms
  // mixing body variables with existentials.
  std::size_t rules = 2 + rng.Uniform(4);  // 2..5
  for (std::size_t r = 0; r < rules; ++r) {
    Tgd tgd;
    std::vector<std::string> vars;
    std::size_t body_atoms = 1 + rng.Uniform(2);
    for (std::size_t b = 0; b < body_atoms; ++b) {
      std::size_t rel = rng.Uniform(source_rels);
      Atom atom;
      atom.relation = "R" + std::to_string(rel);
      for (std::size_t c = 0; c < src_arity[rel]; ++c) {
        // Reuse an existing variable half the time (join / repeated var),
        // else bind a fresh one.
        if (!vars.empty() && rng.Chance(0.5)) {
          atom.terms.push_back(Term::Var(vars[rng.Uniform(vars.size())]));
        } else {
          std::string v = "x" + std::to_string(vars.size());
          vars.push_back(v);
          atom.terms.push_back(Term::Var(std::move(v)));
        }
      }
      tgd.body.push_back(std::move(atom));
    }
    std::size_t head_atoms = 1 + rng.Uniform(2);
    std::size_t existentials = 0;
    for (std::size_t h = 0; h < head_atoms; ++h) {
      std::size_t rel = rng.Uniform(target_rels);
      Atom atom;
      atom.relation = "T" + std::to_string(rel);
      for (std::size_t c = 0; c < tgt_arity[rel]; ++c) {
        if (rng.Chance(0.3)) {
          atom.terms.push_back(
              Term::Var("y" + std::to_string(existentials++)));
        } else {
          atom.terms.push_back(Term::Var(vars[rng.Uniform(vars.size())]));
        }
      }
      tgd.head.push_back(std::move(atom));
    }
    s.tgds.push_back(std::move(tgd));
  }

  // Occasional key egd on a target relation of arity >= 2: two atoms
  // sharing the key variable force the first non-key column equal.
  if (rng.Chance(0.5)) {
    for (std::size_t rel = 0; rel < target_rels; ++rel) {
      if (tgt_arity[rel] < 2 || rng.Chance(0.5)) continue;
      Egd egd;
      Atom a1, a2;
      a1.relation = a2.relation = "T" + std::to_string(rel);
      a1.terms.push_back(Term::Var("k"));
      a2.terms.push_back(Term::Var("k"));
      for (std::size_t c = 1; c < tgt_arity[rel]; ++c) {
        a1.terms.push_back(Term::Var("u" + std::to_string(c)));
        a2.terms.push_back(Term::Var("v" + std::to_string(c)));
      }
      egd.body = {std::move(a1), std::move(a2)};
      egd.left = "u1";
      egd.right = "v1";
      s.egds.push_back(std::move(egd));
      break;
    }
  }

  // Source data: small domains so bodies actually join and egds actually
  // fire (including constant-vs-constant collisions -> Inconsistent).
  s.db = Instance::EmptyFor(s.source);
  for (std::size_t rel = 0; rel < source_rels; ++rel) {
    std::size_t rows = 3 + rng.Uniform(6);
    for (std::size_t row = 0; row < rows; ++row) {
      instance::Tuple t;
      for (std::size_t c = 0; c < src_arity[rel]; ++c) {
        t.push_back(Value::Int64(static_cast<std::int64_t>(rng.Uniform(4))));
      }
      s.db.InsertUnchecked("R" + std::to_string(rel), std::move(t));
    }
  }
  return s;
}

class ChaseDiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChaseDiffProperty, NaiveIndexedSemiNaiveAgree) {
  Scenario s = MakeScenario(static_cast<std::uint64_t>(GetParam()));
  Mapping mapping =
      Mapping::FromTgds("m", s.source, s.target, s.tgds, s.egds);

  auto naive = RunChase(mapping, s.db, NaiveMode());
  auto indexed = RunChase(mapping, s.db, IndexedMode());
  auto semi = RunChase(mapping, s.db, SemiNaiveMode());

  ASSERT_EQ(naive.status().code(), indexed.status().code())
      << "seed " << GetParam() << ": naive=" << naive.status()
      << " indexed=" << indexed.status();
  ASSERT_EQ(naive.status().code(), semi.status().code())
      << "seed " << GetParam() << ": naive=" << naive.status()
      << " semi=" << semi.status();
  if (!naive.ok()) return;  // all three rejected identically

  // The oracle path never touches the storage-layer indexes; the other two
  // must account their probe traffic.
  EXPECT_EQ(naive->stats.index_probes, 0u);
  EXPECT_EQ(naive->stats.delta_tuples, 0u);

  // Universal solutions are unique up to homomorphic equivalence; firing
  // order may differ, so compare up to null renaming.
  EXPECT_TRUE(HomEquivalent(naive->target, indexed->target))
      << "seed " << GetParam();
  EXPECT_TRUE(HomEquivalent(naive->target, semi->target))
      << "seed " << GetParam();

  // Cores of hom-equivalent instances are isomorphic, hence equal-sized.
  Instance core_naive = ComputeCore(naive->target);
  Instance core_indexed = ComputeCore(indexed->target);
  Instance core_semi = ComputeCore(semi->target);
  EXPECT_EQ(core_naive.TotalTuples(), core_indexed.TotalTuples())
      << "seed " << GetParam();
  EXPECT_EQ(core_naive.TotalTuples(), core_semi.TotalTuples())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChaseDiffProperty, ::testing::Range(0, 100));

// Interning must be invisible to results: serializing a chase result to
// text and reparsing it (which re-interns every string and reassigns pool
// ids) must reproduce the *exact* instance — tuple sets, iteration order,
// labeled-null labels, everything Equals checks. Runs over the same 100
// random-mapping seeds as the executor-agreement sweep.
class ChaseSerializeDiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChaseSerializeDiffProperty, ResultsSurviveTextRoundTrip) {
  Scenario s = MakeScenario(static_cast<std::uint64_t>(GetParam()));
  Mapping mapping =
      Mapping::FromTgds("m", s.source, s.target, s.tgds, s.egds);
  auto result = RunChase(mapping, s.db, SemiNaiveMode());
  if (!result.ok()) return;  // Inconsistent scenarios have no instance

  std::string printed = text::InstanceToText(result->target);
  auto reparsed = text::ParseInstance(printed);
  ASSERT_TRUE(reparsed.ok()) << "seed " << GetParam() << ": "
                             << reparsed.status();
  EXPECT_TRUE(result->target.Equals(*reparsed)) << "seed " << GetParam();
  // Printing the reparsed instance is bit-identical: same sorted-set
  // iteration order through the pool-resolved value comparisons.
  EXPECT_EQ(printed, text::InstanceToText(*reparsed))
      << "seed " << GetParam();

  // The source database round-trips the same way.
  std::string db_printed = text::InstanceToText(s.db);
  auto db_reparsed = text::ParseInstance(db_printed);
  ASSERT_TRUE(db_reparsed.ok()) << db_reparsed.status();
  EXPECT_TRUE(s.db.Equals(*db_reparsed)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChaseSerializeDiffProperty,
                         ::testing::Range(0, 100));

// Full-tgd closure (no existentials, no nulls): the fixpoint is a unique
// set of ground tuples, so all three executors must produce *identical*
// instances, not just hom-equivalent ones. Random graphs chased to their
// transitive closure exercise multi-round delta propagation hard.
class ClosureDiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClosureDiffProperty, TransitiveClosureExactlyEqual) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  Instance db;
  db.DeclareRelation("R", 2);
  db.DeclareRelation("T", 2);
  std::size_t nodes = 5 + rng.Uniform(6);
  std::size_t edges = nodes + rng.Uniform(nodes);
  for (std::size_t e = 0; e < edges; ++e) {
    db.InsertUnchecked(
        "R", {Value::Int64(static_cast<std::int64_t>(rng.Uniform(nodes))),
              Value::Int64(static_cast<std::int64_t>(rng.Uniform(nodes)))});
  }

  Tgd copy;
  copy.body = {Atom{"R", {Term::Var("x"), Term::Var("y")}}};
  copy.head = {Atom{"T", {Term::Var("x"), Term::Var("y")}}};
  Tgd step;
  step.body = {Atom{"T", {Term::Var("x"), Term::Var("y")}},
               Atom{"R", {Term::Var("y"), Term::Var("z")}}};
  step.head = {Atom{"T", {Term::Var("x"), Term::Var("z")}}};
  std::vector<Tgd> tgds = {copy, step};

  auto naive = ChaseInstance(tgds, {}, db, NaiveMode());
  auto indexed = ChaseInstance(tgds, {}, db, IndexedMode());
  auto semi = ChaseInstance(tgds, {}, db, SemiNaiveMode());
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  ASSERT_TRUE(semi.ok()) << semi.status();

  EXPECT_TRUE(indexed->target.Equals(naive->target)) << "seed " << GetParam();
  EXPECT_TRUE(semi->target.Equals(naive->target)) << "seed " << GetParam();
  // Semi-naive actually consumed deltas (round 1 counts the extension).
  EXPECT_GT(semi->stats.delta_tuples, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClosureDiffProperty, ::testing::Range(0, 20));

// Parallel executor axis: the partitioned match phase must be a pure
// implementation detail. At any thread count the chase partitions depth-0
// candidates into contiguous chunks and concatenates chunk results in
// order, so the assignment enumeration — and with it firing order, null
// naming and every ChaseStats firing counter — is identical to the serial
// run. We assert exact instance equality (stronger than the hom-equivalence
// the acceptance bar asks for) plus counter identity. Index telemetry is
// deliberately excluded: the parallel path pre-builds probe indexes before
// fanning out, so index_builds may differ from the lazy serial schedule.
ChaseOptions ThreadedMode(std::size_t threads, bool semi_naive) {
  ChaseOptions o;
  o.naive = false;
  o.semi_naive = semi_naive;
  o.threads = threads;
  return o;
}

void ExpectSameFiringCounts(const ChaseStats& serial,
                            const ChaseStats& parallel, int seed,
                            std::size_t threads) {
  EXPECT_EQ(serial.rounds, parallel.rounds)
      << "seed " << seed << " threads " << threads;
  EXPECT_EQ(serial.tgd_firings, parallel.tgd_firings)
      << "seed " << seed << " threads " << threads;
  EXPECT_EQ(serial.nulls_created, parallel.nulls_created)
      << "seed " << seed << " threads " << threads;
  EXPECT_EQ(serial.egd_unifications, parallel.egd_unifications)
      << "seed " << seed << " threads " << threads;
  EXPECT_EQ(serial.assignments_matched, parallel.assignments_matched)
      << "seed " << seed << " threads " << threads;
}

class ChaseParallelDiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChaseParallelDiffProperty, ThreadCountIsImplementationDetail) {
  Scenario s = MakeScenario(static_cast<std::uint64_t>(GetParam()));
  Mapping mapping =
      Mapping::FromTgds("m", s.source, s.target, s.tgds, s.egds);

  for (bool semi_naive : {false, true}) {
    auto serial = RunChase(mapping, s.db, ThreadedMode(1, semi_naive));
    if (serial.ok()) {
      EXPECT_EQ(serial->stats.workers, 1u);
    }
    for (std::size_t threads : {2u, 4u, 8u}) {
      auto parallel =
          RunChase(mapping, s.db, ThreadedMode(threads, semi_naive));
      ASSERT_EQ(serial.status().code(), parallel.status().code())
          << "seed " << GetParam() << " threads " << threads
          << ": serial=" << serial.status()
          << " parallel=" << parallel.status();
      if (!serial.ok()) continue;
      EXPECT_EQ(parallel->stats.workers, threads);
      EXPECT_TRUE(parallel->target.Equals(serial->target))
          << "seed " << GetParam() << " threads " << threads
          << " semi_naive " << semi_naive;
      EXPECT_TRUE(HomEquivalent(serial->target, parallel->target))
          << "seed " << GetParam() << " threads " << threads;
      ExpectSameFiringCounts(serial->stats, parallel->stats, GetParam(),
                             threads);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChaseParallelDiffProperty,
                         ::testing::Range(0, 40));

// Transitive closure at thread counts {1,2,4,8}: multi-round semi-naive
// delta propagation through the partitioned per-anchor passes must stay
// exactly equal to the serial fixpoint, and the parallel telemetry must
// only appear when more than one worker ran.
class ClosureParallelDiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClosureParallelDiffProperty, ParallelClosureExactlyEqual) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  Instance db;
  db.DeclareRelation("R", 2);
  db.DeclareRelation("T", 2);
  std::size_t nodes = 8 + rng.Uniform(9);
  std::size_t edges = nodes + rng.Uniform(2 * nodes);
  for (std::size_t e = 0; e < edges; ++e) {
    db.InsertUnchecked(
        "R", {Value::Int64(static_cast<std::int64_t>(rng.Uniform(nodes))),
              Value::Int64(static_cast<std::int64_t>(rng.Uniform(nodes)))});
  }

  Tgd copy;
  copy.body = {Atom{"R", {Term::Var("x"), Term::Var("y")}}};
  copy.head = {Atom{"T", {Term::Var("x"), Term::Var("y")}}};
  Tgd step;
  step.body = {Atom{"T", {Term::Var("x"), Term::Var("y")}},
               Atom{"R", {Term::Var("y"), Term::Var("z")}}};
  step.head = {Atom{"T", {Term::Var("x"), Term::Var("z")}}};
  std::vector<Tgd> tgds = {copy, step};

  auto serial = ChaseInstance(tgds, {}, db, ThreadedMode(1, true));
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(serial->stats.parallel_regions, 0u);
  for (std::size_t threads : {2u, 4u, 8u}) {
    auto parallel = ChaseInstance(tgds, {}, db, ThreadedMode(threads, true));
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_TRUE(parallel->target.Equals(serial->target))
        << "seed " << GetParam() << " threads " << threads;
    ExpectSameFiringCounts(serial->stats, parallel->stats, GetParam(),
                           threads);
    EXPECT_EQ(parallel->stats.workers, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClosureParallelDiffProperty,
                         ::testing::Range(0, 12));

// Stratified-scheduling axis: running the chase with mapping analysis
// attached (ChaseOptions::stratified) must be a pure scheduling
// optimization. Strata only defer egd matching until the tgd strata are
// quiescent (exchange mode) or retire rule groups the flat scheduler
// would have delta-skipped anyway, so the *result* — the instance text,
// which pins down null naming, and every firing-attribution counter —
// must be bit-identical to the flat semi-naive run. Round counts and
// delta-skip tallies legitimately differ (that skipped work is the
// point), so they are deliberately not compared.
ChaseOptions StratifiedMode() {
  ChaseOptions o;
  o.stratified = true;
  return o;
}

void ExpectSameRuleAttribution(const ChaseStats& flat,
                               const ChaseStats& strat, int seed) {
  EXPECT_EQ(flat.tgd_firings, strat.tgd_firings) << "seed " << seed;
  EXPECT_EQ(flat.nulls_created, strat.nulls_created) << "seed " << seed;
  EXPECT_EQ(flat.egd_unifications, strat.egd_unifications) << "seed " << seed;
  EXPECT_EQ(flat.assignments_matched, strat.assignments_matched)
      << "seed " << seed;
  ASSERT_EQ(flat.rules.size(), strat.rules.size()) << "seed " << seed;
  for (std::size_t i = 0; i < flat.rules.size(); ++i) {
    EXPECT_EQ(flat.rules[i].label, strat.rules[i].label) << "seed " << seed;
    EXPECT_EQ(flat.rules[i].firings, strat.rules[i].firings)
        << "seed " << seed << " rule " << flat.rules[i].label;
    EXPECT_EQ(flat.rules[i].triggers_tested, strat.rules[i].triggers_tested)
        << "seed " << seed << " rule " << flat.rules[i].label;
    EXPECT_EQ(flat.rules[i].nulls_created, strat.rules[i].nulls_created)
        << "seed " << seed << " rule " << flat.rules[i].label;
    EXPECT_EQ(flat.rules[i].unifications, strat.rules[i].unifications)
        << "seed " << seed << " rule " << flat.rules[i].label;
  }
}

class ChaseStratifiedDiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChaseStratifiedDiffProperty, StratifiedEqualsFlatBitForBit) {
  Scenario s = MakeScenario(static_cast<std::uint64_t>(GetParam()));
  Mapping mapping =
      Mapping::FromTgds("m", s.source, s.target, s.tgds, s.egds);

  auto flat = RunChase(mapping, s.db, SemiNaiveMode());
  auto strat = RunChase(mapping, s.db, StratifiedMode());
  ASSERT_EQ(flat.status().code(), strat.status().code())
      << "seed " << GetParam() << ": flat=" << flat.status()
      << " stratified=" << strat.status();
  if (!flat.ok()) return;

  // Instance text equality is the strongest form: it covers tuple sets,
  // iteration order, and labeled-null names.
  EXPECT_EQ(text::InstanceToText(strat->target),
            text::InstanceToText(flat->target))
      << "seed " << GetParam();
  ExpectSameRuleAttribution(flat->stats, strat->stats, GetParam());

  // The scheduler actually ran, and its telemetry stayed off on the flat
  // side (the disabled path materializes nothing).
  EXPECT_GT(strat->stats.strata_count, 0u) << "seed " << GetParam();
  EXPECT_EQ(flat->stats.strata_count, 0u);
  // Every rule got a stratum; flat rules stay unassigned.
  for (const RuleStats& rule : strat->stats.rules) {
    EXPECT_GE(rule.stratum, 0) << "seed " << GetParam();
  }
  for (const RuleStats& rule : flat->stats.rules) {
    EXPECT_EQ(rule.stratum, -1);
  }
  // S-t scenarios are always weakly acyclic, and the predicted round
  // bound must dominate what either scheduler observed.
  EXPECT_TRUE(strat->stats.predicted_terminating) << "seed " << GetParam();
  EXPECT_LE(flat->stats.rounds, strat->stats.predicted_rounds)
      << "seed " << GetParam();
  EXPECT_LE(strat->stats.rounds, strat->stats.predicted_rounds)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChaseStratifiedDiffProperty,
                         ::testing::Range(0, 100));

// Closure mode only retires quiescent strata (late activation would
// reorder null invention), so transitive closure over random graphs must
// stay exactly equal too — including when an independent shallow chain
// rides along, the case where retirement skips real delta-check passes.
class ClosureStratifiedDiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClosureStratifiedDiffProperty, StratifiedClosureExactlyEqual) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  Instance db;
  db.DeclareRelation("R", 2);
  db.DeclareRelation("T", 2);
  db.DeclareRelation("A", 1);
  db.DeclareRelation("B", 1);
  std::size_t nodes = 5 + rng.Uniform(6);
  std::size_t edges = nodes + rng.Uniform(nodes);
  for (std::size_t e = 0; e < edges; ++e) {
    db.InsertUnchecked(
        "R", {Value::Int64(static_cast<std::int64_t>(rng.Uniform(nodes))),
              Value::Int64(static_cast<std::int64_t>(rng.Uniform(nodes)))});
  }
  for (std::size_t a = 0; a < 3; ++a) {
    db.InsertUnchecked(
        "A", {Value::Int64(static_cast<std::int64_t>(rng.Uniform(nodes)))});
  }

  Tgd copy;
  copy.body = {Atom{"R", {Term::Var("x"), Term::Var("y")}}};
  copy.head = {Atom{"T", {Term::Var("x"), Term::Var("y")}}};
  Tgd step;
  step.body = {Atom{"T", {Term::Var("x"), Term::Var("y")}},
               Atom{"R", {Term::Var("y"), Term::Var("z")}}};
  step.head = {Atom{"T", {Term::Var("x"), Term::Var("z")}}};
  // Independent depth-1 stratum: quiescent after one round while the
  // closure stratum keeps iterating — the retirement win.
  Tgd shallow;
  shallow.body = {Atom{"A", {Term::Var("x")}}};
  shallow.head = {Atom{"B", {Term::Var("x")}}};
  std::vector<Tgd> tgds = {copy, step, shallow};

  auto flat = ChaseInstance(tgds, {}, db, SemiNaiveMode());
  auto strat = ChaseInstance(tgds, {}, db, StratifiedMode());
  ASSERT_TRUE(flat.ok()) << flat.status();
  ASSERT_TRUE(strat.ok()) << strat.status();
  EXPECT_TRUE(strat->target.Equals(flat->target)) << "seed " << GetParam();
  ExpectSameRuleAttribution(flat->stats, strat->stats, GetParam());
  EXPECT_GT(strat->stats.strata_count, 0u);
  // Full tgds invent nothing, so the classifier must say terminating and
  // its round bound must hold.
  EXPECT_TRUE(strat->stats.predicted_terminating);
  EXPECT_LE(strat->stats.rounds, strat->stats.predicted_rounds)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClosureStratifiedDiffProperty,
                         ::testing::Range(0, 20));

// Storage-mode axis: the columnar segment representation must be a pure
// physical-layer swap. Prefix probes answered from sealed segments and the
// batched retain anti-join replace per-tuple set probes, but the match
// order, firing order, and null naming are untouched, so segmented runs
// must be bit-identical to indexed runs — same instance text, same firing
// counters — at every thread count. Only the storage telemetry may differ.
ChaseOptions SegmentedMode(std::size_t threads, bool semi_naive) {
  ChaseOptions o = ThreadedMode(threads, semi_naive);
  o.storage = instance::StorageMode::kSegmented;
  return o;
}

// Baseline with the storage mode pinned: ThreadedMode leaves kDefault,
// which MM2_STORAGE=segmented would resolve to the segmented backend —
// and this sweep needs a genuinely indexed reference run either way.
ChaseOptions IndexedThreadedMode(std::size_t threads, bool semi_naive) {
  ChaseOptions o = ThreadedMode(threads, semi_naive);
  o.storage = instance::StorageMode::kIndexed;
  return o;
}

class ChaseSegmentedDiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChaseSegmentedDiffProperty, StorageModeIsImplementationDetail) {
  Scenario s = MakeScenario(static_cast<std::uint64_t>(GetParam()));
  Mapping mapping =
      Mapping::FromTgds("m", s.source, s.target, s.tgds, s.egds);

  auto naive = RunChase(mapping, s.db, NaiveMode());
  for (bool semi_naive : {false, true}) {
    for (std::size_t threads : {1u, 4u}) {
      auto indexed =
          RunChase(mapping, s.db, IndexedThreadedMode(threads, semi_naive));
      auto seg = RunChase(mapping, s.db, SegmentedMode(threads, semi_naive));
      ASSERT_EQ(indexed.status().code(), seg.status().code())
          << "seed " << GetParam() << " threads " << threads
          << " semi_naive " << semi_naive << ": indexed=" << indexed.status()
          << " segmented=" << seg.status();
      if (!indexed.ok()) continue;
      EXPECT_TRUE(seg->stats.segmented);
      EXPECT_FALSE(indexed->stats.segmented);
      // Bit-identical result: instance text pins down relation contents,
      // tuple order, and the exact null names.
      EXPECT_EQ(text::InstanceToText(seg->target),
                text::InstanceToText(indexed->target))
          << "seed " << GetParam() << " threads " << threads
          << " semi_naive " << semi_naive;
      ExpectSameFiringCounts(indexed->stats, seg->stats, GetParam(),
                             threads);
      // And the naive oracle must agree up to null renaming.
      if (naive.ok()) {
        EXPECT_TRUE(HomEquivalent(naive->target, seg->target))
            << "seed " << GetParam() << " threads " << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChaseSegmentedDiffProperty,
                         ::testing::Range(0, 100));

// Transitive closure under segmented storage: full tgds invent no nulls,
// so the fixpoint must be exactly equal — and because the closure rules
// are existential-free the restricted check runs through the batched
// retain path, whose telemetry must show segment probes and retain
// batches actually happened (i.e. the sweep exercises the new code, not a
// silent fallback).
class ClosureSegmentedDiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClosureSegmentedDiffProperty, SegmentedClosureExactlyEqual) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 69997 + 13);
  Instance db;
  db.DeclareRelation("R", 2);
  db.DeclareRelation("T", 2);
  std::size_t nodes = 8 + rng.Uniform(9);
  std::size_t edges = nodes + rng.Uniform(2 * nodes);
  for (std::size_t e = 0; e < edges; ++e) {
    db.InsertUnchecked(
        "R", {Value::Int64(static_cast<std::int64_t>(rng.Uniform(nodes))),
              Value::Int64(static_cast<std::int64_t>(rng.Uniform(nodes)))});
  }

  Tgd copy;
  copy.body = {Atom{"R", {Term::Var("x"), Term::Var("y")}}};
  copy.head = {Atom{"T", {Term::Var("x"), Term::Var("y")}}};
  Tgd step;
  step.body = {Atom{"T", {Term::Var("x"), Term::Var("y")}},
               Atom{"R", {Term::Var("y"), Term::Var("z")}}};
  step.head = {Atom{"T", {Term::Var("x"), Term::Var("z")}}};
  std::vector<Tgd> tgds = {copy, step};

  auto indexed = ChaseInstance(tgds, {}, db, IndexedThreadedMode(1, true));
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  for (std::size_t threads : {1u, 4u}) {
    auto seg = ChaseInstance(tgds, {}, db, SegmentedMode(threads, true));
    ASSERT_TRUE(seg.ok()) << seg.status();
    EXPECT_TRUE(seg->target.Equals(indexed->target))
        << "seed " << GetParam() << " threads " << threads;
    EXPECT_EQ(text::InstanceToText(seg->target),
              text::InstanceToText(indexed->target))
        << "seed " << GetParam() << " threads " << threads;
    ExpectSameFiringCounts(indexed->stats, seg->stats, GetParam(), threads);
    EXPECT_TRUE(seg->stats.segmented);
    // The segment layer must actually carry the hot path: prefix probes
    // served from sealed segments and head dedup through batched retain.
    EXPECT_GT(seg->stats.segment.probes, 0u)
        << "seed " << GetParam() << " threads " << threads;
    EXPECT_GT(seg->stats.segment.retain_batches, 0u)
        << "seed " << GetParam() << " threads " << threads;
    EXPECT_GT(seg->stats.segment.seals, 0u);
    // A segmented run that only ever declined (fallbacks with zero served
    // probes) would mean the tiered view silently never engaged.
    EXPECT_FALSE(seg->stats.segment.fallbacks > 0 &&
                 seg->stats.segment.probes == 0)
        << "silent fallback: " << seg->stats.segment.fallbacks
        << " fallbacks with zero served probes (seed " << GetParam()
        << " threads " << threads << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClosureSegmentedDiffProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace mm2::chase
