// TransGen tests, centered on the Fig. 2 -> Fig. 3 pipeline: declarative
// mapping fragments between the Person hierarchy and the HR/Empl/Client
// tables compile into a query view (CASE over _from flags after a left
// outer join, UNION ALL for the separate Customer branch) and update views
// that roundtrip.
#include <gtest/gtest.h>

#include "instance/instance.h"
#include "model/schema.h"
#include "modelgen/modelgen.h"
#include "transgen/transgen.h"

namespace mm2::transgen {
namespace {

using instance::Instance;
using instance::Value;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;
using modelgen::InheritanceStrategy;
using modelgen::MappingFragment;

model::Schema PersonEr() {
  return SchemaBuilder("ER", Metamodel::kEntityRelationship)
      .EntityType("Person", "",
                  {{"Id", DataType::Int64()}, {"Name", DataType::String()}})
      .EntityType("Employee", "Person", {{"Dept", DataType::String()}})
      .EntityType("Customer", "Person",
                  {{"CreditScore", DataType::Int64()},
                   {"BillingAddr", DataType::String()}})
      .EntitySet("Persons", "Person")
      .Build();
}

// Fig. 2's relational side: HR(Id, Name), Empl(Id, Dept),
// Client(Id, Name, Score, Addr).
model::Schema Fig2Relational() {
  return SchemaBuilder("SQL", Metamodel::kRelational)
      .Relation("HR",
                {{"Id", DataType::Int64()}, {"Name", DataType::String()}},
                {"Id"})
      .Relation("Empl",
                {{"Id", DataType::Int64()}, {"Dept", DataType::String()}},
                {"Id"})
      .Relation("Client",
                {{"Id", DataType::Int64()},
                 {"Name", DataType::String()},
                 {"Score", DataType::Int64()},
                 {"Addr", DataType::String()}},
                {"Id"})
      .Build();
}

// Fig. 2's three mapping constraints as fragments.
std::vector<MappingFragment> Fig2Fragments() {
  return {
      {"Persons", {"Person", "Employee"}, "HR",
       {{"Id", "Id"}, {"Name", "Name"}}, ""},
      {"Persons", {"Employee"}, "Empl", {{"Id", "Id"}, {"Dept", "Dept"}}, ""},
      {"Persons",
       {"Customer"},
       "Client",
       {{"Id", "Id"},
        {"Name", "Name"},
        {"CreditScore", "Score"},
        {"BillingAddr", "Addr"}},
       ""},
  };
}

Instance PersonInstance(const model::Schema& er) {
  Instance db = Instance::EmptyFor(er);
  auto layout =
      instance::ComputeEntitySetLayout(er, *er.FindEntitySet("Persons"));
  EXPECT_TRUE(layout.ok());
  auto add = [&](const char* type, std::vector<Value> attrs) {
    auto tuple = instance::MakeEntityTuple(*layout, er, type, attrs);
    ASSERT_TRUE(tuple.ok()) << tuple.status();
    ASSERT_TRUE(db.Insert("Persons", *tuple).ok());
  };
  add("Person", {Value::Int64(1), Value::String("Ada")});
  add("Employee",
      {Value::Int64(2), Value::String("Bob"), Value::String("R&D")});
  add("Customer", {Value::Int64(3), Value::String("Cyd"), Value::Int64(700),
                   Value::String("12 Oak")});
  return db;
}

TEST(TransGenFig3Test, CompilesTheFig3QueryShape) {
  TransGenStats stats;
  auto views = CompileFragments(PersonEr(), "Persons", Fig2Relational(),
                                Fig2Fragments(), &stats);
  ASSERT_TRUE(views.ok()) << views.status();
  // Fig. 3's query: (HR LEFT OUTER JOIN Empl) UNION ALL Client.
  EXPECT_EQ(stats.components, 2u);     // {HR, Empl} and {Client}
  EXPECT_EQ(stats.outer_joins, 1u);    // HR loj Empl
  EXPECT_EQ(stats.case_branches, 2u);  // Person vs Employee dispatch
  EXPECT_EQ(views->update_views.size(), 3u);

  std::string sql = views->ToString();
  EXPECT_NE(sql.find("LEFT OUTER JOIN"), std::string::npos);
  EXPECT_NE(sql.find("UNION ALL"), std::string::npos);
  EXPECT_NE(sql.find("CASE"), std::string::npos);
}

TEST(TransGenFig3Test, QueryViewReconstructsEntities) {
  model::Schema er = PersonEr();
  model::Schema rel = Fig2Relational();
  auto views = CompileFragments(er, "Persons", rel, Fig2Fragments());
  ASSERT_TRUE(views.ok());

  // Populate tables as Fig. 2 prescribes (Ada: person; Bob: employee;
  // Cyd: customer).
  Instance tables = Instance::EmptyFor(rel);
  ASSERT_TRUE(tables.Insert("HR", {Value::Int64(1), Value::String("Ada")}).ok());
  ASSERT_TRUE(tables.Insert("HR", {Value::Int64(2), Value::String("Bob")}).ok());
  ASSERT_TRUE(
      tables.Insert("Empl", {Value::Int64(2), Value::String("R&D")}).ok());
  ASSERT_TRUE(tables
                  .Insert("Client", {Value::Int64(3), Value::String("Cyd"),
                                     Value::Int64(700),
                                     Value::String("12 Oak")})
                  .ok());

  Instance entities;
  ASSERT_TRUE(ApplyQueryView(*views, er, rel, tables, &entities).ok());
  const instance::RelationInstance* persons = entities.Find("Persons");
  ASSERT_NE(persons, nullptr);
  EXPECT_EQ(persons->size(), 3u);
  // Bob was reconstructed as an Employee with his Dept.
  bool bob = false;
  for (const instance::Tuple& t : persons->tuples()) {
    if (t[1] == Value::Int64(2)) {
      bob = true;
      EXPECT_EQ(t[0], Value::String("Employee"));
      EXPECT_EQ(t[2], Value::String("Bob"));
      EXPECT_EQ(t[3], Value::String("R&D"));
      EXPECT_TRUE(t[4].is_null());
    }
    if (t[1] == Value::Int64(1)) {
      EXPECT_EQ(t[0], Value::String("Person"));
    }
    if (t[1] == Value::Int64(3)) {
      EXPECT_EQ(t[0], Value::String("Customer"));
      EXPECT_EQ(t[4], Value::Int64(700));
    }
  }
  EXPECT_TRUE(bob);
}

TEST(TransGenFig3Test, UpdateViewsShredEntities) {
  model::Schema er = PersonEr();
  model::Schema rel = Fig2Relational();
  auto views = CompileFragments(er, "Persons", rel, Fig2Fragments());
  ASSERT_TRUE(views.ok());

  Instance tables;
  ASSERT_TRUE(
      ApplyUpdateViews(*views, er, rel, PersonInstance(er), &tables).ok());
  // HR holds Ada and Bob (persons + employees), Empl holds Bob's dept,
  // Client holds Cyd.
  EXPECT_EQ(tables.Find("HR")->size(), 2u);
  EXPECT_EQ(tables.Find("Empl")->size(), 1u);
  EXPECT_EQ(tables.Find("Client")->size(), 1u);
  EXPECT_TRUE(tables.Find("Empl")->Contains(
      {Value::Int64(2), Value::String("R&D")}));
  EXPECT_TRUE(tables.Find("Client")->Contains(
      {Value::Int64(3), Value::String("Cyd"), Value::Int64(700),
       Value::String("12 Oak")}));
}

TEST(TransGenFig3Test, RoundtripsExactly) {
  model::Schema er = PersonEr();
  model::Schema rel = Fig2Relational();
  auto views = CompileFragments(er, "Persons", rel, Fig2Fragments());
  ASSERT_TRUE(views.ok());
  auto ok = VerifyRoundtrip(*views, er, rel, PersonInstance(er));
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(*ok);
}

TEST(TransGenTest, RoundtripsForAllModelGenStrategies) {
  model::Schema er = PersonEr();
  for (InheritanceStrategy strategy :
       {InheritanceStrategy::kSingleTable, InheritanceStrategy::kTablePerType,
        InheritanceStrategy::kTablePerConcrete}) {
    auto generated = modelgen::ErToRelational(er, strategy);
    ASSERT_TRUE(generated.ok());
    auto views = CompileFragments(er, "Persons", generated->relational,
                                  generated->fragments);
    ASSERT_TRUE(views.ok())
        << modelgen::InheritanceStrategyToString(strategy) << ": "
        << views.status();
    auto ok = VerifyRoundtrip(*views, er, generated->relational,
                              PersonInstance(er));
    ASSERT_TRUE(ok.ok()) << ok.status();
    EXPECT_TRUE(*ok) << modelgen::InheritanceStrategyToString(strategy);
  }
}

TEST(TransGenTest, EmptyEntitySetRoundtrips) {
  model::Schema er = PersonEr();
  model::Schema rel = Fig2Relational();
  auto views = CompileFragments(er, "Persons", rel, Fig2Fragments());
  ASSERT_TRUE(views.ok());
  Instance empty = Instance::EmptyFor(er);
  auto ok = VerifyRoundtrip(*views, er, rel, empty);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST(TransGenTest, RejectsFragmentWithoutKey) {
  std::vector<MappingFragment> fragments = {
      {"Persons", {"Person", "Employee", "Customer"}, "HR",
       {{"Name", "Name"}}, ""},
  };
  auto views =
      CompileFragments(PersonEr(), "Persons", Fig2Relational(), fragments);
  EXPECT_EQ(views.status().code(), StatusCode::kUnsupported);
}

TEST(TransGenTest, RejectsUnknownTableAndEntitySet) {
  std::vector<MappingFragment> bad_table = {
      {"Persons", {"Person"}, "NoSuchTable", {{"Id", "Id"}}, ""},
  };
  EXPECT_EQ(CompileFragments(PersonEr(), "Persons", Fig2Relational(),
                             bad_table)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(CompileFragments(PersonEr(), "Nope", Fig2Relational(),
                             Fig2Fragments())
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      CompileFragments(PersonEr(), "Persons", Fig2Relational(), {})
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(TransGenTest, RejectsIndistinguishableTypes) {
  // Person and Employee stored identically: no flag pattern separates
  // them.
  std::vector<MappingFragment> fragments = {
      {"Persons", {"Person", "Employee"}, "HR",
       {{"Id", "Id"}, {"Name", "Name"}}, ""},
      {"Persons",
       {"Customer"},
       "Client",
       {{"Id", "Id"},
        {"Name", "Name"},
        {"CreditScore", "Score"},
        {"BillingAddr", "Addr"}},
       ""},
      // A second fragment covering BOTH Person and Employee again gives
      // them identical patterns.
      {"Persons", {"Person", "Employee"}, "Empl",
       {{"Id", "Id"}}, ""},
  };
  auto views =
      CompileFragments(PersonEr(), "Persons", Fig2Relational(), fragments);
  EXPECT_EQ(views.status().code(), StatusCode::kUnsupported);
}

TEST(TransGenTest, RejectsHorizontalPartitioningWithoutAnchor) {
  // Employee data split across two tables with overlapping type sets but
  // no fragment covering the union: unsupported shape.
  std::vector<MappingFragment> fragments = {
      {"Persons", {"Person"}, "HR", {{"Id", "Id"}, {"Name", "Name"}}, ""},
      {"Persons", {"Employee"}, "Empl", {{"Id", "Id"}, {"Dept", "Dept"}}, ""},
      // Bridge fragment sharing types with both but covering neither set:
      {"Persons", {"Person", "Employee"}, "Client", {{"Id", "Id"}}, ""},
      {"Persons", {"Employee", "Customer"}, "Client", {{"Id", "Id"}}, ""},
  };
  auto views =
      CompileFragments(PersonEr(), "Persons", Fig2Relational(), fragments);
  EXPECT_EQ(views.status().code(), StatusCode::kUnsupported);
}

TEST(TransGenTest, StatsCountQueryViewNodes) {
  TransGenStats stats;
  auto views = CompileFragments(PersonEr(), "Persons", Fig2Relational(),
                                Fig2Fragments(), &stats);
  ASSERT_TRUE(views.ok());
  EXPECT_GT(stats.query_view_nodes, 5u);
  EXPECT_EQ(stats.query_view_nodes, views->query_view->NodeCount());
}

}  // namespace
}  // namespace mm2::transgen
