// Tests for instance-based match evidence (value-distribution input,
// Section 3.1.1): overlapping data rescues matches that names alone get
// wrong, and the evidence only applies where samples exist.
#include <gtest/gtest.h>

#include "match/matcher.h"
#include "model/schema.h"

namespace mm2::match {
namespace {

using instance::Instance;
using instance::Value;
using model::DataType;
using model::ElementRef;
using model::Metamodel;
using model::SchemaBuilder;

// Source: attribute names carry no information (col1/col2); the data does.
model::Schema Anon() {
  return SchemaBuilder("A", Metamodel::kRelational)
      .Relation("T", {{"col1", DataType::String()},
                      {"col2", DataType::String()}})
      .Build();
}

model::Schema Named() {
  return SchemaBuilder("B", Metamodel::kRelational)
      .Relation("People", {{"City", DataType::String()},
                           {"Country", DataType::String()}})
      .Build();
}

Instance AnonDb() {
  Instance db;
  db.DeclareRelation("T", 2);
  db.InsertUnchecked("T", {Value::String("Berlin"), Value::String("DE")});
  db.InsertUnchecked("T", {Value::String("Paris"), Value::String("FR")});
  db.InsertUnchecked("T", {Value::String("Rome"), Value::String("IT")});
  return db;
}

Instance NamedDb() {
  Instance db;
  db.DeclareRelation("People", 2);
  db.InsertUnchecked("People",
                     {Value::String("Berlin"), Value::String("DE")});
  db.InsertUnchecked("People", {Value::String("Paris"), Value::String("FR")});
  db.InsertUnchecked("People", {Value::String("Oslo"), Value::String("NO")});
  return db;
}

TEST(InstanceMatchTest, ValueOverlapComputesJaccard) {
  SchemaMatcher matcher;
  double city = matcher.InstanceSimilarity(Anon(), AnonDb(), {"T", "col1"},
                                           Named(), NamedDb(),
                                           {"People", "City"});
  // {Berlin, Paris, Rome} vs {Berlin, Paris, Oslo}: 2 of 4.
  EXPECT_DOUBLE_EQ(city, 0.5);
  double cross = matcher.InstanceSimilarity(Anon(), AnonDb(), {"T", "col1"},
                                            Named(), NamedDb(),
                                            {"People", "Country"});
  EXPECT_DOUBLE_EQ(cross, 0.0);
}

TEST(InstanceMatchTest, MissingDataYieldsZeroEvidence) {
  SchemaMatcher matcher;
  Instance empty;
  EXPECT_DOUBLE_EQ(
      matcher.InstanceSimilarity(Anon(), empty, {"T", "col1"}, Named(),
                                 NamedDb(), {"People", "City"}),
      0.0);
  EXPECT_DOUBLE_EQ(
      matcher.InstanceSimilarity(Anon(), AnonDb(), {"T", "nope"}, Named(),
                                 NamedDb(), {"People", "City"}),
      0.0);
  EXPECT_DOUBLE_EQ(
      matcher.InstanceSimilarity(Anon(), AnonDb(), {"Missing", "col1"},
                                 Named(), NamedDb(), {"People", "City"}),
      0.0);
}

TEST(InstanceMatchTest, EvidenceFixesUninformativeNames) {
  // Lexically, col1/col2 vs City/Country is a coin toss; with data the
  // matcher routes col1 -> City and col2 -> Country.
  MatchOptions options;
  options.threshold = 0.1;
  options.structural_rounds = 0;  // isolate the instance effect
  SchemaMatcher matcher(options);
  MatchResult with_data = matcher.Match(Anon(), AnonDb(), Named(), NamedDb());

  auto best_target = [&](const MatchResult& r,
                         const ElementRef& source) -> ElementRef {
    for (const Correspondence& c : r.best) {
      if (c.source == source) return c.target;
    }
    return {};
  };
  EXPECT_EQ(best_target(with_data, {"T", "col1"}),
            (ElementRef{"People", "City"}));
  EXPECT_EQ(best_target(with_data, {"T", "col2"}),
            (ElementRef{"People", "Country"}));
}

TEST(InstanceMatchTest, ZeroWeightDisablesEvidence) {
  MatchOptions options;
  options.instance_weight = 0.0;
  options.threshold = 0.05;
  SchemaMatcher with(options);
  MatchResult a = with.Match(Anon(), AnonDb(), Named(), NamedDb());
  SchemaMatcher plain(options);
  MatchResult b = plain.Match(Anon(), Named());
  // Identical outcomes: evidence ignored.
  ASSERT_EQ(a.best.size(), b.best.size());
  for (std::size_t i = 0; i < a.best.size(); ++i) {
    EXPECT_EQ(a.best[i].target, b.best[i].target);
    EXPECT_DOUBLE_EQ(a.best[i].score, b.best[i].score);
  }
}

TEST(InstanceMatchTest, SampleCapBoundsWork) {
  MatchOptions options;
  options.instance_sample = 2;  // only the first two values sampled
  SchemaMatcher matcher(options);
  double sim = matcher.InstanceSimilarity(Anon(), AnonDb(), {"T", "col1"},
                                          Named(), NamedDb(),
                                          {"People", "City"});
  // Samples are the 2 lexicographically-first values per side (set
  // iteration order): {Berlin, Paris} vs {Berlin, Oslo} -> 1/3.
  EXPECT_NEAR(sim, 1.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace mm2::match
