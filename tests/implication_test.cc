// Tests for chase-based implication and mapping equivalence — the
// machinery behind checking statements like "the composed mapping equals
// the direct mapping" mechanically.
#include <gtest/gtest.h>

#include "compose/compose.h"
#include "logic/implication.h"
#include "workload/generators.h"

namespace mm2::logic {
namespace {

using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Term V(const char* name) { return Term::Var(name); }

model::Schema Src() {
  return SchemaBuilder("S", Metamodel::kRelational)
      .Relation("R", {{"a", DataType::Int64()}, {"b", DataType::String()}})
      .Build();
}

model::Schema Tgt() {
  SchemaBuilder b("T", Metamodel::kRelational);
  b.Relation("U", {{"a", DataType::Int64()}, {"b", DataType::String()}});
  b.Relation("W", {{"a", DataType::Int64()}});
  return std::move(b).Build();
}

Tgd CopyTgd() {
  Tgd tgd;
  tgd.body = {Atom{"R", {V("x"), V("y")}}};
  tgd.head = {Atom{"U", {V("x"), V("y")}}};
  return tgd;
}

TEST(ImplicationTest, MappingImpliesItsOwnTgds) {
  Mapping m = Mapping::FromTgds("m", Src(), Tgt(), {CopyTgd()});
  auto implied = Implies(m, CopyTgd());
  ASSERT_TRUE(implied.ok()) << implied.status();
  EXPECT_TRUE(*implied);
}

TEST(ImplicationTest, ImpliesWeakerProjection) {
  // R(x,y) -> U(x,y) implies R(x,y) -> exists z. U(x,z).
  Mapping m = Mapping::FromTgds("m", Src(), Tgt(), {CopyTgd()});
  Tgd weaker;
  weaker.body = {Atom{"R", {V("x"), V("y")}}};
  weaker.head = {Atom{"U", {V("x"), V("z")}}};
  auto implied = Implies(m, weaker);
  ASSERT_TRUE(implied.ok());
  EXPECT_TRUE(*implied);
  // ...but not the converse.
  Mapping weak_mapping = Mapping::FromTgds("w", Src(), Tgt(), {weaker});
  auto back = Implies(weak_mapping, CopyTgd());
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(*back);
}

TEST(ImplicationTest, DoesNotImplyUnrelatedTgd) {
  Mapping m = Mapping::FromTgds("m", Src(), Tgt(), {CopyTgd()});
  Tgd other;
  other.body = {Atom{"R", {V("x"), V("y")}}};
  other.head = {Atom{"W", {V("x")}}};
  auto implied = Implies(m, other);
  ASSERT_TRUE(implied.ok());
  EXPECT_FALSE(*implied);
}

TEST(ImplicationTest, ConstantsMustLineUp) {
  // R(x, "a") -> W(x) does not imply R(x, y) -> W(x).
  Tgd guarded;
  guarded.body = {Atom{"R", {V("x"), Term::Const(instance::Value::String("a"))}}};
  guarded.head = {Atom{"W", {V("x")}}};
  Mapping m = Mapping::FromTgds("m", Src(), Tgt(), {guarded});
  Tgd unguarded;
  unguarded.body = {Atom{"R", {V("x"), V("y")}}};
  unguarded.head = {Atom{"W", {V("x")}}};
  auto implied = Implies(m, unguarded);
  ASSERT_TRUE(implied.ok());
  EXPECT_FALSE(*implied);
  // The guarded direction IS implied by the unguarded mapping.
  Mapping m2 = Mapping::FromTgds("m2", Src(), Tgt(), {unguarded});
  auto back = Implies(m2, guarded);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back);
}

TEST(EquivalenceTest, RenamedAndReorderedMappingsAreEquivalent) {
  Tgd w_rule;
  w_rule.body = {Atom{"R", {V("x"), V("y")}}};
  w_rule.head = {Atom{"W", {V("x")}}};
  Mapping a = Mapping::FromTgds("a", Src(), Tgt(), {CopyTgd(), w_rule});

  NameGenerator gen("fresh");
  Mapping b = Mapping::FromTgds(
      "b", Src(), Tgt(),
      {w_rule.RenameVariables(&gen), CopyTgd().RenameVariables(&gen)});
  auto equivalent = AreEquivalent(a, b);
  ASSERT_TRUE(equivalent.ok()) << equivalent.status();
  EXPECT_TRUE(*equivalent);
}

TEST(EquivalenceTest, RedundantTgdDoesNotBreakEquivalence) {
  // Adding a tgd implied by an existing one changes nothing semantically.
  Tgd weaker;
  weaker.body = {Atom{"R", {V("x"), V("y")}}};
  weaker.head = {Atom{"U", {V("x"), V("z")}}};
  Mapping lean = Mapping::FromTgds("lean", Src(), Tgt(), {CopyTgd()});
  Mapping padded =
      Mapping::FromTgds("padded", Src(), Tgt(), {CopyTgd(), weaker});
  auto equivalent = AreEquivalent(lean, padded);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_TRUE(*equivalent);
}

TEST(EquivalenceTest, DistinguishesGenuinelyDifferentMappings) {
  Tgd w_rule;
  w_rule.body = {Atom{"R", {V("x"), V("y")}}};
  w_rule.head = {Atom{"W", {V("x")}}};
  Mapping just_copy = Mapping::FromTgds("a", Src(), Tgt(), {CopyTgd()});
  Mapping copy_and_w =
      Mapping::FromTgds("b", Src(), Tgt(), {CopyTgd(), w_rule});
  auto equivalent = AreEquivalent(just_copy, copy_and_w);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_FALSE(*equivalent);
}

TEST(EquivalenceTest, ComposedChainEqualsDirectMapping) {
  // The F5 property, now checked *logically* rather than on sample data:
  // composing the evolution chain is equivalent to the hand-written
  // one-shot mapping.
  workload::EvolutionChain chain = workload::MakeEvolutionChain(2, 4);
  Mapping composed = chain.steps[0];
  for (std::size_t i = 1; i < chain.steps.size(); ++i) {
    auto next = compose::Compose(composed, chain.steps[i]);
    ASSERT_TRUE(next.ok());
    composed = *next;
  }
  // Hand-written direct mapping S0 => S2: split Data into Left/Right v2.
  const model::Schema& s0 = chain.schemas.front();
  const model::Schema& s2 = chain.schemas.back();
  Tgd direct;
  Atom body;
  body.relation = s0.relations()[0].name();
  for (std::size_t i = 0; i < s0.relations()[0].arity(); ++i) {
    body.terms.push_back(V(("v" + std::to_string(i)).c_str()));
  }
  direct.body = {body};
  for (const model::Relation& r : s2.relations()) {
    Atom head;
    head.relation = r.name();
    for (const model::Attribute& a : r.attributes()) {
      auto idx = s0.relations()[0].AttributeIndex(a.name);
      ASSERT_TRUE(idx.has_value());
      head.terms.push_back(V(("v" + std::to_string(*idx)).c_str()));
    }
    direct.head.push_back(std::move(head));
  }
  Mapping expected = Mapping::FromTgds("direct", s0, s2, {direct});

  auto equivalent = AreEquivalent(composed, expected);
  ASSERT_TRUE(equivalent.ok()) << equivalent.status();
  EXPECT_TRUE(*equivalent);
}

TEST(ImplicationTest, SecondOrderRejected) {
  SoTgd so;
  Mapping m = Mapping::FromSoTgd("so", Src(), Tgt(), so);
  EXPECT_EQ(Implies(m, CopyTgd()).status().code(),
            StatusCode::kUnsupported);
  Mapping fo = Mapping::FromTgds("fo", Src(), Tgt(), {CopyTgd()});
  EXPECT_EQ(AreEquivalent(m, fo).status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace mm2::logic
