#include <gtest/gtest.h>

#include "chase/chase.h"
#include "inverse/inverse.h"
#include "logic/formula.h"
#include "model/schema.h"

namespace mm2::inverse {
namespace {

using instance::Instance;
using instance::Value;
using logic::Atom;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Term V(const char* name) { return Term::Var(name); }

model::Schema Src() {
  return SchemaBuilder("S", Metamodel::kRelational)
      .Relation("Names", {{"SID", DataType::Int64()},
                          {"Name", DataType::String()}},
                {"SID"})
      .Relation("Addresses", {{"SID", DataType::Int64()},
                              {"Address", DataType::String()},
                              {"Country", DataType::String()}},
                {"SID"})
      .Build();
}

// Lossless decomposition: Names kept, Addresses split vertically.
model::Schema TgtSplit() {
  return SchemaBuilder("T", Metamodel::kRelational)
      .Relation("NamesP", {{"SID", DataType::Int64()},
                           {"Name", DataType::String()}},
                {"SID"})
      .Relation("AddrPart", {{"SID", DataType::Int64()},
                             {"Address", DataType::String()}},
                {"SID"})
      .Relation("CountryPart", {{"SID", DataType::Int64()},
                                {"Country", DataType::String()}},
                {"SID"})
      .Build();
}

Mapping LosslessMapping() {
  Tgd names;
  names.body = {Atom{"Names", {V("s"), V("n")}}};
  names.head = {Atom{"NamesP", {V("s"), V("n")}}};
  Tgd split;
  split.body = {Atom{"Addresses", {V("s"), V("a"), V("c")}}};
  split.head = {Atom{"AddrPart", {V("s"), V("a")}},
                Atom{"CountryPart", {V("s"), V("c")}}};
  return Mapping::FromTgds("split", Src(), TgtSplit(), {names, split});
}

Instance SrcDb() {
  Instance db;
  db.DeclareRelation("Names", 2);
  db.DeclareRelation("Addresses", 3);
  EXPECT_TRUE(db.Insert("Names", {Value::Int64(1), Value::String("Ada")}).ok());
  EXPECT_TRUE(db.Insert("Names", {Value::Int64(2), Value::String("Bob")}).ok());
  EXPECT_TRUE(db.Insert("Addresses", {Value::Int64(1), Value::String("12 Oak"),
                                      Value::String("US")})
                  .ok());
  EXPECT_TRUE(db.Insert("Addresses", {Value::Int64(2), Value::String("5 Rue"),
                                      Value::String("FR")})
                  .ok());
  return db;
}

TEST(InvertTest, SwapsSchemasAndConstraintSides) {
  Mapping m = LosslessMapping();
  auto inv = Invert(m);
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv->source().name(), "T");
  EXPECT_EQ(inv->target().name(), "S");
  ASSERT_EQ(inv->tgds().size(), 2u);
  EXPECT_EQ(inv->tgds()[0].body[0].relation, "NamesP");
  EXPECT_EQ(inv->tgds()[0].head[0].relation, "Names");
}

TEST(InvertTest, IsAnInvolution) {
  Mapping m = LosslessMapping();
  auto inv = Invert(m);
  ASSERT_TRUE(inv.ok());
  auto back = Invert(*inv);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->tgds().size(), m.tgds().size());
  for (std::size_t i = 0; i < m.tgds().size(); ++i) {
    EXPECT_EQ(back->tgds()[i].ToString(), m.tgds()[i].ToString());
  }
}

TEST(InvertTest, RejectsSecondOrderMappings) {
  logic::SoTgd so;
  Mapping m = Mapping::FromSoTgd("so", Src(), TgtSplit(), so);
  EXPECT_EQ(Invert(m).status().code(), StatusCode::kUnsupported);
}

TEST(ComputeInverseTest, LosslessDecompositionHasExactInverse) {
  auto result = ComputeInverse(LosslessMapping());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->exact);
  EXPECT_TRUE(result->lost.empty());

  auto roundtrips = VerifyRoundtrip(LosslessMapping(), result->inverse,
                                    SrcDb());
  ASSERT_TRUE(roundtrips.ok());
  EXPECT_TRUE(*roundtrips);
}

TEST(ComputeInverseTest, ProjectionYieldsQuasiInverse) {
  // Addresses loses its Country column: quasi-inverse only.
  model::Schema tgt =
      SchemaBuilder("T", Metamodel::kRelational)
          .Relation("AddrOnly", {{"SID", DataType::Int64()},
                                 {"Address", DataType::String()}},
                    {"SID"})
          .Build();
  Tgd proj;
  proj.body = {Atom{"Addresses", {V("s"), V("a"), V("c")}}};
  proj.head = {Atom{"AddrOnly", {V("s"), V("a")}}};
  model::Schema src =
      SchemaBuilder("S", Metamodel::kRelational)
          .Relation("Addresses", {{"SID", DataType::Int64()},
                                  {"Address", DataType::String()},
                                  {"Country", DataType::String()}},
                    {"SID"})
          .Build();
  Mapping m = Mapping::FromTgds("proj", src, tgt, {proj});
  auto result = ComputeInverse(m);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exact);
  ASSERT_EQ(result->lost.size(), 1u);
  EXPECT_EQ(result->lost[0], "Addresses.Country");

  // The quasi-inverse still recovers the surviving columns: chase back
  // and check SID/Address pairs, with Country a labeled null.
  Instance db;
  db.DeclareRelation("Addresses", 3);
  ASSERT_TRUE(db.Insert("Addresses", {Value::Int64(1), Value::String("x"),
                                      Value::String("US")})
                  .ok());
  auto forward = chase::RunChase(m, db);
  ASSERT_TRUE(forward.ok());
  auto back = chase::RunChase(result->inverse, forward->target);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->target.Find("Addresses")->size(), 1u);
  const instance::Tuple& t =
      *back->target.Find("Addresses")->tuples().begin();
  EXPECT_EQ(t[0], Value::Int64(1));
  EXPECT_EQ(t[1], Value::String("x"));
  EXPECT_TRUE(t[2].is_labeled_null());
}

TEST(ComputeInverseTest, DroppedRelationIsReportedLost) {
  // Names is never mapped: whole relation lost.
  Tgd only_addr;
  only_addr.body = {Atom{"Addresses", {V("s"), V("a"), V("c")}}};
  only_addr.head = {Atom{"AddrPart", {V("s"), V("a")}},
                    Atom{"CountryPart", {V("s"), V("c")}}};
  Mapping m = Mapping::FromTgds("partial", Src(), TgtSplit(), {only_addr});
  auto result = ComputeInverse(m);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exact);
  ASSERT_EQ(result->lost.size(), 1u);
  EXPECT_EQ(result->lost[0], "Names");
}

TEST(ComputeInverseTest, UnionFunnelIsNotExact) {
  // R and S both land in T: reconstruction bleeds across relations, so the
  // candidate must be flagged non-exact by the joint canonical check.
  SchemaBuilder srcb("S", Metamodel::kRelational);
  srcb.Relation("R", {{"a", DataType::String()}});
  srcb.Relation("Q", {{"a", DataType::String()}});
  model::Schema src = std::move(srcb).Build();
  model::Schema tgt = SchemaBuilder("T", Metamodel::kRelational)
                          .Relation("U", {{"a", DataType::String()}})
                          .Build();
  Tgd r;
  r.body = {Atom{"R", {V("x")}}};
  r.head = {Atom{"U", {V("x")}}};
  Tgd q;
  q.body = {Atom{"Q", {V("x")}}};
  q.head = {Atom{"U", {V("x")}}};
  Mapping m = Mapping::FromTgds("funnel", src, tgt, {r, q});
  auto result = ComputeInverse(m);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exact);
}

TEST(ComputeInverseTest, FullyLossyMappingHasNoInverse) {
  // Only an existence marker survives: nothing reconstructible.
  model::Schema src = SchemaBuilder("S", Metamodel::kRelational)
                          .Relation("R", {{"a", DataType::String()}})
                          .Build();
  model::Schema tgt = SchemaBuilder("T", Metamodel::kRelational)
                          .Relation("Flag", {{"x", DataType::String()}})
                          .Build();
  Tgd lossy;
  lossy.body = {Atom{"R", {V("x")}}};
  lossy.head = {Atom{"Flag", {V("e")}}};  // existential only
  Mapping m = Mapping::FromTgds("lossy", src, tgt, {lossy});
  auto result = ComputeInverse(m);
  EXPECT_EQ(result.status().code(), StatusCode::kNotExpressible);
}

TEST(VerifyRoundtripTest, DetectsNonRoundtrip) {
  Mapping m = LosslessMapping();
  // A wrong candidate: maps NamesP back into Names with swapped columns.
  Tgd wrong;
  wrong.body = {Atom{"NamesP", {V("s"), V("n")}}};
  wrong.head = {Atom{"Names", {V("n"), V("s")}}};
  Mapping bad = Mapping::FromTgds("bad", TgtSplit(), Src(), {wrong});
  auto ok = VerifyRoundtrip(m, bad, SrcDb());
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(*ok);
}

}  // namespace
}  // namespace mm2::inverse
