#include <gtest/gtest.h>

#include "instance/instance.h"
#include "instance/value.h"
#include "model/schema.h"

namespace mm2::instance {
namespace {

using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Null().is_any_null());
  EXPECT_FALSE(Value::Null().is_labeled_null());
  EXPECT_EQ(Value::Int64(42).int64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).dbl(), 2.5);
  EXPECT_EQ(Value::String("hi").str(), "hi");
  EXPECT_TRUE(Value::Bool(true).boolean());
  EXPECT_EQ(Value::Date(100).date(), 100);
  Value n = Value::LabeledNull(7);
  EXPECT_TRUE(n.is_labeled_null());
  EXPECT_TRUE(n.is_any_null());
  EXPECT_FALSE(n.is_constant());
  EXPECT_EQ(n.label(), 7);
}

TEST(ValueTest, EqualityIsKindAndPayload) {
  EXPECT_EQ(Value::Int64(1), Value::Int64(1));
  EXPECT_NE(Value::Int64(1), Value::Int64(2));
  EXPECT_NE(Value::Int64(1), Value::Double(1.0));  // distinct kinds
  EXPECT_EQ(Value::LabeledNull(3), Value::LabeledNull(3));
  EXPECT_NE(Value::LabeledNull(3), Value::LabeledNull(4));
  EXPECT_NE(Value::Null(), Value::LabeledNull(0));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, OrderingIsTotalAndConsistent) {
  std::vector<Value> vs = {Value::Null(), Value::Int64(1), Value::Int64(2),
                           Value::String("a"), Value::LabeledNull(0)};
  for (const Value& a : vs) {
    EXPECT_FALSE(a < a);
    for (const Value& b : vs) {
      if (a == b) continue;
      EXPECT_NE(a < b, b < a) << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Int64(5).ToString(), "5");
  EXPECT_EQ(Value::String("x").ToString(), "\"x\"");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::LabeledNull(12).ToString(), "N12");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Date(3).ToString(), "date:3");
}

TEST(ValueTest, HashAgreesWithEquality) {
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_EQ(Value::Int64(9).Hash(), Value::Int64(9).Hash());
  // Different kinds with same payload should (very likely) differ.
  EXPECT_NE(Value::Int64(9).Hash(), Value::LabeledNull(9).Hash());
}

TEST(RelationInstanceTest, SetSemantics) {
  RelationInstance rel(2);
  EXPECT_TRUE(rel.Insert({Value::Int64(1), Value::String("a")}));
  EXPECT_FALSE(rel.Insert({Value::Int64(1), Value::String("a")}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains({Value::Int64(1), Value::String("a")}));
  EXPECT_TRUE(rel.Erase({Value::Int64(1), Value::String("a")}));
  EXPECT_FALSE(rel.Erase({Value::Int64(1), Value::String("a")}));
  EXPECT_TRUE(rel.empty());
}

TEST(InstanceTest, CheckedInsertValidatesShape) {
  Instance db;
  db.DeclareRelation("R", 2);
  EXPECT_TRUE(db.Insert("R", {Value::Int64(1), Value::Int64(2)}).ok());
  EXPECT_EQ(db.Insert("Missing", {Value::Int64(1)}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.Insert("R", {Value::Int64(1)}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.TotalTuples(), 1u);
}

TEST(InstanceTest, EraseReportsMissingTuple) {
  Instance db;
  db.DeclareRelation("R", 1);
  ASSERT_TRUE(db.Insert("R", {Value::Int64(1)}).ok());
  EXPECT_TRUE(db.Erase("R", {Value::Int64(1)}).ok());
  EXPECT_FALSE(db.Erase("R", {Value::Int64(1)}).ok());
  EXPECT_FALSE(db.Erase("Nope", {Value::Int64(1)}).ok());
}

TEST(InstanceTest, LabeledNullDetection) {
  Instance db;
  db.DeclareRelation("R", 1);
  EXPECT_FALSE(db.HasLabeledNulls());
  EXPECT_EQ(db.MaxNullLabel(), -1);
  ASSERT_TRUE(db.Insert("R", {Value::LabeledNull(5)}).ok());
  EXPECT_TRUE(db.HasLabeledNulls());
  EXPECT_EQ(db.MaxNullLabel(), 5);
}

TEST(InstanceTest, EqualsIgnoresEmptyRelations) {
  Instance a;
  a.DeclareRelation("R", 1);
  a.DeclareRelation("Empty", 1);
  ASSERT_TRUE(a.Insert("R", {Value::Int64(1)}).ok());
  Instance b;
  b.DeclareRelation("R", 1);
  ASSERT_TRUE(b.Insert("R", {Value::Int64(1)}).ok());
  EXPECT_TRUE(a.Equals(b));
  ASSERT_TRUE(b.Insert("R", {Value::Int64(2)}).ok());
  EXPECT_FALSE(a.Equals(b));
}

TEST(InstanceTest, MinusAndUnion) {
  Instance a;
  a.DeclareRelation("R", 1);
  ASSERT_TRUE(a.Insert("R", {Value::Int64(1)}).ok());
  ASSERT_TRUE(a.Insert("R", {Value::Int64(2)}).ok());
  Instance b;
  b.DeclareRelation("R", 1);
  ASSERT_TRUE(b.Insert("R", {Value::Int64(2)}).ok());

  Instance diff = a.Minus(b);
  EXPECT_EQ(diff.Find("R")->size(), 1u);
  EXPECT_TRUE(diff.Find("R")->Contains({Value::Int64(1)}));

  b.UnionWith(a);
  EXPECT_EQ(b.Find("R")->size(), 2u);
}

TEST(InstanceTest, EmptyForDeclaresSchemaRelations) {
  model::Schema s = SchemaBuilder("S", Metamodel::kRelational)
                        .Relation("R", {{"a", DataType::Int64()},
                                        {"b", DataType::String()}})
                        .Build();
  Instance db = Instance::EmptyFor(s);
  ASSERT_TRUE(db.HasRelation("R"));
  EXPECT_EQ(db.Find("R")->arity(), 2u);
}

model::Schema PersonSchema() {
  return SchemaBuilder("ER", Metamodel::kEntityRelationship)
      .EntityType("Person", "",
                  {{"Id", DataType::Int64()}, {"Name", DataType::String()}})
      .EntityType("Employee", "Person", {{"Dept", DataType::String()}})
      .EntityType("Customer", "Person",
                  {{"CreditScore", DataType::Int64()},
                   {"BillingAddr", DataType::String()}})
      .EntitySet("Persons", "Person")
      .Build();
}

TEST(EntitySetLayoutTest, ColumnsUnionInHierarchyOrder) {
  model::Schema er = PersonSchema();
  auto layout =
      ComputeEntitySetLayout(er, *er.FindEntitySet("Persons"));
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->columns,
            (std::vector<std::string>{"Id", "Name", "Dept", "CreditScore",
                                      "BillingAddr"}));
  EXPECT_EQ(layout->arity(), 6u);  // +1 for $type
  EXPECT_EQ(layout->ColumnIndex("Dept"), 2u);
  EXPECT_EQ(layout->ColumnIndex("Nope"), EntitySetLayout::kNpos);
  EXPECT_EQ(layout->columns_of_type.at("Person"),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(layout->columns_of_type.at("Customer"),
            (std::vector<std::size_t>{0, 1, 3, 4}));
}

TEST(EntitySetLayoutTest, MakeEntityTuplePadsWithNulls) {
  model::Schema er = PersonSchema();
  auto layout = ComputeEntitySetLayout(er, *er.FindEntitySet("Persons"));
  ASSERT_TRUE(layout.ok());

  auto tuple = MakeEntityTuple(*layout, er, "Employee",
                               {Value::Int64(1), Value::String("Ada"),
                                Value::String("R&D")});
  ASSERT_TRUE(tuple.ok());
  ASSERT_EQ(tuple->size(), 6u);
  EXPECT_EQ((*tuple)[0], Value::String("Employee"));
  EXPECT_EQ((*tuple)[1], Value::Int64(1));
  EXPECT_EQ((*tuple)[2], Value::String("Ada"));
  EXPECT_EQ((*tuple)[3], Value::String("R&D"));
  EXPECT_TRUE((*tuple)[4].is_null());
  EXPECT_TRUE((*tuple)[5].is_null());
}

TEST(EntitySetLayoutTest, MakeEntityTupleValidatesTypeAndArity) {
  model::Schema er = PersonSchema();
  auto layout = ComputeEntitySetLayout(er, *er.FindEntitySet("Persons"));
  ASSERT_TRUE(layout.ok());
  EXPECT_FALSE(MakeEntityTuple(*layout, er, "Alien", {}).ok());
  EXPECT_FALSE(
      MakeEntityTuple(*layout, er, "Person", {Value::Int64(1)}).ok());
}

TEST(EntitySetLayoutTest, AbstractTypeCannotBeInstantiated) {
  model::Schema er =
      SchemaBuilder("ER", Metamodel::kEntityRelationship)
          .EntityType("Shape", "", {{"Id", DataType::Int64()}}, true)
          .EntityType("Circle", "Shape", {{"R", DataType::Double()}})
          .EntitySet("Shapes", "Shape")
          .Build();
  auto layout = ComputeEntitySetLayout(er, *er.FindEntitySet("Shapes"));
  ASSERT_TRUE(layout.ok());
  EXPECT_FALSE(MakeEntityTuple(*layout, er, "Shape", {Value::Int64(1)}).ok());
  EXPECT_TRUE(MakeEntityTuple(*layout, er, "Circle",
                              {Value::Int64(1), Value::Double(2.0)})
                  .ok());
}

}  // namespace
}  // namespace mm2::instance
