#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "instance/instance.h"
#include "instance/value.h"
#include "model/schema.h"

namespace mm2::instance {
namespace {

using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Null().is_any_null());
  EXPECT_FALSE(Value::Null().is_labeled_null());
  EXPECT_EQ(Value::Int64(42).int64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).dbl(), 2.5);
  EXPECT_EQ(Value::String("hi").str(), "hi");
  EXPECT_TRUE(Value::Bool(true).boolean());
  EXPECT_EQ(Value::Date(100).date(), 100);
  Value n = Value::LabeledNull(7);
  EXPECT_TRUE(n.is_labeled_null());
  EXPECT_TRUE(n.is_any_null());
  EXPECT_FALSE(n.is_constant());
  EXPECT_EQ(n.label(), 7);
}

TEST(ValueTest, EqualityIsKindAndPayload) {
  EXPECT_EQ(Value::Int64(1), Value::Int64(1));
  EXPECT_NE(Value::Int64(1), Value::Int64(2));
  EXPECT_NE(Value::Int64(1), Value::Double(1.0));  // distinct kinds
  EXPECT_EQ(Value::LabeledNull(3), Value::LabeledNull(3));
  EXPECT_NE(Value::LabeledNull(3), Value::LabeledNull(4));
  EXPECT_NE(Value::Null(), Value::LabeledNull(0));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, OrderingIsTotalAndConsistent) {
  std::vector<Value> vs = {Value::Null(), Value::Int64(1), Value::Int64(2),
                           Value::String("a"), Value::LabeledNull(0)};
  for (const Value& a : vs) {
    EXPECT_FALSE(a < a);
    for (const Value& b : vs) {
      if (a == b) continue;
      EXPECT_NE(a < b, b < a) << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Int64(5).ToString(), "5");
  EXPECT_EQ(Value::String("x").ToString(), "\"x\"");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::LabeledNull(12).ToString(), "N12");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Date(3).ToString(), "date:3");
}

TEST(ValueTest, HashAgreesWithEquality) {
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_EQ(Value::Int64(9).Hash(), Value::Int64(9).Hash());
  // Different kinds with same payload should (very likely) differ.
  EXPECT_NE(Value::Int64(9).Hash(), Value::LabeledNull(9).Hash());
}

TEST(RelationInstanceTest, SetSemantics) {
  RelationInstance rel(2);
  EXPECT_TRUE(rel.Insert({Value::Int64(1), Value::String("a")}));
  EXPECT_FALSE(rel.Insert({Value::Int64(1), Value::String("a")}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains({Value::Int64(1), Value::String("a")}));
  EXPECT_TRUE(rel.Erase({Value::Int64(1), Value::String("a")}));
  EXPECT_FALSE(rel.Erase({Value::Int64(1), Value::String("a")}));
  EXPECT_TRUE(rel.empty());
}

TEST(RelationInstanceTest, ProbeFindsMatchesInSetOrder) {
  RelationInstance rel(2);
  rel.Insert({Value::Int64(1), Value::String("b")});
  rel.Insert({Value::Int64(1), Value::String("a")});
  rel.Insert({Value::Int64(2), Value::String("c")});

  const RelationInstance::TupleRefs* hits =
      rel.Probe({0}, {Value::Int64(1)});
  ASSERT_NE(hits, nullptr);
  ASSERT_EQ(hits->size(), 2u);
  // Buckets keep set order, so probe enumeration matches a full scan.
  EXPECT_EQ((*(*hits)[0])[1], Value::String("a"));
  EXPECT_EQ((*(*hits)[1])[1], Value::String("b"));

  EXPECT_EQ(rel.Probe({0}, {Value::Int64(9)}), nullptr);
  // Multi-column keys and non-prefix columns work too.
  const RelationInstance::TupleRefs* exact =
      rel.Probe({0, 1}, {Value::Int64(2), Value::String("c")});
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(exact->size(), 1u);
  const RelationInstance::TupleRefs* by_second =
      rel.Probe({1}, {Value::String("a")});
  ASSERT_NE(by_second, nullptr);
  EXPECT_EQ(by_second->size(), 1u);
}

TEST(RelationInstanceTest, IndexMaintainedAcrossMutations) {
  RelationInstance rel(2);
  rel.Insert({Value::Int64(1), Value::Int64(10)});
  ASSERT_NE(rel.Probe({0}, {Value::Int64(1)}), nullptr);  // build the index

  rel.Insert({Value::Int64(1), Value::Int64(11)});  // maintained, not rebuilt
  const RelationInstance::TupleRefs* hits =
      rel.Probe({0}, {Value::Int64(1)});
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 2u);

  rel.Erase({Value::Int64(1), Value::Int64(10)});
  hits = rel.Probe({0}, {Value::Int64(1)});
  ASSERT_NE(hits, nullptr);
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*(*hits)[0])[1], Value::Int64(11));

  rel.Clear();
  EXPECT_EQ(rel.Probe({0}, {Value::Int64(1)}), nullptr);

  IndexStats stats = rel.index_stats();
  // Insert/Erase maintained the one lazily built index in place; Clear
  // dropped it, so the post-Clear probe rebuilt (over the empty set).
  EXPECT_EQ(stats.builds, 2u);
  EXPECT_EQ(stats.probes, 4u);
  EXPECT_EQ(stats.probe_hits, 4u);  // 1 + 2 + 1 + 0 tuples yielded
}

TEST(RelationInstanceTest, GenerationBumpsOnMutationOnly) {
  RelationInstance rel(1);
  std::uint64_t g0 = rel.generation();
  rel.Insert({Value::Int64(1)});
  std::uint64_t g1 = rel.generation();
  EXPECT_GT(g1, g0);
  rel.Insert({Value::Int64(1)});  // duplicate: no state change
  EXPECT_EQ(rel.generation(), g1);
  rel.Erase({Value::Int64(2)});  // miss: no state change
  EXPECT_EQ(rel.generation(), g1);
  rel.Probe({0}, {Value::Int64(1)});  // reads never bump
  EXPECT_EQ(rel.generation(), g1);
  rel.Erase({Value::Int64(1)});
  EXPECT_GT(rel.generation(), g1);
}

TEST(RelationInstanceTest, DeltaSinceTracksInsertsAndTombstonesErases) {
  RelationInstance rel(1);
  rel.Insert({Value::Int64(1)});
  std::size_t mark = rel.Watermark();
  EXPECT_TRUE(rel.DeltaSince(mark).empty());

  rel.Insert({Value::Int64(2)});
  rel.Insert({Value::Int64(3)});
  RelationInstance::TupleRefs delta = rel.DeltaSince(mark);
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ((*delta[0])[0], Value::Int64(2));
  EXPECT_EQ((*delta[1])[0], Value::Int64(3));

  // Erasing a delta tuple tombstones its log entry without shifting the
  // watermark positions other readers hold.
  rel.Erase({Value::Int64(2)});
  delta = rel.DeltaSince(mark);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ((*delta[0])[0], Value::Int64(3));

  // Re-inserting appends a fresh log entry: visible as new delta.
  std::size_t mark2 = rel.Watermark();
  rel.Insert({Value::Int64(2)});
  ASSERT_EQ(rel.DeltaSince(mark2).size(), 1u);
  // Watermark 0 covers the whole extension.
  EXPECT_EQ(rel.DeltaSince(0).size(), rel.size());
}

TEST(RelationInstanceTest, CopyAndMoveKeepStorageCoherent) {
  RelationInstance rel(2);
  rel.Insert({Value::Int64(1), Value::Int64(10)});
  rel.Insert({Value::Int64(2), Value::Int64(20)});
  std::size_t mark = rel.Watermark();
  rel.Insert({Value::Int64(3), Value::Int64(30)});
  ASSERT_NE(rel.Probe({0}, {Value::Int64(1)}), nullptr);

  // Copies rebuild over their own set nodes: same contents, same delta
  // view, independent mutations.
  RelationInstance copy = rel;
  EXPECT_EQ(copy.size(), 3u);
  ASSERT_EQ(copy.DeltaSince(mark).size(), 1u);
  EXPECT_EQ((*copy.DeltaSince(mark)[0])[0], Value::Int64(3));
  const RelationInstance::TupleRefs* hits =
      copy.Probe({0}, {Value::Int64(2)});
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 1u);
  copy.Insert({Value::Int64(4), Value::Int64(40)});
  EXPECT_EQ(copy.size(), 4u);
  EXPECT_EQ(rel.size(), 3u);

  // Moves steal the set nodes, so probes stay valid afterwards.
  RelationInstance moved = std::move(rel);
  hits = moved.Probe({0}, {Value::Int64(3)});
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 1u);
  EXPECT_EQ(moved.DeltaSince(mark).size(), 1u);
}

TEST(RelationInstanceTest, ConcurrentProbesAreSafe) {
  RelationInstance rel(2);
  for (int i = 0; i < 64; ++i) {
    rel.Insert({Value::Int64(i % 8), Value::Int64(i)});
  }
  // Lazy index construction races on first probe; every reader must see a
  // fully built index (this is the scenario --tsan runs watch).
  std::vector<std::thread> readers;
  std::vector<std::size_t> totals(4, 0);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&rel, &totals, t] {
      std::size_t sum = 0;
      for (int key = 0; key < 8; ++key) {
        const RelationInstance::TupleRefs* hits =
            rel.Probe({0}, {Value::Int64(key)});
        if (hits != nullptr) sum += hits->size();
      }
      totals[static_cast<std::size_t>(t)] = sum;
    });
  }
  for (std::thread& t : readers) t.join();
  for (std::size_t sum : totals) EXPECT_EQ(sum, 64u);
}

TEST(InstanceTest, InsertRejectsArityMismatchBeforeTouchingStorage) {
  // Regression: a mis-shaped tuple used to slip through into the extension;
  // now Insert rejects it before any index or log entry exists.
  Instance db;
  db.DeclareRelation("R", 2);
  ASSERT_TRUE(db.Insert("R", {Value::Int64(1), Value::Int64(2)}).ok());
  const RelationInstance* rel = db.Find("R");
  std::size_t mark = rel->Watermark();
  std::uint64_t gen = rel->generation();

  EXPECT_EQ(db.Insert("R", {Value::Int64(7)}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Insert("R", {Value::Int64(7), Value::Int64(8),
                            Value::Int64(9)})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->Watermark(), mark);
  EXPECT_EQ(rel->generation(), gen);
  EXPECT_TRUE(rel->DeltaSince(mark).empty());
}

#ifndef NDEBUG
TEST(InstanceDeathTest, InsertUncheckedAssertsOnArityMismatch) {
  Instance db;
  db.DeclareRelation("R", 2);
  EXPECT_DEATH(db.InsertUnchecked("R", {Value::Int64(1)}), "arity");
}
#endif

TEST(InstanceTest, IndexStatsTotalSumsRelations) {
  Instance db;
  db.DeclareRelation("R", 1);
  db.DeclareRelation("S", 1);
  ASSERT_TRUE(db.Insert("R", {Value::Int64(1)}).ok());
  ASSERT_TRUE(db.Insert("S", {Value::Int64(2)}).ok());
  db.Find("R")->Probe({0}, {Value::Int64(1)});
  db.Find("S")->Probe({0}, {Value::Int64(2)});
  db.Find("S")->Probe({0}, {Value::Int64(3)});
  IndexStats total = db.IndexStatsTotal();
  EXPECT_EQ(total.probes, 3u);
  EXPECT_EQ(total.probe_hits, 2u);
  EXPECT_EQ(total.builds, 2u);

  auto marks = db.InsertWatermarks();
  EXPECT_EQ(marks.at("R"), db.Find("R")->Watermark());
  EXPECT_EQ(marks.at("S"), db.Find("S")->Watermark());
}

TEST(InstanceTest, CheckedInsertValidatesShape) {
  Instance db;
  db.DeclareRelation("R", 2);
  EXPECT_TRUE(db.Insert("R", {Value::Int64(1), Value::Int64(2)}).ok());
  EXPECT_EQ(db.Insert("Missing", {Value::Int64(1)}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.Insert("R", {Value::Int64(1)}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.TotalTuples(), 1u);
}

TEST(InstanceTest, EraseReportsMissingTuple) {
  Instance db;
  db.DeclareRelation("R", 1);
  ASSERT_TRUE(db.Insert("R", {Value::Int64(1)}).ok());
  EXPECT_TRUE(db.Erase("R", {Value::Int64(1)}).ok());
  EXPECT_FALSE(db.Erase("R", {Value::Int64(1)}).ok());
  EXPECT_FALSE(db.Erase("Nope", {Value::Int64(1)}).ok());
}

TEST(InstanceTest, LabeledNullDetection) {
  Instance db;
  db.DeclareRelation("R", 1);
  EXPECT_FALSE(db.HasLabeledNulls());
  EXPECT_EQ(db.MaxNullLabel(), -1);
  ASSERT_TRUE(db.Insert("R", {Value::LabeledNull(5)}).ok());
  EXPECT_TRUE(db.HasLabeledNulls());
  EXPECT_EQ(db.MaxNullLabel(), 5);
}

TEST(InstanceTest, EqualsIgnoresEmptyRelations) {
  Instance a;
  a.DeclareRelation("R", 1);
  a.DeclareRelation("Empty", 1);
  ASSERT_TRUE(a.Insert("R", {Value::Int64(1)}).ok());
  Instance b;
  b.DeclareRelation("R", 1);
  ASSERT_TRUE(b.Insert("R", {Value::Int64(1)}).ok());
  EXPECT_TRUE(a.Equals(b));
  ASSERT_TRUE(b.Insert("R", {Value::Int64(2)}).ok());
  EXPECT_FALSE(a.Equals(b));
}

TEST(InstanceTest, MinusAndUnion) {
  Instance a;
  a.DeclareRelation("R", 1);
  ASSERT_TRUE(a.Insert("R", {Value::Int64(1)}).ok());
  ASSERT_TRUE(a.Insert("R", {Value::Int64(2)}).ok());
  Instance b;
  b.DeclareRelation("R", 1);
  ASSERT_TRUE(b.Insert("R", {Value::Int64(2)}).ok());

  Instance diff = a.Minus(b);
  EXPECT_EQ(diff.Find("R")->size(), 1u);
  EXPECT_TRUE(diff.Find("R")->Contains({Value::Int64(1)}));

  b.UnionWith(a);
  EXPECT_EQ(b.Find("R")->size(), 2u);
}

TEST(InstanceTest, EmptyForDeclaresSchemaRelations) {
  model::Schema s = SchemaBuilder("S", Metamodel::kRelational)
                        .Relation("R", {{"a", DataType::Int64()},
                                        {"b", DataType::String()}})
                        .Build();
  Instance db = Instance::EmptyFor(s);
  ASSERT_TRUE(db.HasRelation("R"));
  EXPECT_EQ(db.Find("R")->arity(), 2u);
}

model::Schema PersonSchema() {
  return SchemaBuilder("ER", Metamodel::kEntityRelationship)
      .EntityType("Person", "",
                  {{"Id", DataType::Int64()}, {"Name", DataType::String()}})
      .EntityType("Employee", "Person", {{"Dept", DataType::String()}})
      .EntityType("Customer", "Person",
                  {{"CreditScore", DataType::Int64()},
                   {"BillingAddr", DataType::String()}})
      .EntitySet("Persons", "Person")
      .Build();
}

TEST(EntitySetLayoutTest, ColumnsUnionInHierarchyOrder) {
  model::Schema er = PersonSchema();
  auto layout =
      ComputeEntitySetLayout(er, *er.FindEntitySet("Persons"));
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->columns,
            (std::vector<std::string>{"Id", "Name", "Dept", "CreditScore",
                                      "BillingAddr"}));
  EXPECT_EQ(layout->arity(), 6u);  // +1 for $type
  EXPECT_EQ(layout->ColumnIndex("Dept"), 2u);
  EXPECT_EQ(layout->ColumnIndex("Nope"), EntitySetLayout::kNpos);
  EXPECT_EQ(layout->columns_of_type.at("Person"),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(layout->columns_of_type.at("Customer"),
            (std::vector<std::size_t>{0, 1, 3, 4}));
}

TEST(EntitySetLayoutTest, MakeEntityTuplePadsWithNulls) {
  model::Schema er = PersonSchema();
  auto layout = ComputeEntitySetLayout(er, *er.FindEntitySet("Persons"));
  ASSERT_TRUE(layout.ok());

  auto tuple = MakeEntityTuple(*layout, er, "Employee",
                               {Value::Int64(1), Value::String("Ada"),
                                Value::String("R&D")});
  ASSERT_TRUE(tuple.ok());
  ASSERT_EQ(tuple->size(), 6u);
  EXPECT_EQ((*tuple)[0], Value::String("Employee"));
  EXPECT_EQ((*tuple)[1], Value::Int64(1));
  EXPECT_EQ((*tuple)[2], Value::String("Ada"));
  EXPECT_EQ((*tuple)[3], Value::String("R&D"));
  EXPECT_TRUE((*tuple)[4].is_null());
  EXPECT_TRUE((*tuple)[5].is_null());
}

TEST(EntitySetLayoutTest, MakeEntityTupleValidatesTypeAndArity) {
  model::Schema er = PersonSchema();
  auto layout = ComputeEntitySetLayout(er, *er.FindEntitySet("Persons"));
  ASSERT_TRUE(layout.ok());
  EXPECT_FALSE(MakeEntityTuple(*layout, er, "Alien", {}).ok());
  EXPECT_FALSE(
      MakeEntityTuple(*layout, er, "Person", {Value::Int64(1)}).ok());
}

TEST(EntitySetLayoutTest, AbstractTypeCannotBeInstantiated) {
  model::Schema er =
      SchemaBuilder("ER", Metamodel::kEntityRelationship)
          .EntityType("Shape", "", {{"Id", DataType::Int64()}}, true)
          .EntityType("Circle", "Shape", {{"R", DataType::Double()}})
          .EntitySet("Shapes", "Shape")
          .Build();
  auto layout = ComputeEntitySetLayout(er, *er.FindEntitySet("Shapes"));
  ASSERT_TRUE(layout.ok());
  EXPECT_FALSE(MakeEntityTuple(*layout, er, "Shape", {Value::Int64(1)}).ok());
  EXPECT_TRUE(MakeEntityTuple(*layout, er, "Circle",
                              {Value::Int64(1), Value::Double(2.0)})
                  .ok());
}

}  // namespace
}  // namespace mm2::instance
