// Property-based suites: operator invariants swept across generated
// workloads with TEST_P. Each property is the instance-level law the paper
// states (or implies) for the operator, checked on families of schemas,
// mappings, and databases rather than single examples.
#include <gtest/gtest.h>

#include <tuple>

#include "chase/chase.h"
#include "compose/compose.h"
#include "diff/diff.h"
#include "inverse/inverse.h"
#include "merge/merge.h"
#include "modelgen/modelgen.h"
#include "rewrite/rewrite.h"
#include "text/sexpr.h"
#include "transgen/relational.h"
#include "transgen/transgen.h"
#include "workload/generators.h"

namespace mm2 {
namespace {

using instance::Instance;
using instance::Tuple;
using logic::Atom;
using logic::ConjunctiveQuery;
using logic::Mapping;
using logic::Term;

bool HomEquivalent(const Instance& a, const Instance& b) {
  return chase::ExistsHomomorphism(a, b) && chase::ExistsHomomorphism(b, a);
}

// ---------------------------------------------------------------------------
// Compose: semantics and associativity over evolution chains.
// ---------------------------------------------------------------------------

class ComposeChainProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ComposeChainProperty, ComposedEqualsStepwise) {
  auto [seed, length, attrs] = GetParam();
  workload::EvolutionChain chain =
      workload::MakeEvolutionChain(static_cast<std::size_t>(length),
                                   static_cast<std::size_t>(attrs));
  workload::Rng rng(static_cast<std::uint64_t>(seed));
  Instance db = workload::MakeChainInstance(chain, 8, &rng);

  Instance stepwise = db;
  for (const Mapping& step : chain.steps) {
    auto result = chase::RunChase(step, stepwise);
    ASSERT_TRUE(result.ok());
    stepwise = result->target;
  }
  Mapping composed = chain.steps[0];
  for (std::size_t i = 1; i < chain.steps.size(); ++i) {
    auto next = compose::Compose(composed, chain.steps[i]);
    ASSERT_TRUE(next.ok()) << next.status();
    composed = *next;
  }
  auto direct = chase::RunChase(composed, db);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(HomEquivalent(direct->target, stepwise));
}

TEST_P(ComposeChainProperty, ComposeIsAssociativeOnInstances) {
  auto [seed, length, attrs] = GetParam();
  if (length < 3) GTEST_SKIP() << "needs three steps";
  workload::EvolutionChain chain =
      workload::MakeEvolutionChain(3, static_cast<std::size_t>(attrs));
  workload::Rng rng(static_cast<std::uint64_t>(seed));
  Instance db = workload::MakeChainInstance(chain, 6, &rng);

  auto left_first = compose::Compose(chain.steps[0], chain.steps[1]);
  ASSERT_TRUE(left_first.ok());
  auto left = compose::Compose(*left_first, chain.steps[2]);
  ASSERT_TRUE(left.ok());
  auto right_first = compose::Compose(chain.steps[1], chain.steps[2]);
  ASSERT_TRUE(right_first.ok());
  auto right = compose::Compose(chain.steps[0], *right_first);
  ASSERT_TRUE(right.ok());

  auto via_left = chase::RunChase(*left, db);
  auto via_right = chase::RunChase(*right, db);
  ASSERT_TRUE(via_left.ok() && via_right.ok());
  EXPECT_TRUE(HomEquivalent(via_left->target, via_right->target));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ComposeChainProperty,
    ::testing::Combine(::testing::Values(1, 2, 3),       // seed
                       ::testing::Values(1, 2, 3, 5),    // chain length
                       ::testing::Values(2, 4, 6)));     // attributes

// ---------------------------------------------------------------------------
// Invert is an involution on every tgd mapping we generate.
// ---------------------------------------------------------------------------

class InvertProperty : public ::testing::TestWithParam<int> {};

TEST_P(InvertProperty, DoubleInvertIsIdentity) {
  workload::EvolutionChain chain =
      workload::MakeEvolutionChain(2, 4 + GetParam() % 3);
  for (const Mapping& m : chain.steps) {
    auto inv = inverse::Invert(m);
    ASSERT_TRUE(inv.ok());
    auto back = inverse::Invert(*inv);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back->tgds().size(), m.tgds().size());
    for (std::size_t i = 0; i < m.tgds().size(); ++i) {
      EXPECT_EQ(back->tgds()[i].ToString(), m.tgds()[i].ToString());
    }
    EXPECT_EQ(back->source().name(), m.source().name());
    EXPECT_EQ(back->target().name(), m.target().name());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, InvertProperty, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// TransGen roundtripping across hierarchy shapes and strategies.
// ---------------------------------------------------------------------------

class RoundtripProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RoundtripProperty, UpdateThenQueryIsIdentity) {
  auto [depth, fanout, strategy_index] = GetParam();
  modelgen::InheritanceStrategy strategy =
      static_cast<modelgen::InheritanceStrategy>(strategy_index);
  model::Schema er =
      workload::MakeHierarchy(static_cast<std::size_t>(depth),
                              static_cast<std::size_t>(fanout), 2);
  workload::Rng rng(static_cast<std::uint64_t>(depth * 10 + fanout));
  Instance entities = workload::MakeHierarchyInstance(er, 4, &rng);

  auto generated = modelgen::ErToRelational(er, strategy);
  ASSERT_TRUE(generated.ok()) << generated.status();
  auto views = transgen::CompileFragments(er, "Objects",
                                          generated->relational,
                                          generated->fragments);
  ASSERT_TRUE(views.ok()) << views.status();
  auto ok =
      transgen::VerifyRoundtrip(*views, er, generated->relational, entities);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(*ok) << modelgen::InheritanceStrategyToString(strategy)
                   << " depth=" << depth << " fanout=" << fanout;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundtripProperty,
    ::testing::Combine(::testing::Values(1, 2, 3),   // depth
                       ::testing::Values(1, 2, 3),   // fanout
                       ::testing::Values(0, 1, 2))); // strategy

// ---------------------------------------------------------------------------
// Chase output is universal: it maps homomorphically into the instantiated
// solution obtained by grounding every labeled null.
// ---------------------------------------------------------------------------

class UniversalityProperty : public ::testing::TestWithParam<int> {};

TEST_P(UniversalityProperty, ChaseResultEmbedsIntoGroundedSolution) {
  workload::EvolutionChain chain = workload::MakeEvolutionChain(1, 5);
  workload::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Instance db = workload::MakeChainInstance(chain, 6, &rng);
  auto result = chase::RunChase(chain.steps[0], db);
  ASSERT_TRUE(result.ok());

  // Ground: replace each labeled null by a fresh constant.
  Instance grounded;
  for (const auto& [name, rel] : result->target.relations()) {
    grounded.DeclareRelation(name, rel.arity());
    for (const Tuple& t : rel.tuples()) {
      Tuple g = t;
      for (instance::Value& v : g) {
        if (v.is_labeled_null()) {
          v = instance::Value::String("ground" + std::to_string(v.label()));
        }
      }
      grounded.InsertUnchecked(name, std::move(g));
    }
  }
  EXPECT_TRUE(chase::ExistsHomomorphism(result->target, grounded));
  // And the grounding is genuinely a different instance unless no nulls
  // were created.
  if (result->stats.nulls_created > 0) {
    EXPECT_FALSE(grounded.Equals(result->target));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, UniversalityProperty,
                         ::testing::Range(1, 8));

// ---------------------------------------------------------------------------
// Core is idempotent and never grows.
// ---------------------------------------------------------------------------

class CoreProperty : public ::testing::TestWithParam<int> {};

TEST_P(CoreProperty, IdempotentAndShrinking) {
  workload::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Instance db;
  db.DeclareRelation("R", 2);
  // Random mixture of constants and nulls.
  for (int i = 0; i < 12; ++i) {
    instance::Value a = rng.Chance(0.5)
                            ? instance::Value::Int64(
                                  static_cast<std::int64_t>(rng.Uniform(4)))
                            : instance::Value::LabeledNull(
                                  static_cast<std::int64_t>(rng.Uniform(6)));
    instance::Value b = rng.Chance(0.5)
                            ? instance::Value::Int64(
                                  static_cast<std::int64_t>(rng.Uniform(4)))
                            : instance::Value::LabeledNull(
                                  static_cast<std::int64_t>(rng.Uniform(6)));
    db.InsertUnchecked("R", {a, b});
  }
  Instance once = chase::ComputeCore(db);
  Instance twice = chase::ComputeCore(once);
  EXPECT_LE(once.TotalTuples(), db.TotalTuples());
  EXPECT_TRUE(twice.Equals(once));
  // The core is hom-equivalent to the original.
  EXPECT_TRUE(HomEquivalent(once, db));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CoreProperty, ::testing::Range(1, 10));

// ---------------------------------------------------------------------------
// Diff/Extract complement across random schemas.
// ---------------------------------------------------------------------------

class DiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(DiffProperty, ExtractJoinDiffIsLossless) {
  workload::Rng rng(static_cast<std::uint64_t>(GetParam()));
  model::Schema source =
      workload::RandomRelationalSchema("Src", 3 + GetParam() % 4, 6, &rng);

  // Mapping that carries the key plus every even attribute.
  model::Schema target("Half", model::Metamodel::kRelational);
  std::vector<logic::Tgd> tgds;
  for (const model::Relation& r : source.relations()) {
    std::vector<model::Attribute> kept;
    std::vector<std::size_t> positions;
    for (std::size_t i = 0; i < r.arity(); ++i) {
      if (i == 0 || i % 2 == 0) {
        kept.push_back(r.attribute(i));
        positions.push_back(i);
      }
    }
    target.AddRelation(model::Relation(r.name() + "_h", kept, {0}));
    logic::Tgd tgd;
    Atom body;
    body.relation = r.name();
    for (std::size_t i = 0; i < r.arity(); ++i) {
      body.terms.push_back(Term::Var("x" + std::to_string(i)));
    }
    Atom head;
    head.relation = r.name() + "_h";
    for (std::size_t p : positions) {
      head.terms.push_back(Term::Var("x" + std::to_string(p)));
    }
    tgd.body = {std::move(body)};
    tgd.head = {std::move(head)};
    tgds.push_back(std::move(tgd));
  }
  Mapping mapping = Mapping::FromTgds("half", source, target, tgds);

  auto extract = diff::Extract(mapping);
  auto complement = diff::Diff(mapping);
  ASSERT_TRUE(extract.ok() && complement.ok());
  Instance db = workload::RandomInstance(source, 12, &rng);
  auto e = diff::Apply(*extract, db);
  auto d = diff::Apply(*complement, db);
  ASSERT_TRUE(e.ok() && d.ok());
  auto rebuilt = diff::Reconstruct(source, *extract, *e, *complement, *d);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE(rebuilt->Equals(db));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DiffProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Merge size formula and projection-mapping sanity across densities.
// ---------------------------------------------------------------------------

class MergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(MergeProperty, SizeFormulaHolds) {
  workload::Rng rng(static_cast<std::uint64_t>(GetParam() + 100));
  model::Schema left = workload::RandomRelationalSchema("L", 5, 5, &rng);
  workload::PerturbedSchema right = workload::PerturbNames(left, &rng);
  std::size_t take =
      right.reference.size() * static_cast<std::size_t>(GetParam() * 12) /
      100;
  take = std::min(take, right.reference.size());
  std::vector<match::Correspondence> corrs(
      right.reference.begin(),
      right.reference.begin() + static_cast<std::ptrdiff_t>(take));

  auto result = merge::Merge(left, right.schema, corrs);
  ASSERT_TRUE(result.ok()) << result.status();
  std::size_t total_left = 0;
  std::size_t total_right = 0;
  std::size_t merged = 0;
  for (const model::Relation& r : left.relations()) total_left += r.arity();
  for (const model::Relation& r : right.schema.relations()) {
    total_right += r.arity();
  }
  for (const model::Relation& r : result->merged.relations()) {
    merged += r.arity();
  }
  EXPECT_EQ(merged,
            total_left + total_right - result->stats.attributes_merged);
  EXPECT_TRUE(result->to_left.Validate().ok());
  EXPECT_TRUE(result->to_right.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Sweep, MergeProperty, ::testing::Range(0, 9));

// ---------------------------------------------------------------------------
// Compiled loaders and rewriting agree with the chase.
// ---------------------------------------------------------------------------

class ExecutionAgreementProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExecutionAgreementProperty, CompiledLoadEqualsChase) {
  auto [seed, attrs] = GetParam();
  workload::EvolutionChain chain =
      workload::MakeEvolutionChain(1, static_cast<std::size_t>(attrs));
  workload::Rng rng(static_cast<std::uint64_t>(seed));
  Instance db = workload::MakeChainInstance(chain, 10, &rng);
  const Mapping& mapping = chain.steps[0];
  auto compiled = transgen::CompileRelationalMapping(mapping);
  ASSERT_TRUE(compiled.ok());
  auto fast = transgen::ExecuteCompiledMapping(*compiled, mapping, db);
  auto slow = chase::RunChase(mapping, db);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_TRUE(fast->Equals(slow->target));
}

TEST_P(ExecutionAgreementProperty, RewriteEqualsMaterializeThenQuery) {
  auto [seed, attrs] = GetParam();
  workload::EvolutionChain chain =
      workload::MakeEvolutionChain(1, static_cast<std::size_t>(attrs));
  workload::Rng rng(static_cast<std::uint64_t>(seed));
  Instance db = workload::MakeChainInstance(chain, 10, &rng);
  const Mapping& mapping = chain.steps[0];

  // Query: project the key of the first target relation.
  const model::Relation& target_rel = mapping.target().relations()[0];
  ConjunctiveQuery q;
  q.head = Atom{"Q", {Term::Var("k")}};
  Atom body;
  body.relation = target_rel.name();
  body.terms.push_back(Term::Var("k"));
  for (std::size_t i = 1; i < target_rel.arity(); ++i) {
    body.terms.push_back(Term::Var("v" + std::to_string(i)));
  }
  q.body = {body};

  auto fast = rewrite::AnswerOnSource(mapping, q, db);
  ASSERT_TRUE(fast.ok()) << fast.status();
  auto chased = chase::RunChase(mapping, db);
  ASSERT_TRUE(chased.ok());
  auto slow = chase::CertainAnswers(q, chased->target);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(std::set<Tuple>(fast->begin(), fast->end()),
            std::set<Tuple>(slow->begin(), slow->end()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExecutionAgreementProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(2, 4, 6)));

// ---------------------------------------------------------------------------
// Text round-trips across random schemas and instances.
// ---------------------------------------------------------------------------

class TextProperty : public ::testing::TestWithParam<int> {};

TEST_P(TextProperty, SchemaAndInstanceSurviveRoundTrip) {
  workload::Rng rng(static_cast<std::uint64_t>(GetParam() + 7));
  model::Schema schema =
      workload::RandomRelationalSchema("T", 4, 5, &rng);
  auto parsed_schema = text::ParseSchema(text::SchemaToText(schema));
  ASSERT_TRUE(parsed_schema.ok()) << parsed_schema.status();
  EXPECT_EQ(parsed_schema->relations().size(), schema.relations().size());
  EXPECT_EQ(text::SchemaToText(*parsed_schema), text::SchemaToText(schema));

  Instance db = workload::RandomInstance(schema, 6, &rng);
  auto parsed_db = text::ParseInstance(text::InstanceToText(db));
  ASSERT_TRUE(parsed_db.ok()) << parsed_db.status();
  EXPECT_TRUE(parsed_db->Equals(db));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TextProperty, ::testing::Range(1, 8));

}  // namespace
}  // namespace mm2
