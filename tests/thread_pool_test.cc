// Unit tests for the work-stealing pool behind the parallel chase
// executor: inline single-thread fallback, value/exception propagation
// through Submit futures, ParallelFor chunking invariants (contiguous,
// ordered, complete), concurrent correctness under many tasks, and
// MM2_THREADS resolution.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace mm2::common {
namespace {

TEST(ResolveThreadCount, ExplicitRequestWins) {
  ::setenv("MM2_THREADS", "7", 1);
  EXPECT_EQ(ResolveThreadCount(3), 3u);
  ::unsetenv("MM2_THREADS");
}

TEST(ResolveThreadCount, EnvFallbackThenSerial) {
  ::unsetenv("MM2_THREADS");
  EXPECT_EQ(ResolveThreadCount(0), 1u);
  ::setenv("MM2_THREADS", "4", 1);
  EXPECT_EQ(ResolveThreadCount(0), 4u);
  ::setenv("MM2_THREADS", "garbage", 1);
  EXPECT_EQ(ResolveThreadCount(0), 1u);
  ::setenv("MM2_THREADS", "-2", 1);
  EXPECT_EQ(ResolveThreadCount(0), 1u);
  ::unsetenv("MM2_THREADS");
}

TEST(ResolveThreadCount, ClampedTo256) {
  EXPECT_EQ(ResolveThreadCount(100000), 256u);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  auto future = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
  ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.stolen, 0u);
}

TEST(ThreadPool, SubmitPropagatesValuesAndExceptions) {
  ThreadPool pool(4);
  auto ok = pool.Submit([] { return std::string("done"); });
  auto boom = pool.Submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), "done");
  EXPECT_THROW(boom.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllExecute) {
  constexpr int kTasks = 500;
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&sum, i] {
      sum.fetch_add(i, std::memory_order_relaxed);
    }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
  ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.executed, static_cast<std::uint64_t>(kTasks));
  EXPECT_GE(stats.peak_queue, 1u);
}

// ParallelFor must cover [0, total) with at most size() contiguous,
// disjoint chunks whose indices ascend with the chunk index — the
// property the chase relies on to concatenate partial results in serial
// order.
TEST(ThreadPool, ParallelForChunksAreContiguousOrderedComplete) {
  ThreadPool pool(4);
  for (std::size_t total : {0u, 1u, 3u, 4u, 7u, 100u}) {
    std::mutex mu;
    std::vector<std::array<std::size_t, 3>> chunks;
    std::vector<char> seen(total, 0);
    pool.ParallelFor(total, [&](std::size_t begin, std::size_t end,
                                std::size_t chunk) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.push_back({begin, end, chunk});
      for (std::size_t i = begin; i < end; ++i) seen[i]++;
    });
    for (std::size_t i = 0; i < total; ++i) {
      EXPECT_EQ(seen[i], 1) << "total " << total << " index " << i;
    }
    EXPECT_LE(chunks.size(), pool.size());
    std::sort(chunks.begin(), chunks.end(),
              [](const auto& a, const auto& b) { return a[2] < b[2]; });
    std::size_t expect_begin = 0;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      EXPECT_EQ(chunks[c][2], c);
      EXPECT_EQ(chunks[c][0], expect_begin) << "total " << total;
      EXPECT_LT(chunks[c][0], chunks[c][1]);
      expect_begin = chunks[c][1];
    }
    if (total > 0) {
      EXPECT_EQ(expect_begin, total);
    }
  }
}

TEST(ThreadPool, ParallelForSerialFallback) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.ParallelFor(10, [&](std::size_t begin, std::size_t end,
                           std::size_t chunk) {
    EXPECT_EQ(chunk, 0u);
    for (std::size_t i = begin; i < end; ++i) order.push_back(i);
  });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, StealingObservableUnderImbalance) {
  // Round-robin placement + one slow task per queue makes thieves find
  // work; we only assert the counters are consistent, not a specific
  // steal count (scheduling is nondeterministic).
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(ran.load(), 200);
  ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.executed, 200u);
  EXPECT_LE(stats.stolen, stats.executed);
}

}  // namespace
}  // namespace mm2::common
