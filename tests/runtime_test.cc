#include <gtest/gtest.h>

#include "model/schema.h"
#include "modelgen/modelgen.h"
#include "runtime/runtime.h"
#include "transgen/transgen.h"

namespace mm2::runtime {
namespace {

using instance::Instance;
using instance::Tuple;
using instance::Value;
using logic::Atom;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Term V(const char* name) { return Term::Var(name); }

TEST(DeltaTest, DiffAndApplyRoundtrip) {
  Instance before;
  before.DeclareRelation("R", 1);
  ASSERT_TRUE(before.Insert("R", {Value::Int64(1)}).ok());
  ASSERT_TRUE(before.Insert("R", {Value::Int64(2)}).ok());
  Instance after;
  after.DeclareRelation("R", 1);
  ASSERT_TRUE(after.Insert("R", {Value::Int64(2)}).ok());
  ASSERT_TRUE(after.Insert("R", {Value::Int64(3)}).ok());

  Delta delta = DiffInstances(before, after);
  EXPECT_EQ(delta.Size(), 2u);
  EXPECT_TRUE(delta.inserts.Find("R")->Contains({Value::Int64(3)}));
  EXPECT_TRUE(delta.deletes.Find("R")->Contains({Value::Int64(1)}));

  Instance patched = before;
  ASSERT_TRUE(ApplyDelta(delta, &patched).ok());
  EXPECT_TRUE(patched.Equals(after));
}

TEST(DeltaTest, EmptyDeltaOnIdenticalInstances) {
  Instance a;
  a.DeclareRelation("R", 1);
  ASSERT_TRUE(a.Insert("R", {Value::Int64(1)}).ok());
  Delta delta = DiffInstances(a, a);
  EXPECT_TRUE(delta.Empty());
}

TEST(DeltaTest, ApplyFailsOnMissingDelete) {
  Instance db;
  db.DeclareRelation("R", 1);
  Delta delta;
  delta.deletes.DeclareRelation("R", 1);
  delta.deletes.InsertUnchecked("R", {Value::Int64(9)});
  EXPECT_FALSE(ApplyDelta(delta, &db).ok());
}

class MaterializedViewTest : public ::testing::Test {
 protected:
  MaterializedViewTest() {
    catalog_.Add("Orders", {"Id", "Region", "Total"});
    base_.DeclareRelation("Orders", 3);
    Insert(1, "EU", 10);
    Insert(2, "US", 20);
    Insert(3, "EU", 30);
  }

  void Insert(int id, const char* region, int total) {
    ASSERT_TRUE(base_.Insert("Orders", {Value::Int64(id),
                                        Value::String(region),
                                        Value::Int64(total)})
                    .ok());
  }

  algebra::Catalog catalog_;
  Instance base_;
};

TEST_F(MaterializedViewTest, SelectViewMaintainsIncrementally) {
  algebra::ExprRef view = algebra::Expr::Select(
      algebra::Expr::Scan("Orders"),
      algebra::ColEqLit("Region", Value::String("EU")));
  MaterializedView mv("eu_orders", view, catalog_);
  ASSERT_TRUE(mv.IsIncrementallyMaintainable());
  ASSERT_TRUE(mv.Initialize(base_).ok());
  EXPECT_EQ(mv.current().rows.size(), 2u);

  // Insert an EU order and a US order; delete one EU order.
  Instance new_base = base_;
  ASSERT_TRUE(new_base.Insert("Orders", {Value::Int64(4), Value::String("EU"),
                                         Value::Int64(40)})
                  .ok());
  ASSERT_TRUE(new_base.Insert("Orders", {Value::Int64(5), Value::String("US"),
                                         Value::Int64(50)})
                  .ok());
  ASSERT_TRUE(new_base
                  .Erase("Orders", {Value::Int64(1), Value::String("EU"),
                                    Value::Int64(10)})
                  .ok());
  Delta base_delta = DiffInstances(base_, new_base);
  auto view_delta = mv.Update(new_base, base_delta);
  ASSERT_TRUE(view_delta.ok()) << view_delta.status();
  // View gains order 4, loses order 1; the US order is invisible.
  EXPECT_EQ(view_delta->inserts.TotalTuples(), 1u);
  EXPECT_EQ(view_delta->deletes.TotalTuples(), 1u);
  EXPECT_EQ(mv.current().rows.size(), 2u);
}

TEST_F(MaterializedViewTest, JoinViewFallsBackToRecompute) {
  catalog_.Add("Regions", {"Name", "Manager"});
  base_.DeclareRelation("Regions", 2);
  ASSERT_TRUE(base_.Insert("Regions", {Value::String("EU"),
                                       Value::String("Ada")})
                  .ok());
  algebra::ExprRef view = algebra::Expr::Join(
      algebra::Expr::Scan("Orders"), algebra::Expr::Scan("Regions"),
      algebra::Expr::JoinKind::kInner, {{"Region", "Name"}});
  MaterializedView mv("orders_with_mgr", view, catalog_);
  EXPECT_FALSE(mv.IsIncrementallyMaintainable());
  ASSERT_TRUE(mv.Initialize(base_).ok());
  EXPECT_EQ(mv.current().rows.size(), 2u);  // two EU orders join

  Instance new_base = base_;
  ASSERT_TRUE(new_base.Insert("Regions", {Value::String("US"),
                                          Value::String("Bob")})
                  .ok());
  Delta base_delta = DiffInstances(base_, new_base);
  auto view_delta = mv.Update(new_base, base_delta);
  ASSERT_TRUE(view_delta.ok());
  EXPECT_EQ(view_delta->inserts.TotalTuples(), 1u);  // the US order appears
  EXPECT_EQ(mv.current().rows.size(), 3u);
}

model::Schema PersonEr() {
  return SchemaBuilder("ER", Metamodel::kEntityRelationship)
      .EntityType("Person", "",
                  {{"Id", DataType::Int64()}, {"Name", DataType::String()}})
      .EntityType("Employee", "Person", {{"Dept", DataType::String()}})
      .EntityType("Customer", "Person",
                  {{"CreditScore", DataType::Int64()},
                   {"BillingAddr", DataType::String()}})
      .EntitySet("Persons", "Person")
      .Build();
}

class UpdatePropagatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    er_ = PersonEr();
    auto generated = modelgen::ErToRelational(
        er_, modelgen::InheritanceStrategy::kTablePerType);
    ASSERT_TRUE(generated.ok());
    relational_ = generated->relational;
    fragments_ = generated->fragments;
    auto views = transgen::CompileFragments(er_, "Persons", relational_,
                                            fragments_);
    ASSERT_TRUE(views.ok()) << views.status();
    propagator_ = std::make_unique<UpdatePropagator>(*views, fragments_,
                                                     er_, relational_);

    Instance entities = Instance::EmptyFor(er_);
    auto layout =
        instance::ComputeEntitySetLayout(er_, *er_.FindEntitySet("Persons"));
    ASSERT_TRUE(layout.ok());
    layout_ = *layout;
    auto ada = instance::MakeEntityTuple(
        layout_, er_, "Person", {Value::Int64(1), Value::String("Ada")});
    ASSERT_TRUE(ada.ok());
    ASSERT_TRUE(entities.Insert("Persons", *ada).ok());
    ASSERT_TRUE(propagator_->Initialize(entities).ok());
  }

  Tuple EmployeeTuple(int id, const char* name, const char* dept) {
    auto t = instance::MakeEntityTuple(
        layout_, er_, "Employee",
        {Value::Int64(id), Value::String(name), Value::String(dept)});
    EXPECT_TRUE(t.ok());
    return *t;
  }

  model::Schema er_;
  model::Schema relational_;
  std::vector<modelgen::MappingFragment> fragments_;
  instance::EntitySetLayout layout_;
  std::unique_ptr<UpdatePropagator> propagator_;
};

TEST_F(UpdatePropagatorTest, InsertEmployeeTouchesBothTables) {
  EntityOp op;
  op.kind = EntityOp::Kind::kInsert;
  op.entity = EmployeeTuple(2, "Bob", "R&D");
  auto deltas = propagator_->Apply(op);
  ASSERT_TRUE(deltas.ok()) << deltas.status();
  // TPT: the new employee writes Person (base row) and Employee (dept row).
  ASSERT_EQ(deltas->size(), 2u);
  EXPECT_TRUE(deltas->count("Person") > 0);
  EXPECT_TRUE(deltas->count("Employee") > 0);
  EXPECT_EQ(deltas->at("Person").inserts.TotalTuples(), 1u);
  EXPECT_EQ(deltas->at("Employee").inserts.TotalTuples(), 1u);
  // Table state reflects it.
  EXPECT_EQ(propagator_->tables().Find("Person")->size(), 2u);
  EXPECT_EQ(propagator_->tables().Find("Employee")->size(), 1u);
}

TEST_F(UpdatePropagatorTest, DeleteUndoesInsert) {
  EntityOp insert;
  insert.kind = EntityOp::Kind::kInsert;
  insert.entity = EmployeeTuple(2, "Bob", "R&D");
  ASSERT_TRUE(propagator_->Apply(insert).ok());
  EntityOp remove;
  remove.kind = EntityOp::Kind::kDelete;
  remove.entity = EmployeeTuple(2, "Bob", "R&D");
  auto deltas = propagator_->Apply(remove);
  ASSERT_TRUE(deltas.ok());
  EXPECT_EQ(deltas->at("Person").deletes.TotalTuples(), 1u);
  EXPECT_EQ(propagator_->tables().Find("Person")->size(), 1u);
  EXPECT_EQ(propagator_->tables().Find("Employee")->size(), 0u);
}

TEST_F(UpdatePropagatorTest, ListenersAreNotified) {
  std::vector<std::string> notified;
  propagator_->Subscribe(
      [&](const std::string& table, const Delta& delta) {
        notified.push_back(table + ":" + std::to_string(delta.Size()));
      });
  EntityOp op;
  op.kind = EntityOp::Kind::kInsert;
  op.entity = EmployeeTuple(2, "Bob", "R&D");
  ASSERT_TRUE(propagator_->Apply(op).ok());
  ASSERT_EQ(notified.size(), 2u);
}

TEST_F(UpdatePropagatorTest, DeleteOfUnknownEntityFails) {
  EntityOp remove;
  remove.kind = EntityOp::Kind::kDelete;
  remove.entity = EmployeeTuple(99, "Nobody", "X");
  EXPECT_FALSE(propagator_->Apply(remove).ok());
}

TEST(ErrorTranslatorTest, MapsTableErrorsToEntityContext) {
  model::Schema er = PersonEr();
  auto generated = modelgen::ErToRelational(
      er, modelgen::InheritanceStrategy::kTablePerType);
  ASSERT_TRUE(generated.ok());
  ErrorTranslator translator(generated->fragments);
  EXPECT_EQ(translator.EntityAttributeFor("Employee", "Dept"), "Dept");
  EXPECT_EQ(translator.EntityAttributeFor("Employee", "Nope"), "");
  std::string message =
      translator.Translate("Employee", "Dept", "value too long");
  EXPECT_NE(message.find("Employee.Dept"), std::string::npos);
  EXPECT_NE(message.find("value too long"), std::string::npos);
  std::string unmapped = translator.Translate("Employee", "Nope", "boom");
  EXPECT_NE(unmapped.find("no entity-level mapping"), std::string::npos);
}

TEST(ProvenanceTest, ExplainAndLineage) {
  model::Schema src = SchemaBuilder("S", Metamodel::kRelational)
                          .Relation("Emp", {{"eid", DataType::Int64()},
                                            {"dept", DataType::String()}})
                          .Build();
  model::Schema tgt = SchemaBuilder("T", Metamodel::kRelational)
                          .Relation("Worker", {{"eid", DataType::Int64()},
                                               {"dept", DataType::String()}})
                          .Build();
  Tgd tgd;
  tgd.body = {Atom{"Emp", {V("e"), V("d")}}};
  tgd.head = {Atom{"Worker", {V("e"), V("d")}}};
  Mapping m = Mapping::FromTgds("m", src, tgt, {tgd});

  Instance db;
  db.DeclareRelation("Emp", 2);
  ASSERT_TRUE(db.Insert("Emp", {Value::Int64(1), Value::String("x")}).ok());

  ExchangeOptions options;
  options.track_provenance = true;
  auto result = Exchange(m, db, options);
  ASSERT_TRUE(result.ok());

  chase::ChaseResult as_chase;
  as_chase.provenance = result->provenance;
  chase::Fact fact{"Worker", {Value::Int64(1), Value::String("x")}};
  std::string explanation = ExplainFact(as_chase, fact);
  EXPECT_NE(explanation.find("Emp(1, \"x\")"), std::string::npos);

  std::vector<chase::Fact> lineage = Lineage(as_chase, fact);
  ASSERT_EQ(lineage.size(), 1u);
  EXPECT_EQ(lineage[0].relation, "Emp");

  chase::Fact unknown{"Worker", {Value::Int64(9), Value::String("z")}};
  EXPECT_NE(ExplainFact(as_chase, unknown).find("no recorded derivation"),
            std::string::npos);
  EXPECT_TRUE(Lineage(as_chase, unknown).empty());
}

TEST(ExchangeTest, CoreMinimizationShrinksRedundantSolution) {
  model::Schema src = SchemaBuilder("S", Metamodel::kRelational)
                          .Relation("Emp", {{"eid", DataType::Int64()}})
                          .Build();
  model::Schema tgt = SchemaBuilder("T", Metamodel::kRelational)
                          .Relation("Worker", {{"eid", DataType::Int64()},
                                               {"mgr", DataType::Int64()}})
                          .Build();
  // Two rules deriving overlapping facts with separate existentials.
  Tgd t1;
  t1.body = {Atom{"Emp", {V("e")}}};
  t1.head = {Atom{"Worker", {V("e"), V("m")}}};
  Tgd t2;
  t2.body = {Atom{"Emp", {V("e")}}};
  t2.head = {Atom{"Worker", {V("e"), V("m2")}}};
  Mapping m = Mapping::FromTgds("m", src, tgt, {t1, t2});

  Instance db;
  db.DeclareRelation("Emp", 1);
  ASSERT_TRUE(db.Insert("Emp", {Value::Int64(1)}).ok());

  ExchangeOptions options;
  options.compute_core = true;
  auto result = Exchange(m, db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->target.Find("Worker")->size(), 1u);
  EXPECT_LE(result->target.TotalTuples(), result->pre_core_tuples);
}

}  // namespace
}  // namespace mm2::runtime
