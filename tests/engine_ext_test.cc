// Tests for the extended engine script commands: batchload, oogen,
// nestedgen — the newer operators reachable from the Rondo-style DSL.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "logic/formula.h"
#include "model/schema.h"

namespace mm2::engine {
namespace {

using instance::Instance;
using instance::Value;
using logic::Atom;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Term V(const char* name) { return Term::Var(name); }

class EngineExtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model::Schema s =
        SchemaBuilder("S", Metamodel::kRelational)
            .Relation("Orders", {{"OrderId", DataType::Int64()},
                                 {"Item", DataType::String()}},
                      {"OrderId"})
            .Relation("Lines", {{"OrderId", DataType::Int64()},
                                {"Qty", DataType::Int64()}},
                      {"OrderId"})
            .ForeignKey("Lines", {"OrderId"}, "Orders", {"OrderId"})
            .Build();
    model::Schema t =
        SchemaBuilder("T", Metamodel::kRelational)
            .Relation("Flat", {{"OrderId", DataType::Int64()},
                               {"Item", DataType::String()},
                               {"Qty", DataType::Int64()}},
                      {"OrderId"})
            .Build();
    Tgd join;
    join.body = {Atom{"Orders", {V("o"), V("i")}},
                 Atom{"Lines", {V("o"), V("q")}}};
    join.head = {Atom{"Flat", {V("o"), V("i"), V("q")}}};
    ASSERT_TRUE(engine_.repo().PutSchema(s).ok());
    ASSERT_TRUE(engine_.repo().PutSchema(t).ok());
    ASSERT_TRUE(
        engine_.repo().PutMapping(Mapping::FromTgds("flatten", s, t, {join}))
            .ok());
    Instance db = Instance::EmptyFor(s);
    ASSERT_TRUE(db.Insert("Orders", {Value::Int64(1),
                                     Value::String("widget")})
                    .ok());
    ASSERT_TRUE(db.Insert("Lines", {Value::Int64(1), Value::Int64(3)}).ok());
    ASSERT_TRUE(engine_.repo().PutInstance("D", std::move(db)).ok());
  }

  Engine engine_;
};

TEST_F(EngineExtTest, BatchLoadMatchesExchange) {
  auto log = engine_.RunScript(R"(
exchange Dchase flatten D
batchload Dfast flatten D
)");
  ASSERT_TRUE(log.ok()) << log.status();
  auto chase = engine_.repo().GetInstance("Dchase");
  auto fast = engine_.repo().GetInstance("Dfast");
  ASSERT_TRUE(chase.ok() && fast.ok());
  EXPECT_TRUE(fast->Equals(*chase));
  EXPECT_EQ(fast->Find("Flat")->size(), 1u);
}

TEST_F(EngineExtTest, OoGenRegistersWrapper) {
  auto log = engine_.RunScript("oogen Soo wrapS S");
  ASSERT_TRUE(log.ok()) << log.status();
  auto oo = engine_.repo().GetSchema("Soo");
  ASSERT_TRUE(oo.ok());
  EXPECT_EQ(oo->metamodel(), Metamodel::kObjectOriented);
  EXPECT_EQ(oo->entity_types().size(), 2u);
  EXPECT_TRUE(engine_.repo().HasMapping("wrapS"));
  auto wrap = engine_.repo().GetMapping("wrapS");
  EXPECT_EQ(wrap->source().name(), "Soo");
}

TEST_F(EngineExtTest, NestedGenRegistersDocumentSchema) {
  auto log = engine_.RunScript("nestedgen Sdoc docMap S");
  ASSERT_TRUE(log.ok()) << log.status();
  auto nested = engine_.repo().GetSchema("Sdoc");
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->metamodel(), Metamodel::kNested);
  // Lines folds into Orders_doc.
  ASSERT_EQ(nested->relations().size(), 1u);
  EXPECT_EQ(nested->relations()[0].name(), "Orders_doc");
}

TEST_F(EngineExtTest, BatchLoadRefusesUncompilableMapping) {
  // A mapping with a target egd needs the chase.
  auto m = engine_.repo().GetMapping("flatten");
  ASSERT_TRUE(m.ok());
  logic::Egd key;
  key.body = {Atom{"Flat", {V("o"), V("i1"), V("q1")}},
              Atom{"Flat", {V("o"), V("i2"), V("q2")}}};
  key.left = "i1";
  key.right = "i2";
  logic::Mapping keyed = *m;
  keyed.set_name("keyed");
  keyed.AddTargetEgd(key);
  ASSERT_TRUE(engine_.repo().PutMapping(keyed).ok());
  auto log = engine_.RunScript("batchload Dx keyed D");
  ASSERT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), StatusCode::kUnsupported);
}

TEST_F(EngineExtTest, ScriptArgumentErrors) {
  EXPECT_FALSE(engine_.RunScript("batchload onlyone").ok());
  EXPECT_FALSE(engine_.RunScript("oogen a b Missing").ok());
  EXPECT_FALSE(engine_.RunScript("nestedgen a b Missing").ok());
}

TEST_F(EngineExtTest, ThreadsCommandMirrorsIntoExchange) {
  // `threads 4` persists on the engine and flows into the chase behind
  // exchange; the result must be identical to the serial run, and the
  // mirrored pool telemetry must land in the engine's metrics registry
  // (surfaced by the `stats` command).
  auto serial = engine_.RunScript("exchange Dserial flatten D");
  ASSERT_TRUE(serial.ok()) << serial.status();
  auto log = engine_.RunScript(R"(
threads 4
exchange Dpar flatten D
stats
)");
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(engine_.threads(), 4u);
  auto ser = engine_.repo().GetInstance("Dserial");
  auto par = engine_.repo().GetInstance("Dpar");
  ASSERT_TRUE(ser.ok() && par.ok());
  EXPECT_TRUE(par->Equals(*ser));
  std::string joined;
  for (const std::string& line : *log) joined += line + "\n";
  EXPECT_NE(joined.find("threads 4"), std::string::npos);
  EXPECT_NE(joined.find("chase.parallel.workers"), std::string::npos)
      << joined;
}

TEST_F(EngineExtTest, ThreadsCommandRejectsBadArguments) {
  EXPECT_FALSE(engine_.RunScript("threads").ok());
  EXPECT_FALSE(engine_.RunScript("threads four").ok());
  EXPECT_FALSE(engine_.RunScript("threads -1").ok());
  EXPECT_TRUE(engine_.RunScript("threads 0").ok());  // 0 = defer to env
  EXPECT_EQ(engine_.threads(), 0u);
}

TEST_F(EngineExtTest, ExplainReportsOperatorAndRuleAttribution) {
  auto log = engine_.RunScript(R"(
exchange Dout flatten D
explain
)");
  ASSERT_TRUE(log.ok()) << log.status();
  std::string joined;
  for (const std::string& line : *log) joined += line + "\n";
  // The exchange operator shows up ranked, and the chase rule behind it is
  // attributed by label with its share of chase wall time.
  EXPECT_NE(joined.find("explain: "), std::string::npos);
  EXPECT_NE(joined.find("exchange"), std::string::npos);
  EXPECT_NE(joined.find("tgd0:Orders+Lines->Flat"), std::string::npos);
  EXPECT_NE(joined.find("dominant rule: tgd0:Orders+Lines->Flat"),
            std::string::npos);
}

TEST_F(EngineExtTest, ExplainReportsStorageTelemetry) {
  auto log = engine_.RunScript(R"(
exchange Dout flatten D
explain
)");
  ASSERT_TRUE(log.ok()) << log.status();
  std::string joined;
  for (const std::string& line : *log) joined += line + "\n";
  // The storage section attributes the indexed executor's work.
  EXPECT_NE(joined.find("storage:"), std::string::npos) << joined;
  EXPECT_NE(joined.find("index.probes"), std::string::npos);
  EXPECT_NE(joined.find("chase.delta.tuples"), std::string::npos);

  // The chase mirrored nonzero probe and delta traffic into the registry:
  // the join body probes the index (or, under MM2_STORAGE=segmented, the
  // sealed segments), and round 1 counts the whole extension as delta.
  obs::MetricsSnapshot snap = engine_.observability().metrics.Snapshot();
  if (instance::ResolveStorageMode(instance::StorageMode::kDefault) ==
      instance::StorageMode::kSegmented) {
    ASSERT_NE(snap.FindCounter("storage.segment.probes"), nullptr);
    EXPECT_GT(snap.FindCounter("storage.segment.probes")->value, 0u);
  } else {
    ASSERT_NE(snap.FindCounter("index.probes"), nullptr);
    EXPECT_GT(snap.FindCounter("index.probes")->value, 0u);
  }
  ASSERT_NE(snap.FindCounter("chase.delta.tuples"), nullptr);
  EXPECT_GT(snap.FindCounter("chase.delta.tuples")->value, 0u);
}

TEST_F(EngineExtTest, ExplainJsonIsOneMachineReadableLine) {
  auto log = engine_.RunScript(R"(
exchange Dout flatten D
explain --json
)");
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_GE(log->size(), 2u);
  const std::string& json = log->back();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"operators\": ["), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"tgd0:Orders+Lines->Flat\""),
            std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_FALSE(engine_.RunScript("explain --verbose").ok());
}

TEST_F(EngineExtTest, StatsOutputIsDeterministic) {
  ASSERT_TRUE(engine_.RunScript("exchange D1 flatten D").ok());
  auto first = engine_.RunScript("stats");
  auto second = engine_.RunScript("stats");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Metric *names* appear in the same sorted order on every dump (values
  // may differ — each RunScript snapshots the same live registry).
  auto names_of = [](const std::vector<std::string>& lines) {
    std::vector<std::string> names;
    for (const std::string& line : lines) {
      std::istringstream words(line);
      std::string kind, name;
      if (words >> kind >> name &&
          (kind == "counter" || kind == "gauge" || kind == "histogram")) {
        names.push_back(kind + " " + name);
      }
    }
    return names;
  };
  std::vector<std::string> first_names = names_of(*first);
  EXPECT_FALSE(first_names.empty());
  EXPECT_EQ(first_names, names_of(*second));
  std::vector<std::string> sorted = first_names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(first_names, sorted);
}

TEST_F(EngineExtTest, ExplainMappingReportsStaticAnalysis) {
  auto log = engine_.RunScript("explain mapping flatten");
  ASSERT_TRUE(log.ok()) << log.status();
  std::string joined;
  for (const std::string& line : *log) joined += line + "\n";
  EXPECT_NE(joined.find("termination: terminating (weakly acyclic)"),
            std::string::npos);
  EXPECT_NE(joined.find("tgd0:Orders+Lines->Flat"), std::string::npos);
  EXPECT_NE(joined.find("predicted"), std::string::npos);

  auto json = engine_.RunScript("explain mapping flatten --json");
  ASSERT_TRUE(json.ok()) << json.status();
  ASSERT_EQ(json->size(), 1u);
  EXPECT_EQ(json->front().front(), '{');
  EXPECT_NE(json->front().find("\"termination\": \"terminating\""),
            std::string::npos);
  EXPECT_NE(json->front().find("\"strata\": [[0]]"), std::string::npos);
  EXPECT_EQ(json->front().find('\n'), std::string::npos);

  auto dot = engine_.RunScript("explain mapping flatten --dot");
  ASSERT_TRUE(dot.ok()) << dot.status();
  ASSERT_EQ(dot->size(), 1u);
  EXPECT_EQ(dot->front().rfind("digraph mapping_analysis {", 0), 0u);
  EXPECT_NE(dot->front().find("cluster_stratum_0"), std::string::npos);

  EXPECT_FALSE(engine_.RunScript("explain mapping").ok());
  EXPECT_FALSE(engine_.RunScript("explain mapping nosuch").ok());
  EXPECT_FALSE(engine_.RunScript("explain mapping flatten --png").ok());
}

TEST_F(EngineExtTest, StatsJsonSharesMetricNamesWithTextForm) {
  ASSERT_TRUE(engine_.RunScript("exchange Dout flatten D").ok());
  auto json = engine_.RunScript("stats --json");
  ASSERT_TRUE(json.ok()) << json.status();
  ASSERT_EQ(json->size(), 1u);
  const std::string& line = json->front();
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"counters\": {"), std::string::npos);
  EXPECT_NE(line.find("\"histograms\": {"), std::string::npos);
  // Every metric name from the text dump appears verbatim in the JSON —
  // the shared-serializer contract of the two surfaces.
  auto text = engine_.RunScript("stats");
  ASSERT_TRUE(text.ok());
  for (const std::string& text_line : *text) {
    std::istringstream words(text_line);
    std::string kind, name;
    if (words >> kind >> name &&
        (kind == "counter" || kind == "gauge" || kind == "histogram")) {
      EXPECT_NE(line.find("\"" + name + "\":"), std::string::npos)
          << "metric " << name << " missing from stats --json";
    }
  }
  EXPECT_FALSE(engine_.RunScript("stats --verbose").ok());
}

TEST_F(EngineExtTest, ExchangeAttributesStrataAndForesight) {
  ASSERT_TRUE(engine_.RunScript("exchange Dout flatten D").ok());
  auto log = engine_.RunScript("explain --json");
  ASSERT_TRUE(log.ok()) << log.status();
  const std::string& json = log->back();
  // Engine exchanges run stratified, so the rule carries its stratum and
  // the strata/foresight sections are live.
  EXPECT_NE(json.find("\"stratum\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"strata\": [{\"index\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"foresight\": {\"analyzed\": true, "
                      "\"terminating\": true"),
            std::string::npos);
}

TEST_F(EngineExtTest, LogLevelCommandSetsThreshold) {
  auto log = engine_.RunScript("log level warn");
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(engine_.observability().events.min_level(),
            obs::EventLevel::kWarn);
  EXPECT_FALSE(engine_.RunScript("log level chatty").ok());
  EXPECT_FALSE(engine_.RunScript("log level").ok());
  ASSERT_TRUE(engine_.RunScript("log level debug").ok());
  EXPECT_EQ(engine_.observability().events.min_level(),
            obs::EventLevel::kDebug);
}

TEST_F(EngineExtTest, WhyExplainsTargetFactAfterExchange) {
  auto log = engine_.RunScript(R"(
exchange Dout flatten D
why Flat(1,"widget",3)
)");
  ASSERT_TRUE(log.ok()) << log.status();
  std::string joined;
  for (const std::string& line : *log) joined += line + "\n";
  EXPECT_NE(joined.find("because:"), std::string::npos) << joined;
  EXPECT_NE(joined.find("Orders(1, \"widget\")"), std::string::npos)
      << joined;
  EXPECT_NE(joined.find("Lines(1, 3)"), std::string::npos) << joined;
  EXPECT_NE(joined.find("sources:"), std::string::npos) << joined;
}

TEST_F(EngineExtTest, WhyReportsUnderivedFactAndBadInput) {
  ASSERT_TRUE(engine_.RunScript("exchange Dout flatten D").ok());
  // A fact the exchange never derived: answered, not an error.
  auto log = engine_.RunScript("why Flat(99,\"nope\",0)");
  ASSERT_TRUE(log.ok()) << log.status();
  std::string joined;
  for (const std::string& line : *log) joined += line + "\n";
  EXPECT_NE(joined.find("no recorded derivation"), std::string::npos);
  // Malformed fact literals fail with a parse diagnostic.
  EXPECT_FALSE(engine_.RunScript("why notafact").ok());
  EXPECT_FALSE(engine_.RunScript("why Flat(oops)").ok());
}

TEST_F(EngineExtTest, WhyRequiresAPriorExchange) {
  auto log = engine_.RunScript("why Flat(1,\"widget\",3)");
  ASSERT_FALSE(log.ok());
  EXPECT_NE(log.status().message().find("prior exchange"),
            std::string::npos);
}

TEST_F(EngineExtTest, LogCommandWritesJsonLinesToFile) {
  std::string path = ::testing::TempDir() + "/engine_ext_events.jsonl";
  auto log = engine_.RunScript("log json " + path +
                               "\nexchange Dout flatten D\nlog off\n");
  ASSERT_TRUE(log.ok()) << log.status();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  bool saw_heartbeat = false;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"event\": \"chase.heartbeat\"") != std::string::npos) {
      saw_heartbeat = true;
    }
  }
  EXPECT_TRUE(saw_heartbeat);
  EXPECT_FALSE(engine_.RunScript("log loud").ok());
}

TEST_F(EngineExtTest, BudgetBreachRegistersPartialInstanceAndFails) {
  // Load a source big enough to blow a 1-tuple budget in round one.
  instance::Instance big = instance::Instance::EmptyFor(
      engine_.repo().GetSchema("S").value());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(big.Insert("Orders", {Value::Int64(i),
                                      Value::String("x")}).ok());
    ASSERT_TRUE(big.Insert("Lines", {Value::Int64(i), Value::Int64(i)}).ok());
  }
  ASSERT_TRUE(engine_.repo().PutInstance("Big", std::move(big)).ok());
  auto log = engine_.RunScript(R"(
log text
budget tuples 1
exchange Dpartial flatten Big
)");
  ASSERT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), StatusCode::kResourceExhausted);
  // The diagnostic names the breach, the dominant rule, and carries the
  // flight-recorder dump.
  EXPECT_NE(log.status().message().find("tuples budget breached"),
            std::string::npos)
      << log.status();
  EXPECT_NE(log.status().message().find("tgd0:Orders+Lines->Flat"),
            std::string::npos);
  EXPECT_NE(log.status().message().find("-- flight recorder"),
            std::string::npos);
  // The partial instance was still registered, with partial data intact.
  auto partial = engine_.repo().GetInstance("Dpartial");
  ASSERT_TRUE(partial.ok());
  EXPECT_GT(partial->TotalTuples(), 0u);
  // `budget off` clears the limits; the same exchange then completes.
  auto cleared = engine_.RunScript(R"(
budget off
exchange Dfull flatten Big
)");
  ASSERT_TRUE(cleared.ok()) << cleared.status();
  EXPECT_EQ(engine_.repo().GetInstance("Dfull")->Find("Flat")->size(), 8u);
}

TEST_F(EngineExtTest, BudgetCommandRejectsBadArguments) {
  EXPECT_FALSE(engine_.RunScript("budget").ok());
  EXPECT_FALSE(engine_.RunScript("budget tuples").ok());
  EXPECT_FALSE(engine_.RunScript("budget tuples many").ok());
  EXPECT_FALSE(engine_.RunScript("budget tuples -1").ok());
  EXPECT_FALSE(engine_.RunScript("budget watts 5").ok());
  EXPECT_TRUE(engine_.RunScript("budget wall_us 1000000").ok());
  EXPECT_TRUE(engine_.RunScript("budget off").ok());
}

TEST_F(EngineExtTest, StatsReportsPeakRss) {
  auto log = engine_.RunScript("stats");
  ASSERT_TRUE(log.ok()) << log.status();
  std::string joined;
  for (const std::string& line : *log) joined += line + "\n";
  EXPECT_NE(joined.find("mem.peak_rss_kb"), std::string::npos) << joined;
  obs::MetricsSnapshot snap = engine_.observability().metrics.Snapshot();
  const obs::GaugeSnapshot* gauge = snap.FindGauge("mem.peak_rss_kb");
  ASSERT_NE(gauge, nullptr);
  EXPECT_GT(gauge->value, 0);
}

}  // namespace
}  // namespace mm2::engine
