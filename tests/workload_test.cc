#include <gtest/gtest.h>

#include "chase/chase.h"
#include "compose/compose.h"
#include "match/correspondence.h"
#include "match/matcher.h"
#include "modelgen/modelgen.h"
#include "transgen/transgen.h"
#include "workload/generators.h"

namespace mm2::workload {
namespace {

TEST(RngTest, DeterministicAndBounded) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(c.Uniform(10), 10u);
    double d = c.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  // Zero seed must not wedge the generator.
  Rng z(0);
  EXPECT_NE(z.Next(), 0u);
}

TEST(RandomSchemaTest, ValidAndSized) {
  Rng rng(1);
  model::Schema s = RandomRelationalSchema("R", 8, 5, &rng);
  EXPECT_TRUE(s.Validate().ok()) << s.ToString();
  EXPECT_EQ(s.relations().size(), 8u);
  for (const model::Relation& r : s.relations()) {
    EXPECT_GE(r.arity(), 2u);
    EXPECT_TRUE(r.IsKeyAttribute(0));
  }
}

TEST(RandomInstanceTest, RowsMatchSchema) {
  Rng rng(2);
  model::Schema s = RandomRelationalSchema("R", 3, 4, &rng);
  instance::Instance db = RandomInstance(s, 50, &rng);
  for (const model::Relation& r : s.relations()) {
    EXPECT_EQ(db.Find(r.name())->size(), 50u);
  }
}

TEST(SnowflakeTest, PairIsValidAndInterpretable) {
  SnowflakePair pair = MakeSnowflakePair(3, 2);
  ASSERT_TRUE(pair.source.Validate().ok()) << pair.source.ToString();
  ASSERT_TRUE(pair.target.Validate().ok());
  // 1 root corr + dims*attrs.
  EXPECT_EQ(pair.correspondences.size(), 1u + 3u * 2u);

  auto constraints = match::InterpretCorrespondences(
      pair.source, pair.source_root, pair.target, pair.target_root,
      pair.correspondences);
  ASSERT_TRUE(constraints.ok()) << constraints.status();
  EXPECT_EQ(constraints->size(), pair.correspondences.size());
}

TEST(SnowflakeTest, InstanceJoinsConsistently) {
  SnowflakePair pair = MakeSnowflakePair(2, 2);
  Rng rng(3);
  instance::Instance db = MakeSnowflakeInstance(pair, 40, &rng);
  EXPECT_EQ(db.Find("Fact")->size(), 40u);
  // Every fact's dimension refs resolve.
  auto constraints = match::InterpretCorrespondences(
      pair.source, pair.source_root, pair.target, pair.target_root,
      pair.correspondences);
  ASSERT_TRUE(constraints.ok());
  auto mapping = match::MappingFromConstraints("snow", pair.source,
                                               pair.target, *constraints);
  ASSERT_TRUE(mapping.ok());
  auto result = chase::RunChase(*mapping, db);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->target.TotalTuples(), 0u);
}

TEST(HierarchyTest, ShapeAndRoundtrip) {
  model::Schema er = MakeHierarchy(2, 2, 2);
  ASSERT_TRUE(er.Validate().ok()) << er.ToString();
  // 1 + 2 + 4 types.
  EXPECT_EQ(er.entity_types().size(), 7u);
  Rng rng(4);
  instance::Instance db = MakeHierarchyInstance(er, 3, &rng);
  EXPECT_EQ(db.Find("Objects")->size(), 3u * 7u);

  // Full pipeline: ModelGen + TransGen roundtrips on generated data.
  for (auto strategy : {modelgen::InheritanceStrategy::kSingleTable,
                        modelgen::InheritanceStrategy::kTablePerType,
                        modelgen::InheritanceStrategy::kTablePerConcrete}) {
    auto generated = modelgen::ErToRelational(er, strategy);
    ASSERT_TRUE(generated.ok()) << generated.status();
    auto views = transgen::CompileFragments(er, "Objects",
                                            generated->relational,
                                            generated->fragments);
    ASSERT_TRUE(views.ok()) << views.status();
    auto ok = transgen::VerifyRoundtrip(*views, er, generated->relational, db);
    ASSERT_TRUE(ok.ok()) << ok.status();
    EXPECT_TRUE(*ok) << modelgen::InheritanceStrategyToString(strategy);
  }
}

TEST(EvolutionChainTest, StepsComposeAndMigrate) {
  EvolutionChain chain = MakeEvolutionChain(3, 4);
  ASSERT_EQ(chain.schemas.size(), 4u);
  ASSERT_EQ(chain.steps.size(), 3u);
  for (const logic::Mapping& step : chain.steps) {
    EXPECT_TRUE(step.Validate().ok()) << step.ToString();
  }
  Rng rng(5);
  instance::Instance db = MakeChainInstance(chain, 10, &rng);

  // Migrate step by step.
  instance::Instance current = db;
  for (const logic::Mapping& step : chain.steps) {
    auto result = chase::RunChase(step, current);
    ASSERT_TRUE(result.ok());
    current = result->target;
  }
  EXPECT_EQ(current.TotalTuples(), 20u);  // Left + Right, 10 rows each

  // Or compose the chain and migrate once: same result.
  logic::Mapping composed = chain.steps[0];
  for (std::size_t i = 1; i < chain.steps.size(); ++i) {
    auto next = compose::Compose(composed, chain.steps[i]);
    ASSERT_TRUE(next.ok()) << next.status();
    composed = *next;
  }
  EXPECT_FALSE(composed.is_second_order());
  auto direct = chase::RunChase(composed, db);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct->target.Equals(current));
}

TEST(ComposeBlowupTest, FamiliesHaveExpectedShape) {
  auto [m12, m23] = MakeComposeBlowup(3, 2);
  EXPECT_TRUE(m12.Validate().ok());
  EXPECT_TRUE(m23.Validate().ok());
  compose::ComposeStats stats;
  auto composed = compose::Compose(m12, m23, {}, &stats);
  ASSERT_TRUE(composed.ok());
  EXPECT_EQ(stats.output_clauses, 9u);  // 3^2

  auto [b12, b23] = MakeComposeBenign(5);
  compose::ComposeStats benign_stats;
  auto benign = compose::Compose(b12, b23, {}, &benign_stats);
  ASSERT_TRUE(benign.ok());
  EXPECT_EQ(benign_stats.output_clauses, 5u);  // linear in width
}

TEST(PerturbTest, ReferenceAlignmentIsRecoverable) {
  Rng rng(6);
  model::Schema original =
      RandomRelationalSchema("Orig", 4, 4, &rng);
  PerturbedSchema perturbed = PerturbNames(original, &rng);
  ASSERT_TRUE(perturbed.schema.Validate().ok()) << perturbed.schema.ToString();
  EXPECT_FALSE(perturbed.reference.empty());

  match::MatchOptions options;
  options.top_k = 5;
  options.threshold = 0.2;
  match::SchemaMatcher matcher(options);
  match::MatchResult result = matcher.Match(original, perturbed.schema);
  double recall = match::CandidateRecall(result, perturbed.reference);
  EXPECT_GT(recall, 0.5);
}

}  // namespace
}  // namespace mm2::workload
