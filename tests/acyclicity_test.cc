#include <gtest/gtest.h>

#include "chase/chase.h"
#include "logic/acyclicity.h"
#include "workload/generators.h"

namespace mm2::logic {
namespace {

using instance::Instance;
using instance::Value;

Term V(const char* name) { return Term::Var(name); }

TEST(AcyclicityTest, FullTgdsAreAcyclic) {
  // Transitivity has no existentials: no special edges, trivially WA.
  Tgd trans;
  trans.body = {Atom{"E", {V("x"), V("y")}}, Atom{"E", {V("y"), V("z")}}};
  trans.head = {Atom{"E", {V("x"), V("z")}}};
  AcyclicityReport report = CheckWeakAcyclicity({trans});
  EXPECT_TRUE(report.weakly_acyclic) << report.ToString();
}

TEST(AcyclicityTest, SourceToTargetTgdsAreAcyclic) {
  workload::EvolutionChain chain = workload::MakeEvolutionChain(3, 5);
  for (const Mapping& step : chain.steps) {
    EXPECT_TRUE(CheckWeakAcyclicity(step.tgds()).weakly_acyclic);
  }
}

TEST(AcyclicityTest, RecursiveExistentialIsNotAcyclic) {
  // E(x, y) -> exists z. E(y, z): the textbook non-terminating rule.
  Tgd grow;
  grow.body = {Atom{"E", {V("x"), V("y")}}};
  grow.head = {Atom{"E", {V("y"), V("z")}}};
  AcyclicityReport report = CheckWeakAcyclicity({grow});
  EXPECT_FALSE(report.weakly_acyclic);
  EXPECT_FALSE(report.cycle.empty());
  EXPECT_NE(report.ToString().find("NOT weakly acyclic"), std::string::npos);
}

TEST(AcyclicityTest, CycleAcrossTwoRules) {
  // R(x) -> exists y. S(x, y);  S(x, y) -> R(y): the invention feeds back.
  Tgd r_to_s;
  r_to_s.body = {Atom{"R", {V("x")}}};
  r_to_s.head = {Atom{"S", {V("x"), V("y")}}};
  Tgd s_to_r;
  s_to_r.body = {Atom{"S", {V("x"), V("y")}}};
  s_to_r.head = {Atom{"R", {V("y")}}};
  EXPECT_FALSE(CheckWeakAcyclicity({r_to_s, s_to_r}).weakly_acyclic);
  // Each rule alone is fine.
  EXPECT_TRUE(CheckWeakAcyclicity({r_to_s}).weakly_acyclic);
  EXPECT_TRUE(CheckWeakAcyclicity({s_to_r}).weakly_acyclic);
}

TEST(AcyclicityTest, InventionIntoDeadEndIsAcyclic) {
  // R(x) -> exists y. Log(x, y): Log feeds nothing.
  Tgd log_rule;
  log_rule.body = {Atom{"R", {V("x")}}};
  log_rule.head = {Atom{"Log", {V("x"), V("y")}}};
  Tgd copy;
  copy.body = {Atom{"R", {V("x")}}};
  copy.head = {Atom{"T", {V("x")}}};
  EXPECT_TRUE(CheckWeakAcyclicity({log_rule, copy}).weakly_acyclic);
}

TEST(AcyclicityTest, ChaseGuardRefusesCyclicRules) {
  Tgd grow;
  grow.body = {Atom{"E", {V("x"), V("y")}}};
  grow.head = {Atom{"E", {V("y"), V("z")}}};
  Instance db;
  db.DeclareRelation("E", 2);
  ASSERT_TRUE(db.Insert("E", {Value::Int64(1), Value::Int64(2)}).ok());

  chase::ChaseOptions guarded;
  guarded.require_weak_acyclicity = true;
  auto refused = chase::ChaseInstance({grow}, {}, db, guarded);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnsupported);

  // Without the guard the run is stopped by the round bound instead.
  chase::ChaseOptions bounded;
  bounded.max_rounds = 20;
  auto runaway = chase::ChaseInstance({grow}, {}, db, bounded);
  ASSERT_FALSE(runaway.ok());
  EXPECT_EQ(runaway.status().code(), StatusCode::kInternal);
}

TEST(AcyclicityTest, ChaseGuardPassesAcyclicRules) {
  Tgd trans;
  trans.body = {Atom{"E", {V("x"), V("y")}}, Atom{"E", {V("y"), V("z")}}};
  trans.head = {Atom{"E", {V("x"), V("z")}}};
  Instance db;
  db.DeclareRelation("E", 2);
  ASSERT_TRUE(db.Insert("E", {Value::Int64(1), Value::Int64(2)}).ok());
  ASSERT_TRUE(db.Insert("E", {Value::Int64(2), Value::Int64(3)}).ok());
  chase::ChaseOptions guarded;
  guarded.require_weak_acyclicity = true;
  auto result = chase::ChaseInstance({trans}, {}, db, guarded);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->target.Find("E")->size(), 3u);
}

}  // namespace
}  // namespace mm2::logic
