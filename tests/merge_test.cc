#include <gtest/gtest.h>

#include "chase/chase.h"
#include "merge/merge.h"
#include "model/schema.h"

namespace mm2::merge {
namespace {

using instance::Instance;
using instance::Value;
using match::Correspondence;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

model::Schema Left() {
  return SchemaBuilder("A", Metamodel::kRelational)
      .Relation("Person",
                {{"Id", DataType::Int64()}, {"Name", DataType::String()}},
                {"Id"})
      .Relation("City", {{"Zip", DataType::String()},
                         {"CityName", DataType::String()}},
                {"Zip"})
      .Build();
}

model::Schema Right() {
  return SchemaBuilder("B", Metamodel::kRelational)
      .Relation("Individual",
                {{"PersonId", DataType::Double()},  // type conflict vs Int64
                 {"FullName", DataType::String()},
                 {"Age", DataType::Int64()}},
                {"PersonId"})
      .Relation("Hobby", {{"HobbyId", DataType::Int64()},
                          {"Label", DataType::String()}},
                {"HobbyId"})
      .Build();
}

std::vector<Correspondence> Corrs() {
  return {
      {{"Person", "Id"}, {"Individual", "PersonId"}, 1.0},
      {{"Person", "Name"}, {"Individual", "FullName"}, 1.0},
  };
}

TEST(MergeTest, CorrespondingContainersCollapse) {
  auto result = Merge(Left(), Right(), Corrs());
  ASSERT_TRUE(result.ok()) << result.status();
  // Person+Individual merge; City and Hobby are copied: 3 relations.
  EXPECT_EQ(result->merged.relations().size(), 3u);
  const model::Relation* person = result->merged.FindRelation("Person");
  ASSERT_NE(person, nullptr);
  // Id, Name from left; Age appended from right.
  EXPECT_EQ(person->AttributeNames(),
            (std::vector<std::string>{"Id", "Name", "Age"}));
  EXPECT_EQ(result->stats.containers_merged, 1u);
  EXPECT_EQ(result->stats.attributes_merged, 2u);
  // Right-only attribute is nullable in the merged world.
  EXPECT_TRUE(person->attributes()[2].nullable);
}

TEST(MergeTest, TypeConflictsResolveByPromotion) {
  auto result = Merge(Left(), Right(), Corrs());
  ASSERT_TRUE(result.ok());
  const model::Relation* person = result->merged.FindRelation("Person");
  // Int64 vs Double promotes to Double.
  EXPECT_TRUE(person->attributes()[0].type->Equals(*DataType::Double()));
  EXPECT_EQ(result->stats.type_conflicts, 1u);
}

TEST(MergeTest, MergedSizeFormula) {
  // |merged attrs| = |A| + |B| - |overlap|.
  auto result = Merge(Left(), Right(), Corrs());
  ASSERT_TRUE(result.ok());
  std::size_t total = 0;
  for (const model::Relation& r : result->merged.relations()) {
    total += r.arity();
  }
  EXPECT_EQ(total, 4u + 5u - 2u);
}

TEST(MergeTest, ProjectionMappingsRecoverInputs) {
  auto result = Merge(Left(), Right(), Corrs());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->to_left.Validate().ok()) << result->to_left.ToString();
  ASSERT_TRUE(result->to_right.Validate().ok());

  // Populate a merged instance and project both ways.
  Instance merged = Instance::EmptyFor(result->merged);
  ASSERT_TRUE(merged
                  .Insert("Person", {Value::Double(1), Value::String("Ada"),
                                     Value::Int64(30)})
                  .ok());
  ASSERT_TRUE(
      merged.Insert("City", {Value::String("10115"), Value::String("Berlin")})
          .ok());
  ASSERT_TRUE(merged
                  .Insert("Hobby", {Value::Int64(7), Value::String("chess")})
                  .ok());

  auto left_data = chase::RunChase(result->to_left, merged);
  ASSERT_TRUE(left_data.ok()) << left_data.status();
  EXPECT_EQ(left_data->target.Find("Person")->size(), 1u);
  EXPECT_EQ(left_data->target.Find("City")->size(), 1u);
  const instance::Tuple& person =
      *left_data->target.Find("Person")->tuples().begin();
  EXPECT_EQ(person[1], Value::String("Ada"));

  auto right_data = chase::RunChase(result->to_right, merged);
  ASSERT_TRUE(right_data.ok());
  const instance::Tuple& individual =
      *right_data->target.Find("Individual")->tuples().begin();
  EXPECT_EQ(individual[1], Value::String("Ada"));  // FullName <- Name
  EXPECT_EQ(individual[2], Value::Int64(30));      // Age
  EXPECT_EQ(right_data->target.Find("Hobby")->size(), 1u);
}

TEST(MergeTest, NoCorrespondencesIsDisjointUnion) {
  auto result = Merge(Left(), Right(), {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->merged.relations().size(), 4u);
  EXPECT_EQ(result->stats.containers_merged, 0u);
}

TEST(MergeTest, NameCollisionsGetSuffixed) {
  model::Schema right =
      SchemaBuilder("B", Metamodel::kRelational)
          .Relation("Person", {{"X", DataType::String()}})
          .Build();
  // No correspondences: the right "Person" is unrelated to the left one.
  auto result = Merge(Left(), right, {});
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->merged.FindRelation("Person"), nullptr);
  EXPECT_NE(result->merged.FindRelation("Person_2"), nullptr);
  EXPECT_EQ(result->stats.name_collisions, 1u);
}

TEST(MergeTest, AttributeNameCollisionWithinMergedContainer) {
  // Right has an attribute named like a left one but NOT corresponding to
  // it: it must be suffixed, not silently merged.
  model::Schema right =
      SchemaBuilder("B", Metamodel::kRelational)
          .Relation("Individual",
                    {{"PersonId", DataType::Int64()},
                     {"Name", DataType::String()}})  // unrelated "Name"
          .Build();
  std::vector<Correspondence> corrs = {
      {{"Person", "Id"}, {"Individual", "PersonId"}, 1.0},
  };
  auto result = Merge(Left(), right, corrs);
  ASSERT_TRUE(result.ok());
  const model::Relation* person = result->merged.FindRelation("Person");
  EXPECT_EQ(person->AttributeNames(),
            (std::vector<std::string>{"Id", "Name", "Name_2"}));
}

TEST(MergeTest, AmbiguousCorrespondenceRejected) {
  std::vector<Correspondence> corrs = {
      {{"Person", "Id"}, {"Individual", "PersonId"}, 1.0},
      {{"City", "Zip"}, {"Individual", "Age"}, 1.0},  // Individual ~ 2 left
  };
  auto result = Merge(Left(), Right(), corrs);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MergeTest, UnknownElementsInCorrespondenceRejected) {
  std::vector<Correspondence> corrs = {
      {{"Person", "Nope"}, {"Individual", "PersonId"}, 1.0},
  };
  auto result = Merge(Left(), Right(), corrs);
  EXPECT_FALSE(result.ok());
}

TEST(MergeTest, ErSchemasMergeEntityTypes) {
  model::Schema a =
      SchemaBuilder("A", Metamodel::kEntityRelationship)
          .EntityType("Person", "", {{"Id", DataType::Int64()},
                                     {"Name", DataType::String()}})
          .EntityType("Employee", "Person", {{"Dept", DataType::String()}})
          .EntitySet("Persons", "Person")
          .Build();
  model::Schema b =
      SchemaBuilder("B", Metamodel::kEntityRelationship)
          .EntityType("Human", "", {{"HumanId", DataType::Int64()},
                                    {"Email", DataType::String()}})
          .EntitySet("Humans", "Human")
          .Build();
  std::vector<Correspondence> corrs = {
      {{"Person", "Id"}, {"Human", "HumanId"}, 1.0},
  };
  auto result = Merge(a, b, corrs);
  ASSERT_TRUE(result.ok()) << result.status();
  const model::EntityType* person = result->merged.FindEntityType("Person");
  ASSERT_NE(person, nullptr);
  // Id, Name + appended Email.
  EXPECT_EQ(person->attributes.size(), 3u);
  // Inheritance preserved.
  const model::EntityType* employee =
      result->merged.FindEntityType("Employee");
  ASSERT_NE(employee, nullptr);
  EXPECT_EQ(employee->parent, "Person");
  // Both entity sets survive; Humans now roots at the merged Person.
  ASSERT_NE(result->merged.FindEntitySet("Humans"), nullptr);
  EXPECT_EQ(result->merged.FindEntitySet("Humans")->root_type, "Person");
}

TEST(MergeTest, MergeWithSelfViaFullCorrespondences) {
  // Merging a schema with an exact copy of itself yields the schema again.
  model::Schema a = Left();
  model::Schema b = Left();
  std::vector<Correspondence> corrs;
  for (const model::Relation& r : a.relations()) {
    for (const model::Attribute& attr : r.attributes()) {
      corrs.push_back({{r.name(), attr.name}, {r.name(), attr.name}, 1.0});
    }
  }
  auto result = Merge(a, b, corrs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->merged.relations().size(), a.relations().size());
  for (const model::Relation& r : a.relations()) {
    const model::Relation* merged = result->merged.FindRelation(r.name());
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->AttributeNames(), r.AttributeNames());
  }
}

}  // namespace
}  // namespace mm2::merge
