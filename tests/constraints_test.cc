// Tests for the Section 5 integrity-constraint runtime service: validating
// egds on materialized data and statically deciding whether a mapping
// carries a source key through to a target key.
#include <gtest/gtest.h>

#include "runtime/constraints.h"

namespace mm2::runtime {
namespace {

using instance::Instance;
using instance::Value;
using logic::Atom;
using logic::Egd;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Term V(const char* name) { return Term::Var(name); }

Egd KeyOf(const char* relation, std::size_t arity, std::size_t value_pos) {
  Egd egd;
  Atom a1;
  Atom a2;
  a1.relation = relation;
  a2.relation = relation;
  for (std::size_t i = 0; i < arity; ++i) {
    if (i == 0) {
      a1.terms.push_back(V("k"));
      a2.terms.push_back(V("k"));
    } else {
      a1.terms.push_back(Term::Var("x" + std::to_string(i)));
      a2.terms.push_back(Term::Var("y" + std::to_string(i)));
    }
  }
  egd.body = {a1, a2};
  egd.left = "x" + std::to_string(value_pos);
  egd.right = "y" + std::to_string(value_pos);
  return egd;
}

TEST(CheckEgdsTest, FindsViolations) {
  Instance db;
  db.DeclareRelation("R", 2);
  ASSERT_TRUE(db.Insert("R", {Value::Int64(1), Value::String("a")}).ok());
  ASSERT_TRUE(db.Insert("R", {Value::Int64(1), Value::String("b")}).ok());
  ASSERT_TRUE(db.Insert("R", {Value::Int64(2), Value::String("c")}).ok());

  std::vector<EgdViolation> violations = CheckEgds(db, {KeyOf("R", 2, 1)});
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].ToString().find("violated"), std::string::npos);

  // Clean instance: no violations.
  Instance clean;
  clean.DeclareRelation("R", 2);
  ASSERT_TRUE(clean.Insert("R", {Value::Int64(1), Value::String("a")}).ok());
  EXPECT_TRUE(CheckEgds(clean, {KeyOf("R", 2, 1)}).empty());
}

TEST(CheckEgdsTest, LimitBoundsOutput) {
  Instance db;
  db.DeclareRelation("R", 2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db.Insert("R", {Value::Int64(1),
                                Value::String("v" + std::to_string(i))})
                    .ok());
  }
  EXPECT_EQ(CheckEgds(db, {KeyOf("R", 2, 1)}, 1).size(), 1u);
  EXPECT_GT(CheckEgds(db, {KeyOf("R", 2, 1)}).size(), 1u);
}

model::Schema Src() {
  return SchemaBuilder("S", Metamodel::kRelational)
      .Relation("Emp", {{"Id", DataType::Int64()},
                        {"Name", DataType::String()},
                        {"Dept", DataType::String()}},
                {"Id"})
      .Build();
}

model::Schema Tgt() {
  return SchemaBuilder("T", Metamodel::kRelational)
      .Relation("Worker", {{"Id", DataType::Int64()},
                           {"Name", DataType::String()}},
                {"Id"})
      .Build();
}

TEST(ImpliesTargetEgdTest, SourceKeyCarriesToTargetKey) {
  // Emp(i, n, d) -> Worker(i, n); source key Emp.Id -> {Name} implies
  // target key Worker.Id -> {Name}.
  Tgd copy;
  copy.body = {Atom{"Emp", {V("i"), V("n"), V("d")}}};
  copy.head = {Atom{"Worker", {V("i"), V("n")}}};
  Mapping m = Mapping::FromTgds("m", Src(), Tgt(), {copy});

  Egd source_key = KeyOf("Emp", 3, 1);
  Egd target_key = KeyOf("Worker", 2, 1);

  auto implied = ImpliesTargetEgd(m, {source_key}, target_key);
  ASSERT_TRUE(implied.ok()) << implied.status();
  EXPECT_TRUE(*implied);
}

TEST(ImpliesTargetEgdTest, WithoutSourceKeyNotImplied) {
  Tgd copy;
  copy.body = {Atom{"Emp", {V("i"), V("n"), V("d")}}};
  copy.head = {Atom{"Worker", {V("i"), V("n")}}};
  Mapping m = Mapping::FromTgds("m", Src(), Tgt(), {copy});
  Egd target_key = KeyOf("Worker", 2, 1);

  Instance counterexample;
  auto implied = ImpliesTargetEgd(m, {}, target_key, &counterexample);
  ASSERT_TRUE(implied.ok());
  EXPECT_FALSE(*implied);
  // The counterexample is a source instance with two Emp rows sharing an
  // id but (potentially) different names.
  EXPECT_GE(counterexample.TotalTuples(), 2u);
}

TEST(ImpliesTargetEgdTest, ProjectionCollapsesDistinction) {
  // Worker(i, d) <- Emp(i, n, d): the target key on Dept needs the source
  // FD Id -> Dept, not Id -> Name.
  Tgd proj;
  proj.body = {Atom{"Emp", {V("i"), V("n"), V("d")}}};
  proj.head = {Atom{"Worker", {V("i"), V("d")}}};
  Mapping m = Mapping::FromTgds("m", Src(), Tgt(), {proj});
  Egd target_key = KeyOf("Worker", 2, 1);

  Egd fd_name = KeyOf("Emp", 3, 1);  // Id -> Name (wrong FD)
  auto not_implied = ImpliesTargetEgd(m, {fd_name}, target_key);
  ASSERT_TRUE(not_implied.ok());
  EXPECT_FALSE(*not_implied);

  Egd fd_dept = KeyOf("Emp", 3, 2);  // Id -> Dept (right FD)
  auto implied = ImpliesTargetEgd(m, {fd_dept}, target_key);
  ASSERT_TRUE(implied.ok());
  EXPECT_TRUE(*implied);
}

TEST(ImpliesTargetEgdTest, SharedExistentialSatisfiesKey) {
  // Worker rows get the SAME invented value per id (one rule, restricted
  // chase): the canonical target satisfies the key trivially.
  model::Schema tgt =
      SchemaBuilder("T2", Metamodel::kRelational)
          .Relation("W", {{"Id", DataType::Int64()},
                          {"Tag", DataType::String()}},
                    {"Id"})
          .Build();
  Tgd invent;
  invent.body = {Atom{"Emp", {V("i"), V("n"), V("d")}}};
  invent.head = {Atom{"W", {V("i"), V("t")}}};
  Mapping m = Mapping::FromTgds("m", Src(), tgt, {invent});
  Egd key = KeyOf("W", 2, 1);
  // Without any source FD, two Emp rows with the same id trigger two
  // invented tags — on the canonical target those are distinct nulls, so
  // the key is NOT implied.
  auto implied = ImpliesTargetEgd(m, {}, key);
  ASSERT_TRUE(implied.ok());
  EXPECT_FALSE(*implied);
  // With the full source key (Id determines everything), the two body
  // atoms collapse to one row, one firing, one tag: implied.
  auto with_keys =
      ImpliesTargetEgd(m, {KeyOf("Emp", 3, 1), KeyOf("Emp", 3, 2)}, key);
  ASSERT_TRUE(with_keys.ok());
  EXPECT_TRUE(*with_keys);
}

TEST(ImpliesTargetEgdTest, RejectsSecondOrderMapping) {
  logic::SoTgd so;
  Mapping m = Mapping::FromSoTgd("so", Src(), Tgt(), so);
  EXPECT_EQ(ImpliesTargetEgd(m, {}, KeyOf("Worker", 2, 1)).status().code(),
            StatusCode::kUnsupported);
}

}  // namespace
}  // namespace mm2::runtime
