#include <gtest/gtest.h>

#include "diff/diff.h"
#include "inverse/inverse.h"
#include "logic/formula.h"
#include "model/schema.h"

namespace mm2::diff {
namespace {

using instance::Instance;
using instance::Value;
using logic::Atom;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Term V(const char* name) { return Term::Var(name); }

// Source schema with a relation whose Country column the mapping ignores,
// plus a relation the mapping ignores entirely.
model::Schema Src() {
  return SchemaBuilder("S", Metamodel::kRelational)
      .Relation("Addresses", {{"SID", DataType::Int64()},
                              {"Address", DataType::String()},
                              {"Country", DataType::String()}},
                {"SID"})
      .Relation("Grades", {{"SID", DataType::Int64()},
                           {"Grade", DataType::String()}},
                {"SID"})
      .Build();
}

model::Schema Tgt() {
  return SchemaBuilder("T", Metamodel::kRelational)
      .Relation("AddrOnly", {{"SID", DataType::Int64()},
                             {"Address", DataType::String()}},
                {"SID"})
      .Build();
}

Mapping PartialMapping() {
  Tgd t;
  t.body = {Atom{"Addresses", {V("s"), V("a"), V("c")}}};
  t.head = {Atom{"AddrOnly", {V("s"), V("a")}}};
  return Mapping::FromTgds("partial", Src(), Tgt(), {t});
}

TEST(ExtractTest, KeepsParticipatingElementsOnly) {
  auto extract = Extract(PartialMapping());
  ASSERT_TRUE(extract.ok()) << extract.status();
  // Addresses participates with SID and Address; Country and Grades don't.
  const model::Relation* addr = extract->schema.FindRelation("Addresses");
  ASSERT_NE(addr, nullptr);
  EXPECT_EQ(addr->AttributeNames(),
            (std::vector<std::string>{"SID", "Address"}));
  EXPECT_EQ(extract->schema.FindRelation("Grades"), nullptr);
  EXPECT_EQ(extract->kept_elements,
            (std::vector<std::string>{"Addresses.SID", "Addresses.Address"}));
}

TEST(DiffTest, KeepsComplementPlusKeyContext) {
  auto diff = Diff(PartialMapping());
  ASSERT_TRUE(diff.ok()) << diff.status();
  const model::Relation* addr = diff->schema.FindRelation("Addresses");
  ASSERT_NE(addr, nullptr);
  // Country is new; SID is kept as key context.
  EXPECT_EQ(addr->AttributeNames(),
            (std::vector<std::string>{"SID", "Country"}));
  // Grades is entirely new.
  const model::Relation* grades = diff->schema.FindRelation("Grades");
  ASSERT_NE(grades, nullptr);
  EXPECT_EQ(grades->arity(), 2u);
}

TEST(DiffTest, FullyCoveredRelationIsOmitted) {
  Tgd full;
  full.body = {Atom{"Addresses", {V("s"), V("a"), V("c")}}};
  full.head = {Atom{"AddrOnly", {V("s"), V("a")}}};
  Tgd country;
  country.body = {Atom{"Addresses", {V("s"), V("a"), V("c")}}};
  country.head = {Atom{"AddrOnly", {V("s"), V("c")}}};
  Tgd grades;
  grades.body = {Atom{"Grades", {V("s"), V("g")}}};
  grades.head = {Atom{"AddrOnly", {V("s"), V("g")}}};
  Mapping m = Mapping::FromTgds("full", Src(), Tgt(),
                                {full, country, grades});
  auto diff = Diff(m);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->schema.relations().empty());
}

TEST(DiffTest, SecondOrderMappingRejected) {
  logic::SoTgd so;
  Mapping m = Mapping::FromSoTgd("so", Src(), Tgt(), so);
  EXPECT_EQ(Diff(m).status().code(), StatusCode::kUnsupported);
  EXPECT_EQ(Extract(m).status().code(), StatusCode::kUnsupported);
}

Instance SrcDb() {
  Instance db;
  db.DeclareRelation("Addresses", 3);
  db.DeclareRelation("Grades", 2);
  EXPECT_TRUE(db.Insert("Addresses", {Value::Int64(1), Value::String("12 Oak"),
                                      Value::String("US")})
                  .ok());
  EXPECT_TRUE(db.Insert("Addresses", {Value::Int64(2), Value::String("5 Rue"),
                                      Value::String("FR")})
                  .ok());
  EXPECT_TRUE(db.Insert("Grades", {Value::Int64(1), Value::String("A")}).ok());
  return db;
}

TEST(DiffTest, ExtractPlusDiffReconstructsSource) {
  Mapping m = PartialMapping();
  auto extract = Extract(m);
  auto complement = Diff(m);
  ASSERT_TRUE(extract.ok() && complement.ok());

  Instance db = SrcDb();
  auto extract_data = Apply(*extract, db);
  auto diff_data = Apply(*complement, db);
  ASSERT_TRUE(extract_data.ok() && diff_data.ok());

  EXPECT_EQ(extract_data->Find("Addresses")->arity(), 2u);
  EXPECT_EQ(diff_data->Find("Addresses")->arity(), 2u);
  EXPECT_EQ(diff_data->Find("Grades")->size(), 1u);

  auto rebuilt = Reconstruct(m.source(), *extract, *extract_data, *complement,
                             *diff_data);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE(rebuilt->Equals(db))
      << "rebuilt:\n" << rebuilt->ToString() << "original:\n" << db.ToString();
}

TEST(DiffTest, ReconstructFailsWithoutSharedKey) {
  // A mapping that carries only the non-key column: extract has no key,
  // diff keeps key+nothing shared... the rejoin must refuse.
  Tgd t;
  t.body = {Atom{"Addresses", {V("s"), V("a"), V("c")}}};
  t.head = {Atom{"AddrOnly", {V("e"), V("a")}}};  // key replaced by existential
  Mapping m = Mapping::FromTgds("nokey", Src(), Tgt(), {t});
  auto extract = Extract(m);
  auto complement = Diff(m);
  ASSERT_TRUE(extract.ok() && complement.ok());
  Instance db = SrcDb();
  auto extract_data = Apply(*extract, db);
  auto diff_data = Apply(*complement, db);
  ASSERT_TRUE(extract_data.ok() && diff_data.ok());
  auto rebuilt = Reconstruct(m.source(), *extract, *extract_data, *complement,
                             *diff_data);
  EXPECT_FALSE(rebuilt.ok());
}

TEST(DiffTest, PaperScenarioNewPartsOfEvolvedSchema) {
  // Section 6.2: S evolves to S' which adds a Phone relation; Diff(S',
  // Invert(mapS-S')) isolates the new parts.
  model::Schema s = SchemaBuilder("S", Metamodel::kRelational)
                        .Relation("Names", {{"SID", DataType::Int64()},
                                            {"Name", DataType::String()}},
                                  {"SID"})
                        .Build();
  model::Schema sp = SchemaBuilder("Sp", Metamodel::kRelational)
                         .Relation("Names", {{"SID", DataType::Int64()},
                                             {"Name", DataType::String()}},
                                   {"SID"})
                         .Relation("Phone", {{"SID", DataType::Int64()},
                                             {"Number", DataType::String()}},
                                   {"SID"})
                         .Build();
  Tgd copy;
  copy.body = {Atom{"Names", {V("s"), V("n")}}};
  copy.head = {Atom{"Names", {V("s"), V("n")}}};
  Mapping map_s_sp = Mapping::FromTgds("evolve", s, sp, {copy});

  auto inverted = inverse::Invert(map_s_sp);
  ASSERT_TRUE(inverted.ok());
  auto new_parts = Diff(*inverted);
  ASSERT_TRUE(new_parts.ok());
  // The new part of S' is exactly the Phone relation.
  ASSERT_EQ(new_parts->schema.relations().size(), 1u);
  EXPECT_EQ(new_parts->schema.relations()[0].name(), "Phone");
  EXPECT_EQ(new_parts->schema.relations()[0].arity(), 2u);
}

}  // namespace
}  // namespace mm2::diff
