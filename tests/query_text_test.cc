#include <gtest/gtest.h>

#include "text/query.h"

namespace mm2::text {
namespace {

using instance::Value;
using logic::Term;

TEST(QueryParserTest, ParsesJoinQuery) {
  auto q = ParseQuery("Q(x, y) :- Listing(s, x, \"CS\"), Person(s, y)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->head.relation, "Q");
  ASSERT_EQ(q->head.terms.size(), 2u);
  EXPECT_EQ(q->head.terms[0], Term::Var("x"));
  ASSERT_EQ(q->body.size(), 2u);
  EXPECT_EQ(q->body[0].relation, "Listing");
  EXPECT_EQ(q->body[0].terms[2], Term::Const(Value::String("CS")));
  EXPECT_EQ(q->body[1].terms[0], Term::Var("s"));
}

TEST(QueryParserTest, LiteralForms) {
  auto q = ParseQuery(
      "Q(x) :- R(x, 42, -7, 2.5, #t, #f, null, \"with \\\" quote\")");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& terms = q->body[0].terms;
  EXPECT_EQ(terms[1], Term::Const(Value::Int64(42)));
  EXPECT_EQ(terms[2], Term::Const(Value::Int64(-7)));
  EXPECT_EQ(terms[3], Term::Const(Value::Double(2.5)));
  EXPECT_EQ(terms[4], Term::Const(Value::Bool(true)));
  EXPECT_EQ(terms[5], Term::Const(Value::Bool(false)));
  EXPECT_EQ(terms[6], Term::Const(Value::Null()));
  EXPECT_EQ(terms[7], Term::Const(Value::String("with \" quote")));
}

TEST(QueryParserTest, WhitespaceInsensitive) {
  auto compact = ParseQuery("Q(x):-R(x,y),S(y)");
  auto spaced = ParseQuery("  Q( x )  :-  R( x , y ) ,  S( y )  ");
  ASSERT_TRUE(compact.ok() && spaced.ok());
  EXPECT_EQ(compact->ToString(), spaced->ToString());
}

TEST(QueryParserTest, DollarColumnsParse) {
  // $type appears in entity-set queries.
  auto q = ParseQuery("Q(t) :- Persons($type, i, n), T(t)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body[0].terms[0], Term::Var("$type"));
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("Q(x)").ok());                  // no body
  EXPECT_FALSE(ParseQuery("Q(x) :- ").ok());              // empty body
  EXPECT_FALSE(ParseQuery("Q(x) :- R(x").ok());           // unclosed
  EXPECT_FALSE(ParseQuery("Q(x) :- R(x) extra").ok());    // trailing junk
  EXPECT_FALSE(ParseQuery("Q(z) :- R(x)").ok());          // unsafe head
  EXPECT_FALSE(ParseQuery("Q(x) :- R(\"open").ok());      // bad string
  EXPECT_FALSE(ParseQuery("Q(x) :- R(#x)").ok());         // bad bool
}

TEST(QueryParserTest, RoundTripThroughToString) {
  auto q = ParseQuery("Q(x) :- R(x, \"a\"), S(x, 3)");
  ASSERT_TRUE(q.ok());
  auto again = ParseQuery(QueryToText(*q));
  ASSERT_TRUE(again.ok()) << again.status() << " from " << QueryToText(*q);
  EXPECT_EQ(again->ToString(), q->ToString());
}

}  // namespace
}  // namespace mm2::text
