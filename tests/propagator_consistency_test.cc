// Property test: after any sequence of entity inserts/deletes, the
// incremental UpdatePropagator's table state must equal a full recompute
// through the update views — including the DISTINCT corner where two
// entities share a table row (TPH siblings sharing projected columns).
#include <gtest/gtest.h>

#include "modelgen/modelgen.h"
#include "runtime/runtime.h"
#include "transgen/transgen.h"
#include "workload/generators.h"

namespace mm2::runtime {
namespace {

using instance::Instance;
using instance::Tuple;
using instance::Value;

class PropagatorConsistency
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PropagatorConsistency, MatchesFullRecomputeAfterRandomOps) {
  auto [seed, strategy_index] = GetParam();
  auto strategy =
      static_cast<modelgen::InheritanceStrategy>(strategy_index);
  model::Schema er = workload::MakeHierarchy(2, 2, 2);
  auto generated = modelgen::ErToRelational(er, strategy);
  ASSERT_TRUE(generated.ok());
  auto views = transgen::CompileFragments(er, "Objects",
                                          generated->relational,
                                          generated->fragments);
  ASSERT_TRUE(views.ok()) << views.status();

  workload::Rng rng(static_cast<std::uint64_t>(seed));
  Instance initial = workload::MakeHierarchyInstance(er, 2, &rng);
  UpdatePropagator propagator(*views, generated->fragments, er,
                              generated->relational);
  ASSERT_TRUE(propagator.Initialize(initial).ok());

  auto layout =
      instance::ComputeEntitySetLayout(er, *er.FindEntitySet("Objects"));
  ASSERT_TRUE(layout.ok());
  std::vector<std::string> concrete = er.SubtypeClosure("T0");

  // Random walk: insert fresh entities, delete random existing ones.
  std::vector<Tuple> live(
      propagator.entities().Find("Objects")->tuples().begin(),
      propagator.entities().Find("Objects")->tuples().end());
  std::int64_t next_id = 1000;
  for (int step = 0; step < 30; ++step) {
    bool do_insert = live.size() < 3 || rng.Chance(0.6);
    EntityOp op;
    if (do_insert) {
      const std::string& type = concrete[rng.Uniform(concrete.size())];
      auto attrs = er.AllAttributesOf(type);
      ASSERT_TRUE(attrs.ok());
      std::vector<Value> values = {Value::Int64(next_id++)};
      for (std::size_t i = 1; i < attrs->size(); ++i) {
        // Deliberately reuse a tiny value pool so projections collide.
        values.push_back(Value::String("v" + std::to_string(rng.Uniform(2))));
      }
      auto tuple = instance::MakeEntityTuple(*layout, er, type, values);
      ASSERT_TRUE(tuple.ok());
      op.kind = EntityOp::Kind::kInsert;
      op.entity = *tuple;
      live.push_back(*tuple);
    } else {
      std::size_t victim = rng.Uniform(live.size());
      op.kind = EntityOp::Kind::kDelete;
      op.entity = live[victim];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    ASSERT_TRUE(propagator.Apply(op).ok()) << "step " << step;

    // Invariant: incremental table state == full recompute.
    Instance recomputed;
    ASSERT_TRUE(transgen::ApplyUpdateViews(*views, er, generated->relational,
                                           propagator.entities(),
                                           &recomputed)
                    .ok());
    ASSERT_TRUE(propagator.tables().Equals(recomputed))
        << "diverged at step " << step << " ("
        << modelgen::InheritanceStrategyToString(strategy) << ")\n"
        << "incremental:\n" << propagator.tables().ToString()
        << "recomputed:\n" << recomputed.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PropagatorConsistency,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0, 1, 2)));  // TPH, TPT, TPC

}  // namespace
}  // namespace mm2::runtime
