#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace mm2 {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("relation 'R'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "relation 'R'");
  EXPECT_EQ(s.ToString(), "NotFound: relation 'R'");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unsupported("").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Inconsistent("").code(), StatusCode::kInconsistent);
  EXPECT_EQ(Status::NotExpressible("").code(), StatusCode::kNotExpressible);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  MM2_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  MM2_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = HalfOf(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  Result<int> err = HalfOf(3);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(-7), -7);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(*QuarterOf(8), 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(QuarterOf(5).ok());
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, CaseAndAffixes) {
  EXPECT_EQ(ToLower("CamelCase_9"), "camelcase_9");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringsTest, TokenizeSnakeAndCamel) {
  EXPECT_EQ(TokenizeIdentifier("billing_addr"),
            (std::vector<std::string>{"billing", "addr"}));
  EXPECT_EQ(TokenizeIdentifier("BillingAddr"),
            (std::vector<std::string>{"billing", "addr"}));
  EXPECT_EQ(TokenizeIdentifier("custBillingAddr2"),
            (std::vector<std::string>{"cust", "billing", "addr", "2"}));
  EXPECT_EQ(TokenizeIdentifier("HTTPServer"),
            (std::vector<std::string>{"http", "server"}));
  EXPECT_EQ(TokenizeIdentifier(""), (std::vector<std::string>{}));
  EXPECT_EQ(TokenizeIdentifier("___"), (std::vector<std::string>{}));
}

TEST(StringsTest, EditDistance) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
}

TEST(StringsTest, EditSimilarityBounds) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
  double sim = EditSimilarity("CustName", "CustomerName");
  EXPECT_GT(sim, 0.5);
  EXPECT_LT(sim, 1.0);
}

TEST(StringsTest, TrigramSimilarity) {
  EXPECT_DOUBLE_EQ(TrigramSimilarity("abcdef", "abcdef"), 1.0);
  EXPECT_EQ(TrigramSimilarity("abcdef", "uvwxyz"), 0.0);
  // Short strings fall back to edit similarity.
  EXPECT_DOUBLE_EQ(TrigramSimilarity("ab", "ab"), 1.0);
  EXPECT_GT(TrigramSimilarity("EmployeeName", "EmplName"), 0.2);
}

}  // namespace
}  // namespace mm2
