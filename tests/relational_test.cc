// Tests for the flat relational mapping compiler (the Section 5 "batch
// loading" fast path): compiled plans must agree with the chase wherever
// the flat NULL approximation is exact, and refuse the cases that need
// genuine labeled-null machinery.
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "transgen/relational.h"
#include "workload/generators.h"

namespace mm2::transgen {
namespace {

using instance::Instance;
using instance::Value;
using logic::Atom;
using logic::Egd;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Term V(const char* name) { return Term::Var(name); }
Term C(const char* s) { return Term::Const(Value::String(s)); }

model::Schema Src() {
  return SchemaBuilder("S", Metamodel::kRelational)
      .Relation("Names", {{"SID", DataType::Int64()},
                          {"Name", DataType::String()}},
                {"SID"})
      .Relation("Addresses", {{"SID", DataType::Int64()},
                              {"Address", DataType::String()},
                              {"Country", DataType::String()}},
                {"SID"})
      .Build();
}

model::Schema Tgt() {
  return SchemaBuilder("T", Metamodel::kRelational)
      .Relation("Students", {{"Name", DataType::String()},
                             {"Address", DataType::String()}})
      .Relation("Locals", {{"SID", DataType::Int64()},
                           {"Address", DataType::String()}})
      .Build();
}

Instance SrcDb() {
  Instance db;
  db.DeclareRelation("Names", 2);
  db.DeclareRelation("Addresses", 3);
  EXPECT_TRUE(db.Insert("Names", {Value::Int64(1), Value::String("Ada")}).ok());
  EXPECT_TRUE(db.Insert("Names", {Value::Int64(2), Value::String("Bob")}).ok());
  EXPECT_TRUE(db.Insert("Addresses", {Value::Int64(1), Value::String("12 Oak"),
                                      Value::String("US")})
                  .ok());
  EXPECT_TRUE(db.Insert("Addresses", {Value::Int64(2), Value::String("5 Rue"),
                                      Value::String("FR")})
                  .ok());
  return db;
}

TEST(RelationalCompileTest, JoinBodyCompilesAndAgreesWithChase) {
  // Students(n, a) :- Names(s, n) & Addresses(s, a, c).
  Tgd tgd;
  tgd.body = {Atom{"Names", {V("s"), V("n")}},
              Atom{"Addresses", {V("s"), V("a"), V("c")}}};
  tgd.head = {Atom{"Students", {V("n"), V("a")}}};
  Mapping m = Mapping::FromTgds("m", Src(), Tgt(), {tgd});

  auto compiled = CompileRelationalMapping(m);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_EQ(compiled->null_approximations, 0u);
  ASSERT_EQ(compiled->loaders.size(), 1u);

  auto fast = ExecuteCompiledMapping(*compiled, m, SrcDb());
  ASSERT_TRUE(fast.ok()) << fast.status();
  auto slow = chase::RunChase(m, SrcDb());
  ASSERT_TRUE(slow.ok());
  EXPECT_TRUE(fast->Equals(slow->target))
      << "fast:\n" << fast->ToString() << "slow:\n" << slow->target.ToString();
}

TEST(RelationalCompileTest, ConstantsBecomeSelections) {
  // Locals(s, a) :- Addresses(s, a, "US").
  Tgd tgd;
  tgd.body = {Atom{"Addresses", {V("s"), V("a"), C("US")}}};
  tgd.head = {Atom{"Locals", {V("s"), V("a")}}};
  Mapping m = Mapping::FromTgds("m", Src(), Tgt(), {tgd});
  auto compiled = CompileRelationalMapping(m);
  ASSERT_TRUE(compiled.ok());
  auto fast = ExecuteCompiledMapping(*compiled, m, SrcDb());
  ASSERT_TRUE(fast.ok());
  ASSERT_EQ(fast->Find("Locals")->size(), 1u);
  EXPECT_TRUE(fast->Find("Locals")->Contains(
      {Value::Int64(1), Value::String("12 Oak")}));
}

TEST(RelationalCompileTest, RepeatedVariableWithinAtom) {
  // Self-equal columns: Locals(s, a) :- Addresses(s, a, a) (address ==
  // country, contrived but exercises the local selection path).
  Tgd tgd;
  tgd.body = {Atom{"Addresses", {V("s"), V("a"), V("a")}}};
  tgd.head = {Atom{"Locals", {V("s"), V("a")}}};
  Mapping m = Mapping::FromTgds("m", Src(), Tgt(), {tgd});
  auto compiled = CompileRelationalMapping(m);
  ASSERT_TRUE(compiled.ok());
  Instance db = SrcDb();
  ASSERT_TRUE(db.Insert("Addresses", {Value::Int64(3), Value::String("X"),
                                      Value::String("X")})
                  .ok());
  auto fast = ExecuteCompiledMapping(*compiled, m, db);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->Find("Locals")->size(), 1u);
  auto slow = chase::RunChase(m, db);
  ASSERT_TRUE(slow.ok());
  EXPECT_TRUE(fast->Equals(slow->target));
}

TEST(RelationalCompileTest, DisconnectedAtomsCrossProduct) {
  Tgd tgd;
  tgd.body = {Atom{"Names", {V("s"), V("n")}},
              Atom{"Addresses", {V("s2"), V("a"), V("c")}}};
  tgd.head = {Atom{"Students", {V("n"), V("a")}}};
  Mapping m = Mapping::FromTgds("m", Src(), Tgt(), {tgd});
  auto compiled = CompileRelationalMapping(m);
  ASSERT_TRUE(compiled.ok());
  auto fast = ExecuteCompiledMapping(*compiled, m, SrcDb());
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->Find("Students")->size(), 4u);  // 2 x 2
  auto slow = chase::RunChase(m, SrcDb());
  EXPECT_TRUE(fast->Equals(slow->target));
}

TEST(RelationalCompileTest, ExistentialsBecomeNullColumns) {
  // Locals(s, a) with a existential: flat NULL approximation.
  Tgd tgd;
  tgd.body = {Atom{"Names", {V("s"), V("n")}}};
  tgd.head = {Atom{"Locals", {V("s"), V("a")}}};
  Mapping m = Mapping::FromTgds("m", Src(), Tgt(), {tgd});
  auto compiled = CompileRelationalMapping(m);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->null_approximations, 1u);
  auto fast = ExecuteCompiledMapping(*compiled, m, SrcDb());
  ASSERT_TRUE(fast.ok());
  for (const instance::Tuple& t : fast->Find("Locals")->tuples()) {
    EXPECT_TRUE(t[1].is_null());  // plain NULL, not labeled
  }
}

TEST(RelationalCompileTest, MultipleTgdsUnion) {
  Tgd from_names;
  from_names.body = {Atom{"Names", {V("s"), V("n")}}};
  from_names.head = {Atom{"Students", {V("n"), V("n")}}};
  Tgd from_addresses;
  from_addresses.body = {Atom{"Addresses", {V("s"), V("a"), V("c")}}};
  from_addresses.head = {Atom{"Students", {V("a"), V("a")}}};
  Mapping m =
      Mapping::FromTgds("m", Src(), Tgt(), {from_names, from_addresses});
  auto compiled = CompileRelationalMapping(m);
  ASSERT_TRUE(compiled.ok());
  auto fast = ExecuteCompiledMapping(*compiled, m, SrcDb());
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->Find("Students")->size(), 4u);
  auto slow = chase::RunChase(m, SrcDb());
  EXPECT_TRUE(fast->Equals(slow->target));
}

TEST(RelationalCompileTest, RejectsChaseOnlyFeatures) {
  Tgd tgd;
  tgd.body = {Atom{"Names", {V("s"), V("n")}}};
  tgd.head = {Atom{"Locals", {V("s"), V("n")}}};
  Egd key;
  key.body = {Atom{"Locals", {V("s"), V("a")}},
              Atom{"Locals", {V("s"), V("b")}}};
  key.left = "a";
  key.right = "b";
  Mapping with_egd = Mapping::FromTgds("m", Src(), Tgt(), {tgd}, {key});
  EXPECT_EQ(CompileRelationalMapping(with_egd).status().code(),
            StatusCode::kUnsupported);

  logic::SoTgd so;
  Mapping second_order = Mapping::FromSoTgd("so", Src(), Tgt(), so);
  EXPECT_EQ(CompileRelationalMapping(second_order).status().code(),
            StatusCode::kUnsupported);
}

TEST(RelationalCompileTest, AgreesWithChaseOnEvolutionChains) {
  // Property sweep: the lossless evolution-chain mappings compile exactly.
  for (std::size_t attrs : {2u, 4u, 6u}) {
    mm2::workload::EvolutionChain chain =
        mm2::workload::MakeEvolutionChain(2, attrs);
    mm2::workload::Rng rng(attrs);
    Instance db = mm2::workload::MakeChainInstance(chain, 15, &rng);
    Instance current = db;
    for (const Mapping& step : chain.steps) {
      auto compiled = CompileRelationalMapping(step);
      ASSERT_TRUE(compiled.ok()) << compiled.status();
      auto fast = ExecuteCompiledMapping(*compiled, step, current);
      ASSERT_TRUE(fast.ok());
      auto slow = chase::RunChase(step, current);
      ASSERT_TRUE(slow.ok());
      EXPECT_TRUE(fast->Equals(slow->target)) << "attrs=" << attrs;
      current = *fast;
    }
  }
}

TEST(RelationalCompileTest, ToStringListsLoaders) {
  Tgd tgd;
  tgd.body = {Atom{"Names", {V("s"), V("n")}}};
  tgd.head = {Atom{"Students", {V("n"), V("n")}}};
  Mapping m = Mapping::FromTgds("m", Src(), Tgt(), {tgd});
  auto compiled = CompileRelationalMapping(m);
  ASSERT_TRUE(compiled.ok());
  EXPECT_NE(compiled->ToString().find("loader for Students"),
            std::string::npos);
}

}  // namespace
}  // namespace mm2::transgen
