#include <gtest/gtest.h>

#include "chase/chase.h"
#include "instance/instance.h"
#include "logic/formula.h"
#include "logic/mapping.h"
#include "model/schema.h"

namespace mm2::chase {
namespace {

using instance::Instance;
using instance::Tuple;
using instance::Value;
using logic::Atom;
using logic::ConjunctiveQuery;
using logic::Egd;
using logic::Mapping;
using logic::SoTgd;
using logic::SoTgdClause;
using logic::Term;
using logic::Tgd;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Term V(const char* name) { return Term::Var(name); }

model::Schema SourceSchema() {
  return SchemaBuilder("S", Metamodel::kRelational)
      .Relation("Emp", {{"eid", DataType::Int64()},
                        {"dept", DataType::String()}})
      .Build();
}

model::Schema TargetSchema() {
  return SchemaBuilder("T", Metamodel::kRelational)
      .Relation("Worker", {{"eid", DataType::Int64()},
                           {"mgr", DataType::Int64()}})
      .Relation("Mgr", {{"mid", DataType::Int64()}})
      .Build();
}

Instance SourceDb() {
  Instance db;
  db.DeclareRelation("Emp", 2);
  EXPECT_TRUE(db.Insert("Emp", {Value::Int64(1), Value::String("sales")}).ok());
  EXPECT_TRUE(db.Insert("Emp", {Value::Int64(2), Value::String("eng")}).ok());
  return db;
}

TEST(MatchAtomsTest, SingleAtomBindsVariables) {
  Instance db = SourceDb();
  std::vector<Assignment> matches =
      MatchAtoms({Atom{"Emp", {V("x"), V("d")}}}, db);
  EXPECT_EQ(matches.size(), 2u);
}

TEST(MatchAtomsTest, ConstantsFilter) {
  Instance db = SourceDb();
  std::vector<Assignment> matches = MatchAtoms(
      {Atom{"Emp", {V("x"), Term::Const(Value::String("eng"))}}}, db);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].at("x"), Value::Int64(2));
}

TEST(MatchAtomsTest, RepeatedVariablesEnforceEquality) {
  Instance db;
  db.DeclareRelation("R", 2);
  ASSERT_TRUE(db.Insert("R", {Value::Int64(1), Value::Int64(1)}).ok());
  ASSERT_TRUE(db.Insert("R", {Value::Int64(1), Value::Int64(2)}).ok());
  EXPECT_EQ(MatchAtoms({Atom{"R", {V("x"), V("x")}}}, db).size(), 1u);
}

TEST(MatchAtomsTest, JoinAcrossAtoms) {
  Instance db;
  db.DeclareRelation("R", 2);
  db.DeclareRelation("S", 2);
  ASSERT_TRUE(db.Insert("R", {Value::Int64(1), Value::Int64(2)}).ok());
  ASSERT_TRUE(db.Insert("S", {Value::Int64(2), Value::Int64(3)}).ok());
  ASSERT_TRUE(db.Insert("S", {Value::Int64(9), Value::Int64(9)}).ok());
  std::vector<Assignment> matches = MatchAtoms(
      {Atom{"R", {V("x"), V("y")}}, Atom{"S", {V("y"), V("z")}}}, db);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].at("z"), Value::Int64(3));
}

TEST(MatchAtomsTest, LimitStopsEarly) {
  Instance db = SourceDb();
  EXPECT_EQ(MatchAtoms({Atom{"Emp", {V("x"), V("d")}}}, db, 1).size(), 1u);
}

TEST(MatchAtomsTest, MissingRelationYieldsNoMatches) {
  Instance db = SourceDb();
  EXPECT_TRUE(MatchAtoms({Atom{"Nope", {V("x")}}}, db).empty());
}

TEST(ChaseTest, FullTgdCopiesData) {
  // Emp(e, d) -> Worker(e, e) : full tgd, no nulls.
  Tgd tgd;
  tgd.body = {Atom{"Emp", {V("e"), V("d")}}};
  tgd.head = {Atom{"Worker", {V("e"), V("e")}}};
  Mapping m = Mapping::FromTgds("m", SourceSchema(), TargetSchema(), {tgd});
  auto result = RunChase(m, SourceDb());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->target.Find("Worker")->size(), 2u);
  EXPECT_FALSE(result->target.HasLabeledNulls());
  EXPECT_EQ(result->stats.nulls_created, 0u);
}

TEST(ChaseTest, ExistentialsBecomeLabeledNulls) {
  // Emp(e, d) -> Worker(e, m) & Mgr(m): m is existential.
  Tgd tgd;
  tgd.body = {Atom{"Emp", {V("e"), V("d")}}};
  tgd.head = {Atom{"Worker", {V("e"), V("m")}}, Atom{"Mgr", {V("m")}}};
  Mapping m = Mapping::FromTgds("m", SourceSchema(), TargetSchema(), {tgd});
  auto result = RunChase(m, SourceDb());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->target.Find("Worker")->size(), 2u);
  EXPECT_EQ(result->target.Find("Mgr")->size(), 2u);
  EXPECT_TRUE(result->target.HasLabeledNulls());
  EXPECT_EQ(result->stats.nulls_created, 2u);
  // The null in Worker matches the null in Mgr per source tuple.
  for (const Tuple& t : result->target.Find("Worker")->tuples()) {
    EXPECT_TRUE(t[1].is_labeled_null());
    EXPECT_TRUE(result->target.Find("Mgr")->Contains({t[1]}));
  }
}

TEST(ChaseTest, RestrictedChaseDoesNotRefireSatisfiedRules) {
  // The same rule listed twice: the second copy finds its head already
  // satisfied and invents nothing (restricted/standard chase).
  Tgd tgd;
  tgd.body = {Atom{"Emp", {V("e"), V("d")}}};
  tgd.head = {Atom{"Worker", {V("e"), V("m")}}};
  Mapping m =
      Mapping::FromTgds("m", SourceSchema(), TargetSchema(), {tgd, tgd});
  auto result = RunChase(m, SourceDb());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.nulls_created, 2u);  // one per Emp row, not four
  EXPECT_EQ(result->target.Find("Worker")->size(), 2u);
}

TEST(ChaseTest, UniversalSolutionHasHomomorphismIntoOtherSolutions) {
  Tgd tgd;
  tgd.body = {Atom{"Emp", {V("e"), V("d")}}};
  tgd.head = {Atom{"Worker", {V("e"), V("m")}}, Atom{"Mgr", {V("m")}}};
  Mapping m = Mapping::FromTgds("m", SourceSchema(), TargetSchema(), {tgd});
  auto result = RunChase(m, SourceDb());
  ASSERT_TRUE(result.ok());

  // Hand-build another solution with concrete manager ids.
  Instance other;
  other.DeclareRelation("Worker", 2);
  other.DeclareRelation("Mgr", 1);
  ASSERT_TRUE(other.Insert("Worker", {Value::Int64(1), Value::Int64(77)}).ok());
  ASSERT_TRUE(other.Insert("Worker", {Value::Int64(2), Value::Int64(77)}).ok());
  ASSERT_TRUE(other.Insert("Mgr", {Value::Int64(77)}).ok());

  EXPECT_TRUE(ExistsHomomorphism(result->target, other));
  // And not vice versa: `other` equates managers, chase result does not
  // force that, but a homomorphism maps constants to themselves, so 77
  // cannot move; it actually *does* embed. Use a genuinely incompatible
  // instance instead.
  Instance incompatible;
  incompatible.DeclareRelation("Worker", 2);
  incompatible.DeclareRelation("Mgr", 1);
  ASSERT_TRUE(
      incompatible.Insert("Worker", {Value::Int64(1), Value::Int64(77)}).ok());
  ASSERT_TRUE(incompatible.Insert("Mgr", {Value::Int64(77)}).ok());
  EXPECT_FALSE(ExistsHomomorphism(result->target, incompatible));
}

TEST(ChaseTest, TargetEgdUnifiesNulls) {
  // Two tgds give each Emp a worker row with an invented manager; the egd
  // says Worker.eid is a key, forcing the two invented managers together.
  Tgd t1;
  t1.body = {Atom{"Emp", {V("e"), V("d")}}};
  t1.head = {Atom{"Worker", {V("e"), V("m")}}};
  Egd key;
  key.body = {Atom{"Worker", {V("e"), V("m1")}},
              Atom{"Worker", {V("e"), V("m2")}}};
  key.left = "m1";
  key.right = "m2";
  Mapping m =
      Mapping::FromTgds("m", SourceSchema(), TargetSchema(), {t1}, {key});
  auto result = RunChase(m, SourceDb());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->target.Find("Worker")->size(), 2u);
}

TEST(ChaseTest, EgdOnConstantsReportsInconsistency) {
  // Source has two tuples with same eid but different depts; egd forces
  // dept equality on target copy -> inconsistent.
  model::Schema src = SourceSchema();
  model::Schema tgt = SchemaBuilder("T2", Metamodel::kRelational)
                          .Relation("D", {{"eid", DataType::Int64()},
                                          {"dept", DataType::String()}})
                          .Build();
  Tgd copy;
  copy.body = {Atom{"Emp", {V("e"), V("d")}}};
  copy.head = {Atom{"D", {V("e"), V("d")}}};
  Egd key;
  key.body = {Atom{"D", {V("e"), V("d1")}}, Atom{"D", {V("e"), V("d2")}}};
  key.left = "d1";
  key.right = "d2";

  Instance db;
  db.DeclareRelation("Emp", 2);
  ASSERT_TRUE(db.Insert("Emp", {Value::Int64(1), Value::String("a")}).ok());
  ASSERT_TRUE(db.Insert("Emp", {Value::Int64(1), Value::String("b")}).ok());

  Mapping m = Mapping::FromTgds("m", src, tgt, {copy}, {key});
  auto result = RunChase(m, db);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInconsistent);
}

TEST(ChaseTest, SoTgdFunctionsInventOneNullPerArgumentTuple) {
  // Emp(e, d) -> Worker(e, f(d)): same dept => same invented manager.
  SoTgd so;
  so.functions = {"f"};
  SoTgdClause clause;
  clause.body = {Atom{"Emp", {V("e"), V("d")}}};
  clause.head = {Atom{"Worker", {V("e"), Term::Func("f", {V("d")})}}};
  so.clauses = {clause};
  Mapping m = Mapping::FromSoTgd("m", SourceSchema(), TargetSchema(), so);

  Instance db;
  db.DeclareRelation("Emp", 2);
  ASSERT_TRUE(db.Insert("Emp", {Value::Int64(1), Value::String("sales")}).ok());
  ASSERT_TRUE(db.Insert("Emp", {Value::Int64(2), Value::String("sales")}).ok());
  ASSERT_TRUE(db.Insert("Emp", {Value::Int64(3), Value::String("eng")}).ok());

  auto result = RunChase(m, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.nulls_created, 2u);  // one per distinct dept
  std::map<Value, Value> mgr_of;
  for (const Tuple& t : result->target.Find("Worker")->tuples()) {
    mgr_of[t[0]] = t[1];
  }
  EXPECT_EQ(mgr_of.at(Value::Int64(1)), mgr_of.at(Value::Int64(2)));
  EXPECT_NE(mgr_of.at(Value::Int64(1)), mgr_of.at(Value::Int64(3)));
}

TEST(ChaseTest, ProvenanceRecordsWitnesses) {
  Tgd tgd;
  tgd.body = {Atom{"Emp", {V("e"), V("d")}}};
  tgd.head = {Atom{"Worker", {V("e"), V("e")}}};
  Mapping m = Mapping::FromTgds("m", SourceSchema(), TargetSchema(), {tgd});
  ChaseOptions options;
  options.track_provenance = true;
  auto result = RunChase(m, SourceDb(), options);
  ASSERT_TRUE(result.ok());
  Fact fact{"Worker", {Value::Int64(1), Value::Int64(1)}};
  const std::vector<Witness>* witnesses =
      result->provenance.WitnessesOf(fact);
  ASSERT_NE(witnesses, nullptr);
  ASSERT_EQ(witnesses->size(), 1u);
  ASSERT_EQ((*witnesses)[0].size(), 1u);
  EXPECT_EQ((*witnesses)[0][0].relation, "Emp");
  EXPECT_EQ((*witnesses)[0][0].tuple[0], Value::Int64(1));
}

TEST(ChaseTest, ProvenanceSurvivesEgdDrivenNullMerge) {
  // Two tgds invent independent nulls for the same key; the egd then
  // forces them equal, rewriting one null onto the other everywhere —
  // including inside the provenance map, which must stay queryable via
  // the value that survived the merge.
  Tgd invent_p;
  invent_p.body = {Atom{"S", {V("x")}}};
  invent_p.head = {Atom{"P", {V("x"), Term::Var("n")}}};
  Tgd invent_q;
  invent_q.body = {Atom{"S", {V("x")}}};
  invent_q.head = {Atom{"Q", {V("x"), Term::Var("m")}}};
  Egd same;
  same.body = {Atom{"P", {V("x"), V("a")}}, Atom{"Q", {V("x"), V("b")}}};
  same.left = "a";
  same.right = "b";
  Instance db;
  db.DeclareRelation("S", 1);
  ASSERT_TRUE(db.Insert("S", {Value::Int64(1)}).ok());
  ChaseOptions options;
  options.track_provenance = true;
  auto result = ChaseInstance({invent_p, invent_q}, {same}, db, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // Both relations now carry the same (merged) null.
  const instance::RelationInstance* p = result->target.Find("P");
  const instance::RelationInstance* q = result->target.Find("Q");
  ASSERT_NE(p, nullptr);
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(p->size(), 1u);
  ASSERT_EQ(q->size(), 1u);
  Value merged = (*p->tuples().begin())[1];
  ASSERT_TRUE(merged.is_labeled_null());
  EXPECT_EQ((*q->tuples().begin())[1], merged);
  // Lineage is queryable through the rewritten value for BOTH facts...
  for (const char* relation : {"P", "Q"}) {
    Fact fact{relation, {Value::Int64(1), merged}};
    const std::vector<Witness>* witnesses =
        result->provenance.WitnessesOf(fact);
    ASSERT_NE(witnesses, nullptr) << relation;
    ASSERT_FALSE(witnesses->empty());
    EXPECT_EQ((*witnesses)[0][0].relation, "S");
    EXPECT_EQ((*witnesses)[0][0].tuple[0], Value::Int64(1));
  }
  // ...and the pre-merge null no longer resolves (exactly one of the two
  // invented labels was rewritten away; probe the one that is not the
  // survivor).
  std::int64_t dead_label = merged.label() == 0 ? 1 : 0;
  Fact stale{"P", {Value::Int64(1), Value::LabeledNull(dead_label)}};
  EXPECT_EQ(result->provenance.WitnessesOf(stale), nullptr);
}

TEST(ChaseInstanceTest, ClosesUnderIntraSchemaTgds) {
  // Transitivity: E(x,y) & E(y,z) -> E(x,z).
  Tgd trans;
  trans.body = {Atom{"E", {V("x"), V("y")}}, Atom{"E", {V("y"), V("z")}}};
  trans.head = {Atom{"E", {V("x"), V("z")}}};
  Instance db;
  db.DeclareRelation("E", 2);
  ASSERT_TRUE(db.Insert("E", {Value::Int64(1), Value::Int64(2)}).ok());
  ASSERT_TRUE(db.Insert("E", {Value::Int64(2), Value::Int64(3)}).ok());
  ASSERT_TRUE(db.Insert("E", {Value::Int64(3), Value::Int64(4)}).ok());
  auto result = ChaseInstance({trans}, {}, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->target.Find("E")->size(), 6u);  // transitive closure
}

TEST(CertainAnswersTest, NullCarryingRowsAreDropped) {
  Instance db;
  db.DeclareRelation("Worker", 2);
  ASSERT_TRUE(db.Insert("Worker", {Value::Int64(1), Value::LabeledNull(0)}).ok());
  ASSERT_TRUE(db.Insert("Worker", {Value::Int64(2), Value::Int64(9)}).ok());

  ConjunctiveQuery all;
  all.head = Atom{"Q", {V("e"), V("m")}};
  all.body = {Atom{"Worker", {V("e"), V("m")}}};
  auto certain = CertainAnswers(all, db);
  ASSERT_TRUE(certain.ok());
  EXPECT_EQ(certain->size(), 1u);  // only the fully-constant row
  auto possible = AllAnswers(all, db);
  EXPECT_EQ(possible->size(), 2u);

  // Projecting away the null column keeps both.
  ConjunctiveQuery ids;
  ids.head = Atom{"Q", {V("e")}};
  ids.body = {Atom{"Worker", {V("e"), V("m")}}};
  auto ids_certain = CertainAnswers(ids, db);
  EXPECT_EQ(ids_certain->size(), 2u);
}

TEST(CertainAnswersTest, JoinOnLabeledNullStillCounts) {
  // Labeled nulls join with themselves (naive tables).
  Instance db;
  db.DeclareRelation("Worker", 2);
  db.DeclareRelation("Mgr", 1);
  ASSERT_TRUE(db.Insert("Worker", {Value::Int64(1), Value::LabeledNull(0)}).ok());
  ASSERT_TRUE(db.Insert("Mgr", {Value::LabeledNull(0)}).ok());
  ConjunctiveQuery q;
  q.head = Atom{"Q", {V("e")}};
  q.body = {Atom{"Worker", {V("e"), V("m")}}, Atom{"Mgr", {V("m")}}};
  auto certain = CertainAnswers(q, db);
  ASSERT_TRUE(certain.ok());
  EXPECT_EQ(certain->size(), 1u);
}

TEST(HomomorphismTest, ConstantsArePinned) {
  Instance a;
  a.DeclareRelation("R", 1);
  ASSERT_TRUE(a.Insert("R", {Value::Int64(1)}).ok());
  Instance b;
  b.DeclareRelation("R", 1);
  ASSERT_TRUE(b.Insert("R", {Value::Int64(2)}).ok());
  EXPECT_FALSE(ExistsHomomorphism(a, b));
  EXPECT_TRUE(ExistsHomomorphism(a, a));
}

TEST(HomomorphismTest, NullsAreFlexible) {
  Instance a;
  a.DeclareRelation("R", 2);
  ASSERT_TRUE(a.Insert("R", {Value::LabeledNull(0), Value::LabeledNull(0)}).ok());
  Instance b;
  b.DeclareRelation("R", 2);
  ASSERT_TRUE(b.Insert("R", {Value::Int64(5), Value::Int64(5)}).ok());
  EXPECT_TRUE(ExistsHomomorphism(a, b));
  // Repeated null must map consistently.
  Instance c;
  c.DeclareRelation("R", 2);
  ASSERT_TRUE(c.Insert("R", {Value::Int64(5), Value::Int64(6)}).ok());
  EXPECT_FALSE(ExistsHomomorphism(a, c));
}

TEST(CoreTest, RedundantNullTupleIsFolded) {
  // {Worker(1, 9), Worker(1, N0)}: N0 -> 9 is a retraction; the core is
  // just the constant tuple.
  Instance db;
  db.DeclareRelation("Worker", 2);
  ASSERT_TRUE(db.Insert("Worker", {Value::Int64(1), Value::Int64(9)}).ok());
  ASSERT_TRUE(db.Insert("Worker", {Value::Int64(1), Value::LabeledNull(0)}).ok());
  Instance core = ComputeCore(db);
  EXPECT_EQ(core.Find("Worker")->size(), 1u);
  EXPECT_FALSE(core.HasLabeledNulls());
}

TEST(CoreTest, NonRedundantNullsSurvive) {
  Instance db;
  db.DeclareRelation("Worker", 2);
  ASSERT_TRUE(db.Insert("Worker", {Value::Int64(1), Value::LabeledNull(0)}).ok());
  ASSERT_TRUE(db.Insert("Worker", {Value::Int64(2), Value::LabeledNull(1)}).ok());
  Instance core = ComputeCore(db);
  EXPECT_EQ(core.Find("Worker")->size(), 2u);
  EXPECT_TRUE(core.HasLabeledNulls());
}

TEST(CoreTest, ChaseThenCoreMatchesMinimalSolution) {
  // Two tgds deriving overlapping targets: the blowup folds away.
  Tgd t1;
  t1.body = {Atom{"Emp", {V("e"), V("d")}}};
  t1.head = {Atom{"Worker", {V("e"), V("m")}}};
  Tgd t2;  // redundant: re-derives with another existential
  t2.body = {Atom{"Emp", {V("e"), V("d")}}};
  t2.head = {Atom{"Worker", {V("e"), V("m2")}}};
  Mapping m =
      Mapping::FromTgds("m", SourceSchema(), TargetSchema(), {t1, t2});
  auto result = RunChase(m, SourceDb());
  ASSERT_TRUE(result.ok());
  Instance core = ComputeCore(result->target);
  EXPECT_EQ(core.Find("Worker")->size(), 2u);  // one row per source Emp
}

}  // namespace
}  // namespace mm2::chase
