// Incremental exchange: delta-driven target maintenance (runtime layer)
// and its two satellites — the canonical-null-renaming comparator
// InstanceEqualsUpToNulls and tombstone-aware DeltaViewSince slices.
//
// The centerpiece is a 100-seed differential sweep: random head-disjoint
// mappings, random insert/erase batches, MaintainExchange vs a full
// re-chase of the mutated source. The maintained target must be equal to
// the re-chased one up to a labeled-null bijection, with identical certain
// answers (the null-free tuples), and the returned target delta must
// replay the old target into the new one exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "chase/chase.h"
#include "instance/instance.h"
#include "logic/formula.h"
#include "logic/mapping.h"
#include "model/schema.h"
#include "runtime/runtime.h"
#include "workload/generators.h"

namespace mm2::runtime {
namespace {

using instance::Instance;
using instance::InstanceEqualsUpToNulls;
using instance::RelationInstance;
using instance::StorageMode;
using instance::Tuple;
using instance::Value;
using logic::Atom;
using logic::Egd;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using workload::Rng;

Term V(const std::string& name) { return Term::Var(name); }

// ---------------------------------------------------------------------------
// InstanceEqualsUpToNulls
// ---------------------------------------------------------------------------

TEST(EqualsUpToNullsTest, GroundInstancesCompareExactly) {
  Instance a;
  a.DeclareRelation("R", 2);
  ASSERT_TRUE(a.Insert("R", {Value::Int64(1), Value::String("x")}).ok());
  Instance b = a;
  EXPECT_TRUE(InstanceEqualsUpToNulls(a, b));
  ASSERT_TRUE(b.Insert("R", {Value::Int64(2), Value::String("y")}).ok());
  EXPECT_FALSE(InstanceEqualsUpToNulls(a, b));
}

TEST(EqualsUpToNullsTest, RenamedNullsAreEqual) {
  Instance a;
  a.DeclareRelation("R", 2);
  a.InsertUnchecked("R", {Value::Int64(1), Value::LabeledNull(10)});
  a.InsertUnchecked("R", {Value::Int64(2), Value::LabeledNull(11)});
  Instance b;
  b.DeclareRelation("R", 2);
  b.InsertUnchecked("R", {Value::Int64(1), Value::LabeledNull(77)});
  b.InsertUnchecked("R", {Value::Int64(2), Value::LabeledNull(33)});
  EXPECT_FALSE(a.Equals(b));
  EXPECT_TRUE(InstanceEqualsUpToNulls(a, b));
}

TEST(EqualsUpToNullsTest, SharedNullStructureMustMatch) {
  // Left shares one null across two rows; right uses two distinct nulls.
  // No bijection can align them.
  Instance a;
  a.DeclareRelation("R", 2);
  a.InsertUnchecked("R", {Value::Int64(1), Value::LabeledNull(5)});
  a.InsertUnchecked("R", {Value::Int64(2), Value::LabeledNull(5)});
  Instance b;
  b.DeclareRelation("R", 2);
  b.InsertUnchecked("R", {Value::Int64(1), Value::LabeledNull(8)});
  b.InsertUnchecked("R", {Value::Int64(2), Value::LabeledNull(9)});
  EXPECT_FALSE(InstanceEqualsUpToNulls(a, b));
}

TEST(EqualsUpToNullsTest, CrossRelationBijectionIsGlobal) {
  // The same null appearing in two relations must map consistently.
  Instance a;
  a.DeclareRelation("R", 1);
  a.DeclareRelation("S", 1);
  a.InsertUnchecked("R", {Value::LabeledNull(1)});
  a.InsertUnchecked("S", {Value::LabeledNull(1)});
  Instance b;
  b.DeclareRelation("R", 1);
  b.DeclareRelation("S", 1);
  b.InsertUnchecked("R", {Value::LabeledNull(2)});
  b.InsertUnchecked("S", {Value::LabeledNull(3)});
  EXPECT_FALSE(InstanceEqualsUpToNulls(a, b));
  // Aligning S to the same null restores the bijection.
  Instance c;
  c.DeclareRelation("R", 1);
  c.DeclareRelation("S", 1);
  c.InsertUnchecked("R", {Value::LabeledNull(2)});
  c.InsertUnchecked("S", {Value::LabeledNull(2)});
  EXPECT_TRUE(InstanceEqualsUpToNulls(a, c));
}

TEST(EqualsUpToNullsTest, EmptyRelationsAreIgnored) {
  Instance a;
  a.DeclareRelation("R", 1);
  a.DeclareRelation("Empty", 3);
  a.InsertUnchecked("R", {Value::Int64(1)});
  Instance b;
  b.DeclareRelation("R", 1);
  b.InsertUnchecked("R", {Value::Int64(1)});
  EXPECT_TRUE(InstanceEqualsUpToNulls(a, b));
}

// ---------------------------------------------------------------------------
// Tombstone-aware DeltaViewSince
// ---------------------------------------------------------------------------

Tuple Row2(std::int64_t a, std::int64_t b) {
  return {Value::Int64(a), Value::Int64(b)};
}

// Materializes every row of a view (refs then slices).
std::multiset<Tuple> ViewRows(const instance::DeltaView& view) {
  std::multiset<Tuple> rows;
  view.ForEachRow(0, view.size(), [&](const Tuple& t) {
    rows.insert(t);
    return true;
  });
  return rows;
}

TEST(TombstoneDeltaViewTest, EraseInOneRunKeepsOtherRunsSliced) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  // Run 0: a large sealed batch; run 1: a small later batch (sizes differ
  // enough that tiered compaction keeps them separate).
  for (std::int64_t i = 0; i < 16; ++i) rel.Insert(Row2(i, i));
  rel.PrepareSegments();
  const std::size_t run0_end = rel.Watermark();
  rel.Insert(Row2(100, 100));
  rel.Insert(Row2(101, 101));
  rel.PrepareSegments();
  ASSERT_GE(rel.segment_shape().live_segments, 2u);

  // Erase a row sealed into run 0. Watermarks at run 0's end must still see
  // run 1 as a zero-copy slice — the erase only poisons run 0.
  ASSERT_TRUE(rel.Erase(Row2(3, 3)));
  instance::DeltaView later = rel.DeltaViewSince(run0_end);
  EXPECT_TRUE(later.sliced);
  EXPECT_EQ(later.size(), rel.DeltaSince(run0_end).size());

  // A watermark-0 view walks run 0 through tombstone-skipping refs: same
  // rows as the plain delta, erased row excluded.
  instance::DeltaView full = rel.DeltaViewSince(0);
  EXPECT_EQ(full.size(), rel.DeltaSince(0).size());
  std::multiset<Tuple> rows = ViewRows(full);
  EXPECT_EQ(rows.count(Row2(3, 3)), 0u);
  EXPECT_EQ(rows.count(Row2(100, 100)), 1u);
  EXPECT_EQ(rows.size(), 17u);
}

TEST(TombstoneDeltaViewTest, UnsealedSuffixSkipsTombstones) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  for (std::int64_t i = 0; i < 8; ++i) rel.Insert(Row2(i, i));
  rel.PrepareSegments();
  const std::size_t mark = rel.Watermark();
  // Post-seal epoch: inserts and an erase of one of them, all unsealed.
  rel.Insert(Row2(50, 50));
  rel.Insert(Row2(51, 51));
  ASSERT_TRUE(rel.Erase(Row2(50, 50)));
  instance::DeltaView view = rel.DeltaViewSince(mark);
  EXPECT_EQ(view.size(), rel.DeltaSince(mark).size());
  std::multiset<Tuple> rows = ViewRows(view);
  EXPECT_EQ(rows.count(Row2(50, 50)), 0u);
  EXPECT_EQ(rows.count(Row2(51, 51)), 1u);
}

TEST(TombstoneDeltaViewTest, SizeContractHoldsAcrossWatermarks) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  Rng rng(42);
  for (std::int64_t i = 0; i < 12; ++i) rel.Insert(Row2(i, i));
  rel.PrepareSegments();
  for (std::int64_t i = 12; i < 15; ++i) rel.Insert(Row2(i, i));
  rel.PrepareSegments();
  ASSERT_TRUE(rel.Erase(Row2(2, 2)));
  ASSERT_TRUE(rel.Erase(Row2(13, 13)));
  rel.Insert(Row2(99, 99));
  for (std::size_t mark = 0; mark <= rel.Watermark(); ++mark) {
    instance::DeltaView view = rel.DeltaViewSince(mark);
    auto refs = rel.DeltaSince(mark);
    ASSERT_EQ(view.size(), refs.size()) << "watermark " << mark;
    std::multiset<Tuple> expect;
    for (const Tuple* t : refs) expect.insert(*t);
    ASSERT_EQ(ViewRows(view), expect) << "watermark " << mark;
  }
}

// ---------------------------------------------------------------------------
// Targeted DRed cases
// ---------------------------------------------------------------------------

// R(x, y) -> T(y): T(5) is derivable from two source rows, but provenance
// records only the first derivation (duplicate insertions are no-ops).
// Deleting the recorded witness must over-delete T(5) and then re-derive it
// from the surviving row — the returned delta is empty.
TEST(MaintainDRedTest, OverDeleteThenRederiveSharedFact) {
  model::Schema src("Src", model::Metamodel::kRelational);
  src.AddRelation(model::Relation(
      "R", {{"a", model::DataType::Int64(), false},
            {"b", model::DataType::Int64(), false}}, {}));
  model::Schema tgt("Tgt", model::Metamodel::kRelational);
  tgt.AddRelation(
      model::Relation("T", {{"b", model::DataType::Int64(), false}}, {}));
  Tgd tgd;
  tgd.body = {Atom{"R", {V("x"), V("y")}}};
  tgd.head = {Atom{"T", {V("y")}}};
  Mapping m = Mapping::FromTgds("m", src, tgt, {tgd});

  Instance source = Instance::EmptyFor(src);
  ASSERT_TRUE(source.Insert("R", Row2(1, 5)).ok());
  ASSERT_TRUE(source.Insert("R", Row2(2, 5)).ok());
  auto begun = BeginExchangeSession(m, std::move(source));
  ASSERT_TRUE(begun.ok()) << begun.status().message();
  ExchangeSession session = std::move(begun.value());
  ASSERT_TRUE(session.target.Find("T")->Contains({Value::Int64(5)}));

  Delta delta;
  delta.deletes.DeclareRelation("R", 2);
  delta.deletes.InsertUnchecked("R", Row2(1, 5));
  auto maintained = MaintainExchange(session, delta);
  ASSERT_TRUE(maintained.ok()) << maintained.status().message();
  EXPECT_TRUE(maintained.value().Empty());
  EXPECT_EQ(session.fallbacks, 0u);
  EXPECT_TRUE(session.target.Find("T")->Contains({Value::Int64(5)}));

  // Deleting the second row removes the last derivation for good.
  Delta delta2;
  delta2.deletes.DeclareRelation("R", 2);
  delta2.deletes.InsertUnchecked("R", Row2(2, 5));
  auto maintained2 = MaintainExchange(session, delta2);
  ASSERT_TRUE(maintained2.ok()) << maintained2.status().message();
  EXPECT_EQ(maintained2.value().deletes.TotalTuples(), 1u);
  EXPECT_EQ(session.target.Find("T")->size(), 0u);
  EXPECT_EQ(session.fallbacks, 0u);
}

// One deleted source row feeds two rules (a copy and a join): both derived
// facts must go, in one maintain.
TEST(MaintainDRedTest, CascadingDeleteAcrossRules) {
  model::Schema src("Src", model::Metamodel::kRelational);
  src.AddRelation(model::Relation(
      "R", {{"a", model::DataType::Int64(), false},
            {"b", model::DataType::Int64(), false}}, {}));
  src.AddRelation(model::Relation(
      "S", {{"b", model::DataType::Int64(), false},
            {"c", model::DataType::Int64(), false}}, {}));
  model::Schema tgt("Tgt", model::Metamodel::kRelational);
  tgt.AddRelation(model::Relation(
      "A", {{"a", model::DataType::Int64(), false},
            {"b", model::DataType::Int64(), false}}, {}));
  tgt.AddRelation(model::Relation(
      "B", {{"a", model::DataType::Int64(), false},
            {"c", model::DataType::Int64(), false}}, {}));
  Tgd copy;
  copy.body = {Atom{"R", {V("x"), V("y")}}};
  copy.head = {Atom{"A", {V("x"), V("y")}}};
  Tgd join;
  join.body = {Atom{"R", {V("x"), V("y")}}, Atom{"S", {V("y"), V("z")}}};
  join.head = {Atom{"B", {V("x"), V("z")}}};
  Mapping m = Mapping::FromTgds("m", src, tgt, {copy, join});

  Instance source = Instance::EmptyFor(src);
  ASSERT_TRUE(source.Insert("R", Row2(1, 5)).ok());
  ASSERT_TRUE(source.Insert("S", Row2(5, 7)).ok());
  auto begun = BeginExchangeSession(m, std::move(source));
  ASSERT_TRUE(begun.ok()) << begun.status().message();
  ExchangeSession session = std::move(begun.value());
  ASSERT_TRUE(session.target.Find("B")->Contains(Row2(1, 7)));

  Delta delta;
  delta.deletes.DeclareRelation("R", 2);
  delta.deletes.InsertUnchecked("R", Row2(1, 5));
  auto maintained = MaintainExchange(session, delta);
  ASSERT_TRUE(maintained.ok()) << maintained.status().message();
  EXPECT_EQ(maintained.value().deletes.TotalTuples(), 2u);
  EXPECT_EQ(session.target.Find("A")->size(), 0u);
  EXPECT_EQ(session.target.Find("B")->size(), 0u);
  EXPECT_EQ(session.fallbacks, 0u);
}

// Egd-merged nulls: S(k) invents P(k,n) and R(k,v) copies P(k,v) in the
// same round; the key egd then unifies the null with the ground value,
// leaving one merged target fact holding BOTH derivations as witnesses.
// (The existential tgd must run first — the restricted probe would see a
// ground P(k,v) as satisfying ∃n P(k,n) and never invent the null.)
Mapping KeyedExistentialMapping() {
  model::Schema src("Src", model::Metamodel::kRelational);
  src.AddRelation(model::Relation(
      "S", {{"k", model::DataType::Int64(), false}}, {}));
  src.AddRelation(model::Relation(
      "R", {{"k", model::DataType::Int64(), false},
            {"v", model::DataType::Int64(), false}}, {}));
  model::Schema tgt("Tgt", model::Metamodel::kRelational);
  tgt.AddRelation(model::Relation(
      "P", {{"k", model::DataType::Int64(), false},
            {"n", model::DataType::Int64(), false}}, {}));
  Tgd exist;
  exist.body = {Atom{"S", {V("k")}}};
  exist.head = {Atom{"P", {V("k"), V("n")}}};  // n existential
  Tgd copy;
  copy.body = {Atom{"R", {V("k"), V("v")}}};
  copy.head = {Atom{"P", {V("k"), V("v")}}};
  Egd key;
  key.body = {Atom{"P", {V("k"), V("n1")}}, Atom{"P", {V("k"), V("n2")}}};
  key.left = "n1";
  key.right = "n2";
  return Mapping::FromTgds("m", src, tgt, {exist, copy}, {key});
}

// Deleting one of the two derivations keeps the merged fact through its
// surviving witness — no fallback, no target change (the counting
// shortcut applied to an egd-merged fact).
TEST(MaintainDRedTest, EgdMergedFactKeptBySurvivingWitness) {
  Mapping m = KeyedExistentialMapping();
  Instance source;
  source.DeclareRelation("S", 1);
  source.DeclareRelation("R", 2);
  ASSERT_TRUE(source.Insert("S", {Value::Int64(1)}).ok());
  ASSERT_TRUE(source.Insert("R", Row2(1, 10)).ok());
  auto begun = BeginExchangeSession(m, std::move(source));
  ASSERT_TRUE(begun.ok()) << begun.status().message();
  ExchangeSession session = std::move(begun.value());
  // The egd merged the invented null into the ground copy.
  ASSERT_EQ(session.target.Find("P")->size(), 1u);
  ASSERT_TRUE(session.target.Find("P")->Contains(Row2(1, 10)));

  Delta delta;
  delta.deletes.DeclareRelation("S", 1);
  delta.deletes.InsertUnchecked("S", {Value::Int64(1)});
  auto maintained = MaintainExchange(session, delta);
  ASSERT_TRUE(maintained.ok()) << maintained.status().message();
  EXPECT_TRUE(maintained.value().Empty());
  EXPECT_EQ(session.fallbacks, 0u);
  EXPECT_EQ(session.target.Find("P")->size(), 1u);

  // Cross-check against a from-scratch exchange of the mutated source.
  auto full = Exchange(m, session.source, ExchangeOptions{});
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(InstanceEqualsUpToNulls(session.target, full.value().target));
}

// Deleting BOTH derivations over-deletes the merged fact, which witnessed
// the unification — the maintain must fall back to a full re-chase and
// still land on the right instance.
TEST(MaintainDRedTest, DeletingMergedFactFallsBackToRechase) {
  Mapping m = KeyedExistentialMapping();
  Instance source;
  source.DeclareRelation("S", 1);
  source.DeclareRelation("R", 2);
  ASSERT_TRUE(source.Insert("S", {Value::Int64(1)}).ok());
  ASSERT_TRUE(source.Insert("R", Row2(1, 10)).ok());
  ASSERT_TRUE(source.Insert("R", Row2(2, 30)).ok());
  auto begun = BeginExchangeSession(m, std::move(source));
  ASSERT_TRUE(begun.ok()) << begun.status().message();
  ExchangeSession session = std::move(begun.value());
  ASSERT_EQ(session.target.Find("P")->size(), 2u);

  // Remove both derivations of the merged P(1,10): the DRed candidate is a
  // unification witness, so the maintain must rebuild from scratch.
  Delta delta;
  delta.deletes.DeclareRelation("S", 1);
  delta.deletes.InsertUnchecked("S", {Value::Int64(1)});
  delta.deletes.DeclareRelation("R", 2);
  delta.deletes.InsertUnchecked("R", Row2(1, 10));
  auto maintained = MaintainExchange(session, delta);
  ASSERT_TRUE(maintained.ok()) << maintained.status().message();
  EXPECT_EQ(session.fallbacks, 1u);
  EXPECT_EQ(session.target.Find("P")->size(), 1u);
  auto full = Exchange(m, session.source, ExchangeOptions{});
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(InstanceEqualsUpToNulls(session.target, full.value().target));

  // The session survives the fallback: later maintains resume normally.
  Delta insert;
  insert.inserts.DeclareRelation("R", 2);
  insert.inserts.InsertUnchecked("R", Row2(3, 40));
  auto maintained2 = MaintainExchange(session, insert);
  ASSERT_TRUE(maintained2.ok()) << maintained2.status().message();
  EXPECT_EQ(maintained2.value().inserts.TotalTuples(), 1u);
  EXPECT_EQ(session.fallbacks, 1u);
}

// Insert-only maintain with an egd merge at maintain time: the null
// invented at Begin is unified with a ground copy arriving via the delta,
// and RewriteValue books the -null/+ground pair into the reported delta.
TEST(MaintainDRedTest, InsertOnlyMaintainMatchesRechase) {
  Mapping m = KeyedExistentialMapping();
  Instance source;
  source.DeclareRelation("S", 1);
  source.DeclareRelation("R", 2);
  ASSERT_TRUE(source.Insert("S", {Value::Int64(1)}).ok());
  auto begun = BeginExchangeSession(m, std::move(source));
  ASSERT_TRUE(begun.ok()) << begun.status().message();
  ExchangeSession session = std::move(begun.value());
  ASSERT_EQ(session.target.Find("P")->size(), 1u);
  Instance before = session.target;

  Delta delta;
  delta.inserts.DeclareRelation("R", 2);
  delta.inserts.InsertUnchecked("R", Row2(1, 30));  // same key: egd merges
  delta.inserts.InsertUnchecked("R", Row2(2, 40));  // new key: ground copy
  auto maintained = MaintainExchange(session, delta);
  ASSERT_TRUE(maintained.ok()) << maintained.status().message();
  EXPECT_EQ(session.fallbacks, 0u);
  EXPECT_EQ(session.target.Find("P")->size(), 2u);
  EXPECT_TRUE(session.target.Find("P")->Contains(Row2(1, 30)));
  EXPECT_TRUE(session.target.Find("P")->Contains(Row2(2, 40)));
  // The merge retracts the invented null: one delete, two inserts, and
  // replaying the delta onto the pre-maintain target lands exactly on the
  // maintained instance.
  EXPECT_EQ(maintained.value().deletes.TotalTuples(), 1u);
  EXPECT_EQ(maintained.value().inserts.TotalTuples(), 2u);
  ASSERT_TRUE(ApplyDelta(maintained.value(), &before).ok());
  EXPECT_TRUE(before.Equals(session.target));

  auto full = Exchange(m, session.source, ExchangeOptions{});
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(InstanceEqualsUpToNulls(session.target, full.value().target));
}

TEST(MaintainDRedTest, BeginRejectsComputeCore) {
  Mapping m = KeyedExistentialMapping();
  ExchangeOptions options;
  options.compute_core = true;
  auto begun = BeginExchangeSession(m, Instance{}, options);
  EXPECT_FALSE(begun.ok());
}

// ---------------------------------------------------------------------------
// 100-seed differential sweep
// ---------------------------------------------------------------------------

// A random head-disjoint mapping: every tgd writes its own target relation,
// so the resumed restricted chase and a from-scratch chase agree up to null
// renaming (cross-rule firing-order effects need overlapping heads). Bodies
// join on the shared key variable; heads project body variables and
// occasionally invent an existential.
struct SweepCase {
  Mapping mapping;
  Instance source;
  std::vector<std::size_t> arity;  // per source relation
};

SweepCase MakeSweepCase(Rng* rng) {
  const std::size_t nsrc = 2 + rng->Uniform(2);
  model::Schema src("Src", model::Metamodel::kRelational);
  std::vector<std::size_t> arity(nsrc);
  for (std::size_t i = 0; i < nsrc; ++i) {
    arity[i] = 2 + rng->Uniform(2);
    std::vector<model::Attribute> attrs;
    for (std::size_t c = 0; c < arity[i]; ++c) {
      attrs.push_back(
          {"c" + std::to_string(c), model::DataType::Int64(), false});
    }
    src.AddRelation(
        model::Relation("S" + std::to_string(i), std::move(attrs), {}));
  }

  const std::size_t ntgd = 2 + rng->Uniform(3);
  model::Schema tgt("Tgt", model::Metamodel::kRelational);
  std::vector<Tgd> tgds;
  for (std::size_t t = 0; t < ntgd; ++t) {
    Tgd tgd;
    std::vector<std::string> body_vars;
    const std::size_t natoms = 1 + rng->Uniform(2);
    for (std::size_t a = 0; a < natoms; ++a) {
      const std::size_t rel = rng->Uniform(nsrc);
      Atom atom;
      atom.relation = "S" + std::to_string(rel);
      for (std::size_t c = 0; c < arity[rel]; ++c) {
        // Position 0 is the key; atoms of one body share it (the join).
        std::string var = c == 0 ? "k"
                                 : "v" + std::to_string(a) + "_" +
                                       std::to_string(c);
        if (c != 0 || a == 0) body_vars.push_back(var);
        atom.terms.push_back(V(var));
      }
      tgd.body.push_back(std::move(atom));
    }
    const std::size_t head_arity = 1 + rng->Uniform(3);
    Atom head;
    head.relation = "T" + std::to_string(t);
    std::vector<model::Attribute> attrs;
    for (std::size_t c = 0; c < head_arity; ++c) {
      if (rng->Chance(0.25)) {
        head.terms.push_back(V("e" + std::to_string(c)));  // existential
      } else {
        head.terms.push_back(V(body_vars[rng->Uniform(body_vars.size())]));
      }
      attrs.push_back(
          {"h" + std::to_string(c), model::DataType::Int64(), false});
    }
    tgd.head.push_back(std::move(head));
    tgt.AddRelation(model::Relation(head.relation, std::move(attrs), {}));
    tgds.push_back(std::move(tgd));
  }

  SweepCase out{Mapping::FromTgds("sweep", src, tgt, std::move(tgds)),
                Instance::EmptyFor(src), std::move(arity)};
  const std::size_t rows = 6 + rng->Uniform(10);
  for (std::size_t i = 0; i < out.arity.size(); ++i) {
    for (std::size_t r = 0; r < rows; ++r) {
      Tuple tuple;
      tuple.push_back(Value::Int64(static_cast<std::int64_t>(r)));
      for (std::size_t c = 1; c < out.arity[i]; ++c) {
        tuple.push_back(
            Value::Int64(static_cast<std::int64_t>(rng->Uniform(20))));
      }
      out.source.InsertUnchecked("S" + std::to_string(i), std::move(tuple));
    }
  }
  return out;
}

// A random batch against the session's current source: brand-new keyed
// rows, duplicates of existing rows (join fan-out on shared keys), and
// erases of existing rows.
Delta MakeRandomDelta(const SweepCase& c, const Instance& current,
                      std::size_t epoch, Rng* rng) {
  Delta delta;
  for (std::size_t i = 0; i < c.arity.size(); ++i) {
    const std::string name = "S" + std::to_string(i);
    delta.inserts.DeclareRelation(name, c.arity[i]);
    delta.deletes.DeclareRelation(name, c.arity[i]);
    const std::size_t ninserts = rng->Uniform(4);
    for (std::size_t j = 0; j < ninserts; ++j) {
      Tuple tuple;
      // Half the inserts reuse live key range (extending joins), half
      // introduce fresh keys.
      const std::int64_t key =
          rng->Chance(0.5)
              ? static_cast<std::int64_t>(rng->Uniform(16))
              : static_cast<std::int64_t>(1000 + epoch * 100 + j);
      tuple.push_back(Value::Int64(key));
      for (std::size_t col = 1; col < c.arity[i]; ++col) {
        tuple.push_back(
            Value::Int64(static_cast<std::int64_t>(rng->Uniform(20))));
      }
      const RelationInstance* rel = current.Find(name);
      if (rel != nullptr && rel->Contains(tuple)) continue;
      if (delta.inserts.Find(name)->Contains(tuple)) continue;
      delta.inserts.InsertUnchecked(name, std::move(tuple));
    }
    const RelationInstance* rel = current.Find(name);
    if (rel == nullptr || rel->size() == 0) continue;
    std::vector<Tuple> live(rel->tuples().begin(), rel->tuples().end());
    const std::size_t nerases = rng->Uniform(3);
    std::set<std::size_t> picked;
    for (std::size_t j = 0; j < nerases && picked.size() < live.size(); ++j) {
      std::size_t idx = rng->Uniform(live.size());
      if (!picked.insert(idx).second) continue;
      delta.deletes.InsertUnchecked(name, live[idx]);
    }
  }
  return delta;
}

TEST(IncrementalSweepTest, HundredSeedsMatchFullRechase) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    SweepCase c = MakeSweepCase(&rng);
    auto begun = BeginExchangeSession(c.mapping, c.source);
    ASSERT_TRUE(begun.ok()) << "seed " << seed << ": "
                            << begun.status().message();
    ExchangeSession session = std::move(begun.value());

    const std::size_t epochs = 2 + rng.Uniform(2);
    for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
      Delta delta = MakeRandomDelta(c, session.source, epoch, &rng);
      Instance before = session.target;
      auto maintained = MaintainExchange(session, delta);
      ASSERT_TRUE(maintained.ok())
          << "seed " << seed << " epoch " << epoch << ": "
          << maintained.status().message();

      // The returned delta replays the old target into the new one.
      ASSERT_TRUE(ApplyDelta(maintained.value(), &before).ok())
          << "seed " << seed << " epoch " << epoch;
      ASSERT_TRUE(before.Equals(session.target))
          << "seed " << seed << " epoch " << epoch;

      // Differential: a full exchange of the mutated source agrees up to
      // null renaming.
      auto full = Exchange(c.mapping, session.source, ExchangeOptions{});
      ASSERT_TRUE(full.ok()) << "seed " << seed << " epoch " << epoch;
      ASSERT_TRUE(InstanceEqualsUpToNulls(session.target, full.value().target))
          << "seed " << seed << " epoch " << epoch << "\nmaintained:\n"
          << session.target.ToString() << "\nrechased:\n"
          << full.value().target.ToString();

      // Certain answers (null-free rows per relation) are identical, not
      // just isomorphic.
      for (const auto& [name, rel] : full.value().target.relations()) {
        std::set<Tuple> expect;
        for (const Tuple& t : rel.tuples()) {
          bool ground = true;
          for (const Value& v : t) ground &= !v.is_labeled_null();
          if (ground) expect.insert(t);
        }
        std::set<Tuple> got;
        const RelationInstance* mine = session.target.Find(name);
        if (mine != nullptr) {
          for (const Tuple& t : mine->tuples()) {
            bool ground = true;
            for (const Value& v : t) ground &= !v.is_labeled_null();
            if (ground) got.insert(t);
          }
        }
        ASSERT_EQ(got, expect)
            << "seed " << seed << " epoch " << epoch << " relation " << name;
      }
    }
    // Egd-free head-disjoint sweeps never hit the unification fallback.
    EXPECT_EQ(session.fallbacks, 0u) << "seed " << seed;
  }
}

// The sweep again, under segmented storage: the maintain path must give
// the same answers when deltas ride tombstone-aware segment slices.
TEST(IncrementalSweepTest, SegmentedStorageSweep) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 7919);
    SweepCase c = MakeSweepCase(&rng);
    ExchangeOptions options;
    options.storage = StorageMode::kSegmented;
    auto begun = BeginExchangeSession(c.mapping, c.source, options);
    ASSERT_TRUE(begun.ok()) << "seed " << seed;
    ExchangeSession session = std::move(begun.value());
    for (std::size_t epoch = 0; epoch < 2; ++epoch) {
      Delta delta = MakeRandomDelta(c, session.source, epoch, &rng);
      auto maintained = MaintainExchange(session, delta);
      ASSERT_TRUE(maintained.ok())
          << "seed " << seed << " epoch " << epoch << ": "
          << maintained.status().message();
      auto full = Exchange(c.mapping, session.source, options);
      ASSERT_TRUE(full.ok());
      ASSERT_TRUE(InstanceEqualsUpToNulls(session.target, full.value().target))
          << "seed " << seed << " epoch " << epoch;
    }
  }
}

}  // namespace
}  // namespace mm2::runtime
