// Tests for grouped aggregation — the "first-order logic with aggregation"
// expressiveness item of Section 2, backing the OLAP usage scenario.
#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/expr.h"
#include "algebra/optimize.h"
#include "instance/instance.h"

namespace mm2::algebra {
namespace {

using instance::Instance;
using instance::Tuple;
using instance::Value;

Catalog SalesCatalog() {
  Catalog c;
  c.Add("Sales", {"Region", "Product", "Amount"});
  return c;
}

Instance SalesDb() {
  Instance db;
  db.DeclareRelation("Sales", 3);
  auto add = [&](const char* region, const char* product, double amount) {
    db.InsertUnchecked("Sales", {Value::String(region),
                                 Value::String(product),
                                 Value::Double(amount)});
  };
  add("EU", "widget", 10.0);
  add("EU", "widget", 15.0);
  add("EU", "gadget", 20.0);
  add("US", "widget", 5.0);
  return db;
}

std::map<Tuple, Tuple> ByKey(const Table& t, std::size_t key_cols) {
  std::map<Tuple, Tuple> out;
  for (const Tuple& row : t.rows) {
    Tuple key(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(key_cols));
    out[key] = row;
  }
  return out;
}

TEST(AggregateTest, GroupBySums) {
  ExprRef cube = Expr::Aggregate(
      Expr::Scan("Sales"), {"Region"},
      {{Expr::AggOp::kSum, "Amount", "Total"},
       {Expr::AggOp::kCount, "", "Rows"}});
  auto t = Evaluate(*cube, SalesCatalog(), SalesDb());
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->columns,
            (std::vector<std::string>{"Region", "Total", "Rows"}));
  auto rows = ByKey(*t, 1);
  ASSERT_EQ(rows.size(), 2u);
  // Sales has set semantics, but these rows are all distinct.
  EXPECT_EQ(rows.at({Value::String("EU")})[1], Value::Double(45.0));
  EXPECT_EQ(rows.at({Value::String("EU")})[2], Value::Int64(3));
  EXPECT_EQ(rows.at({Value::String("US")})[1], Value::Double(5.0));
}

TEST(AggregateTest, MultiColumnGroupBy) {
  ExprRef cube = Expr::Aggregate(
      Expr::Scan("Sales"), {"Region", "Product"},
      {{Expr::AggOp::kMax, "Amount", "Best"}});
  auto t = Evaluate(*cube, SalesCatalog(), SalesDb());
  ASSERT_TRUE(t.ok());
  auto rows = ByKey(*t, 2);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows.at({Value::String("EU"), Value::String("widget")})[2],
            Value::Double(15.0));
}

TEST(AggregateTest, GlobalAggregateWithoutGroupBy) {
  ExprRef total = Expr::Aggregate(
      Expr::Scan("Sales"), {},
      {{Expr::AggOp::kCount, "", "N"},
       {Expr::AggOp::kMin, "Amount", "Lo"},
       {Expr::AggOp::kMax, "Amount", "Hi"},
       {Expr::AggOp::kAvg, "Amount", "Mean"}});
  auto t = Evaluate(*total, SalesCatalog(), SalesDb());
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->rows.size(), 1u);
  const Tuple& row = t->rows[0];
  EXPECT_EQ(row[0], Value::Int64(4));
  EXPECT_EQ(row[1], Value::Double(5.0));
  EXPECT_EQ(row[2], Value::Double(20.0));
  EXPECT_EQ(row[3], Value::Double(12.5));
}

TEST(AggregateTest, EmptyInputGlobalGroupStillEmitsRow) {
  Instance empty;
  empty.DeclareRelation("Sales", 3);
  ExprRef total = Expr::Aggregate(
      Expr::Scan("Sales"), {},
      {{Expr::AggOp::kCount, "", "N"}, {Expr::AggOp::kSum, "Amount", "S"}});
  auto t = Evaluate(*total, SalesCatalog(), empty);
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->rows.size(), 1u);
  EXPECT_EQ(t->rows[0][0], Value::Int64(0));
  EXPECT_TRUE(t->rows[0][1].is_null());  // SUM over nothing is NULL
  // With a GROUP BY there are no groups, hence no rows.
  ExprRef grouped = Expr::Aggregate(Expr::Scan("Sales"), {"Region"},
                                    {{Expr::AggOp::kCount, "", "N"}});
  auto g = Evaluate(*grouped, SalesCatalog(), empty);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->rows.empty());
}

TEST(AggregateTest, NullsAreSkipped) {
  Instance db;
  db.DeclareRelation("Sales", 3);
  db.InsertUnchecked("Sales", {Value::String("EU"), Value::String("w"),
                               Value::Double(10.0)});
  db.InsertUnchecked("Sales",
                     {Value::String("EU"), Value::String("x"), Value::Null()});
  ExprRef agg = Expr::Aggregate(
      Expr::Scan("Sales"), {"Region"},
      {{Expr::AggOp::kCount, "Amount", "NonNull"},
       {Expr::AggOp::kCount, "", "All"},
       {Expr::AggOp::kAvg, "Amount", "Mean"}});
  auto t = Evaluate(*agg, SalesCatalog(), db);
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->rows.size(), 1u);
  EXPECT_EQ(t->rows[0][1], Value::Int64(1));  // COUNT(Amount) skips NULL
  EXPECT_EQ(t->rows[0][2], Value::Int64(2));  // COUNT(*) does not
  EXPECT_EQ(t->rows[0][3], Value::Double(10.0));
}

TEST(AggregateTest, MinMaxWorkOnStrings) {
  ExprRef agg = Expr::Aggregate(Expr::Scan("Sales"), {},
                                {{Expr::AggOp::kMin, "Product", "First"},
                                 {Expr::AggOp::kMax, "Product", "Last"}});
  auto t = Evaluate(*agg, SalesCatalog(), SalesDb());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows[0][0], Value::String("gadget"));
  EXPECT_EQ(t->rows[0][1], Value::String("widget"));
}

TEST(AggregateTest, MissingColumnsAreErrors) {
  ExprRef bad_group = Expr::Aggregate(Expr::Scan("Sales"), {"Nope"},
                                      {{Expr::AggOp::kCount, "", "N"}});
  EXPECT_FALSE(Evaluate(*bad_group, SalesCatalog(), SalesDb()).ok());
  ExprRef bad_input = Expr::Aggregate(Expr::Scan("Sales"), {},
                                      {{Expr::AggOp::kSum, "Nope", "S"}});
  EXPECT_FALSE(Evaluate(*bad_input, SalesCatalog(), SalesDb()).ok());
}

TEST(AggregateTest, PrintersAndSimplifyPreserveIt) {
  ExprRef cube = Expr::Aggregate(
      Expr::Select(Expr::Select(Expr::Scan("Sales"),
                                ColEqLit("Region", Value::String("EU"))),
                   Lit(Value::Bool(true))),
      {"Product"}, {{Expr::AggOp::kSum, "Amount", "Total"}});
  EXPECT_NE(cube->ToString().find("γ"), std::string::npos);
  EXPECT_NE(cube->ToSql().find("GROUP BY Product"), std::string::npos);

  ExprRef simplified = Simplify(cube);
  EXPECT_LT(simplified->NodeCount(), cube->NodeCount());
  auto a = Evaluate(*cube, SalesCatalog(), SalesDb());
  auto b = Evaluate(*simplified, SalesCatalog(), SalesDb());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->SetEquals(*b));
}

}  // namespace
}  // namespace mm2::algebra
