// Tests for the algebra simplifier: every rewrite must preserve semantics
// (checked by evaluating original and simplified plans on data) while
// reducing operator count on the naive plans TransGen emits.
#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/optimize.h"
#include "model/schema.h"
#include "modelgen/modelgen.h"
#include "transgen/transgen.h"

namespace mm2::algebra {
namespace {

using instance::Instance;
using instance::Value;

Catalog TestCatalog() {
  Catalog c;
  c.Add("R", {"a", "b"});
  return c;
}

Instance TestDb() {
  Instance db;
  db.DeclareRelation("R", 2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(db.Insert("R", {Value::Int64(i),
                                Value::String(i % 2 == 0 ? "x" : "y")})
                    .ok());
  }
  return db;
}

void ExpectSameSemantics(const ExprRef& original, const ExprRef& simplified) {
  Catalog catalog = TestCatalog();
  Instance db = TestDb();
  auto a = Evaluate(*original, catalog, db);
  auto b = Evaluate(*simplified, catalog, db);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->columns, b->columns);
  EXPECT_TRUE(a->SetEquals(*b))
      << "original:\n" << original->ToString() << "\nsimplified:\n"
      << simplified->ToString();
}

TEST(FoldScalarTest, LiteralComparisons) {
  ScalarRef lit = FoldScalar(
      Scalar::Eq(Lit(Value::Int64(3)), Lit(Value::Int64(3))));
  ASSERT_EQ(lit->kind(), Scalar::Kind::kLiteral);
  EXPECT_EQ(lit->literal(), Value::Bool(true));
  EXPECT_EQ(FoldScalar(Scalar::Compare(Scalar::CompareOp::kLt,
                                       Lit(Value::Int64(5)),
                                       Lit(Value::Int64(3))))
                ->literal(),
            Value::Bool(false));
}

TEST(FoldScalarTest, BooleanIdentities) {
  ScalarRef col = Col("a");
  ScalarRef pred = Scalar::Eq(col, Lit(Value::Int64(1)));
  // TRUE AND p -> p.
  ScalarRef folded =
      FoldScalar(Scalar::And({Lit(Value::Bool(true)), pred}));
  EXPECT_EQ(folded->ToString(), pred->ToString());
  // FALSE AND p -> FALSE.
  EXPECT_EQ(FoldScalar(Scalar::And({Lit(Value::Bool(false)), pred}))
                ->literal(),
            Value::Bool(false));
  // p OR TRUE -> TRUE.
  EXPECT_EQ(FoldScalar(Scalar::Or({pred, Lit(Value::Bool(true))}))
                ->literal(),
            Value::Bool(true));
  // NOT FALSE -> TRUE.
  EXPECT_EQ(FoldScalar(Scalar::Not(Lit(Value::Bool(false))))->literal(),
            Value::Bool(true));
  // IS NULL of literals.
  EXPECT_EQ(FoldScalar(Scalar::IsNull(Lit(Value::Null())))->literal(),
            Value::Bool(true));
  EXPECT_EQ(FoldScalar(Scalar::IsNull(Lit(Value::Int64(1))))->literal(),
            Value::Bool(false));
}

TEST(FoldScalarTest, CaseDeadBranchElimination) {
  // CASE WHEN FALSE THEN "a" WHEN TRUE THEN "b" ELSE "c" -> "b".
  ScalarRef folded = FoldScalar(Scalar::Case(
      {{Lit(Value::Bool(false)), Lit(Value::String("a"))},
       {Lit(Value::Bool(true)), Lit(Value::String("b"))}},
      Lit(Value::String("c"))));
  ASSERT_EQ(folded->kind(), Scalar::Kind::kLiteral);
  EXPECT_EQ(folded->literal(), Value::String("b"));
  // A dynamic branch before a static TRUE keeps the dynamic branch and
  // turns the TRUE's result into the ELSE.
  ScalarRef mixed = FoldScalar(Scalar::Case(
      {{Scalar::Eq(Col("a"), Lit(Value::Int64(1))), Lit(Value::String("a"))},
       {Lit(Value::Bool(true)), Lit(Value::String("b"))}},
      Lit(Value::String("c"))));
  ASSERT_EQ(mixed->kind(), Scalar::Kind::kCase);
  EXPECT_EQ(mixed->case_branches().size(), 1u);
  EXPECT_EQ(mixed->case_else()->literal(), Value::String("b"));
}

TEST(SimplifyTest, SelectSelectMerges) {
  ExprRef nested = Expr::Select(
      Expr::Select(Expr::Scan("R"), ColEqLit("b", Value::String("x"))),
      Scalar::Compare(Scalar::CompareOp::kLt, Col("a"), Lit(Value::Int64(6))));
  ExprRef simplified = Simplify(nested);
  EXPECT_LT(simplified->NodeCount(), nested->NodeCount());
  ExpectSameSemantics(nested, simplified);
}

TEST(SimplifyTest, SelectTrueDrops) {
  ExprRef guarded = Expr::Select(Expr::Scan("R"), Lit(Value::Bool(true)));
  ExprRef simplified = Simplify(guarded);
  EXPECT_EQ(simplified->kind(), Expr::Kind::kScan);
  ExpectSameSemantics(guarded, simplified);
}

TEST(SimplifyTest, ProjectProjectComposes) {
  ExprRef inner = Expr::Project(
      Expr::Scan("R"),
      {{"x", Col("a")},
       {"flag", Scalar::Eq(Col("b"), Lit(Value::String("x")))}});
  ExprRef outer = Expr::Project(
      inner, {{"y", Col("x")}, {"was_x", Col("flag")}});
  ExprRef simplified = Simplify(outer);
  EXPECT_EQ(simplified->kind(), Expr::Kind::kProject);
  EXPECT_EQ(simplified->children()[0]->kind(), Expr::Kind::kScan);
  ExpectSameSemantics(outer, simplified);
}

TEST(SimplifyTest, DistinctDistinctAndSingletonUnion) {
  ExprRef doubled = Expr::Distinct(Expr::Distinct(Expr::Scan("R")));
  ExprRef simplified = Simplify(doubled);
  EXPECT_EQ(simplified->NodeCount(), 2u);  // Distinct(Scan)
  ExpectSameSemantics(doubled, simplified);

  ExprRef single_union = Expr::Union({Expr::Scan("R")});
  EXPECT_EQ(Simplify(single_union)->kind(), Expr::Kind::kScan);
}

TEST(SimplifyTest, PreservesJoinsAndDifference) {
  Catalog catalog;
  catalog.Add("R", {"a", "b"});
  catalog.Add("S", {"c", "d"});
  Instance db = TestDb();
  db.DeclareRelation("S", 2);
  ASSERT_TRUE(db.Insert("S", {Value::Int64(1), Value::String("q")}).ok());
  ExprRef join = Expr::Join(Expr::Scan("R"), Expr::Scan("S"),
                            Expr::JoinKind::kInner, {{"a", "c"}});
  ExprRef simplified = Simplify(join);
  auto a = Evaluate(*join, catalog, db);
  auto b = Evaluate(*simplified, catalog, db);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->SetEquals(*b));
}

TEST(SimplifyTest, ShrinksTransGenQueryView) {
  // The Fig. 2/3 query view contains composable projections; simplifying
  // must shrink it while keeping the roundtrip exact.
  mm2::model::Schema er =
      mm2::model::SchemaBuilder("ER",
                                mm2::model::Metamodel::kEntityRelationship)
          .EntityType("Person", "",
                      {{"Id", mm2::model::DataType::Int64()},
                       {"Name", mm2::model::DataType::String()}})
          .EntityType("Employee", "Person",
                      {{"Dept", mm2::model::DataType::String()}})
          .EntitySet("Persons", "Person")
          .Build();
  auto generated = mm2::modelgen::ErToRelational(
      er, mm2::modelgen::InheritanceStrategy::kTablePerType);
  ASSERT_TRUE(generated.ok());
  auto views = mm2::transgen::CompileFragments(
      er, "Persons", generated->relational, generated->fragments);
  ASSERT_TRUE(views.ok());

  ExprRef simplified = Simplify(views->query_view);
  EXPECT_LE(simplified->NodeCount(), views->query_view->NodeCount());

  // Same output on data: build tables via update views, evaluate both.
  Instance entities = Instance::EmptyFor(er);
  auto layout = mm2::instance::ComputeEntitySetLayout(
      er, *er.FindEntitySet("Persons"));
  auto bob = mm2::instance::MakeEntityTuple(
      *layout, er, "Employee",
      {Value::Int64(1), Value::String("Bob"), Value::String("R&D")});
  ASSERT_TRUE(bob.ok());
  ASSERT_TRUE(entities.Insert("Persons", *bob).ok());
  Instance tables;
  ASSERT_TRUE(mm2::transgen::ApplyUpdateViews(*views, er,
                                              generated->relational, entities,
                                              &tables)
                  .ok());
  auto er_cat = Catalog::FromSchema(er);
  auto rel_cat = Catalog::FromSchema(generated->relational);
  ASSERT_TRUE(er_cat.ok() && rel_cat.ok());
  Catalog cat = *er_cat;
  cat.Merge(*rel_cat);
  auto original_out = Evaluate(*views->query_view, cat, tables);
  auto simplified_out = Evaluate(*simplified, cat, tables);
  ASSERT_TRUE(original_out.ok() && simplified_out.ok());
  EXPECT_TRUE(original_out->SetEquals(*simplified_out));
}

}  // namespace
}  // namespace mm2::algebra
