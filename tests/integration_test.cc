// Integration tests: each of the paper's worked scenarios replayed end to
// end through the public API / the engine, crossing module boundaries the
// way the examples do (and therefore guarding them in CI).
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "compose/compose.h"
#include "diff/diff.h"
#include "engine/engine.h"
#include "inverse/inverse.h"
#include "match/correspondence.h"
#include "match/matcher.h"
#include "merge/merge.h"
#include "modelgen/modelgen.h"
#include "rewrite/rewrite.h"
#include "runtime/constraints.h"
#include "runtime/runtime.h"
#include "text/sexpr.h"
#include "transgen/transgen.h"
#include "workload/generators.h"

namespace mm2 {
namespace {

using instance::Instance;
using instance::Value;
using logic::Atom;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Term V(const char* name) { return Term::Var(name); }

// ---------------------------------------------------------------------------
// Scenario 1: match -> interpret -> exchange -> query (the quickstart).
// ---------------------------------------------------------------------------
TEST(IntegrationTest, MatchToQueryPipeline) {
  model::Schema source =
      SchemaBuilder("CRM", Metamodel::kRelational)
          .Relation("Customer", {{"CustomerId", DataType::Int64()},
                                 {"FullName", DataType::String()},
                                 {"City", DataType::String()}},
                    {"CustomerId"})
          .Build();
  model::Schema target =
      SchemaBuilder("Billing", Metamodel::kRelational)
          .Relation("Client", {{"ClientId", DataType::Int64()},
                               {"Name", DataType::String()},
                               {"Town", DataType::String()}},
                    {"ClientId"})
          .Build();
  match::MatchOptions options;
  options.thesaurus = {{"city", "town"},
                       {"customer", "client"},
                       {"fullname", "name"}};
  match::SchemaMatcher matcher(options);
  match::MatchResult proposals = matcher.Match(source, target);
  std::vector<match::Correspondence> reviewed;
  for (const match::Correspondence& c : proposals.best) {
    if (!c.source.attribute.empty()) reviewed.push_back(c);
  }
  ASSERT_GE(reviewed.size(), 3u) << proposals.ToString();

  auto constraints = match::InterpretCorrespondences(source, "Customer",
                                                     target, "Client",
                                                     reviewed);
  ASSERT_TRUE(constraints.ok()) << constraints.status();
  auto mapping = match::MappingFromConstraints("m", source, target,
                                               *constraints);
  ASSERT_TRUE(mapping.ok());

  Instance db = Instance::EmptyFor(source);
  ASSERT_TRUE(db.Insert("Customer", {Value::Int64(1), Value::String("Ada"),
                                     Value::String("London")})
                  .ok());
  auto exchanged = runtime::Exchange(*mapping, db);
  ASSERT_TRUE(exchanged.ok());
  logic::ConjunctiveQuery q;
  q.head = Atom{"Q", {V("n")}};
  q.body = {Atom{"Client", {V("i"), V("n"), V("t")}}};
  auto answers = chase::CertainAnswers(q, exchanged->target);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][0], Value::String("Ada"));

  // The same query answered without materialization agrees.
  auto rewritten = rewrite::AnswerOnSource(*mapping, q, db);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(*rewritten, *answers);
}

// ---------------------------------------------------------------------------
// Scenario 2: ModelGen -> TransGen -> update propagation -> constraint
// check (the wrapper-generation pipeline on a generated hierarchy).
// ---------------------------------------------------------------------------
TEST(IntegrationTest, WrapperPipelineOnGeneratedHierarchy) {
  model::Schema er = workload::MakeHierarchy(2, 2, 3);
  workload::Rng rng(77);
  Instance entities = workload::MakeHierarchyInstance(er, 3, &rng);

  auto generated = modelgen::ErToRelational(
      er, modelgen::InheritanceStrategy::kTablePerType);
  ASSERT_TRUE(generated.ok());
  auto views = transgen::CompileFragments(er, "Objects",
                                          generated->relational,
                                          generated->fragments);
  ASSERT_TRUE(views.ok());

  runtime::UpdatePropagator propagator(*views, generated->fragments, er,
                                       generated->relational);
  ASSERT_TRUE(propagator.Initialize(entities).ok());
  std::size_t notifications = 0;
  propagator.Subscribe([&](const std::string&, const runtime::Delta&) {
    ++notifications;
  });

  // Insert a leaf-type entity and verify tables stay key-consistent.
  auto layout =
      instance::ComputeEntitySetLayout(er, *er.FindEntitySet("Objects"));
  ASSERT_TRUE(layout.ok());
  std::string leaf = er.entity_types().back().name;
  auto attrs = er.AllAttributesOf(leaf);
  ASSERT_TRUE(attrs.ok());
  std::vector<Value> values = {Value::Int64(999)};
  for (std::size_t i = 1; i < attrs->size(); ++i) {
    values.push_back(Value::String("v"));
  }
  auto tuple = instance::MakeEntityTuple(*layout, er, leaf, values);
  ASSERT_TRUE(tuple.ok());
  runtime::EntityOp op;
  op.kind = runtime::EntityOp::Kind::kInsert;
  op.entity = *tuple;
  auto deltas = propagator.Apply(op);
  ASSERT_TRUE(deltas.ok());
  EXPECT_GT(notifications, 0u);
  // TPT writes every table on the leaf's path: depth 2 + root = 3 tables.
  EXPECT_EQ(deltas->size(), 3u);

  // Key egds hold on every table.
  std::vector<logic::Egd> keys;
  for (const model::Relation& r : generated->relational.relations()) {
    if (r.arity() < 2) continue;
    logic::Egd egd;
    Atom a1;
    Atom a2;
    a1.relation = r.name();
    a2.relation = r.name();
    a1.terms.push_back(V("k"));
    a2.terms.push_back(V("k"));
    for (std::size_t i = 1; i < r.arity(); ++i) {
      a1.terms.push_back(Term::Var("x" + std::to_string(i)));
      a2.terms.push_back(Term::Var("y" + std::to_string(i)));
    }
    egd.body = {a1, a2};
    egd.left = "x1";
    egd.right = "y1";
    keys.push_back(std::move(egd));
  }
  EXPECT_TRUE(runtime::CheckEgds(propagator.tables(), keys).empty());
}

// ---------------------------------------------------------------------------
// Scenario 3: the full Section 6 evolution flow through the engine script,
// including Diff of the genuinely new parts and an exact inverse.
// ---------------------------------------------------------------------------
TEST(IntegrationTest, EvolutionScriptWithDiffAndInverse) {
  engine::Engine engine;
  model::Schema s =
      SchemaBuilder("S", Metamodel::kRelational)
          .Relation("Data", {{"Id", DataType::Int64()},
                             {"A", DataType::String()},
                             {"B", DataType::String()}},
                    {"Id"})
          .Build();
  model::Schema sp =
      SchemaBuilder("Sp", Metamodel::kRelational)
          .Relation("Left", {{"Id", DataType::Int64()},
                             {"A", DataType::String()}},
                    {"Id"})
          .Relation("Right", {{"Id", DataType::Int64()},
                              {"B", DataType::String()}},
                    {"Id"})
          .Relation("Audit", {{"Id", DataType::Int64()},
                              {"When", DataType::Date()}},
                    {"Id"})
          .Build();
  Tgd split;
  split.body = {Atom{"Data", {V("i"), V("a"), V("b")}}};
  split.head = {Atom{"Left", {V("i"), V("a")}},
                Atom{"Right", {V("i"), V("b")}}};
  ASSERT_TRUE(engine.repo().PutSchema(s).ok());
  ASSERT_TRUE(engine.repo().PutSchema(sp).ok());
  ASSERT_TRUE(
      engine.repo().PutMapping(Mapping::FromTgds("evolve", s, sp, {split}))
          .ok());
  Instance db = Instance::EmptyFor(s);
  ASSERT_TRUE(db.Insert("Data", {Value::Int64(1), Value::String("a"),
                                 Value::String("b")})
                  .ok());
  ASSERT_TRUE(engine.repo().PutInstance("D", db).ok());

  auto log = engine.RunScript(R"(
exchange Dp evolve D
inverse unevolve evolve
exchange Dback unevolve Dp
invert evolveInv evolve
diff NewParts newMap evolveInv
)");
  ASSERT_TRUE(log.ok()) << log.status();

  // Migration landed.
  auto dp = engine.repo().GetInstance("Dp");
  ASSERT_TRUE(dp.ok());
  EXPECT_EQ(dp->Find("Left")->size(), 1u);
  // The inverse migrated it back exactly.
  auto dback = engine.repo().GetInstance("Dback");
  ASSERT_TRUE(dback.ok());
  EXPECT_TRUE(dback->Find("Data")->Contains(
      {Value::Int64(1), Value::String("a"), Value::String("b")}));
  // Diff found the Audit relation S never carried.
  auto new_parts = engine.repo().GetSchema("NewParts");
  ASSERT_TRUE(new_parts.ok());
  ASSERT_EQ(new_parts->relations().size(), 1u);
  EXPECT_EQ(new_parts->relations()[0].name(), "Audit");
}

// ---------------------------------------------------------------------------
// Scenario 4: merge two independently-evolved variants and pull data from
// both through the projection mappings.
// ---------------------------------------------------------------------------
TEST(IntegrationTest, MergeThenProjectBothWays) {
  workload::Rng rng(88);
  model::Schema base = workload::RandomRelationalSchema("Base", 3, 4, &rng);
  workload::PerturbedSchema variant = workload::PerturbNames(base, &rng);
  auto result = merge::Merge(base, variant.schema, variant.reference);
  ASSERT_TRUE(result.ok());

  Instance merged_db = Instance::EmptyFor(result->merged);
  for (const model::Relation& r : result->merged.relations()) {
    instance::Tuple t;
    for (std::size_t i = 0; i < r.arity(); ++i) {
      t.push_back(r.IsKeyAttribute(i)
                      ? Value::Int64(1)
                      : Value::String("v" + std::to_string(i)));
    }
    merged_db.InsertUnchecked(r.name(), std::move(t));
  }
  auto left = chase::RunChase(result->to_left, merged_db);
  auto right = chase::RunChase(result->to_right, merged_db);
  ASSERT_TRUE(left.ok() && right.ok());
  EXPECT_EQ(left->target.TotalTuples(), base.relations().size());
  EXPECT_EQ(right->target.TotalTuples(), variant.schema.relations().size());
}

// ---------------------------------------------------------------------------
// Scenario 5: text round trip through the engine — load from text, run the
// engine, save, reload.
// ---------------------------------------------------------------------------
TEST(IntegrationTest, TextInEngineOutText) {
  auto schema = text::ParseSchema(R"(
(schema S relational
  (relation Names (attr SID int64 key) (attr Name string))
  (relation Addresses (attr SID int64 key) (attr Address string)
            (attr Country string))))");
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto sp = text::ParseSchema(R"(
(schema Sp relational
  (relation NamesP (attr SID int64 key) (attr Name string))))");
  ASSERT_TRUE(sp.ok());
  auto db = text::ParseInstance(R"(
(instance (Names (1 "Ada") (2 "Bob")) (Addresses (1 "x" "US"))))");
  ASSERT_TRUE(db.ok());

  Tgd copy;
  copy.body = {Atom{"Names", {V("s"), V("n")}}};
  copy.head = {Atom{"NamesP", {V("s"), V("n")}}};

  engine::Engine engine;
  ASSERT_TRUE(engine.repo().PutSchema(*schema).ok());
  ASSERT_TRUE(engine.repo().PutSchema(*sp).ok());
  ASSERT_TRUE(engine.repo()
                  .PutMapping(Mapping::FromTgds("m", *schema, *sp, {copy}))
                  .ok());
  ASSERT_TRUE(engine.repo().PutInstance("D", *db).ok());
  ASSERT_TRUE(engine.RunScript("exchange Dp m D").ok());

  auto out = engine.repo().GetInstance("Dp");
  ASSERT_TRUE(out.ok());
  auto reparsed = text::ParseInstance(text::InstanceToText(*out));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed->Equals(*out));
  EXPECT_EQ(reparsed->Find("NamesP")->size(), 2u);
}

}  // namespace
}  // namespace mm2
