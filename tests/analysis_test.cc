// Tests for the static mapping-analysis subsystem: position/rule graph
// construction, weak-acyclicity classification (including agreement with
// the logic-layer oracle on random rule sets), stratification soundness
// and determinism, the predicted chase bounds against observed runs, and
// the text/JSON/DOT renderings.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "chase/chase.h"
#include "instance/instance.h"
#include "instance/value.h"
#include "logic/acyclicity.h"
#include "logic/formula.h"
#include "logic/mapping.h"
#include "model/schema.h"
#include "workload/generators.h"

namespace mm2::analysis {
namespace {

using instance::Instance;
using instance::Value;
using logic::Atom;
using logic::Egd;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;
using workload::Rng;

Term V(const char* name) { return Term::Var(name); }

// The Fig. 6 shape: two s-t tgds, one with an existential, plus a target
// key egd.
struct ExampleMapping {
  model::Schema source;
  model::Schema target;
  Mapping mapping;
};

ExampleMapping MakeExample() {
  model::Schema s =
      SchemaBuilder("S", Metamodel::kRelational)
          .Relation("Emp", {{"eid", DataType::Int64()},
                            {"dept", DataType::Int64()}})
          .Build();
  model::Schema t =
      SchemaBuilder("T", Metamodel::kRelational)
          .Relation("Worker", {{"eid", DataType::Int64()},
                               {"mgr", DataType::Int64()}})
          .Relation("Dept", {{"did", DataType::Int64()}})
          .Build();
  Tgd emp;
  emp.body = {Atom{"Emp", {V("e"), V("d")}}};
  emp.head = {Atom{"Worker", {V("e"), V("m")}}};  // m existential
  Tgd dept;
  dept.body = {Atom{"Emp", {V("e"), V("d")}}};
  dept.head = {Atom{"Dept", {V("d")}}};
  Egd key;
  {
    Atom a1{"Worker", {V("k"), V("u")}};
    Atom a2{"Worker", {V("k"), V("v")}};
    key.body = {a1, a2};
    key.left = "u";
    key.right = "v";
  }
  Mapping m = Mapping::FromTgds("ex", s, t, {emp, dept}, {key});
  return {std::move(s), std::move(t), std::move(m)};
}

TEST(AnalysisTest, ExchangeGraphIsNamespacedAndAcyclic) {
  ExampleMapping ex = MakeExample();
  MappingAnalysis a = AnalyzeMapping(ex.mapping);
  EXPECT_EQ(a.mode, ChaseMode::kExchange);
  ASSERT_EQ(a.rules.size(), 3u);  // 2 tgds + 1 egd, chase slot order
  EXPECT_EQ(a.rules[0].kind, "tgd");
  EXPECT_EQ(a.rules[1].kind, "tgd");
  EXPECT_EQ(a.rules[2].kind, "egd");
  // S-t reads land in src:, writes in tgt: — the source is immutable.
  EXPECT_EQ(a.rules[0].reads, std::vector<std::string>{"src:Emp"});
  EXPECT_EQ(a.rules[0].writes, std::vector<std::string>{"tgt:Worker"});
  EXPECT_TRUE(a.rules[0].creates_values);
  EXPECT_FALSE(a.rules[1].creates_values);
  // The egd reads the target and conservatively writes the whole written
  // vocabulary (a unification can rewrite nulls anywhere).
  EXPECT_EQ(a.rules[2].reads, std::vector<std::string>{"tgt:Worker"});
  std::set<std::string> egd_writes(a.rules[2].writes.begin(),
                                   a.rules[2].writes.end());
  EXPECT_TRUE(egd_writes.count("tgt:Worker"));
  EXPECT_TRUE(egd_writes.count("tgt:Dept"));
  // S-t tgds can never be cyclic: nothing writes src:.
  EXPECT_TRUE(a.weakly_acyclic);
  EXPECT_TRUE(a.terminating());
  EXPECT_TRUE(a.cycle.empty());
  // Positions carry the same namespaces.
  bool saw_src = false;
  bool saw_tgt = false;
  for (const PositionNode& p : a.positions) {
    saw_src |= p.name.rfind("src:", 0) == 0;
    saw_tgt |= p.name.rfind("tgt:", 0) == 0;
  }
  EXPECT_TRUE(saw_src);
  EXPECT_TRUE(saw_tgt);
  // One special edge: Emp.e feeds the invented Worker.mgr position.
  std::size_t special = 0;
  for (const PositionEdge& e : a.position_edges) special += e.special;
  EXPECT_GT(special, 0u);
}

TEST(AnalysisTest, StrataAreTopologicallySound) {
  ExampleMapping ex = MakeExample();
  MappingAnalysis a = AnalyzeMapping(ex.mapping);
  // Every rule is in exactly one stratum, and the stratum field agrees
  // with the partition.
  std::vector<int> seen(a.rules.size(), 0);
  for (std::size_t s = 0; s < a.strata.size(); ++s) {
    for (std::size_t rule : a.strata[s]) {
      ASSERT_LT(rule, a.rules.size());
      EXPECT_EQ(a.rules[rule].stratum, s);
      ++seen[rule];
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  // Dependency edges never point backwards across strata.
  for (const RuleEdge& e : a.rule_edges) {
    EXPECT_LE(a.rules[e.from].stratum, a.rules[e.to].stratum);
  }
  // The tgds write what the egd reads, so the egd sits strictly later.
  EXPECT_GT(a.rules[2].stratum, a.rules[0].stratum);
  // Analysis is deterministic: a second run is structurally identical.
  MappingAnalysis b = AnalyzeMapping(ex.mapping);
  EXPECT_EQ(a.strata, b.strata);
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

TEST(AnalysisTest, DivergingClosureIsClassifiedWithWitnessCycle) {
  // R(x,y) -> exists z. R(y,z): the canonical non-terminating rule.
  Tgd walk;
  walk.body = {Atom{"R", {V("x"), V("y")}}};
  walk.head = {Atom{"R", {V("y"), V("z")}}};
  MappingAnalysis a = AnalyzeClosure({walk}, {});
  EXPECT_EQ(a.mode, ChaseMode::kClosure);
  EXPECT_FALSE(a.weakly_acyclic);
  EXPECT_EQ(a.termination, Termination::kPotentiallyNonTerminating);
  // The witness cycle is closed (first == last) and touches R's columns.
  ASSERT_GE(a.cycle.size(), 2u);
  EXPECT_EQ(a.cycle.front(), a.cycle.back());
  for (const std::string& pos : a.cycle) {
    EXPECT_EQ(pos.rfind("R.", 0), 0u) << pos;
  }
  // The bounds saturate rather than promise termination.
  EXPECT_EQ(a.ToText().find("weakly acyclic"), std::string::npos);
  EXPECT_NE(a.ToText().find("potentially non-terminating"),
            std::string::npos);
}

TEST(AnalysisTest, RecursionIsMarkedButFullTgdsTerminate) {
  // Transitive closure: recursive (self-loop in the rule graph) yet full,
  // hence terminating.
  Tgd copy;
  copy.body = {Atom{"R", {V("x"), V("y")}}};
  copy.head = {Atom{"T", {V("x"), V("y")}}};
  Tgd step;
  step.body = {Atom{"T", {V("x"), V("y")}}, Atom{"R", {V("y"), V("z")}}};
  step.head = {Atom{"T", {V("x"), V("z")}}};
  MappingAnalysis a = AnalyzeClosure({copy, step}, {});
  EXPECT_TRUE(a.weakly_acyclic);
  EXPECT_TRUE(a.terminating());
  ASSERT_EQ(a.rules.size(), 2u);
  EXPECT_FALSE(a.rules[0].recursive);
  EXPECT_TRUE(a.rules[1].recursive);
  // copy feeds step, so copy's stratum comes first.
  EXPECT_LE(a.rules[0].stratum, a.rules[1].stratum);
}

TEST(AnalysisTest, AgreesWithLogicLayerOracleOnRandomRuleSets) {
  // The logic layer's CheckWeakAcyclicity is an independent
  // implementation of the same FKMP test (single vocabulary). 200 random
  // closure rule sets must classify identically.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed * 2654435761 + 17);
    std::size_t rels = 2 + rng.Uniform(3);
    std::vector<std::size_t> arity(rels);
    for (std::size_t r = 0; r < rels; ++r) arity[r] = 1 + rng.Uniform(3);
    std::vector<Tgd> tgds;
    std::size_t rules = 1 + rng.Uniform(4);
    for (std::size_t i = 0; i < rules; ++i) {
      Tgd tgd;
      std::vector<std::string> vars;
      std::size_t body_atoms = 1 + rng.Uniform(2);
      for (std::size_t b = 0; b < body_atoms; ++b) {
        std::size_t rel = rng.Uniform(rels);
        Atom atom;
        atom.relation = "R" + std::to_string(rel);
        for (std::size_t c = 0; c < arity[rel]; ++c) {
          if (!vars.empty() && rng.Chance(0.5)) {
            atom.terms.push_back(Term::Var(vars[rng.Uniform(vars.size())]));
          } else {
            std::string v = "x" + std::to_string(vars.size());
            vars.push_back(v);
            atom.terms.push_back(Term::Var(std::move(v)));
          }
        }
        tgd.body.push_back(std::move(atom));
      }
      std::size_t head_atoms = 1 + rng.Uniform(2);
      std::size_t existentials = 0;
      for (std::size_t h = 0; h < head_atoms; ++h) {
        std::size_t rel = rng.Uniform(rels);
        Atom atom;
        atom.relation = "R" + std::to_string(rel);
        for (std::size_t c = 0; c < arity[rel]; ++c) {
          if (rng.Chance(0.3)) {
            atom.terms.push_back(
                Term::Var("y" + std::to_string(existentials++)));
          } else {
            atom.terms.push_back(Term::Var(vars[rng.Uniform(vars.size())]));
          }
        }
        tgd.head.push_back(std::move(atom));
      }
      tgds.push_back(std::move(tgd));
    }
    MappingAnalysis a = AnalyzeClosure(tgds, {});
    logic::AcyclicityReport oracle = logic::CheckWeakAcyclicity(tgds);
    EXPECT_EQ(a.weakly_acyclic, oracle.weakly_acyclic) << "seed " << seed;
    EXPECT_EQ(a.terminating(), oracle.weakly_acyclic) << "seed " << seed;
  }
}

TEST(AnalysisTest, PredictedRoundsBoundObservedChase) {
  // Known-positive acceptance case: a weakly acyclic mapping's predicted
  // round bound must dominate the rounds a real chase takes, at the
  // chase's own active-domain size.
  ExampleMapping ex = MakeExample();
  MappingAnalysis a = AnalyzeMapping(ex.mapping);
  Instance db = Instance::EmptyFor(ex.source);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        db.Insert("Emp", {Value::Int64(i), Value::Int64(i % 2)}).ok());
  }
  auto result = chase::RunChase(ex.mapping, db, chase::ChaseOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
  std::uint64_t domain = 12;  // 6 eids + 2 depts fit comfortably
  EXPECT_LE(result->stats.rounds, a.PredictedRounds(domain));
  EXPECT_LE(result->target.TotalTuples(), a.PredictedTuples(domain));
  // Bounds are monotone in the domain and saturate instead of wrapping.
  EXPECT_LE(a.PredictedValues(10), a.PredictedValues(1000));
  Tgd wide;
  wide.body = {Atom{"Emp", {V("a"), V("b")}},
               Atom{"Emp", {V("c"), V("d")}},
               Atom{"Emp", {V("e"), V("f")}},
               Atom{"Emp", {V("g"), V("h")}}};
  wide.head = {Atom{"Dept", {V("z")}}};  // z existential
  Mapping wide_mapping =
      Mapping::FromTgds("wide", ex.source, ex.target, {wide});
  MappingAnalysis w = AnalyzeMapping(wide_mapping);
  EXPECT_LE(w.PredictedValues(1u << 20),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(AnalysisTest, RenderingsAreWellFormed) {
  ExampleMapping ex = MakeExample();
  MappingAnalysis a = AnalyzeMapping(ex.mapping);
  std::string json = a.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"exchange\""), std::string::npos);
  EXPECT_NE(json.find("\"predicted\""), std::string::npos);
  std::string dot = a.ToDot();
  EXPECT_EQ(dot.rfind("digraph mapping_analysis {", 0), 0u);
  // Braces balance.
  int depth = 0;
  for (char c : dot) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  // Every rule label appears in the DOT body, escaped or not.
  EXPECT_NE(dot.find("cluster_stratum_0"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // special edge
}

}  // namespace
}  // namespace mm2::analysis
