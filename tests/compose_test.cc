#include <gtest/gtest.h>

#include "chase/chase.h"
#include "compose/compose.h"
#include "logic/formula.h"
#include "model/schema.h"

namespace mm2::compose {
namespace {

using instance::Instance;
using instance::Value;
using logic::Atom;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Term V(const char* name) { return Term::Var(name); }
Term C(const char* s) { return Term::Const(Value::String(s)); }

model::Schema OneRelation(const char* schema, const char* rel,
                          std::size_t arity) {
  SchemaBuilder b(schema, Metamodel::kRelational);
  std::vector<model::SchemaBuilder::AttributeSpec> attrs;
  for (std::size_t i = 0; i < arity; ++i) {
    attrs.push_back({"a" + std::to_string(i), DataType::String()});
  }
  b.Relation(rel, std::move(attrs));
  return std::move(b).Build();
}

TEST(ComposeTest, FullCopyChainsStayFirstOrder) {
  // R -> T, T -> U: composing two copy mappings gives R -> U.
  Tgd rt;
  rt.body = {Atom{"R", {V("x"), V("y")}}};
  rt.head = {Atom{"T", {V("x"), V("y")}}};
  Tgd tu;
  tu.body = {Atom{"T", {V("x"), V("y")}}};
  tu.head = {Atom{"U", {V("y"), V("x")}}};

  Mapping m12 = Mapping::FromTgds("m12", OneRelation("S1", "R", 2),
                                  OneRelation("S2", "T", 2), {rt});
  Mapping m23 = Mapping::FromTgds("m23", OneRelation("S2", "T", 2),
                                  OneRelation("S3", "U", 2), {tu});
  ComposeStats stats;
  auto composed = Compose(m12, m23, {}, &stats);
  ASSERT_TRUE(composed.ok()) << composed.status();
  EXPECT_TRUE(stats.first_order);
  EXPECT_FALSE(composed->is_second_order());
  ASSERT_EQ(composed->tgds().size(), 1u);
  const Tgd& tgd = composed->tgds()[0];
  EXPECT_EQ(tgd.body.size(), 1u);
  EXPECT_EQ(tgd.body[0].relation, "R");
  EXPECT_EQ(tgd.head[0].relation, "U");
  // U(y, x): the swap survived composition.
  EXPECT_EQ(tgd.head[0].terms[0], tgd.body[0].terms[1]);
  EXPECT_EQ(tgd.head[0].terms[1], tgd.body[0].terms[0]);
}

TEST(ComposeTest, SemanticsMatchTwoStepExchange) {
  // Random-ish chain with an existential in the middle; the composed
  // mapping must produce (up to homomorphic equivalence) the same target
  // as chasing the two mappings in sequence.
  Tgd m12_tgd;
  m12_tgd.body = {Atom{"R", {V("x"), V("y")}}};
  m12_tgd.head = {Atom{"T", {V("x"), V("e")}}, Atom{"W", {V("e"), V("y")}}};
  Tgd m23_tgd;
  m23_tgd.body = {Atom{"T", {V("x"), V("z")}}, Atom{"W", {V("z"), V("y")}}};
  m23_tgd.head = {Atom{"U", {V("x"), V("y")}}};

  SchemaBuilder s2b("S2", Metamodel::kRelational);
  s2b.Relation("T", {{"a", DataType::String()}, {"b", DataType::String()}});
  s2b.Relation("W", {{"a", DataType::String()}, {"b", DataType::String()}});
  model::Schema s2 = std::move(s2b).Build();

  Mapping m12 = Mapping::FromTgds("m12", OneRelation("S1", "R", 2), s2,
                                  {m12_tgd});
  Mapping m23 =
      Mapping::FromTgds("m23", s2, OneRelation("S3", "U", 2), {m23_tgd});
  auto composed = Compose(m12, m23);
  ASSERT_TRUE(composed.ok()) << composed.status();

  Instance source;
  source.DeclareRelation("R", 2);
  ASSERT_TRUE(
      source.Insert("R", {Value::String("a"), Value::String("b")}).ok());
  ASSERT_TRUE(
      source.Insert("R", {Value::String("c"), Value::String("d")}).ok());

  auto two_step_mid = chase::RunChase(m12, source);
  ASSERT_TRUE(two_step_mid.ok());
  auto two_step = chase::RunChase(m23, two_step_mid->target);
  ASSERT_TRUE(two_step.ok());
  auto direct = chase::RunChase(*composed, source);
  ASSERT_TRUE(direct.ok()) << direct.status();

  EXPECT_TRUE(chase::ExistsHomomorphism(direct->target, two_step->target));
  EXPECT_TRUE(chase::ExistsHomomorphism(two_step->target, direct->target));
  EXPECT_EQ(direct->target.Find("U")->size(), 2u);
}

TEST(ComposeTest, SharedExistentialForcesSecondOrder) {
  // m12: R(x) -> exists e. T(x, e)
  // m23 reads T twice in one clause AND uses e in two different output
  // relations via separate clauses: the Skolem function ends up in two
  // output clauses, so no deskolemization.
  Tgd m12_tgd;
  m12_tgd.body = {Atom{"R", {V("x")}}};
  m12_tgd.head = {Atom{"T", {V("x"), V("e")}}};
  Tgd m23_a;
  m23_a.body = {Atom{"T", {V("x"), V("z")}}};
  m23_a.head = {Atom{"U", {V("x"), V("z")}}};
  Tgd m23_b;
  m23_b.body = {Atom{"T", {V("x"), V("z")}}};
  m23_b.head = {Atom{"P", {V("z")}}};

  SchemaBuilder s3b("S3", Metamodel::kRelational);
  s3b.Relation("U", {{"a", DataType::String()}, {"b", DataType::String()}});
  s3b.Relation("P", {{"a", DataType::String()}});
  Mapping m12 = Mapping::FromTgds("m12", OneRelation("S1", "R", 1),
                                  OneRelation("S2", "T", 2), {m12_tgd});
  Mapping m23 = Mapping::FromTgds("m23", OneRelation("S2", "T", 2),
                                  std::move(s3b).Build(), {m23_a, m23_b});
  auto composed = Compose(m12, m23);
  ASSERT_TRUE(composed.ok());
  EXPECT_TRUE(composed->is_second_order());
  // Still executable: the chase interprets the Skolem terms, and both U
  // and P see the SAME invented value per x.
  Instance source;
  source.DeclareRelation("R", 1);
  ASSERT_TRUE(source.Insert("R", {Value::String("a")}).ok());
  auto result = chase::RunChase(*composed, source);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->target.Find("U")->size(), 1u);
  ASSERT_EQ(result->target.Find("P")->size(), 1u);
  const instance::Tuple& u = *result->target.Find("U")->tuples().begin();
  const instance::Tuple& p = *result->target.Find("P")->tuples().begin();
  EXPECT_EQ(u[1], p[0]);
  EXPECT_TRUE(u[1].is_labeled_null());
}

TEST(ComposeTest, UnresolvableMidRelationDropsClause) {
  // m23 reads relation X that m12 never produces: the clause imposes no
  // S1 => S3 constraint and is dropped.
  Tgd m12_tgd;
  m12_tgd.body = {Atom{"R", {V("x")}}};
  m12_tgd.head = {Atom{"T", {V("x")}}};
  Tgd m23_tgd;
  m23_tgd.body = {Atom{"X", {V("x")}}};
  m23_tgd.head = {Atom{"U", {V("x")}}};

  SchemaBuilder s2b("S2", Metamodel::kRelational);
  s2b.Relation("T", {{"a", DataType::String()}});
  s2b.Relation("X", {{"a", DataType::String()}});
  Mapping m12 = Mapping::FromTgds("m12", OneRelation("S1", "R", 1),
                                  std::move(s2b).Build(), {m12_tgd});
  SchemaBuilder s2c("S2", Metamodel::kRelational);
  s2c.Relation("T", {{"a", DataType::String()}});
  s2c.Relation("X", {{"a", DataType::String()}});
  Mapping m23 = Mapping::FromTgds("m23", std::move(s2c).Build(),
                                  OneRelation("S3", "U", 1), {m23_tgd});
  ComposeStats stats;
  auto composed = Compose(m12, m23, {}, &stats);
  ASSERT_TRUE(composed.ok());
  EXPECT_EQ(stats.clauses_unresolvable, 1u);
  EXPECT_EQ(stats.output_clauses, 0u);
}

TEST(ComposeTest, MultipleProducersMultiplyCombinations) {
  // Two rules produce T; m23's clause reads T twice: 2^2 combinations.
  Tgd p1;
  p1.body = {Atom{"R", {V("x")}}};
  p1.head = {Atom{"T", {V("x")}}};
  Tgd p2;
  p2.body = {Atom{"S", {V("x")}}};
  p2.head = {Atom{"T", {V("x")}}};
  Tgd consumer;
  consumer.body = {Atom{"T", {V("x")}}, Atom{"T", {V("y")}}};
  consumer.head = {Atom{"U", {V("x"), V("y")}}};

  SchemaBuilder s1b("S1", Metamodel::kRelational);
  s1b.Relation("R", {{"a", DataType::String()}});
  s1b.Relation("S", {{"a", DataType::String()}});
  Mapping m12 = Mapping::FromTgds("m12", std::move(s1b).Build(),
                                  OneRelation("S2", "T", 1), {p1, p2});
  Mapping m23 = Mapping::FromTgds("m23", OneRelation("S2", "T", 1),
                                  OneRelation("S3", "U", 2), {consumer});
  ComposeStats stats;
  auto composed = Compose(m12, m23, {}, &stats);
  ASSERT_TRUE(composed.ok());
  EXPECT_EQ(stats.output_clauses, 4u);  // {R,S} x {R,S}
  EXPECT_TRUE(stats.first_order);       // full tgds: no skolem functions
}

TEST(ComposeTest, MaxClausesGuardTrips) {
  Tgd p1;
  p1.body = {Atom{"R", {V("x")}}};
  p1.head = {Atom{"T", {V("x")}}};
  Tgd p2;
  p2.body = {Atom{"S", {V("x")}}};
  p2.head = {Atom{"T", {V("x")}}};
  Tgd consumer;
  consumer.body = {Atom{"T", {V("x")}}, Atom{"T", {V("y")}},
                   Atom{"T", {V("z")}}};
  consumer.head = {Atom{"U", {V("x"), V("y")}}};

  SchemaBuilder s1b("S1", Metamodel::kRelational);
  s1b.Relation("R", {{"a", DataType::String()}});
  s1b.Relation("S", {{"a", DataType::String()}});
  Mapping m12 = Mapping::FromTgds("m12", std::move(s1b).Build(),
                                  OneRelation("S2", "T", 1), {p1, p2});
  Mapping m23 = Mapping::FromTgds("m23", OneRelation("S2", "T", 1),
                                  OneRelation("S3", "U", 2), {consumer});
  ComposeOptions options;
  options.max_clauses = 4;  // 2^3 = 8 > 4
  auto composed = Compose(m12, m23, options);
  EXPECT_EQ(composed.status().code(), StatusCode::kUnsupported);
}

TEST(ComposeTest, ConstantClashPrunesCombination) {
  // Producer emits T(x, "US"); consumer requires T(y, "EU"): vacuous.
  Tgd producer;
  producer.body = {Atom{"R", {V("x")}}};
  producer.head = {Atom{"T", {V("x"), C("US")}}};
  Tgd consumer;
  consumer.body = {Atom{"T", {V("y"), C("EU")}}};
  consumer.head = {Atom{"U", {V("y")}}};
  Mapping m12 = Mapping::FromTgds("m12", OneRelation("S1", "R", 1),
                                  OneRelation("S2", "T", 2), {producer});
  Mapping m23 = Mapping::FromTgds("m23", OneRelation("S2", "T", 2),
                                  OneRelation("S3", "U", 1), {consumer});
  ComposeStats stats;
  auto composed = Compose(m12, m23, {}, &stats);
  ASSERT_TRUE(composed.ok());
  EXPECT_EQ(stats.combinations_inconsistent, 1u);
  EXPECT_EQ(stats.output_clauses, 0u);
}

// ---------------------------------------------------------------------------
// The Fig. 6 schema evolution scenario.
// ---------------------------------------------------------------------------

model::Schema ViewSchema() {
  return SchemaBuilder("V", Metamodel::kRelational)
      .Relation("Students", {{"Name", DataType::String()},
                             {"Address", DataType::String()},
                             {"Country", DataType::String()}})
      .Build();
}

model::Schema SSchema() {
  return SchemaBuilder("S", Metamodel::kRelational)
      .Relation("Names", {{"SID", DataType::Int64()},
                          {"Name", DataType::String()}},
                {"SID"})
      .Relation("Addresses", {{"SID", DataType::Int64()},
                              {"Address", DataType::String()},
                              {"Country", DataType::String()}},
                {"SID"})
      .Build();
}

model::Schema SPrimeSchema() {
  return SchemaBuilder("Sprime", Metamodel::kRelational)
      .Relation("NamesP", {{"SID", DataType::Int64()},
                           {"Name", DataType::String()}},
                {"SID"})
      .Relation("Local", {{"SID", DataType::Int64()},
                          {"Address", DataType::String()}},
                {"SID"})
      .Relation("Foreign", {{"SID", DataType::Int64()},
                            {"Address", DataType::String()},
                            {"Country", DataType::String()}},
                {"SID"})
      .Build();
}

// mapV-S: Students(n,a,c) -> exists sid. Names(sid,n) & Addresses(sid,a,c).
Mapping MapVS() {
  Tgd tgd;
  tgd.body = {Atom{"Students", {V("n"), V("a"), V("c")}}};
  tgd.head = {Atom{"Names", {V("sid"), V("n")}},
              Atom{"Addresses", {V("sid"), V("a"), V("c")}}};
  return Mapping::FromTgds("mapVS", ViewSchema(), SSchema(), {tgd});
}

// mapS-S': Names = NamesP; US addresses -> Local; all addresses ->
// Foreign. (The sigma_{Country<>US} filter of Fig. 6 needs inequality,
// which tgds lack; routing US rows to Foreign too is set-equivalent after
// the union in the composed view — see the roundtrip check below.)
Mapping MapSSPrime() {
  Tgd names;
  names.body = {Atom{"Names", {V("sid"), V("n")}}};
  names.head = {Atom{"NamesP", {V("sid"), V("n")}}};
  Tgd local;
  local.body = {Atom{"Addresses", {V("sid"), V("a"), C("US")}}};
  local.head = {Atom{"Local", {V("sid"), V("a")}}};
  Tgd foreign;
  foreign.body = {Atom{"Addresses", {V("sid"), V("a"), V("c")}}};
  foreign.head = {Atom{"Foreign", {V("sid"), V("a"), V("c")}}};
  return Mapping::FromTgds("mapSSp", SSchema(), SPrimeSchema(),
                           {names, local, foreign});
}

TEST(ComposeFig6Test, ComposedMappingIsSecondOrderAndExecutable) {
  ComposeStats stats;
  auto composed = Compose(MapVS(), MapSSPrime(), {}, &stats);
  ASSERT_TRUE(composed.ok()) << composed.status();
  // The invented SID must be shared across NamesP/Local/Foreign clauses,
  // which s-t tgds cannot express: the result stays second-order.
  EXPECT_TRUE(composed->is_second_order());
  EXPECT_GE(stats.output_clauses, 3u);

  Instance v;
  v.DeclareRelation("Students", 3);
  ASSERT_TRUE(v.Insert("Students", {Value::String("Ada"),
                                    Value::String("12 Oak"),
                                    Value::String("US")})
                  .ok());
  ASSERT_TRUE(v.Insert("Students", {Value::String("Bob"),
                                    Value::String("5 Rue"),
                                    Value::String("FR")})
                  .ok());

  auto direct = chase::RunChase(*composed, v);
  ASSERT_TRUE(direct.ok()) << direct.status();
  auto mid = chase::RunChase(MapVS(), v);
  ASSERT_TRUE(mid.ok());
  auto two_step = chase::RunChase(MapSSPrime(), mid->target);
  ASSERT_TRUE(two_step.ok());

  EXPECT_TRUE(chase::ExistsHomomorphism(direct->target, two_step->target));
  EXPECT_TRUE(chase::ExistsHomomorphism(two_step->target, direct->target));

  // Ada (US) lands in Local; Bob does not.
  EXPECT_EQ(direct->target.Find("Local")->size(), 1u);
  EXPECT_EQ(direct->target.Find("Foreign")->size(), 2u);
  EXPECT_EQ(direct->target.Find("NamesP")->size(), 2u);
}

TEST(ComposeFig6Test, ComposedViewRecoversStudents) {
  // mapV-S' o (the view definition read back): evaluating
  //   Students = pi_{Name,Address,Country}(NamesP JOIN (Local x {US}
  //              UNION Foreign))
  // over the exchanged S' data recovers the original Students rows.
  auto composed = Compose(MapVS(), MapSSPrime());
  ASSERT_TRUE(composed.ok());

  Instance v;
  v.DeclareRelation("Students", 3);
  ASSERT_TRUE(v.Insert("Students", {Value::String("Ada"),
                                    Value::String("12 Oak"),
                                    Value::String("US")})
                  .ok());
  ASSERT_TRUE(v.Insert("Students", {Value::String("Bob"),
                                    Value::String("5 Rue"),
                                    Value::String("FR")})
                  .ok());
  auto exchanged = chase::RunChase(*composed, v);
  ASSERT_TRUE(exchanged.ok());

  logic::ConjunctiveQuery local_side;
  local_side.head = Atom{"Q", {V("n"), V("a"), C("US")}};
  local_side.body = {Atom{"NamesP", {V("sid"), V("n")}},
                     Atom{"Local", {V("sid"), V("a")}}};
  logic::ConjunctiveQuery foreign_side;
  foreign_side.head = Atom{"Q", {V("n"), V("a"), V("c")}};
  foreign_side.body = {Atom{"NamesP", {V("sid"), V("n")}},
                       Atom{"Foreign", {V("sid"), V("a"), V("c")}}};
  auto local_rows = chase::CertainAnswers(local_side, exchanged->target);
  auto foreign_rows = chase::CertainAnswers(foreign_side, exchanged->target);
  ASSERT_TRUE(local_rows.ok() && foreign_rows.ok());
  std::set<instance::Tuple> recovered(local_rows->begin(), local_rows->end());
  recovered.insert(foreign_rows->begin(), foreign_rows->end());

  std::set<instance::Tuple> original(
      v.Find("Students")->tuples().begin(),
      v.Find("Students")->tuples().end());
  EXPECT_EQ(recovered, original);
}

}  // namespace
}  // namespace mm2::compose
