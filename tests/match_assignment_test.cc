// Tests for the one-to-one match assignment mode: `best` becomes a global
// greedy assignment instead of best-per-source, so no target element is
// claimed twice — the shape a data architect wants when generating
// correspondences for Merge.
#include <gtest/gtest.h>

#include <set>

#include "match/matcher.h"
#include "model/schema.h"
#include "workload/generators.h"

namespace mm2::match {
namespace {

using model::DataType;
using model::ElementRef;
using model::Metamodel;
using model::SchemaBuilder;

// Two source attributes that both look like the single target "Name":
// without 1:1, both map to it.
model::Schema Left() {
  return SchemaBuilder("L", Metamodel::kRelational)
      .Relation("P", {{"Name", DataType::String()},
                      {"NickName", DataType::String()}})
      .Build();
}

model::Schema Right() {
  return SchemaBuilder("R", Metamodel::kRelational)
      .Relation("Q", {{"Name", DataType::String()},
                      {"Alias", DataType::String()}})
      .Build();
}

TEST(OneToOneMatchTest, DefaultModeAllowsTargetReuse) {
  MatchOptions options;
  options.threshold = 0.2;
  SchemaMatcher matcher(options);
  MatchResult result = matcher.Match(Left(), Right());
  std::size_t name_claims = 0;
  for (const Correspondence& c : result.best) {
    if (c.target == ElementRef{"Q", "Name"}) ++name_claims;
  }
  EXPECT_GE(name_claims, 2u);  // Name and NickName both grab Q.Name
}

TEST(OneToOneMatchTest, AssignmentClaimsEachTargetOnce) {
  MatchOptions options;
  options.threshold = 0.2;
  options.one_to_one = true;
  SchemaMatcher matcher(options);
  MatchResult result = matcher.Match(Left(), Right());
  std::set<ElementRef> sources;
  std::set<ElementRef> targets;
  for (const Correspondence& c : result.best) {
    EXPECT_TRUE(sources.insert(c.source).second)
        << c.source.ToString() << " assigned twice";
    EXPECT_TRUE(targets.insert(c.target).second)
        << c.target.ToString() << " assigned twice";
  }
  // The exact-name pair wins Q.Name; NickName falls to Alias or nothing.
  bool name_to_name = false;
  for (const Correspondence& c : result.best) {
    if (c.source == ElementRef{"P", "Name"}) {
      name_to_name = c.target == ElementRef{"Q", "Name"};
    }
  }
  EXPECT_TRUE(name_to_name);
  // Candidate lists still carry the alternatives.
  auto it = result.candidates.find(ElementRef{"P", "NickName"});
  ASSERT_NE(it, result.candidates.end());
  EXPECT_GE(it->second.size(), 1u);
}

TEST(OneToOneMatchTest, QualityNoWorseOnPerturbedSchemas) {
  workload::Rng rng(71);
  model::Schema original = workload::RandomRelationalSchema("O", 6, 5, &rng);
  workload::PerturbedSchema perturbed =
      workload::PerturbNames(original, &rng);

  MatchOptions plain;
  plain.threshold = 0.2;
  MatchOptions assigned = plain;
  assigned.one_to_one = true;
  MatchQuality before = EvaluateMatch(
      SchemaMatcher(plain).Match(original, perturbed.schema).best,
      perturbed.reference);
  MatchQuality after = EvaluateMatch(
      SchemaMatcher(assigned).Match(original, perturbed.schema).best,
      perturbed.reference);
  // Deduplicating targets should not lose recall here and tends to raise
  // precision.
  EXPECT_GE(after.precision + 1e-9, before.precision);
}

TEST(OneToOneMatchTest, ResultSortedBySource) {
  MatchOptions options;
  options.threshold = 0.2;
  options.one_to_one = true;
  SchemaMatcher matcher(options);
  MatchResult result = matcher.Match(Left(), Right());
  for (std::size_t i = 1; i < result.best.size(); ++i) {
    EXPECT_TRUE(result.best[i - 1].source < result.best[i].source ||
                result.best[i - 1].source == result.best[i].source);
  }
}

}  // namespace
}  // namespace mm2::match
