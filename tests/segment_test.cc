// Unit tests for the columnar segment layer (instance/segment.h) and the
// segment-backed paths on RelationInstance: seal-time sort+dedup, k-way
// merge order, min/max probe skipping, shared-on-copy immutability, the
// incremental tail reseal, and the batched RetainExisting merge with its
// set-probe fallback. The chase-level bit-identity sweeps live in
// chase_diff_test.cc; this file pins the building blocks.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "instance/instance.h"
#include "instance/segment.h"
#include "instance/value.h"

namespace mm2::instance {
namespace {

Tuple Row(std::int64_t a, std::int64_t b) {
  return {Value::Int64(a), Value::Int64(b)};
}

TEST(SegmentInserterTest, SealSortsAndDeduplicates) {
  SegmentOpStats stats;
  SegmentInserter inserter(2);
  inserter.Add(Row(3, 1));
  inserter.Add(Row(1, 2));
  inserter.Add(Row(3, 1));  // duplicate
  inserter.Add(Row(1, 1));
  inserter.Add(Row(2, 9));
  EXPECT_EQ(inserter.pending_rows(), 5u);

  SegmentPtr seg = inserter.Seal(&stats);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(inserter.pending_rows(), 0u);  // reusable after seal
  EXPECT_EQ(seg->arity(), 2u);
  EXPECT_EQ(seg->rows(), 4u);

  std::vector<Tuple> expect = {Row(1, 1), Row(1, 2), Row(2, 9), Row(3, 1)};
  for (std::size_t r = 0; r < seg->rows(); ++r) {
    Tuple got;
    seg->CopyRow(r, &got);
    EXPECT_EQ(got, expect[r]) << "row " << r;
  }
  // Per-column bounds recorded at seal time.
  EXPECT_EQ(seg->col_min(0), Value::Int64(1));
  EXPECT_EQ(seg->col_max(0), Value::Int64(3));
  EXPECT_EQ(seg->col_min(1), Value::Int64(1));
  EXPECT_EQ(seg->col_max(1), Value::Int64(9));
  // Telemetry: one seal, the surviving rows, and sort work recorded.
  EXPECT_EQ(stats.seals, 1u);
  EXPECT_EQ(stats.sealed_rows, 4u);
  EXPECT_GT(stats.compares, 0u);
}

TEST(SegmentInserterTest, FromSortedCopiesSetOrderWithoutCompares) {
  std::set<Tuple> rows = {Row(2, 2), Row(1, 5), Row(2, 1)};
  SegmentOpStats stats;
  SegmentPtr seg = SegmentInserter::FromSorted(2, rows, &stats);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->rows(), 3u);
  std::size_t r = 0;
  for (const Tuple& t : rows) {
    Tuple got;
    seg->CopyRow(r++, &got);
    EXPECT_EQ(got, t);
  }
  // Set iteration is already sorted and unique: no comparison work.
  EXPECT_EQ(stats.compares, 0u);
  EXPECT_EQ(stats.seals, 1u);
  EXPECT_EQ(stats.sealed_rows, 3u);
}

TEST(SegmentMergeTest, MergeIteratorYieldsSortedUnion) {
  SegmentOpStats stats;
  SegmentInserter a(2);
  a.Add(Row(1, 1));
  a.Add(Row(3, 3));
  a.Add(Row(5, 5));
  SegmentInserter b(2);
  b.Add(Row(2, 2));
  b.Add(Row(3, 3));  // overlaps a
  b.Add(Row(4, 4));
  SegmentPtr sa = a.Seal(&stats);
  SegmentPtr sb = b.Seal(&stats);

  std::vector<Tuple> merged;
  for (SegmentMergeIterator it({sa, sb}, &stats); !it.Done(); it.Advance()) {
    merged.push_back(it.Row());
  }
  std::vector<Tuple> expect = {Row(1, 1), Row(2, 2), Row(3, 3), Row(4, 4),
                               Row(5, 5)};
  EXPECT_EQ(merged, expect);
}

TEST(SegmentMergeTest, MergeSegmentsDedupsAndPassesThroughSingletons) {
  SegmentOpStats stats;
  SegmentInserter a(2);
  a.Add(Row(1, 1));
  a.Add(Row(2, 2));
  SegmentInserter b(2);
  b.Add(Row(2, 2));
  b.Add(Row(0, 9));
  SegmentPtr sa = a.Seal(&stats);
  SegmentPtr sb = b.Seal(&stats);

  SegmentPtr merged = MergeSegments({sa, sb}, &stats);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->rows(), 3u);
  Tuple first;
  merged->CopyRow(0, &first);
  EXPECT_EQ(first, Row(0, 9));
  EXPECT_GE(stats.merges, 1u);
  EXPECT_GE(stats.merged_rows, 3u);

  // A single live input is a passthrough: same object, no copy.
  SegmentOpStats solo;
  SegmentPtr same = MergeSegments({sa, nullptr}, &solo);
  EXPECT_EQ(same.get(), sa.get());
}

TEST(SegmentProbeTest, EqualRangeFindsPrefixAndMinMaxSkips) {
  SegmentOpStats stats;
  SegmentInserter ins(2);
  for (std::int64_t x : {2, 2, 3, 5}) {
    ins.Add(Row(x, x * 10));
    ins.Add(Row(x, x * 10 + 1));
  }
  SegmentPtr seg = ins.Seal(&stats);

  // Prefix probe on column 0.
  Value key2[] = {Value::Int64(2)};
  SegmentOpStats probe;
  Segment::RowRange r = seg->EqualRange(key2, 1, &probe);
  EXPECT_EQ(r.end - r.begin, 2u);
  Tuple got;
  seg->CopyRow(r.begin, &got);
  EXPECT_EQ(got, Row(2, 20));
  EXPECT_EQ(probe.skips, 0u);

  // Key below min / above max: answered empty via bounds, counted as skip.
  Value low[] = {Value::Int64(0)};
  Value high[] = {Value::Int64(7)};
  SegmentOpStats skip;
  EXPECT_TRUE(seg->EqualRange(low, 1, &skip).empty());
  EXPECT_TRUE(seg->EqualRange(high, 1, &skip).empty());
  EXPECT_EQ(skip.skips, 2u);
  EXPECT_EQ(skip.compares, 0u);  // bounds check avoided the binary search

  // Exact membership.
  SegmentOpStats member;
  EXPECT_TRUE(seg->Contains(Row(3, 30), &member));
  EXPECT_FALSE(seg->Contains(Row(3, 35), &member));
  EXPECT_FALSE(seg->Contains(Row(9, 0), &member));  // min/max skip path
  EXPECT_GE(member.skips, 1u);
}

TEST(SortedHelperTest, CountedSortAndSortedContains) {
  std::vector<Tuple> rows = {Row(3, 0), Row(1, 0), Row(2, 0)};
  SegmentOpStats stats;
  CountedSort(&rows, &stats);
  EXPECT_EQ(rows.front(), Row(1, 0));
  EXPECT_EQ(rows.back(), Row(3, 0));
  EXPECT_GT(stats.compares, 0u);
  EXPECT_TRUE(SortedContains(rows, Row(2, 0), &stats));
  EXPECT_FALSE(SortedContains(rows, Row(4, 0), &stats));
}

TEST(RelationSegmentTest, PrepareSealsAndTracksCurrency) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  rel.Insert(Row(2, 2));
  rel.Insert(Row(1, 1));
  EXPECT_FALSE(rel.SegmentCurrent());

  rel.PrepareSegments();
  EXPECT_TRUE(rel.SegmentCurrent());
  EXPECT_EQ(rel.sealed_rows(), 2u);

  // Insert-only epoch: currency drops, reseal merges the tail.
  rel.Insert(Row(3, 3));
  EXPECT_FALSE(rel.SegmentCurrent());
  SegmentOpStats before = rel.segment_stats();
  rel.PrepareSegments();
  EXPECT_TRUE(rel.SegmentCurrent());
  EXPECT_EQ(rel.sealed_rows(), 3u);
  SegmentOpStats after = rel.segment_stats();
  EXPECT_GE(after.merges, before.merges + 1);  // tail merged, not rebuilt

  // Erase invalidates the view and forces a full rebuild.
  rel.Erase(Row(2, 2));
  EXPECT_FALSE(rel.SegmentCurrent());
  rel.PrepareSegments();
  EXPECT_TRUE(rel.SegmentCurrent());
  EXPECT_EQ(rel.sealed_rows(), 2u);
}

TEST(RelationSegmentTest, CopySharesSealedSegment) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  rel.Insert(Row(1, 1));
  rel.Insert(Row(2, 2));
  rel.PrepareSegments();
  SegmentPtr sealed = rel.sealed_segment();
  ASSERT_NE(sealed, nullptr);

  RelationInstance copy(rel);
  EXPECT_EQ(copy.sealed_segment().get(), sealed.get());  // aliased, not deep
  EXPECT_TRUE(copy.SegmentCurrent());

  // Mutating the copy reseals it independently; the original's view and
  // the shared immutable segment are untouched.
  copy.Insert(Row(3, 3));
  copy.PrepareSegments();
  EXPECT_NE(copy.sealed_segment().get(), sealed.get());
  EXPECT_EQ(rel.sealed_segment().get(), sealed.get());
  EXPECT_EQ(sealed->rows(), 2u);
  EXPECT_EQ(rel.size(), 2u);
}

TEST(RelationSegmentTest, SegmentProbePrefixServesAndDeclines) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  rel.Insert(Row(1, 10));
  rel.Insert(Row(1, 11));
  rel.Insert(Row(2, 20));

  // Never sealed: declined for free (no fallback counted).
  EXPECT_FALSE(rel.SegmentProbePrefix({Value::Int64(1)}).has_value());
  EXPECT_EQ(rel.segment_stats().fallbacks, 0u);

  rel.PrepareSegments();
  auto range = rel.SegmentProbePrefix({Value::Int64(1)});
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->end - range->begin, 2u);
  Tuple got;
  range->segment->CopyRow(range->begin, &got);
  EXPECT_EQ(got, Row(1, 10));

  // An engaged-but-empty range still counts as a served probe.
  auto miss = rel.SegmentProbePrefix({Value::Int64(9)});
  ASSERT_TRUE(miss.has_value());
  EXPECT_TRUE(miss->empty());
  EXPECT_GE(rel.segment_stats().probes, 2u);

  // Stale view (tail insert since the seal): declined with a fallback tick.
  rel.Insert(Row(3, 30));
  std::uint64_t fallbacks = rel.segment_stats().fallbacks;
  EXPECT_FALSE(rel.SegmentProbePrefix({Value::Int64(1)}).has_value());
  EXPECT_EQ(rel.segment_stats().fallbacks, fallbacks + 1);
}

TEST(RelationSegmentTest, RetainExistingMergesAgainstSealedAndTail) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  rel.Insert(Row(1, 1));
  rel.Insert(Row(3, 3));
  rel.PrepareSegments();
  rel.Insert(Row(5, 5));  // unsealed tail — still answered exactly

  std::vector<Tuple> cands = {Row(0, 0), Row(1, 1), Row(2, 2), Row(3, 3),
                              Row(5, 5), Row(9, 9)};
  std::vector<const Tuple*> ptrs;
  for (const Tuple& t : cands) ptrs.push_back(&t);
  std::vector<char> present;
  rel.RetainExisting(ptrs, &present);
  std::vector<char> expect = {0, 1, 0, 1, 1, 0};
  EXPECT_EQ(present, expect);

  SegmentOpStats stats = rel.segment_stats();
  EXPECT_GE(stats.retain_batches, 1u);
  EXPECT_EQ(stats.retain_hits, 3u);
  EXPECT_EQ(stats.fallbacks, 0u);  // merge path, not set probes
}

TEST(RelationSegmentTest, RetainExistingFallsBackWithoutSegments) {
  RelationInstance rel(2);  // kIndexed: no sealed view
  rel.Insert(Row(1, 1));
  rel.Insert(Row(2, 2));

  std::vector<Tuple> cands = {Row(1, 1), Row(4, 4)};
  std::vector<const Tuple*> ptrs = {&cands[0], &cands[1]};
  std::vector<char> present;
  rel.RetainExisting(ptrs, &present);
  std::vector<char> expect = {1, 0};
  EXPECT_EQ(present, expect);
  SegmentOpStats stats = rel.segment_stats();
  EXPECT_GE(stats.fallbacks, 1u);  // answered by set probes
  EXPECT_EQ(stats.retain_hits, 1u);
}

TEST(InstanceSegmentTest, SetStorageModePropagatesToRelations) {
  Instance db;
  db.SetStorageMode(StorageMode::kSegmented);
  db.DeclareRelation("R", 2);  // declared after: inherits the mode
  db.InsertUnchecked("R", Row(1, 1));
  db.InsertUnchecked("R", Row(2, 2));
  db.PrepareAllSegments();

  const RelationInstance* rel = db.Find("R");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->storage_mode(), StorageMode::kSegmented);
  EXPECT_TRUE(rel->SegmentCurrent());
  EXPECT_EQ(rel->sealed_rows(), 2u);
  EXPECT_GE(db.SegmentStatsTotal().seals, 1u);
}

TEST(StorageModeTest, ResolveAndNames) {
  EXPECT_EQ(ResolveStorageMode(StorageMode::kIndexed), StorageMode::kIndexed);
  EXPECT_EQ(ResolveStorageMode(StorageMode::kSegmented),
            StorageMode::kSegmented);
  EXPECT_STREQ(StorageModeName(StorageMode::kIndexed), "indexed");
  EXPECT_STREQ(StorageModeName(StorageMode::kSegmented), "segmented");
}

}  // namespace
}  // namespace mm2::instance
