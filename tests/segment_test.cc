// Unit tests for the columnar segment layer (instance/segment.h) and the
// segment-backed paths on RelationInstance: seal-time sort+dedup, k-way
// merge order, min/max probe skipping, shared-on-copy immutability, the
// incremental tail reseal, and the batched RetainExisting merge with its
// set-probe fallback. The chase-level bit-identity sweeps live in
// chase_diff_test.cc; this file pins the building blocks.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "instance/instance.h"
#include "instance/segment.h"
#include "instance/value.h"

namespace mm2::instance {
namespace {

Tuple Row(std::int64_t a, std::int64_t b) {
  return {Value::Int64(a), Value::Int64(b)};
}

TEST(SegmentInserterTest, SealSortsAndDeduplicates) {
  SegmentOpStats stats;
  SegmentInserter inserter(2);
  inserter.Add(Row(3, 1));
  inserter.Add(Row(1, 2));
  inserter.Add(Row(3, 1));  // duplicate
  inserter.Add(Row(1, 1));
  inserter.Add(Row(2, 9));
  EXPECT_EQ(inserter.pending_rows(), 5u);

  SegmentPtr seg = inserter.Seal(&stats);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(inserter.pending_rows(), 0u);  // reusable after seal
  EXPECT_EQ(seg->arity(), 2u);
  EXPECT_EQ(seg->rows(), 4u);

  std::vector<Tuple> expect = {Row(1, 1), Row(1, 2), Row(2, 9), Row(3, 1)};
  for (std::size_t r = 0; r < seg->rows(); ++r) {
    Tuple got;
    seg->CopyRow(r, &got);
    EXPECT_EQ(got, expect[r]) << "row " << r;
  }
  // Per-column bounds recorded at seal time.
  EXPECT_EQ(seg->col_min(0), Value::Int64(1));
  EXPECT_EQ(seg->col_max(0), Value::Int64(3));
  EXPECT_EQ(seg->col_min(1), Value::Int64(1));
  EXPECT_EQ(seg->col_max(1), Value::Int64(9));
  // Telemetry: one seal, the surviving rows, and sort work recorded.
  EXPECT_EQ(stats.seals, 1u);
  EXPECT_EQ(stats.sealed_rows, 4u);
  EXPECT_GT(stats.compares, 0u);
}

TEST(SegmentInserterTest, FromSortedCopiesSetOrderWithoutCompares) {
  std::set<Tuple> rows = {Row(2, 2), Row(1, 5), Row(2, 1)};
  SegmentOpStats stats;
  SegmentPtr seg = SegmentInserter::FromSorted(2, rows, &stats);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->rows(), 3u);
  std::size_t r = 0;
  for (const Tuple& t : rows) {
    Tuple got;
    seg->CopyRow(r++, &got);
    EXPECT_EQ(got, t);
  }
  // Set iteration is already sorted and unique: no comparison work.
  EXPECT_EQ(stats.compares, 0u);
  EXPECT_EQ(stats.seals, 1u);
  EXPECT_EQ(stats.sealed_rows, 3u);
}

TEST(SegmentMergeTest, MergeIteratorYieldsSortedUnion) {
  SegmentOpStats stats;
  SegmentInserter a(2);
  a.Add(Row(1, 1));
  a.Add(Row(3, 3));
  a.Add(Row(5, 5));
  SegmentInserter b(2);
  b.Add(Row(2, 2));
  b.Add(Row(3, 3));  // overlaps a
  b.Add(Row(4, 4));
  SegmentPtr sa = a.Seal(&stats);
  SegmentPtr sb = b.Seal(&stats);

  std::vector<Tuple> merged;
  for (SegmentMergeIterator it({sa, sb}, &stats); !it.Done(); it.Advance()) {
    merged.push_back(it.Row());
  }
  std::vector<Tuple> expect = {Row(1, 1), Row(2, 2), Row(3, 3), Row(4, 4),
                               Row(5, 5)};
  EXPECT_EQ(merged, expect);
}

TEST(SegmentMergeTest, MergeSegmentsDedupsAndPassesThroughSingletons) {
  SegmentOpStats stats;
  SegmentInserter a(2);
  a.Add(Row(1, 1));
  a.Add(Row(2, 2));
  SegmentInserter b(2);
  b.Add(Row(2, 2));
  b.Add(Row(0, 9));
  SegmentPtr sa = a.Seal(&stats);
  SegmentPtr sb = b.Seal(&stats);

  SegmentPtr merged = MergeSegments({sa, sb}, &stats);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->rows(), 3u);
  Tuple first;
  merged->CopyRow(0, &first);
  EXPECT_EQ(first, Row(0, 9));
  EXPECT_GE(stats.merges, 1u);
  EXPECT_GE(stats.merged_rows, 3u);

  // A single live input is a passthrough: same object, no copy.
  SegmentOpStats solo;
  SegmentPtr same = MergeSegments({sa, nullptr}, &solo);
  EXPECT_EQ(same.get(), sa.get());
}

TEST(SegmentProbeTest, EqualRangeFindsPrefixAndMinMaxSkips) {
  SegmentOpStats stats;
  SegmentInserter ins(2);
  for (std::int64_t x : {2, 2, 3, 5}) {
    ins.Add(Row(x, x * 10));
    ins.Add(Row(x, x * 10 + 1));
  }
  SegmentPtr seg = ins.Seal(&stats);

  // Prefix probe on column 0.
  Value key2[] = {Value::Int64(2)};
  SegmentOpStats probe;
  Segment::RowRange r = seg->EqualRange(key2, 1, &probe);
  EXPECT_EQ(r.end - r.begin, 2u);
  Tuple got;
  seg->CopyRow(r.begin, &got);
  EXPECT_EQ(got, Row(2, 20));
  EXPECT_EQ(probe.skips, 0u);

  // Key below min / above max: answered empty via bounds, counted as skip.
  Value low[] = {Value::Int64(0)};
  Value high[] = {Value::Int64(7)};
  SegmentOpStats skip;
  EXPECT_TRUE(seg->EqualRange(low, 1, &skip).empty());
  EXPECT_TRUE(seg->EqualRange(high, 1, &skip).empty());
  EXPECT_EQ(skip.skips, 2u);
  EXPECT_EQ(skip.compares, 0u);  // bounds check avoided the binary search

  // Exact membership.
  SegmentOpStats member;
  EXPECT_TRUE(seg->Contains(Row(3, 30), &member));
  EXPECT_FALSE(seg->Contains(Row(3, 35), &member));
  EXPECT_FALSE(seg->Contains(Row(9, 0), &member));  // min/max skip path
  EXPECT_GE(member.skips, 1u);
}

TEST(SortedHelperTest, CountedSortAndSortedContains) {
  std::vector<Tuple> rows = {Row(3, 0), Row(1, 0), Row(2, 0)};
  SegmentOpStats stats;
  CountedSort(&rows, &stats);
  EXPECT_EQ(rows.front(), Row(1, 0));
  EXPECT_EQ(rows.back(), Row(3, 0));
  EXPECT_GT(stats.compares, 0u);
  EXPECT_TRUE(SortedContains(rows, Row(2, 0), &stats));
  EXPECT_FALSE(SortedContains(rows, Row(4, 0), &stats));
}

TEST(RelationSegmentTest, PrepareSealsAndTracksCurrency) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  rel.Insert(Row(2, 2));
  rel.Insert(Row(1, 1));
  EXPECT_FALSE(rel.SegmentCurrent());

  rel.PrepareSegments();
  EXPECT_TRUE(rel.SegmentCurrent());
  EXPECT_EQ(rel.sealed_rows(), 2u);

  // Insert-only epoch: currency drops, reseal merges the tail.
  rel.Insert(Row(3, 3));
  EXPECT_FALSE(rel.SegmentCurrent());
  SegmentOpStats before = rel.segment_stats();
  rel.PrepareSegments();
  EXPECT_TRUE(rel.SegmentCurrent());
  EXPECT_EQ(rel.sealed_rows(), 3u);
  SegmentOpStats after = rel.segment_stats();
  EXPECT_GE(after.merges, before.merges + 1);  // tail merged, not rebuilt

  // Erase invalidates the view and forces a full rebuild.
  rel.Erase(Row(2, 2));
  EXPECT_FALSE(rel.SegmentCurrent());
  rel.PrepareSegments();
  EXPECT_TRUE(rel.SegmentCurrent());
  EXPECT_EQ(rel.sealed_rows(), 2u);
}

TEST(RelationSegmentTest, CopySharesSealedSegment) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  rel.Insert(Row(1, 1));
  rel.Insert(Row(2, 2));
  rel.PrepareSegments();
  SegmentPtr sealed = rel.sealed_segment();
  ASSERT_NE(sealed, nullptr);

  RelationInstance copy(rel);
  EXPECT_EQ(copy.sealed_segment().get(), sealed.get());  // aliased, not deep
  EXPECT_TRUE(copy.SegmentCurrent());

  // Mutating the copy reseals it independently; the original's view and
  // the shared immutable segment are untouched.
  copy.Insert(Row(3, 3));
  copy.PrepareSegments();
  EXPECT_NE(copy.sealed_segment().get(), sealed.get());
  EXPECT_EQ(rel.sealed_segment().get(), sealed.get());
  EXPECT_EQ(sealed->rows(), 2u);
  EXPECT_EQ(rel.size(), 2u);
}

TEST(RelationSegmentTest, SegmentProbePrefixServesAndDeclines) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  rel.Insert(Row(1, 10));
  rel.Insert(Row(1, 11));
  rel.Insert(Row(2, 20));

  // Never sealed: declined, and the decline is booked as a fallback so a
  // segmented session that silently never serves probes is visible.
  EXPECT_FALSE(rel.SegmentProbePrefix({Value::Int64(1)}).has_value());
  EXPECT_EQ(rel.segment_stats().fallbacks, 1u);

  rel.PrepareSegments();
  auto ranges = rel.SegmentProbePrefix({Value::Int64(1)});
  ASSERT_TRUE(ranges.has_value());
  ASSERT_EQ(ranges->count, 1u);
  EXPECT_EQ(ranges->rows, 2u);
  const SegmentRanges::Entry& entry = ranges->entries[0];
  EXPECT_EQ(entry.end - entry.begin, 2u);
  Tuple got;
  entry.segment->CopyRow(entry.begin, &got);
  EXPECT_EQ(got, Row(1, 10));

  // An engaged-but-empty range still counts as a served probe.
  auto miss = rel.SegmentProbePrefix({Value::Int64(9)});
  ASSERT_TRUE(miss.has_value());
  EXPECT_TRUE(miss->empty());
  EXPECT_GE(rel.segment_stats().probes, 2u);

  // Stale view (tail insert since the seal): declined with a fallback tick.
  rel.Insert(Row(3, 30));
  std::uint64_t fallbacks = rel.segment_stats().fallbacks;
  EXPECT_FALSE(rel.SegmentProbePrefix({Value::Int64(1)}).has_value());
  EXPECT_EQ(rel.segment_stats().fallbacks, fallbacks + 1);
}

TEST(RelationSegmentTest, RetainExistingMergesAgainstSealedAndTail) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  rel.Insert(Row(1, 1));
  rel.Insert(Row(3, 3));
  rel.PrepareSegments();
  rel.Insert(Row(5, 5));  // unsealed tail — still answered exactly

  std::vector<Tuple> cands = {Row(0, 0), Row(1, 1), Row(2, 2), Row(3, 3),
                              Row(5, 5), Row(9, 9)};
  std::vector<const Tuple*> ptrs;
  for (const Tuple& t : cands) ptrs.push_back(&t);
  std::vector<char> present;
  rel.RetainExisting(ptrs, &present);
  std::vector<char> expect = {0, 1, 0, 1, 1, 0};
  EXPECT_EQ(present, expect);

  SegmentOpStats stats = rel.segment_stats();
  EXPECT_GE(stats.retain_batches, 1u);
  EXPECT_EQ(stats.retain_hits, 3u);
  EXPECT_EQ(stats.fallbacks, 0u);  // merge path, not set probes
}

TEST(RelationSegmentTest, RetainExistingFallsBackWithoutSegments) {
  RelationInstance rel(2);  // kIndexed: no sealed view
  rel.Insert(Row(1, 1));
  rel.Insert(Row(2, 2));

  std::vector<Tuple> cands = {Row(1, 1), Row(4, 4)};
  std::vector<const Tuple*> ptrs = {&cands[0], &cands[1]};
  std::vector<char> present;
  rel.RetainExisting(ptrs, &present);
  std::vector<char> expect = {1, 0};
  EXPECT_EQ(present, expect);
  SegmentOpStats stats = rel.segment_stats();
  EXPECT_GE(stats.fallbacks, 1u);  // answered by set probes
  EXPECT_EQ(stats.retain_hits, 1u);
}

TEST(InstanceSegmentTest, SetStorageModePropagatesToRelations) {
  Instance db;
  db.SetStorageMode(StorageMode::kSegmented);
  db.DeclareRelation("R", 2);  // declared after: inherits the mode
  db.InsertUnchecked("R", Row(1, 1));
  db.InsertUnchecked("R", Row(2, 2));
  db.PrepareAllSegments();

  const RelationInstance* rel = db.Find("R");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->storage_mode(), StorageMode::kSegmented);
  EXPECT_TRUE(rel->SegmentCurrent());
  EXPECT_EQ(rel->sealed_rows(), 2u);
  EXPECT_GE(db.SegmentStatsTotal().seals, 1u);
}

// Tail seals accumulate sealed runs without touching the base run until a
// tier fills up: a 1-row tail against a much larger base stays its own run.
TEST(RelationSegmentTest, TailSealAddsRunWithoutMergingBase) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  SegmentPolicy policy;
  policy.tier_ratio = 2;
  policy.max_runs = 6;
  rel.set_segment_policy(policy);
  for (std::int64_t i = 0; i < 16; ++i) rel.Insert(Row(i, i));
  rel.PrepareSegments();
  ASSERT_EQ(rel.live_runs(), 1u);
  SegmentPtr base = rel.sealed_segment();

  // A small tail (7 rows; 7*2 < 16) seals into its own run: the base
  // segment is untouched (same object) and no compaction fires.
  for (std::int64_t i = 100; i < 107; ++i) rel.Insert(Row(i, i));
  std::uint64_t compactions0 = rel.segment_stats().compactions;
  rel.PrepareSegments();
  EXPECT_EQ(rel.live_runs(), 2u);
  EXPECT_EQ(rel.sealed_segment().get(), base.get());
  EXPECT_EQ(rel.segment_stats().compactions, compactions0);
  EXPECT_EQ(rel.sealed_rows(), 23u);
  EXPECT_TRUE(rel.SegmentCurrent());

  SegmentShape shape = rel.segment_shape();
  EXPECT_EQ(shape.live_segments, 2u);
  EXPECT_EQ(shape.tiers, 2u);  // 16 and 7 land in distinct size classes
  EXPECT_EQ(shape.tail_rows, 0u);
}

// A tail big enough relative to the newest run triggers the size-tiered
// merge (newest * ratio >= prev), and the merged run is sorted + deduped.
TEST(RelationSegmentTest, CompactionMergesTiersInOrder) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  SegmentPolicy policy;
  policy.tier_ratio = 2;
  policy.max_runs = 6;
  rel.set_segment_policy(policy);
  for (std::int64_t i = 0; i < 16; ++i) rel.Insert(Row(i, 0));
  rel.PrepareSegments();
  for (std::int64_t i = 16; i < 23; ++i) rel.Insert(Row(i, 0));
  rel.PrepareSegments();
  ASSERT_EQ(rel.live_runs(), 2u);

  // 6-row tail: 6*2 >= 7 merges it with the 7-row run (13 rows), and
  // 13*2 >= 16 cascades into the base for a single 29-row run.
  for (std::int64_t i = 30; i < 36; ++i) rel.Insert(Row(i, 0));
  std::uint64_t compactions0 = rel.segment_stats().compactions;
  rel.PrepareSegments();
  EXPECT_EQ(rel.live_runs(), 1u);
  EXPECT_EQ(rel.segment_stats().compactions, compactions0 + 2);
  SegmentPtr merged = rel.sealed_segment();
  ASSERT_NE(merged, nullptr);
  ASSERT_EQ(merged->rows(), 29u);
  // Sorted, no duplicates.
  Tuple prev;
  for (std::size_t r = 0; r < merged->rows(); ++r) {
    Tuple got;
    merged->CopyRow(r, &got);
    if (r > 0) EXPECT_LT(prev, got) << "row " << r;
    prev = got;
  }
}

// Exceeding max_runs forces a merge even when no tier is oversized.
TEST(RelationSegmentTest, MaxRunsCapTriggersCompaction) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  SegmentPolicy policy;
  policy.tier_ratio = 2;
  policy.max_runs = 2;
  rel.set_segment_policy(policy);
  for (std::int64_t i = 0; i < 16; ++i) rel.Insert(Row(i, 0));
  rel.PrepareSegments();
  for (std::int64_t i = 16; i < 23; ++i) rel.Insert(Row(i, 0));
  rel.PrepareSegments();
  ASSERT_EQ(rel.live_runs(), 2u);

  // A 3-row tail is not oversized (3*2 < 7) but breaches max_runs=2.
  for (std::int64_t i = 30; i < 33; ++i) rel.Insert(Row(i, 0));
  rel.PrepareSegments();
  EXPECT_LE(rel.live_runs(), 2u);
  EXPECT_GE(rel.segment_stats().compactions, 1u);
  EXPECT_EQ(rel.sealed_rows(), 26u);
}

// Prefix probes over three live runs come back in one globally sorted
// stream, byte-identical to what a single merged segment would yield.
TEST(RelationSegmentTest, KWayProbeSpansLiveRuns) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  SegmentPolicy policy;
  policy.tier_ratio = 2;
  policy.max_runs = 6;
  rel.set_segment_policy(policy);
  // Run sizes 16 / 7 / 3: each newest run is under half its predecessor,
  // so no compaction fires and all three stay live.
  rel.Insert(Row(1, 0));
  rel.Insert(Row(1, 6));
  for (std::int64_t i = 0; i < 14; ++i) rel.Insert(Row(50 + i, i));
  rel.PrepareSegments();
  rel.Insert(Row(1, 2));
  rel.Insert(Row(1, 8));
  for (std::int64_t i = 0; i < 5; ++i) rel.Insert(Row(80 + i, i));
  rel.PrepareSegments();
  rel.Insert(Row(1, 4));
  rel.Insert(Row(90, 0));
  rel.Insert(Row(91, 0));
  rel.PrepareSegments();
  ASSERT_EQ(rel.live_runs(), 3u);

  auto ranges = rel.SegmentProbePrefix({Value::Int64(1)});
  ASSERT_TRUE(ranges.has_value());
  EXPECT_EQ(ranges->count, 3u);
  EXPECT_EQ(ranges->rows, 5u);
  std::vector<Tuple> got;
  for (SegmentRangeCursor cursor(*ranges); !cursor.Done(); cursor.Advance()) {
    got.push_back(cursor.Row());
  }
  std::vector<Tuple> expect = {Row(1, 0), Row(1, 2), Row(1, 4), Row(1, 6),
                               Row(1, 8)};
  EXPECT_EQ(got, expect);

  // Exact membership is served across all runs too.
  EXPECT_TRUE(rel.Contains(Row(1, 4)));
  EXPECT_TRUE(rel.Contains(Row(91, 0)));
  EXPECT_FALSE(rel.Contains(Row(1, 5)));
}

std::vector<Tuple> Collect(const DeltaView& view) {
  std::vector<Tuple> rows;
  view.ForEachRow(0, view.size(), [&](const Tuple& t) {
    rows.push_back(t);
    return true;
  });
  return rows;
}

// Insert-only epochs serve the delta as zero-copy slices over runs sealed
// after the watermark; the view matches the log-backed delta as a set.
TEST(RelationSegmentTest, DeltaViewSlicesMatchLogBackedDelta) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  SegmentPolicy policy;
  policy.tier_ratio = 2;
  policy.max_runs = 6;
  rel.set_segment_policy(policy);
  for (std::int64_t i = 0; i < 16; ++i) rel.Insert(Row(i, 0));
  rel.PrepareSegments();
  const std::size_t mark = rel.Watermark();

  for (std::int64_t i = 100; i < 105; ++i) rel.Insert(Row(i, 0));
  rel.PrepareSegments();          // seals a 5-row run past the watermark
  rel.Insert(Row(200, 0));        // unsealed tail suffix

  DeltaView view = rel.DeltaViewSince(mark);
  EXPECT_TRUE(view.sliced);
  EXPECT_EQ(view.slice_rows, 5u);
  EXPECT_EQ(view.size(), 6u);

  std::vector<const Tuple*> log_delta = rel.DeltaSince(mark);
  ASSERT_EQ(log_delta.size(), view.size());
  std::set<Tuple> expect;
  for (const Tuple* t : log_delta) expect.insert(*t);
  std::vector<Tuple> got = Collect(view);
  EXPECT_EQ(std::set<Tuple>(got.begin(), got.end()), expect);
  EXPECT_GE(rel.segment_stats().delta_slices, 1u);
  EXPECT_GE(rel.segment_stats().delta_slice_rows, 5u);

  // Windowed enumeration walks the same rows as a full pass.
  std::vector<Tuple> windowed;
  for (std::size_t i = 0; i < view.size(); i += 2) {
    view.ForEachRow(i, std::min(i + 2, view.size()), [&](const Tuple& t) {
      windowed.push_back(t);
      return true;
    });
  }
  EXPECT_EQ(windowed, got);
}

// An erase-containing epoch cannot trust run/log tiling: the view falls
// back to plain log refs and still matches DeltaSince exactly.
TEST(RelationSegmentTest, DeltaViewFallsBackAfterErase) {
  RelationInstance rel(2);
  rel.set_storage_mode(StorageMode::kSegmented);
  for (std::int64_t i = 0; i < 8; ++i) rel.Insert(Row(i, 0));
  rel.PrepareSegments();
  const std::size_t mark = rel.Watermark();

  rel.Insert(Row(100, 0));
  rel.Erase(Row(3, 0));
  rel.Insert(Row(101, 0));

  DeltaView view = rel.DeltaViewSince(mark);
  EXPECT_FALSE(view.sliced);
  EXPECT_TRUE(view.slices.empty());
  std::vector<const Tuple*> log_delta = rel.DeltaSince(mark);
  ASSERT_EQ(view.refs.size(), log_delta.size());
  for (std::size_t i = 0; i < log_delta.size(); ++i) {
    EXPECT_EQ(view.refs[i], log_delta[i]);
  }
}

TEST(StorageModeTest, ResolveAndNames) {
  EXPECT_EQ(ResolveStorageMode(StorageMode::kIndexed), StorageMode::kIndexed);
  EXPECT_EQ(ResolveStorageMode(StorageMode::kSegmented),
            StorageMode::kSegmented);
  EXPECT_STREQ(StorageModeName(StorageMode::kIndexed), "indexed");
  EXPECT_STREQ(StorageModeName(StorageMode::kSegmented), "segmented");
}

TEST(StorageModeTest, DefaultResolvesToSegmented) {
  const char* saved = std::getenv("MM2_STORAGE");
  std::string saved_value = saved != nullptr ? saved : "";
  ::unsetenv("MM2_STORAGE");
  EXPECT_EQ(ResolveStorageMode(StorageMode::kDefault),
            StorageMode::kSegmented);
  ::setenv("MM2_STORAGE", "indexed", 1);
  EXPECT_EQ(ResolveStorageMode(StorageMode::kDefault), StorageMode::kIndexed);
  ::setenv("MM2_STORAGE", "segmented", 1);
  EXPECT_EQ(ResolveStorageMode(StorageMode::kDefault),
            StorageMode::kSegmented);
  if (saved != nullptr) {
    ::setenv("MM2_STORAGE", saved_value.c_str(), 1);
  } else {
    ::unsetenv("MM2_STORAGE");
  }
}

TEST(SegmentPolicyTest, ResolveArgsEnvAndClamps) {
  const char* saved_ratio = std::getenv("MM2_SEGMENT_TIER_RATIO");
  const char* saved_runs = std::getenv("MM2_SEGMENT_MAX_RUNS");
  std::string ratio_value = saved_ratio != nullptr ? saved_ratio : "";
  std::string runs_value = saved_runs != nullptr ? saved_runs : "";
  ::unsetenv("MM2_SEGMENT_TIER_RATIO");
  ::unsetenv("MM2_SEGMENT_MAX_RUNS");

  // Defaults with nothing set.
  SegmentPolicy policy = ResolveSegmentPolicy(0, 0);
  EXPECT_EQ(policy.tier_ratio, 4u);
  EXPECT_EQ(policy.max_runs, 6u);

  // Explicit arguments win.
  policy = ResolveSegmentPolicy(8, 3);
  EXPECT_EQ(policy.tier_ratio, 8u);
  EXPECT_EQ(policy.max_runs, 3u);

  // Environment fills whatever the arguments left at zero.
  ::setenv("MM2_SEGMENT_TIER_RATIO", "16", 1);
  ::setenv("MM2_SEGMENT_MAX_RUNS", "2", 1);
  policy = ResolveSegmentPolicy(0, 0);
  EXPECT_EQ(policy.tier_ratio, 16u);
  EXPECT_EQ(policy.max_runs, 2u);
  policy = ResolveSegmentPolicy(5, 0);
  EXPECT_EQ(policy.tier_ratio, 5u);
  EXPECT_EQ(policy.max_runs, 2u);

  // Clamps: ratio >= 2, max_runs within [1, kMaxRanges].
  ::setenv("MM2_SEGMENT_TIER_RATIO", "1", 1);
  ::setenv("MM2_SEGMENT_MAX_RUNS", "99", 1);
  policy = ResolveSegmentPolicy(0, 0);
  EXPECT_GE(policy.tier_ratio, 2u);
  EXPECT_LE(policy.max_runs, SegmentRanges::kMaxRanges);

  if (saved_ratio != nullptr) {
    ::setenv("MM2_SEGMENT_TIER_RATIO", ratio_value.c_str(), 1);
  } else {
    ::unsetenv("MM2_SEGMENT_TIER_RATIO");
  }
  if (saved_runs != nullptr) {
    ::setenv("MM2_SEGMENT_MAX_RUNS", runs_value.c_str(), 1);
  } else {
    ::unsetenv("MM2_SEGMENT_MAX_RUNS");
  }
}

}  // namespace
}  // namespace mm2::instance
