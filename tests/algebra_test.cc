#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/expr.h"
#include "instance/instance.h"
#include "model/schema.h"

namespace mm2::algebra {
namespace {

using instance::Instance;
using instance::Tuple;
using instance::Value;
using model::DataType;
using model::Metamodel;
using model::SchemaBuilder;

Catalog TwoTableCatalog() {
  Catalog c;
  c.Add("Names", {"SID", "Name"});
  c.Add("Addresses", {"AID", "Address", "Country"});
  return c;
}

Instance StudentsDb() {
  Instance db;
  db.DeclareRelation("Names", 2);
  db.DeclareRelation("Addresses", 3);
  auto ins = [&](const char* rel, Tuple t) {
    ASSERT_TRUE(db.Insert(rel, std::move(t)).ok());
  };
  ins("Names", {Value::Int64(1), Value::String("Ada")});
  ins("Names", {Value::Int64(2), Value::String("Bob")});
  ins("Names", {Value::Int64(3), Value::String("Cyd")});
  ins("Addresses", {Value::Int64(1), Value::String("12 Oak"),
                    Value::String("US")});
  ins("Addresses", {Value::Int64(2), Value::String("5 Rue"),
                    Value::String("FR")});
  return db;
}

TEST(ScalarEvalTest, ColumnsAndLiterals) {
  std::vector<std::string> cols = {"a", "b"};
  Tuple row = {Value::Int64(1), Value::String("x")};
  auto v = EvaluateScalar(*Col("b"), cols, row);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::String("x"));
  EXPECT_FALSE(EvaluateScalar(*Col("zzz"), cols, row).ok());
  EXPECT_EQ(*EvaluateScalar(*Lit(Value::Bool(true)), cols, row),
            Value::Bool(true));
}

TEST(ScalarEvalTest, ComparisonsWithNumericPromotion) {
  std::vector<std::string> cols = {"i", "d"};
  Tuple row = {Value::Int64(2), Value::Double(2.0)};
  auto eq = EvaluateScalar(*Scalar::Eq(Col("i"), Col("d")), cols, row);
  EXPECT_EQ(*eq, Value::Bool(true));
  auto lt = EvaluateScalar(
      *Scalar::Compare(Scalar::CompareOp::kLt, Col("i"), Lit(Value::Int64(3))),
      cols, row);
  EXPECT_EQ(*lt, Value::Bool(true));
  auto ge = EvaluateScalar(
      *Scalar::Compare(Scalar::CompareOp::kGe, Col("i"), Lit(Value::Int64(3))),
      cols, row);
  EXPECT_EQ(*ge, Value::Bool(false));
}

TEST(ScalarEvalTest, NullComparisonsAreFalse) {
  std::vector<std::string> cols = {"a"};
  Tuple row = {Value::Null()};
  EXPECT_EQ(*EvaluateScalar(*ColEqLit("a", Value::Int64(1)), cols, row),
            Value::Bool(false));
  EXPECT_EQ(*EvaluateScalar(*Scalar::IsNull(Col("a")), cols, row),
            Value::Bool(true));
  // Labeled nulls are values: equal labels compare equal... but only via
  // same-kind equality.
  Tuple row2 = {Value::LabeledNull(3)};
  EXPECT_EQ(*EvaluateScalar(*Scalar::Eq(Col("a"), Lit(Value::LabeledNull(3))),
                            cols, row2),
            Value::Bool(true));
  EXPECT_EQ(*EvaluateScalar(*Scalar::IsNull(Col("a")), cols, row2),
            Value::Bool(false));
}

TEST(ScalarEvalTest, BooleanConnectives) {
  std::vector<std::string> cols = {"a"};
  Tuple row = {Value::Int64(5)};
  ScalarRef t = ColEqLit("a", Value::Int64(5));
  ScalarRef f = ColEqLit("a", Value::Int64(6));
  EXPECT_EQ(*EvaluateScalar(*Scalar::And({t, t}), cols, row),
            Value::Bool(true));
  EXPECT_EQ(*EvaluateScalar(*Scalar::And({t, f}), cols, row),
            Value::Bool(false));
  EXPECT_EQ(*EvaluateScalar(*Scalar::Or({f, t}), cols, row),
            Value::Bool(true));
  EXPECT_EQ(*EvaluateScalar(*Scalar::Not(f), cols, row), Value::Bool(true));
  EXPECT_EQ(*EvaluateScalar(*Scalar::And({}), cols, row), Value::Bool(true));
  EXPECT_EQ(*EvaluateScalar(*Scalar::Or({}), cols, row), Value::Bool(false));
}

TEST(ScalarEvalTest, InList) {
  std::vector<std::string> cols = {"t"};
  Tuple row = {Value::String("Employee")};
  ScalarRef in = Scalar::In(
      Col("t"), {Value::String("Employee"), Value::String("Customer")});
  EXPECT_EQ(*EvaluateScalar(*in, cols, row), Value::Bool(true));
  Tuple row2 = {Value::String("Person")};
  EXPECT_EQ(*EvaluateScalar(*in, cols, row2), Value::Bool(false));
}

TEST(ScalarEvalTest, CaseSelectsFirstMatchingBranch) {
  std::vector<std::string> cols = {"x"};
  ScalarRef expr = Scalar::Case(
      {{ColEqLit("x", Value::Int64(1)), Lit(Value::String("one"))},
       {ColEqLit("x", Value::Int64(2)), Lit(Value::String("two"))}},
      Lit(Value::String("many")));
  EXPECT_EQ(*EvaluateScalar(*expr, cols, {Value::Int64(1)}),
            Value::String("one"));
  EXPECT_EQ(*EvaluateScalar(*expr, cols, {Value::Int64(2)}),
            Value::String("two"));
  EXPECT_EQ(*EvaluateScalar(*expr, cols, {Value::Int64(9)}),
            Value::String("many"));
  // Without an ELSE the result is NULL.
  ScalarRef no_else = Scalar::Case(
      {{ColEqLit("x", Value::Int64(1)), Lit(Value::String("one"))}}, nullptr);
  EXPECT_TRUE(
      EvaluateScalar(*no_else, cols, {Value::Int64(9)})->is_null());
}

TEST(EvalTest, ScanAndSelect) {
  Instance db = StudentsDb();
  Catalog cat = TwoTableCatalog();
  auto t = Evaluate(*Expr::Select(Expr::Scan("Addresses"),
                                  ColEqLit("Country", Value::String("US"))),
                    cat, db);
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->rows.size(), 1u);
  EXPECT_EQ(t->rows[0][1], Value::String("12 Oak"));
}

TEST(EvalTest, ScanMissingRelationFails) {
  Instance db = StudentsDb();
  Catalog cat = TwoTableCatalog();
  EXPECT_FALSE(Evaluate(*Expr::Scan("Nope"), cat, db).ok());
}

TEST(EvalTest, ProjectRenamesAndComputes) {
  Instance db = StudentsDb();
  Catalog cat = TwoTableCatalog();
  auto t = Evaluate(
      *Expr::Project(Expr::Scan("Names"),
                     {{"id", Col("SID")},
                      {"is_ada", ColEqLit("Name", Value::String("Ada"))}}),
      cat, db);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->columns, (std::vector<std::string>{"id", "is_ada"}));
  ASSERT_EQ(t->rows.size(), 3u);
  std::size_t ada_true = 0;
  for (const Tuple& row : t->rows) {
    if (row[1] == Value::Bool(true)) ++ada_true;
  }
  EXPECT_EQ(ada_true, 1u);
}

TEST(EvalTest, InnerJoinMatchesKeys) {
  Instance db = StudentsDb();
  Catalog cat = TwoTableCatalog();
  auto t = Evaluate(*Expr::Join(Expr::Scan("Names"), Expr::Scan("Addresses"),
                                Expr::JoinKind::kInner, {{"SID", "AID"}}),
                    cat, db);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->columns.size(), 5u);
  EXPECT_EQ(t->rows.size(), 2u);  // Cyd has no address
}

TEST(EvalTest, LeftOuterJoinPadsWithNulls) {
  Instance db = StudentsDb();
  Catalog cat = TwoTableCatalog();
  auto t = Evaluate(*Expr::Join(Expr::Scan("Names"), Expr::Scan("Addresses"),
                                Expr::JoinKind::kLeftOuter, {{"SID", "AID"}}),
                    cat, db);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows.size(), 3u);
  bool found_padded = false;
  for (const Tuple& row : t->rows) {
    if (row[1] == Value::String("Cyd")) {
      found_padded = true;
      EXPECT_TRUE(row[2].is_null());
      EXPECT_TRUE(row[4].is_null());
    }
  }
  EXPECT_TRUE(found_padded);
}

TEST(EvalTest, JoinRejectsColumnCollision) {
  Instance db = StudentsDb();
  Catalog cat;
  cat.Add("Names", {"SID", "Name"});
  cat.Add("Addresses", {"SID", "Address", "Country"});
  auto t = Evaluate(*Expr::Join(Expr::Scan("Names"), Expr::Scan("Addresses"),
                                Expr::JoinKind::kInner, {{"SID", "SID"}}),
                    cat, db);
  EXPECT_FALSE(t.ok());
}

TEST(EvalTest, NullKeysNeverJoin) {
  Instance db;
  db.DeclareRelation("L", 1);
  db.DeclareRelation("R", 1);
  ASSERT_TRUE(db.Insert("L", {Value::Null()}).ok());
  ASSERT_TRUE(db.Insert("R", {Value::Null()}).ok());
  Catalog cat;
  cat.Add("L", {"a"});
  cat.Add("R", {"b"});
  auto t = Evaluate(*Expr::Join(Expr::Scan("L"), Expr::Scan("R"),
                                Expr::JoinKind::kInner, {{"a", "b"}}),
                    cat, db);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->rows.empty());
}

TEST(EvalTest, CrossJoinAndConst) {
  Instance db = StudentsDb();
  Catalog cat = TwoTableCatalog();
  // Local × {"US"}: the Fig. 6 composition idiom.
  ExprRef us = Expr::Const({"Country2"}, {{Value::String("US")}});
  auto t = Evaluate(*Expr::Join(Expr::Scan("Names"), us,
                                Expr::JoinKind::kCross, {}),
                    cat, db);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows.size(), 3u);
  for (const Tuple& row : t->rows) {
    EXPECT_EQ(row[2], Value::String("US"));
  }
}

TEST(EvalTest, UnionDifferenceDistinct) {
  Instance db;
  db.DeclareRelation("A", 1);
  db.DeclareRelation("B", 1);
  ASSERT_TRUE(db.Insert("A", {Value::Int64(1)}).ok());
  ASSERT_TRUE(db.Insert("A", {Value::Int64(2)}).ok());
  ASSERT_TRUE(db.Insert("B", {Value::Int64(2)}).ok());
  Catalog cat;
  cat.Add("A", {"x"});
  cat.Add("B", {"x"});

  auto u = Evaluate(*Expr::Union({Expr::Scan("A"), Expr::Scan("B")}), cat, db);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->rows.size(), 3u);  // UNION ALL keeps the duplicate 2

  auto dedup = Evaluate(
      *Expr::Distinct(Expr::Union({Expr::Scan("A"), Expr::Scan("B")})), cat,
      db);
  EXPECT_EQ(dedup->rows.size(), 2u);

  auto d = Evaluate(*Expr::Difference(Expr::Scan("A"), Expr::Scan("B")), cat,
                    db);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->rows.size(), 1u);
  EXPECT_EQ(d->rows[0][0], Value::Int64(1));
}

TEST(EvalTest, UnionArityMismatchFails) {
  Instance db = StudentsDb();
  Catalog cat = TwoTableCatalog();
  EXPECT_FALSE(
      Evaluate(*Expr::Union({Expr::Scan("Names"), Expr::Scan("Addresses")}),
               cat, db)
          .ok());
  EXPECT_FALSE(Evaluate(*Expr::Union({}), cat, db).ok());
}

TEST(CatalogTest, FromSchemaIncludesEntitySets) {
  model::Schema er =
      SchemaBuilder("ER", Metamodel::kEntityRelationship)
          .EntityType("Person", "", {{"Id", DataType::Int64()},
                                     {"Name", DataType::String()}})
          .EntityType("Employee", "Person", {{"Dept", DataType::String()}})
          .EntitySet("Persons", "Person")
          .Build();
  auto cat = Catalog::FromSchema(er);
  ASSERT_TRUE(cat.ok());
  auto cols = cat->ColumnsOf("Persons");
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(*cols,
            (std::vector<std::string>{"$type", "Id", "Name", "Dept"}));
}

TEST(TableTest, SetEqualsIgnoresOrderAndDuplicates) {
  Table a{{"x"}, {{Value::Int64(1)}, {Value::Int64(2)}}};
  Table b{{"x"}, {{Value::Int64(2)}, {Value::Int64(1)}, {Value::Int64(1)}}};
  EXPECT_TRUE(a.SetEquals(b));
  Table c{{"y"}, {{Value::Int64(1)}, {Value::Int64(2)}}};
  EXPECT_FALSE(a.SetEquals(c));  // column names differ
}

TEST(MaterializeTest, WritesSetSemantics) {
  Table t{{"x"}, {{Value::Int64(1)}, {Value::Int64(1)}, {Value::Int64(2)}}};
  Instance db;
  Materialize(t, "Out", &db);
  EXPECT_EQ(db.Find("Out")->size(), 2u);
}

TEST(EvalIndexTest, JoinWithScanRightSideProbesIndexes) {
  Instance db = StudentsDb();
  Catalog cat = TwoTableCatalog();
  instance::IndexStats before = db.IndexStatsTotal();
  auto t = Evaluate(*Expr::Join(Expr::Scan("Names"), Expr::Scan("Addresses"),
                                Expr::JoinKind::kInner, {{"SID", "AID"}}),
                    cat, db);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows.size(), 2u);
  // One probe per left row against the Addresses key: under the default
  // indexed backend that traffic hits the hash index; under
  // MM2_STORAGE=segmented the same probes are served by the sealed
  // segment's binary searches instead.
  if (instance::ResolveStorageMode(instance::StorageMode::kDefault) ==
      instance::StorageMode::kSegmented) {
    EXPECT_EQ(db.SegmentStatsTotal().probes, 3u);
  } else {
    instance::IndexStats after = db.IndexStatsTotal();
    EXPECT_EQ(after.probes - before.probes, 3u);
    EXPECT_GE(after.builds - before.builds, 1u);
  }
}

TEST(EvalIndexTest, ProbeJoinAgreesWithGenericHashJoin) {
  Instance db = StudentsDb();
  Catalog cat = TwoTableCatalog();
  // A no-op Select wrapper takes the right child off the scan fast path,
  // forcing the generic hash join over the same rows.
  for (Expr::JoinKind kind :
       {Expr::JoinKind::kInner, Expr::JoinKind::kLeftOuter}) {
    auto probe =
        Evaluate(*Expr::Join(Expr::Scan("Names"), Expr::Scan("Addresses"),
                             kind, {{"SID", "AID"}}),
                 cat, db);
    auto generic = Evaluate(
        *Expr::Join(Expr::Scan("Names"),
                    Expr::Select(Expr::Scan("Addresses"), Scalar::And({})),
                    kind, {{"SID", "AID"}}),
        cat, db);
    ASSERT_TRUE(probe.ok() && generic.ok());
    EXPECT_EQ(probe->columns, generic->columns);
    EXPECT_TRUE(probe->SetEquals(*generic));
    EXPECT_EQ(probe->rows, generic->rows);  // same enumeration order too
  }
}

// The parallel hash join (sharded build + partitioned probe) must be
// byte-identical to the serial generic join: same rows in the same order,
// including left-outer null padding. Const children keep both sides off
// the scan-probe fast path; min_parallel_rows = 1 forces the fan-out even
// on small inputs.
TEST(EvalIndexTest, ParallelHashJoinIdenticalToSerial) {
  Instance db;
  Catalog cat;
  cat.Add("ignored", {"x"});
  std::vector<instance::Tuple> left_rows, right_rows;
  for (int i = 0; i < 97; ++i) {
    left_rows.push_back({Value::Int64(i % 13), Value::String("L" + std::to_string(i))});
  }
  for (int i = 0; i < 61; ++i) {
    // Duplicate keys on the right exercise bucket ordering; key 12 never
    // appears so some left rows go unmatched (outer padding).
    right_rows.push_back({Value::Int64(i % 12), Value::Int64(i)});
  }
  ExprRef left = Expr::Const({"k", "tag"}, std::move(left_rows));
  ExprRef right = Expr::Const({"rk", "payload"}, std::move(right_rows));
  for (Expr::JoinKind kind :
       {Expr::JoinKind::kInner, Expr::JoinKind::kLeftOuter}) {
    ExprRef join = Expr::Join(left, right, kind, {{"k", "rk"}});
    auto serial = Evaluate(*join, cat, db);
    EvalOptions parallel_opts;
    parallel_opts.threads = 4;
    parallel_opts.min_parallel_rows = 1;
    auto parallel = Evaluate(*join, cat, db, parallel_opts);
    ASSERT_TRUE(serial.ok() && parallel.ok())
        << serial.status() << " " << parallel.status();
    EXPECT_EQ(serial->columns, parallel->columns);
    EXPECT_EQ(serial->rows, parallel->rows);  // exact order, not just sets
    if (kind == Expr::JoinKind::kLeftOuter) {
      EXPECT_GT(parallel->rows.size(), 0u);
    }
  }
  // Below the row threshold the 4-thread options still take the serial
  // path; the result must (trivially) agree as well.
  EvalOptions high_threshold;
  high_threshold.threads = 4;
  high_threshold.min_parallel_rows = 1u << 20;
  ExprRef join = Expr::Join(left, right, Expr::JoinKind::kInner, {{"k", "rk"}});
  auto serial = Evaluate(*join, cat, db);
  auto gated = Evaluate(*join, cat, db, high_threshold);
  ASSERT_TRUE(serial.ok() && gated.ok());
  EXPECT_EQ(serial->rows, gated->rows);
}

TEST(EvalIndexTest, SelectOnKeyUsesIndexAndKeepsFullPredicate) {
  Instance db;
  db.DeclareRelation("N", 2);
  ASSERT_TRUE(db.Insert("N", {Value::Int64(1), Value::String("a")}).ok());
  ASSERT_TRUE(db.Insert("N", {Value::Int64(1), Value::String("b")}).ok());
  ASSERT_TRUE(db.Insert("N", {Value::Int64(2), Value::String("a")}).ok());
  Catalog cat;
  cat.Add("N", {"k", "s"});

  instance::IndexStats before = db.IndexStatsTotal();
  // k = 1 seeds the probe; the conjoined s = "a" must still filter.
  auto t = Evaluate(
      *Expr::Select(Expr::Scan("N"),
                    Scalar::And({ColEqLit("k", Value::Int64(1)),
                                 ColEqLit("s", Value::String("a"))})),
      cat, db);
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->rows.size(), 1u);
  EXPECT_EQ(t->rows[0][1], Value::String("a"));
  EXPECT_GT(db.IndexStatsTotal().probes, before.probes);
}

TEST(EvalIndexTest, SelectFastPathHandlesNumericPromotion) {
  // The scan path compares numerics promoted to double, so a Double
  // literal matches Int64 rows; the probe path must enumerate every stored
  // representation of the key rather than probing just the literal's kind.
  Instance db;
  db.DeclareRelation("N", 2);
  ASSERT_TRUE(db.Insert("N", {Value::Int64(2), Value::String("int")}).ok());
  ASSERT_TRUE(db.Insert("N", {Value::Double(2.0), Value::String("dbl")}).ok());
  ASSERT_TRUE(db.Insert("N", {Value::Int64(3), Value::String("three")}).ok());
  Catalog cat;
  cat.Add("N", {"k", "s"});

  auto by_double = Evaluate(
      *Expr::Select(Expr::Scan("N"), ColEqLit("k", Value::Double(2.0))),
      cat, db);
  ASSERT_TRUE(by_double.ok());
  EXPECT_EQ(by_double->rows.size(), 2u);  // Int64(2) and Double(2.0)
  auto by_int = Evaluate(
      *Expr::Select(Expr::Scan("N"), ColEqLit("k", Value::Int64(2))),
      cat, db);
  ASSERT_TRUE(by_int.ok());
  EXPECT_EQ(by_int->rows.size(), 2u);

  // Beyond 2^53 double promotion is lossy; the fast path bows out and the
  // scan path's (documented) promoted comparison decides.
  auto huge = Evaluate(
      *Expr::Select(Expr::Scan("N"), ColEqLit("k", Value::Double(1e300))),
      cat, db);
  ASSERT_TRUE(huge.ok());
  EXPECT_TRUE(huge->rows.empty());
}

TEST(SqlPrinterTest, RendersReadableSql) {
  ExprRef query = Expr::Project(
      Expr::Select(Expr::Scan("Empl"), ColEqLit("Dept", Value::String("R&D"))),
      {{"Id", Col("Id")}});
  std::string sql = query->ToSql();
  EXPECT_NE(sql.find("SELECT Id"), std::string::npos);
  EXPECT_NE(sql.find("WHERE Dept = \"R&D\""), std::string::npos);
  std::string alg = query->ToString();
  EXPECT_NE(alg.find("σ"), std::string::npos);
  EXPECT_NE(alg.find("π"), std::string::npos);
}

}  // namespace
}  // namespace mm2::algebra
