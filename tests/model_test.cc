#include <gtest/gtest.h>

#include "model/schema.h"
#include "model/type.h"

namespace mm2::model {
namespace {

TEST(DataTypeTest, PrimitiveFactoriesAndEquality) {
  EXPECT_TRUE(DataType::Int64()->Equals(*DataType::Int64()));
  EXPECT_FALSE(DataType::Int64()->Equals(*DataType::Double()));
  EXPECT_EQ(DataType::String()->ToString(), "string");
  EXPECT_EQ(DataType::Date()->ToString(), "date");
  EXPECT_TRUE(DataType::Bool()->is_primitive());
}

TEST(DataTypeTest, StructAndCollection) {
  DataTypeRef person = DataType::Struct(
      {{"name", DataType::String()},
       {"tags", DataType::Collection(DataType::String())}});
  EXPECT_EQ(person->ToString(),
            "struct<name: string, tags: collection<string>>");
  DataTypeRef person2 = DataType::Struct(
      {{"name", DataType::String()},
       {"tags", DataType::Collection(DataType::String())}});
  EXPECT_TRUE(person->Equals(*person2));
  DataTypeRef other =
      DataType::Struct({{"name", DataType::Int64()},
                        {"tags", DataType::Collection(DataType::String())}});
  EXPECT_FALSE(person->Equals(*other));
}

TEST(DataTypeTest, UnifyNumericPromotion) {
  EXPECT_TRUE(UnifyTypes(DataType::Int64(), DataType::Double())
                  ->Equals(*DataType::Double()));
  EXPECT_TRUE(UnifyTypes(DataType::Int64(), DataType::Int64())
                  ->Equals(*DataType::Int64()));
  EXPECT_TRUE(UnifyTypes(DataType::Int64(), DataType::String())
                  ->Equals(*DataType::String()));
  EXPECT_TRUE(UnifyTypes(DataType::Bool(), DataType::Date())
                  ->Equals(*DataType::String()));
}

TEST(DataTypeTest, UnifyStructural) {
  DataTypeRef a = DataType::Struct({{"x", DataType::Int64()}});
  DataTypeRef b = DataType::Struct({{"x", DataType::Double()}});
  DataTypeRef u = UnifyTypes(a, b);
  ASSERT_EQ(u->kind(), DataType::Kind::kStruct);
  EXPECT_TRUE(u->fields()[0].type->Equals(*DataType::Double()));
  // Mismatched field names degrade to string.
  DataTypeRef c = DataType::Struct({{"y", DataType::Int64()}});
  EXPECT_TRUE(UnifyTypes(a, c)->Equals(*DataType::String()));
  EXPECT_TRUE(UnifyTypes(DataType::Collection(DataType::Int64()),
                         DataType::Collection(DataType::Double()))
                  ->Equals(*DataType::Collection(DataType::Double())));
}

Schema StudentsSchema() {
  return SchemaBuilder("S", Metamodel::kRelational)
      .Relation("Names",
                {{"SID", DataType::Int64()}, {"Name", DataType::String()}},
                {"SID"})
      .Relation("Addresses",
                {{"SID", DataType::Int64()},
                 {"Address", DataType::String()},
                 {"Country", DataType::String()}},
                {"SID"})
      .ForeignKey("Addresses", {"SID"}, "Names", {"SID"})
      .Build();
}

TEST(SchemaTest, RelationalBasics) {
  Schema s = StudentsSchema();
  EXPECT_EQ(s.name(), "S");
  ASSERT_EQ(s.relations().size(), 2u);
  const Relation* names = s.FindRelation("Names");
  ASSERT_NE(names, nullptr);
  EXPECT_EQ(names->arity(), 2u);
  EXPECT_EQ(names->AttributeIndex("Name"), 1u);
  EXPECT_FALSE(names->AttributeIndex("Nope").has_value());
  EXPECT_TRUE(names->IsKeyAttribute(0));
  EXPECT_FALSE(names->IsKeyAttribute(1));
  EXPECT_EQ(s.ForeignKeysFrom("Addresses").size(), 1u);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsDuplicateRelations) {
  Schema s("Bad", Metamodel::kRelational);
  s.AddRelation(Relation("R", {{"a", DataType::Int64(), false}}));
  s.AddRelation(Relation("R", {{"b", DataType::Int64(), false}}));
  EXPECT_EQ(s.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ValidateRejectsDuplicateAttributes) {
  Schema s("Bad", Metamodel::kRelational);
  s.AddRelation(Relation(
      "R", {{"a", DataType::Int64(), false}, {"a", DataType::Int64(), false}}));
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsDanglingForeignKey) {
  Schema s("Bad", Metamodel::kRelational);
  s.AddRelation(Relation("R", {{"a", DataType::Int64(), false}}));
  s.AddForeignKey(ForeignKey{"R", {"a"}, "Missing", {"x"}});
  EXPECT_EQ(s.Validate().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ValidateRejectsForeignKeyAttributeMismatch) {
  Schema s("Bad", Metamodel::kRelational);
  s.AddRelation(Relation("R", {{"a", DataType::Int64(), false}}));
  s.AddRelation(Relation("T", {{"x", DataType::Int64(), false}}));
  s.AddForeignKey(ForeignKey{"R", {"a", "b"}, "T", {"x"}});
  EXPECT_FALSE(s.Validate().ok());
  Schema s2("Bad2", Metamodel::kRelational);
  s2.AddRelation(Relation("R", {{"a", DataType::Int64(), false}}));
  s2.AddRelation(Relation("T", {{"x", DataType::Int64(), false}}));
  s2.AddForeignKey(ForeignKey{"R", {"nope"}, "T", {"x"}});
  EXPECT_EQ(s2.Validate().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ValidateRejectsNonPrimitiveRelationalAttribute) {
  Schema s("Bad", Metamodel::kRelational);
  s.AddRelation(Relation(
      "R", {{"nested", DataType::Struct({{"x", DataType::Int64()}}), false}}));
  EXPECT_FALSE(s.Validate().ok());
  // The same shape is fine in the nested metamodel.
  Schema n("Ok", Metamodel::kNested);
  n.AddRelation(Relation(
      "R", {{"nested", DataType::Struct({{"x", DataType::Int64()}}), false}}));
  EXPECT_TRUE(n.Validate().ok());
}

Schema PersonHierarchy() {
  return SchemaBuilder("ER", Metamodel::kEntityRelationship)
      .EntityType("Person", "",
                  {{"Id", DataType::Int64()}, {"Name", DataType::String()}})
      .EntityType("Employee", "Person", {{"Dept", DataType::String()}})
      .EntityType("Customer", "Person",
                  {{"CreditScore", DataType::Int64()},
                   {"BillingAddr", DataType::String()}})
      .EntitySet("Persons", "Person")
      .Build();
}

TEST(SchemaTest, InheritanceQueries) {
  Schema er = PersonHierarchy();
  EXPECT_TRUE(er.IsSubtypeOf("Employee", "Person"));
  EXPECT_TRUE(er.IsSubtypeOf("Person", "Person"));
  EXPECT_FALSE(er.IsSubtypeOf("Person", "Employee"));
  EXPECT_FALSE(er.IsSubtypeOf("Employee", "Customer"));
  EXPECT_EQ(er.SubtypeClosure("Person"),
            (std::vector<std::string>{"Person", "Employee", "Customer"}));
  EXPECT_EQ(er.DirectSubtypes("Person"),
            (std::vector<std::string>{"Employee", "Customer"}));

  auto attrs = er.AllAttributesOf("Employee");
  ASSERT_TRUE(attrs.ok());
  ASSERT_EQ(attrs->size(), 3u);
  EXPECT_EQ((*attrs)[0].name, "Id");
  EXPECT_EQ((*attrs)[1].name, "Name");
  EXPECT_EQ((*attrs)[2].name, "Dept");
}

TEST(SchemaTest, ValidateRejectsInheritanceCycle) {
  Schema s("Bad", Metamodel::kEntityRelationship);
  s.AddEntityType(EntityType{"A", "B", {}, false});
  s.AddEntityType(EntityType{"B", "A", {}, false});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsShadowedAttribute) {
  Schema s("Bad", Metamodel::kEntityRelationship);
  s.AddEntityType(
      EntityType{"A", "", {{"x", DataType::Int64(), false}}, false});
  s.AddEntityType(
      EntityType{"B", "A", {{"x", DataType::String(), false}}, false});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsEntitySetWithUnknownRoot) {
  Schema s("Bad", Metamodel::kEntityRelationship);
  s.AddEntityType(EntityType{"A", "", {}, false});
  s.AddEntitySet(EntitySet{"As", "Missing"});
  EXPECT_EQ(s.Validate().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, AllElementsEnumeratesEverything) {
  Schema s = StudentsSchema();
  std::vector<ElementRef> elements = s.AllElements();
  // 2 relations + 2 + 3 attributes.
  EXPECT_EQ(elements.size(), 7u);
  EXPECT_EQ(elements[0].ToString(), "Names");
  EXPECT_EQ(elements[1].ToString(), "Names.SID");
}

TEST(SchemaTest, ElementRefParseRoundTrip) {
  ElementRef ref = ElementRef::Parse("Names.SID");
  EXPECT_EQ(ref.container, "Names");
  EXPECT_EQ(ref.attribute, "SID");
  EXPECT_EQ(ref.ToString(), "Names.SID");
  ElementRef bare = ElementRef::Parse("Names");
  EXPECT_EQ(bare.container, "Names");
  EXPECT_TRUE(bare.attribute.empty());
}

TEST(SchemaTest, FindAttributeResolvesRelationsAndEntities) {
  Schema s = StudentsSchema();
  const Attribute* a = s.FindAttribute(ElementRef{"Addresses", "Country"});
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name, "Country");
  EXPECT_EQ(s.FindAttribute(ElementRef{"Addresses", "Nope"}), nullptr);
  EXPECT_EQ(s.FindAttribute(ElementRef{"Addresses", ""}), nullptr);

  Schema er = PersonHierarchy();
  const Attribute* dept = er.FindAttribute(ElementRef{"Employee", "Dept"});
  ASSERT_NE(dept, nullptr);
  EXPECT_TRUE(dept->type->Equals(*DataType::String()));
}

TEST(SchemaBuilderTest, BuildCheckedReportsErrors) {
  auto result = SchemaBuilder("Bad", Metamodel::kEntityRelationship)
                    .EntitySet("Xs", "NoSuchType")
                    .BuildChecked();
  EXPECT_FALSE(result.ok());
}

TEST(SchemaTest, ToStringMentionsEveryConstruct) {
  Schema er = PersonHierarchy();
  std::string text = er.ToString();
  EXPECT_NE(text.find("entity Employee : Person"), std::string::npos);
  EXPECT_NE(text.find("entityset Persons of Person"), std::string::npos);
}

}  // namespace
}  // namespace mm2::model
