#!/usr/bin/env python3
"""Diff two BENCH_<label>.json trajectories; exit nonzero on regression.

Usage:
  scripts/bench_compare.py BASELINE.json CANDIDATE.json [options]

A record is a {"bench", "metric", "value", "unit"} object as written by
scripts/bench_all.sh (a bare JSON array of records is accepted too).
Records may additionally carry "threads" (the MM2_THREADS-resolved worker
count the bench process ran under): a pair of records taken at different
thread counts is never compared — parallel walls are not comparable to
serial walls — and is reported separately instead. Records without the
field (pre-parallel baselines) compare against anything. The "storage"
stamp (the MM2_STORAGE-resolved default backend) works the same way:
records taken under different storage backends are skipped, not compared,
and --storage MODE refuses records stamped with any other mode outright.
Records are keyed by (bench, metric) and classified:

  time metrics   unit == "us": a candidate slower than
                 baseline * (1 + threshold) AND by more than --abs-floor-us
                 is a regression. Improvements never fail.
  memory metrics unit == "kb" (the mem.* family, e.g. mem.peak_rss_kb): a
                 candidate above baseline * (1 + --mem-threshold) AND by
                 more than --abs-floor-kb is a regression. Improvements
                 never fail. The family has its own threshold because RSS
                 is far less jittery than wall time, so a tighter gate
                 holds without flaking.
  count metrics  everything else: informational only by default, because
                 google-benchmark chooses iteration counts per run, which
                 makes raw counter totals run-dependent. --strict-counts
                 turns any relative change above the threshold into a
                 failure (useful when comparing runs with pinned
                 --benchmark_min_time against the same binary).

Per-metric thresholds override the default via repeatable
  --metric-threshold 'GLOB=FRACTION'
e.g. --metric-threshold 'chase.run.latency_us.*=1.0' allows 2x on the
chase while everything else stays at the default.

Exit codes: 0 = no regression, 1 = regression(s), 2 = usage/input error.
"""

import argparse
import fnmatch
import json
import sys


def load_records(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot load {path}: {e}")
    records = doc["records"] if isinstance(doc, dict) else doc
    out = {}
    for r in records:
        out[(r["bench"], r["metric"])] = (float(r["value"]), r.get("unit", ""),
                                          r.get("threads"), r.get("storage"))
    return out


def threshold_for(metric, overrides, default):
    for pattern, frac in overrides:
        if fnmatch.fnmatch(metric, pattern):
            return frac
    return default


def main():
    parser = argparse.ArgumentParser(
        description="Compare two bench_all.sh trajectories.")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.5,
                        help="default allowed relative slowdown for time "
                             "metrics (0.5 = 50%%; default %(default)s)")
    parser.add_argument("--abs-floor-us", type=float, default=50.0,
                        help="ignore time regressions smaller than this many "
                             "microseconds (jitter floor; default %(default)s)")
    parser.add_argument("--mem-threshold", type=float, default=0.25,
                        help="allowed relative growth for memory (unit 'kb') "
                             "metrics (0.25 = 25%%; default %(default)s)")
    parser.add_argument("--abs-floor-kb", type=float, default=4096.0,
                        help="ignore memory regressions smaller than this "
                             "many KiB (allocator noise floor; default "
                             "%(default)s)")
    parser.add_argument("--metric-threshold", action="append", default=[],
                        metavar="GLOB=FRACTION",
                        help="per-metric threshold override, repeatable")
    parser.add_argument("--strict-counts", action="store_true",
                        help="fail on count-metric drift above the threshold")
    parser.add_argument("--strict-missing", action="store_true",
                        help="fail when the candidate lacks baseline metrics")
    parser.add_argument("--storage", metavar="MODE",
                        help="refuse records stamped with a storage mode "
                             "other than MODE (e.g. 'segmented')")
    parser.add_argument("--list", action="store_true",
                        help="print every compared metric, not just offenders")
    args = parser.parse_args()

    overrides = []
    for spec in args.metric_threshold:
        pattern, sep, frac = spec.partition("=")
        if not sep:
            sys.exit(f"error: bad --metric-threshold '{spec}' "
                     "(want GLOB=FRACTION)")
        try:
            overrides.append((pattern, float(frac)))
        except ValueError:
            sys.exit(f"error: bad fraction in --metric-threshold '{spec}'")

    baseline = load_records(args.baseline)
    candidate = load_records(args.candidate)

    if args.storage:
        for label, records in (("baseline", baseline),
                               ("candidate", candidate)):
            stamped = {s for (_, _, _, s) in records.values()
                       if s is not None}
            bad = stamped - {args.storage}
            if bad:
                sys.exit(f"error: {label} contains records stamped "
                         f"storage={sorted(bad)} but --storage "
                         f"{args.storage} was requested")

    regressions = []
    missing = []
    thread_mismatches = []
    storage_mismatches = []
    compared = 0
    for key, (base_value, unit, base_threads,
              base_storage) in sorted(baseline.items()):
        bench, metric = key
        if key not in candidate:
            missing.append(key)
            continue
        cand_value, _, cand_threads, cand_storage = candidate[key]
        if (base_threads is not None and cand_threads is not None
                and base_threads != cand_threads):
            thread_mismatches.append((key, base_threads, cand_threads))
            continue
        if (base_storage is not None and cand_storage is not None
                and base_storage != cand_storage):
            storage_mismatches.append((key, base_storage, cand_storage))
            continue
        compared += 1
        is_time = unit == "us"
        is_memory = unit == "kb"
        default = args.mem_threshold if is_memory else args.threshold
        frac = threshold_for(metric, overrides, default)
        if base_value > 0:
            ratio = cand_value / base_value
        else:
            ratio = float("inf") if cand_value > 0 else 1.0
        if args.list:
            print(f"  {bench} {metric}: {base_value:g} -> {cand_value:g} "
                  f"({ratio:.2f}x, {unit or 'value'})")
        over = ratio > 1.0 + frac
        if is_time:
            if over and cand_value - base_value > args.abs_floor_us:
                regressions.append((bench, metric, base_value, cand_value,
                                    ratio, frac))
        elif is_memory:
            if over and cand_value - base_value > args.abs_floor_kb:
                regressions.append((bench, metric, base_value, cand_value,
                                    ratio, frac))
        elif args.strict_counts:
            drifted = over or (base_value > 0 and ratio < 1.0 - frac)
            if drifted:
                regressions.append((bench, metric, base_value, cand_value,
                                    ratio, frac))

    new_keys = len([k for k in candidate if k not in baseline])
    print(f"compared {compared} metrics "
          f"({len(missing)} missing in candidate, {new_keys} new, "
          f"{len(thread_mismatches)} skipped for thread-count mismatch, "
          f"{len(storage_mismatches)} skipped for storage-mode mismatch)")

    if thread_mismatches:
        for (bench, metric), bt, ct in thread_mismatches[:10]:
            print(f"  not compared (threads {bt} vs {ct}): {bench} {metric}")
        if len(thread_mismatches) > 10:
            print(f"  ... and {len(thread_mismatches) - 10} more")

    if storage_mismatches:
        for (bench, metric), bs, cs in storage_mismatches[:10]:
            print(f"  not compared (storage {bs} vs {cs}): {bench} {metric}")
        if len(storage_mismatches) > 10:
            print(f"  ... and {len(storage_mismatches) - 10} more")

    if missing:
        for bench, metric in missing[:10]:
            print(f"  missing in candidate: {bench} {metric}")
        if len(missing) > 10:
            print(f"  ... and {len(missing) - 10} more")

    if regressions:
        regressions.sort(key=lambda r: r[4], reverse=True)
        print(f"{len(regressions)} regression(s) "
              f"(threshold {args.threshold:.0%} default):")
        for bench, metric, base_value, cand_value, ratio, frac in regressions:
            print(f"  REGRESSION {bench} {metric}: "
                  f"{base_value:g} -> {cand_value:g} "
                  f"({ratio:.2f}x, allowed {1 + frac:.2f}x)")
        return 1
    if args.strict_missing and missing:
        print("failing: candidate is missing baseline metrics "
              "(--strict-missing)")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
