#!/usr/bin/env bash
# Sanitizer gate: builds the whole tree with ASan+UBSan and runs ctest.
# The obs subsystem is the reason this exists — its registry/tracer mutexes
# and counter atomics should stay race- and UB-clean — but the gate covers
# every target. Usage:
#   scripts/check.sh                # address,undefined (default)
#   scripts/check.sh --tsan         # ThreadSanitizer over the storage layer:
#                                   # lazy index construction races with
#                                   # concurrent Probe()s, so the chase
#                                   # differential + instance suites run
#                                   # under -fsanitize=thread (build-tsan/)
#   MM2_SANITIZE=thread scripts/check.sh   # TSan over the full suite
#   BUILD_DIR=/tmp/san scripts/check.sh
#   MM2_BENCH_SMOKE=1 scripts/check.sh   # also run the bench-regression
#                                        # harness end-to-end at tiny sizes
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZERS="${MM2_SANITIZE:-address,undefined}"
BUILD_DIR="${BUILD_DIR:-build-sanitize}"
TEST_FILTER=""

if [[ "${1:-}" == "--tsan" ]]; then
  SANITIZERS="thread"
  BUILD_DIR="${BUILD_DIR_TSAN:-build-tsan}"
  # The suites exercising RelationInstance's index/delta machinery
  # (concurrent-probe test, naive-vs-indexed differential sweep) plus the
  # parallel executor: the work-stealing pool itself, the threads-axis
  # chase differentials, and the sharded parallel hash join. InternPool /
  # ValueIntern cover the sharded string pool: racing Intern() calls and
  # lock-free Get()s from freshly published chunks.
  # EventLog/CancelToken/Watchdog join the filter: the event log's ring
  # mutex + enabled/emitted atomics and the cancel token's relaxed stop
  # flag are exactly the kind of cross-thread state TSan is here for.
  # ChaseStratifiedDiffProperty/ClosureStratifiedDiffProperty/Analysis/
  # WatchdogForesight cover the stratified scheduler + analysis attach —
  # the scheduler state is per-run but its metric mirroring and foresight
  # events ride the shared registry/event-log mutexes.
  # Segment/RelationSegment/ChaseSegmentedDiffProperty/
  # ClosureSegmentedDiffProperty cover the columnar segment layer: the
  # const PrepareSegments reseal under index_mu_, segment probes racing
  # the chase's parallel match fan-out, and the batched retain pass whose
  # candidate chunks are evaluated across the worker pool.
  # EqualsUpToNulls/TombstoneDeltaView/MaintainDRed/IncrementalSweep cover
  # the incremental-exchange layer: tombstone-aware delta views slicing
  # runs the (const, mutex-guarded) reseal path also mutates, and session
  # maintenance driving Erase/Insert churn against the lazily built
  # log-position map under the same index_mu_.
  TEST_FILTER="ChaseDiffProperty|ClosureDiffProperty|ChaseSerializeDiffProperty|RelationInstance|InstanceTest|InternPool|ValueIntern|ThreadPool|ResolveThreadCount|ChaseParallelDiffProperty|ClosureParallelDiffProperty|ChaseStratifiedDiffProperty|ClosureStratifiedDiffProperty|AnalysisTest|WatchdogForesight|ParallelHashJoin|Parallelism|EventLog|CancelToken|Watchdog|SegmentInserterTest|SegmentMergeTest|SegmentProbeTest|RelationSegmentTest|InstanceSegmentTest|ChaseSegmentedDiffProperty|ClosureSegmentedDiffProperty|EqualsUpToNulls|TombstoneDeltaView|MaintainDRed|IncrementalSweep"
fi

cmake -B "$BUILD_DIR" -S . \
  -DMM2_SANITIZE="$SANITIZERS" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)"
if [[ -n "$TEST_FILTER" ]]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" \
    -R "$TEST_FILTER"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
fi
echo "sanitizer check ($SANITIZERS) passed"

# Structured-log smoke gate (default path only): drive the demo session
# through the shell under MM2_LOG=json and validate that every event line
# on stderr is standalone JSON — the contract downstream log collectors
# depend on. Runs on the sanitizer build, so it also shakes the log path.
if [[ -z "$TEST_FILTER" && -x "$BUILD_DIR/examples/mm2_shell" ]]; then
  LOG_TMP="$(mktemp)"
  trap 'rm -f "$LOG_TMP"' EXIT
  MM2_LOG=json "$BUILD_DIR/examples/mm2_shell" \
    < examples/data/demo_session.mm2 > /dev/null 2> "$LOG_TMP"
  python3 - "$LOG_TMP" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
if not lines:
    sys.exit("error: MM2_LOG=json produced no event lines")
for i, line in enumerate(lines, 1):
    try:
        event = json.loads(line)
    except json.JSONDecodeError as err:
        sys.exit(f"error: stderr line {i} is not JSON ({err}): {line!r}")
    for key in ("seq", "t_us", "level", "event"):
        if key not in event:
            sys.exit(f"error: event line {i} lacks '{key}': {line!r}")
print(f"structured-log smoke gate passed ({len(lines)} JSON event lines)")
EOF
fi

# Segmented-storage smoke gate (default path only): the demo exchange run
# under MM2_STORAGE=segmented must exit cleanly and print a bit-identical
# materialized instance + query answer to the indexed run, and the
# env-unset default (which now resolves to segmented) must match both.
# stats/explain are excluded — their storage sections legitimately differ
# by mode.
if [[ -z "$TEST_FILTER" && -x "$BUILD_DIR/examples/mm2_shell" ]]; then
  SEG_SESSION="$(mktemp)"
  SEG_IDX_OUT="$(mktemp)"
  SEG_SEG_OUT="$(mktemp)"
  SEG_DEF_OUT="$(mktemp)"
  trap 'rm -f "${LOG_TMP:-}" "$SEG_SESSION" "$SEG_IDX_OUT" "$SEG_SEG_OUT" "$SEG_DEF_OUT"' EXIT
  {
    echo "load-schema examples/data/school.schema"
    echo "load-schema examples/data/school_v2.schema"
    echo "load-instance D examples/data/school.instance"
    echo "load-mapping examples/data/split.mapping"
    echo "exchange Dprime mapSSp D"
    echo "show instance Dprime"
    echo "answer mapSSp D Q(n, a) :- NamesP(s, n), Foreign(s, a, c)"
    echo "quit"
  } > "$SEG_SESSION"
  MM2_STORAGE=indexed "$BUILD_DIR/examples/mm2_shell" \
    < "$SEG_SESSION" > "$SEG_IDX_OUT" 2> /dev/null
  MM2_STORAGE=segmented "$BUILD_DIR/examples/mm2_shell" \
    < "$SEG_SESSION" > "$SEG_SEG_OUT" 2> /dev/null
  env -u MM2_STORAGE "$BUILD_DIR/examples/mm2_shell" \
    < "$SEG_SESSION" > "$SEG_DEF_OUT" 2> /dev/null
  if ! diff -u "$SEG_IDX_OUT" "$SEG_SEG_OUT"; then
    echo "error: MM2_STORAGE=segmented demo output diverged from indexed" >&2
    exit 1
  fi
  if ! diff -u "$SEG_SEG_OUT" "$SEG_DEF_OUT"; then
    echo "error: env-unset default demo output diverged from segmented" >&2
    exit 1
  fi
  echo "segmented-storage smoke gate passed (demo output bit-identical under indexed, segmented, and the env-unset default)"
fi

# Incremental-exchange smoke gate (default path only): drive an exchange,
# queue a delta (`apply`), `maintain` it, and re-chase the post-delta
# source from scratch; the maintained target must be equal up to null
# renaming (`eqcheck ... equal`) and the whole session byte-identical
# under MM2_STORAGE=indexed, =segmented, and the env-unset default — the
# incremental path must not leak storage-mode differences into results.
if [[ -z "$TEST_FILTER" && -x "$BUILD_DIR/examples/mm2_shell" ]]; then
  INC_SESSION="$(mktemp)"
  INC_IDX_OUT="$(mktemp)"
  INC_SEG_OUT="$(mktemp)"
  INC_DEF_OUT="$(mktemp)"
  trap 'rm -f "${LOG_TMP:-}" "$INC_SESSION" "$INC_IDX_OUT" "$INC_SEG_OUT" "$INC_DEF_OUT"' EXIT
  {
    echo "load-schema examples/data/school.schema"
    echo "load-schema examples/data/school_v2.schema"
    echo "load-instance D examples/data/school.instance"
    echo "load-instance Dafter examples/data/school_delta.instance"
    echo "load-mapping examples/data/split.mapping"
    echo "exchange Dprime mapSSp D"
    echo 'apply +Names(7, "Zed")'
    echo 'apply +Addresses(7, "9 Elm", "US")'
    echo 'apply -Names(2, "Bob")'
    echo "maintain mapSSp"
    echo "exchange Rechase mapSSp Dafter"
    echo "eqcheck Dprime Rechase"
    echo "show instance Dprime"
    echo "quit"
  } > "$INC_SESSION"
  MM2_STORAGE=indexed "$BUILD_DIR/examples/mm2_shell" \
    < "$INC_SESSION" > "$INC_IDX_OUT" 2> /dev/null
  MM2_STORAGE=segmented "$BUILD_DIR/examples/mm2_shell" \
    < "$INC_SESSION" > "$INC_SEG_OUT" 2> /dev/null
  env -u MM2_STORAGE "$BUILD_DIR/examples/mm2_shell" \
    < "$INC_SESSION" > "$INC_DEF_OUT" 2> /dev/null
  if ! grep -q "eqcheck Dprime Rechase: equal" "$INC_IDX_OUT"; then
    echo "error: maintained target diverged from the from-scratch re-chase" >&2
    exit 1
  fi
  if ! diff -u "$INC_IDX_OUT" "$INC_SEG_OUT"; then
    echo "error: incremental session output diverged under MM2_STORAGE=segmented" >&2
    exit 1
  fi
  if ! diff -u "$INC_SEG_OUT" "$INC_DEF_OUT"; then
    echo "error: incremental session output diverged under the env-unset default" >&2
    exit 1
  fi
  echo "incremental smoke gate passed (maintain ≡ re-chase, byte-identical across storage modes)"
fi

# DOT-validity gate (default path only): `explain mapping --dot` over the
# demo mapping must emit a syntactically sound graphviz digraph. Balanced
# braces + edge/node shape are checked in python; when graphviz happens to
# be installed, `dot -Tcanon` parses it for real.
if [[ -z "$TEST_FILTER" && -x "$BUILD_DIR/examples/mm2_shell" ]]; then
  DOT_TMP="$(mktemp)"
  trap 'rm -f "${LOG_TMP:-}" "$DOT_TMP"' EXIT
  {
    echo "load-schema examples/data/school.schema"
    echo "load-schema examples/data/school_v2.schema"
    echo "load-mapping examples/data/split.mapping"
    echo "explain mapping mapSSp --dot"
    echo "quit"
  } | "$BUILD_DIR/examples/mm2_shell" 2> /dev/null \
    | sed 's/^mm2> //' \
    | sed -n '/^digraph mapping_analysis {$/,/^}$/p' > "$DOT_TMP"
  python3 - "$DOT_TMP" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
if not text.startswith("digraph mapping_analysis {"):
    sys.exit("error: explain mapping --dot produced no digraph")
depth = 0
for i, ch in enumerate(text):
    if ch == "{": depth += 1
    elif ch == "}":
        depth -= 1
        if depth < 0:
            sys.exit(f"error: unbalanced '}}' at offset {i}")
if depth != 0:
    sys.exit(f"error: {depth} unclosed braces in DOT output")
nodes = re.findall(r'^\s*[rp]\d+ \[', text, re.M)
edges = re.findall(r'^\s*[rp]\d+ -> [rp]\d+', text, re.M)
if not nodes:
    sys.exit("error: DOT output declares no nodes")
print(f"dot gate passed ({len(nodes)} nodes, {len(edges)} edges)")
EOF
  if command -v dot > /dev/null 2>&1; then
    dot -Tcanon "$DOT_TMP" > /dev/null
    echo "dot gate: graphviz parse also passed"
  fi
fi

# Opt-in bench smoke: exercises bench_all.sh + bench_compare.py end to end
# at tiny sizes — a self-compare must pass, and an inflated copy must fail,
# proving the regression gate actually gates.
if [[ "${MM2_BENCH_SMOKE:-0}" == "1" ]]; then
  SMOKE_DIR="$(mktemp -d)"
  trap 'rm -rf "$SMOKE_DIR"' EXIT
  MM2_BENCH_SMOKE=1 MM2_BENCH_OUT_DIR="$SMOKE_DIR" \
    scripts/bench_all.sh smoke "$BUILD_DIR"
  python3 scripts/bench_compare.py \
    "$SMOKE_DIR/BENCH_smoke.json" "$SMOKE_DIR/BENCH_smoke.json"
  python3 - "$SMOKE_DIR" <<'EOF'
import json, sys
smoke_dir = sys.argv[1]
doc = json.load(open(f"{smoke_dir}/BENCH_smoke.json"))
for r in doc["records"]:
    if r["unit"] == "us":
        r["value"] *= 10
json.dump(doc, open(f"{smoke_dir}/BENCH_inflated.json", "w"))
EOF
  if python3 scripts/bench_compare.py \
      "$SMOKE_DIR/BENCH_smoke.json" "$SMOKE_DIR/BENCH_inflated.json"; then
    echo "error: bench_compare.py missed a 10x synthetic regression" >&2
    exit 1
  fi
  echo "bench smoke gate passed (self-compare ok, 10x inflation caught)"
fi
