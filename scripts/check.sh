#!/usr/bin/env bash
# Sanitizer gate: builds the whole tree with ASan+UBSan and runs ctest.
# The obs subsystem is the reason this exists — its registry/tracer mutexes
# and counter atomics should stay race- and UB-clean — but the gate covers
# every target. Usage:
#   scripts/check.sh                # address,undefined (default)
#   MM2_SANITIZE=thread scripts/check.sh
#   BUILD_DIR=/tmp/san scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZERS="${MM2_SANITIZE:-address,undefined}"
BUILD_DIR="${BUILD_DIR:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . \
  -DMM2_SANITIZE="$SANITIZERS" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
echo "sanitizer check ($SANITIZERS) passed"
