#!/usr/bin/env bash
# Unified bench driver: runs every bench_* binary under <build-dir>/bench,
# collects the '{"bench": ...}' JSON metric lines that bench/bench_report.h
# prints after each google-benchmark run, and writes one trajectory file:
#
#   BENCH_<label>.json = {"label": "<label>", "mm2_threads": N,
#                         "hw_concurrency": M, "records": [ {bench,metric,
#                         value,unit,threads,hw_concurrency,storage}, ... ]}
#
# Compare two trajectories with scripts/bench_compare.py (which refuses to
# diff records taken at different thread counts or storage modes).
#
# Usage: scripts/bench_all.sh <label> [build-dir]    (build-dir: ./build)
# Env:
#   MM2_THREADS       ambient worker count for the parallel chase/join
#                     paths (default 1 = serial); inherited by every bench
#                     binary and recorded in the envelope + every record
#   MM2_BENCH_ARGS    extra flags passed to every bench binary
#                     (e.g. --benchmark_min_time=0.05; the seed baselines
#                     are taken with --benchmark_min_time=0.05, see
#                     EXPERIMENTS.md)
#   MM2_BENCH_SMOKE   =1: tiny-size mode for CI — minimal measuring time
#                     and a filter dropping benchmark args >= 1000
#   MM2_BENCH_FILTER  only run bench binaries whose name matches this
#                     (extended) regex, e.g. 'chase|compose'
#   MM2_BENCH_OUT_DIR directory for BENCH_<label>.json (default: repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:?usage: scripts/bench_all.sh <label> [build-dir]}"
BUILD_DIR="${2:-build}"
OUT_DIR="${MM2_BENCH_OUT_DIR:-.}"
mkdir -p "$OUT_DIR"
OUT="$OUT_DIR/BENCH_${LABEL}.json"

ARGS=(${MM2_BENCH_ARGS:-})
if [[ "${MM2_BENCH_SMOKE:-0}" == "1" ]]; then
  # Keep only benchmarks whose trailing size argument stays below 4 digits
  # (named-arg grids like rows:32000 don't end in the size, so also drop
  # named sizes >= 5 digits), and spend minimal time per benchmark: the
  # smoke gate checks that the pipeline works, not that the numbers are
  # pretty.
  ARGS+=("--benchmark_min_time=0.01"
         "--benchmark_filter=-(/[0-9]{4,}$|rows:[0-9]{5,})")
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

count=0
for bench in "$BUILD_DIR"/bench/bench_*; do
  [[ -f "$bench" && -x "$bench" ]] || continue
  name="$(basename "$bench")"
  if [[ -n "${MM2_BENCH_FILTER:-}" ]] && ! [[ "$name" =~ ${MM2_BENCH_FILTER} ]]; then
    continue
  fi
  echo ">> $name" >&2
  "$bench" ${ARGS[@]+"${ARGS[@]}"} | grep '^{"bench"' >> "$TMP" || {
    echo "error: $name emitted no metric lines (broken MM2_BENCH_MAIN?)" >&2
    exit 1
  }
  count=$((count + 1))
done

if [[ "$count" -eq 0 ]]; then
  echo "error: no bench binaries under $BUILD_DIR/bench — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

{
  printf '{"label": "%s", "mm2_threads": %s, "hw_concurrency": %s, "records": [\n' \
    "$LABEL" "${MM2_THREADS:-1}" "$(nproc)"
  awk 'NR > 1 { printf ",\n" } { printf "%s", $0 }' "$TMP"
  printf '\n]}\n'
} > "$OUT"
echo "wrote $OUT ($(wc -l < "$TMP") metrics from $count benches)" >&2
