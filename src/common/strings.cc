#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace mm2 {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> TokenizeIdentifier(std::string_view name) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(ToLower(current));
      current.clear();
    }
  };
  for (std::size_t i = 0; i < name.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(name[i]);
    if (c == '_' || c == '-' || c == ' ' || c == '.' || c == '/') {
      flush();
      continue;
    }
    if (std::isdigit(c)) {
      if (!current.empty() &&
          !std::isdigit(static_cast<unsigned char>(current.back()))) {
        flush();
      }
      current.push_back(static_cast<char>(c));
      continue;
    }
    if (std::isupper(c)) {
      // Break before an uppercase letter, except inside an acronym run that
      // continues ("HTTPServer" -> "http", "server").
      bool prev_upper =
          i > 0 && std::isupper(static_cast<unsigned char>(name[i - 1]));
      bool next_lower = i + 1 < name.size() &&
                        std::islower(static_cast<unsigned char>(name[i + 1]));
      if (!current.empty() && (!prev_upper || next_lower)) flush();
      current.push_back(static_cast<char>(c));
      continue;
    }
    if (!current.empty() &&
        std::isdigit(static_cast<unsigned char>(current.back()))) {
      flush();
    }
    current.push_back(static_cast<char>(c));
  }
  flush();
  return tokens;
}

bool IsAbbreviation(std::string_view abbr, std::string_view full) {
  if (abbr.empty() || abbr.size() > full.size()) return false;
  if (abbr[0] != full[0]) return false;
  std::size_t j = 0;
  for (std::size_t i = 0; i < full.size() && j < abbr.size(); ++i) {
    if (full[i] == abbr[j]) ++j;
  }
  return j == abbr.size();
}

std::size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<std::size_t> row(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    std::size_t diag = row[0];
    row[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, subst});
    }
  }
  return row[a.size()];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

double TrigramSimilarity(std::string_view a, std::string_view b) {
  if (a.size() < 3 || b.size() < 3) return EditSimilarity(a, b);
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  std::set<std::string> ga;
  std::set<std::string> gb;
  for (std::size_t i = 0; i + 3 <= la.size(); ++i) ga.insert(la.substr(i, 3));
  for (std::size_t i = 0; i + 3 <= lb.size(); ++i) gb.insert(lb.substr(i, 3));
  std::size_t both = 0;
  for (const std::string& g : ga) both += gb.count(g);
  std::size_t all = ga.size() + gb.size() - both;
  if (all == 0) return 1.0;
  return static_cast<double>(both) / static_cast<double>(all);
}

}  // namespace mm2
