// Work-stealing thread pool shared by the parallel chase match phase, the
// parallel hash join in algebra::Evaluate, and the ComputeCore candidate
// scan. Design points:
//
//   * One deque per worker, guarded by a per-worker mutex. Owners push/pop
//     at the back (LIFO, cache-friendly), thieves steal from the front
//     (FIFO, oldest-first). No lock-free cleverness: the tasks this pool
//     runs are chunk-sized (hundreds of probes each), so a mutex per deque
//     is nowhere near the critical path, and mutexes keep the pool
//     trivially ThreadSanitizer-clean.
//   * Submit returns a std::future so callers can propagate values and
//     exceptions from workers; parallel regions are fork/join (ParallelFor)
//     and results are always concatenated in submission order, which is how
//     the chase keeps its output bit-identical to the serial executor.
//   * Construction with size() <= 1 never spawns threads; Submit runs the
//     task inline. This is the graceful single-thread fallback that keeps
//     the PR-3 serial paths the differential oracle.
//
// Thread-count resolution (ResolveThreadCount): an explicit request wins,
// else the MM2_THREADS environment variable, else 1 (serial). The pool
// never silently defaults to hardware_concurrency — parallelism is opt-in.
#ifndef MM2_COMMON_THREAD_POOL_H_
#define MM2_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mm2::common {

// Resolves the effective worker count: `requested` if nonzero, else the
// MM2_THREADS environment variable (when set to a positive integer), else 1.
// The result is clamped to [1, 256].
std::size_t ResolveThreadCount(std::size_t requested);

// Aggregate counters, readable while the pool runs (relaxed atomics inside;
// Stats() returns a plain-value snapshot).
struct ThreadPoolStats {
  std::uint64_t submitted = 0;   // tasks handed to Submit()
  std::uint64_t executed = 0;    // tasks dequeued and run (counted at start,
                                 // so a completed future implies inclusion)
  std::uint64_t stolen = 0;      // tasks a thief took from another deque
  std::uint64_t peak_queue = 0;  // max pending tasks observed across deques
};

class ThreadPool {
 public:
  // Spawns `threads` workers when threads > 1 (the submitting thread only
  // blocks on futures; all chunks run on pool workers); threads <= 1 spawns
  // none and Submit runs inline.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Logical width of the pool (what the caller asked for, >= 1). Partition
  // work into ~size() chunks.
  std::size_t size() const { return size_; }

  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      // Single-thread fallback: run inline, still counting the task so
      // telemetry stays comparable across thread counts.
      BumpSubmitted();
      (*task)();
      BumpExecuted();
      return future;
    }
    Enqueue([task] { (*task)(); });
    return future;
  }

  // Runs fn(chunk_begin, chunk_end, chunk_index) over [0, total) split into
  // at most size() contiguous chunks, blocking until every chunk completes.
  // Chunk 0 covers the lowest indices — callers that append chunk-local
  // results in chunk order reproduce the serial iteration order exactly.
  void ParallelFor(
      std::size_t total,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  ThreadPoolStats Stats() const;

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void Enqueue(std::function<void()> task);
  void WorkerLoop(std::size_t worker_index);
  bool TryRunOne(std::size_t worker_index);
  void BumpSubmitted();
  void BumpExecuted();

  std::size_t size_ = 1;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool shutting_down_ = false;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> peak_queue_{0};
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};
};

}  // namespace mm2::common

#endif  // MM2_COMMON_THREAD_POOL_H_
