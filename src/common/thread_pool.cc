#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace mm2::common {

std::size_t ResolveThreadCount(std::size_t requested) {
  std::size_t resolved = requested;
  if (resolved == 0) {
    if (const char* env = std::getenv("MM2_THREADS")) {
      char* end = nullptr;
      long parsed = std::strtol(env, &end, 10);
      if (end != env && parsed > 0) {
        resolved = static_cast<std::size_t>(parsed);
      }
    }
  }
  if (resolved == 0) resolved = 1;
  return std::min<std::size_t>(resolved, 256);
}

ThreadPool::ThreadPool(std::size_t threads) : size_(std::max<std::size_t>(threads, 1)) {
  if (size_ <= 1) return;
  queues_.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    shutting_down_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::BumpSubmitted() {
  submitted_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::BumpExecuted() {
  executed_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::Enqueue(std::function<void()> task) {
  BumpSubmitted();
  std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  std::uint64_t pending = pending_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = peak_queue_.load(std::memory_order_relaxed);
  while (pending > peak &&
         !peak_queue_.compare_exchange_weak(peak, pending,
                                            std::memory_order_relaxed)) {
  }
  wake_cv_.notify_one();
}

bool ThreadPool::TryRunOne(std::size_t worker_index) {
  std::function<void()> task;
  // Own deque first (back = LIFO, most recently pushed, warmest cache)...
  {
    WorkerQueue& own = *queues_[worker_index];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  // ...then steal from the front (FIFO, oldest) of the other deques.
  if (!task) {
    for (std::size_t offset = 1; offset < queues_.size() && !task; ++offset) {
      WorkerQueue& victim =
          *queues_[(worker_index + offset) % queues_.size()];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        stolen_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  // Count before running: anyone unblocked by the task's future must
  // already see this task reflected in Stats().executed.
  BumpExecuted();
  task();
  return true;
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  for (;;) {
    if (TryRunOne(worker_index)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (shutting_down_) return;
    if (pending_.load(std::memory_order_relaxed) > 0) continue;
    wake_cv_.wait(lock, [this] {
      return shutting_down_ || pending_.load(std::memory_order_relaxed) > 0;
    });
    if (shutting_down_) return;
  }
}

void ThreadPool::ParallelFor(
    std::size_t total,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (total == 0) return;
  std::size_t chunks = std::min(size_, total);
  if (chunks <= 1 || workers_.empty()) {
    fn(0, total, 0);
    return;
  }
  std::size_t base = total / chunks;
  std::size_t extra = total % chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t len = base + (c < extra ? 1 : 0);
    std::size_t end = begin + len;
    futures.push_back(Submit([&fn, begin, end, c] { fn(begin, end, c); }));
    begin = end;
  }
  for (auto& future : futures) future.get();
}

ThreadPoolStats ThreadPool::Stats() const {
  ThreadPoolStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.stolen = stolen_.load(std::memory_order_relaxed);
  stats.peak_queue = peak_queue_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mm2::common
