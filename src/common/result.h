#ifndef MM2_COMMON_RESULT_H_
#define MM2_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mm2 {

// Holds either a value of type T or an error Status, in the style of
// arrow::Result. A default-constructed Result is an Internal error; the
// usual way to produce one is `return value;` or `return Status::...;`.
template <typename T>
class Result {
 public:
  Result() : status_(Status::Internal("uninitialized Result")) {}

  // Implicit conversions mirror arrow::Result: both `return value;` and
  // `return status;` work at call sites.
  Result(T value) : value_(std::move(value)) {}                // NOLINT
  Result(Status status) : status_(std::move(status)) {         // NOLINT
    assert(!status_.ok() && "OK status requires a value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace mm2

#endif  // MM2_COMMON_RESULT_H_
