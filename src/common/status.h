#ifndef MM2_COMMON_STATUS_H_
#define MM2_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace mm2 {

// Error taxonomy for the model management engine. Operator failures are
// ordinary outcomes here (e.g., a mapping with no first-order inverse), so
// they are reported through Status rather than by aborting.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed schema, mapping, or expression
  kNotFound,          // named schema/relation/attribute/mapping missing
  kAlreadyExists,     // duplicate registration
  kUnsupported,       // input outside the fragment an operator handles
  kInconsistent,      // constraints unsatisfiable (e.g., failing egd chase)
  kNotExpressible,    // result exists but not in the requested language
  kResourceExhausted, // a resource budget stopped the operation early
  kInternal,          // invariant violation inside the engine
};

// String form of a StatusCode, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

// A success-or-error result, in the style of arrow::Status / rocksdb::Status.
// The library does not throw; every fallible public entry point returns a
// Status or a Result<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status NotExpressible(std::string msg) {
    return Status(StatusCode::kNotExpressible, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace mm2

// Propagates a non-OK Status from an expression to the caller.
#define MM2_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::mm2::Status _mm2_status = (expr);          \
    if (!_mm2_status.ok()) return _mm2_status;   \
  } while (false)

// Evaluates an expression returning Result<T>; on success binds the value
// to `lhs`, otherwise returns the error to the caller.
#define MM2_ASSIGN_OR_RETURN(lhs, expr)                      \
  MM2_ASSIGN_OR_RETURN_IMPL_(                                \
      MM2_STATUS_CONCAT_(_mm2_result, __LINE__), lhs, expr)

#define MM2_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define MM2_STATUS_CONCAT_(a, b) MM2_STATUS_CONCAT_IMPL_(a, b)
#define MM2_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // MM2_COMMON_STATUS_H_
