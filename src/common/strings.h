#ifndef MM2_COMMON_STRINGS_H_
#define MM2_COMMON_STRINGS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mm2 {

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits `s` on the character `sep`; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

// ASCII lowercase copy.
std::string ToLower(std::string_view s);

// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Splits an identifier into lowercase word tokens. Understands snake_case,
// kebab-case, camelCase, PascalCase and digit boundaries, e.g.
// "custBillingAddr2" -> {"cust", "billing", "addr", "2"}. Used by the
// lexical schema matchers.
std::vector<std::string> TokenizeIdentifier(std::string_view name);

// True if `abbr` abbreviates `full`: same first character and `abbr` is a
// subsequence of `full` ("dept" ~ "department", "empl" ~ "employee").
bool IsAbbreviation(std::string_view abbr, std::string_view full);

// Classic Levenshtein edit distance.
std::size_t EditDistance(std::string_view a, std::string_view b);

// Edit-distance similarity in [0,1]: 1 - dist/max(len). Empty-vs-empty is 1.
double EditSimilarity(std::string_view a, std::string_view b);

// Character-trigram Jaccard similarity in [0,1] over lowercased input.
// Strings shorter than 3 characters fall back to EditSimilarity.
double TrigramSimilarity(std::string_view a, std::string_view b);

}  // namespace mm2

#endif  // MM2_COMMON_STRINGS_H_
