#ifndef MM2_MODELGEN_MODELGEN_H_
#define MM2_MODELGEN_MODELGEN_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "logic/mapping.h"
#include "model/schema.h"

namespace mm2::modelgen {

// How an inheritance hierarchy maps to tables (paper Section 3.2's
// "flexible mapping of inheritance hierarchies to tables"; the classic
// strategies of object-relational mapping):
enum class InheritanceStrategy {
  kSingleTable,      // TPH: one wide table + discriminator column
  kTablePerType,     // TPT: one table per type, subtype rows split vertically
  kTablePerConcrete, // TPC: one table per concrete type, full row each
};

const char* InheritanceStrategyToString(InheritanceStrategy strategy);

// A mapping fragment in the ADO.NET Entity Framework style: `table` holds
// one row per entity of `entity_set` whose concrete type is in `types`,
// storing the listed entity attributes in the listed columns. Fig. 2's
// three constraints are exactly three fragments:
//   {HR,    {Person, Employee}, Id->Id, Name->Name}
//   {Empl,  {Employee},         Id->Id, Dept->Dept}
//   {Client,{Customer},         Id->Id, Name->Name, ...}
struct MappingFragment {
  std::string entity_set;
  std::vector<std::string> types;  // concrete entity types covered
  std::string table;
  // entity attribute -> table column.
  std::vector<std::pair<std::string, std::string>> attribute_map;
  // TPH only: the discriminator column receiving the concrete type name.
  std::string discriminator_column;

  std::string ToString() const;
};

struct ModelGenResult {
  // The generated relational schema.
  model::Schema relational;
  // Declarative fragments describing the instance-level mapping; TransGen
  // compiles these into query/update views.
  std::vector<MappingFragment> fragments;
  // The same mapping as s-t tgds over the entity-set layout relations
  // (with $type discriminator constants), consumable by the chase for
  // ER-to-relational data exchange.
  logic::Mapping mapping;
};

// The ModelGen operator for ER => relational: translates `er` (entity
// types with inheritance + entity sets) into a relational schema under the
// chosen inheritance strategy, returning the schema *and* instance-level
// mapping constraints — the piece the paper notes earlier ModelGen work
// lacked (Section 3.2). The entity key is the first attribute of each
// entity set's root type; it becomes the primary key of every generated
// table.
Result<ModelGenResult> ErToRelational(const model::Schema& er,
                                      InheritanceStrategy strategy);

// ModelGen for relational => nested (XML-like): each relation that is not
// referenced by a foreign key becomes a root; relations with a foreign key
// into a root are folded in as a collection<struct<...>> attribute.
// Returns the nested schema plus a mapping carrying the flat (root)
// attributes; nested collections are schema-level only (instances stay
// first normal form in this engine — see DESIGN.md).
struct NestedGenResult {
  model::Schema nested;
  logic::Mapping mapping;
};
Result<NestedGenResult> RelationalToNested(const model::Schema& relational);

// ModelGen for relational => OO — the wrapper-generation usage scenario
// ("produce an object-oriented wrapper for a relational database"). Each
// relation becomes an entity type plus an entity set named "<R>Set"; the
// returned fragments map each set identically onto its table, so TransGen
// compiles them into the wrapper's query/update views and the runtime's
// UpdatePropagator pushes object updates back to the tables. Foreign keys
// stay value-based columns (no object references), matching how wrappers
// expose keys for lazy navigation.
struct OoGenResult {
  model::Schema oo;
  std::vector<MappingFragment> fragments;
  logic::Mapping mapping;  // entity sets => tables
};
Result<OoGenResult> RelationalToOo(const model::Schema& relational);

}  // namespace mm2::modelgen

#endif  // MM2_MODELGEN_MODELGEN_H_
