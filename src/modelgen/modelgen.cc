#include "modelgen/modelgen.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/strings.h"
#include "instance/instance.h"

namespace mm2::modelgen {

using instance::Value;
using logic::Atom;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::Attribute;
using model::DataType;
using model::Schema;

const char* InheritanceStrategyToString(InheritanceStrategy strategy) {
  switch (strategy) {
    case InheritanceStrategy::kSingleTable:
      return "single-table (TPH)";
    case InheritanceStrategy::kTablePerType:
      return "table-per-type (TPT)";
    case InheritanceStrategy::kTablePerConcrete:
      return "table-per-concrete (TPC)";
  }
  return "unknown";
}

std::string MappingFragment::ToString() const {
  std::vector<std::string> attrs;
  for (const auto& [a, c] : attribute_map) attrs.push_back(a + "->" + c);
  return "fragment " + table + " for {" + Join(types, ", ") + "} of " +
         entity_set + " [" + Join(attrs, ", ") + "]" +
         (discriminator_column.empty() ? ""
                                       : " disc=" + discriminator_column);
}

// The discriminator column name used by the single-table strategy.
static constexpr char kDiscriminator[] = "Discriminator";

namespace {

// Concrete (non-abstract) types of the hierarchy rooted at `root`.
std::vector<std::string> ConcreteTypes(const Schema& er,
                                       const std::string& root) {
  std::vector<std::string> out;
  for (const std::string& t : er.SubtypeClosure(root)) {
    if (!er.FindEntityType(t)->abstract) out.push_back(t);
  }
  return out;
}

// Builds the tgds realizing the fragments over the entity-set layout
// relation: for each concrete type T and each fragment covering T,
//   Set("T", <layout vars>) -> Table(...).
Result<std::vector<Tgd>> FragmentTgds(
    const Schema& er, const instance::EntitySetLayout& layout,
    const Schema& relational, const std::vector<MappingFragment>& fragments) {
  std::vector<Tgd> tgds;
  for (const MappingFragment& fragment : fragments) {
    const model::Relation* table = relational.FindRelation(fragment.table);
    if (table == nullptr) {
      return Status::Internal("fragment names unknown table '" +
                              fragment.table + "'");
    }
    for (const std::string& type : fragment.types) {
      Tgd tgd;
      Atom body;
      body.relation = layout.set_name;
      body.terms.push_back(Term::Const(Value::String(type)));
      for (const std::string& col : layout.columns) {
        body.terms.push_back(Term::Var("v_" + col));
      }
      Atom head;
      head.relation = fragment.table;
      for (const Attribute& col : table->attributes()) {
        if (col.name == fragment.discriminator_column) {
          head.terms.push_back(Term::Const(Value::String(type)));
          continue;
        }
        // Which entity attribute maps onto this column?
        const std::string* entity_attr = nullptr;
        for (const auto& [a, c] : fragment.attribute_map) {
          if (c == col.name) entity_attr = &a;
        }
        if (entity_attr == nullptr) {
          // Column not covered by this fragment (wide TPH table): NULL.
          head.terms.push_back(Term::Const(Value::Null()));
          continue;
        }
        if (layout.ColumnIndex(*entity_attr) ==
            instance::EntitySetLayout::kNpos) {
          return Status::Internal("fragment maps unknown attribute '" +
                                  *entity_attr + "'");
        }
        head.terms.push_back(Term::Var("v_" + *entity_attr));
      }
      tgd.body = {std::move(body)};
      tgd.head = {std::move(head)};
      tgds.push_back(std::move(tgd));
    }
  }
  (void)er;
  return tgds;
}

// Checks that the fragments cover every attribute of every concrete type.
Status CheckCoverage(const Schema& er, const std::string& set_name,
                     const std::vector<std::string>& concrete,
                     const std::vector<MappingFragment>& fragments) {
  for (const std::string& type : concrete) {
    MM2_ASSIGN_OR_RETURN(std::vector<Attribute> attrs,
                         er.AllAttributesOf(type));
    for (const Attribute& a : attrs) {
      bool covered = false;
      for (const MappingFragment& f : fragments) {
        if (std::find(f.types.begin(), f.types.end(), type) ==
            f.types.end()) {
          continue;
        }
        for (const auto& [ea, col] : f.attribute_map) {
          if (ea == a.name) covered = true;
        }
      }
      if (!covered) {
        return Status::Internal("attribute '" + type + "." + a.name +
                                "' of set '" + set_name +
                                "' not covered by any fragment");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<ModelGenResult> ErToRelational(const Schema& er,
                                      InheritanceStrategy strategy) {
  MM2_RETURN_IF_ERROR(er.Validate());
  if (er.entity_sets().empty()) {
    return Status::InvalidArgument("ER schema '" + er.name() +
                                   "' has no entity sets to translate");
  }

  ModelGenResult result;
  result.relational =
      Schema(er.name() + "_rel", model::Metamodel::kRelational);
  std::vector<Tgd> all_tgds;

  for (const model::EntitySet& set : er.entity_sets()) {
    MM2_ASSIGN_OR_RETURN(instance::EntitySetLayout layout,
                         instance::ComputeEntitySetLayout(er, set));
    const model::EntityType* root = er.FindEntityType(set.root_type);
    if (root->attributes.empty()) {
      return Status::InvalidArgument(
          "root type '" + root->name +
          "' needs at least one attribute (the entity key)");
    }
    const std::string key = root->attributes.front().name;
    const model::DataTypeRef key_type = root->attributes.front().type;
    std::vector<std::string> concrete = ConcreteTypes(er, set.root_type);
    if (concrete.empty()) {
      return Status::InvalidArgument("entity set '" + set.name +
                                     "' has no concrete types");
    }

    std::vector<MappingFragment> fragments;
    switch (strategy) {
      case InheritanceStrategy::kSingleTable: {
        // One wide table named after the root type; per-type fragments
        // keyed by the discriminator.
        std::vector<model::Attribute> columns;
        columns.push_back({kDiscriminator, DataType::String(), false});
        MM2_ASSIGN_OR_RETURN(std::vector<Attribute> root_attrs,
                             er.AllAttributesOf(set.root_type));
        std::set<std::string> root_attr_names;
        for (const Attribute& a : root_attrs) root_attr_names.insert(a.name);
        for (const std::string& col : layout.columns) {
          const Attribute* src = nullptr;
          for (const std::string& t : er.SubtypeClosure(set.root_type)) {
            src = er.FindAttribute({t, col});
            if (src != nullptr) break;
          }
          model::Attribute attr = *src;
          // Subtype columns are nullable in the wide table.
          attr.nullable = attr.nullable || root_attr_names.count(col) == 0;
          columns.push_back(std::move(attr));
        }
        model::Relation table(root->name, columns,
                              {1});  // key is right after discriminator
        result.relational.AddRelation(std::move(table));
        for (const std::string& type : concrete) {
          MappingFragment f;
          f.entity_set = set.name;
          f.types = {type};
          f.table = root->name;
          f.discriminator_column = kDiscriminator;
          MM2_ASSIGN_OR_RETURN(std::vector<Attribute> attrs,
                               er.AllAttributesOf(type));
          for (const Attribute& a : attrs) {
            f.attribute_map.push_back({a.name, a.name});
          }
          fragments.push_back(std::move(f));
        }
        break;
      }
      case InheritanceStrategy::kTablePerType: {
        for (const std::string& type_name :
             er.SubtypeClosure(set.root_type)) {
          const model::EntityType* type = er.FindEntityType(type_name);
          std::vector<model::Attribute> columns;
          if (type->parent.empty()) {
            columns = type->attributes;
          } else {
            columns.push_back({key, key_type, false});
            for (const Attribute& a : type->attributes) columns.push_back(a);
          }
          result.relational.AddRelation(
              model::Relation(type_name, columns, {0}));
          if (!type->parent.empty()) {
            result.relational.AddForeignKey(
                model::ForeignKey{type_name, {key}, type->parent, {key}});
          }
          MappingFragment f;
          f.entity_set = set.name;
          f.types = ConcreteTypes(er, type_name);
          if (f.types.empty()) continue;  // abstract leaf: no rows ever
          f.table = type_name;
          f.attribute_map.push_back({key, key});
          for (const Attribute& a : type->attributes) {
            if (a.name != key) f.attribute_map.push_back({a.name, a.name});
          }
          fragments.push_back(std::move(f));
        }
        break;
      }
      case InheritanceStrategy::kTablePerConcrete: {
        for (const std::string& type : concrete) {
          MM2_ASSIGN_OR_RETURN(std::vector<Attribute> attrs,
                               er.AllAttributesOf(type));
          result.relational.AddRelation(model::Relation(type, attrs, {0}));
          MappingFragment f;
          f.entity_set = set.name;
          f.types = {type};
          f.table = type;
          for (const Attribute& a : attrs) {
            f.attribute_map.push_back({a.name, a.name});
          }
          fragments.push_back(std::move(f));
        }
        break;
      }
    }

    MM2_RETURN_IF_ERROR(CheckCoverage(er, set.name, concrete, fragments));
    MM2_ASSIGN_OR_RETURN(
        std::vector<Tgd> tgds,
        FragmentTgds(er, layout, result.relational, fragments));
    for (Tgd& tgd : tgds) all_tgds.push_back(std::move(tgd));
    for (MappingFragment& f : fragments) {
      result.fragments.push_back(std::move(f));
    }
  }

  MM2_RETURN_IF_ERROR(result.relational.Validate());
  result.mapping =
      Mapping::FromTgds(er.name() + "_to_rel_" +
                            InheritanceStrategyToString(strategy),
                        er, result.relational, std::move(all_tgds));
  MM2_RETURN_IF_ERROR(result.mapping.Validate());
  return result;
}

Result<NestedGenResult> RelationalToNested(const Schema& relational) {
  MM2_RETURN_IF_ERROR(relational.Validate());
  NestedGenResult result;
  result.nested = Schema(relational.name() + "_nested",
                         model::Metamodel::kNested);

  // A relation folds into its parent when it has a foreign key to it.
  std::map<std::string, std::vector<const model::Relation*>> children_of;
  std::set<std::string> folded;
  for (const model::ForeignKey& fk : relational.foreign_keys()) {
    if (fk.from_relation == fk.to_relation) continue;  // self-reference
    if (folded.count(fk.from_relation) > 0) continue;  // fold once
    children_of[fk.to_relation].push_back(
        relational.FindRelation(fk.from_relation));
    folded.insert(fk.from_relation);
  }

  std::vector<Tgd> tgds;
  for (const model::Relation& r : relational.relations()) {
    if (folded.count(r.name()) > 0) continue;
    std::vector<model::Attribute> attrs = r.attributes();
    std::size_t flat_arity = attrs.size();
    for (const model::Relation* child : children_of[r.name()]) {
      // The child's attributes (minus the FK columns) become a nested
      // collection of structs.
      std::set<std::string> fk_cols;
      for (const model::ForeignKey* fk :
           relational.ForeignKeysFrom(child->name())) {
        if (fk->to_relation == r.name()) {
          fk_cols.insert(fk->from_attributes.begin(),
                         fk->from_attributes.end());
        }
      }
      std::vector<DataType::Field> fields;
      for (const model::Attribute& a : child->attributes()) {
        if (fk_cols.count(a.name) == 0) fields.push_back({a.name, a.type});
      }
      attrs.push_back({child->name(),
                       DataType::Collection(DataType::Struct(fields)), true});
    }
    result.nested.AddRelation(
        model::Relation(r.name() + "_doc", attrs, r.primary_key()));

    // Constraint for the flat part: Root(x...) -> Root_doc(x..., NULL...).
    Tgd tgd;
    Atom body;
    body.relation = r.name();
    for (std::size_t i = 0; i < flat_arity; ++i) {
      body.terms.push_back(Term::Var("x" + std::to_string(i)));
    }
    Atom head;
    head.relation = r.name() + "_doc";
    for (std::size_t i = 0; i < flat_arity; ++i) {
      head.terms.push_back(Term::Var("x" + std::to_string(i)));
    }
    for (std::size_t i = flat_arity; i < attrs.size(); ++i) {
      head.terms.push_back(Term::Const(Value::Null()));
    }
    tgd.body = {std::move(body)};
    tgd.head = {std::move(head)};
    tgds.push_back(std::move(tgd));
  }

  MM2_RETURN_IF_ERROR(result.nested.Validate());
  result.mapping = Mapping::FromTgds(relational.name() + "_to_nested",
                                     relational, result.nested,
                                     std::move(tgds));
  MM2_RETURN_IF_ERROR(result.mapping.Validate());
  return result;
}

Result<OoGenResult> RelationalToOo(const Schema& relational) {
  MM2_RETURN_IF_ERROR(relational.Validate());
  if (relational.relations().empty()) {
    return Status::InvalidArgument("schema '" + relational.name() +
                                   "' has no relations to wrap");
  }
  OoGenResult result;
  result.oo = Schema(relational.name() + "_oo",
                     model::Metamodel::kObjectOriented);
  std::vector<Tgd> tgds;
  for (const model::Relation& r : relational.relations()) {
    if (r.arity() == 0) {
      return Status::InvalidArgument("relation '" + r.name() +
                                     "' has no attributes");
    }
    model::EntityType type;
    type.name = r.name();
    type.attributes = r.attributes();
    result.oo.AddEntityType(std::move(type));
    result.oo.AddEntitySet(model::EntitySet{r.name() + "Set", r.name()});

    MappingFragment fragment;
    fragment.entity_set = r.name() + "Set";
    fragment.types = {r.name()};
    fragment.table = r.name();
    for (const Attribute& a : r.attributes()) {
      fragment.attribute_map.push_back({a.name, a.name});
    }
    result.fragments.push_back(fragment);

    // Set("R", x...) -> R(x...).
    Tgd tgd;
    Atom body;
    body.relation = fragment.entity_set;
    body.terms.push_back(Term::Const(Value::String(r.name())));
    Atom head;
    head.relation = r.name();
    for (const Attribute& a : r.attributes()) {
      body.terms.push_back(Term::Var("v_" + a.name));
      head.terms.push_back(Term::Var("v_" + a.name));
    }
    tgd.body = {std::move(body)};
    tgd.head = {std::move(head)};
    tgds.push_back(std::move(tgd));
  }
  MM2_RETURN_IF_ERROR(result.oo.Validate());
  result.mapping = Mapping::FromTgds(relational.name() + "_oo_wrapper",
                                     result.oo, relational, std::move(tgds));
  MM2_RETURN_IF_ERROR(result.mapping.Validate());
  return result;
}

}  // namespace mm2::modelgen
