#include "instance/intern.h"

#include <cstdlib>
#include <mutex>

namespace mm2::instance {

StringPool& StringPool::Global() {
  // Leaked on purpose: interned Values may live in static destructors
  // (test fixtures, global instances), so the pool must outlive everything.
  static StringPool* pool = new StringPool();
  return *pool;
}

// FNV-1a with a splitmix64 finalizer: cheap, deterministic across runs, and
// well distributed in both halves — the low 4 bits pick the shard, the low
// 32 become the Value's cached payload hash.
std::uint64_t StringPool::HashBytes(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

StringPool::StringId StringPool::Intern(std::string_view s) {
  std::uint64_t hash = HashBytes(s);
  Shard& shard = shards_[hash & (kShards - 1)];
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.ids.find(s);
    if (it != shard.ids.end()) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.ids.find(s);
  if (it != shard.ids.end()) {
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  std::size_t local = shard.count;
  if (local >= kChunkSize * kMaxChunks) {
    // 134M distinct strings: far beyond any workload; fail loudly rather
    // than hand out aliasing ids.
    std::abort();
  }
  std::size_t chunk_index = local / kChunkSize;
  Entry* chunk = shard.chunks[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Entry[kChunkSize];
    shard.chunks[chunk_index].store(chunk, std::memory_order_release);
  }
  Entry& entry = chunk[local % kChunkSize];
  entry.str.assign(s);
  entry.hash = hash;
  ++shard.count;
  StringId id = static_cast<StringId>((local << kShardBits) |
                                      (hash & (kShards - 1)));
  shard.ids.emplace(std::string_view(entry.str), id);
  shard.bytes.fetch_add(s.size(), std::memory_order_relaxed);
  return id;
}

StringPool::Stats StringPool::GetStats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    stats.strings += shard.count;
    stats.misses += shard.count;  // every insert was one miss
    stats.hits += shard.hits.load(std::memory_order_relaxed);
    stats.bytes += shard.bytes.load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace mm2::instance
