#include "instance/instance.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <mutex>
#include <utility>

namespace mm2::instance {

RelationInstance::RelationInstance(const RelationInstance& other)
    : arity_(other.arity_),
      tuples_(other.tuples_),
      generation_(other.generation_),
      storage_mode_(other.storage_mode_),
      policy_(other.policy_),
      runs_(other.runs_),  // segments are immutable — shared, not deep-copied
      // The rebuilt log below is in set order, not insertion order, so the
      // copied runs' log spans no longer describe it: slice-served deltas
      // must decline until the next full rebuild restores the tiling.
      runs_tiled_(other.runs_.empty()),
      tail_(other.tail_),
      segment_dirty_(other.segment_dirty_),
      segment_generation_(other.segment_generation_) {
  // Indexes and the insert log hold pointers into the *source* set; rebuild
  // the log over our own nodes (set order — deterministic) and let indexes
  // re-materialize lazily. Watermark 0 still means "everything".
  log_.reserve(tuples_.size());
  for (const Tuple& t : tuples_) log_.push_back(&t);
}

RelationInstance& RelationInstance::operator=(const RelationInstance& other) {
  if (this == &other) return *this;
  arity_ = other.arity_;
  tuples_ = other.tuples_;
  generation_ = other.generation_;
  log_.clear();
  log_.reserve(tuples_.size());
  for (const Tuple& t : tuples_) log_.push_back(&t);
  log_pos_.clear();
  log_pos_tracked_ = false;
  indexes_.clear();
  stats_.Store(IndexStats{});
  seg_stats_.Store(SegmentOpStats{});
  storage_mode_ = other.storage_mode_;
  policy_ = other.policy_;
  runs_ = other.runs_;
  runs_tiled_ = other.runs_.empty();  // see copy ctor: log is in set order
  tail_ = other.tail_;
  segment_dirty_ = other.segment_dirty_;
  segment_generation_ = other.segment_generation_;
  return *this;
}

RelationInstance::RelationInstance(RelationInstance&& other) noexcept
    : arity_(other.arity_),
      tuples_(std::move(other.tuples_)),
      generation_(other.generation_),
      log_(std::move(other.log_)),
      log_pos_(std::move(other.log_pos_)),
      log_pos_tracked_(other.log_pos_tracked_),
      indexes_(std::move(other.indexes_)),
      storage_mode_(other.storage_mode_),
      policy_(other.policy_),
      runs_(std::move(other.runs_)),
      runs_tiled_(other.runs_tiled_),
      tail_(std::move(other.tail_)),
      segment_dirty_(other.segment_dirty_),
      segment_generation_(other.segment_generation_) {
  // Moving a std::set transfers its nodes, so log/index pointers survive.
  stats_.Store(other.stats_.Load());
  seg_stats_.Store(other.seg_stats_.Load());
  other.log_pos_tracked_ = false;  // its map moved away; must not trust it
}

RelationInstance& RelationInstance::operator=(
    RelationInstance&& other) noexcept {
  if (this == &other) return *this;
  arity_ = other.arity_;
  tuples_ = std::move(other.tuples_);
  generation_ = other.generation_;
  log_ = std::move(other.log_);
  log_pos_ = std::move(other.log_pos_);
  log_pos_tracked_ = other.log_pos_tracked_;
  indexes_ = std::move(other.indexes_);
  stats_.Store(other.stats_.Load());
  storage_mode_ = other.storage_mode_;
  policy_ = other.policy_;
  runs_ = std::move(other.runs_);
  runs_tiled_ = other.runs_tiled_;
  tail_ = std::move(other.tail_);
  segment_dirty_ = other.segment_dirty_;
  segment_generation_ = other.segment_generation_;
  seg_stats_.Store(other.seg_stats_.Load());
  other.log_pos_tracked_ = false;  // its map moved away; must not trust it
  return *this;
}

Tuple RelationInstance::Project(const Tuple& tuple, const ColumnSet& cols) {
  Tuple key;
  key.reserve(cols.size());
  for (std::size_t c : cols) key.push_back(tuple[c]);
  return key;
}

// Keeps buckets in tuple (set) order so probes enumerate candidates exactly
// as a full ordered scan would.
void RelationInstance::IndexInsert(const Tuple* tuple) {
  for (auto& [cols, index] : indexes_) {
    TupleRefs& bucket = index.buckets[Project(*tuple, cols)];
    auto pos = std::lower_bound(
        bucket.begin(), bucket.end(), tuple,
        [](const Tuple* a, const Tuple* b) { return *a < *b; });
    bucket.insert(pos, tuple);
    stats_.indexed_tuples.fetch_add(1, std::memory_order_relaxed);
  }
}

void RelationInstance::IndexErase(const Tuple* tuple) {
  for (auto& [cols, index] : indexes_) {
    auto it = index.buckets.find(Project(*tuple, cols));
    if (it == index.buckets.end()) continue;
    TupleRefs& bucket = it->second;
    bucket.erase(std::remove(bucket.begin(), bucket.end(), tuple),
                 bucket.end());
    if (bucket.empty()) index.buckets.erase(it);
  }
}

bool RelationInstance::Insert(Tuple tuple) {
  assert(tuple.size() == arity_ && "arity mismatch");
  auto [it, inserted] = tuples_.insert(std::move(tuple));
  if (!inserted) return false;
  ++generation_;
  const Tuple* node = &*it;
  log_.push_back(node);
  if (log_pos_tracked_) log_pos_.emplace(node, log_.size() - 1);
  // Segment tail: remember the insert so the next seal can merge
  // incrementally. Pointless once dirty (a full rebuild is coming anyway).
  if (storage_mode_ == StorageMode::kSegmented && !segment_dirty_) {
    tail_.push_back(*node);
  }
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  IndexInsert(node);
  return true;
}

bool RelationInstance::Erase(const Tuple& tuple) {
  auto it = tuples_.find(tuple);
  if (it == tuples_.end()) return false;
  const Tuple* node = &*it;
  {
    std::unique_lock<std::shared_mutex> lock(index_mu_);
    IndexErase(node);
  }
  // Tombstone rather than remove: log positions back caller watermarks.
  if (!log_pos_tracked_) {
    log_pos_.clear();
    for (std::size_t i = 0; i < log_.size(); ++i) {
      if (log_[i] != nullptr) log_pos_.emplace(log_[i], i);
    }
    log_pos_tracked_ = true;
  }
  std::size_t log_pos = log_.size();
  auto pos_it = log_pos_.find(node);
  if (pos_it != log_pos_.end()) {
    log_pos = pos_it->second;
    log_[log_pos] = nullptr;
    log_pos_.erase(pos_it);
  }
  tuples_.erase(it);
  ++generation_;
  // Sealed runs cannot un-say a row: flag for a full rebuild at the next
  // seal and drop the now-untrustworthy tail. The run covering the
  // tombstoned log position books the loss, so DeltaViewSince can keep
  // serving the *other* runs as zero-copy slices through the erase epoch.
  if (!runs_.empty() || !tail_.empty()) {
    segment_dirty_ = true;
    tail_.clear();
    for (SealedRun& run : runs_) {
      if (run.log_begin <= log_pos && log_pos < run.log_end) {
        ++run.dead;
        break;
      }
    }
  }
  return true;
}

void RelationInstance::Clear() {
  tuples_.clear();
  log_.clear();
  log_pos_.clear();
  log_pos_tracked_ = false;
  ++generation_;
  if (!runs_.empty() || !tail_.empty()) {
    segment_dirty_ = true;
    tail_.clear();
    // The log just reset, so the old spans no longer tile it; drop the
    // runs outright (an empty run list is trivially tiled) instead of
    // letting DeltaViewSince trust slices over vanished rows.
    runs_.clear();
    runs_tiled_ = true;
  }
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  indexes_.clear();
}

std::map<RelationInstance::ColumnSet, RelationInstance::Index>::iterator
RelationInstance::BuildIndexLocked(const ColumnSet& cols) const {
  Index index;
  for (const Tuple& t : tuples_) {
    // Set iteration is sorted, so appended buckets stay in tuple order.
    index.buckets[Project(t, cols)].push_back(&t);
  }
  stats_.builds.fetch_add(1, std::memory_order_relaxed);
  stats_.indexed_tuples.fetch_add(tuples_.size(), std::memory_order_relaxed);
  return indexes_.emplace(cols, std::move(index)).first;
}

const RelationInstance::TupleRefs* RelationInstance::Probe(
    const ColumnSet& cols, const Tuple& key) const {
  stats_.probes.fetch_add(1, std::memory_order_relaxed);
  auto lookup = [this](const Index& index,
                       const Tuple& k) -> const TupleRefs* {
    auto bucket = index.buckets.find(k);
    if (bucket == index.buckets.end()) return nullptr;
    stats_.probe_hits.fetch_add(bucket->second.size(),
                                std::memory_order_relaxed);
    return &bucket->second;
  };
  // Fast path: the index exists, so a shared lock suffices and concurrent
  // probes proceed in parallel. The returned bucket pointer stays valid
  // after the lock drops: later builds of *other* column sets only insert
  // new map nodes, and mutations are excluded by contract until the caller
  // is done reading.
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    auto it = indexes_.find(cols);
    if (it != indexes_.end()) return lookup(it->second, key);
  }
  // Slow path: first probe of this column set; build under the exclusive
  // lock, double-checking since another thread may have raced us here.
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  auto it = indexes_.find(cols);
  if (it == indexes_.end()) it = BuildIndexLocked(cols);
  return lookup(it->second, key);
}

void RelationInstance::EnsureIndex(const ColumnSet& cols) const {
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    if (indexes_.count(cols) > 0) return;
  }
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  if (indexes_.count(cols) > 0) return;
  BuildIndexLocked(cols);
}

RelationInstance::TupleRefs RelationInstance::DeltaSince(
    std::size_t watermark) const {
  TupleRefs out;
  out.reserve(log_.size() - watermark);
  for (std::size_t i = watermark; i < log_.size(); ++i) {
    if (log_[i] != nullptr) out.push_back(log_[i]);
  }
  return out;
}

IndexStats RelationInstance::index_stats() const { return stats_.Load(); }

void RelationInstance::set_storage_mode(StorageMode mode) {
  mode = ResolveStorageMode(mode);
  if (mode == storage_mode_) return;
  storage_mode_ = mode;
  // Either direction invalidates the incremental state: entering
  // kSegmented means past inserts were not tail-tracked; leaving it drops
  // the view entirely.
  runs_.clear();
  runs_tiled_ = true;
  tail_.clear();
  segment_dirty_ = false;
  segment_generation_ = 0;
}

void RelationInstance::CompactLocked(SegmentOpStats* stats) const {
  // Size-tiered compaction: merge the two newest runs while the newest is
  // not "small enough" relative to its predecessor, or while the run list
  // exceeds its cap. Each surviving run ends up >= tier_ratio times larger
  // than the one after it, so a tuple is re-merged only O(log n) times
  // over a chase. Merging adjacent runs keeps log spans contiguous, which
  // preserves the tiling DeltaViewSince depends on.
  while (runs_.size() > 1) {
    SealedRun& newest = runs_.back();
    SealedRun& prev = runs_[runs_.size() - 2];
    const bool oversized =
        newest.segment->rows() * policy_.tier_ratio >= prev.segment->rows();
    if (!oversized && runs_.size() <= policy_.max_runs) break;
    SealedRun merged;
    merged.segment = MergeSegments({prev.segment, newest.segment}, stats);
    merged.log_begin = prev.log_begin;
    merged.log_end = newest.log_end;
    // Compaction only runs in insert-only epochs (dead is always 0 here),
    // but carry the counters anyway so the slice-safety invariant survives
    // any future caller.
    merged.dead = prev.dead + newest.dead;
    runs_.pop_back();
    runs_.back() = std::move(merged);
    if (stats != nullptr) ++stats->compactions;
  }
}

void RelationInstance::PrepareSegments(bool defer_dirty_rebuild) const {
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  if (SegmentCurrent()) return;
  SegmentOpStats local;
  if (defer_dirty_rebuild && storage_mode_ == StorageMode::kSegmented &&
      segment_dirty_ && runs_tiled_ && !runs_.empty()) {
    // Erase-dirtied view inside a delta-sized pass: the pass issues few
    // probes, so the O(n) rebuild below would dominate it. Leave the view
    // stale while tombstone debt is low — probes decline to the index path
    // and DeltaViewSince still answers exactly (tiling stays trusted, dead
    // rows are booked per run). Rebuild once debt passes 1/4 of live rows.
    std::size_t dead = 0;
    for (const SealedRun& run : runs_) dead += run.dead;
    if (dead * 4 < tuples_.size()) {
      ++local.deferred_rebuilds;
      seg_stats_.Add(local);
      return;
    }
  }
  if (storage_mode_ == StorageMode::kSegmented && !runs_.empty() &&
      !segment_dirty_ && runs_tiled_ && !tail_.empty()) {
    // Insert-only epoch: seal the tail into a NEW small run covering the
    // log span since the last seal — the base runs are left untouched, and
    // tiered compaction below decides how much merging is actually due.
    const std::size_t span_begin = runs_.back().log_end;
    SegmentInserter inserter(arity_);
    for (Tuple& t : tail_) inserter.Add(std::move(t));
    tail_.clear();
    SealedRun run;
    run.segment = inserter.Seal(&local);
    run.log_begin = span_begin;
    run.log_end = log_.size();
    runs_.push_back(std::move(run));
    CompactLocked(&local);
  } else {
    // Full rebuild: set iteration is already sorted and unique. One run
    // covering the whole log restores the tiling invariant (copied
    // relations arrive here with untrusted spans).
    runs_.clear();
    SealedRun run;
    run.segment = SegmentInserter::FromSorted(arity_, tuples_, &local);
    run.log_begin = 0;
    run.log_end = log_.size();
    runs_.push_back(std::move(run));
    runs_tiled_ = true;
    tail_.clear();
    segment_dirty_ = false;
  }
  segment_generation_ = generation_;
  seg_stats_.Add(local);
}

std::optional<SegmentRanges> RelationInstance::SegmentProbePrefix(
    const Tuple& key) const {
  // Declines are counted only under kSegmented: the chase probes here
  // unconditionally before the hash path, and indexed sessions must keep
  // their zero-atomic hot path (and their exact telemetry surface).
  if (runs_.empty() || segment_dirty_ || segment_generation_ != generation_ ||
      key.size() > arity_ || runs_.size() > SegmentRanges::kMaxRanges) {
    if (storage_mode_ == StorageMode::kSegmented) {
      seg_stats_.fallbacks.fetch_add(1, std::memory_order_relaxed);
    }
    return std::nullopt;
  }
  SegmentOpStats local;
  SegmentRanges out;
  for (const SealedRun& run : runs_) {
    Segment::RowRange rows =
        run.segment->EqualRange(key.data(), key.size(), &local);
    if (rows.empty()) continue;
    out.entries[out.count++] =
        SegmentRanges::Entry{run.segment.get(), rows.begin, rows.end};
    out.rows += rows.end - rows.begin;
  }
  local.probes = 1;
  local.probe_hits = out.rows;
  seg_stats_.Add(local);
  return out;
}

DeltaView RelationInstance::DeltaViewSince(std::size_t watermark) const {
  DeltaView view;
  // Slices require trustworthy run/log spans: segmented mode, spans tiling
  // the log. Anything else is the log-backed path. An erase-containing
  // epoch (segment_dirty_) does NOT force the fallback: the tiling is
  // still exact, and tombstones are accounted per run below.
  if (storage_mode_ != StorageMode::kSegmented || !runs_tiled_ ||
      runs_.empty()) {
    view.refs = DeltaSince(watermark);
    return view;
  }
  const std::size_t sealed_end = runs_.back().log_end;
  // Per-run walk over the tiled spans. A run is served as a zero-copy
  // whole-run slice only when it lies entirely past the watermark AND none
  // of its rows were tombstoned (run rows == live span entries, so
  // view.size() stays equal to DeltaSince().size()). Runs that straddle
  // the watermark or lost rows to erases are served through the log refs,
  // which skip tombstones exactly.
  for (const SealedRun& run : runs_) {
    if (run.log_end <= watermark) continue;
    if (run.log_begin >= watermark && run.dead == 0) {
      const Segment* segment = run.segment.get();
      if (segment->rows() == 0) continue;
      view.slices.push_back(DeltaSlice{segment, 0, segment->rows()});
      view.slice_rows += segment->rows();
      continue;
    }
    const std::size_t begin =
        run.log_begin > watermark ? run.log_begin : watermark;
    for (std::size_t i = begin; i < run.log_end; ++i) {
      if (log_[i] != nullptr) view.refs.push_back(log_[i]);
    }
  }
  // Log-backed suffix: inserts since the last seal (the unsealed tail).
  const std::size_t suffix_begin =
      watermark > sealed_end ? watermark : sealed_end;
  for (std::size_t i = suffix_begin; i < log_.size(); ++i) {
    if (log_[i] != nullptr) view.refs.push_back(log_[i]);
  }
  if (!view.slices.empty()) {
    view.sliced = true;
    SegmentOpStats local;
    local.delta_slices = 1;
    local.delta_slice_rows = view.slice_rows;
    seg_stats_.Add(local);
  }
  return view;
}

SegmentShape RelationInstance::segment_shape() const {
  SegmentShape shape;
  shape.live_segments = runs_.size();
  shape.tail_rows = tail_.size();
  // Count distinct tier_ratio-geometric size classes among non-empty runs.
  bool seen[64] = {false};
  for (const SealedRun& run : runs_) {
    std::size_t rows = run.segment->rows();
    if (rows == 0) continue;
    std::size_t tier = 0;
    while (rows >= policy_.tier_ratio && tier + 1 < 64) {
      rows /= policy_.tier_ratio;
      ++tier;
    }
    if (!seen[tier]) {
      seen[tier] = true;
      ++shape.tiers;
    }
  }
  return shape;
}

void RelationInstance::RetainExisting(
    const std::vector<const Tuple*>& sorted_candidates,
    std::vector<char>* present) const {
  present->assign(sorted_candidates.size(), 0);
  SegmentOpStats local;
  ++local.retain_batches;
  local.retain_candidates += sorted_candidates.size();
  const bool current = SegmentCurrent();
  // An insert-only tail still answers exactly: runs ∪ tail == extension.
  const bool incremental = !current && !runs_.empty() && !segment_dirty_ &&
                           storage_mode_ == StorageMode::kSegmented;
  if (current || incremental) {
    std::vector<Tuple> tail_sorted;
    if (incremental && !tail_.empty()) {
      tail_sorted = tail_;
      CountedSort(&tail_sorted, &local);
    }
    // Every side is sorted ⇒ one monotone forward cursor per live run plus
    // one for the tail. Cursors advance by galloping (doubling steps, then
    // a binary search over the overshoot), so a batch of c candidates
    // against a run of m rows costs O(c·log(m/c)) compares whether the
    // candidates are sparse or dense — never the O(m) full walk a plain
    // merge pays when candidates skip far ahead. Runs are disjoint, so at
    // most one cursor can hit.
    std::vector<std::size_t> cursors(runs_.size(), 0);
    std::size_t tail_cursor = 0;
    for (std::size_t i = 0; i < sorted_candidates.size(); ++i) {
      const Tuple& cand = *sorted_candidates[i];
      if (cand.size() != arity_) continue;  // cannot be present
      bool hit = false;
      for (std::size_t r = 0; r < runs_.size() && !hit; ++r) {
        const Segment& seg = *runs_[r].segment;
        std::size_t& cursor = cursors[r];
        const std::size_t rows = seg.rows();
        int cmp = cursor < rows
                      ? seg.CompareRowPrefix(cursor, cand.data(), cand.size(),
                                             &local.compares)
                      : 1;
        if (cmp < 0) {
          // Gallop: find the first row >= cand past the cursor.
          std::size_t step = 1;
          std::size_t lo = cursor;  // known < cand
          std::size_t hi = cursor + step;
          while (hi < rows &&
                 seg.CompareRowPrefix(hi, cand.data(), cand.size(),
                                      &local.compares) < 0) {
            lo = hi;
            step <<= 1;
            hi = cursor + step;
          }
          if (hi > rows) hi = rows;
          ++lo;
          while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (seg.CompareRowPrefix(mid, cand.data(), cand.size(),
                                     &local.compares) < 0) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
          cursor = lo;
          cmp = cursor < rows
                    ? seg.CompareRowPrefix(cursor, cand.data(), cand.size(),
                                           &local.compares)
                    : 1;
        }
        hit = cmp == 0;
      }
      if (!hit && !tail_sorted.empty()) {
        while (tail_cursor < tail_sorted.size()) {
          ++local.compares;
          if (tail_sorted[tail_cursor] < cand) {
            ++tail_cursor;
            continue;
          }
          hit = !(cand < tail_sorted[tail_cursor]);
          ++local.compares;
          break;
        }
      }
      if (hit) {
        (*present)[i] = 1;
        ++local.retain_hits;
      }
    }
  } else {
    ++local.fallbacks;
    for (std::size_t i = 0; i < sorted_candidates.size(); ++i) {
      if (tuples_.count(*sorted_candidates[i]) > 0) {
        (*present)[i] = 1;
        ++local.retain_hits;
      }
    }
  }
  seg_stats_.Add(local);
}

SegmentOpStats RelationInstance::segment_stats() const {
  return seg_stats_.Load();
}

Instance Instance::EmptyFor(const model::Schema& schema) {
  Instance instance;
  for (const model::Relation& r : schema.relations()) {
    instance.DeclareRelation(r.name(), r.arity());
  }
  for (const model::EntitySet& s : schema.entity_sets()) {
    Result<EntitySetLayout> layout = ComputeEntitySetLayout(schema, s);
    if (layout.ok()) {
      instance.DeclareRelation(s.name, layout->arity());
    }
  }
  return instance;
}

void Instance::DeclareRelation(std::string_view name, std::size_t arity) {
  RelationInstance fresh(arity);
  fresh.set_storage_mode(storage_mode_);
  fresh.set_segment_policy(segment_policy_);
  // Heterogeneous find first: redeclaration (the UnionWith/runtime refresh
  // pattern) never allocates a key string.
  auto it = relations_.find(name);
  if (it != relations_.end()) {
    it->second = std::move(fresh);
    return;
  }
  relations_.emplace(std::string(name), std::move(fresh));
}

bool Instance::HasRelation(std::string_view name) const {
  return relations_.find(name) != relations_.end();
}

Status Instance::Insert(std::string_view relation, Tuple tuple) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + std::string(relation) +
                            "' not in instance");
  }
  if (tuple.size() != it->second.arity()) {
    return Status::InvalidArgument(
        "arity mismatch inserting into '" + std::string(relation) + "': got " +
        std::to_string(tuple.size()) + ", want " +
        std::to_string(it->second.arity()));
  }
  it->second.Insert(std::move(tuple));
  return Status::OK();
}

void Instance::InsertUnchecked(std::string_view relation, Tuple tuple) {
  auto it = relations_.find(relation);
  assert(it != relations_.end() && "unknown relation");
  assert(tuple.size() == it->second.arity() && "arity mismatch");
  it->second.Insert(std::move(tuple));
}

Status Instance::Erase(std::string_view relation, const Tuple& tuple) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + std::string(relation) +
                            "' not in instance");
  }
  if (!it->second.Erase(tuple)) {
    return Status::NotFound("tuple " + TupleToString(tuple) + " not in '" +
                            std::string(relation) + "'");
  }
  return Status::OK();
}

const RelationInstance* Instance::Find(std::string_view relation) const {
  auto it = relations_.find(relation);
  return it == relations_.end() ? nullptr : &it->second;
}

RelationInstance* Instance::FindMutable(std::string_view relation) {
  auto it = relations_.find(relation);
  return it == relations_.end() ? nullptr : &it->second;
}

std::size_t Instance::TotalTuples() const {
  std::size_t total = 0;
  for (const auto& [name, rel] : relations_) total += rel.size();
  return total;
}

bool Instance::HasLabeledNulls() const {
  for (const auto& [name, rel] : relations_) {
    for (const Tuple& t : rel.tuples()) {
      for (const Value& v : t) {
        if (v.is_labeled_null()) return true;
      }
    }
  }
  return false;
}

IndexStats Instance::IndexStatsTotal() const {
  IndexStats total;
  for (const auto& [name, rel] : relations_) total += rel.index_stats();
  return total;
}

void Instance::SetStorageMode(StorageMode mode) {
  storage_mode_ = ResolveStorageMode(mode);
  for (auto& [name, rel] : relations_) rel.set_storage_mode(storage_mode_);
}

void Instance::SetSegmentPolicy(const SegmentPolicy& policy) {
  segment_policy_ = policy;
  for (auto& [name, rel] : relations_) rel.set_segment_policy(policy);
}

void Instance::PrepareAllSegments(bool defer_dirty_rebuild) const {
  for (const auto& [name, rel] : relations_)
    rel.PrepareSegments(defer_dirty_rebuild);
}

SegmentOpStats Instance::SegmentStatsTotal() const {
  SegmentOpStats total;
  for (const auto& [name, rel] : relations_) total += rel.segment_stats();
  return total;
}

SegmentShape Instance::SegmentShapeTotal() const {
  SegmentShape total;
  for (const auto& [name, rel] : relations_) total += rel.segment_shape();
  return total;
}

std::map<std::string, std::size_t, std::less<>> Instance::InsertWatermarks()
    const {
  std::map<std::string, std::size_t, std::less<>> out;
  for (const auto& [name, rel] : relations_) out[name] = rel.Watermark();
  return out;
}

std::int64_t Instance::MaxNullLabel() const {
  std::int64_t max_label = -1;
  for (const auto& [name, rel] : relations_) {
    for (const Tuple& t : rel.tuples()) {
      for (const Value& v : t) {
        if (v.is_labeled_null()) max_label = std::max(max_label, v.label());
      }
    }
  }
  return max_label;
}

bool Instance::Equals(const Instance& other) const {
  // Compare nonempty extensions only; a declared-but-empty relation is
  // indistinguishable from an undeclared one at the instance level.
  auto nonempty = [](const Instance& instance) {
    std::map<std::string, const RelationInstance*> out;
    for (const auto& [name, rel] : instance.relations_) {
      if (!rel.empty()) out[name] = &rel;
    }
    return out;
  };
  auto a = nonempty(*this);
  auto b = nonempty(other);
  if (a.size() != b.size()) return false;
  for (const auto& [name, rel] : a) {
    auto it = b.find(name);
    if (it == b.end()) return false;
    if (rel->tuples() != it->second->tuples()) return false;
  }
  return true;
}

namespace {

// Canonical constant skeleton of a null-carrying tuple: constants kept,
// labeled nulls replaced by their local first-occurrence pattern id. Two
// tuples can only correspond under a null bijection if their skeletons are
// identical, so skeletons partition the matching search space.
Tuple NullSkeleton(const Tuple& tuple) {
  Tuple skeleton;
  skeleton.reserve(tuple.size());
  std::map<std::int64_t, std::int64_t> local;
  for (const Value& v : tuple) {
    if (v.is_labeled_null()) {
      auto [it, fresh] =
          local.emplace(v.label(), static_cast<std::int64_t>(local.size()));
      (void)fresh;
      skeleton.push_back(Value::LabeledNull(it->second));
    } else {
      skeleton.push_back(v);
    }
  }
  return skeleton;
}

}  // namespace

bool InstanceEqualsUpToNulls(const Instance& a, const Instance& b) {
  // Same nonempty-extension convention as Equals.
  auto nonempty = [](const Instance& instance) {
    std::map<std::string, const RelationInstance*> out;
    for (const auto& [name, rel] : instance.relations()) {
      if (!rel.empty()) out[name] = &rel;
    }
    return out;
  };
  auto rels_a = nonempty(a);
  auto rels_b = nonempty(b);
  if (rels_a.size() != rels_b.size()) return false;
  // Group null-carrying tuples by (relation, skeleton); ground tuples must
  // simply be present on both sides.
  struct Group {
    std::vector<const Tuple*> left;
    std::vector<const Tuple*> right;
  };
  std::map<std::pair<std::string, Tuple>, Group> groups;
  for (const auto& [name, rel] : rels_a) {
    auto it = rels_b.find(name);
    if (it == rels_b.end()) return false;
    const RelationInstance* other = it->second;
    if (rel->arity() != other->arity() || rel->size() != other->size()) {
      return false;
    }
    auto has_null = [](const Tuple& t) {
      for (const Value& v : t) {
        if (v.is_labeled_null()) return true;
      }
      return false;
    };
    for (const Tuple& t : rel->tuples()) {
      if (has_null(t)) {
        groups[{name, NullSkeleton(t)}].left.push_back(&t);
      } else if (!other->Contains(t)) {
        return false;
      }
    }
    for (const Tuple& t : other->tuples()) {
      if (has_null(t)) {
        groups[{name, NullSkeleton(t)}].right.push_back(&t);
      } else if (!rel->Contains(t)) {
        return false;
      }
    }
  }
  std::vector<Group*> order;
  order.reserve(groups.size());
  for (auto& [key, group] : groups) {
    if (group.left.size() != group.right.size()) return false;
    order.push_back(&group);
  }
  // Backtracking search for a bijection over null labels that maps every
  // left tuple onto a distinct right tuple of its group. The skeleton
  // pre-partitioning keeps candidate lists small for chase-shaped
  // instances (nulls mostly distinct per tuple pattern); the step budget
  // bounds pathological automorphism-heavy inputs, which conservatively
  // report "not equal".
  std::map<std::int64_t, std::int64_t> fwd;
  std::map<std::int64_t, std::int64_t> rev;
  std::size_t steps = 0;
  constexpr std::size_t kMaxSteps = 1u << 22;
  std::vector<std::vector<char>> used(order.size());
  for (std::size_t g = 0; g < order.size(); ++g) {
    used[g].assign(order[g]->right.size(), 0);
  }
  std::function<bool(std::size_t, std::size_t)> solve =
      [&](std::size_t g, std::size_t i) -> bool {
    if (g == order.size()) return true;
    if (i == order[g]->left.size()) return solve(g + 1, 0);
    const Tuple& lt = *order[g]->left[i];
    for (std::size_t c = 0; c < order[g]->right.size(); ++c) {
      if (used[g][c] != 0) continue;
      if (++steps > kMaxSteps) return false;
      const Tuple& rt = *order[g]->right[c];
      // Tentatively extend the bijection; identical skeletons guarantee
      // constants already agree and null positions line up.
      std::vector<std::pair<std::int64_t, std::int64_t>> added;
      bool ok = true;
      for (std::size_t k = 0; k < lt.size() && ok; ++k) {
        if (!lt[k].is_labeled_null()) continue;
        const std::int64_t l = lt[k].label();
        const std::int64_t r = rt[k].label();
        auto fit = fwd.find(l);
        auto rit = rev.find(r);
        if (fit != fwd.end() || rit != rev.end()) {
          ok = fit != fwd.end() && fit->second == r && rit != rev.end() &&
               rit->second == l;
          continue;
        }
        fwd.emplace(l, r);
        rev.emplace(r, l);
        added.emplace_back(l, r);
      }
      if (ok) {
        used[g][c] = 1;
        if (solve(g, i + 1)) return true;
        used[g][c] = 0;
      }
      for (const auto& [l, r] : added) {
        fwd.erase(l);
        rev.erase(r);
      }
    }
    return false;
  };
  return solve(0, 0);
}

Instance Instance::Minus(const Instance& other) const {
  Instance diff;
  for (const auto& [name, rel] : relations_) {
    diff.DeclareRelation(name, rel.arity());
    const RelationInstance* other_rel = other.Find(name);
    for (const Tuple& t : rel.tuples()) {
      if (other_rel == nullptr || !other_rel->Contains(t)) {
        diff.InsertUnchecked(name, t);
      }
    }
  }
  return diff;
}

void Instance::UnionWith(const Instance& other) {
  for (const auto& [name, rel] : other.relations_) {
    if (!HasRelation(name)) DeclareRelation(name, rel.arity());
    for (const Tuple& t : rel.tuples()) InsertUnchecked(name, t);
  }
}

std::string Instance::ToString() const {
  std::string out;
  for (const auto& [name, rel] : relations_) {
    out += name + " [" + std::to_string(rel.size()) + "]:\n";
    for (const Tuple& t : rel.tuples()) {
      out += "  " + TupleToString(t) + "\n";
    }
  }
  return out;
}

std::size_t EntitySetLayout::ColumnIndex(std::string_view attribute) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == attribute) return i;
  }
  return kNpos;
}

Result<EntitySetLayout> ComputeEntitySetLayout(const model::Schema& schema,
                                               const model::EntitySet& set) {
  EntitySetLayout layout;
  layout.set_name = set.name;
  layout.root_type = set.root_type;

  std::vector<std::string> hierarchy = schema.SubtypeClosure(set.root_type);
  if (hierarchy.empty()) {
    return Status::NotFound("entity set '" + set.name +
                            "' has unknown root type '" + set.root_type + "'");
  }
  // Deterministic column order: walk types in schema declaration order
  // (SubtypeClosure preserves it), appending unseen attribute names.
  for (const std::string& type_name : hierarchy) {
    MM2_ASSIGN_OR_RETURN(std::vector<model::Attribute> attrs,
                         schema.AllAttributesOf(type_name));
    std::vector<std::size_t> cols;
    for (const model::Attribute& a : attrs) {
      std::size_t idx = layout.ColumnIndex(a.name);
      if (idx == EntitySetLayout::kNpos) {
        idx = layout.columns.size();
        layout.columns.push_back(a.name);
      }
      cols.push_back(idx);
    }
    layout.columns_of_type[type_name] = std::move(cols);
  }
  return layout;
}

Result<Tuple> MakeEntityTuple(const EntitySetLayout& layout,
                              const model::Schema& schema,
                              std::string_view type_name,
                              const std::vector<Value>& attribute_values) {
  auto it = layout.columns_of_type.find(std::string(type_name));
  if (it == layout.columns_of_type.end()) {
    return Status::InvalidArgument("type '" + std::string(type_name) +
                                   "' not in entity set '" + layout.set_name +
                                   "'");
  }
  const model::EntityType* type = schema.FindEntityType(type_name);
  if (type != nullptr && type->abstract) {
    return Status::InvalidArgument("cannot instantiate abstract type '" +
                                   std::string(type_name) + "'");
  }
  if (attribute_values.size() != it->second.size()) {
    return Status::InvalidArgument(
        "type '" + std::string(type_name) + "' takes " +
        std::to_string(it->second.size()) + " attributes, got " +
        std::to_string(attribute_values.size()));
  }
  Tuple tuple(layout.arity(), Value::Null());
  tuple[0] = Value::String(std::string(type_name));
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    tuple[1 + it->second[i]] = attribute_values[i];
  }
  return tuple;
}

}  // namespace mm2::instance
