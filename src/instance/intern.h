#ifndef MM2_INSTANCE_INTERN_H_
#define MM2_INSTANCE_INTERN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mm2::instance {

// Engine-wide string intern pool. Every string payload a Value ever carries
// lives here exactly once; Values store the 32-bit id, so value equality is
// id equality and the string's hash is computed once, at intern time.
//
// Lifetime/ownership: the pool is a process-wide leaky singleton
// (StringPool::Global()). Entries are append-only and never freed or moved,
// so `Get()` references stay valid for the life of the process — an
// Instance, a parsed mapping, or a bench can hold interned Values with no
// ownership protocol at all. The pool is NOT per-Instance on purpose:
// instances flow between operators (compose, diff, merge, exchange) and a
// shared id space is what makes cross-instance tuple comparison an integer
// op.
//
// Thread safety: fully concurrent. Interning is sharded 16 ways by string
// hash; each shard takes a shared lock for the (overwhelmingly common) hit
// path and upgrades to exclusive only to insert a new string — consistent
// with RelationInstance's reader-parallel locking story. Get()/HashOf() are
// lock-free: ids index into append-only chunk arrays whose chunk pointers
// are published with release stores, so parallel chase workers resolving
// string order never contend.
class StringPool {
 public:
  using StringId = std::uint32_t;

  // Cumulative pool telemetry; mirrored as `value.intern.*` gauges by the
  // chase and the engine's stats/explain commands.
  struct Stats {
    std::uint64_t strings = 0;  // distinct interned strings
    std::uint64_t bytes = 0;    // summed payload bytes (excl. map overhead)
    std::uint64_t hits = 0;     // Intern() calls resolved to existing ids
    std::uint64_t misses = 0;   // Intern() calls that inserted
  };

  static StringPool& Global();

  // Returns the canonical id for `s`, inserting it on first sight. The
  // string's 64-bit hash is computed here, once, and cached with the entry.
  StringId Intern(std::string_view s);

  // The interned string; stable reference for the life of the process.
  const std::string& Get(StringId id) const {
    return EntryOf(id).str;
  }

  // The hash cached at intern time.
  std::uint64_t HashOf(StringId id) const { return EntryOf(id).hash; }

  // Three-way comparison through the pool: equal ids are equal strings;
  // distinct ids compare lexicographically, preserving the pre-interning
  // deterministic sorted order.
  int Compare(StringId a, StringId b) const {
    if (a == b) return 0;
    return Get(a).compare(Get(b)) < 0 ? -1 : 1;
  }

  Stats GetStats() const;

  // The string hash Intern() caches; exposed so callers (and tests) can
  // check hash/equality consistency.
  static std::uint64_t HashBytes(std::string_view s);

 private:
  static constexpr std::size_t kShardBits = 4;
  static constexpr std::size_t kShards = std::size_t{1} << kShardBits;
  static constexpr std::size_t kChunkSize = 1024;  // entries per chunk
  static constexpr std::size_t kMaxChunks = 8192;  // 8.4M strings per shard

  struct Entry {
    std::string str;
    std::uint64_t hash = 0;
  };

  struct Shard {
    mutable std::shared_mutex mu;
    // Guarded by mu. Keys view into entry storage, which never moves.
    std::unordered_map<std::string_view, StringId> ids;
    std::size_t count = 0;  // entries appended; guarded by mu
    // Append-only chunked entry storage. Chunk pointers are published with
    // release stores so lock-free readers see fully constructed arrays.
    std::atomic<Entry*> chunks[kMaxChunks] = {};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> bytes{0};

    ~Shard() {
      for (std::atomic<Entry*>& c : chunks) {
        delete[] c.load(std::memory_order_relaxed);
      }
    }
  };

  const Entry& EntryOf(StringId id) const {
    const Shard& shard = shards_[id & (kShards - 1)];
    std::size_t local = id >> kShardBits;
    Entry* chunk =
        shard.chunks[local / kChunkSize].load(std::memory_order_acquire);
    return chunk[local % kChunkSize];
  }

  Shard shards_[kShards];
};

}  // namespace mm2::instance

#endif  // MM2_INSTANCE_INTERN_H_
