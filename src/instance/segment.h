#ifndef MM2_INSTANCE_SEGMENT_H_
#define MM2_INSTANCE_SEGMENT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "instance/value.h"

namespace mm2::instance {

// Which physical representation the storage-facing hot paths run on.
//  - kIndexed: the node-stable std::set plus on-demand hash indexes — the
//    PR-3 executor, kept as the differential oracle for the segment paths.
//  - kSegmented: the same canonical set, shadowed by immutable sorted
//    column-major segments (below); bound-prefix probes and head-dedup
//    retain passes are served by merges over the sorted view instead of
//    per-tuple hash probes. Output is bit-identical by construction.
//  - kDefault: defer to the MM2_STORAGE environment variable
//    ("segmented" | "indexed"; unset means indexed).
enum class StorageMode { kDefault, kIndexed, kSegmented };

// Resolves kDefault against MM2_STORAGE; explicit modes pass through.
StorageMode ResolveStorageMode(StorageMode requested);
const char* StorageModeName(StorageMode mode);

// Cumulative telemetry for every segment-layer operation. The chase diffs
// per-relation totals around a run (exactly like IndexStats) and mirrors
// them as the `storage.segment.*` counter family.
struct SegmentOpStats {
  std::uint64_t seals = 0;              // SegmentInserter::Seal calls
  std::uint64_t sealed_rows = 0;        // rows written by seals
  std::uint64_t merges = 0;             // multi-segment merge passes
  std::uint64_t merged_rows = 0;        // rows emitted by merges
  std::uint64_t compares = 0;           // tuple comparisons (sort/merge/search)
  std::uint64_t probes = 0;             // sorted-prefix probes served
  std::uint64_t probe_hits = 0;         // rows yielded by served probes
  std::uint64_t skips = 0;              // probes cut short by min/max bounds
  std::uint64_t fallbacks = 0;          // probes declined (stale view)
  std::uint64_t retain_batches = 0;     // batched head-dedup passes
  std::uint64_t retain_candidates = 0;  // candidate tuples across batches
  std::uint64_t retain_hits = 0;        // candidates already present

  bool any() const {
    return seals != 0 || merges != 0 || compares != 0 || probes != 0 ||
           skips != 0 || fallbacks != 0 || retain_batches != 0;
  }

  SegmentOpStats& operator+=(const SegmentOpStats& o) {
    seals += o.seals;
    sealed_rows += o.sealed_rows;
    merges += o.merges;
    merged_rows += o.merged_rows;
    compares += o.compares;
    probes += o.probes;
    probe_hits += o.probe_hits;
    skips += o.skips;
    fallbacks += o.fallbacks;
    retain_batches += o.retain_batches;
    retain_candidates += o.retain_candidates;
    retain_hits += o.retain_hits;
    return *this;
  }

  SegmentOpStats operator-(const SegmentOpStats& o) const {
    SegmentOpStats d;
    d.seals = seals - o.seals;
    d.sealed_rows = sealed_rows - o.sealed_rows;
    d.merges = merges - o.merges;
    d.merged_rows = merged_rows - o.merged_rows;
    d.compares = compares - o.compares;
    d.probes = probes - o.probes;
    d.probe_hits = probe_hits - o.probe_hits;
    d.skips = skips - o.skips;
    d.fallbacks = fallbacks - o.fallbacks;
    d.retain_batches = retain_batches - o.retain_batches;
    d.retain_candidates = retain_candidates - o.retain_candidates;
    d.retain_hits = retain_hits - o.retain_hits;
    return d;
  }
};

// An immutable, sorted, duplicate-free run of same-arity tuples stored
// column-major: column c is a contiguous std::vector<Value>, so scans and
// binary searches over one column touch dense 16-byte cells instead of
// chasing std::set nodes. Rows are ordered by full lexicographic tuple
// order — the same order std::set<Tuple> iterates in, which is what makes
// segment-served enumeration bit-identical to the indexed path. Segments
// are shared by shared_ptr on copy (they never mutate after Seal).
class Segment {
 public:
  std::size_t arity() const { return arity_; }
  std::size_t rows() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  const Value& at(std::size_t row, std::size_t col) const {
    return columns_[col][row];
  }
  const std::vector<Value>& column(std::size_t col) const {
    return columns_[col];
  }

  // Per-column bounds, filled at seal time; meaningless when empty().
  const Value& col_min(std::size_t col) const { return min_[col]; }
  const Value& col_max(std::size_t col) const { return max_[col]; }

  // Materializes row `row` into `out` (resized to arity).
  void CopyRow(std::size_t row, Tuple* out) const;

  // Three-way compare of row `row` against the first `len` values of `key`,
  // column by column. Counts one compare into `*compares` when non-null.
  int CompareRowPrefix(std::size_t row, const Value* key, std::size_t len,
                       std::uint64_t* compares) const;

  // Row range [begin, end) whose first `prefix_len` columns equal the key
  // prefix, via binary search. A key outside the column-0 [min,max] bounds
  // answers empty without searching and bumps `stats->skips`.
  struct RowRange {
    std::size_t begin = 0;
    std::size_t end = 0;
    bool empty() const { return begin >= end; }
  };
  RowRange EqualRange(const Value* key, std::size_t prefix_len,
                      SegmentOpStats* stats) const;

  // Exact membership of a full tuple (binary search + min/max skip).
  bool Contains(const Tuple& tuple, SegmentOpStats* stats) const;

 private:
  friend class SegmentInserter;
  friend std::shared_ptr<const Segment> MergeSegments(
      const std::vector<std::shared_ptr<const Segment>>& segments,
      SegmentOpStats* stats);

  void FinalizeBounds();

  std::size_t arity_ = 0;
  std::size_t rows_ = 0;
  std::vector<std::vector<Value>> columns_;
  std::vector<Value> min_;
  std::vector<Value> max_;
};

using SegmentPtr = std::shared_ptr<const Segment>;

// Accumulates rows and seals them into a Segment: Seal() sorts (counting
// compares), removes duplicates, lays the survivors out column-major and
// records per-column min/max. The inserter is reusable after Seal (empty).
class SegmentInserter {
 public:
  explicit SegmentInserter(std::size_t arity) : arity_(arity) {}

  void Add(const Tuple& tuple) { pending_.push_back(tuple); }
  void Add(Tuple&& tuple) { pending_.push_back(std::move(tuple)); }
  std::size_t pending_rows() const { return pending_.size(); }

  SegmentPtr Seal(SegmentOpStats* stats);

  // Seals a std::set's contents directly: set iteration is already sorted
  // and unique, so this is a straight column-major copy (no compares).
  static SegmentPtr FromSorted(std::size_t arity, const std::set<Tuple>& rows,
                               SegmentOpStats* stats);

 private:
  std::size_t arity_;
  std::vector<Tuple> pending_;
};

// K-way merge over sorted segments, yielding rows in ascending tuple order
// with duplicates collapsed (set-union semantics). Comparisons count into
// the attached stats.
class SegmentMergeIterator {
 public:
  explicit SegmentMergeIterator(std::vector<SegmentPtr> segments,
                                SegmentOpStats* stats = nullptr);

  bool Done() const { return current_ == nullptr; }
  // Valid until the next Advance; materialized row in ascending order.
  const Tuple& Row() const { return row_; }
  void Advance();

 private:
  struct Cursor {
    SegmentPtr segment;
    std::size_t row = 0;
  };
  int CompareCursors(const Cursor& a, const Cursor& b);
  void Materialize();

  std::vector<Cursor> cursors_;
  SegmentOpStats* stats_;
  const Cursor* current_ = nullptr;  // cursor holding the smallest row
  Tuple row_;
};

// Merges sorted segments into one (dedup union) via SegmentMergeIterator.
// Null/empty inputs are skipped; merging zero or one live segment is a
// cheap passthrough.
SegmentPtr MergeSegments(const std::vector<SegmentPtr>& segments,
                         SegmentOpStats* stats);

// ---------------------------------------------------------------------------
// Sorted-row helpers shared by the algebra/runtime merge paths. These are
// the scalar cousins of the segment operations: plain row-major vectors,
// same counted-comparison discipline.
// ---------------------------------------------------------------------------

// Sorts rows ascending, counting comparisons into `stats` when non-null.
void CountedSort(std::vector<Tuple>* rows, SegmentOpStats* stats);

// Binary-search membership in an ascending row vector.
bool SortedContains(const std::vector<Tuple>& sorted, const Tuple& tuple,
                    SegmentOpStats* stats);

}  // namespace mm2::instance

#endif  // MM2_INSTANCE_SEGMENT_H_
