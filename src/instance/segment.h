#ifndef MM2_INSTANCE_SEGMENT_H_
#define MM2_INSTANCE_SEGMENT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "instance/value.h"

namespace mm2::instance {

// Which physical representation the storage-facing hot paths run on.
//  - kIndexed: the node-stable std::set plus on-demand hash indexes — the
//    PR-3 executor, kept as the differential oracle for the segment paths.
//  - kSegmented: the same canonical set, shadowed by immutable sorted
//    column-major segments (below); bound-prefix probes and head-dedup
//    retain passes are served by merges over the sorted view instead of
//    per-tuple hash probes. Output is bit-identical by construction.
//  - kDefault: defer to the MM2_STORAGE environment variable
//    ("segmented" | "indexed"; unset means segmented — the tiered segment
//    list won the closure-grid wall-clock race, see EXPERIMENTS.md §C18.
//    The indexed path stays selectable as the differential oracle).
enum class StorageMode { kDefault, kIndexed, kSegmented };

// Resolves kDefault against MM2_STORAGE; explicit modes pass through.
StorageMode ResolveStorageMode(StorageMode requested);
const char* StorageModeName(StorageMode mode);

// Size-tiered compaction thresholds for the LSM-style segment list. After a
// tail seal appends a new run, the newest run is merged into its predecessor
// while `newest_rows * tier_ratio >= predecessor_rows` (the new run is not
// "small enough" relative to the next tier) or while more than `max_runs`
// runs are live. A geometric run-size ladder falls out: each surviving run
// is at least tier_ratio times larger than the one sealed after it, which
// bounds total merge work at O(n log n) over a chase instead of O(n) rows
// re-merged per round.
struct SegmentPolicy {
  std::size_t tier_ratio = 4;
  std::size_t max_runs = 6;
};

// Resolves policy knobs: nonzero arguments win, else the MM2_SEGMENT_TIER_RATIO
// / MM2_SEGMENT_MAX_RUNS environment variables, else the defaults above.
// tier_ratio is clamped to >= 2, max_runs to [1, SegmentRanges::kMaxRanges]
// so every live run list stays probeable.
SegmentPolicy ResolveSegmentPolicy(std::size_t tier_ratio,
                                   std::size_t max_runs);

// Cumulative telemetry for every segment-layer operation. The chase diffs
// per-relation totals around a run (exactly like IndexStats) and mirrors
// them as the `storage.segment.*` counter family.
struct SegmentOpStats {
  std::uint64_t seals = 0;              // SegmentInserter::Seal calls
  std::uint64_t sealed_rows = 0;        // rows written by seals
  std::uint64_t merges = 0;             // multi-segment merge passes
  std::uint64_t merged_rows = 0;        // rows emitted by merges
  std::uint64_t compares = 0;           // tuple comparisons (sort/merge/search)
  std::uint64_t probes = 0;             // sorted-prefix probes served
  std::uint64_t probe_hits = 0;         // rows yielded by served probes
  std::uint64_t skips = 0;              // probes cut short by min/max bounds
  std::uint64_t fallbacks = 0;          // probes declined (stale view)
  std::uint64_t retain_batches = 0;     // batched head-dedup passes
  std::uint64_t retain_candidates = 0;  // candidate tuples across batches
  std::uint64_t retain_hits = 0;        // candidates already present
  std::uint64_t compactions = 0;        // tiered run merges (subset of merges)
  std::uint64_t delta_slices = 0;       // deltas served as segment slices
  std::uint64_t delta_slice_rows = 0;   // rows covered by zero-copy slices
  std::uint64_t deferred_rebuilds = 0;  // dirty reseals skipped (low debt)

  bool any() const {
    return seals != 0 || merges != 0 || compares != 0 || probes != 0 ||
           skips != 0 || fallbacks != 0 || retain_batches != 0 ||
           compactions != 0 || delta_slices != 0 || deferred_rebuilds != 0;
  }

  SegmentOpStats& operator+=(const SegmentOpStats& o) {
    seals += o.seals;
    sealed_rows += o.sealed_rows;
    merges += o.merges;
    merged_rows += o.merged_rows;
    compares += o.compares;
    probes += o.probes;
    probe_hits += o.probe_hits;
    skips += o.skips;
    fallbacks += o.fallbacks;
    retain_batches += o.retain_batches;
    retain_candidates += o.retain_candidates;
    retain_hits += o.retain_hits;
    compactions += o.compactions;
    delta_slices += o.delta_slices;
    delta_slice_rows += o.delta_slice_rows;
    deferred_rebuilds += o.deferred_rebuilds;
    return *this;
  }

  SegmentOpStats operator-(const SegmentOpStats& o) const {
    SegmentOpStats d;
    d.seals = seals - o.seals;
    d.sealed_rows = sealed_rows - o.sealed_rows;
    d.merges = merges - o.merges;
    d.merged_rows = merged_rows - o.merged_rows;
    d.compares = compares - o.compares;
    d.probes = probes - o.probes;
    d.probe_hits = probe_hits - o.probe_hits;
    d.skips = skips - o.skips;
    d.fallbacks = fallbacks - o.fallbacks;
    d.retain_batches = retain_batches - o.retain_batches;
    d.retain_candidates = retain_candidates - o.retain_candidates;
    d.retain_hits = retain_hits - o.retain_hits;
    d.compactions = compactions - o.compactions;
    d.delta_slices = delta_slices - o.delta_slices;
    d.delta_slice_rows = delta_slice_rows - o.delta_slice_rows;
    d.deferred_rebuilds = deferred_rebuilds - o.deferred_rebuilds;
    return d;
  }
};

// Shape of a relation's (or instance-wide) live segment list, read at the
// end of a run and mirrored as `storage.segment.*` gauges. tiers counts the
// distinct tier_ratio-geometric size classes among live runs — a healthy
// tiered list has tiers ≈ live_segments (each run in its own class).
struct SegmentShape {
  std::uint64_t live_segments = 0;  // sealed runs across relations
  std::uint64_t tiers = 0;          // max distinct size classes per relation
  std::uint64_t tail_rows = 0;      // unsealed sorted-tail rows

  SegmentShape& operator+=(const SegmentShape& o) {
    live_segments += o.live_segments;
    if (o.tiers > tiers) tiers = o.tiers;
    tail_rows += o.tail_rows;
    return *this;
  }
};

// An immutable, sorted, duplicate-free run of same-arity tuples stored
// column-major: column c is a contiguous std::vector<Value>, so scans and
// binary searches over one column touch dense 16-byte cells instead of
// chasing std::set nodes. Rows are ordered by full lexicographic tuple
// order — the same order std::set<Tuple> iterates in, which is what makes
// segment-served enumeration bit-identical to the indexed path. Segments
// are shared by shared_ptr on copy (they never mutate after Seal).
class Segment {
 public:
  std::size_t arity() const { return arity_; }
  std::size_t rows() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  const Value& at(std::size_t row, std::size_t col) const {
    return columns_[col][row];
  }
  const std::vector<Value>& column(std::size_t col) const {
    return columns_[col];
  }

  // Per-column bounds, filled at seal time; meaningless when empty().
  const Value& col_min(std::size_t col) const { return min_[col]; }
  const Value& col_max(std::size_t col) const { return max_[col]; }

  // Materializes row `row` into `out` (resized to arity).
  void CopyRow(std::size_t row, Tuple* out) const;

  // Three-way compare of row `row` against the first `len` values of `key`,
  // column by column. Counts one compare into `*compares` when non-null.
  int CompareRowPrefix(std::size_t row, const Value* key, std::size_t len,
                       std::uint64_t* compares) const;

  // Row range [begin, end) whose first `prefix_len` columns equal the key
  // prefix, via binary search. A key outside the column-0 [min,max] bounds
  // answers empty without searching and bumps `stats->skips`.
  struct RowRange {
    std::size_t begin = 0;
    std::size_t end = 0;
    bool empty() const { return begin >= end; }
  };
  RowRange EqualRange(const Value* key, std::size_t prefix_len,
                      SegmentOpStats* stats) const;

  // Exact membership of a full tuple (binary search + min/max skip).
  bool Contains(const Tuple& tuple, SegmentOpStats* stats) const;

 private:
  friend class SegmentInserter;
  friend std::shared_ptr<const Segment> MergeSegments(
      const std::vector<std::shared_ptr<const Segment>>& segments,
      SegmentOpStats* stats);

  void FinalizeBounds();

  std::size_t arity_ = 0;
  std::size_t rows_ = 0;
  std::vector<std::vector<Value>> columns_;
  std::vector<Value> min_;
  std::vector<Value> max_;
};

using SegmentPtr = std::shared_ptr<const Segment>;

// Accumulates rows and seals them into a Segment: Seal() sorts (counting
// compares), removes duplicates, lays the survivors out column-major and
// records per-column min/max. The inserter is reusable after Seal (empty).
class SegmentInserter {
 public:
  explicit SegmentInserter(std::size_t arity) : arity_(arity) {}

  void Add(const Tuple& tuple) { pending_.push_back(tuple); }
  void Add(Tuple&& tuple) { pending_.push_back(std::move(tuple)); }
  std::size_t pending_rows() const { return pending_.size(); }

  SegmentPtr Seal(SegmentOpStats* stats);

  // Seals a std::set's contents directly: set iteration is already sorted
  // and unique, so this is a straight column-major copy (no compares).
  static SegmentPtr FromSorted(std::size_t arity, const std::set<Tuple>& rows,
                               SegmentOpStats* stats);

 private:
  std::size_t arity_;
  std::vector<Tuple> pending_;
};

// K-way merge over sorted segments, yielding rows in ascending tuple order
// with duplicates collapsed (set-union semantics). Comparisons count into
// the attached stats.
class SegmentMergeIterator {
 public:
  explicit SegmentMergeIterator(std::vector<SegmentPtr> segments,
                                SegmentOpStats* stats = nullptr);

  bool Done() const { return current_ == nullptr; }
  // Valid until the next Advance; materialized row in ascending order.
  const Tuple& Row() const { return row_; }
  void Advance();

 private:
  struct Cursor {
    SegmentPtr segment;
    std::size_t row = 0;
  };
  int CompareCursors(const Cursor& a, const Cursor& b);
  void Materialize();

  std::vector<Cursor> cursors_;
  SegmentOpStats* stats_;
  const Cursor* current_ = nullptr;  // cursor holding the smallest row
  Tuple row_;
};

// Merges sorted segments into one (dedup union) via SegmentMergeIterator.
// Null/empty inputs are skipped; merging zero or one live segment is a
// cheap passthrough.
SegmentPtr MergeSegments(const std::vector<SegmentPtr>& segments,
                         SegmentOpStats* stats);

// A prefix-probe answer over the tiered segment list: up to kMaxRanges
// per-run row ranges, one per live run that holds matching rows. Fixed
// capacity keeps the probe hot path allocation-free; relations never grow
// more live runs than this (SegmentPolicy::max_runs is clamped to it).
// Runs are pairwise disjoint (the tail only ever receives set-new tuples),
// so the union of the ranges is duplicate-free by construction.
struct SegmentRanges {
  static constexpr std::size_t kMaxRanges = 12;

  struct Entry {
    const Segment* segment = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  Entry entries[kMaxRanges];
  std::size_t count = 0;  // populated entries (non-empty ranges only)
  std::size_t rows = 0;   // total rows across entries

  bool empty() const { return rows == 0; }
};

// Streams the rows of a SegmentRanges answer in ascending tuple order —
// the k-way analogue of iterating one sorted range, and bit-identical to
// the order the single-sealed-run design produced. No ties are possible
// (runs are disjoint), so a linear min-pick over ≤ kMaxRanges cursors
// suffices. The ranges object must outlive the cursor.
class SegmentRangeCursor {
 public:
  explicit SegmentRangeCursor(const SegmentRanges& ranges);

  bool Done() const { return current_ < 0; }
  // Valid until the next Advance.
  const Tuple& Row() const { return row_; }
  void Advance();

 private:
  void Materialize();

  const SegmentRanges* ranges_;
  std::size_t pos_[SegmentRanges::kMaxRanges];
  int current_ = -1;  // entry index holding the smallest unemitted row
  Tuple row_;
};

// ---------------------------------------------------------------------------
// Sorted-row helpers shared by the algebra/runtime merge paths. These are
// the scalar cousins of the segment operations: plain row-major vectors,
// same counted-comparison discipline.
// ---------------------------------------------------------------------------

// Sorts rows ascending, counting comparisons into `stats` when non-null.
void CountedSort(std::vector<Tuple>* rows, SegmentOpStats* stats);

// Binary-search membership in an ascending row vector.
bool SortedContains(const std::vector<Tuple>& sorted, const Tuple& tuple,
                    SegmentOpStats* stats);

}  // namespace mm2::instance

#endif  // MM2_INSTANCE_SEGMENT_H_
