#ifndef MM2_INSTANCE_INSTANCE_H_
#define MM2_INSTANCE_INSTANCE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "instance/segment.h"
#include "instance/value.h"
#include "model/schema.h"

namespace mm2::instance {

// Cumulative per-relation index telemetry; the chase diffs aggregate
// snapshots around a run and mirrors them into `index.*` obs counters.
struct IndexStats {
  std::uint64_t probes = 0;         // Probe() calls
  std::uint64_t probe_hits = 0;     // tuples yielded by probes
  std::uint64_t builds = 0;         // lazy index constructions
  std::uint64_t indexed_tuples = 0; // tuples hashed at build time

  IndexStats& operator+=(const IndexStats& other) {
    probes += other.probes;
    probe_hits += other.probe_hits;
    builds += other.builds;
    indexed_tuples += other.indexed_tuples;
    return *this;
  }
};

// A delta set served as a hybrid over the insert log and the tiered segment
// list: `refs` carries log-backed tuples (the portion of the delta that
// falls inside a partially-covered run span plus the unsealed suffix, in
// insertion order), `slices` carries whole sealed runs as zero-copy row
// ranges. size() equals the plain DeltaSince() size exactly, so delta
// accounting is bit-identical whichever path served. Enumeration order
// differs between the parts; consumers that need determinism (the chase's
// delta re-match) already canonicalize through an ordered assignment set.
struct DeltaSlice {
  const Segment* segment = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
};

struct DeltaView {
  std::vector<const Tuple*> refs;  // log-backed rows (insertion order)
  std::vector<DeltaSlice> slices;  // zero-copy sealed-run row ranges
  std::size_t slice_rows = 0;      // total rows across slices
  bool sliced = false;             // true when any run was served as a slice

  std::size_t size() const { return refs.size() + slice_rows; }
  bool empty() const { return size() == 0; }

  // Visits rows [begin, end) of the concatenated refs-then-slices sequence;
  // fn(const Tuple&) returns false to stop early. Rows materialized from
  // slices are only valid for the duration of the call.
  template <typename Fn>
  void ForEachRow(std::size_t begin, std::size_t end, Fn&& fn) const {
    std::size_t i = begin;
    for (; i < end && i < refs.size(); ++i) {
      if (!fn(*refs[i])) return;
    }
    std::size_t offset = refs.size();
    if (i >= end) return;
    Tuple scratch;
    for (const DeltaSlice& slice : slices) {
      const std::size_t n = slice.end - slice.begin;
      if (i < offset + n) {
        const std::size_t stop =
            slice.begin + (end - offset < n ? end - offset : n);
        for (std::size_t r = slice.begin + (i - offset); r < stop; ++r) {
          slice.segment->CopyRow(r, &scratch);
          if (!fn(scratch)) return;
        }
        i = offset + (stop - slice.begin);
        if (i >= end) return;
      }
      offset += n;
    }
  }
};

// The extension of one relation: a set of same-arity tuples. Set semantics
// with deterministic (ordered) iteration, which the chase and the tests
// rely on.
//
// Storage layer on top of the bare set:
//  - On-demand hash indexes keyed by column subsets. Probe(cols, key)
//    builds the index on first use and maintains it incrementally across
//    Insert/Erase/Clear. Buckets keep tuples in set (sorted) order, so
//    index-backed evaluation enumerates matches in the same deterministic
//    order a full scan would.
//  - A monotonically bumped generation counter (every successful mutation).
//  - An append-only insert log backing per-relation delta sets: a caller
//    holds a Watermark() and later asks DeltaSince(watermark) for exactly
//    the tuples inserted since. Erased tuples are tombstoned in the log, so
//    watermarks stay stable. This is what makes the chase semi-naive.
//
// Thread safety: concurrent const access (Probe/DeltaSince/tuples) is safe
// AND scalable — index lookups take a shared lock, so concurrent probes from
// parallel-chase workers do not serialize; only the first Probe of a new
// column set upgrades to an exclusive lock to build. Callers that fan out
// can EnsureIndex() the column sets they will probe up front, so no worker
// ever blocks on a build. Mutation still requires external synchronization,
// like the containers this wraps.
class RelationInstance {
 public:
  using ColumnSet = std::vector<std::size_t>;
  using TupleRefs = std::vector<const Tuple*>;

  RelationInstance() = default;
  explicit RelationInstance(std::size_t arity) : arity_(arity) {}

  // Indexes point into tuples_ nodes; copies rebuild lazily, moves keep
  // node addresses (std::set moves steal nodes), so both stay valid.
  RelationInstance(const RelationInstance& other);
  RelationInstance& operator=(const RelationInstance& other);
  RelationInstance(RelationInstance&& other) noexcept;
  RelationInstance& operator=(RelationInstance&& other) noexcept;

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::set<Tuple>& tuples() const { return tuples_; }

  // Inserts; returns true if the tuple was new. Dies on arity mismatch in
  // debug builds; callers go through Instance::Insert for checked inserts.
  bool Insert(Tuple tuple);
  // Exact membership. When the tiered segment view is current (kSegmented,
  // nothing changed since the last seal), the answer comes from binary
  // searches over the dense sorted runs instead of chasing set nodes; the
  // set path answers otherwise. Same result either way.
  bool Contains(const Tuple& tuple) const {
    if (storage_mode_ == StorageMode::kSegmented && SegmentCurrent() &&
        tuple.size() == arity_) {
      for (const SealedRun& run : runs_) {
        if (run.segment->Contains(tuple, nullptr)) return true;
      }
      return false;
    }
    return tuples_.count(tuple) > 0;
  }
  bool Erase(const Tuple& tuple);
  void Clear();

  // All tuples whose projection onto `cols` equals `key` (|key| == |cols|,
  // positions in [0, arity)), in set order; nullptr when none. The returned
  // pointer stays valid until the next mutation of this relation.
  const TupleRefs* Probe(const ColumnSet& cols, const Tuple& key) const;

  // Builds the hash index over `cols` if it does not exist yet (counts as a
  // build, not a probe). Parallel readers call this before fanning out so
  // every subsequent Probe(cols, ...) takes only the shared lock.
  void EnsureIndex(const ColumnSet& cols) const;

  // Bumped by every successful Insert/Erase/Clear.
  std::uint64_t generation() const { return generation_; }

  // Insert-log position; pass to DeltaSince later to see what arrived
  // in between. Watermark 0 covers the whole extension.
  std::size_t Watermark() const { return log_.size(); }
  // Tuples inserted at or after `watermark` and still present, in
  // insertion order.
  TupleRefs DeltaSince(std::size_t watermark) const;

  IndexStats index_stats() const;

  // --- Tiered columnar segment view (sorted, immutable; see segment.h) ---
  // Under kSegmented the relation maintains an LSM-style list of sealed
  // runs plus a mutable tail: Insert appends set-new tuples to the tail,
  // and PrepareSegments() seals the tail into a NEW small run (sort only —
  // no re-merge of the base), then size-tiered compaction merges the
  // newest runs only while they outgrow their tier (SegmentPolicy), so
  // total merge work is O(n log n) across a chase instead of O(n) rows per
  // round. Erase/Clear mark the view dirty, forcing a full rebuild from
  // the set (already sorted+unique) at the next seal. Under kIndexed the
  // segment state is dropped; probes and retains fall back to the hash/set
  // paths, so the mode never changes observable results.
  void set_storage_mode(StorageMode mode);
  StorageMode storage_mode() const { return storage_mode_; }

  // Compaction thresholds for this relation's run list (kSegmented only).
  void set_segment_policy(const SegmentPolicy& policy) { policy_ = policy; }
  const SegmentPolicy& segment_policy() const { return policy_; }

  // (Re)seals the segment view to cover the current extension. Const with
  // cache semantics like EnsureIndex, so const source instances can be
  // sealed once before a run. Works in any mode (full rebuild from the
  // set); incremental tail seal + tiered compaction only under kSegmented.
  // No-op if current. With defer_dirty_rebuild, an erase-dirtied view with
  // few tombstones (< 1/4 of the live rows) skips the O(n) full rebuild and
  // stays stale: probes and retains decline to the index path (correct,
  // counted as fallbacks) and DeltaViewSince keeps serving exactly. The
  // rebuild still fires once tombstones pile past the threshold, so the
  // deferral is amortized-O(1) per erase — this is what keeps delta-sized
  // maintenance passes from paying a full reseal of every touched relation.
  void PrepareSegments(bool defer_dirty_rebuild = false) const;

  // True when the sealed runs reflect the full extension (nothing changed
  // since the last PrepareSegments).
  bool SegmentCurrent() const {
    return !runs_.empty() && !segment_dirty_ &&
           segment_generation_ == generation_;
  }

  // Rows whose leading |key| columns equal `key`, served from the live
  // runs as up to one row range per run. SegmentRangeCursor streams the
  // union in set (sorted) order — bit-identical enumeration to the hash
  // probe. nullopt when the view is stale or absent (callers fall back to
  // Probe, and the decline is counted under kSegmented); an engaged empty
  // answer still counts as a served probe. The segment pointers follow the
  // same validity contract as Probe(): no mutation or PrepareSegments
  // until the caller is done.
  std::optional<SegmentRanges> SegmentProbePrefix(const Tuple& key) const;

  // Batched membership for head-dedup retain passes: sets present->at(i)
  // iff *sorted_candidates[i] is in the relation right now. Served by one
  // monotone merge cursor per live run plus a sorted copy of the unsealed
  // tail; falls back to set lookups when the segment state cannot answer
  // exactly (counted as a fallback).
  void RetainExisting(const std::vector<const Tuple*>& sorted_candidates,
                      std::vector<char>* present) const;

  // The delta since `watermark` as a hybrid log/slice view: whole sealed
  // runs that lie entirely past the watermark are returned as zero-copy
  // slices, everything else (partial run coverage, the unsealed tail) as
  // log refs. Erase-containing epochs stay sliceable per run: only runs
  // that actually lost rows to a tombstone (SealedRun::dead > 0) drop to
  // the tombstone-skipping log-ref path, untouched runs keep serving
  // zero-copy slices. Falls back to a pure log-backed view (refs ==
  // DeltaSince) whenever run/log spans cannot be trusted — copied
  // relations, non-segmented modes. view.size() always equals
  // DeltaSince(watermark).size().
  DeltaView DeltaViewSince(std::size_t watermark) const;

  // Sealed-view access for tests and benchmarks. sealed_segment() is the
  // base (oldest, largest) run.
  SegmentPtr sealed_segment() const {
    return runs_.empty() ? nullptr : runs_.front().segment;
  }
  std::size_t sealed_rows() const {
    std::size_t rows = 0;
    for (const SealedRun& run : runs_) rows += run.segment->rows();
    return rows;
  }
  std::size_t live_runs() const { return runs_.size(); }

  // Current run-list shape (run count, tier count, tail backlog).
  SegmentShape segment_shape() const;

  SegmentOpStats segment_stats() const;

 private:
  struct Index {
    std::unordered_map<Tuple, TupleRefs, TupleHash> buckets;
  };

  // Telemetry counters are atomics so probe bookkeeping can happen under
  // the shared (reader) lock without a data race.
  struct AtomicIndexStats {
    std::atomic<std::uint64_t> probes{0};
    std::atomic<std::uint64_t> probe_hits{0};
    std::atomic<std::uint64_t> builds{0};
    std::atomic<std::uint64_t> indexed_tuples{0};

    IndexStats Load() const {
      IndexStats s;
      s.probes = probes.load(std::memory_order_relaxed);
      s.probe_hits = probe_hits.load(std::memory_order_relaxed);
      s.builds = builds.load(std::memory_order_relaxed);
      s.indexed_tuples = indexed_tuples.load(std::memory_order_relaxed);
      return s;
    }
    void Store(const IndexStats& s) {
      probes.store(s.probes, std::memory_order_relaxed);
      probe_hits.store(s.probe_hits, std::memory_order_relaxed);
      builds.store(s.builds, std::memory_order_relaxed);
      indexed_tuples.store(s.indexed_tuples, std::memory_order_relaxed);
    }
  };

  // Same discipline for segment telemetry: probes run under the shared
  // reader contract, so the counters must be atomics. Accumulated from
  // batch-local SegmentOpStats to keep the hot paths cheap.
  struct AtomicSegmentStats {
    std::atomic<std::uint64_t> seals{0};
    std::atomic<std::uint64_t> sealed_rows{0};
    std::atomic<std::uint64_t> merges{0};
    std::atomic<std::uint64_t> merged_rows{0};
    std::atomic<std::uint64_t> compares{0};
    std::atomic<std::uint64_t> probes{0};
    std::atomic<std::uint64_t> probe_hits{0};
    std::atomic<std::uint64_t> skips{0};
    std::atomic<std::uint64_t> fallbacks{0};
    std::atomic<std::uint64_t> retain_batches{0};
    std::atomic<std::uint64_t> retain_candidates{0};
    std::atomic<std::uint64_t> retain_hits{0};
    std::atomic<std::uint64_t> compactions{0};
    std::atomic<std::uint64_t> delta_slices{0};
    std::atomic<std::uint64_t> delta_slice_rows{0};

    void Add(const SegmentOpStats& s) {
      auto bump = [](std::atomic<std::uint64_t>& c, std::uint64_t v) {
        if (v != 0) c.fetch_add(v, std::memory_order_relaxed);
      };
      bump(seals, s.seals);
      bump(sealed_rows, s.sealed_rows);
      bump(merges, s.merges);
      bump(merged_rows, s.merged_rows);
      bump(compares, s.compares);
      bump(probes, s.probes);
      bump(probe_hits, s.probe_hits);
      bump(skips, s.skips);
      bump(fallbacks, s.fallbacks);
      bump(retain_batches, s.retain_batches);
      bump(retain_candidates, s.retain_candidates);
      bump(retain_hits, s.retain_hits);
      bump(compactions, s.compactions);
      bump(delta_slices, s.delta_slices);
      bump(delta_slice_rows, s.delta_slice_rows);
    }
    void Store(const SegmentOpStats& s) {
      seals.store(s.seals, std::memory_order_relaxed);
      sealed_rows.store(s.sealed_rows, std::memory_order_relaxed);
      merges.store(s.merges, std::memory_order_relaxed);
      merged_rows.store(s.merged_rows, std::memory_order_relaxed);
      compares.store(s.compares, std::memory_order_relaxed);
      probes.store(s.probes, std::memory_order_relaxed);
      probe_hits.store(s.probe_hits, std::memory_order_relaxed);
      skips.store(s.skips, std::memory_order_relaxed);
      fallbacks.store(s.fallbacks, std::memory_order_relaxed);
      retain_batches.store(s.retain_batches, std::memory_order_relaxed);
      retain_candidates.store(s.retain_candidates, std::memory_order_relaxed);
      retain_hits.store(s.retain_hits, std::memory_order_relaxed);
      compactions.store(s.compactions, std::memory_order_relaxed);
      delta_slices.store(s.delta_slices, std::memory_order_relaxed);
      delta_slice_rows.store(s.delta_slice_rows, std::memory_order_relaxed);
    }
    SegmentOpStats Load() const {
      SegmentOpStats s;
      s.seals = seals.load(std::memory_order_relaxed);
      s.sealed_rows = sealed_rows.load(std::memory_order_relaxed);
      s.merges = merges.load(std::memory_order_relaxed);
      s.merged_rows = merged_rows.load(std::memory_order_relaxed);
      s.compares = compares.load(std::memory_order_relaxed);
      s.probes = probes.load(std::memory_order_relaxed);
      s.probe_hits = probe_hits.load(std::memory_order_relaxed);
      s.skips = skips.load(std::memory_order_relaxed);
      s.fallbacks = fallbacks.load(std::memory_order_relaxed);
      s.retain_batches = retain_batches.load(std::memory_order_relaxed);
      s.retain_candidates = retain_candidates.load(std::memory_order_relaxed);
      s.retain_hits = retain_hits.load(std::memory_order_relaxed);
      s.compactions = compactions.load(std::memory_order_relaxed);
      s.delta_slices = delta_slices.load(std::memory_order_relaxed);
      s.delta_slice_rows = delta_slice_rows.load(std::memory_order_relaxed);
      return s;
    }
  };

  void IndexInsert(const Tuple* tuple);
  void IndexErase(const Tuple* tuple);
  // Builds and registers the index over `cols`; requires the exclusive
  // lock. Returns the registered entry.
  std::map<ColumnSet, Index>::iterator BuildIndexLocked(
      const ColumnSet& cols) const;
  static Tuple Project(const Tuple& tuple, const ColumnSet& cols);

  std::size_t arity_ = 0;
  std::set<Tuple> tuples_;
  std::uint64_t generation_ = 0;
  // Insertion order of live tuples; erased entries become nullptr so
  // caller-held watermark positions never shift.
  std::vector<const Tuple*> log_;
  // Node -> log slot, built lazily on the first Erase and maintained by
  // later Inserts: repeated erases (the incremental-maintenance write
  // pattern) tombstone in O(log) lookups instead of an O(|log|) scan.
  // Erase-free relations never pay for it.
  std::map<const Tuple*, std::size_t> log_pos_;
  bool log_pos_tracked_ = false;
  // Readers (Probe lookups) share; index construction and mutation-path
  // maintenance take it exclusively.
  mutable std::shared_mutex index_mu_;
  mutable std::map<ColumnSet, Index> indexes_;
  mutable AtomicIndexStats stats_;

  // One sealed run of the tiered segment list. `[log_begin, log_end)` is
  // the insert-log span whose live tuples the run holds; while the list is
  // tiled (runs_tiled_) the spans of consecutive runs are contiguous and
  // together cover [0, runs_.back().log_end), which is what lets
  // DeltaViewSince answer with zero-copy run slices.
  struct SealedRun {
    SegmentPtr segment;
    std::size_t log_begin = 0;
    std::size_t log_end = 0;
    // Rows of this run tombstoned by later erases. A run with dead == 0
    // still answers DeltaViewSince as a zero-copy slice even in an
    // erase-containing epoch; a run with dead > 0 is served through the
    // (tombstone-skipping) log refs instead. Reset by the full rebuild.
    std::size_t dead = 0;
  };

  // Merges the newest runs while they violate the size-tier invariant
  // (see SegmentPolicy). Requires the exclusive lock.
  void CompactLocked(SegmentOpStats* stats) const;

  // Tiered view state. Runs are immutable and shared across copies, oldest
  // (largest) first; `tail_` holds tuples inserted since the last seal
  // (kSegmented only); `segment_dirty_` marks erases/clears, which
  // invalidate the tail and force a full rebuild. `segment_generation_` is
  // the generation the sealed view corresponds to. `runs_tiled_` records
  // whether the run/log spans can be trusted: copies rebuild the log in
  // set order, which breaks the tiling, so copied relations decline slice
  // serving until the next full rebuild restores it.
  StorageMode storage_mode_ = StorageMode::kIndexed;
  SegmentPolicy policy_;
  mutable std::vector<SealedRun> runs_;
  mutable bool runs_tiled_ = true;
  mutable std::vector<Tuple> tail_;
  mutable bool segment_dirty_ = false;
  mutable std::uint64_t segment_generation_ = 0;
  mutable AtomicSegmentStats seg_stats_;
};

// A database instance: relation name -> extension. An Instance is a member
// of the set of possible instances its Schema denotes; mappings relate
// pairs of Instances (paper Section 2).
class Instance {
 public:
  Instance() = default;

  // Creates empty extensions for every relation of `schema`. ER schemas are
  // materialized via their entity-set layouts (see EntitySetLayout below).
  static Instance EmptyFor(const model::Schema& schema);

  // Declares a relation extension of the given arity (replaces empty).
  void DeclareRelation(std::string_view name, std::size_t arity);
  bool HasRelation(std::string_view name) const;

  // Checked insert: relation must exist and the arity must match; rejects
  // before any index or log is touched.
  Status Insert(std::string_view relation, Tuple tuple);
  // Unchecked variant used by inner loops that already validated shape.
  // Debug-asserts existence and arity.
  void InsertUnchecked(std::string_view relation, Tuple tuple);
  Status Erase(std::string_view relation, const Tuple& tuple);

  const RelationInstance* Find(std::string_view relation) const;
  RelationInstance* FindMutable(std::string_view relation);

  const std::map<std::string, RelationInstance, std::less<>>& relations()
      const {
    return relations_;
  }
  std::map<std::string, RelationInstance, std::less<>>& relations_mutable() {
    return relations_;
  }

  std::size_t TotalTuples() const;
  // True if any tuple anywhere contains a labeled null.
  bool HasLabeledNulls() const;
  // Largest labeled-null label present, or -1.
  std::int64_t MaxNullLabel() const;

  // Applies `mode` to every existing relation and to relations declared
  // later (the chase declares target relations lazily via InsertFacts).
  void SetStorageMode(StorageMode mode);
  StorageMode storage_mode() const { return storage_mode_; }

  // Applies compaction thresholds to every existing relation and to
  // relations declared later.
  void SetSegmentPolicy(const SegmentPolicy& policy);

  // Seals every relation's segment view (const cache semantics; see
  // RelationInstance::PrepareSegments).
  void PrepareAllSegments(bool defer_dirty_rebuild = false) const;

  // Summed index telemetry across all relations.
  IndexStats IndexStatsTotal() const;
  // Summed segment telemetry across all relations.
  SegmentOpStats SegmentStatsTotal() const;
  // Summed run-list shape across all relations (tiers: per-relation max).
  SegmentShape SegmentShapeTotal() const;
  // relation -> current insert-log watermark, for delta-tracking readers.
  std::map<std::string, std::size_t, std::less<>> InsertWatermarks() const;

  // Exact equality: same relation names, same tuple sets.
  bool Equals(const Instance& other) const;

  // Tuples present in `this` but absent in `other` (per relation), the
  // positive half of a symmetric difference. Used by view maintenance tests.
  Instance Minus(const Instance& other) const;

  // Merges all tuples of `other` into this instance, declaring missing
  // relations as needed.
  void UnionWith(const Instance& other);

  std::string ToString() const;

 private:
  std::map<std::string, RelationInstance, std::less<>> relations_;
  StorageMode storage_mode_ = StorageMode::kIndexed;
  SegmentPolicy segment_policy_;
};

// Equivalence up to a bijective renaming of labeled nulls: true iff some
// bijection over null labels maps `a` onto exactly `b` (constants fixed,
// relation-by-relation tuple sets equal). This is instance isomorphism in
// the data-exchange sense — incremental maintenance and a from-scratch
// chase agree up to the names of the nulls they invent, and this is the
// comparator that makes that testable. Ground tuples are compared by
// membership; null-carrying tuples are matched by a backtracking search
// over label bijections, grouped by constant skeleton so the search only
// explores candidates that could possibly align. Relations with empty
// extensions are ignored on both sides (same convention as Equals).
bool InstanceEqualsUpToNulls(const Instance& a, const Instance& b);

// How an entity set is laid out as a relation extension at runtime: a
// leading hidden "$type" column holding the concrete entity type name,
// followed by the union of attributes over the whole hierarchy (base-first,
// then per-subtype extras in declaration order). Absent attributes are
// plain NULL. This is the runtime shape behind Fig. 2/3's "Persons".
struct EntitySetLayout {
  std::string set_name;
  std::string root_type;
  // Column names, excluding the leading $type column.
  std::vector<std::string> columns;
  // For each entity type in the hierarchy, which columns it populates
  // (indices into `columns`).
  std::map<std::string, std::vector<std::size_t>> columns_of_type;

  // Column position of `attribute` within `columns`, or npos.
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  std::size_t ColumnIndex(std::string_view attribute) const;

  // Total tuple arity including the leading $type column.
  std::size_t arity() const { return columns.size() + 1; }
};

// Computes the layout for `set` within `schema`.
Result<EntitySetLayout> ComputeEntitySetLayout(const model::Schema& schema,
                                               const model::EntitySet& set);

// Builds an entity tuple for `type_name` given values for its (flattened)
// attributes in hierarchy order; pads other columns with NULL.
Result<Tuple> MakeEntityTuple(const EntitySetLayout& layout,
                              const model::Schema& schema,
                              std::string_view type_name,
                              const std::vector<Value>& attribute_values);

}  // namespace mm2::instance

#endif  // MM2_INSTANCE_INSTANCE_H_
