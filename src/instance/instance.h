#ifndef MM2_INSTANCE_INSTANCE_H_
#define MM2_INSTANCE_INSTANCE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "instance/value.h"
#include "model/schema.h"

namespace mm2::instance {

// Cumulative per-relation index telemetry; the chase diffs aggregate
// snapshots around a run and mirrors them into `index.*` obs counters.
struct IndexStats {
  std::uint64_t probes = 0;         // Probe() calls
  std::uint64_t probe_hits = 0;     // tuples yielded by probes
  std::uint64_t builds = 0;         // lazy index constructions
  std::uint64_t indexed_tuples = 0; // tuples hashed at build time

  IndexStats& operator+=(const IndexStats& other) {
    probes += other.probes;
    probe_hits += other.probe_hits;
    builds += other.builds;
    indexed_tuples += other.indexed_tuples;
    return *this;
  }
};

// The extension of one relation: a set of same-arity tuples. Set semantics
// with deterministic (ordered) iteration, which the chase and the tests
// rely on.
//
// Storage layer on top of the bare set:
//  - On-demand hash indexes keyed by column subsets. Probe(cols, key)
//    builds the index on first use and maintains it incrementally across
//    Insert/Erase/Clear. Buckets keep tuples in set (sorted) order, so
//    index-backed evaluation enumerates matches in the same deterministic
//    order a full scan would.
//  - A monotonically bumped generation counter (every successful mutation).
//  - An append-only insert log backing per-relation delta sets: a caller
//    holds a Watermark() and later asks DeltaSince(watermark) for exactly
//    the tuples inserted since. Erased tuples are tombstoned in the log, so
//    watermarks stay stable. This is what makes the chase semi-naive.
//
// Thread safety: concurrent const access (Probe/DeltaSince/tuples) is safe
// AND scalable — index lookups take a shared lock, so concurrent probes from
// parallel-chase workers do not serialize; only the first Probe of a new
// column set upgrades to an exclusive lock to build. Callers that fan out
// can EnsureIndex() the column sets they will probe up front, so no worker
// ever blocks on a build. Mutation still requires external synchronization,
// like the containers this wraps.
class RelationInstance {
 public:
  using ColumnSet = std::vector<std::size_t>;
  using TupleRefs = std::vector<const Tuple*>;

  RelationInstance() = default;
  explicit RelationInstance(std::size_t arity) : arity_(arity) {}

  // Indexes point into tuples_ nodes; copies rebuild lazily, moves keep
  // node addresses (std::set moves steal nodes), so both stay valid.
  RelationInstance(const RelationInstance& other);
  RelationInstance& operator=(const RelationInstance& other);
  RelationInstance(RelationInstance&& other) noexcept;
  RelationInstance& operator=(RelationInstance&& other) noexcept;

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::set<Tuple>& tuples() const { return tuples_; }

  // Inserts; returns true if the tuple was new. Dies on arity mismatch in
  // debug builds; callers go through Instance::Insert for checked inserts.
  bool Insert(Tuple tuple);
  bool Contains(const Tuple& tuple) const { return tuples_.count(tuple) > 0; }
  bool Erase(const Tuple& tuple);
  void Clear();

  // All tuples whose projection onto `cols` equals `key` (|key| == |cols|,
  // positions in [0, arity)), in set order; nullptr when none. The returned
  // pointer stays valid until the next mutation of this relation.
  const TupleRefs* Probe(const ColumnSet& cols, const Tuple& key) const;

  // Builds the hash index over `cols` if it does not exist yet (counts as a
  // build, not a probe). Parallel readers call this before fanning out so
  // every subsequent Probe(cols, ...) takes only the shared lock.
  void EnsureIndex(const ColumnSet& cols) const;

  // Bumped by every successful Insert/Erase/Clear.
  std::uint64_t generation() const { return generation_; }

  // Insert-log position; pass to DeltaSince later to see what arrived
  // in between. Watermark 0 covers the whole extension.
  std::size_t Watermark() const { return log_.size(); }
  // Tuples inserted at or after `watermark` and still present, in
  // insertion order.
  TupleRefs DeltaSince(std::size_t watermark) const;

  IndexStats index_stats() const;

 private:
  struct Index {
    std::unordered_map<Tuple, TupleRefs, TupleHash> buckets;
  };

  // Telemetry counters are atomics so probe bookkeeping can happen under
  // the shared (reader) lock without a data race.
  struct AtomicIndexStats {
    std::atomic<std::uint64_t> probes{0};
    std::atomic<std::uint64_t> probe_hits{0};
    std::atomic<std::uint64_t> builds{0};
    std::atomic<std::uint64_t> indexed_tuples{0};

    IndexStats Load() const {
      IndexStats s;
      s.probes = probes.load(std::memory_order_relaxed);
      s.probe_hits = probe_hits.load(std::memory_order_relaxed);
      s.builds = builds.load(std::memory_order_relaxed);
      s.indexed_tuples = indexed_tuples.load(std::memory_order_relaxed);
      return s;
    }
    void Store(const IndexStats& s) {
      probes.store(s.probes, std::memory_order_relaxed);
      probe_hits.store(s.probe_hits, std::memory_order_relaxed);
      builds.store(s.builds, std::memory_order_relaxed);
      indexed_tuples.store(s.indexed_tuples, std::memory_order_relaxed);
    }
  };

  void IndexInsert(const Tuple* tuple);
  void IndexErase(const Tuple* tuple);
  // Builds and registers the index over `cols`; requires the exclusive
  // lock. Returns the registered entry.
  std::map<ColumnSet, Index>::iterator BuildIndexLocked(
      const ColumnSet& cols) const;
  static Tuple Project(const Tuple& tuple, const ColumnSet& cols);

  std::size_t arity_ = 0;
  std::set<Tuple> tuples_;
  std::uint64_t generation_ = 0;
  // Insertion order of live tuples; erased entries become nullptr so
  // caller-held watermark positions never shift.
  std::vector<const Tuple*> log_;
  // Readers (Probe lookups) share; index construction and mutation-path
  // maintenance take it exclusively.
  mutable std::shared_mutex index_mu_;
  mutable std::map<ColumnSet, Index> indexes_;
  mutable AtomicIndexStats stats_;
};

// A database instance: relation name -> extension. An Instance is a member
// of the set of possible instances its Schema denotes; mappings relate
// pairs of Instances (paper Section 2).
class Instance {
 public:
  Instance() = default;

  // Creates empty extensions for every relation of `schema`. ER schemas are
  // materialized via their entity-set layouts (see EntitySetLayout below).
  static Instance EmptyFor(const model::Schema& schema);

  // Declares a relation extension of the given arity (replaces empty).
  void DeclareRelation(std::string_view name, std::size_t arity);
  bool HasRelation(std::string_view name) const;

  // Checked insert: relation must exist and the arity must match; rejects
  // before any index or log is touched.
  Status Insert(std::string_view relation, Tuple tuple);
  // Unchecked variant used by inner loops that already validated shape.
  // Debug-asserts existence and arity.
  void InsertUnchecked(std::string_view relation, Tuple tuple);
  Status Erase(std::string_view relation, const Tuple& tuple);

  const RelationInstance* Find(std::string_view relation) const;
  RelationInstance* FindMutable(std::string_view relation);

  const std::map<std::string, RelationInstance, std::less<>>& relations()
      const {
    return relations_;
  }
  std::map<std::string, RelationInstance, std::less<>>& relations_mutable() {
    return relations_;
  }

  std::size_t TotalTuples() const;
  // True if any tuple anywhere contains a labeled null.
  bool HasLabeledNulls() const;
  // Largest labeled-null label present, or -1.
  std::int64_t MaxNullLabel() const;

  // Summed index telemetry across all relations.
  IndexStats IndexStatsTotal() const;
  // relation -> current insert-log watermark, for delta-tracking readers.
  std::map<std::string, std::size_t, std::less<>> InsertWatermarks() const;

  // Exact equality: same relation names, same tuple sets.
  bool Equals(const Instance& other) const;

  // Tuples present in `this` but absent in `other` (per relation), the
  // positive half of a symmetric difference. Used by view maintenance tests.
  Instance Minus(const Instance& other) const;

  // Merges all tuples of `other` into this instance, declaring missing
  // relations as needed.
  void UnionWith(const Instance& other);

  std::string ToString() const;

 private:
  std::map<std::string, RelationInstance, std::less<>> relations_;
};

// How an entity set is laid out as a relation extension at runtime: a
// leading hidden "$type" column holding the concrete entity type name,
// followed by the union of attributes over the whole hierarchy (base-first,
// then per-subtype extras in declaration order). Absent attributes are
// plain NULL. This is the runtime shape behind Fig. 2/3's "Persons".
struct EntitySetLayout {
  std::string set_name;
  std::string root_type;
  // Column names, excluding the leading $type column.
  std::vector<std::string> columns;
  // For each entity type in the hierarchy, which columns it populates
  // (indices into `columns`).
  std::map<std::string, std::vector<std::size_t>> columns_of_type;

  // Column position of `attribute` within `columns`, or npos.
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  std::size_t ColumnIndex(std::string_view attribute) const;

  // Total tuple arity including the leading $type column.
  std::size_t arity() const { return columns.size() + 1; }
};

// Computes the layout for `set` within `schema`.
Result<EntitySetLayout> ComputeEntitySetLayout(const model::Schema& schema,
                                               const model::EntitySet& set);

// Builds an entity tuple for `type_name` given values for its (flattened)
// attributes in hierarchy order; pads other columns with NULL.
Result<Tuple> MakeEntityTuple(const EntitySetLayout& layout,
                              const model::Schema& schema,
                              std::string_view type_name,
                              const std::vector<Value>& attribute_values);

}  // namespace mm2::instance

#endif  // MM2_INSTANCE_INSTANCE_H_
