#include "instance/value.h"

#include <cstring>

namespace mm2::instance {

Value Value::Null() { return Value(); }

Value Value::Int64(std::int64_t v) {
  Value value;
  value.kind_ = Kind::kInt64;
  value.int_ = v;
  value.hash_ = MixInt(static_cast<std::uint64_t>(v));
  return value;
}

Value Value::Double(double v) {
  Value value;
  value.kind_ = Kind::kDouble;
  value.double_ = v;
  // Hash must respect IEEE equality: -0.0 == 0.0, so normalize the bit
  // pattern before mixing. (NaN != NaN, so its hash is irrelevant.)
  double normalized = v == 0.0 ? 0.0 : v;
  std::uint64_t bits;
  std::memcpy(&bits, &normalized, sizeof(bits));
  value.hash_ = MixInt(bits);
  return value;
}

Value Value::String(std::string_view v) {
  return InternedString(StringPool::Global().Intern(v));
}

Value Value::InternedString(StringPool::StringId id) {
  Value value;
  value.kind_ = Kind::kString;
  value.int_ = static_cast<std::int64_t>(id);
  // Fold the 64-bit pool hash (cached at intern time) to the 32-bit slot.
  std::uint64_t h = StringPool::Global().HashOf(id);
  value.hash_ = static_cast<std::uint32_t>(h ^ (h >> 32));
  return value;
}

Value Value::Bool(bool v) {
  Value value;
  value.kind_ = Kind::kBool;
  value.int_ = v ? 1 : 0;
  value.hash_ = MixInt(static_cast<std::uint64_t>(value.int_));
  return value;
}

Value Value::Date(std::int64_t days) {
  Value value;
  value.kind_ = Kind::kDate;
  value.int_ = days;
  value.hash_ = MixInt(static_cast<std::uint64_t>(days));
  return value;
}

Value Value::LabeledNull(std::int64_t label) {
  Value value;
  value.kind_ = Kind::kLabeledNull;
  value.int_ = label;
  value.hash_ = MixInt(static_cast<std::uint64_t>(label));
  return value;
}

bool Value::operator<(const Value& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  switch (kind_) {
    case Kind::kDouble:
      return double_ < other.double_;
    case Kind::kString:
      return StringPool::Global().Compare(string_id(), other.string_id()) < 0;
    default:
      return int_ < other.int_;
  }
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kInt64:
      return std::to_string(int_);
    case Kind::kDouble: {
      std::string s = std::to_string(double_);
      return s;
    }
    case Kind::kString:
      return "\"" + str() + "\"";
    case Kind::kBool:
      return int_ != 0 ? "true" : "false";
    case Kind::kDate:
      return "date:" + std::to_string(int_);
    case Kind::kLabeledNull:
      return "N" + std::to_string(int_);
  }
  return "?";
}

std::string TupleToString(const Tuple& tuple) {
  std::string out;
  out.reserve(2 + tuple.size() * 8);
  out += "(";
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuple[i].ToString();
  }
  out += ")";
  return out;
}

std::size_t TupleHash::operator()(const Tuple& tuple) const {
  std::size_t seed = tuple.size();
  for (const Value& v : tuple) {
    seed ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  }
  return seed;
}

}  // namespace mm2::instance
