#include "instance/value.h"

#include <functional>
#include <utility>

namespace mm2::instance {

Value Value::Null() { return Value(); }

Value Value::Int64(std::int64_t v) {
  Value value;
  value.kind_ = Kind::kInt64;
  value.int_ = v;
  return value;
}

Value Value::Double(double v) {
  Value value;
  value.kind_ = Kind::kDouble;
  value.double_ = v;
  return value;
}

Value Value::String(std::string v) {
  Value value;
  value.kind_ = Kind::kString;
  value.string_ = std::move(v);
  return value;
}

Value Value::Bool(bool v) {
  Value value;
  value.kind_ = Kind::kBool;
  value.int_ = v ? 1 : 0;
  return value;
}

Value Value::Date(std::int64_t days) {
  Value value;
  value.kind_ = Kind::kDate;
  value.int_ = days;
  return value;
}

Value Value::LabeledNull(std::int64_t label) {
  Value value;
  value.kind_ = Kind::kLabeledNull;
  value.int_ = label;
  return value;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kInt64:
    case Kind::kBool:
    case Kind::kDate:
    case Kind::kLabeledNull:
      return int_ == other.int_;
    case Kind::kDouble:
      return double_ == other.double_;
    case Kind::kString:
      return string_ == other.string_;
  }
  return false;
}

bool Value::operator<(const Value& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  switch (kind_) {
    case Kind::kNull:
      return false;
    case Kind::kInt64:
    case Kind::kBool:
    case Kind::kDate:
    case Kind::kLabeledNull:
      return int_ < other.int_;
    case Kind::kDouble:
      return double_ < other.double_;
    case Kind::kString:
      return string_ < other.string_;
  }
  return false;
}

std::size_t Value::Hash() const {
  std::size_t seed = static_cast<std::size_t>(kind_) * 0x9e3779b97f4a7c15ULL;
  switch (kind_) {
    case Kind::kNull:
      break;
    case Kind::kInt64:
    case Kind::kBool:
    case Kind::kDate:
    case Kind::kLabeledNull:
      seed ^= std::hash<std::int64_t>()(int_) + 0x9e3779b9 + (seed << 6);
      break;
    case Kind::kDouble:
      seed ^= std::hash<double>()(double_) + 0x9e3779b9 + (seed << 6);
      break;
    case Kind::kString:
      seed ^= std::hash<std::string>()(string_) + 0x9e3779b9 + (seed << 6);
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kInt64:
      return std::to_string(int_);
    case Kind::kDouble: {
      std::string s = std::to_string(double_);
      return s;
    }
    case Kind::kString:
      return "\"" + string_ + "\"";
    case Kind::kBool:
      return int_ != 0 ? "true" : "false";
    case Kind::kDate:
      return "date:" + std::to_string(int_);
    case Kind::kLabeledNull:
      return "N" + std::to_string(int_);
  }
  return "?";
}

std::string TupleToString(const Tuple& tuple) {
  std::string out = "(";
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuple[i].ToString();
  }
  out += ")";
  return out;
}

std::size_t TupleHash::operator()(const Tuple& tuple) const {
  std::size_t seed = tuple.size();
  for (const Value& v : tuple) {
    seed ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  }
  return seed;
}

}  // namespace mm2::instance
