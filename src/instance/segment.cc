#include "instance/segment.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

namespace mm2::instance {

namespace {

// Lexicographic three-way compare of two length-`len` value runs.
int CompareValues(const Value* a, const Value* b, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    if (a[i] < b[i]) return -1;
    if (b[i] < a[i]) return 1;
  }
  return 0;
}

void Count(SegmentOpStats* stats, std::uint64_t n) {
  if (stats != nullptr) stats->compares += n;
}

}  // namespace

StorageMode ResolveStorageMode(StorageMode requested) {
  if (requested != StorageMode::kDefault) return requested;
  const char* env = std::getenv("MM2_STORAGE");
  // Segmented is the default since the tiered segment list reached
  // wall-clock parity (EXPERIMENTS.md §C18); "indexed" selects the oracle.
  if (env == nullptr || env[0] == '\0') return StorageMode::kSegmented;
  if (std::strcmp(env, "indexed") == 0) return StorageMode::kIndexed;
  return StorageMode::kSegmented;
}

const char* StorageModeName(StorageMode mode) {
  switch (mode) {
    case StorageMode::kDefault:
      return "default";
    case StorageMode::kIndexed:
      return "indexed";
    case StorageMode::kSegmented:
      return "segmented";
  }
  return "indexed";
}

SegmentPolicy ResolveSegmentPolicy(std::size_t tier_ratio,
                                   std::size_t max_runs) {
  SegmentPolicy defaults;
  auto from_env = [](const char* name, std::size_t fallback) {
    const char* env = std::getenv(name);
    if (env == nullptr || env[0] == '\0') return fallback;
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0') return fallback;
    return static_cast<std::size_t>(v);
  };
  SegmentPolicy policy;
  policy.tier_ratio = tier_ratio != 0
                          ? tier_ratio
                          : from_env("MM2_SEGMENT_TIER_RATIO",
                                     defaults.tier_ratio);
  policy.max_runs = max_runs != 0
                        ? max_runs
                        : from_env("MM2_SEGMENT_MAX_RUNS", defaults.max_runs);
  if (policy.tier_ratio < 2) policy.tier_ratio = 2;
  if (policy.max_runs < 1) policy.max_runs = 1;
  if (policy.max_runs > SegmentRanges::kMaxRanges) {
    policy.max_runs = SegmentRanges::kMaxRanges;
  }
  return policy;
}

// ---------------------------------------------------------------------------
// Segment
// ---------------------------------------------------------------------------

void Segment::CopyRow(std::size_t row, Tuple* out) const {
  out->resize(arity_);
  for (std::size_t c = 0; c < arity_; ++c) {
    (*out)[c] = columns_[c][row];
  }
}

int Segment::CompareRowPrefix(std::size_t row, const Value* key,
                              std::size_t len,
                              std::uint64_t* compares) const {
  if (compares != nullptr) ++*compares;
  for (std::size_t c = 0; c < len; ++c) {
    const Value& cell = columns_[c][row];
    if (cell < key[c]) return -1;
    if (key[c] < cell) return 1;
  }
  return 0;
}

Segment::RowRange Segment::EqualRange(const Value* key,
                                      std::size_t prefix_len,
                                      SegmentOpStats* stats) const {
  RowRange range;
  if (rows_ == 0 || prefix_len == 0) {
    range.begin = 0;
    range.end = prefix_len == 0 ? rows_ : 0;
    return range;
  }
  // Column-0 bounds make most misses free: sorted rows mean min/max of the
  // leading column bracket every stored prefix.
  if (key[0] < min_[0] || max_[0] < key[0]) {
    if (stats != nullptr) ++stats->skips;
    return range;
  }
  std::uint64_t* compares = stats != nullptr ? &stats->compares : nullptr;
  // lower bound: first row with row >= key-prefix
  std::size_t lo = 0, hi = rows_;
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (CompareRowPrefix(mid, key, prefix_len, compares) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  range.begin = lo;
  // upper bound: first row with row > key-prefix
  hi = rows_;
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (CompareRowPrefix(mid, key, prefix_len, compares) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  range.end = lo;
  return range;
}

bool Segment::Contains(const Tuple& tuple, SegmentOpStats* stats) const {
  if (rows_ == 0 || tuple.size() != arity_) return false;
  RowRange range = EqualRange(tuple.data(), arity_, stats);
  return !range.empty();
}

void Segment::FinalizeBounds() {
  min_.assign(arity_, Value());
  max_.assign(arity_, Value());
  if (rows_ == 0) return;
  for (std::size_t c = 0; c < arity_; ++c) {
    const std::vector<Value>& col = columns_[c];
    Value lo = col[0];
    Value hi = col[0];
    for (std::size_t r = 1; r < rows_; ++r) {
      if (col[r] < lo) lo = col[r];
      if (hi < col[r]) hi = col[r];
    }
    min_[c] = lo;
    max_[c] = hi;
  }
}

// ---------------------------------------------------------------------------
// SegmentInserter
// ---------------------------------------------------------------------------

SegmentPtr SegmentInserter::Seal(SegmentOpStats* stats) {
  auto segment = std::make_shared<Segment>();
  segment->arity_ = arity_;
  segment->columns_.resize(arity_);
  std::vector<Tuple> rows;
  rows.swap(pending_);
  CountedSort(&rows, stats);
  std::size_t out = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) {
      Count(stats, 1);
      if (rows[i] == rows[out - 1]) continue;
    }
    if (out != i) rows[out] = std::move(rows[i]);
    ++out;
  }
  rows.resize(out);
  segment->rows_ = rows.size();
  for (std::size_t c = 0; c < arity_; ++c) {
    std::vector<Value>& col = segment->columns_[c];
    col.reserve(rows.size());
    for (const Tuple& row : rows) col.push_back(row[c]);
  }
  segment->FinalizeBounds();
  if (stats != nullptr) {
    ++stats->seals;
    stats->sealed_rows += segment->rows_;
  }
  return segment;
}

SegmentPtr SegmentInserter::FromSorted(std::size_t arity,
                                       const std::set<Tuple>& rows,
                                       SegmentOpStats* stats) {
  auto segment = std::make_shared<Segment>();
  segment->arity_ = arity;
  segment->rows_ = rows.size();
  segment->columns_.resize(arity);
  for (std::size_t c = 0; c < arity; ++c) {
    segment->columns_[c].reserve(rows.size());
  }
  for (const Tuple& row : rows) {
    for (std::size_t c = 0; c < arity; ++c) {
      segment->columns_[c].push_back(row[c]);
    }
  }
  segment->FinalizeBounds();
  if (stats != nullptr) {
    ++stats->seals;
    stats->sealed_rows += segment->rows_;
  }
  return segment;
}

// ---------------------------------------------------------------------------
// SegmentMergeIterator / MergeSegments
// ---------------------------------------------------------------------------

SegmentMergeIterator::SegmentMergeIterator(std::vector<SegmentPtr> segments,
                                           SegmentOpStats* stats)
    : stats_(stats) {
  for (SegmentPtr& segment : segments) {
    if (segment != nullptr && !segment->empty()) {
      cursors_.push_back(Cursor{std::move(segment), 0});
    }
  }
  Materialize();
}

int SegmentMergeIterator::CompareCursors(const Cursor& a, const Cursor& b) {
  Count(stats_, 1);
  const Segment& sa = *a.segment;
  const Segment& sb = *b.segment;
  std::size_t arity = sa.arity();
  for (std::size_t c = 0; c < arity; ++c) {
    const Value& va = sa.at(a.row, c);
    const Value& vb = sb.at(b.row, c);
    if (va < vb) return -1;
    if (vb < va) return 1;
  }
  return 0;
}

void SegmentMergeIterator::Materialize() {
  // Linear scan over the (small) cursor list: find the minimum row, emit
  // it, and advance every cursor positioned on an equal row (dedup).
  current_ = nullptr;
  const Cursor* best = nullptr;
  for (const Cursor& cursor : cursors_) {
    if (cursor.row >= cursor.segment->rows()) continue;
    if (best == nullptr || CompareCursors(cursor, *best) < 0) {
      best = &cursor;
    }
  }
  if (best == nullptr) return;
  current_ = best;
  best->segment->CopyRow(best->row, &row_);
}

void SegmentMergeIterator::Advance() {
  if (current_ == nullptr) return;
  // Step past the emitted row (row_) in every cursor that carries it.
  // Compare against the materialized copy, not *current_ — the current
  // cursor itself advances during this loop.
  for (Cursor& cursor : cursors_) {
    if (cursor.row >= cursor.segment->rows()) continue;
    if (&cursor == current_) {
      ++cursor.row;
      continue;
    }
    Count(stats_, 1);
    if (cursor.segment->CompareRowPrefix(cursor.row, row_.data(),
                                         row_.size(), nullptr) == 0) {
      ++cursor.row;
    }
  }
  Materialize();
}

SegmentPtr MergeSegments(const std::vector<SegmentPtr>& segments,
                         SegmentOpStats* stats) {
  std::vector<SegmentPtr> live;
  for (const SegmentPtr& segment : segments) {
    if (segment != nullptr && !segment->empty()) live.push_back(segment);
  }
  if (live.empty()) {
    // Preserve arity when a (possibly empty) input exists.
    std::size_t arity = 0;
    for (const SegmentPtr& segment : segments) {
      if (segment != nullptr) arity = segment->arity();
    }
    auto empty = std::make_shared<Segment>();
    empty->arity_ = arity;
    empty->columns_.resize(arity);
    empty->FinalizeBounds();
    return empty;
  }
  if (live.size() == 1) return live[0];

  std::size_t arity = live[0]->arity();
  auto merged = std::make_shared<Segment>();
  merged->arity_ = arity;
  merged->columns_.resize(arity);
  SegmentMergeIterator it(live, stats);
  std::size_t rows = 0;
  for (; !it.Done(); it.Advance()) {
    const Tuple& row = it.Row();
    for (std::size_t c = 0; c < arity; ++c) {
      merged->columns_[c].push_back(row[c]);
    }
    ++rows;
  }
  merged->rows_ = rows;
  merged->FinalizeBounds();
  if (stats != nullptr) {
    ++stats->merges;
    stats->merged_rows += rows;
  }
  return merged;
}

// ---------------------------------------------------------------------------
// SegmentRangeCursor
// ---------------------------------------------------------------------------

SegmentRangeCursor::SegmentRangeCursor(const SegmentRanges& ranges)
    : ranges_(&ranges) {
  for (std::size_t i = 0; i < ranges.count; ++i) {
    pos_[i] = ranges.entries[i].begin;
  }
  Materialize();
}

void SegmentRangeCursor::Materialize() {
  // Linear min-pick across the live per-run cursors. Runs are disjoint, so
  // no dedup step is needed: exactly one cursor holds the global minimum.
  current_ = -1;
  for (std::size_t i = 0; i < ranges_->count; ++i) {
    const SegmentRanges::Entry& entry = ranges_->entries[i];
    if (pos_[i] >= entry.end) continue;
    if (current_ < 0) {
      current_ = static_cast<int>(i);
      continue;
    }
    const SegmentRanges::Entry& best =
        ranges_->entries[static_cast<std::size_t>(current_)];
    const std::size_t arity = entry.segment->arity();
    int cmp = 0;
    for (std::size_t c = 0; c < arity && cmp == 0; ++c) {
      const Value& va = entry.segment->at(pos_[i], c);
      const Value& vb =
          best.segment->at(pos_[static_cast<std::size_t>(current_)], c);
      if (va < vb) cmp = -1;
      else if (vb < va) cmp = 1;
    }
    if (cmp < 0) current_ = static_cast<int>(i);
  }
  if (current_ >= 0) {
    const SegmentRanges::Entry& best =
        ranges_->entries[static_cast<std::size_t>(current_)];
    best.segment->CopyRow(pos_[static_cast<std::size_t>(current_)], &row_);
  }
}

void SegmentRangeCursor::Advance() {
  if (current_ < 0) return;
  ++pos_[static_cast<std::size_t>(current_)];
  Materialize();
}

// ---------------------------------------------------------------------------
// Sorted-row helpers
// ---------------------------------------------------------------------------

void CountedSort(std::vector<Tuple>* rows, SegmentOpStats* stats) {
  if (stats == nullptr) {
    std::sort(rows->begin(), rows->end());
    return;
  }
  std::uint64_t* compares = &stats->compares;
  std::sort(rows->begin(), rows->end(),
            [compares](const Tuple& a, const Tuple& b) {
              ++*compares;
              return a < b;
            });
}

bool SortedContains(const std::vector<Tuple>& sorted, const Tuple& tuple,
                    SegmentOpStats* stats) {
  std::uint64_t* compares =
      stats != nullptr ? &stats->compares : nullptr;
  std::size_t lo = 0, hi = sorted.size();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (compares != nullptr) ++*compares;
    int cmp = CompareValues(sorted[mid].data(), tuple.data(),
                            std::min(sorted[mid].size(), tuple.size()));
    if (cmp == 0 && sorted[mid].size() != tuple.size()) {
      cmp = sorted[mid].size() < tuple.size() ? -1 : 1;
    }
    if (cmp < 0) {
      lo = mid + 1;
    } else if (cmp > 0) {
      hi = mid;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace mm2::instance
