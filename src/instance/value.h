#ifndef MM2_INSTANCE_VALUE_H_
#define MM2_INSTANCE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "instance/intern.h"
#include "model/type.h"

namespace mm2::instance {

// A runtime value in a database instance. Besides ordinary constants and
// SQL NULL, a value may be a *labeled null* — the marked placeholder that
// data exchange introduces for existentially quantified target values
// (paper Section 4: "labeled null values that are needed to compute the
// answers to queries but are not allowed to be returned as part of the
// answer"). Labeled nulls are identified by a numeric label; two labeled
// nulls are equal iff their labels are equal.
//
// Representation: 16 bytes, trivially copyable. Strings live in the
// process-wide StringPool; the value stores only the pooled id, so string
// equality is id equality and Tuple copies are memcpy. Every kind caches a
// 32-bit payload hash at construction (for strings, folded from the hash
// the pool computed at intern time), so Hash() — and through it TupleHash —
// never re-walks a payload.
class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,         // plain SQL NULL (no identity)
    kInt64,
    kDouble,
    kString,
    kBool,
    kDate,         // days since epoch
    kLabeledNull,  // existential placeholder N<label>
  };

  Value() : kind_(Kind::kNull), hash_(0), int_(0) {}

  static Value Null();
  static Value Int64(std::int64_t v);
  static Value Double(double v);
  static Value String(std::string_view v);
  // A string already interned by the caller (batch loaders intern once,
  // construct many).
  static Value InternedString(StringPool::StringId id);
  static Value Bool(bool v);
  static Value Date(std::int64_t days);
  static Value LabeledNull(std::int64_t label);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_labeled_null() const { return kind_ == Kind::kLabeledNull; }
  // Either kind of null: plain or labeled.
  bool is_any_null() const { return is_null() || is_labeled_null(); }
  bool is_constant() const { return !is_any_null(); }

  std::int64_t int64() const { return int_; }
  double dbl() const { return double_; }
  // The pooled string; stable reference for the life of the process.
  const std::string& str() const {
    return StringPool::Global().Get(string_id());
  }
  StringPool::StringId string_id() const {
    return static_cast<StringPool::StringId>(int_);
  }
  bool boolean() const { return int_ != 0; }
  std::int64_t date() const { return int_; }
  std::int64_t label() const { return int_; }

  // Total order across kinds (kind first, then payload); gives instances a
  // deterministic iteration order. String order resolves through the pool,
  // so it is the same lexicographic order the inline representation had.
  bool operator==(const Value& other) const {
    if (kind_ != other.kind_) return false;
    if (kind_ == Kind::kDouble) return double_ == other.double_;
    return int_ == other.int_;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  // Folds the cached payload hash with the kind; no branches, no memory.
  std::size_t Hash() const {
    std::uint64_t h =
        (static_cast<std::uint64_t>(static_cast<std::uint8_t>(kind_)) << 32) |
        hash_;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return static_cast<std::size_t>(h);
  }

  // The raw cached 32-bit payload hash (test/bench hook).
  std::uint32_t cached_hash() const { return hash_; }

  // Display form: 42, 3.5, "abc", true, date:19000, N17, NULL.
  std::string ToString() const;

 private:
  static std::uint32_t MixInt(std::uint64_t v) {
    v *= 0x9e3779b97f4a7c15ULL;
    return static_cast<std::uint32_t>(v >> 32);
  }

  Kind kind_;
  std::uint32_t hash_;  // cached payload hash (equal payloads hash equal)
  union {
    std::int64_t int_;  // int/bool/date/label payload; string: pool id
    double double_;
  };
};

static_assert(sizeof(Value) == 16, "Value must stay a compact 16 bytes");
static_assert(std::is_trivially_copyable_v<Value>,
              "Tuple copies must be memcpy-able");

// A tuple is a fixed-arity row of values.
using Tuple = std::vector<Value>;

std::string TupleToString(const Tuple& tuple);

struct TupleHash {
  std::size_t operator()(const Tuple& tuple) const;
};

}  // namespace mm2::instance

#endif  // MM2_INSTANCE_VALUE_H_
