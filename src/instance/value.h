#ifndef MM2_INSTANCE_VALUE_H_
#define MM2_INSTANCE_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/type.h"

namespace mm2::instance {

// A runtime value in a database instance. Besides ordinary constants and
// SQL NULL, a value may be a *labeled null* — the marked placeholder that
// data exchange introduces for existentially quantified target values
// (paper Section 4: "labeled null values that are needed to compute the
// answers to queries but are not allowed to be returned as part of the
// answer"). Labeled nulls are identified by a numeric label; two labeled
// nulls are equal iff their labels are equal.
class Value {
 public:
  enum class Kind {
    kNull,         // plain SQL NULL (no identity)
    kInt64,
    kDouble,
    kString,
    kBool,
    kDate,         // days since epoch
    kLabeledNull,  // existential placeholder N<label>
  };

  Value() : kind_(Kind::kNull) {}

  static Value Null();
  static Value Int64(std::int64_t v);
  static Value Double(double v);
  static Value String(std::string v);
  static Value Bool(bool v);
  static Value Date(std::int64_t days);
  static Value LabeledNull(std::int64_t label);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_labeled_null() const { return kind_ == Kind::kLabeledNull; }
  // Either kind of null: plain or labeled.
  bool is_any_null() const { return is_null() || is_labeled_null(); }
  bool is_constant() const { return !is_any_null(); }

  std::int64_t int64() const { return int_; }
  double dbl() const { return double_; }
  const std::string& str() const { return string_; }
  bool boolean() const { return int_ != 0; }
  std::int64_t date() const { return int_; }
  std::int64_t label() const { return int_; }

  // Total order across kinds (kind first, then payload); gives instances a
  // deterministic iteration order.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  std::size_t Hash() const;

  // Display form: 42, 3.5, "abc", true, date:19000, N17, NULL.
  std::string ToString() const;

 private:
  Kind kind_;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

// A tuple is a fixed-arity row of values.
using Tuple = std::vector<Value>;

std::string TupleToString(const Tuple& tuple);

struct TupleHash {
  std::size_t operator()(const Tuple& tuple) const;
};

}  // namespace mm2::instance

#endif  // MM2_INSTANCE_VALUE_H_
