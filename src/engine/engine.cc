#include "engine/engine.h"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <utility>

#include "analysis/analysis.h"
#include "chase/chase.h"
#include "common/strings.h"
#include "obs/profile.h"
#include "transgen/relational.h"

namespace mm2::engine {

Status Repository::PutSchema(model::Schema schema) {
  MM2_RETURN_IF_ERROR(schema.Validate());
  if (schema.name().empty()) {
    return Status::InvalidArgument("schema needs a name");
  }
  ++schema_versions_[schema.name()];
  schemas_.insert_or_assign(schema.name(), std::move(schema));
  return Status::OK();
}

Status Repository::PutMapping(logic::Mapping mapping) {
  MM2_RETURN_IF_ERROR(mapping.Validate());
  if (mapping.name().empty()) {
    return Status::InvalidArgument("mapping needs a name");
  }
  ++mapping_versions_[mapping.name()];
  mappings_.insert_or_assign(mapping.name(), std::move(mapping));
  return Status::OK();
}

Status Repository::PutInstance(std::string name, instance::Instance db) {
  if (name.empty()) return Status::InvalidArgument("instance needs a name");
  instances_.insert_or_assign(std::move(name), std::move(db));
  return Status::OK();
}

Result<model::Schema> Repository::GetSchema(const std::string& name) const {
  auto it = schemas_.find(name);
  if (it == schemas_.end()) {
    return Status::NotFound("no schema '" + name + "' in repository");
  }
  return it->second;
}

Result<logic::Mapping> Repository::GetMapping(const std::string& name) const {
  auto it = mappings_.find(name);
  if (it == mappings_.end()) {
    return Status::NotFound("no mapping '" + name + "' in repository");
  }
  return it->second;
}

Result<instance::Instance> Repository::GetInstance(
    const std::string& name) const {
  auto it = instances_.find(name);
  if (it == instances_.end()) {
    return Status::NotFound("no instance '" + name + "' in repository");
  }
  return it->second;
}

bool Repository::HasSchema(const std::string& name) const {
  return schemas_.count(name) > 0;
}
bool Repository::HasMapping(const std::string& name) const {
  return mappings_.count(name) > 0;
}
bool Repository::HasInstance(const std::string& name) const {
  return instances_.count(name) > 0;
}

std::size_t Repository::SchemaVersion(const std::string& name) const {
  auto it = schema_versions_.find(name);
  return it == schema_versions_.end() ? 0 : it->second;
}
std::size_t Repository::MappingVersion(const std::string& name) const {
  auto it = mapping_versions_.find(name);
  return it == mapping_versions_.end() ? 0 : it->second;
}

std::vector<std::string> Repository::SchemaNames() const {
  std::vector<std::string> out;
  for (const auto& [name, schema] : schemas_) out.push_back(name);
  return out;
}
std::vector<std::string> Repository::MappingNames() const {
  std::vector<std::string> out;
  for (const auto& [name, mapping] : mappings_) out.push_back(name);
  return out;
}
std::vector<std::string> Repository::InstanceNames() const {
  std::vector<std::string> out;
  for (const auto& [name, db] : instances_) out.push_back(name);
  return out;
}

namespace {

std::size_t MappingClauses(const logic::Mapping& m) {
  return m.is_second_order() ? m.so_tgd().clauses.size() : m.tgds().size();
}

}  // namespace

Result<match::MatchResult> Engine::Match(const std::string& source_schema,
                                         const std::string& target_schema,
                                         const match::MatchOptions& options) {
  obs::OpSpan op(&observability(), "match");
  Result<match::MatchResult> result =
      [&]() -> Result<match::MatchResult> {
    MM2_ASSIGN_OR_RETURN(model::Schema source, repo_.GetSchema(source_schema));
    MM2_ASSIGN_OR_RETURN(model::Schema target, repo_.GetSchema(target_schema));
    op.SetAttribute("source_relations", source.relations().size());
    op.SetAttribute("target_relations", target.relations().size());
    match::SchemaMatcher matcher(options);
    return matcher.Match(source, target);
  }();
  op.Finish(result.ok() ? Status::OK() : result.status());
  return result;
}

Status Engine::Compose(const std::string& out, const std::string& m12,
                       const std::string& m23) {
  obs::OpSpan op(&observability(), "compose");
  return op.Finish([&]() -> Status {
    MM2_ASSIGN_OR_RETURN(logic::Mapping first, repo_.GetMapping(m12));
    MM2_ASSIGN_OR_RETURN(logic::Mapping second, repo_.GetMapping(m23));
    op.SetAttribute("m12_clauses", MappingClauses(first));
    op.SetAttribute("m23_clauses", MappingClauses(second));
    if (first.target().name() != second.source().name()) {
      return Status::InvalidArgument(
          "compose: mid schemas disagree ('" + first.target().name() +
          "' vs '" + second.source().name() + "')");
    }
    compose::ComposeOptions options;
    options.obs = &observability();
    MM2_ASSIGN_OR_RETURN(logic::Mapping composed,
                         compose::Compose(first, second, options));
    composed.set_name(out);
    return repo_.PutMapping(std::move(composed));
  }());
}

Status Engine::Invert(const std::string& out, const std::string& mapping) {
  obs::OpSpan op(&observability(), "invert");
  return op.Finish([&]() -> Status {
    MM2_ASSIGN_OR_RETURN(logic::Mapping m, repo_.GetMapping(mapping));
    op.SetAttribute("clauses", MappingClauses(m));
    MM2_ASSIGN_OR_RETURN(logic::Mapping inverted, inverse::Invert(m));
    inverted.set_name(out);
    return repo_.PutMapping(std::move(inverted));
  }());
}

Status Engine::ComputeInverse(const std::string& out,
                              const std::string& mapping) {
  obs::OpSpan op(&observability(), "inverse");
  return op.Finish([&]() -> Status {
    MM2_ASSIGN_OR_RETURN(logic::Mapping m, repo_.GetMapping(mapping));
    op.SetAttribute("clauses", MappingClauses(m));
    MM2_ASSIGN_OR_RETURN(inverse::InverseResult result,
                         inverse::ComputeInverse(m));
    result.inverse.set_name(out);
    return repo_.PutMapping(std::move(result.inverse));
  }());
}

Status Engine::Extract(const std::string& out_schema,
                       const std::string& out_mapping,
                       const std::string& mapping) {
  obs::OpSpan op(&observability(), "extract");
  return op.Finish([&]() -> Status {
    MM2_ASSIGN_OR_RETURN(logic::Mapping m, repo_.GetMapping(mapping));
    op.SetAttribute("clauses", MappingClauses(m));
    MM2_ASSIGN_OR_RETURN(diff::SubSchemaResult result, diff::Extract(m));
    result.schema.set_name(out_schema);
    // Re-point the projection mapping's target at the renamed schema.
    logic::Mapping renamed = logic::Mapping::FromTgds(
        out_mapping, result.mapping.source(), result.schema,
        result.mapping.tgds());
    MM2_RETURN_IF_ERROR(repo_.PutSchema(std::move(result.schema)));
    return repo_.PutMapping(std::move(renamed));
  }());
}

Status Engine::Diff(const std::string& out_schema,
                    const std::string& out_mapping,
                    const std::string& mapping) {
  obs::OpSpan op(&observability(), "diff");
  return op.Finish([&]() -> Status {
    MM2_ASSIGN_OR_RETURN(logic::Mapping m, repo_.GetMapping(mapping));
    op.SetAttribute("clauses", MappingClauses(m));
    MM2_ASSIGN_OR_RETURN(diff::SubSchemaResult result, diff::Diff(m));
    result.schema.set_name(out_schema);
    logic::Mapping renamed = logic::Mapping::FromTgds(
        out_mapping, result.mapping.source(), result.schema,
        result.mapping.tgds());
    MM2_RETURN_IF_ERROR(repo_.PutSchema(std::move(result.schema)));
    return repo_.PutMapping(std::move(renamed));
  }());
}

Status Engine::Merge(const std::string& out_schema,
                     const std::string& out_to_left,
                     const std::string& out_to_right, const std::string& left,
                     const std::string& right,
                     const std::vector<match::Correspondence>& corrs) {
  obs::OpSpan op(&observability(), "merge");
  op.SetAttribute("correspondences", corrs.size());
  return op.Finish([&]() -> Status {
    MM2_ASSIGN_OR_RETURN(model::Schema left_schema, repo_.GetSchema(left));
    MM2_ASSIGN_OR_RETURN(model::Schema right_schema, repo_.GetSchema(right));
    op.SetAttribute("left_relations", left_schema.relations().size());
    op.SetAttribute("right_relations", right_schema.relations().size());
    merge::MergeOptions options;
    options.merged_name = out_schema;
    MM2_ASSIGN_OR_RETURN(merge::MergeResult result,
                         merge::Merge(left_schema, right_schema, corrs,
                                      options));
    result.to_left.set_name(out_to_left);
    result.to_right.set_name(out_to_right);
    MM2_RETURN_IF_ERROR(repo_.PutSchema(std::move(result.merged)));
    MM2_RETURN_IF_ERROR(repo_.PutMapping(std::move(result.to_left)));
    return repo_.PutMapping(std::move(result.to_right));
  }());
}

Status Engine::ModelGen(const std::string& out_schema,
                        const std::string& out_mapping,
                        const std::string& er_schema,
                        modelgen::InheritanceStrategy strategy) {
  obs::OpSpan op(&observability(), "modelgen");
  return op.Finish([&]() -> Status {
    MM2_ASSIGN_OR_RETURN(model::Schema er, repo_.GetSchema(er_schema));
    op.SetAttribute("er_relations", er.relations().size());
    MM2_ASSIGN_OR_RETURN(modelgen::ModelGenResult result,
                         modelgen::ErToRelational(er, strategy));
    result.relational.set_name(out_schema);
    logic::Mapping renamed = logic::Mapping::FromTgds(
        out_mapping, result.mapping.source(), result.relational,
        result.mapping.tgds());
    MM2_RETURN_IF_ERROR(repo_.PutSchema(std::move(result.relational)));
    return repo_.PutMapping(std::move(renamed));
  }());
}

Status Engine::Exchange(const std::string& out_instance,
                        const std::string& mapping,
                        const std::string& source_instance) {
  obs::OpSpan op(&observability(), "exchange");
  return op.Finish([&]() -> Status {
    MM2_ASSIGN_OR_RETURN(logic::Mapping m, repo_.GetMapping(mapping));
    MM2_ASSIGN_OR_RETURN(instance::Instance source,
                         repo_.GetInstance(source_instance));
    op.SetAttribute("clauses", MappingClauses(m));
    op.SetAttribute("source_tuples", source.TotalTuples());
    runtime::ExchangeOptions options;
    options.threads = threads_;
    options.storage = storage_;
    // Provenance is always on for engine-level exchanges: it is what the
    // `why` command reads back, and breach diagnostics lean on it too.
    options.track_provenance = true;
    // So is mapping analysis: stratum labels feed `explain` and the
    // heartbeat events, and foresight auto-arms a tuple budget when the
    // classifier flags the mapping as potentially non-terminating. The
    // analysis pass is static (no instance scan beyond the active-domain
    // count) and engine exchanges are interactive, not benchmarked.
    options.stratified = true;
    options.wall_budget_us = budget_wall_us_;
    options.tuple_budget = budget_tuples_;
    options.rss_budget_kb = budget_rss_kb_;
    options.obs = &observability();
    // Exchanges run through an incremental session so a later `maintain`
    // can propagate source deltas without re-chasing; a one-shot exchange
    // pays only the session bookkeeping (provenance was always on here).
    MM2_ASSIGN_OR_RETURN(
        runtime::ExchangeSession session,
        runtime::BeginExchangeSession(m, std::move(source), options));
    op.SetAttribute("target_tuples", session.target.TotalTuples());
    last_exchange_ = chase::ChaseResult{};
    last_exchange_.stats = session.last_stats;
    last_exchange_.provenance = session.provenance;
    last_exchange_.breach = session.breach;
    has_last_exchange_ = true;
    // A budget stop still registers the partial instance — the telemetry
    // and the data it did derive are the whole point of a graceful stop —
    // but the command itself reports the breach.
    MM2_RETURN_IF_ERROR(repo_.PutInstance(out_instance, session.target));
    const bool breached = session.breach.has_value();
    const std::string diagnostic =
        breached ? session.breach->diagnostic : std::string();
    session_out_[mapping] = out_instance;
    sessions_.insert_or_assign(mapping, std::move(session));
    if (breached) {
      return Status::ResourceExhausted("exchange into '" + out_instance +
                                       "' stopped early: " + diagnostic);
    }
    return Status::OK();
  }());
}

Status Engine::BatchLoad(const std::string& out_instance,
                         const std::string& mapping,
                         const std::string& source_instance) {
  obs::OpSpan op(&observability(), "batchload");
  return op.Finish([&]() -> Status {
    MM2_ASSIGN_OR_RETURN(logic::Mapping m, repo_.GetMapping(mapping));
    MM2_ASSIGN_OR_RETURN(instance::Instance source,
                         repo_.GetInstance(source_instance));
    op.SetAttribute("clauses", MappingClauses(m));
    op.SetAttribute("source_tuples", source.TotalTuples());
    MM2_ASSIGN_OR_RETURN(transgen::CompiledRelationalMapping compiled,
                         transgen::CompileRelationalMapping(m));
    MM2_ASSIGN_OR_RETURN(instance::Instance target,
                         transgen::ExecuteCompiledMapping(compiled, m, source));
    op.SetAttribute("target_tuples", target.TotalTuples());
    return repo_.PutInstance(out_instance, std::move(target));
  }());
}

Status Engine::OoGen(const std::string& out_schema,
                     const std::string& out_mapping,
                     const std::string& relational_schema) {
  obs::OpSpan op(&observability(), "oogen");
  return op.Finish([&]() -> Status {
    MM2_ASSIGN_OR_RETURN(model::Schema relational,
                         repo_.GetSchema(relational_schema));
    op.SetAttribute("relations", relational.relations().size());
    MM2_ASSIGN_OR_RETURN(modelgen::OoGenResult result,
                         modelgen::RelationalToOo(relational));
    result.oo.set_name(out_schema);
    logic::Mapping renamed = logic::Mapping::FromTgds(
        out_mapping, result.oo, result.mapping.target(),
        result.mapping.tgds());
    MM2_RETURN_IF_ERROR(repo_.PutSchema(std::move(result.oo)));
    return repo_.PutMapping(std::move(renamed));
  }());
}

Status Engine::NestedGen(const std::string& out_schema,
                         const std::string& out_mapping,
                         const std::string& relational_schema) {
  obs::OpSpan op(&observability(), "nestedgen");
  return op.Finish([&]() -> Status {
    MM2_ASSIGN_OR_RETURN(model::Schema relational,
                         repo_.GetSchema(relational_schema));
    op.SetAttribute("relations", relational.relations().size());
    MM2_ASSIGN_OR_RETURN(modelgen::NestedGenResult result,
                         modelgen::RelationalToNested(relational));
    result.nested.set_name(out_schema);
    logic::Mapping renamed = logic::Mapping::FromTgds(
        out_mapping, result.mapping.source(), result.nested,
        result.mapping.tgds());
    MM2_RETURN_IF_ERROR(repo_.PutSchema(std::move(result.nested)));
    return repo_.PutMapping(std::move(renamed));
  }());
}

namespace {

Result<std::vector<match::Correspondence>> ParseCorrespondences(
    const std::vector<std::string>& tokens, std::size_t first) {
  std::vector<match::Correspondence> corrs;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected L.a=R.b, got '" + tokens[i] +
                                     "'");
    }
    corrs.push_back(
        {model::ElementRef::Parse(tokens[i].substr(0, eq)),
         model::ElementRef::Parse(tokens[i].substr(eq + 1)), 1.0});
  }
  return corrs;
}

Result<modelgen::InheritanceStrategy> ParseStrategy(const std::string& word) {
  if (word == "tph") return modelgen::InheritanceStrategy::kSingleTable;
  if (word == "tpt") return modelgen::InheritanceStrategy::kTablePerType;
  if (word == "tpc") return modelgen::InheritanceStrategy::kTablePerConcrete;
  return Status::InvalidArgument("unknown inheritance strategy '" + word +
                                 "' (want tph|tpt|tpc)");
}

// One value literal for the `why` command, mirroring the instance text
// syntax: 42, 4.5, "s" (with \" and \\ escapes), #t/#f, null, N<label>,
// d:<days>.
Result<instance::Value> ParseValueLiteral(const std::string& token) {
  if (token.empty()) {
    return Status::InvalidArgument("empty value literal");
  }
  if (token == "null") return instance::Value::Null();
  if (token == "#t") return instance::Value::Bool(true);
  if (token == "#f") return instance::Value::Bool(false);
  if (token.front() == '"') {
    if (token.size() < 2 || token.back() != '"') {
      return Status::InvalidArgument("unterminated string literal: " + token);
    }
    std::string s;
    for (std::size_t i = 1; i + 1 < token.size(); ++i) {
      if (token[i] == '\\' && i + 2 < token.size()) ++i;
      s += token[i];
    }
    return instance::Value::String(s);
  }
  char* end = nullptr;
  if (token.size() > 1 && token.front() == 'N') {
    long long label = std::strtoll(token.c_str() + 1, &end, 10);
    if (end != nullptr && *end == '\0') {
      return instance::Value::LabeledNull(label);
    }
  }
  if (token.rfind("d:", 0) == 0) {
    long long days = std::strtoll(token.c_str() + 2, &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad date literal: " + token);
    }
    return instance::Value::Date(days);
  }
  long long i = std::strtoll(token.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && end != token.c_str()) {
    return instance::Value::Int64(i);
  }
  double d = std::strtod(token.c_str(), &end);
  if (end != nullptr && *end == '\0' && end != token.c_str()) {
    return instance::Value::Double(d);
  }
  return Status::InvalidArgument("cannot parse value literal '" + token +
                                 "' (want 42, 4.5, \"s\", #t, null, N7, or "
                                 "d:123)");
}

// Parses `Rel(v1,v2,...)` into a Fact. Commas inside quoted strings are
// respected; whitespace around arguments is trimmed (the script tokenizer
// splits on spaces, so callers re-join the tail tokens first).
Result<chase::Fact> ParseFactLiteral(const std::string& text) {
  std::size_t open = text.find('(');
  if (open == std::string::npos || text.empty() || text.back() != ')') {
    return Status::InvalidArgument("expected Rel(v1,v2,...), got '" + text +
                                   "'");
  }
  chase::Fact fact;
  fact.relation = text.substr(0, open);
  if (fact.relation.empty()) {
    return Status::InvalidArgument("fact needs a relation name: " + text);
  }
  std::string body = text.substr(open + 1, text.size() - open - 2);
  std::vector<std::string> args;
  std::string current;
  bool in_string = false;
  for (std::size_t i = 0; i < body.size(); ++i) {
    char c = body[i];
    if (in_string) {
      current += c;
      if (c == '\\' && i + 1 < body.size()) {
        current += body[++i];
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      current += c;
      in_string = true;
    } else if (c == ',') {
      args.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty() || !args.empty()) args.push_back(std::move(current));
  for (std::string& arg : args) {
    std::size_t b = arg.find_first_not_of(" \t");
    std::size_t e = arg.find_last_not_of(" \t");
    if (b == std::string::npos) {
      return Status::InvalidArgument("empty argument in fact: " + text);
    }
    MM2_ASSIGN_OR_RETURN(instance::Value v,
                         ParseValueLiteral(arg.substr(b, e - b + 1)));
    fact.tuple.push_back(std::move(v));
  }
  return fact;
}

}  // namespace

Status Engine::ApplyDeltaFact(const std::string& literal) {
  if (literal.size() < 2 || (literal[0] != '+' && literal[0] != '-')) {
    return Status::InvalidArgument(
        "apply wants +Rel(...) or -Rel(...), got '" + literal + "'");
  }
  MM2_ASSIGN_OR_RETURN(chase::Fact fact, ParseFactLiteral(literal.substr(1)));
  instance::Instance& side =
      literal[0] == '+' ? pending_delta_.inserts : pending_delta_.deletes;
  if (!side.HasRelation(fact.relation)) {
    side.DeclareRelation(fact.relation, fact.tuple.size());
  }
  // Checked insert so an arity clash inside the queue fails here, not
  // deep inside the maintain.
  return side.Insert(fact.relation, std::move(fact.tuple));
}

Result<runtime::Delta> Engine::Maintain(const std::string& mapping) {
  obs::OpSpan op(&observability(), "maintain");
  auto it = sessions_.find(mapping);
  if (it == sessions_.end()) {
    return Status::NotFound("no incremental session for mapping '" + mapping +
                            "' (run `exchange` with it first)");
  }
  runtime::ExchangeSession& session = it->second;
  // The session replays the engine's current knobs, not the ones in force
  // when the exchange opened it.
  session.options.threads = threads_;
  session.options.storage = storage_;
  session.options.wall_budget_us = budget_wall_us_;
  session.options.tuple_budget = budget_tuples_;
  session.options.rss_budget_kb = budget_rss_kb_;
  session.options.obs = &observability();
  op.SetAttribute("delta_size", pending_delta_.Size());
  runtime::Delta delta = std::move(pending_delta_);
  pending_delta_ = runtime::Delta{};  // consumed either way
  Result<runtime::Delta> result = [&]() -> Result<runtime::Delta> {
    MM2_ASSIGN_OR_RETURN(runtime::Delta target_delta,
                         runtime::MaintainExchange(session, delta));
    op.SetAttribute("target_inserts", target_delta.inserts.TotalTuples());
    op.SetAttribute("target_deletes", target_delta.deletes.TotalTuples());
    // Refresh what `why` and the repository serve.
    last_exchange_ = chase::ChaseResult{};
    last_exchange_.stats = session.last_stats;
    last_exchange_.provenance = session.provenance;
    last_exchange_.breach = session.breach;
    has_last_exchange_ = true;
    MM2_RETURN_IF_ERROR(
        repo_.PutInstance(session_out_[mapping], session.target));
    if (session.breach.has_value()) {
      return Status::ResourceExhausted("maintain of '" + mapping +
                                       "' stopped early: " +
                                       session.breach->diagnostic);
    }
    return target_delta;
  }();
  op.Finish(result.ok() ? Status::OK() : result.status());
  return result;
}

Result<std::string> Engine::EqCheck(const std::string& a,
                                    const std::string& b) {
  MM2_ASSIGN_OR_RETURN(instance::Instance left, repo_.GetInstance(a));
  MM2_ASSIGN_OR_RETURN(instance::Instance right, repo_.GetInstance(b));
  if (left.Equals(right)) return std::string("equal");
  if (instance::InstanceEqualsUpToNulls(left, right)) {
    return std::string("equal-up-to-nulls");
  }
  return std::string("different");
}

Result<std::vector<std::string>> Engine::RunScript(const std::string& script) {
  Result<std::vector<std::string>> result = RunScriptImpl(script);
  if (!result.ok()) {
    // Attach the flight recorder to the failure, unless a lower layer (the
    // chase's max_rounds error, a breach diagnostic) already included it.
    const std::string& msg = result.status().message();
    if (msg.find("-- flight recorder") == std::string::npos) {
      std::string dump = observability().events.DumpRecent();
      if (!dump.empty()) {
        return Status(result.status().code(), msg + "\n" + dump);
      }
    }
  }
  return result;
}

Result<std::vector<std::string>> Engine::RunScriptImpl(
    const std::string& script) {
  std::vector<std::string> log;
  // `trace <file>` arms this guard; the Chrome JSON is written when the
  // script finishes — including early error returns — so a trace of a
  // failing evolution scenario is never lost.
  struct TraceFlusher {
    obs::Context* ctx;
    std::string file;
    ~TraceFlusher() {
      if (file.empty()) return;
      ctx->tracer.WriteChromeJson(file);  // best effort on unwind
      ctx->tracer.Disable();
    }
  } trace_flusher{&observability(), ""};
  std::istringstream stream(script);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    // Tokenize on whitespace.
    std::istringstream words(line);
    std::vector<std::string> tokens;
    std::string word;
    while (words >> word) tokens.push_back(word);
    if (tokens.empty() || tokens[0][0] == '#') continue;

    auto fail = [&](const std::string& message) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + message);
    };
    auto need = [&](std::size_t count) -> Status {
      if (tokens.size() < count + 1) {
        return fail(tokens[0] + " needs " + std::to_string(count) +
                    " arguments");
      }
      return Status::OK();
    };

    const std::string& op = tokens[0];
    if (op == "compose") {
      MM2_RETURN_IF_ERROR(need(3));
      MM2_RETURN_IF_ERROR(Compose(tokens[1], tokens[2], tokens[3]));
      log.push_back("composed " + tokens[2] + " ; " + tokens[3] + " -> " +
                    tokens[1]);
    } else if (op == "invert") {
      MM2_RETURN_IF_ERROR(need(2));
      MM2_RETURN_IF_ERROR(Invert(tokens[1], tokens[2]));
      log.push_back("inverted " + tokens[2] + " -> " + tokens[1]);
    } else if (op == "inverse") {
      MM2_RETURN_IF_ERROR(need(2));
      MM2_RETURN_IF_ERROR(ComputeInverse(tokens[1], tokens[2]));
      log.push_back("inverse of " + tokens[2] + " -> " + tokens[1]);
    } else if (op == "extract") {
      MM2_RETURN_IF_ERROR(need(3));
      MM2_RETURN_IF_ERROR(Extract(tokens[1], tokens[2], tokens[3]));
      log.push_back("extracted " + tokens[3] + " -> " + tokens[1]);
    } else if (op == "diff") {
      MM2_RETURN_IF_ERROR(need(3));
      MM2_RETURN_IF_ERROR(Diff(tokens[1], tokens[2], tokens[3]));
      log.push_back("diffed " + tokens[3] + " -> " + tokens[1]);
    } else if (op == "merge") {
      MM2_RETURN_IF_ERROR(need(5));
      MM2_ASSIGN_OR_RETURN(std::vector<match::Correspondence> corrs,
                           ParseCorrespondences(tokens, 6));
      MM2_RETURN_IF_ERROR(Merge(tokens[1], tokens[2], tokens[3], tokens[4],
                                tokens[5], corrs));
      log.push_back("merged " + tokens[4] + " + " + tokens[5] + " -> " +
                    tokens[1]);
    } else if (op == "modelgen") {
      MM2_RETURN_IF_ERROR(need(4));
      MM2_ASSIGN_OR_RETURN(modelgen::InheritanceStrategy strategy,
                           ParseStrategy(tokens[4]));
      MM2_RETURN_IF_ERROR(
          ModelGen(tokens[1], tokens[2], tokens[3], strategy));
      log.push_back("modelgen " + tokens[3] + " -> " + tokens[1]);
    } else if (op == "exchange") {
      MM2_RETURN_IF_ERROR(need(3));
      MM2_RETURN_IF_ERROR(Exchange(tokens[1], tokens[2], tokens[3]));
      log.push_back("exchanged " + tokens[3] + " via " + tokens[2] + " -> " +
                    tokens[1]);
    } else if (op == "batchload") {
      MM2_RETURN_IF_ERROR(need(3));
      MM2_RETURN_IF_ERROR(BatchLoad(tokens[1], tokens[2], tokens[3]));
      log.push_back("batch-loaded " + tokens[3] + " via " + tokens[2] +
                    " -> " + tokens[1]);
    } else if (op == "oogen") {
      MM2_RETURN_IF_ERROR(need(3));
      MM2_RETURN_IF_ERROR(OoGen(tokens[1], tokens[2], tokens[3]));
      log.push_back("oo wrapper for " + tokens[3] + " -> " + tokens[1]);
    } else if (op == "nestedgen") {
      MM2_RETURN_IF_ERROR(need(3));
      MM2_RETURN_IF_ERROR(NestedGen(tokens[1], tokens[2], tokens[3]));
      log.push_back("nested schema for " + tokens[3] + " -> " + tokens[1]);
    } else if (op == "match") {
      MM2_RETURN_IF_ERROR(need(2));
      MM2_ASSIGN_OR_RETURN(match::MatchResult result,
                           Match(tokens[1], tokens[2]));
      log.push_back("matched " + tokens[1] + " ~ " + tokens[2] + ": " +
                    std::to_string(result.best.size()) + " correspondences");
    } else if (op == "threads") {
      MM2_RETURN_IF_ERROR(need(1));
      char* end = nullptr;
      long n = std::strtol(tokens[1].c_str(), &end, 10);
      if (end == tokens[1].c_str() || *end != '\0' || n < 0) {
        return fail("threads takes a non-negative integer (0 = MM2_THREADS)");
      }
      SetThreads(static_cast<std::size_t>(n));
      log.push_back("threads " + tokens[1]);
    } else if (op == "storage") {
      MM2_RETURN_IF_ERROR(need(1));
      if (tokens[1] == "indexed") {
        SetStorageMode(instance::StorageMode::kIndexed);
      } else if (tokens[1] == "segmented") {
        SetStorageMode(instance::StorageMode::kSegmented);
      } else {
        return fail("storage takes 'indexed' or 'segmented'");
      }
      log.push_back("storage " + tokens[1]);
    } else if (op == "stats") {
      if (tokens.size() > 1 && tokens[1] != "--json") {
        return fail("stats takes no argument or --json");
      }
      chase::MirrorValueStats(&observability());
      observability().metrics.GetGauge("mem.peak_rss_kb").Set(
          static_cast<std::int64_t>(obs::PeakRssKb()));
      obs::MetricsSnapshot snapshot = observability().metrics.Snapshot();
      if (tokens.size() > 1) {
        log.push_back(snapshot.ToJson());
      } else {
        std::vector<std::string> lines = snapshot.Lines();
        log.push_back("stats: " + std::to_string(lines.size()) + " metrics");
        for (std::string& metric_line : lines) {
          log.push_back("  " + std::move(metric_line));
        }
      }
    } else if (op == "explain" && tokens.size() > 1 &&
               tokens[1] == "mapping") {
      // explain mapping <name> [--json|--dot]: static introspection of a
      // stored mapping — dependency/position graphs, strata, termination
      // class, predicted bounds — independent of any chase having run.
      MM2_RETURN_IF_ERROR(need(2));
      std::string format = tokens.size() > 3 ? tokens[3] : "";
      if (tokens.size() > 4 ||
          (!format.empty() && format != "--json" && format != "--dot")) {
        return fail("explain mapping wants <mapping> [--json|--dot]");
      }
      MM2_ASSIGN_OR_RETURN(logic::Mapping m, repo_.GetMapping(tokens[2]));
      analysis::MappingAnalysis analyzed = analysis::AnalyzeMapping(m);
      if (format == "--json") {
        log.push_back(analyzed.ToJson());
      } else if (format == "--dot") {
        log.push_back(analyzed.ToDot());
      } else {
        log.push_back("explain mapping " + tokens[2] + ":");
        std::istringstream text(analyzed.ToText());
        std::string text_line;
        while (std::getline(text, text_line)) {
          log.push_back("  " + text_line);
        }
      }
    } else if (op == "explain") {
      if (tokens.size() > 1 && tokens[1] != "--json") {
        return fail("explain takes no argument, --json, or mapping <name>");
      }
      chase::MirrorValueStats(&observability());
      observability().metrics.GetGauge("mem.peak_rss_kb").Set(
          static_cast<std::int64_t>(obs::PeakRssKb()));
      obs::ProfileReport report = obs::Profiler::Build(observability());
      if (tokens.size() > 1) {
        log.push_back(report.ToJson());
      } else {
        log.push_back("explain: " + std::to_string(report.operators.size()) +
                      " operators, " + std::to_string(report.rules.size()) +
                      " chase rules, " + std::to_string(report.phases.size()) +
                      " phases");
        for (std::string& report_line : report.Lines()) {
          log.push_back("  " + std::move(report_line));
        }
      }
    } else if (op == "trace") {
      MM2_RETURN_IF_ERROR(need(1));
      observability().tracer.Enable();
      trace_flusher.file = tokens[1];
      log.push_back("tracing to " + tokens[1]);
    } else if (op == "log" && tokens.size() > 1 && tokens[1] == "level") {
      MM2_RETURN_IF_ERROR(need(2));
      obs::EventLevel level;
      if (!obs::ParseEventLevel(tokens[2], &level)) {
        return fail("log level wants debug|info|warn|error, got '" +
                    tokens[2] + "'");
      }
      observability().events.SetMinLevel(level);
      log.push_back("log level " + tokens[2]);
    } else if (op == "log") {
      MM2_RETURN_IF_ERROR(need(1));
      obs::EventFormat format;
      if (tokens[1] == "off") {
        format = obs::EventFormat::kOff;
      } else if (tokens[1] == "text") {
        format = obs::EventFormat::kText;
      } else if (tokens[1] == "json") {
        format = obs::EventFormat::kJson;
      } else {
        return fail("log wants off|text|json [file] or level "
                    "debug|info|warn|error, got '" + tokens[1] + "'");
      }
      if (tokens.size() > 2 && format != obs::EventFormat::kOff) {
        MM2_RETURN_IF_ERROR(
            observability().events.ConfigureFile(format, tokens[2]));
        log.push_back("logging " + tokens[1] + " to " + tokens[2]);
      } else {
        observability().events.Configure(
            format, format == obs::EventFormat::kOff ? nullptr : &std::cerr);
        log.push_back("logging " + tokens[1]);
      }
    } else if (op == "budget") {
      MM2_RETURN_IF_ERROR(need(1));
      if (tokens[1] == "off") {
        SetWallBudgetUs(0);
        SetTupleBudget(0);
        SetRssBudgetKb(0);
        log.push_back("budgets cleared");
      } else {
        MM2_RETURN_IF_ERROR(need(2));
        char* end = nullptr;
        long long n = std::strtoll(tokens[2].c_str(), &end, 10);
        if (end == tokens[2].c_str() || *end != '\0' || n < 0) {
          return fail("budget wants a non-negative integer, got '" +
                      tokens[2] + "'");
        }
        if (tokens[1] == "tuples") {
          SetTupleBudget(static_cast<std::size_t>(n));
        } else if (tokens[1] == "wall_us") {
          SetWallBudgetUs(static_cast<std::uint64_t>(n));
        } else if (tokens[1] == "rss_kb") {
          SetRssBudgetKb(static_cast<std::size_t>(n));
        } else {
          return fail("budget wants tuples|wall_us|rss_kb|off, got '" +
                      tokens[1] + "'");
        }
        log.push_back("budget " + tokens[1] + " " + tokens[2]);
      }
    } else if (op == "why") {
      MM2_RETURN_IF_ERROR(need(1));
      if (!has_last_exchange_) {
        return fail("why needs a prior exchange in this engine (provenance "
                    "is recorded per exchange)");
      }
      // The tokenizer split on spaces; stitch the fact literal back
      // together so `why Flat(1, "a b")` works.
      std::string literal = tokens[1];
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        literal += " " + tokens[i];
      }
      auto fact_result = ParseFactLiteral(literal);
      if (!fact_result.ok()) return fail(fact_result.status().message());
      const chase::Fact& fact = fact_result.value();
      std::string explanation = runtime::ExplainFact(last_exchange_, fact);
      std::istringstream explain_lines(explanation);
      std::string explain_line;
      while (std::getline(explain_lines, explain_line)) {
        log.push_back(std::move(explain_line));
      }
      std::vector<chase::Fact> lineage =
          runtime::Lineage(last_exchange_, fact);
      if (!lineage.empty()) {
        std::string sources = "  sources:";
        for (const chase::Fact& f : lineage) sources += " " + f.ToString();
        log.push_back(std::move(sources));
      }
    } else if (op == "apply") {
      MM2_RETURN_IF_ERROR(need(1));
      // Stitch the signed fact literal back together (the tokenizer split
      // on spaces), as `why` does.
      std::string literal = tokens[1];
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        literal += " " + tokens[i];
      }
      Status applied = ApplyDeltaFact(literal);
      if (!applied.ok()) return fail(applied.message());
      log.push_back("queued " + literal + " (pending " +
                    std::to_string(pending_delta_.Size()) + ")");
    } else if (op == "maintain") {
      MM2_RETURN_IF_ERROR(need(1));
      MM2_ASSIGN_OR_RETURN(runtime::Delta target_delta, Maintain(tokens[1]));
      log.push_back(
          "maintained " + tokens[1] + " -> " + session_out_[tokens[1]] +
          ": +" + std::to_string(target_delta.inserts.TotalTuples()) + " -" +
          std::to_string(target_delta.deletes.TotalTuples()) + " tuples");
    } else if (op == "eqcheck") {
      MM2_RETURN_IF_ERROR(need(2));
      MM2_ASSIGN_OR_RETURN(std::string verdict,
                           EqCheck(tokens[1], tokens[2]));
      log.push_back("eqcheck " + tokens[1] + " " + tokens[2] + ": " +
                    verdict);
    } else {
      return fail("unknown command '" + op + "'");
    }
  }
  return log;
}

}  // namespace mm2::engine
