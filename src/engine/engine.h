#ifndef MM2_ENGINE_ENGINE_H_
#define MM2_ENGINE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/obs.h"
#include "compose/compose.h"
#include "diff/diff.h"
#include "instance/instance.h"
#include "inverse/inverse.h"
#include "logic/mapping.h"
#include "match/matcher.h"
#include "merge/merge.h"
#include "model/schema.h"
#include "modelgen/modelgen.h"
#include "runtime/runtime.h"

namespace mm2::engine {

// The metadata repository behind the engine (Fig. 1's "Metadata
// Repository"): named, versioned schemas, mappings and instances.
class Repository {
 public:
  Status PutSchema(model::Schema schema);
  Status PutMapping(logic::Mapping mapping);
  Status PutInstance(std::string name, instance::Instance db);

  Result<model::Schema> GetSchema(const std::string& name) const;
  Result<logic::Mapping> GetMapping(const std::string& name) const;
  Result<instance::Instance> GetInstance(const std::string& name) const;

  bool HasSchema(const std::string& name) const;
  bool HasMapping(const std::string& name) const;
  bool HasInstance(const std::string& name) const;

  // Monotonically increasing per-name version (1 on first Put).
  std::size_t SchemaVersion(const std::string& name) const;
  std::size_t MappingVersion(const std::string& name) const;

  std::vector<std::string> SchemaNames() const;
  std::vector<std::string> MappingNames() const;
  std::vector<std::string> InstanceNames() const;

 private:
  std::map<std::string, model::Schema> schemas_;
  std::map<std::string, logic::Mapping> mappings_;
  std::map<std::string, instance::Instance> instances_;
  std::map<std::string, std::size_t> schema_versions_;
  std::map<std::string, std::size_t> mapping_versions_;
};

// The model management engine: the operators of Sections 3-6 lifted onto
// repository names, plus a small line-oriented script language in the
// spirit of Rondo so evolution scenarios (Section 6) are runnable
// programs. Operator outputs are registered back into the repository.
class Engine {
 public:
  Engine() = default;

  Repository& repo() { return repo_; }
  const Repository& repo() const { return repo_; }

  // --- Observability -------------------------------------------------------
  // Every operator call runs under an `op.<name>` span and records
  // `op.<name>.calls` / `.errors` / `.latency_us` into the active context;
  // the chase/compose layers add their own `chase.*` / `compose.*`
  // telemetry underneath. By default the engine owns a private context
  // (inspect it via observability()); benches and tests attach their own
  // collector with SetObservability — no global state involved. Passing
  // nullptr reverts to the engine-owned context.
  void SetObservability(obs::Context* ctx) { obs_ = ctx; }
  obs::Context& observability() {
    if (obs_ != nullptr) return *obs_;
    if (owned_obs_ == nullptr) {
      owned_obs_ = std::make_unique<obs::Context>();
      // The engine-owned event log honors MM2_LOG=json|text|off (sink:
      // stderr). Externally attached contexts configure their own.
      owned_obs_->events.ConfigureFromEnv();
    }
    return *owned_obs_;
  }

  // Worker threads for chase-backed operators (exchange, core). 0 defers
  // to the MM2_THREADS environment variable (default 1 = serial). Scripts
  // set this via the `threads <n>` command.
  void SetThreads(std::size_t threads) { threads_ = threads; }
  std::size_t threads() const { return threads_; }

  // Storage representation for chase-backed operators. kDefault defers to
  // the MM2_STORAGE environment variable (default: segmented); kSegmented
  // backs the chase hot path with a tiered list of sorted columnar
  // segments, kIndexed restores the plain set + lazy hash indexes.
  // Results are bit-identical either way. Scripts set this via the
  // `storage indexed|segmented` command.
  void SetStorageMode(instance::StorageMode mode) { storage_ = mode; }
  instance::StorageMode storage_mode() const { return storage_; }

  // Soft resource budgets applied to chase-backed commands (exchange);
  // 0 = unlimited. On a breach the chase stops gracefully: the partial
  // instance is still registered (suffixed diagnostics name the dominant
  // rule) and the command returns ResourceExhausted. Scripts set these via
  // `budget tuples|wall_us|rss_kb <n>` / `budget off`.
  void SetWallBudgetUs(std::uint64_t us) { budget_wall_us_ = us; }
  void SetTupleBudget(std::size_t tuples) { budget_tuples_ = tuples; }
  void SetRssBudgetKb(std::size_t kb) { budget_rss_kb_ = kb; }

  // --- Operators over repository names -----------------------------------
  Result<match::MatchResult> Match(const std::string& source_schema,
                                   const std::string& target_schema,
                                   const match::MatchOptions& options = {});

  // compose(out, m12, m23): registers the composed mapping as `out`.
  Status Compose(const std::string& out, const std::string& m12,
                 const std::string& m23);
  Status Invert(const std::string& out, const std::string& mapping);
  // Fagin (quasi-)inverse; fails when nothing is recoverable.
  Status ComputeInverse(const std::string& out, const std::string& mapping);
  // extract/diff(out_schema, out_mapping, mapping).
  Status Extract(const std::string& out_schema, const std::string& out_mapping,
                 const std::string& mapping);
  Status Diff(const std::string& out_schema, const std::string& out_mapping,
              const std::string& mapping);
  // merge(out_schema, left, right, correspondences).
  Status Merge(const std::string& out_schema, const std::string& out_to_left,
               const std::string& out_to_right, const std::string& left,
               const std::string& right,
               const std::vector<match::Correspondence>& correspondences);
  // modelgen(out_schema, out_mapping, er_schema, strategy).
  Status ModelGen(const std::string& out_schema,
                  const std::string& out_mapping, const std::string& er_schema,
                  modelgen::InheritanceStrategy strategy);
  // exchange(out_instance, mapping, source_instance). Also opens (or
  // replaces) the mapping's incremental session, so a later Maintain can
  // propagate source deltas without a full re-chase.
  Status Exchange(const std::string& out_instance, const std::string& mapping,
                  const std::string& source_instance);
  // Queues one signed fact for the next Maintain: "+Rel(...)" inserts,
  // "-Rel(...)" deletes. The literal uses the same value syntax as `why`.
  Status ApplyDeltaFact(const std::string& literal);
  // Propagates the queued delta through the mapping's incremental session:
  // mutates the session's source, maintains its target (DRed + resumed
  // semi-naive chase), refreshes the stored output instance, and returns
  // the induced target delta. The queue is consumed either way.
  Result<runtime::Delta> Maintain(const std::string& mapping);
  // Compares two stored instances: "equal" (identical tuple sets),
  // "equal-up-to-nulls" (isomorphic modulo a labeled-null bijection), or
  // "different".
  Result<std::string> EqCheck(const std::string& a, const std::string& b);
  // batchload: like Exchange but through the compiled set-oriented loader
  // (Section 5 batch loading); fails for mappings outside the compilable
  // fragment (target egds, second order).
  Status BatchLoad(const std::string& out_instance,
                   const std::string& mapping,
                   const std::string& source_instance);
  // oogen(out_schema, out_mapping, relational_schema): wrapper generation.
  Status OoGen(const std::string& out_schema, const std::string& out_mapping,
               const std::string& relational_schema);
  // nestedgen(out_schema, out_mapping, relational_schema).
  Status NestedGen(const std::string& out_schema,
                   const std::string& out_mapping,
                   const std::string& relational_schema);

  // --- Script interface ----------------------------------------------------
  // Runs a newline-separated script; each line is one command:
  //   schema <name> ...              (must already be registered; checks)
  //   compose <out> <m12> <m23>
  //   invert <out> <m>
  //   inverse <out> <m>
  //   extract <outSchema> <outMap> <m>
  //   diff <outSchema> <outMap> <m>
  //   merge <outSchema> <outToLeft> <outToRight> <left> <right> [L.a=R.b ...]
  //   modelgen <outSchema> <outMap> <er> tph|tpt|tpc
  //   exchange <outInstance> <m> <sourceInstance>
  //   batchload <outInstance> <m> <sourceInstance>
  //   oogen <outSchema> <outMap> <relationalSchema>
  //   nestedgen <outSchema> <outMap> <relationalSchema>
  //   match <left> <right>
  //   threads <n>                    (worker threads for chase-backed
  //                                   commands; 0 defers to MM2_THREADS)
  //   storage indexed|segmented      (chase storage representation;
  //                                   default defers to MM2_STORAGE.
  //                                   segmented = sorted columnar segments
  //                                   on the chase hot path, bit-identical
  //                                   results)
  //   stats [--json]                 (dump the metrics registry snapshot;
  //                                   --json emits one machine-readable
  //                                   line with the same metric names)
  //   explain [--json]               (ranked cost report: per-operator
  //                                   totals/quantiles, per-chase-rule
  //                                   attribution, strata, foresight, span
  //                                   phases; --json emits one
  //                                   machine-readable line)
  //   explain mapping <m> [--json|--dot]
  //                                  (static analysis of a stored mapping:
  //                                   rule-dependency + position graphs,
  //                                   strata, termination class, predicted
  //                                   chase bounds; --dot emits a graphviz
  //                                   digraph)
  //   trace <file>                   (enable tracing; Chrome trace_event
  //                                   JSON is written to <file> when the
  //                                   script finishes, even on error)
  //   log off|text|json [file]       (structured event log; default sink is
  //                                   stderr, or <file> when given. Also
  //                                   settable via MM2_LOG=json|text|off)
  //   log level debug|info|warn|error (drop events below the threshold;
  //                                   also settable via MM2_LOG_LEVEL)
  //   budget tuples|wall_us|rss_kb <n>   (soft chase budgets; `budget off`
  //                                   clears all three)
  //   why <Rel(v1,v2,...)>           (why-provenance of a target fact from
  //                                   the last exchange; values use the
  //                                   instance literal syntax: 42, 4.5,
  //                                   "s", #t, null, N7, d:123)
  //   apply +Rel(...)|-Rel(...)      (queue a source insert/delete for the
  //                                   next maintain; same literal syntax
  //                                   as why)
  //   maintain <m>                   (propagate the queued delta through
  //                                   <m>'s incremental session — opened by
  //                                   the last `exchange` via <m> — and
  //                                   refresh the stored target instance)
  //   eqcheck <a> <b>                (compare stored instances: equal,
  //                                   equal-up-to-nulls, or different)
  // Blank lines and lines starting with '#' are skipped. Returns one log
  // line per executed command. When a command fails and the event log has
  // been recording, the flight-recorder dump (the last ring of events) is
  // appended to the error so the run-up to the failure travels with it.
  Result<std::vector<std::string>> RunScript(const std::string& script);

 private:
  Result<std::vector<std::string>> RunScriptImpl(const std::string& script);

  Repository repo_;
  obs::Context* obs_ = nullptr;              // attached collector, if any
  std::unique_ptr<obs::Context> owned_obs_;  // fallback, created lazily
  std::size_t threads_ = 0;                  // 0 = MM2_THREADS, else serial
  instance::StorageMode storage_ = instance::StorageMode::kDefault;
  std::uint64_t budget_wall_us_ = 0;         // soft chase budgets; 0 = off
  std::size_t budget_tuples_ = 0;
  std::size_t budget_rss_kb_ = 0;
  // Chase result of the most recent exchange (provenance + stats only; the
  // target lives in the repository) — the `why` command's data source.
  chase::ChaseResult last_exchange_;
  bool has_last_exchange_ = false;
  // Incremental sessions keyed by mapping name (opened by Exchange), the
  // repository instance each one refreshes on Maintain, and the queued
  // source delta the next Maintain consumes.
  std::map<std::string, runtime::ExchangeSession> sessions_;
  std::map<std::string, std::string> session_out_;
  runtime::Delta pending_delta_;
};

}  // namespace mm2::engine

#endif  // MM2_ENGINE_ENGINE_H_
