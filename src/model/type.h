#ifndef MM2_MODEL_TYPE_H_
#define MM2_MODEL_TYPE_H_

#include <memory>
#include <string>
#include <vector>

namespace mm2::model {

// Scalar types shared by all metamodels. This is the "basis set of data
// type constructs" the paper's universal metamodel calls for (Section 2).
enum class PrimitiveType {
  kInt64,
  kDouble,
  kString,
  kBool,
  kDate,  // days since epoch, kept distinct from kInt64 for matching
};

const char* PrimitiveTypeToString(PrimitiveType type);

// A type term in the universal metamodel: a primitive, a struct of named
// fields, or a collection of an element type. Relational schemas use only
// primitives; nested (XML-like) schemas compose structs and collections.
// DataType values are immutable and shared via DataTypeRef.
class DataType;
using DataTypeRef = std::shared_ptr<const DataType>;

class DataType {
 public:
  enum class Kind { kPrimitive, kStruct, kCollection };

  struct Field {
    std::string name;
    DataTypeRef type;
  };

  // Factories; the only way to construct a DataType.
  static DataTypeRef Primitive(PrimitiveType type);
  static DataTypeRef Int64();
  static DataTypeRef Double();
  static DataTypeRef String();
  static DataTypeRef Bool();
  static DataTypeRef Date();
  static DataTypeRef Struct(std::vector<Field> fields);
  static DataTypeRef Collection(DataTypeRef element);

  Kind kind() const { return kind_; }
  bool is_primitive() const { return kind_ == Kind::kPrimitive; }
  PrimitiveType primitive() const { return primitive_; }
  const std::vector<Field>& fields() const { return fields_; }
  const DataTypeRef& element() const { return element_; }

  // Structural equality.
  bool Equals(const DataType& other) const;

  // e.g. "int64", "struct<name: string, tags: collection<string>>".
  std::string ToString() const;

 private:
  DataType() = default;

  Kind kind_ = Kind::kPrimitive;
  PrimitiveType primitive_ = PrimitiveType::kString;
  std::vector<Field> fields_;  // kStruct
  DataTypeRef element_;        // kCollection
};

bool operator==(const DataType& a, const DataType& b);

// Least common supertype used by Merge for type conflict resolution:
// equal types unify to themselves; {int64, double} -> double; any other
// primitive conflict -> string; struct/collection unify field-wise when
// shapes agree, otherwise string. Never fails.
DataTypeRef UnifyTypes(const DataTypeRef& a, const DataTypeRef& b);

}  // namespace mm2::model

#endif  // MM2_MODEL_TYPE_H_
