#include "model/type.h"

#include <utility>

namespace mm2::model {

const char* PrimitiveTypeToString(PrimitiveType type) {
  switch (type) {
    case PrimitiveType::kInt64:
      return "int64";
    case PrimitiveType::kDouble:
      return "double";
    case PrimitiveType::kString:
      return "string";
    case PrimitiveType::kBool:
      return "bool";
    case PrimitiveType::kDate:
      return "date";
  }
  return "unknown";
}

DataTypeRef DataType::Primitive(PrimitiveType type) {
  auto t = std::shared_ptr<DataType>(new DataType());
  t->kind_ = Kind::kPrimitive;
  t->primitive_ = type;
  return t;
}

DataTypeRef DataType::Int64() { return Primitive(PrimitiveType::kInt64); }
DataTypeRef DataType::Double() { return Primitive(PrimitiveType::kDouble); }
DataTypeRef DataType::String() { return Primitive(PrimitiveType::kString); }
DataTypeRef DataType::Bool() { return Primitive(PrimitiveType::kBool); }
DataTypeRef DataType::Date() { return Primitive(PrimitiveType::kDate); }

DataTypeRef DataType::Struct(std::vector<Field> fields) {
  auto t = std::shared_ptr<DataType>(new DataType());
  t->kind_ = Kind::kStruct;
  t->fields_ = std::move(fields);
  return t;
}

DataTypeRef DataType::Collection(DataTypeRef element) {
  auto t = std::shared_ptr<DataType>(new DataType());
  t->kind_ = Kind::kCollection;
  t->element_ = std::move(element);
  return t;
}

bool DataType::Equals(const DataType& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kPrimitive:
      return primitive_ == other.primitive_;
    case Kind::kStruct: {
      if (fields_.size() != other.fields_.size()) return false;
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name != other.fields_[i].name) return false;
        if (!fields_[i].type->Equals(*other.fields_[i].type)) return false;
      }
      return true;
    }
    case Kind::kCollection:
      return element_->Equals(*other.element_);
  }
  return false;
}

std::string DataType::ToString() const {
  switch (kind_) {
    case Kind::kPrimitive:
      return PrimitiveTypeToString(primitive_);
    case Kind::kStruct: {
      std::string out = "struct<";
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out += ", ";
        out += fields_[i].name + ": " + fields_[i].type->ToString();
      }
      out += ">";
      return out;
    }
    case Kind::kCollection:
      return "collection<" + element_->ToString() + ">";
  }
  return "unknown";
}

bool operator==(const DataType& a, const DataType& b) { return a.Equals(b); }

DataTypeRef UnifyTypes(const DataTypeRef& a, const DataTypeRef& b) {
  if (a->Equals(*b)) return a;
  if (a->is_primitive() && b->is_primitive()) {
    PrimitiveType pa = a->primitive();
    PrimitiveType pb = b->primitive();
    bool numeric_a =
        pa == PrimitiveType::kInt64 || pa == PrimitiveType::kDouble;
    bool numeric_b =
        pb == PrimitiveType::kInt64 || pb == PrimitiveType::kDouble;
    if (numeric_a && numeric_b) return DataType::Double();
    return DataType::String();
  }
  if (a->kind() == DataType::Kind::kStruct &&
      b->kind() == DataType::Kind::kStruct &&
      a->fields().size() == b->fields().size()) {
    std::vector<DataType::Field> fields;
    for (std::size_t i = 0; i < a->fields().size(); ++i) {
      if (a->fields()[i].name != b->fields()[i].name) {
        return DataType::String();
      }
      fields.push_back({a->fields()[i].name,
                        UnifyTypes(a->fields()[i].type, b->fields()[i].type)});
    }
    return DataType::Struct(std::move(fields));
  }
  if (a->kind() == DataType::Kind::kCollection &&
      b->kind() == DataType::Kind::kCollection) {
    return DataType::Collection(UnifyTypes(a->element(), b->element()));
  }
  return DataType::String();
}

}  // namespace mm2::model
