#ifndef MM2_MODEL_SCHEMA_H_
#define MM2_MODEL_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "model/type.h"

namespace mm2::model {

// The metamodel a schema is expressed in. A model management system must be
// generic across metamodels (paper Section 2); the same Schema class hosts
// all of them, with per-metamodel constructs populated as appropriate.
enum class Metamodel {
  kRelational,          // relations, keys, foreign keys
  kEntityRelationship,  // entity types with inheritance + entity sets
  kNested,              // relations whose attributes may be struct/collection
  kObjectOriented,      // classes (entity types) + references
};

const char* MetamodelToString(Metamodel metamodel);

// A named, typed attribute of a relation or entity type.
struct Attribute {
  std::string name;
  DataTypeRef type;
  bool nullable = false;

  std::string ToString() const;
};

// A relation (table). `primary_key` holds indices into `attributes`.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, std::vector<Attribute> attributes,
           std::vector<std::size_t> primary_key = {});

  const std::string& name() const { return name_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  const std::vector<std::size_t>& primary_key() const { return primary_key_; }
  std::size_t arity() const { return attributes_.size(); }

  // Index of the attribute named `name`, or nullopt.
  std::optional<std::size_t> AttributeIndex(std::string_view name) const;
  const Attribute& attribute(std::size_t i) const { return attributes_[i]; }
  std::vector<std::string> AttributeNames() const;

  bool IsKeyAttribute(std::size_t index) const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
  std::vector<std::size_t> primary_key_;
};

// A foreign key: `from_relation.from_attributes` references
// `to_relation.to_attributes` (attribute names, pairwise).
struct ForeignKey {
  std::string from_relation;
  std::vector<std::string> from_attributes;
  std::string to_relation;
  std::vector<std::string> to_attributes;

  std::string ToString() const;
};

// An entity type in an ER or OO schema. Inherits the attributes of
// `parent` (empty for a root type). Fig. 2's Person/Employee/Customer
// hierarchy is three EntityTypes.
struct EntityType {
  std::string name;
  std::string parent;  // empty => root
  std::vector<Attribute> attributes;  // declared here, excluding inherited
  bool abstract = false;

  std::string ToString() const;
};

// A polymorphic extent holding instances of `root_type` and its subtypes,
// e.g. "Persons" in Fig. 2.
struct EntitySet {
  std::string name;
  std::string root_type;
};

// A stable reference to a schema element, used by Match correspondences and
// Merge. `attribute` empty => the container itself.
struct ElementRef {
  std::string container;  // relation, entity type, or entity set name
  std::string attribute;  // optional

  bool operator==(const ElementRef&) const = default;
  bool operator<(const ElementRef& other) const {
    return container != other.container ? container < other.container
                                        : attribute < other.attribute;
  }
  // "Container" or "Container.attribute".
  std::string ToString() const;
  static ElementRef Parse(std::string_view path);
};

// A schema: an expression that defines a set of possible instances
// (paper Section 2). Construct via SchemaBuilder, then Validate().
class Schema {
 public:
  Schema() = default;
  Schema(std::string name, Metamodel metamodel)
      : name_(std::move(name)), metamodel_(metamodel) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  Metamodel metamodel() const { return metamodel_; }

  const std::vector<Relation>& relations() const { return relations_; }
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }
  const std::vector<EntityType>& entity_types() const { return entity_types_; }
  const std::vector<EntitySet>& entity_sets() const { return entity_sets_; }

  void AddRelation(Relation relation);
  void AddForeignKey(ForeignKey fk);
  void AddEntityType(EntityType type);
  void AddEntitySet(EntitySet set);

  const Relation* FindRelation(std::string_view name) const;
  const EntityType* FindEntityType(std::string_view name) const;
  const EntitySet* FindEntitySet(std::string_view name) const;

  bool HasRelation(std::string_view name) const {
    return FindRelation(name) != nullptr;
  }

  // All attributes of `type_name` including inherited ones, base-first.
  Result<std::vector<Attribute>> AllAttributesOf(
      std::string_view type_name) const;

  // True if `sub` equals `ancestor` or derives from it (transitively).
  bool IsSubtypeOf(std::string_view sub, std::string_view ancestor) const;

  // Names of `type_name` and all its (transitive) subtypes.
  std::vector<std::string> SubtypeClosure(std::string_view type_name) const;

  // Direct children of `type_name`.
  std::vector<std::string> DirectSubtypes(std::string_view type_name) const;

  // Foreign keys leaving `relation`.
  std::vector<const ForeignKey*> ForeignKeysFrom(
      std::string_view relation) const;

  // Every addressable element: each relation/entity type/entity set and
  // each of their attributes. This is the element universe for Match.
  std::vector<ElementRef> AllElements() const;

  // Resolves an element to its attribute (nullptr for container refs).
  const Attribute* FindAttribute(const ElementRef& ref) const;

  // Structural well-formedness: unique names, resolvable foreign keys and
  // parents, acyclic inheritance, keys referencing existing attributes,
  // metamodel-specific rules (relational schemas have no entity types and
  // only primitive attribute types, ER schemas have resolvable roots).
  Status Validate() const;

  std::string ToString() const;

 private:
  std::string name_;
  Metamodel metamodel_ = Metamodel::kRelational;
  std::vector<Relation> relations_;
  std::vector<ForeignKey> foreign_keys_;
  std::vector<EntityType> entity_types_;
  std::vector<EntitySet> entity_sets_;
};

// Fluent construction helper:
//   Schema s = SchemaBuilder("S", Metamodel::kRelational)
//                  .Relation("Names", {{"SID", Int64()}, {"Name", String()}},
//                            /*primary_key=*/{"SID"})
//                  .ForeignKey("Addr", {"SID"}, "Names", {"SID"})
//                  .Build();
class SchemaBuilder {
 public:
  struct AttributeSpec {
    AttributeSpec(std::string name, DataTypeRef type, bool nullable = false)
        : name(std::move(name)), type(std::move(type)), nullable(nullable) {}
    std::string name;
    DataTypeRef type;
    bool nullable;
  };

  SchemaBuilder(std::string name, Metamodel metamodel)
      : schema_(std::move(name), metamodel) {}

  SchemaBuilder& Relation(std::string name, std::vector<AttributeSpec> attrs,
                          std::vector<std::string> primary_key = {});
  SchemaBuilder& ForeignKey(std::string from_relation,
                            std::vector<std::string> from_attributes,
                            std::string to_relation,
                            std::vector<std::string> to_attributes);
  SchemaBuilder& EntityType(std::string name, std::string parent,
                            std::vector<AttributeSpec> attrs,
                            bool abstract = false);
  SchemaBuilder& EntitySet(std::string name, std::string root_type);

  // Validates and returns the schema; dies on invalid input in tests, so
  // prefer BuildChecked in library code.
  class Schema Build();
  Result<class Schema> BuildChecked();

 private:
  class Schema schema_;
};

}  // namespace mm2::model

#endif  // MM2_MODEL_SCHEMA_H_
