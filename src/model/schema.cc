#include "model/schema.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <set>
#include <utility>

#include "common/strings.h"

namespace mm2::model {

const char* MetamodelToString(Metamodel metamodel) {
  switch (metamodel) {
    case Metamodel::kRelational:
      return "relational";
    case Metamodel::kEntityRelationship:
      return "entity-relationship";
    case Metamodel::kNested:
      return "nested";
    case Metamodel::kObjectOriented:
      return "object-oriented";
  }
  return "unknown";
}

std::string Attribute::ToString() const {
  std::string out = name + ": " + type->ToString();
  if (nullable) out += "?";
  return out;
}

Relation::Relation(std::string name, std::vector<Attribute> attributes,
                   std::vector<std::size_t> primary_key)
    : name_(std::move(name)),
      attributes_(std::move(attributes)),
      primary_key_(std::move(primary_key)) {}

std::optional<std::size_t> Relation::AttributeIndex(
    std::string_view name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> Relation::AttributeNames() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const Attribute& a : attributes_) names.push_back(a.name);
  return names;
}

bool Relation::IsKeyAttribute(std::size_t index) const {
  return std::find(primary_key_.begin(), primary_key_.end(), index) !=
         primary_key_.end();
}

std::string Relation::ToString() const {
  std::string out = name_ + "(";
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    if (IsKeyAttribute(i)) out += "*";
    out += attributes_[i].ToString();
  }
  out += ")";
  return out;
}

std::string ForeignKey::ToString() const {
  return from_relation + "(" + Join(from_attributes, ", ") + ") -> " +
         to_relation + "(" + Join(to_attributes, ", ") + ")";
}

std::string EntityType::ToString() const {
  std::string out = "entity " + name;
  if (!parent.empty()) out += " : " + parent;
  if (abstract) out += " [abstract]";
  out += " {";
  for (std::size_t i = 0; i < attributes.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes[i].ToString();
  }
  out += "}";
  return out;
}

std::string ElementRef::ToString() const {
  if (attribute.empty()) return container;
  return container + "." + attribute;
}

ElementRef ElementRef::Parse(std::string_view path) {
  std::size_t dot = path.find('.');
  if (dot == std::string_view::npos) {
    return ElementRef{std::string(path), ""};
  }
  return ElementRef{std::string(path.substr(0, dot)),
                    std::string(path.substr(dot + 1))};
}

void Schema::AddRelation(Relation relation) {
  relations_.push_back(std::move(relation));
}

void Schema::AddForeignKey(ForeignKey fk) {
  foreign_keys_.push_back(std::move(fk));
}

void Schema::AddEntityType(EntityType type) {
  entity_types_.push_back(std::move(type));
}

void Schema::AddEntitySet(EntitySet set) {
  entity_sets_.push_back(std::move(set));
}

const Relation* Schema::FindRelation(std::string_view name) const {
  for (const Relation& r : relations_) {
    if (r.name() == name) return &r;
  }
  return nullptr;
}

const EntityType* Schema::FindEntityType(std::string_view name) const {
  for (const EntityType& t : entity_types_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const EntitySet* Schema::FindEntitySet(std::string_view name) const {
  for (const EntitySet& s : entity_sets_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Result<std::vector<Attribute>> Schema::AllAttributesOf(
    std::string_view type_name) const {
  std::vector<const EntityType*> chain;
  std::string_view current = type_name;
  while (!current.empty()) {
    const EntityType* type = FindEntityType(current);
    if (type == nullptr) {
      return Status::NotFound("entity type '" + std::string(current) +
                              "' not in schema '" + name_ + "'");
    }
    chain.push_back(type);
    if (chain.size() > entity_types_.size()) {
      return Status::InvalidArgument("inheritance cycle at '" +
                                     std::string(type_name) + "'");
    }
    current = type->parent;
  }
  std::vector<Attribute> all;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const Attribute& a : (*it)->attributes) all.push_back(a);
  }
  return all;
}

bool Schema::IsSubtypeOf(std::string_view sub, std::string_view ancestor) const {
  std::string_view current = sub;
  std::size_t hops = 0;
  while (!current.empty() && hops <= entity_types_.size()) {
    if (current == ancestor) return true;
    const EntityType* type = FindEntityType(current);
    if (type == nullptr) return false;
    current = type->parent;
    ++hops;
  }
  return false;
}

std::vector<std::string> Schema::SubtypeClosure(
    std::string_view type_name) const {
  std::vector<std::string> closure;
  for (const EntityType& t : entity_types_) {
    if (IsSubtypeOf(t.name, type_name)) closure.push_back(t.name);
  }
  return closure;
}

std::vector<std::string> Schema::DirectSubtypes(
    std::string_view type_name) const {
  std::vector<std::string> out;
  for (const EntityType& t : entity_types_) {
    if (t.parent == type_name) out.push_back(t.name);
  }
  return out;
}

std::vector<const ForeignKey*> Schema::ForeignKeysFrom(
    std::string_view relation) const {
  std::vector<const ForeignKey*> out;
  for (const ForeignKey& fk : foreign_keys_) {
    if (fk.from_relation == relation) out.push_back(&fk);
  }
  return out;
}

std::vector<ElementRef> Schema::AllElements() const {
  std::vector<ElementRef> out;
  for (const Relation& r : relations_) {
    out.push_back({r.name(), ""});
    for (const Attribute& a : r.attributes()) out.push_back({r.name(), a.name});
  }
  for (const EntityType& t : entity_types_) {
    out.push_back({t.name, ""});
    for (const Attribute& a : t.attributes) out.push_back({t.name, a.name});
  }
  for (const EntitySet& s : entity_sets_) out.push_back({s.name, ""});
  return out;
}

const Attribute* Schema::FindAttribute(const ElementRef& ref) const {
  if (ref.attribute.empty()) return nullptr;
  if (const Relation* r = FindRelation(ref.container)) {
    if (auto idx = r->AttributeIndex(ref.attribute)) {
      return &r->attribute(*idx);
    }
  }
  if (const EntityType* t = FindEntityType(ref.container)) {
    for (const Attribute& a : t->attributes) {
      if (a.name == ref.attribute) return &a;
    }
  }
  return nullptr;
}

namespace {

Status CheckUniqueAttributeNames(const std::string& container,
                                 const std::vector<Attribute>& attrs) {
  std::set<std::string> seen;
  for (const Attribute& a : attrs) {
    if (a.name.empty()) {
      return Status::InvalidArgument("empty attribute name in '" + container +
                                     "'");
    }
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute '" + a.name +
                                     "' in '" + container + "'");
    }
    if (a.type == nullptr) {
      return Status::InvalidArgument("attribute '" + container + "." + a.name +
                                     "' has no type");
    }
  }
  return Status::OK();
}

}  // namespace

Status Schema::Validate() const {
  std::set<std::string> container_names;
  for (const Relation& r : relations_) {
    if (r.name().empty()) {
      return Status::InvalidArgument("relation with empty name");
    }
    if (!container_names.insert(r.name()).second) {
      return Status::InvalidArgument("duplicate container name '" + r.name() +
                                     "'");
    }
    MM2_RETURN_IF_ERROR(CheckUniqueAttributeNames(r.name(), r.attributes()));
    for (std::size_t key_index : r.primary_key()) {
      if (key_index >= r.arity()) {
        return Status::InvalidArgument("primary key index out of range in '" +
                                       r.name() + "'");
      }
    }
  }
  for (const EntityType& t : entity_types_) {
    if (t.name.empty()) {
      return Status::InvalidArgument("entity type with empty name");
    }
    if (!container_names.insert(t.name).second) {
      return Status::InvalidArgument("duplicate container name '" + t.name +
                                     "'");
    }
    MM2_RETURN_IF_ERROR(CheckUniqueAttributeNames(t.name, t.attributes));
  }
  for (const EntitySet& s : entity_sets_) {
    if (!container_names.insert(s.name).second) {
      return Status::InvalidArgument("duplicate container name '" + s.name +
                                     "'");
    }
  }

  for (const EntityType& t : entity_types_) {
    if (!t.parent.empty() && FindEntityType(t.parent) == nullptr) {
      return Status::NotFound("parent '" + t.parent + "' of '" + t.name +
                              "' not in schema");
    }
    // AllAttributesOf walks the parent chain and reports cycles, and also
    // catches attribute shadowing via duplicate names in the flattening.
    MM2_ASSIGN_OR_RETURN(std::vector<Attribute> all, AllAttributesOf(t.name));
    std::set<std::string> seen;
    for (const Attribute& a : all) {
      if (!seen.insert(a.name).second) {
        return Status::InvalidArgument("attribute '" + a.name +
                                       "' shadowed in hierarchy of '" +
                                       t.name + "'");
      }
    }
  }

  for (const EntitySet& s : entity_sets_) {
    if (FindEntityType(s.root_type) == nullptr) {
      return Status::NotFound("root type '" + s.root_type +
                              "' of entity set '" + s.name +
                              "' not in schema");
    }
  }

  for (const ForeignKey& fk : foreign_keys_) {
    const Relation* from = FindRelation(fk.from_relation);
    const Relation* to = FindRelation(fk.to_relation);
    if (from == nullptr || to == nullptr) {
      return Status::NotFound("foreign key references missing relation: " +
                              fk.ToString());
    }
    if (fk.from_attributes.size() != fk.to_attributes.size() ||
        fk.from_attributes.empty()) {
      return Status::InvalidArgument("malformed foreign key: " +
                                     fk.ToString());
    }
    for (const std::string& a : fk.from_attributes) {
      if (!from->AttributeIndex(a)) {
        return Status::NotFound("foreign key attribute '" + a +
                                "' missing in '" + fk.from_relation + "'");
      }
    }
    for (const std::string& a : fk.to_attributes) {
      if (!to->AttributeIndex(a)) {
        return Status::NotFound("foreign key attribute '" + a +
                                "' missing in '" + fk.to_relation + "'");
      }
    }
  }

  if (metamodel_ == Metamodel::kRelational) {
    if (!entity_types_.empty() || !entity_sets_.empty()) {
      return Status::InvalidArgument(
          "relational schema '" + name_ + "' contains entity constructs");
    }
    for (const Relation& r : relations_) {
      for (const Attribute& a : r.attributes()) {
        if (!a.type->is_primitive()) {
          return Status::InvalidArgument(
              "relational attribute '" + r.name() + "." + a.name +
              "' has non-primitive type " + a.type->ToString());
        }
      }
    }
  }
  if (metamodel_ == Metamodel::kEntityRelationship ||
      metamodel_ == Metamodel::kObjectOriented) {
    if (entity_types_.empty()) {
      return Status::InvalidArgument("ER/OO schema '" + name_ +
                                     "' has no entity types");
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "schema " + name_ + " [" + MetamodelToString(metamodel_) +
                    "] {\n";
  for (const Relation& r : relations_) out += "  " + r.ToString() + "\n";
  for (const EntityType& t : entity_types_) out += "  " + t.ToString() + "\n";
  for (const EntitySet& s : entity_sets_) {
    out += "  entityset " + s.name + " of " + s.root_type + "\n";
  }
  for (const ForeignKey& fk : foreign_keys_) {
    out += "  fk " + fk.ToString() + "\n";
  }
  out += "}";
  return out;
}

SchemaBuilder& SchemaBuilder::Relation(std::string name,
                                       std::vector<AttributeSpec> attrs,
                                       std::vector<std::string> primary_key) {
  std::vector<Attribute> attributes;
  attributes.reserve(attrs.size());
  for (AttributeSpec& spec : attrs) {
    attributes.push_back(
        Attribute{std::move(spec.name), std::move(spec.type), spec.nullable});
  }
  std::vector<std::size_t> key_indices;
  for (const std::string& key_name : primary_key) {
    for (std::size_t i = 0; i < attributes.size(); ++i) {
      if (attributes[i].name == key_name) {
        key_indices.push_back(i);
        break;
      }
    }
  }
  schema_.AddRelation(
      model::Relation(std::move(name), std::move(attributes), key_indices));
  return *this;
}

SchemaBuilder& SchemaBuilder::ForeignKey(
    std::string from_relation, std::vector<std::string> from_attributes,
    std::string to_relation, std::vector<std::string> to_attributes) {
  schema_.AddForeignKey(model::ForeignKey{
      std::move(from_relation), std::move(from_attributes),
      std::move(to_relation), std::move(to_attributes)});
  return *this;
}

SchemaBuilder& SchemaBuilder::EntityType(std::string name, std::string parent,
                                         std::vector<AttributeSpec> attrs,
                                         bool abstract) {
  std::vector<Attribute> attributes;
  attributes.reserve(attrs.size());
  for (AttributeSpec& spec : attrs) {
    attributes.push_back(
        Attribute{std::move(spec.name), std::move(spec.type), spec.nullable});
  }
  schema_.AddEntityType(model::EntityType{std::move(name), std::move(parent),
                                          std::move(attributes), abstract});
  return *this;
}

SchemaBuilder& SchemaBuilder::EntitySet(std::string name,
                                        std::string root_type) {
  schema_.AddEntitySet(model::EntitySet{std::move(name), std::move(root_type)});
  return *this;
}

Schema SchemaBuilder::Build() {
  Status status = schema_.Validate();
  if (!status.ok()) {
    std::cerr << "SchemaBuilder::Build on invalid schema: " << status
              << std::endl;
    std::abort();
  }
  return std::move(schema_);
}

Result<Schema> SchemaBuilder::BuildChecked() {
  MM2_RETURN_IF_ERROR(schema_.Validate());
  return std::move(schema_);
}

}  // namespace mm2::model
