#include "chase/chase.h"

#include "analysis/analysis.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "logic/acyclicity.h"
#include "obs/obs.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <optional>

namespace mm2::chase {

using instance::Instance;
using instance::Tuple;
using instance::Value;
using logic::Atom;
using logic::Term;

std::string Fact::ToString() const {
  return relation + instance::TupleToString(tuple);
}

void Provenance::Record(const Fact& target, Witness witness) {
  map_[target].push_back(std::move(witness));
}

const std::vector<Witness>* Provenance::WitnessesOf(const Fact& target) const {
  auto it = map_.find(target);
  return it == map_.end() ? nullptr : &it->second;
}

void Provenance::RewriteValue(const Value& from, const Value& to) {
  auto rewrite_fact = [&](Fact fact) {
    for (Value& v : fact.tuple) {
      if (v == from) v = to;
    }
    return fact;
  };
  std::map<Fact, std::vector<Witness>> rewritten;
  for (auto& [fact, witnesses] : map_) {
    Fact new_fact = rewrite_fact(fact);
    for (Witness& w : witnesses) {
      for (Fact& f : w) f = rewrite_fact(f);
    }
    auto& slot = rewritten[new_fact];
    slot.insert(slot.end(), witnesses.begin(), witnesses.end());
  }
  map_ = std::move(rewritten);
}

namespace {

// Tries to extend `assignment` so that `atom` maps onto `tuple`.
// `newly_bound` collects pointers into the atom's term names (stable for
// the duration of the match), so the per-descend unbind loop never copies
// variable-name strings.
bool MatchTuple(const Atom& atom, const Tuple& tuple, Assignment* assignment,
                std::vector<const std::string*>* newly_bound) {
  if (atom.terms.size() != tuple.size()) return false;
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& term = atom.terms[i];
    switch (term.kind()) {
      case Term::Kind::kConstant:
        if (!(term.value() == tuple[i])) return false;
        break;
      case Term::Kind::kVariable: {
        auto it = assignment->find(term.name());
        if (it != assignment->end()) {
          if (!(it->second == tuple[i])) return false;
        } else {
          assignment->emplace(term.name(), tuple[i]);
          newly_bound->push_back(&term.name());
        }
        break;
      }
      case Term::Kind::kFunction:
        return false;  // function terms never occur in matchable bodies
    }
  }
  return true;
}

void MatchAtomsNaiveRec(const std::vector<Atom>& atoms, std::size_t index,
                        const Instance& database, Assignment* assignment,
                        std::vector<Assignment>* out, std::size_t limit) {
  if (limit != 0 && out->size() >= limit) return;
  if (index == atoms.size()) {
    out->push_back(*assignment);
    return;
  }
  const Atom& atom = atoms[index];
  const instance::RelationInstance* rel = database.Find(atom.relation);
  if (rel == nullptr) return;
  for (const Tuple& tuple : rel->tuples()) {
    std::vector<const std::string*> newly_bound;
    if (MatchTuple(atom, tuple, assignment, &newly_bound)) {
      MatchAtomsNaiveRec(atoms, index + 1, database, assignment, out, limit);
    }
    for (const std::string* v : newly_bound) assignment->erase(*v);
    if (limit != 0 && out->size() >= limit) return;
  }
}

constexpr std::size_t kNoAnchor = static_cast<std::size_t>(-1);

// Greedy join order: repeatedly pick the atom with the most bound terms
// (constants + variables bound by `seed` or earlier atoms), breaking ties
// toward the smaller relation. When `anchor` is set, that atom goes first
// unconditionally — the semi-naive delta pass forces the delta-carrying
// atom to drive the join.
std::vector<std::size_t> PlanAtomOrder(const std::vector<Atom>& atoms,
                                       const Instance& db,
                                       const Assignment& seed,
                                       std::size_t anchor = kNoAnchor) {
  std::vector<std::size_t> order;
  order.reserve(atoms.size());
  std::vector<char> used(atoms.size(), 0);
  std::set<std::string, std::less<>> bound;
  for (const auto& [var, value] : seed) bound.insert(var);
  auto take = [&](std::size_t i) {
    used[i] = 1;
    order.push_back(i);
    for (const Term& t : atoms[i].terms) {
      if (t.kind() == Term::Kind::kVariable) bound.insert(t.name());
    }
  };
  if (anchor != kNoAnchor) take(anchor);
  while (order.size() < atoms.size()) {
    std::size_t best = atoms.size();
    std::size_t best_bound = 0;
    std::size_t best_size = 0;
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      std::size_t bound_terms = 0;
      for (const Term& t : atoms[i].terms) {
        if (t.kind() == Term::Kind::kConstant ||
            (t.kind() == Term::Kind::kVariable && bound.count(t.name()))) {
          ++bound_terms;
        }
      }
      const instance::RelationInstance* rel = db.Find(atoms[i].relation);
      std::size_t size = rel == nullptr ? 0 : rel->size();
      if (best == atoms.size() || bound_terms > best_bound ||
          (bound_terms == best_bound && size < best_size)) {
        best = i;
        best_bound = bound_terms;
        best_size = size;
      }
    }
    take(best);
  }
  return order;
}

// Index-backed join step: at each depth, columns covered by constants or
// already-bound variables form a probe key into the relation's hash index;
// only the resulting bucket is enumerated (in set order, so results come
// out exactly as a full scan would produce them). MatchTuple stays the
// final filter, which also enforces repeated unbound variables. When
// `anchor` is non-null, depth 0 enumerates those tuples instead (the
// semi-naive delta). `cancel` is polled once per descend so a stop request
// lands mid-join instead of after it; callers pass nullptr when no budget
// or token is armed, which keeps the default path free of atomic loads.
void MatchIndexedRec(const std::vector<Atom>& atoms,
                     const std::vector<std::size_t>& order, std::size_t depth,
                     const Instance& db,
                     const instance::RelationInstance::TupleRefs* anchor,
                     const obs::CancelToken* cancel, Assignment* assignment,
                     std::vector<Assignment>* out, std::size_t limit) {
  if (limit != 0 && out->size() >= limit) return;
  if (cancel != nullptr && cancel->stop_requested()) return;
  if (depth == order.size()) {
    out->push_back(*assignment);
    return;
  }
  const Atom& atom = atoms[order[depth]];
  const instance::RelationInstance* rel = db.Find(atom.relation);
  if (rel == nullptr) return;
  if (atom.terms.size() != rel->arity()) return;  // nothing can match
  auto descend = [&](const Tuple& tuple) {
    std::vector<const std::string*> newly_bound;
    if (MatchTuple(atom, tuple, assignment, &newly_bound)) {
      MatchIndexedRec(atoms, order, depth + 1, db, nullptr, cancel,
                      assignment, out, limit);
    }
    for (const std::string* v : newly_bound) assignment->erase(*v);
  };
  if (depth == 0 && anchor != nullptr) {
    for (const Tuple* tuple : *anchor) {
      descend(*tuple);
      if (limit != 0 && out->size() >= limit) return;
    }
    return;
  }
  instance::RelationInstance::ColumnSet cols;
  Tuple key;
  cols.reserve(atom.terms.size());
  key.reserve(atom.terms.size());
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& term = atom.terms[i];
    if (term.kind() == Term::Kind::kConstant) {
      cols.push_back(i);
      key.push_back(term.value());
    } else if (term.kind() == Term::Kind::kVariable) {
      auto it = assignment->find(term.name());
      if (it != assignment->end()) {
        cols.push_back(i);
        key.push_back(it->second);
      }
    } else {
      return;  // function terms never occur in matchable bodies
    }
  }
  if (cols.empty()) {
    for (const Tuple& tuple : rel->tuples()) {
      descend(tuple);
      if (limit != 0 && out->size() >= limit) return;
    }
    return;
  }
  // Bound columns come out in ascending term order, so a key covering
  // columns [0, k) is a prefix of the segment sort order and binary
  // searches over the sealed runs answer the probe without materializing a
  // hash index. A single-run answer walks the range directly; multi-run
  // answers stream through the k-way cursor. Either way rows come back in
  // set order, so the enumeration is bit-identical to the hash-bucket walk.
  if (cols.back() == cols.size() - 1) {
    if (auto ranges = rel->SegmentProbePrefix(key)) {
      if (ranges->count == 1) {
        Tuple scratch;
        const instance::SegmentRanges::Entry& entry = ranges->entries[0];
        for (std::size_t r = entry.begin; r < entry.end; ++r) {
          entry.segment->CopyRow(r, &scratch);
          descend(scratch);
          if (limit != 0 && out->size() >= limit) return;
        }
        return;
      }
      for (instance::SegmentRangeCursor cursor(*ranges); !cursor.Done();
           cursor.Advance()) {
        descend(cursor.Row());
        if (limit != 0 && out->size() >= limit) return;
      }
      return;
    }
  }
  const instance::RelationInstance::TupleRefs* refs = rel->Probe(cols, key);
  if (refs == nullptr) return;
  for (const Tuple* tuple : *refs) {
    descend(*tuple);
    if (limit != 0 && out->size() >= limit) return;
  }
}

// Full indexed match extending `seed` (empty for top-level matching; the
// restricted-chase head check seeds with the body assignment).
std::vector<Assignment> MatchAtomsIndexed(
    const std::vector<Atom>& atoms, const Instance& db, Assignment seed,
    std::size_t limit, const obs::CancelToken* cancel = nullptr) {
  std::vector<Assignment> out;
  if (atoms.empty()) {
    out.push_back(std::move(seed));
    return out;
  }
  std::vector<std::size_t> order = PlanAtomOrder(atoms, db, seed);
  MatchIndexedRec(atoms, order, 0, db, nullptr, cancel, &seed, &out, limit);
  return out;
}

// ---------------------------------------------------------------------------
// Parallel partitioned matching. The match phase is read-only (firing is
// strictly sequential and happens only after matching returns), so the
// parallel executor partitions the depth-0 candidate tuples into contiguous
// chunks, runs MatchIndexedRec on each chunk concurrently, and concatenates
// the per-chunk result vectors in chunk order. Chunk 0 covers the lowest
// candidate positions, so the concatenation enumerates assignments in
// literally the same order the serial recursion would — firing order, null
// naming, and every ChaseStats firing count are bit-identical at any thread
// count.

// Per-depth probe column sets are statically determined by the join order
// (constants plus variables bound by earlier atoms), so the indexes every
// worker will probe can be built once, up front, instead of stampeding the
// lazy build inside the fan-out.
void PrebuildProbeIndexes(const std::vector<Atom>& atoms,
                          const std::vector<std::size_t>& order,
                          const Instance& db) {
  std::set<std::string, std::less<>> bound;
  for (std::size_t depth = 0; depth < order.size(); ++depth) {
    const Atom& atom = atoms[order[depth]];
    if (depth > 0) {
      const instance::RelationInstance* rel = db.Find(atom.relation);
      if (rel != nullptr && atom.terms.size() == rel->arity()) {
        instance::RelationInstance::ColumnSet cols;
        for (std::size_t i = 0; i < atom.terms.size(); ++i) {
          const Term& term = atom.terms[i];
          if (term.kind() == Term::Kind::kConstant ||
              (term.kind() == Term::Kind::kVariable &&
               bound.count(term.name()) > 0)) {
            cols.push_back(i);
          }
        }
        // Prefix probes are served by the sealed columnar segment when one
        // is current; building the hash index too would be pure waste.
        bool segment_serves = !cols.empty() &&
                              cols.back() == cols.size() - 1 &&
                              rel->SegmentCurrent();
        if (!cols.empty() && !segment_serves) rel->EnsureIndex(cols);
      }
    }
    for (const Term& t : atom.terms) {
      if (t.kind() == Term::Kind::kVariable) bound.insert(t.name());
    }
  }
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::micro>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Fans the candidate list out over the pool; results come back concatenated
// in candidate order. `stats` collects the fan-out telemetry (never null
// here — parallel matching only runs inside a ChaseRun or ComputeCore).
std::vector<Assignment> MatchPartitioned(
    const std::vector<Atom>& atoms, const std::vector<std::size_t>& order,
    const Instance& db,
    const instance::RelationInstance::TupleRefs& candidates,
    common::ThreadPool& pool, ChaseStats* stats, obs::Context* obs,
    const obs::CancelToken* cancel) {
  PrebuildProbeIndexes(atoms, order, db);
  std::size_t chunks = std::min(pool.size(), candidates.size());
  std::vector<std::vector<Assignment>> partial(chunks);
  std::vector<double> busy(chunks, 0.0);
  auto region_start = std::chrono::steady_clock::now();
  pool.ParallelFor(
      candidates.size(),
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        // Stop requests skip whole chunks; MatchIndexedRec handles the
        // finer-grained unwind inside a chunk already underway.
        if (cancel != nullptr && cancel->stop_requested()) return;
        auto start = std::chrono::steady_clock::now();
        obs::ObsSpan span(obs, "chase.match.worker");
        span.SetAttribute("chunk", chunk);
        span.SetAttribute("candidates", end - begin);
        instance::RelationInstance::TupleRefs slice(
            candidates.begin() + static_cast<std::ptrdiff_t>(begin),
            candidates.begin() + static_cast<std::ptrdiff_t>(end));
        Assignment assignment;
        MatchIndexedRec(atoms, order, 0, db, &slice, cancel, &assignment,
                        &partial[chunk], /*limit=*/0);
        span.SetAttribute("assignments", partial[chunk].size());
        busy[chunk] = MicrosSince(start);
      });
  stats->parallel_wall_us += MicrosSince(region_start);
  ++stats->parallel_regions;
  stats->parallel_tasks += chunks;
  std::size_t total = 0;
  for (const auto& p : partial) total += p.size();
  std::vector<Assignment> out;
  out.reserve(total);
  for (auto& p : partial) {
    for (Assignment& a : p) out.push_back(std::move(a));
  }
  for (double b : busy) stats->parallel_busy_us += b;
  return out;
}

// Worth fanning out only when every worker gets a few candidates; below
// this the chunk setup dominates the probes it saves.
bool WorthParallel(const common::ThreadPool* pool, std::size_t candidates) {
  return pool != nullptr && candidates >= pool->size() * 2 &&
         candidates >= 4;
}

// Depth-0 anchored match over rows [begin, end) of a hybrid DeltaView —
// the log/slice analogue of handing MatchIndexedRec an anchor slice.
// Slice-backed rows are materialized one at a time into a scratch tuple
// inside ForEachRow, so the delta never has to exist as a ref vector.
void MatchViewAnchored(const std::vector<Atom>& atoms,
                       const std::vector<std::size_t>& order,
                       const Instance& db, const instance::DeltaView& view,
                       std::size_t begin, std::size_t end,
                       const obs::CancelToken* cancel, Assignment* assignment,
                       std::vector<Assignment>* out) {
  const Atom& atom = atoms[order[0]];
  const instance::RelationInstance* rel = db.Find(atom.relation);
  if (rel == nullptr || atom.terms.size() != rel->arity()) return;
  view.ForEachRow(begin, end, [&](const Tuple& tuple) {
    if (cancel != nullptr && cancel->stop_requested()) return false;
    std::vector<const std::string*> newly_bound;
    if (MatchTuple(atom, tuple, assignment, &newly_bound)) {
      MatchIndexedRec(atoms, order, 1, db, nullptr, cancel, assignment, out,
                      /*limit=*/0);
    }
    for (const std::string* v : newly_bound) assignment->erase(*v);
    return true;
  });
}

// MatchPartitioned over a DeltaView: identical chunking and ordered
// concatenation, with each chunk enumerating its view rows in place.
std::vector<Assignment> MatchPartitionedView(
    const std::vector<Atom>& atoms, const std::vector<std::size_t>& order,
    const Instance& db, const instance::DeltaView& view,
    common::ThreadPool& pool, ChaseStats* stats, obs::Context* obs,
    const obs::CancelToken* cancel) {
  PrebuildProbeIndexes(atoms, order, db);
  std::size_t chunks = std::min(pool.size(), view.size());
  std::vector<std::vector<Assignment>> partial(chunks);
  std::vector<double> busy(chunks, 0.0);
  auto region_start = std::chrono::steady_clock::now();
  pool.ParallelFor(
      view.size(),
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        if (cancel != nullptr && cancel->stop_requested()) return;
        auto start = std::chrono::steady_clock::now();
        obs::ObsSpan span(obs, "chase.match.worker");
        span.SetAttribute("chunk", chunk);
        span.SetAttribute("candidates", end - begin);
        Assignment assignment;
        MatchViewAnchored(atoms, order, db, view, begin, end, cancel,
                          &assignment, &partial[chunk]);
        span.SetAttribute("assignments", partial[chunk].size());
        busy[chunk] = MicrosSince(start);
      });
  stats->parallel_wall_us += MicrosSince(region_start);
  ++stats->parallel_regions;
  stats->parallel_tasks += chunks;
  std::size_t total = 0;
  for (const auto& p : partial) total += p.size();
  std::vector<Assignment> out;
  out.reserve(total);
  for (auto& p : partial) {
    for (Assignment& a : p) out.push_back(std::move(a));
  }
  for (double b : busy) stats->parallel_busy_us += b;
  return out;
}

// Parallel top-level match (seed empty, no limit): computes the depth-0
// candidate list exactly as the serial recursion would — probe on the
// first atom's constant columns, else a full ordered scan — then fans out.
std::vector<Assignment> MatchAtomsIndexedTop(
    const std::vector<Atom>& atoms, const Instance& db,
    common::ThreadPool* pool, ChaseStats* stats, obs::Context* obs,
    const obs::CancelToken* cancel) {
  if (pool == nullptr || atoms.empty()) {
    return MatchAtomsIndexed(atoms, db, Assignment(), /*limit=*/0, cancel);
  }
  std::vector<std::size_t> order = PlanAtomOrder(atoms, db, Assignment());
  const Atom& first = atoms[order[0]];
  const instance::RelationInstance* rel = db.Find(first.relation);
  if (rel == nullptr || first.terms.size() != rel->arity()) return {};
  instance::RelationInstance::ColumnSet cols;
  Tuple key;
  for (std::size_t i = 0; i < first.terms.size(); ++i) {
    const Term& term = first.terms[i];
    if (term.kind() == Term::Kind::kConstant) {
      cols.push_back(i);
      key.push_back(term.value());
    } else if (term.kind() == Term::Kind::kFunction) {
      return {};
    }
  }
  instance::RelationInstance::TupleRefs candidates;
  if (cols.empty()) {
    candidates.reserve(rel->size());
    for (const Tuple& t : rel->tuples()) candidates.push_back(&t);
  } else {
    const instance::RelationInstance::TupleRefs* refs = rel->Probe(cols, key);
    if (refs == nullptr) return {};
    candidates = *refs;
  }
  if (!WorthParallel(pool, candidates.size())) {
    std::vector<Assignment> out;
    Assignment assignment;
    MatchIndexedRec(atoms, order, 0, db, &candidates, cancel, &assignment,
                    &out, /*limit=*/0);
    return out;
  }
  return MatchPartitioned(atoms, order, db, candidates, *pool, stats, obs,
                          cancel);
}

// Semi-naive delta match: only assignments where at least one body atom
// binds a tuple inserted since that relation's watermark. One pass per
// body-atom position — that atom enumerates its relation's delta while the
// rest probe as usual — deduplicated across passes (an assignment can touch
// two delta tuples). `delta_tuples` accumulates the delta sizes consumed
// (per distinct body relation); zero means the caller could have skipped.
// With a pool, each per-atom anchor pass fans its delta out chunk-wise; the
// dedupe set sorts assignments, so pass-internal order never leaks out
// anyway.
std::vector<Assignment> MatchAtomsDelta(
    const std::vector<Atom>& atoms, const Instance& db,
    const std::map<std::string, std::size_t, std::less<>>& watermarks,
    std::size_t* delta_tuples, common::ThreadPool* pool = nullptr,
    ChaseStats* stats = nullptr, obs::Context* obs = nullptr,
    const obs::CancelToken* cancel = nullptr) {
  // Deltas arrive as hybrid views: whole segment runs sealed past the
  // watermark come back as zero-copy slices, the rest as log refs. The
  // per-pass dedupe set below already canonicalizes assignment order, so
  // the parts' differing enumeration order never leaks out.
  std::map<std::string, instance::DeltaView, std::less<>> deltas;
  for (const Atom& atom : atoms) {
    if (deltas.count(atom.relation) > 0) continue;
    const instance::RelationInstance* rel = db.Find(atom.relation);
    auto it = watermarks.find(atom.relation);
    std::size_t mark = it == watermarks.end() ? 0 : it->second;
    deltas[atom.relation] =
        rel == nullptr ? instance::DeltaView{} : rel->DeltaViewSince(mark);
  }
  std::set<Assignment> dedupe;
  std::set<std::string, std::less<>> counted;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const instance::DeltaView& delta = deltas[atoms[i].relation];
    if (delta.empty()) continue;
    if (counted.insert(atoms[i].relation).second) {
      *delta_tuples += delta.size();
    }
    std::vector<std::size_t> order =
        PlanAtomOrder(atoms, db, Assignment(), i);
    std::vector<Assignment> found;
    if (WorthParallel(pool, delta.size())) {
      found = MatchPartitionedView(atoms, order, db, delta, *pool, stats,
                                   obs, cancel);
    } else {
      Assignment assignment;
      MatchViewAnchored(atoms, order, db, delta, 0, delta.size(), cancel,
                        &assignment, &found);
    }
    for (Assignment& a : found) dedupe.insert(std::move(a));
  }
  return std::vector<Assignment>(dedupe.begin(), dedupe.end());
}

}  // namespace

std::vector<Assignment> MatchAtoms(const std::vector<Atom>& atoms,
                                   const Instance& database,
                                   std::size_t limit) {
  return MatchAtomsIndexed(atoms, database, Assignment(), limit);
}

std::vector<Assignment> MatchAtomsNaive(const std::vector<Atom>& atoms,
                                        const Instance& database,
                                        std::size_t limit) {
  std::vector<Assignment> out;
  Assignment assignment;
  MatchAtomsNaiveRec(atoms, 0, database, &assignment, &out, limit);
  return out;
}

namespace {

// Compact, metric-name-safe rule labels: "<kind><index>:<body>-><head>"
// with relation lists joined by '+'. These key both ChaseStats::rules and
// the mirrored `chase.rule.<label>.*` metric family.
std::string JoinRelations(const std::vector<Atom>& atoms) {
  std::string out;
  for (const Atom& atom : atoms) {
    if (!out.empty()) out += '+';
    out += atom.relation;
  }
  return out;
}

std::string RuleLabel(const logic::Tgd& tgd, std::size_t index) {
  return "tgd" + std::to_string(index) + ":" + JoinRelations(tgd.body) +
         "->" + JoinRelations(tgd.head);
}

std::string RuleLabel(const logic::SoTgdClause& clause, std::size_t index) {
  return "so" + std::to_string(index) + ":" + JoinRelations(clause.body) +
         "->" + JoinRelations(clause.head);
}

std::string RuleLabel(const logic::Egd& egd, std::size_t index) {
  return "egd" + std::to_string(index) + ":" + JoinRelations(egd.body) + ":" +
         egd.left + "=" + egd.right;
}

// Shared machinery for first- and second-order chases over a combined
// (source + target) instance.
// Data-exchange mode: tgd/clause bodies match against `source` (read-only)
// and heads materialize into `target` — the two vocabularies never collide
// even when schemas share relation names. Closure mode (ChaseInstance)
// passes source == nullptr, making the target serve both roles.
class ChaseRun {
 public:
  ChaseRun(const Instance* source, Instance target,
           const ChaseOptions& options)
      : source_(source), target_(std::move(target)), options_(options) {
    if (options.trust_first_null_label) {
      next_label_ = options.first_null_label;
    } else {
      std::int64_t source_max =
          source_ == nullptr ? -1 : source_->MaxNullLabel();
      next_label_ = std::max(options.first_null_label,
                             std::max(source_max, target_.MaxNullLabel()) + 1);
    }
  }

  // Arms incremental-maintenance mode: restore/export semi-naive state
  // through `session`, seed the provenance map with the previous call's
  // derivations, and book every target-side insert/erase into `net_change`.
  void AttachSession(ChaseSessionState* session, Provenance provenance,
                     FactDelta* net_change) {
    session_ = session;
    provenance_ = std::move(provenance);
    net_change_ = net_change;
  }

  const Instance& read_db() const {
    return source_ == nullptr ? target_ : *source_;
  }
  Instance& target() { return target_; }
  ChaseStats& stats() { return stats_; }
  Provenance& provenance() { return provenance_; }
  std::optional<ChaseBreach>& breach() { return breach_; }

  // Runs tgd clauses and egds to fixpoint. The clause list is in SO-clause
  // form; plain tgds are represented with existentials pre-skolemized by
  // the caller or passed via `existentials` handling below.
  Status Run(const std::vector<logic::SoTgdClause>& clauses,
             const std::vector<logic::Tgd>& fo_tgds,
             const std::vector<logic::Egd>& egds) {
    obs::ObsSpan span(options_.obs, "chase.run");
    span.SetAttribute("so_clauses", clauses.size());
    span.SetAttribute("tgds", fo_tgds.size());
    span.SetAttribute("egds", egds.size());
    span.SetAttribute("source_tuples", read_db().TotalTuples());
    // The naive oracle always runs serial; otherwise an explicit
    // ChaseOptions::threads wins over the MM2_THREADS environment variable,
    // and both default to 1 (the PR-3 serial executor, byte-for-byte).
    std::size_t workers =
        options_.naive ? 1 : common::ResolveThreadCount(options_.threads);
    stats_.workers = workers;
    if (workers > 1) pool_ = std::make_unique<common::ThreadPool>(workers);
    span.SetAttribute("workers", workers);
    obs::ScopedLatency latency(options_.obs, "chase.run.latency_us");
    // Arm the watchdog. One writable token serves every layer: the caller's
    // options_.cancel when provided, else a run-local token when any budget
    // is set, else nothing at all — the unarmed path hands nullptr to the
    // match layer, so the default chase never even loads an atomic.
    const bool budgeted = options_.wall_budget_us > 0 ||
                          options_.tuple_budget > 0 ||
                          options_.rss_budget_kb > 0;
    watch_token_ = options_.cancel != nullptr
                       ? options_.cancel
                       : (budgeted ? &own_token_ : nullptr);
    breach_.reset();
    const auto run_start = std::chrono::steady_clock::now();
    const std::size_t initial_tuples = target_.TotalTuples();
    // Heartbeat surfaces: gauge references are resolved once (they are
    // stable for the registry's lifetime) so per-round refreshes are plain
    // atomic stores; the event log adds a record only while enabled.
    obs::EventLog* events =
        options_.obs == nullptr ? nullptr : &options_.obs->events;
    obs::Gauge* g_round = nullptr;
    obs::Gauge* g_delta = nullptr;
    obs::Gauge* g_total = nullptr;
    obs::Gauge* g_nulls = nullptr;
    obs::Gauge* g_round_us = nullptr;
    obs::Gauge* g_rss = nullptr;
    if (options_.obs != nullptr) {
      obs::MetricsRegistry& m = options_.obs->metrics;
      g_round = &m.GetGauge("chase.progress.round");
      g_delta = &m.GetGauge("chase.progress.delta_tuples");
      g_total = &m.GetGauge("chase.progress.total_tuples");
      g_nulls = &m.GetGauge("chase.progress.nulls_created");
      g_round_us = &m.GetGauge("chase.progress.round_us");
      g_rss = &m.GetGauge("chase.progress.rss_kb");
    }
    instance::IndexStats storage0 = target_.IndexStatsTotal();
    if (source_ != nullptr) storage0 += source_->IndexStatsTotal();
    // Columnar storage: resolve the knob once (naive oracle always runs
    // indexed), snapshot segment counters BEFORE the initial seal so the
    // startup seals are attributed to this run, then seal every relation.
    segmented_ = !options_.naive &&
                 instance::ResolveStorageMode(options_.storage) ==
                     instance::StorageMode::kSegmented;
    stats_.segmented = segmented_;
    instance::SegmentOpStats seg0;
    // A resumed session pass is delta-sized: relations whose segments were
    // dirtied by maintenance erases defer their O(n) reseal (probes decline
    // to the index path) instead of paying a full rebuild per maintain.
    const bool lazy_seal = session_ != nullptr && session_->initialized;
    if (segmented_) {
      seg0 = target_.SegmentStatsTotal();
      if (source_ != nullptr) seg0 += source_->SegmentStatsTotal();
      target_.SetSegmentPolicy(instance::ResolveSegmentPolicy(
          options_.segment_tier_ratio, options_.segment_max_runs));
      target_.SetStorageMode(instance::StorageMode::kSegmented);
      target_.PrepareAllSegments(lazy_seal);
      if (source_ != nullptr) source_->PrepareAllSegments(lazy_seal);
    }
    span.SetAttribute("storage_mode", segmented_ ? "segmented" : "indexed");
    // One RuleStats slot per constraint, in iteration order: SO-clauses,
    // then tgds, then egds. Labels are assigned up front so rules that
    // never fire still show up (with zero cost) in the attribution.
    stats_.rules.clear();
    stats_.rules.resize(clauses.size() + fo_tgds.size() + egds.size());
    // Resumed runs restore the semi-naive frontier captured by the previous
    // call instead of resetting it: rules re-match only above their old
    // watermarks, and Skolem terms keep resolving to the nulls they already
    // invented. A rule-count mismatch means the session was captured for a
    // different rule set — start fresh rather than misattribute watermarks.
    if (session_ != nullptr && session_->initialized &&
        session_->watermarks.size() == stats_.rules.size()) {
      watermarks_ = std::move(session_->watermarks);
      matched_once_ = session_->matched_once;
      skolem_ = std::move(session_->skolem);
      next_label_ = std::max(next_label_, session_->next_label);
    } else {
      watermarks_.assign(stats_.rules.size(), {});
      matched_once_.assign(stats_.rules.size(), false);
    }
    {
      std::size_t slot = 0;
      for (std::size_t i = 0; i < clauses.size(); ++i) {
        stats_.rules[slot++].label = RuleLabel(clauses[i], i);
      }
      for (std::size_t i = 0; i < fo_tgds.size(); ++i) {
        stats_.rules[slot++].label = RuleLabel(fo_tgds[i], i);
      }
      for (std::size_t i = 0; i < egds.size(); ++i) {
        stats_.rules[slot++].label = RuleLabel(egds[i], i);
      }
    }
    // Stratified scheduler (null analysis_ => disabled; the flat path pays
    // one pointer compare per rule per round). The analysis' rule list is
    // built in the same slot order as stats_.rules, so indices line up; a
    // count mismatch means the caller attached an analysis of a different
    // rule set, in which case scheduling is silently disabled rather than
    // risking a wrong skip.
    analysis_ = options_.analysis;
    if (analysis_ != nullptr &&
        analysis_->rules.size() != stats_.rules.size()) {
      analysis_ = nullptr;
    }
    if (analysis_ != nullptr) SetUpStrata();
    // Times one rule's matching+firing for the current round and books the
    // aggregate-counter deltas into its RuleStats slot.
    auto attributed = [this](RuleStats& rule,
                             auto&& fire) -> Result<bool> {
      std::size_t matched0 = stats_.assignments_matched;
      std::size_t firings0 = stats_.tgd_firings;
      std::size_t nulls0 = stats_.nulls_created;
      std::size_t unified0 = stats_.egd_unifications;
      auto start = std::chrono::steady_clock::now();
      Result<bool> fired = fire();
      double us =
          std::chrono::duration_cast<
              std::chrono::duration<double, std::micro>>(
              std::chrono::steady_clock::now() - start)
              .count();
      rule.wall_us += us;
      rule.round_us.push_back(us);
      rule.triggers_tested += stats_.assignments_matched - matched0;
      rule.firings += stats_.tgd_firings - firings0 +
                      stats_.egd_unifications - unified0;
      rule.nulls_created += stats_.nulls_created - nulls0;
      rule.unifications += stats_.egd_unifications - unified0;
      if (fired.ok() && *fired) ++rule.rounds_active;
      return fired;
    };
    bool changed = true;
    std::size_t rounds = 0;
    // Under stratified scheduling a quiet round may simply mean the active
    // strata reached fixpoint while later strata still await activation —
    // keep looping until every stratum is done (each quiet round retires at
    // least one stratum, so this terminates).
    while (changed || (analysis_ != nullptr && !AllStrataDone())) {
      if (++rounds > options_.max_rounds) {
        // The hard stop nobody asked for: attach the flight recorder so the
        // error names what the chase was doing when it ran away.
        std::string msg = "chase exceeded max_rounds (" +
                          std::to_string(options_.max_rounds) + ")";
        if (events != nullptr) {
          std::string dump = events->DumpRecent();
          if (!dump.empty()) msg += "\n" + dump;
        }
        return Status::Internal(msg);
      }
      changed = false;
      obs::ObsSpan round_span(options_.obs, "chase.round");
      round_span.SetAttribute("round", rounds);
      const auto round_start = std::chrono::steady_clock::now();
      std::size_t round_firings0 = stats_.tgd_firings;
      std::size_t round_nulls0 = stats_.nulls_created;
      std::size_t round_unified0 = stats_.egd_unifications;
      std::size_t round_matched0 = stats_.assignments_matched;
      std::size_t round_delta0 = stats_.delta_tuples;
      if (analysis_ != nullptr) {
        stratum_ran_.assign(stats_.strata_count, 0);
        stratum_changed_.assign(stats_.strata_count, 0);
      }
      std::size_t rule_index = 0;
      for (const logic::SoTgdClause& clause : clauses) {
        std::size_t slot = rule_index++;
        if (SkipByStratum(slot)) continue;
        MM2_ASSIGN_OR_RETURN(
            bool fired, attributed(stats_.rules[slot], [&] {
              return FireSoClause(clause, slot);
            }));
        changed |= fired;
        NoteStratumResult(slot, fired);
      }
      for (const logic::Tgd& tgd : fo_tgds) {
        std::size_t slot = rule_index++;
        if (SkipByStratum(slot)) continue;
        MM2_ASSIGN_OR_RETURN(bool fired,
                             attributed(stats_.rules[slot],
                                        [&] { return FireTgd(tgd, slot); }));
        changed |= fired;
        NoteStratumResult(slot, fired);
      }
      for (const logic::Egd& egd : egds) {
        std::size_t slot = rule_index++;
        if (SkipByStratum(slot)) continue;
        MM2_ASSIGN_OR_RETURN(bool fired,
                             attributed(stats_.rules[slot],
                                        [&] { return FireEgd(egd, slot); }));
        changed |= fired;
        NoteStratumResult(slot, fired);
      }
      ++stats_.rounds;
      if (analysis_ != nullptr) RetireStrata();
      // Re-seal at the round boundary: the tuples this round inserted merge
      // into each relation's sealed segment, so next round's prefix probes
      // and retain batches run against current columns again. Resumed
      // passes keep deferring erase-dirtied rebuilds here too.
      if (segmented_) target_.PrepareAllSegments(lazy_seal);
      round_span.SetAttribute("tgd_firings",
                              stats_.tgd_firings - round_firings0);
      round_span.SetAttribute("nulls_created",
                              stats_.nulls_created - round_nulls0);
      round_span.SetAttribute("egd_unifications",
                              stats_.egd_unifications - round_unified0);
      round_span.SetAttribute("assignments_matched",
                              stats_.assignments_matched - round_matched0);
      // ---- Round-boundary heartbeat + watchdog -------------------------
      // Everything below is skipped on the bare path (no obs, no budgets)
      // except two steady_clock reads per round — noise next to a round's
      // match work.
      const std::size_t total_tuples = target_.TotalTuples();
      const std::uint64_t derived =
          total_tuples > initial_tuples
              ? static_cast<std::uint64_t>(total_tuples - initial_tuples)
              : 0;
      const double round_us =
          std::chrono::duration_cast<
              std::chrono::duration<double, std::micro>>(
              std::chrono::steady_clock::now() - round_start)
              .count();
      const std::size_t round_delta = stats_.delta_tuples - round_delta0;
      const bool events_on = events != nullptr && events->enabled();
      // One /proc read per round, and only when someone is watching (the
      // event log) or the rss budget needs the number.
      double rss_kb = -1;
      if (events_on || options_.rss_budget_kb > 0) {
        rss_kb = obs::CurrentRssKb();
      }
      if (g_round != nullptr) {
        g_round->Set(static_cast<std::int64_t>(rounds));
        g_delta->Set(static_cast<std::int64_t>(round_delta));
        g_total->Set(static_cast<std::int64_t>(total_tuples));
        g_nulls->Set(static_cast<std::int64_t>(stats_.nulls_created));
        g_round_us->Set(static_cast<std::int64_t>(round_us + 0.5));
        if (rss_kb >= 0) g_rss->Set(static_cast<std::int64_t>(rss_kb));
      }
      if (events_on) {
        std::vector<obs::EventField> heartbeat = {
            obs::F("round", static_cast<std::uint64_t>(rounds)),
            obs::F("delta", static_cast<std::uint64_t>(round_delta)),
            obs::F("total_tuples", static_cast<std::uint64_t>(total_tuples)),
            obs::F("nulls", static_cast<std::uint64_t>(stats_.nulls_created)),
            obs::F("round_us", round_us), obs::F("rss_kb", rss_kb)};
        if (analysis_ != nullptr) {
          // The scheduling frontier: the earliest stratum still making (or
          // awaiting) progress, plus how many are already retired.
          heartbeat.push_back(obs::F(
              "stratum", static_cast<std::uint64_t>(StratumFrontier())));
          heartbeat.push_back(obs::F(
              "strata_done", static_cast<std::uint64_t>(StrataDoneCount())));
        }
        events->Emit(obs::EventLevel::kInfo, "chase.heartbeat",
                     std::move(heartbeat));
      }
      if (watch_token_ != nullptr) {
        const std::uint64_t wall_us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - run_start)
                .count());
        if (options_.tuple_budget > 0 && derived > options_.tuple_budget) {
          RecordBreach("tuples", options_.tuple_budget, derived, rounds);
        } else if (options_.wall_budget_us > 0 &&
                   wall_us > options_.wall_budget_us) {
          RecordBreach("wall_us", options_.wall_budget_us, wall_us, rounds);
        } else if (options_.rss_budget_kb > 0) {
          if (rss_kb < 0) rss_kb = obs::CurrentRssKb();
          if (rss_kb > static_cast<double>(options_.rss_budget_kb)) {
            RecordBreach("rss_kb", options_.rss_budget_kb,
                         static_cast<std::uint64_t>(rss_kb), rounds);
          }
        }
        if (watch_token_->stop_requested()) {
          if (!breach_.has_value()) {
            // An external controller tripped the shared token (possibly
            // mid-round — the matchers already unwound); surface it with
            // the same machinery as a budget stop.
            breach_.emplace();
            breach_->kind = "cancel";
            breach_->round = rounds;
          }
          break;
        }
      }
    }
    if (breach_.has_value()) FinishBreach(events, &span);
    // Re-export the resume state. A breached run stopped mid-fixpoint, so
    // its frontier is not a safe resume point — invalidate instead.
    if (session_ != nullptr) {
      session_->watermarks = std::move(watermarks_);
      session_->matched_once = matched_once_;
      session_->skolem = std::move(skolem_);
      session_->next_label = next_label_;
      session_->initialized = !breach_.has_value();
    }
    instance::IndexStats storage1 = target_.IndexStatsTotal();
    if (source_ != nullptr) storage1 += source_->IndexStatsTotal();
    stats_.index_probes = storage1.probes - storage0.probes;
    stats_.index_probe_hits = storage1.probe_hits - storage0.probe_hits;
    stats_.index_builds = storage1.builds - storage0.builds;
    if (segmented_) {
      instance::SegmentOpStats seg1 = target_.SegmentStatsTotal();
      if (source_ != nullptr) seg1 += source_->SegmentStatsTotal();
      stats_.segment = seg1 - seg0;
      // Candidate-sort compares from the batched retain pre-pass are booked
      // chase-locally (they never touch a relation's counters).
      stats_.segment += retain_seg_;
      stats_.segment_shape = target_.SegmentShapeTotal();
      if (source_ != nullptr) stats_.segment_shape += source_->SegmentShapeTotal();
      span.SetAttribute("segment_probes", stats_.segment.probes);
      span.SetAttribute("segment_compares", stats_.segment.compares);
    }
    if (pool_ != nullptr) {
      common::ThreadPoolStats pool_stats = pool_->Stats();
      stats_.parallel_steals = pool_stats.stolen;
      stats_.pool_peak_queue = pool_stats.peak_queue;
      span.SetAttribute("parallel_regions", stats_.parallel_regions);
      span.SetAttribute("parallel_tasks", stats_.parallel_tasks);
    }
    span.SetAttribute("rounds", stats_.rounds);
    span.SetAttribute("target_tuples", target_.TotalTuples());
    span.SetAttribute("index_probes", stats_.index_probes);
    span.SetAttribute("delta_tuples", stats_.delta_tuples);
    return Status::OK();
  }

 private:
  Value FreshNull() {
    ++stats_.nulls_created;
    return Value::LabeledNull(next_label_++);
  }

  // ---- Stratified scheduling ---------------------------------------------
  // Strata indices are the analysis' topological order, so upstream strata
  // always carry smaller indices and a single ascending pass lets
  // retirement cascade within one round boundary.
  void SetUpStrata() {
    const std::size_t strata = analysis_->strata.size();
    stats_.strata_count = strata;
    stratum_of_.resize(stats_.rules.size());
    for (std::size_t i = 0; i < stats_.rules.size(); ++i) {
      stratum_of_[i] = analysis_->rules[i].stratum;
      stats_.rules[i].stratum = static_cast<int>(analysis_->rules[i].stratum);
    }
    stratum_upstream_.assign(strata, {});
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (const analysis::RuleEdge& e : analysis_->rule_edges) {
      std::size_t from = analysis_->rules[e.from].stratum;
      std::size_t to = analysis_->rules[e.to].stratum;
      if (from != to && seen.insert({from, to}).second) {
        stratum_upstream_[to].push_back(from);
      }
    }
    stratum_done_.assign(strata, 0);
    stratum_active_.assign(strata, 1);
    RefreshActivation();
  }

  bool UpstreamDone(std::size_t s) const {
    for (std::size_t u : stratum_upstream_[s]) {
      if (!stratum_done_[u]) return false;
    }
    return true;
  }

  // Exchange mode defers a stratum until its upstream cone is quiescent
  // (late activation); closure mode runs everything that is not retired —
  // deferring there can permute null naming and firing attribution, which
  // would break bit-identity with the flat schedule.
  void RefreshActivation() {
    const bool closure = source_ == nullptr;
    for (std::size_t s = 0; s < stratum_active_.size(); ++s) {
      stratum_active_[s] =
          !stratum_done_[s] && (closure || UpstreamDone(s)) ? 1 : 0;
    }
  }

  bool AllStrataDone() const {
    for (char done : stratum_done_) {
      if (!done) return false;
    }
    return true;
  }

  std::size_t StrataDoneCount() const {
    std::size_t count = 0;
    for (char done : stratum_done_) count += done ? 1 : 0;
    return count;
  }

  std::size_t StratumFrontier() const {
    for (std::size_t s = 0; s < stratum_done_.size(); ++s) {
      if (!stratum_done_[s]) return s;
    }
    return stratum_done_.size();
  }

  // True when rule `slot` must not be matched this round. Both skip kinds
  // are provably empty passes under the flat schedule (see ChaseOptions),
  // counted separately so `chase.strata.*` shows where the saving came
  // from.
  bool SkipByStratum(std::size_t slot) {
    if (analysis_ == nullptr) return false;
    const std::size_t s = stratum_of_[slot];
    if (stratum_done_[s]) {
      ++stats_.strata_skips_retired;
      return true;
    }
    if (!stratum_active_[s]) {
      ++stats_.strata_skips_inactive;
      return true;
    }
    stratum_ran_[s] = 1;
    return false;
  }

  void NoteStratumResult(std::size_t slot, bool fired) {
    if (analysis_ != nullptr && fired) {
      stratum_changed_[stratum_of_[slot]] = 1;
    }
  }

  // Round-boundary retirement: a stratum whose whole upstream cone is done
  // and whose rules all ran this round without changing anything has
  // reached its final fixpoint — no future round can feed it new input.
  void RetireStrata() {
    for (std::size_t s = 0; s < stratum_done_.size(); ++s) {
      if (!stratum_done_[s] && stratum_ran_[s] && !stratum_changed_[s] &&
          UpstreamDone(s)) {
        stratum_done_[s] = 1;
      }
    }
    RefreshActivation();
  }

  // One body-matching pass for rule `rule_index` plus the watermark
  // snapshot that makes it repeatable. The snapshot is taken BEFORE
  // matching, so tuples a rule inserts while firing land above it and get
  // reprocessed next round. Callers commit via CommitWatermarks once every
  // returned assignment has actually been processed — tgds commit right
  // after matching, egds only after a violation-free pass (a unification
  // invalidates the remaining assignments, which must be re-derived).
  struct BodyMatch {
    std::vector<Assignment> assignments;
    std::map<std::string, std::size_t, std::less<>> watermarks;
    bool delta_pass = false;
  };

  std::map<std::string, std::size_t, std::less<>> SnapshotWatermarks(
      const std::vector<Atom>& atoms, const Instance& db) const {
    std::map<std::string, std::size_t, std::less<>> snap;
    for (const Atom& atom : atoms) {
      if (snap.count(atom.relation) > 0) continue;
      const instance::RelationInstance* rel = db.Find(atom.relation);
      snap.emplace(atom.relation, rel == nullptr ? 0 : rel->Watermark());
    }
    return snap;
  }

  BodyMatch MatchBody(std::size_t rule_index, const std::vector<Atom>& atoms,
                      const Instance& db) {
    BodyMatch out;
    out.watermarks = SnapshotWatermarks(atoms, db);
    if (options_.naive) {
      out.assignments = MatchAtomsNaive(atoms, db);
    } else if (options_.semi_naive && matched_once_[rule_index]) {
      out.delta_pass = true;
      std::size_t consumed = 0;
      out.assignments =
          MatchAtomsDelta(atoms, db, watermarks_[rule_index], &consumed,
                          pool_.get(), &stats_, options_.obs, watch_token_);
      stats_.delta_tuples += consumed;
      if (consumed == 0) ++stats_.delta_skips;
    } else {
      out.assignments = MatchAtomsIndexedTop(atoms, db, pool_.get(), &stats_,
                                             options_.obs, watch_token_);
      if (options_.semi_naive) {
        // The first full pass consumes the whole extension as its delta.
        for (const auto& [name, mark] : out.watermarks) {
          (void)mark;
          const instance::RelationInstance* rel = db.Find(name);
          if (rel != nullptr) stats_.delta_tuples += rel->size();
        }
      }
    }
    stats_.assignments_matched += out.assignments.size();
    return out;
  }

  void CommitWatermarks(std::size_t rule_index, BodyMatch& match) {
    watermarks_[rule_index] = std::move(match.watermarks);
    matched_once_[rule_index] = true;
  }

  // Evaluates a head term under `assignment`, interpreting function terms
  // through the Skolem table. When `invent` is false, a missing Skolem
  // entry returns nullopt instead of creating a null.
  std::optional<Value> EvalTerm(const Term& term, const Assignment& assignment,
                                bool invent) {
    switch (term.kind()) {
      case Term::Kind::kConstant:
        return term.value();
      case Term::Kind::kVariable: {
        auto it = assignment.find(term.name());
        if (it != assignment.end()) return it->second;
        // A head-only variable in a non-skolemized tgd: caller handles it.
        return std::nullopt;
      }
      case Term::Kind::kFunction: {
        std::vector<Value> args;
        args.reserve(term.args().size());
        for (const Term& arg : term.args()) {
          std::optional<Value> v = EvalTerm(arg, assignment, invent);
          if (!v.has_value()) return std::nullopt;
          args.push_back(std::move(*v));
        }
        auto key = std::make_pair(term.name(), std::move(args));
        auto it = skolem_.find(key);
        if (it != skolem_.end()) return it->second;
        if (!invent) return std::nullopt;
        Value null = FreshNull();
        skolem_.emplace(std::move(key), null);
        return null;
      }
    }
    return std::nullopt;
  }

  // Evaluates all head atoms of a clause; returns nullopt when some Skolem
  // value does not exist yet and `invent` is false.
  std::optional<std::vector<Fact>> EvalHead(const std::vector<Atom>& head,
                                            const Assignment& assignment,
                                            bool invent) {
    std::vector<Fact> facts;
    facts.reserve(head.size());
    for (const Atom& atom : head) {
      Fact fact;
      fact.relation = atom.relation;
      fact.tuple.reserve(atom.terms.size());
      for (const Term& t : atom.terms) {
        std::optional<Value> v = EvalTerm(t, assignment, invent);
        if (!v.has_value()) return std::nullopt;
        fact.tuple.push_back(std::move(*v));
      }
      facts.push_back(std::move(fact));
    }
    return facts;
  }

  bool AllPresent(const std::vector<Fact>& facts) const {
    for (const Fact& f : facts) {
      const instance::RelationInstance* rel = target_.Find(f.relation);
      if (rel == nullptr || !rel->Contains(f.tuple)) return false;
    }
    return true;
  }

  Witness WitnessOf(const std::vector<Atom>& body,
                    const Assignment& assignment) {
    Witness witness;
    for (const Atom& atom : body) {
      Fact fact;
      fact.relation = atom.relation;
      fact.tuple.reserve(atom.terms.size());
      for (const Term& t : atom.terms) {
        std::optional<Value> v = EvalTerm(t, assignment, /*invent=*/false);
        fact.tuple.push_back(v.value_or(Value::Null()));
      }
      witness.push_back(std::move(fact));
    }
    return witness;
  }

  // Books `witness` as a support of `fact` into the provenance map and —
  // for session chases — the source->target dependents index. Sessions
  // call this on every supporting trigger, fired or probe-satisfied, so
  // the recorded derivations are complete: deletion maintenance can treat
  // a fact whose witnesses all died as genuinely underivable.
  void RecordWitness(const Fact& fact, Witness witness) {
    if (session_ != nullptr) {
      for (const Fact& s : witness) {
        session_->dependents[s].push_back(fact);
      }
    }
    provenance_.Record(fact, std::move(witness));
  }

  // Consumes `facts`: tuples are moved into the target unless provenance
  // tracking still needs the fact afterwards.
  Result<bool> InsertFacts(std::vector<Fact>& facts,
                           const std::vector<Atom>& body,
                           const Assignment& assignment) {
    bool inserted_any = false;
    for (Fact& f : facts) {
      if (!target_.HasRelation(f.relation)) {
        target_.DeclareRelation(f.relation, f.tuple.size());
      }
      instance::RelationInstance* rel = target_.FindMutable(f.relation);
      if (rel->arity() != f.tuple.size()) {
        return Status::InvalidArgument("arity mismatch on '" + f.relation +
                                       "' during chase");
      }
      bool inserted = options_.track_provenance
                          ? rel->Insert(f.tuple)
                          : rel->Insert(std::move(f.tuple));
      inserted_any |= inserted;
      // Sessions also record the witness for an already-present fact (a
      // multi-atom head can be partially satisfied), keeping the support
      // index complete.
      if (options_.track_provenance && (inserted || session_ != nullptr)) {
        RecordWitness(f, WitnessOf(body, assignment));
        if (inserted && net_change_ != nullptr) ++(*net_change_)[f];
      }
    }
    if (inserted_any) ++stats_.tgd_firings;
    return inserted_any;
  }

  // True when head evaluation is a pure lookup: no Skolem/function terms,
  // so EvalHead cannot invent nulls and the restricted-chase satisfaction
  // probe degenerates to ground-tuple membership. Only such heads may take
  // the batched anti-join path.
  static bool HeadBatchable(const std::vector<Atom>& head) {
    if (head.empty()) return false;
    for (const Atom& atom : head) {
      for (const Term& t : atom.terms) {
        if (t.kind() == Term::Kind::kFunction) return false;
      }
    }
    return true;
  }

  // Restricted-chase firing with the per-assignment head-satisfaction probe
  // replaced by one sorted anti-join per target relation against the sealed
  // segments. Sound because the probe is cost-only for existential-free
  // heads: a head already present when the serial walk reaches it either
  // (a) predates this pass — then the pre-pass marks it present and both
  // paths skip — or (b) was inserted earlier in this very pass — then the
  // pre-pass misses it but InsertFacts degenerates to a duplicate Insert,
  // which counts no firing and records no provenance, exactly like the
  // serial skip. Firing order, counters, null naming, and the final
  // instance are bit-identical to the serial walk.
  Result<bool> FireBatchedRetain(
      const std::vector<Atom>& head, const std::vector<Atom>& body,
      const std::vector<Assignment>& assignments,
      const std::function<std::string()>& unbound_error) {
    const std::size_t n = assignments.size();
    std::vector<std::vector<Fact>> facts(n);
    // Head evaluation is read-only here (no invention, no Skolem table
    // writes), and each worker owns a disjoint slice of pre-sized slots, so
    // the fan-out is race-free and the concatenation positional. An unbound
    // head variable stops the batch at the lowest offending index so the
    // serial error behavior (earlier assignments fire, then the error
    // surfaces) is preserved exactly.
    std::atomic<std::size_t> first_unbound{n};
    auto eval_range = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (i >= first_unbound.load(std::memory_order_relaxed)) return;
        std::optional<std::vector<Fact>> f =
            EvalHead(head, assignments[i], /*invent=*/false);
        if (!f.has_value()) {
          std::size_t cur = first_unbound.load(std::memory_order_relaxed);
          while (i < cur &&
                 !first_unbound.compare_exchange_weak(cur, i)) {
          }
          return;
        }
        facts[i] = std::move(*f);
      }
    };
    if (WorthParallel(pool_.get(), n)) {
      auto region_start = std::chrono::steady_clock::now();
      pool_->ParallelFor(n,
                         [&](std::size_t begin, std::size_t end,
                             std::size_t) { eval_range(begin, end); });
      stats_.parallel_wall_us += MicrosSince(region_start);
      ++stats_.parallel_regions;
      stats_.parallel_tasks += std::min(pool_->size(), n);
    } else {
      eval_range(0, n);
    }
    const std::size_t usable = first_unbound.load();
    // Group candidate tuples per target relation, sort each group (compares
    // booked chase-locally — they never touch a relation's counters), and
    // resolve the whole group with one merge walk over the segments.
    std::size_t total = 0;
    for (std::size_t i = 0; i < usable; ++i) total += facts[i].size();
    std::vector<char> fact_present(total, 0);
    std::map<std::string,
             std::vector<std::pair<const Tuple*, std::size_t>>, std::less<>>
        groups;
    {
      std::size_t flat = 0;
      for (std::size_t i = 0; i < usable; ++i) {
        for (const Fact& f : facts[i]) {
          groups[f.relation].emplace_back(&f.tuple, flat++);
        }
      }
    }
    for (auto& [relation, items] : groups) {
      const instance::RelationInstance* rel = target_.Find(relation);
      if (rel == nullptr) continue;  // absent relation: nothing is present
      std::uint64_t* compares = &retain_seg_.compares;
      std::sort(items.begin(), items.end(),
                [compares](const auto& a, const auto& b) {
                  ++*compares;
                  return *a.first < *b.first;
                });
      std::vector<const Tuple*> cands;
      cands.reserve(items.size());
      for (const auto& item : items) cands.push_back(item.first);
      std::vector<char> present;
      rel->RetainExisting(cands, &present);
      for (std::size_t k = 0; k < items.size(); ++k) {
        if (present[k] != 0) fact_present[items[k].second] = 1;
      }
    }
    // Serial in-order walk: fire exactly the assignments whose head is not
    // fully present yet. This is the only mutating stage.
    bool changed = false;
    std::size_t flat = 0;
    for (std::size_t i = 0; i < usable; ++i) {
      const std::size_t base = flat;
      flat += facts[i].size();
      bool all = true;
      for (std::size_t j = 0; j < facts[i].size(); ++j) {
        if (fact_present[base + j] == 0) {
          all = false;
          break;
        }
      }
      // Sessions fall through even when every head fact is present:
      // InsertFacts degenerates to duplicate Inserts but still books the
      // witnesses, keeping the support index complete.
      if (all && session_ == nullptr) continue;
      MM2_ASSIGN_OR_RETURN(bool inserted,
                           InsertFacts(facts[i], body, assignments[i]));
      changed |= inserted;
    }
    if (usable < n) return Status::Internal(unbound_error());
    return changed;
  }

  Result<bool> FireSoClause(const logic::SoTgdClause& clause,
                            std::size_t rule_index) {
    bool changed = false;
    BodyMatch match = MatchBody(rule_index, clause.body, read_db());
    CommitWatermarks(rule_index, match);
    // Premise equalities can unify mid-pass (state-dependent), so only
    // equality-free clauses with lookup-only heads take the batched path.
    if (segmented_ && options_.restricted && clause.equalities.empty() &&
        HeadBatchable(clause.head) && !match.assignments.empty()) {
      return FireBatchedRetain(clause.head, clause.body, match.assignments,
                               [&clause] {
                                 return "unbound head variable in SO-tgd "
                                        "clause: " +
                                        clause.ToString();
                               });
    }
    for (const Assignment& assignment : match.assignments) {
      // Premise equalities under Skolem semantics: two distinct constants
      // act as a filter (the match simply does not fire); when a labeled
      // null is involved we unify — the canonical interpretation where the
      // constrained Skolem functions agree.
      bool filtered_out = false;
      for (const auto& [l, r] : clause.equalities) {
        std::optional<Value> lv = EvalTerm(l, assignment, /*invent=*/true);
        std::optional<Value> rv = EvalTerm(r, assignment, /*invent=*/true);
        if (!lv.has_value() || !rv.has_value()) {
          return Status::Internal("unbound term in SO-tgd equality");
        }
        if (*lv == *rv) continue;
        if (!lv->is_labeled_null() && !rv->is_labeled_null()) {
          filtered_out = true;
          break;
        }
        if (session_ != nullptr) {
          session_->unification_witnesses.push_back(
              WitnessOf(clause.body, assignment));
        }
        MM2_RETURN_IF_ERROR(UnifyValues(*lv, *rv));
        changed = true;
      }
      if (filtered_out) continue;
      if (options_.restricted) {
        std::optional<std::vector<Fact>> existing =
            EvalHead(clause.head, assignment, /*invent=*/false);
        if (existing.has_value() && AllPresent(*existing)) {
          // Book the satisfied trigger for session chases (see FireTgd).
          if (session_ != nullptr && options_.track_provenance) {
            for (const Fact& f : *existing) {
              RecordWitness(f, WitnessOf(clause.body, assignment));
            }
          }
          continue;
        }
      }
      std::optional<std::vector<Fact>> facts =
          EvalHead(clause.head, assignment, /*invent=*/true);
      if (!facts.has_value()) {
        return Status::Internal("unbound head variable in SO-tgd clause: " +
                                clause.ToString());
      }
      MM2_ASSIGN_OR_RETURN(bool inserted,
                           InsertFacts(*facts, clause.body, assignment));
      changed |= inserted;
    }
    return changed;
  }

  Result<bool> FireTgd(const logic::Tgd& tgd, std::size_t rule_index) {
    bool changed = false;
    std::set<std::string> existentials = tgd.ExistentialVariables();
    BodyMatch match = MatchBody(rule_index, tgd.body, read_db());
    CommitWatermarks(rule_index, match);
    // Existential-free heads are fully ground under each assignment, so
    // the MatchAtomsIndexed satisfaction probe is exactly a membership
    // test — batchable as one anti-join per relation.
    if (segmented_ && options_.restricted && existentials.empty() &&
        HeadBatchable(tgd.head) && !match.assignments.empty()) {
      return FireBatchedRetain(tgd.head, tgd.body, match.assignments,
                               [&tgd] {
                                 return "unbound head variable in tgd: " +
                                        tgd.ToString();
                               });
    }
    for (Assignment assignment : match.assignments) {
      if (options_.restricted) {
        // Satisfied already? Look for an extension of the assignment that
        // covers the head atoms in the target.
        std::vector<Assignment> extension;
        if (options_.naive) {
          Assignment probe = assignment;
          MatchAtomsNaiveRec(tgd.head, 0, target_, &probe, &extension, 1);
        } else {
          extension = MatchAtomsIndexed(tgd.head, target_, assignment, 1);
        }
        if (!extension.empty()) {
          // Session chases book the satisfied trigger too: the probe's
          // extension binds the head existentials to the satisfying
          // values, naming the exact facts this trigger supports.
          if (session_ != nullptr && options_.track_provenance) {
            std::optional<std::vector<Fact>> satisfied =
                EvalHead(tgd.head, extension.front(), /*invent=*/false);
            if (satisfied.has_value()) {
              for (const Fact& f : *satisfied) {
                RecordWitness(f, WitnessOf(tgd.body, assignment));
              }
            }
          }
          continue;
        }
      }
      for (const std::string& e : existentials) {
        assignment[e] = FreshNull();
      }
      std::optional<std::vector<Fact>> facts =
          EvalHead(tgd.head, assignment, /*invent=*/false);
      if (!facts.has_value()) {
        return Status::Internal("unbound head variable in tgd: " +
                                tgd.ToString());
      }
      MM2_ASSIGN_OR_RETURN(bool inserted,
                           InsertFacts(*facts, tgd.body, assignment));
      changed |= inserted;
    }
    return changed;
  }

  Result<bool> FireEgd(const logic::Egd& egd, std::size_t rule_index) {
    bool changed = false;
    while (true) {
      bool fired = false;
      BodyMatch match = MatchBody(rule_index, egd.body, target_);
      for (const Assignment& assignment : match.assignments) {
        auto li = assignment.find(egd.left);
        auto ri = assignment.find(egd.right);
        if (li == assignment.end() || ri == assignment.end()) {
          return Status::InvalidArgument("egd equality over unbound var: " +
                                         egd.ToString());
        }
        if (li->second == ri->second) continue;
        if (session_ != nullptr) {
          session_->unification_witnesses.push_back(
              WitnessOf(egd.body, assignment));
        }
        MM2_RETURN_IF_ERROR(UnifyValues(li->second, ri->second));
        fired = true;
        changed = true;
        break;  // instance changed; recompute matches
      }
      if (!fired) {
        // Every assignment at or below the snapshot is violation-free, so
        // only now may the delta watermark advance. Unification rewrites
        // (erase + reinsert) land above it and re-match next pass.
        CommitWatermarks(rule_index, match);
        break;
      }
    }
    return changed;
  }

  // Equates two values: a labeled null is rewritten to the other value
  // everywhere (preferring to keep constants); two distinct constants are
  // an inconsistency.
  Status UnifyValues(const Value& a, const Value& b) {
    Value from;
    Value to;
    if (a.is_labeled_null()) {
      from = a;
      to = b;
    } else if (b.is_labeled_null()) {
      from = b;
      to = a;
    } else {
      return Status::Inconsistent("egd forces distinct constants equal: " +
                                  a.ToString() + " = " + b.ToString());
    }
    ++stats_.egd_unifications;
    // Rewrite every relation extension of the target (nulls only ever
    // live there).
    for (auto& [name, rel] : target_.relations_mutable()) {
      std::vector<Tuple> rewritten;
      std::vector<Tuple> removed;
      for (const Tuple& t : rel.tuples()) {
        bool hit = false;
        Tuple nt = t;
        for (Value& v : nt) {
          if (v == from) {
            v = to;
            hit = true;
          }
        }
        if (hit) {
          removed.push_back(t);
          rewritten.push_back(std::move(nt));
        }
      }
      for (const Tuple& t : removed) {
        rel.Erase(t);
        if (net_change_ != nullptr) --(*net_change_)[Fact{name, t}];
      }
      for (Tuple& t : rewritten) {
        if (net_change_ != nullptr) {
          Fact fact{name, t};
          if (rel.Insert(std::move(t))) ++(*net_change_)[fact];
        } else {
          rel.Insert(std::move(t));
        }
      }
    }
    // Rewrite Skolem table images (and arguments).
    std::map<std::pair<std::string, std::vector<Value>>, Value> new_skolem;
    for (auto& [key, value] : skolem_) {
      auto new_key = key;
      for (Value& v : new_key.second) {
        if (v == from) v = to;
      }
      Value new_value = (value == from) ? to : value;
      auto it = new_skolem.find(new_key);
      if (it != new_skolem.end() && !(it->second == new_value)) {
        // Two entries collapse to the same key with different values:
        // unify those too (recursion depth bounded by #nulls).
        MM2_RETURN_IF_ERROR(UnifyValues(it->second, new_value));
        return Status::OK();
      }
      new_skolem.emplace(std::move(new_key), std::move(new_value));
    }
    skolem_ = std::move(new_skolem);
    if (options_.track_provenance) provenance_.RewriteValue(from, to);
    // Keep the unification journal in the merged vocabulary, so deletion
    // maintenance compares its facts against current target/source facts.
    if (session_ != nullptr) {
      for (Witness& witness : session_->unification_witnesses) {
        for (Fact& fact : witness) {
          for (Value& v : fact.tuple) {
            if (v == from) v = to;
          }
        }
      }
      // The dependents index names target facts on its value side; keep
      // them in the merged vocabulary so deletion maintenance finds their
      // provenance entries. (Keys are source facts — never rewritten.)
      for (auto& [source_fact, facts] : session_->dependents) {
        for (Fact& fact : facts) {
          for (Value& v : fact.tuple) {
            if (v == from) v = to;
          }
        }
      }
    }
    return Status::OK();
  }

  // Books a budget breach and trips the shared stop token, so in-flight
  // (possibly parallel) match work unwinds through the same switch the
  // round loop is about to poll. First breach wins, like the token itself.
  void RecordBreach(const char* kind, std::uint64_t limit,
                    std::uint64_t observed, std::size_t round) {
    if (breach_.has_value()) return;
    breach_.emplace();
    breach_->kind = kind;
    breach_->limit = limit;
    breach_->observed = observed;
    breach_->round = round;
    watch_token_->RequestStop(std::string("chase ") + kind +
                              " budget breached");
  }

  // Completes a pending breach once the loop has unwound: attributes the
  // stop to the costliest rule, renders the human-readable diagnostic, and
  // appends the flight-recorder dump so the evidence travels with it.
  void FinishBreach(obs::EventLog* events, obs::ObsSpan* span) {
    const RuleStats* dominant = nullptr;
    for (const RuleStats& rule : stats_.rules) {
      if (dominant == nullptr || rule.wall_us > dominant->wall_us) {
        dominant = &rule;
      }
    }
    if (dominant != nullptr) breach_->dominant_rule = dominant->label;
    std::string diag = "chase stopped early: ";
    if (breach_->kind == "cancel") {
      diag += "cancelled";
      std::string reason = watch_token_->reason();
      if (!reason.empty()) diag += " (" + reason + ")";
    } else {
      diag += breach_->kind + " budget breached (observed " +
              std::to_string(breach_->observed) + " > limit " +
              std::to_string(breach_->limit) + ")";
    }
    diag += " at round " + std::to_string(breach_->round);
    if (dominant != nullptr) {
      char cost[64];
      std::snprintf(cost, sizeof(cost), " (%zu firings, %.1fus)",
                    dominant->firings, dominant->wall_us);
      diag += "; dominant rule: " + dominant->label + cost;
    }
    // Emit before dumping, so the breach itself is the ring's last record.
    if (events != nullptr && events->enabled()) {
      events->Emit(
          obs::EventLevel::kWarn, "chase.breach",
          {obs::F("kind", breach_->kind), obs::F("limit", breach_->limit),
           obs::F("observed", breach_->observed),
           obs::F("round", static_cast<std::uint64_t>(breach_->round)),
           obs::F("dominant_rule", breach_->dominant_rule)});
    }
    if (events != nullptr) {
      std::string dump = events->DumpRecent();
      if (!dump.empty()) diag += "\n" + dump;
    }
    breach_->diagnostic = std::move(diag);
    if (span != nullptr) span->SetAttribute("breach", breach_->kind);
  }

  const Instance* source_;  // nullptr => closure mode (read the target)
  Instance target_;
  const ChaseOptions& options_;
  ChaseStats stats_;
  Provenance provenance_;
  std::int64_t next_label_ = 0;
  std::map<std::pair<std::string, std::vector<Value>>, Value> skolem_;
  // Semi-naive state, indexed like stats_.rules: the per-relation insert-log
  // watermark as of each rule's last committed matching pass, and whether
  // the rule has completed its first (full) pass.
  std::vector<std::map<std::string, std::size_t, std::less<>>> watermarks_;
  std::vector<bool> matched_once_;
  // Non-null only when the resolved thread count exceeds 1. Workers live
  // for the whole run; each partitioned match is one fork/join region.
  std::unique_ptr<common::ThreadPool> pool_;
  // Columnar-storage state: the resolved ChaseOptions::storage knob, and
  // the chase-local segment counters (batched-retain candidate sorting)
  // that no single relation can book for itself.
  bool segmented_ = false;
  instance::SegmentOpStats retain_seg_;
  // Stratified-scheduler state, all empty when analysis_ is null. Indexed
  // by stratum id (= the analysis' topological order).
  const analysis::MappingAnalysis* analysis_ = nullptr;
  std::vector<std::size_t> stratum_of_;  // rule slot -> stratum id
  std::vector<std::vector<std::size_t>> stratum_upstream_;  // strict deps
  std::vector<char> stratum_done_;     // retired forever
  std::vector<char> stratum_active_;   // eligible to match this round
  std::vector<char> stratum_ran_;      // matched during the current round
  std::vector<char> stratum_changed_;  // changed state this round
  // Incremental-maintenance hooks, both null outside ResumeChase: the
  // caller-owned resume state (restored at the top of Run, re-exported at
  // the bottom) and the run's net target-side fact delta.
  ChaseSessionState* session_ = nullptr;
  FactDelta* net_change_ = nullptr;
  // Watchdog state. `watch_token_` is non-null only while armed (the
  // caller's external token, or own_token_ when a budget is set); the match
  // layer receives it as const and only ever polls it.
  obs::CancelToken own_token_;
  obs::CancelToken* watch_token_ = nullptr;
  std::optional<ChaseBreach> breach_;
};

// Mirrors a finished run's ChaseStats into the attached registry, so every
// collector sees one consistent `chase.*` counter family no matter which
// entry point ran the chase.
void MirrorStats(obs::Context* obs, const ChaseStats& stats,
                 std::size_t provenance_entries, bool budget_stop) {
  if (obs == nullptr) return;
  obs::MetricsRegistry& m = obs->metrics;
  m.GetCounter("chase.runs").Increment();
  if (budget_stop) m.GetCounter("chase.budget_stops").Increment();
  m.GetCounter("chase.rounds").Increment(stats.rounds);
  m.GetCounter("chase.tgd_firings").Increment(stats.tgd_firings);
  m.GetCounter("chase.nulls_created").Increment(stats.nulls_created);
  m.GetCounter("chase.egd_unifications").Increment(stats.egd_unifications);
  m.GetCounter("chase.assignments_matched")
      .Increment(stats.assignments_matched);
  m.GetCounter("chase.provenance_entries").Increment(provenance_entries);
  m.GetCounter("index.probes").Increment(stats.index_probes);
  m.GetCounter("index.probe_hits").Increment(stats.index_probe_hits);
  m.GetCounter("index.builds").Increment(stats.index_builds);
  m.GetCounter("chase.delta.tuples").Increment(stats.delta_tuples);
  m.GetCounter("chase.delta.rule_skips").Increment(stats.delta_skips);
  // The parallel family only materializes for parallel runs, so serial
  // sessions keep their exact pre-existing `stats` output (and `explain`
  // omits the parallelism section entirely).
  if (stats.workers > 1) {
    m.GetGauge("chase.parallel.workers")
        .Set(static_cast<std::int64_t>(stats.workers));
    m.GetCounter("chase.parallel.regions").Increment(stats.parallel_regions);
    m.GetCounter("chase.parallel.tasks").Increment(stats.parallel_tasks);
    m.GetCounter("chase.parallel.steals").Increment(stats.parallel_steals);
    m.GetGauge("chase.parallel.queue_depth_peak")
        .Set(static_cast<std::int64_t>(stats.pool_peak_queue));
    m.GetCounter("chase.parallel.busy_us")
        .Increment(static_cast<std::uint64_t>(stats.parallel_busy_us + 0.5));
    m.GetCounter("chase.parallel.wall_us")
        .Increment(static_cast<std::uint64_t>(stats.parallel_wall_us + 0.5));
  }
  m.GetHistogram("chase.rounds_per_run",
                 {1, 2, 3, 5, 8, 13, 21, 50, 100, 1000, 10000})
      .Record(static_cast<double>(stats.rounds));
  // Columnar-storage family: materialized only for segmented runs, so
  // indexed sessions keep their exact pre-existing metric surface.
  if (stats.segmented) {
    m.GetGauge("storage.mode.segmented").Set(1);
    const instance::SegmentOpStats& seg = stats.segment;
    m.GetCounter("storage.segment.seals").Increment(seg.seals);
    m.GetCounter("storage.segment.sealed_rows").Increment(seg.sealed_rows);
    m.GetCounter("storage.segment.merges").Increment(seg.merges);
    m.GetCounter("storage.segment.merged_rows").Increment(seg.merged_rows);
    m.GetCounter("storage.segment.compares").Increment(seg.compares);
    m.GetCounter("storage.segment.probes").Increment(seg.probes);
    m.GetCounter("storage.segment.probe_hits").Increment(seg.probe_hits);
    m.GetCounter("storage.segment.skips").Increment(seg.skips);
    m.GetCounter("storage.segment.fallbacks").Increment(seg.fallbacks);
    m.GetCounter("storage.segment.retain_batches")
        .Increment(seg.retain_batches);
    m.GetCounter("storage.segment.retain_candidates")
        .Increment(seg.retain_candidates);
    m.GetCounter("storage.segment.retain_hits").Increment(seg.retain_hits);
    m.GetCounter("storage.segment.compactions").Increment(seg.compactions);
    m.GetCounter("storage.segment.delta_slices").Increment(seg.delta_slices);
    m.GetCounter("storage.segment.delta_slice_rows")
        .Increment(seg.delta_slice_rows);
    m.GetCounter("storage.segment.deferred_rebuilds")
        .Increment(seg.deferred_rebuilds);
    const instance::SegmentShape& shape = stats.segment_shape;
    m.GetGauge("storage.segment.live_segments")
        .Set(static_cast<std::int64_t>(shape.live_segments));
    m.GetGauge("storage.segment.tiers")
        .Set(static_cast<std::int64_t>(shape.tiers));
    m.GetGauge("storage.segment.tail_rows")
        .Set(static_cast<std::int64_t>(shape.tail_rows));
  }
  // Strata + foresight families: materialized only for analysis-scheduled
  // runs, so plain chases keep their exact pre-existing metric surface.
  if (stats.strata_count > 0) {
    m.GetGauge("chase.strata.count")
        .Set(static_cast<std::int64_t>(stats.strata_count));
    m.GetCounter("chase.strata.skips_inactive")
        .Increment(stats.strata_skips_inactive);
    m.GetCounter("chase.strata.skips_retired")
        .Increment(stats.strata_skips_retired);
    constexpr std::uint64_t kGaugeMax =
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
    m.GetGauge("chase.foresight.predicted_rounds")
        .Set(static_cast<std::int64_t>(
            std::min(stats.predicted_rounds, kGaugeMax)));
    m.GetGauge("chase.foresight.observed_rounds")
        .Set(static_cast<std::int64_t>(stats.rounds));
    m.GetGauge("chase.foresight.terminating")
        .Set(stats.predicted_terminating ? 1 : 0);
    if (stats.foresight_armed) {
      m.GetCounter("chase.foresight.armed").Increment();
    }
    // Per-stratum aggregates — obs::Profiler reads these back as the
    // StratumCost table of `explain`.
    std::map<int, std::pair<double, std::uint64_t>> per_stratum;  // wall, fire
    std::map<int, std::uint64_t> stratum_rules;
    for (const RuleStats& rule : stats.rules) {
      if (rule.stratum < 0) continue;
      per_stratum[rule.stratum].first += rule.wall_us;
      per_stratum[rule.stratum].second += rule.firings;
      ++stratum_rules[rule.stratum];
    }
    for (const auto& [stratum, cost] : per_stratum) {
      const std::string prefix =
          "chase.stratum." + std::to_string(stratum) + ".";
      m.GetCounter(prefix + "wall_us")
          .Increment(static_cast<std::uint64_t>(cost.first + 0.5));
      m.GetCounter(prefix + "firings").Increment(cost.second);
      m.GetGauge(prefix + "rules")
          .Set(static_cast<std::int64_t>(stratum_rules[stratum]));
    }
  }
  // Per-constraint attribution, keyed by rule label so repeated runs of the
  // same rule set accumulate. obs::Profiler parses this family back out of
  // the snapshot for `explain`'s ranked chase table.
  for (const RuleStats& rule : stats.rules) {
    const std::string prefix = "chase.rule." + rule.label + ".";
    m.GetCounter(prefix + "wall_us")
        .Increment(static_cast<std::uint64_t>(rule.wall_us + 0.5));
    m.GetCounter(prefix + "triggers").Increment(rule.triggers_tested);
    m.GetCounter(prefix + "firings").Increment(rule.firings);
    m.GetCounter(prefix + "nulls").Increment(rule.nulls_created);
    m.GetCounter(prefix + "rounds_active").Increment(rule.rounds_active);
    if (rule.stratum >= 0) {
      m.GetGauge(prefix + "stratum").Set(rule.stratum);
    }
    obs::Histogram& rounds_hist = m.GetHistogram(prefix + "round_us");
    for (double us : rule.round_us) rounds_hist.Record(us);
  }
  MirrorValueStats(obs);
}

// Distinct values across an instance — the `n` the analysis' polynomial
// bounds are evaluated at. Computed only when an analysis is attached.
std::uint64_t ActiveDomainSize(const Instance& db) {
  std::set<Value> values;
  for (const auto& [name, rel] : db.relations()) {
    (void)name;
    for (const Tuple& tuple : rel.tuples()) {
      for (const Value& v : tuple) values.insert(v);
    }
  }
  return values.size();
}

// Termination foresight: when the attached analysis says the rule set may
// not terminate and the caller armed no budget or stop switch of their
// own, arm a conservative tuple budget scaled to the input — a diverging
// chase then unwinds through the normal graceful-breach watchdog path
// instead of burning a core until max_rounds hard-errors. Emits the
// `chase.foresight` warning so the decision is visible in the log and the
// flight recorder. Returns whether a budget was armed.
bool ApplyForesight(ChaseOptions* options, std::size_t input_tuples) {
  if (options->analysis == nullptr || options->analysis->terminating()) {
    return false;
  }
  const bool guarded =
      options->wall_budget_us > 0 || options->tuple_budget > 0 ||
      options->rss_budget_kb > 0 || options->cancel != nullptr;
  if (guarded) return false;
  options->tuple_budget =
      std::max<std::size_t>(4096, 64 * std::max<std::size_t>(input_tuples, 1));
  if (options->obs != nullptr && options->obs->events.enabled()) {
    options->obs->events.Emit(
        obs::EventLevel::kWarn, "chase.foresight",
        {obs::F("termination", "potentially_non_terminating"),
         obs::F("cycle", Join(options->analysis->cycle, " -> ")),
         obs::F("auto_tuple_budget",
                static_cast<std::uint64_t>(options->tuple_budget))});
  }
  return true;
}

// Shared back half of both entry points: resolve `stratified` into an
// analysis, arm foresight, and remember what to stamp into ChaseStats.
struct AnalysisSetup {
  ChaseOptions options;  // the adjusted copy the run executes under
  std::optional<analysis::MappingAnalysis> owned;
  std::uint64_t domain = 0;
  bool armed = false;
};

void StampForesight(const AnalysisSetup& setup, ChaseStats* stats) {
  if (setup.options.analysis == nullptr) return;
  stats->predicted_terminating = setup.options.analysis->terminating();
  stats->predicted_rounds =
      setup.options.analysis->PredictedRounds(setup.domain);
  stats->foresight_armed = setup.armed;
}

}  // namespace

void MirrorValueStats(obs::Context* obs) {
  if (obs == nullptr) return;
  // Gauges, not counters: the pool is process-wide cumulative state, so each
  // mirror overwrites with the current totals instead of re-adding them.
  const instance::StringPool::Stats pool =
      instance::StringPool::Global().GetStats();
  obs::MetricsRegistry& m = obs->metrics;
  m.GetGauge("value.intern.strings")
      .Set(static_cast<std::int64_t>(pool.strings));
  m.GetGauge("value.intern.bytes").Set(static_cast<std::int64_t>(pool.bytes));
  m.GetGauge("value.intern.hits").Set(static_cast<std::int64_t>(pool.hits));
  m.GetGauge("value.intern.misses")
      .Set(static_cast<std::int64_t>(pool.misses));
  m.GetGauge("value.bytes_per_value")
      .Set(static_cast<std::int64_t>(sizeof(instance::Value)));
}

Result<ChaseResult> RunChase(const logic::Mapping& mapping,
                             const instance::Instance& source,
                             const ChaseOptions& options) {
  AnalysisSetup setup{options, std::nullopt, 0, false};
  if (setup.options.stratified && setup.options.analysis == nullptr) {
    setup.owned.emplace(analysis::AnalyzeMapping(mapping));
    setup.options.analysis = &*setup.owned;
  }
  if (setup.options.analysis != nullptr) {
    setup.domain = ActiveDomainSize(source);
    setup.armed = ApplyForesight(&setup.options, source.TotalTuples());
  }
  ChaseRun run(&source, Instance::EmptyFor(mapping.target()), setup.options);
  std::vector<logic::SoTgdClause> clauses;
  std::vector<logic::Tgd> fo_tgds;
  if (mapping.is_second_order()) {
    clauses = mapping.so_tgd().clauses;
  } else {
    fo_tgds = mapping.tgds();
    if (options.require_weak_acyclicity) {
      logic::AcyclicityReport report = logic::CheckWeakAcyclicity(fo_tgds);
      if (!report.weakly_acyclic) {
        return Status::Unsupported("chase may not terminate: " +
                                   report.ToString());
      }
    }
  }
  MM2_RETURN_IF_ERROR(run.Run(clauses, fo_tgds, mapping.target_egds()));

  ChaseResult result;
  result.stats = run.stats();
  result.provenance = std::move(run.provenance());
  result.target = std::move(run.target());
  result.breach = std::move(run.breach());
  StampForesight(setup, &result.stats);
  MirrorStats(options.obs, result.stats, result.provenance.size(),
              result.breach.has_value());
  return result;
}

Result<ChaseResult> ResumeChase(const logic::Mapping& mapping,
                                const instance::Instance& source,
                                instance::Instance target,
                                Provenance provenance,
                                ChaseSessionState* state,
                                FactDelta* net_change,
                                const ChaseOptions& options) {
  AnalysisSetup setup{options, std::nullopt, 0, false};
  // Provenance is the DRed substrate — a session without it cannot answer
  // deletions, so maintenance always records it.
  setup.options.track_provenance = true;
  // A resumed session already knows the next free null label (kept current
  // across calls, including labels smuggled in via source deltas), so the
  // O(|instance|) max-label sweep is skipped.
  if (state != nullptr && state->initialized) {
    setup.options.first_null_label =
        std::max(setup.options.first_null_label, state->next_label);
    setup.options.trust_first_null_label = true;
  }
  if (setup.options.stratified && setup.options.analysis == nullptr) {
    setup.owned.emplace(analysis::AnalyzeMapping(mapping));
    setup.options.analysis = &*setup.owned;
  }
  if (setup.options.analysis != nullptr) {
    setup.domain = ActiveDomainSize(source);
    setup.armed = ApplyForesight(&setup.options, source.TotalTuples());
  }
  ChaseRun run(&source, std::move(target), setup.options);
  run.AttachSession(state, std::move(provenance), net_change);
  std::vector<logic::SoTgdClause> clauses;
  std::vector<logic::Tgd> fo_tgds;
  if (mapping.is_second_order()) {
    clauses = mapping.so_tgd().clauses;
  } else {
    fo_tgds = mapping.tgds();
    if (options.require_weak_acyclicity) {
      logic::AcyclicityReport report = logic::CheckWeakAcyclicity(fo_tgds);
      if (!report.weakly_acyclic) {
        return Status::Unsupported("chase may not terminate: " +
                                   report.ToString());
      }
    }
  }
  MM2_RETURN_IF_ERROR(run.Run(clauses, fo_tgds, mapping.target_egds()));

  ChaseResult result;
  result.stats = run.stats();
  result.provenance = std::move(run.provenance());
  result.target = std::move(run.target());
  result.breach = std::move(run.breach());
  StampForesight(setup, &result.stats);
  MirrorStats(options.obs, result.stats, result.provenance.size(),
              result.breach.has_value());
  return result;
}

Result<ChaseResult> ChaseInstance(const std::vector<logic::Tgd>& tgds,
                                  const std::vector<logic::Egd>& egds,
                                  const instance::Instance& database,
                                  const ChaseOptions& options) {
  if (options.require_weak_acyclicity) {
    logic::AcyclicityReport report = logic::CheckWeakAcyclicity(tgds);
    if (!report.weakly_acyclic) {
      return Status::Unsupported("chase may not terminate: " +
                                 report.ToString());
    }
  }
  AnalysisSetup setup{options, std::nullopt, 0, false};
  if (setup.options.stratified && setup.options.analysis == nullptr) {
    setup.owned.emplace(analysis::AnalyzeClosure(tgds, egds));
    setup.options.analysis = &*setup.owned;
  }
  if (setup.options.analysis != nullptr) {
    setup.domain = ActiveDomainSize(database);
    setup.armed = ApplyForesight(&setup.options, database.TotalTuples());
  }
  ChaseRun run(nullptr, database, setup.options);
  MM2_RETURN_IF_ERROR(run.Run({}, tgds, egds));
  ChaseResult result;
  result.stats = run.stats();
  result.provenance = std::move(run.provenance());
  result.target = std::move(run.target());
  result.breach = std::move(run.breach());
  StampForesight(setup, &result.stats);
  MirrorStats(options.obs, result.stats, result.provenance.size(),
              result.breach.has_value());
  return result;
}

Result<std::vector<Tuple>> CertainAnswers(const logic::ConjunctiveQuery& query,
                                          const Instance& database) {
  MM2_RETURN_IF_ERROR(query.Validate());
  std::set<Tuple> answers;
  for (const Assignment& assignment : MatchAtoms(query.body, database)) {
    Tuple row;
    row.reserve(query.head.terms.size());
    bool has_null = false;
    for (const Term& t : query.head.terms) {
      Value v = t.is_constant() ? t.value() : assignment.at(t.name());
      if (v.is_labeled_null()) has_null = true;
      row.push_back(std::move(v));
    }
    if (!has_null) answers.insert(std::move(row));
  }
  return std::vector<Tuple>(answers.begin(), answers.end());
}

Result<std::vector<Tuple>> AllAnswers(const logic::ConjunctiveQuery& query,
                                      const Instance& database) {
  MM2_RETURN_IF_ERROR(query.Validate());
  std::set<Tuple> answers;
  for (const Assignment& assignment : MatchAtoms(query.body, database)) {
    Tuple row;
    row.reserve(query.head.terms.size());
    for (const Term& t : query.head.terms) {
      row.push_back(t.is_constant() ? t.value() : assignment.at(t.name()));
    }
    answers.insert(std::move(row));
  }
  return std::vector<Tuple>(answers.begin(), answers.end());
}

namespace {

// Renders an instance as a list of atoms whose labeled nulls become
// variables, so homomorphism search reduces to MatchAtoms.
std::vector<Atom> InstanceAsAtoms(const Instance& database) {
  std::vector<Atom> atoms;
  for (const auto& [name, rel] : database.relations()) {
    for (const Tuple& t : rel.tuples()) {
      Atom atom;
      atom.relation = name;
      for (const Value& v : t) {
        if (v.is_labeled_null()) {
          atom.terms.push_back(
              Term::Var("_n" + std::to_string(v.label())));
        } else {
          atom.terms.push_back(Term::Const(v));
        }
      }
      atoms.push_back(std::move(atom));
    }
  }
  return atoms;
}

}  // namespace

bool ExistsHomomorphism(const Instance& from, const Instance& to) {
  std::vector<Atom> atoms = InstanceAsAtoms(from);
  return !MatchAtoms(atoms, to, /*limit=*/1).empty();
}

instance::Instance ComputeCore(const Instance& database, obs::Context* obs,
                               std::size_t threads,
                               const obs::CancelToken* cancel) {
  obs::ObsSpan span(obs, "chase.core");
  span.SetAttribute("input_tuples", database.TotalTuples());
  obs::ScopedLatency latency(obs, "chase.core.latency_us");
  std::size_t workers = common::ResolveThreadCount(threads);
  std::unique_ptr<common::ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<common::ThreadPool>(workers);
  span.SetAttribute("workers", workers);
  std::size_t iterations = 0;
  Instance core = database;
  bool changed = true;
  while (changed) {
    if (cancel != nullptr && cancel->stop_requested()) break;
    changed = false;
    // Collect nulls and candidate replacement values.
    std::set<Value> nulls;
    std::set<Value> values;
    for (const auto& [name, rel] : core.relations()) {
      for (const Tuple& t : rel.tuples()) {
        for (const Value& v : t) {
          values.insert(v);
          if (v.is_labeled_null()) nulls.insert(v);
        }
      }
    }
    for (const Value& null : nulls) {
      // A stop request returns the current instance — still a valid
      // solution, just possibly short of the minimal core.
      if (cancel != nullptr && cancel->stop_requested()) break;
      // Only tuples containing `null` can move under the retraction;
      // single-column probes enumerate exactly those (and stay maintained
      // across the in-place rewrites below). Copies, not pointers: the
      // apply step mutates the relations.
      std::vector<std::pair<std::string, Tuple>> affected;
      {
        std::set<const Tuple*> seen;
        for (const auto& [name, rel] : core.relations()) {
          for (std::size_t c = 0; c < rel.arity(); ++c) {
            const instance::RelationInstance::TupleRefs* refs =
                rel.Probe({c}, {null});
            if (refs == nullptr) continue;
            for (const Tuple* t : *refs) {
              if (seen.insert(t).second) affected.emplace_back(name, *t);
            }
          }
        }
      }
      // Retraction h: null -> candidate, identity elsewhere. Valid if
      // h(core) is contained in core; unaffected tuples are fixpoints.
      auto retraction_valid = [&](const Value& candidate) {
        for (const auto& [name, t] : affected) {
          Tuple image = t;
          for (Value& v : image) {
            if (v == null) v = candidate;
          }
          if (!core.Find(name)->Contains(image)) return false;
        }
        return true;
      };
      // Serial scan stops at the first valid candidate in value order; the
      // parallel scan evaluates candidates partitioned across workers
      // (Contains is a const set lookup — safe concurrently) and then picks
      // the first valid one, so the applied retraction is identical.
      std::vector<Value> ordered(values.begin(), values.end());
      std::vector<char> valid_flags;
      if (pool != nullptr && ordered.size() >= workers * 2 &&
          !affected.empty()) {
        valid_flags.assign(ordered.size(), 0);
        pool->ParallelFor(
            ordered.size(),
            [&](std::size_t begin, std::size_t end, std::size_t) {
              for (std::size_t i = begin; i < end; ++i) {
                if (ordered[i] == null) continue;
                valid_flags[i] = retraction_valid(ordered[i]) ? 1 : 0;
              }
            });
      }
      for (std::size_t ci = 0; ci < ordered.size(); ++ci) {
        const Value& candidate = ordered[ci];
        if (candidate == null) continue;
        bool valid = valid_flags.empty() ? retraction_valid(candidate)
                                         : valid_flags[ci] != 0;
        if (valid) {
          // Apply in place: affected tuples collapse onto their images
          // (an image never equals another affected tuple — images no
          // longer contain `null`, affected tuples all do).
          for (const auto& [name, t] : affected) {
            Tuple image = t;
            for (Value& v : image) {
              if (v == null) v = candidate;
            }
            instance::RelationInstance* rel = core.FindMutable(name);
            rel->Erase(t);
            rel->Insert(std::move(image));
          }
          changed = true;
          ++iterations;
          break;
        }
      }
      if (changed) break;
    }
  }
  if (obs != nullptr) {
    obs->metrics.GetCounter("chase.core_iterations").Increment(iterations);
  }
  span.SetAttribute("iterations", iterations);
  span.SetAttribute("core_tuples", core.TotalTuples());
  return core;
}

}  // namespace mm2::chase
