#ifndef MM2_CHASE_CHASE_H_
#define MM2_CHASE_CHASE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "instance/instance.h"
#include "logic/formula.h"
#include "logic/mapping.h"

namespace mm2::obs {
struct Context;
class CancelToken;
}

namespace mm2::analysis {
struct MappingAnalysis;
}

namespace mm2::chase {

// A variable assignment produced by matching atoms against an instance.
using Assignment = std::map<std::string, instance::Value>;

// Finds every assignment of the variables in `atoms` such that each atom's
// image is a tuple of `database`. Constants in atoms must match exactly;
// repeated variables enforce equality. This is the workhorse behind tgd
// application and conjunctive-query evaluation. `limit` bounds the number
// of results (0 = unlimited).
//
// Index-backed: atoms are joined most-bound-first, each step probing the
// relation's on-demand hash index (RelationInstance::Probe) on the columns
// already bound instead of scanning the extension.
std::vector<Assignment> MatchAtoms(const std::vector<logic::Atom>& atoms,
                                   const instance::Instance& database,
                                   std::size_t limit = 0);

// The original nested-loop matcher, kept verbatim as the differential-
// testing oracle (`ChaseOptions::naive` routes the whole chase through it).
// Same contract as MatchAtoms; never touches indexes.
std::vector<Assignment> MatchAtomsNaive(const std::vector<logic::Atom>& atoms,
                                        const instance::Instance& database,
                                        std::size_t limit = 0);

// A fact is a (relation, tuple) pair; a witness is the list of source facts
// that fired the rule deriving a target fact (why-provenance, Section 5).
struct Fact {
  std::string relation;
  instance::Tuple tuple;

  bool operator==(const Fact&) const = default;
  bool operator<(const Fact& other) const {
    if (relation != other.relation) return relation < other.relation;
    return tuple < other.tuple;
  }
  std::string ToString() const;
};

using Witness = std::vector<Fact>;

// Why-provenance: every target fact maps to the witnesses that derived it.
class Provenance {
 public:
  void Record(const Fact& target, Witness witness);
  const std::vector<Witness>* WitnessesOf(const Fact& target) const;
  // Applies a value rewrite (null unification from an egd step) to both
  // sides of the provenance map.
  void RewriteValue(const instance::Value& from, const instance::Value& to);
  std::size_t size() const { return map_.size(); }

  // Full derivation map, fact -> recorded witnesses. The mutable overload
  // exists for incremental maintenance (DRed prunes dead witnesses and
  // drops unsupported facts in place); everything else should read.
  const std::map<Fact, std::vector<Witness>>& entries() const { return map_; }
  std::map<Fact, std::vector<Witness>>& mutable_entries() { return map_; }

 private:
  std::map<Fact, std::vector<Witness>> map_;
};

struct ChaseOptions {
  // Upper bound on chase rounds; exceeding it is an error (the tgd sets the
  // engine generates are weakly acyclic, so this is a safety net).
  std::size_t max_rounds = 10000;
  // Restricted (standard) chase: fire a tgd only when its head is not
  // already satisfied. The unrestricted variant is exposed for tests.
  bool restricted = true;
  // First label to use for invented nulls.
  std::int64_t first_null_label = 0;
  // Trust first_null_label outright instead of scanning source and target
  // for the max existing label (an O(|instance|) sweep). Set by resumed
  // sessions, which carry the counter across calls — the sweep would
  // otherwise dominate a delta-sized maintenance pass.
  bool trust_first_null_label = false;
  // Record why-provenance for every derived fact.
  bool track_provenance = false;
  // Refuse (Unsupported) first-order rule sets that are not weakly
  // acyclic, instead of running into max_rounds. s-t tgd mappings are
  // always weakly acyclic; this matters for intra-schema closures.
  bool require_weak_acyclicity = false;
  // Evaluation strategy. `naive` restores the original rescan-everything
  // nested-loop executor — the oracle path for differential testing; it
  // never probes indexes or consults deltas. Otherwise matching is
  // index-backed, and `semi_naive` (the default) additionally restricts a
  // rule's re-match after its first full pass to assignments where at least
  // one body atom binds a tuple from that relation's delta set (tuples
  // inserted since the rule's per-relation watermark).
  bool naive = false;
  bool semi_naive = true;
  // Worker threads for the partitioned match phase. 0 defers to the
  // MM2_THREADS environment variable, which defaults to 1 (serial — the
  // exact PR-3 code path). The parallel executor partitions each rule's
  // depth-0 candidates into contiguous chunks matched concurrently against
  // the immutable pre-fire snapshot and concatenates chunk results in
  // order, so firing order — and with it null naming, ChaseStats firing
  // counts, and egd semantics — is identical to the serial run at any
  // thread count. The naive oracle ignores this and always runs serial.
  std::size_t threads = 0;
  // Physical storage for the match/fire hot paths. kSegmented shadows each
  // relation with immutable sorted column-major segments (sealed at round
  // boundaries): bound-prefix probes binary-search the sorted view instead
  // of the hash index, and restricted-chase head checks for existential-free
  // rules run as one batched retain/anti-join pass per head relation. Both
  // are enumeration-order-preserving, so instance text, firing counters,
  // and null naming stay bit-identical to kIndexed (the differential
  // oracle). kDefault defers to the MM2_STORAGE environment variable; the
  // naive oracle ignores the knob entirely.
  instance::StorageMode storage = instance::StorageMode::kDefault;
  // LSM tier thresholds for the segmented run lists (see SegmentPolicy):
  // a freshly sealed tail run is merged into its predecessor only while
  // newest_rows * tier_ratio >= predecessor_rows, and at most max_runs
  // runs stay live. 0 defers to MM2_SEGMENT_TIER_RATIO / MM2_SEGMENT_MAX_RUNS
  // (defaults 4 / 6). Ignored under kIndexed.
  std::size_t segment_tier_ratio = 0;
  std::size_t segment_max_runs = 0;
  // --- Resource budgets (the watchdog; 0 = unlimited) --------------------
  // Soft limits checked at every round boundary. On breach the chase stops
  // *gracefully*: Run returns OK with ChaseResult::breach describing which
  // budget tripped and which rule dominated the run, and with partial
  // target/stats/provenance intact — a runaway mapping (tgds under target
  // constraints can legitimately diverge) yields diagnostics instead of
  // burning a core until max_rounds hard-errors.
  std::uint64_t wall_budget_us = 0;  // wall time since Run started
  std::size_t tuple_budget = 0;      // tuples derived into the target
  std::size_t rss_budget_kb = 0;     // VmRSS watermark of the process
  // --- Mapping introspection / stratified scheduling (opt-in) ------------
  // When `stratified` is set (or an `analysis` is attached), rules are
  // scheduled along the analysis' stratification instead of being matched
  // flat every round. Two provably output-identical skips apply:
  //   * retirement (all modes): once a stratum and its whole upstream cone
  //     are quiescent, its rules are never matched again — the skipped
  //     passes would have been empty delta-checks;
  //   * late activation (data-exchange mode only): a rule whose stratum
  //     still has non-quiescent upstream strata is not matched until the
  //     stratum activates. In exchange mode tgd/SO strata have no upstream
  //     (bodies read the immutable source), so only egds are deferred, and
  //     they first run against exactly the state the flat schedule shows
  //     them — instances, firing counters, and null naming stay
  //     bit-identical to the flat semi-naive chase. Closure mode gets
  //     retirement only, for the same bit-identity guarantee.
  // The skipped passes are reported as ChaseStats::strata_skips_* and the
  // `chase.strata.*` metric family; RuleStats and the heartbeat events
  // carry stratum labels. `analysis` must describe exactly the rule set
  // being chased (AnalyzeMapping for RunChase, AnalyzeClosure for
  // ChaseInstance; a mismatched rule count disables scheduling). Not
  // owned; must outlive the call. When `stratified` is set with a null
  // `analysis`, the chase computes one itself.
  //
  // Foresight: when the (provided or computed) analysis classifies the
  // rule set as potentially non-terminating and the caller armed no
  // budget or cancel token, the chase auto-arms a conservative tuple
  // budget (watchdog semantics: graceful stop with partial results) and
  // emits a `chase.foresight` warning event.
  bool stratified = false;
  const analysis::MappingAnalysis* analysis = nullptr;
  // Optional external stop switch (a server admission controller, a test).
  // The chase polls it at round boundaries and inside the (possibly
  // parallel) match path; budget breaches trip the same token, so every
  // layer unwinds through one mechanism. May outlive the call site's
  // ChaseOptions copy semantics: not owned.
  obs::CancelToken* cancel = nullptr;
  // Optional collector: when set, the chase opens a `chase.run` span with
  // one `chase.round` child per round, emits a `chase.heartbeat` event and
  // refreshes the `chase.progress.*` gauges every round, and mirrors
  // ChaseStats into the registry's `chase.*` counters on completion.
  obs::Context* obs = nullptr;
};

// Why a chase stopped before reaching its fixpoint: the breached budget (or
// "cancel" for an external stop), the limit and the observed value, plus
// the dominant rule by attributed wall time — the first thing to look at
// when a mapping runs away. `diagnostic` is the full human-readable report,
// including the flight-recorder dump when an event log was attached.
struct ChaseBreach {
  std::string kind;  // "tuples" | "wall_us" | "rss_kb" | "cancel"
  std::uint64_t limit = 0;
  std::uint64_t observed = 0;
  std::size_t round = 0;          // round boundary where the stop landed
  std::string dominant_rule;      // label of the costliest RuleStats entry
  std::string diagnostic;
};

// Per-constraint cost attribution: one entry per SO-clause/tgd/egd, in the
// order the chase iterates them. `label` is compact and metric-name-safe
// (e.g. "tgd0:Data->Left+Right"), so it doubles as the key segment of the
// mirrored `chase.rule.<label>.*` metrics that `explain` reads back.
struct RuleStats {
  std::string label;
  double wall_us = 0;               // time spent matching + firing this rule
  std::size_t triggers_tested = 0;  // body assignments examined
  std::size_t firings = 0;          // tgd firings (or egd unifications)
  std::size_t nulls_created = 0;
  std::size_t unifications = 0;
  std::size_t rounds_active = 0;    // rounds in which the rule changed state
  std::vector<double> round_us;     // wall time per chase round, in order
  int stratum = -1;                 // analysis stratum (-1: not stratified)
};

struct ChaseStats {
  std::size_t rounds = 0;
  std::size_t tgd_firings = 0;
  std::size_t nulls_created = 0;
  std::size_t egd_unifications = 0;
  // Body assignments found across all rule-matching calls (the quantity
  // that dominates chase cost).
  std::size_t assignments_matched = 0;
  // Storage-layer telemetry for this run, diffed from the instances'
  // cumulative IndexStats around Run(). Zero on the naive path.
  std::uint64_t index_probes = 0;
  std::uint64_t index_probe_hits = 0;
  std::uint64_t index_builds = 0;
  // Semi-naive bookkeeping: delta tuples fed to re-match passes (round 1
  // counts the whole extension — everything is delta initially), and
  // rule-round matchings skipped outright because every body delta was
  // empty.
  std::size_t delta_tuples = 0;
  std::size_t delta_skips = 0;
  // Parallel-executor telemetry, mirrored as `chase.parallel.*`. `workers`
  // is the resolved thread count (1 = serial run, the fields below stay 0).
  // busy/wall let `explain` derive speedup (busy/wall) and efficiency
  // (speedup/workers) for the parallelism section.
  std::size_t workers = 1;
  std::size_t parallel_regions = 0;     // partitioned match fan-outs
  std::size_t parallel_tasks = 0;       // chunks executed across regions
  std::uint64_t parallel_steals = 0;    // pool work-stealing events
  std::uint64_t pool_peak_queue = 0;    // max pending tasks observed
  double parallel_busy_us = 0;          // summed per-chunk worker time
  double parallel_wall_us = 0;          // summed fan-out wall time
  // Segment-storage telemetry, mirrored as `storage.segment.*`. `segmented`
  // records which backend ran; everything stays zero on indexed runs so
  // their stats/metric surface is untouched. `segment` is diffed from the
  // instances' cumulative SegmentOpStats around Run() (like index_probes)
  // plus the chase-side retain bookkeeping (candidate sorts).
  bool segmented = false;
  instance::SegmentOpStats segment;
  // End-of-run shape of the tiered run lists (summed over the target and,
  // in exchange mode, the sealed source), mirrored as `storage.segment.*`
  // gauges. Zero on indexed runs.
  instance::SegmentShape segment_shape;
  // Stratified-scheduling + foresight telemetry, mirrored as
  // `chase.strata.*` / `chase.foresight.*`. All zero (and the metric
  // families stay unmaterialized) unless ChaseOptions enabled the
  // scheduler.
  std::size_t strata_count = 0;
  std::size_t strata_skips_inactive = 0;  // passes deferred pre-activation
  std::size_t strata_skips_retired = 0;   // passes skipped after retirement
  std::uint64_t predicted_rounds = 0;     // analysis bound at this input
  bool predicted_terminating = true;
  bool foresight_armed = false;           // auto-armed conservative budget
  // Filled on every run; the profiler's per-constraint attribution source.
  std::vector<RuleStats> rules;
};

struct ChaseResult {
  instance::Instance target;
  ChaseStats stats;
  Provenance provenance;
  // Set when a resource budget (or an external CancelToken) stopped the
  // run before the fixpoint; target/stats/provenance hold the partial
  // state as of the last completed round.
  std::optional<ChaseBreach> breach;
};

// Runs the data-exchange chase: starting from `source`, fires the mapping's
// constraints to build a target instance that is a *universal solution* —
// labeled nulls stand for unknown existential values (Section 4). Works for
// both first-order mappings (s-t tgds) and second-order ones: function
// terms are interpreted by inventing one labeled null per distinct
// (function, arguments) combination, which is exactly the Skolem semantics.
// Target egds are then chased to enforce keys; two constants forced equal
// yields an Inconsistent error.
Result<ChaseResult> RunChase(const logic::Mapping& mapping,
                             const instance::Instance& source,
                             const ChaseOptions& options = {});

// ---- Incremental maintenance ---------------------------------------------
// Semi-naive chase state that survives a finished run, so a later call can
// resume matching where the last one stopped instead of re-deriving the
// whole target. Captured/restored by ResumeChase; owned by the caller
// (runtime::ExchangeSession) between calls.
struct ChaseSessionState {
  bool initialized = false;
  // Indexed like ChaseStats::rules (SO-clauses, then tgds, then egds): each
  // rule's per-relation insert-log watermark as of its last committed pass,
  // and whether its first full pass has completed.
  std::vector<std::map<std::string, std::size_t, std::less<>>> watermarks;
  std::vector<bool> matched_once;
  // Complete support index: source fact -> target facts holding a recorded
  // witness containing it. Session chases book a witness on EVERY
  // supporting trigger — fired or probe-satisfied — so after deletion
  // maintenance prunes dead witnesses, a target fact with zero remaining
  // witnesses is genuinely underivable and no re-derive chase pass is
  // needed. Egd unification rewrites the target-side fact names in place.
  std::map<Fact, std::vector<Fact>> dependents;
  // Skolem interpretation table: (function, args) -> labeled null. Kept so
  // a resumed SO chase reuses the same null for the same Skolem term.
  std::map<std::pair<std::string, std::vector<instance::Value>>,
           instance::Value>
      skolem;
  // Next fresh labeled-null label; resumed runs continue the sequence.
  std::int64_t next_label = 0;
  // Body facts that justified each null unification (egd firings and
  // SO-premise equalities). A deletion touching any of these could demand
  // un-merging nulls, which DRed cannot do cheaply — MaintainExchange
  // detects the overlap and falls back to a full re-chase.
  std::vector<Witness> unification_witnesses;
};

// Net target-side change of a resumed run: fact -> (+inserts - erases).
// Egd rewrite churn (erase + reinsert of untouched facts) cancels out, so
// after a run, entries > 0 are genuine target inserts and entries < 0
// genuine target deletes.
using FactDelta = std::map<Fact, int>;

// Runs the data-exchange chase like RunChase, but resuming from (and
// re-exporting into) `state`: with an uninitialized state this is a full
// first chase that additionally captures the resume state; with an
// initialized one only assignments binding at least one tuple above the
// per-rule watermarks are re-matched. `target` and `provenance` carry the
// previous call's result back in. `net_change`, when non-null, accumulates
// the run's target-side fact delta. Forces provenance tracking (the DRed
// substrate); a breach leaves `state` uninitialized since the partial
// fixpoint is not resumable.
Result<ChaseResult> ResumeChase(const logic::Mapping& mapping,
                                const instance::Instance& source,
                                instance::Instance target,
                                Provenance provenance,
                                ChaseSessionState* state,
                                FactDelta* net_change,
                                const ChaseOptions& options = {});

// Chases a set of (same-schema) tgds/egds over `database` in place-style:
// used for closing an instance under its own constraints.
Result<ChaseResult> ChaseInstance(const std::vector<logic::Tgd>& tgds,
                                  const std::vector<logic::Egd>& egds,
                                  const instance::Instance& database,
                                  const ChaseOptions& options = {});

// Evaluates a conjunctive query over a (possibly null-carrying) instance
// with naive-table semantics and returns the *certain answers*: result rows
// containing a labeled null are dropped (Section 4's "not allowed to be
// returned as part of the answer").
Result<std::vector<instance::Tuple>> CertainAnswers(
    const logic::ConjunctiveQuery& query, const instance::Instance& database);

// All answers including null-carrying rows (the "possible" answers).
Result<std::vector<instance::Tuple>> AllAnswers(
    const logic::ConjunctiveQuery& query, const instance::Instance& database);

// True if there is a homomorphism from `from` to `to`: constants map to
// themselves, labeled nulls may map to anything, tuples map into `to`.
// Universality of a chase result is exactly "it has a homomorphism into
// every solution"; tests use this directly.
bool ExistsHomomorphism(const instance::Instance& from,
                        const instance::Instance& to);

// Greedy core computation: repeatedly looks for a proper retraction that
// maps some labeled null onto another value while keeping the instance
// within itself, and applies it. For chase results of s-t tgd mappings this
// reaches the core (the smallest universal solution, "getting to the
// core"). Returns the retracted instance. When `obs` is set, emits a
// `chase.core` span and counts applied retractions as
// `chase.core_iterations`. `threads` resolves like ChaseOptions::threads
// (0 = MM2_THREADS, else serial); with more than one worker the candidate
// validity scan per null runs partitioned, still applying the same (first
// valid in value order) retraction the serial scan picks. `cancel` is the
// cooperative stop switch: polled between retraction searches, and on
// request the current (valid but possibly non-minimal) instance is
// returned immediately.
instance::Instance ComputeCore(const instance::Instance& database,
                               obs::Context* obs = nullptr,
                               std::size_t threads = 0,
                               const obs::CancelToken* cancel = nullptr);

// Refreshes the `value.intern.*` / `value.bytes_per_value` gauges in `obs`
// from the process-wide StringPool. Called after every chase run and by the
// engine's stats/explain commands so reports always see current pool state.
// No-op when `obs` is null.
void MirrorValueStats(obs::Context* obs);

}  // namespace mm2::chase

#endif  // MM2_CHASE_CHASE_H_
