#ifndef MM2_ALGEBRA_EXPR_H_
#define MM2_ALGEBRA_EXPR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "instance/value.h"

namespace mm2::algebra {

// ---------------------------------------------------------------------------
// Scalar expressions
// ---------------------------------------------------------------------------

// A scalar expression evaluated against one row: column references,
// literals, comparisons, boolean connectives, NULL tests, IN-lists, and
// CASE. CASE and IN are what the compiled query view of Fig. 3 needs
// (CASE WHEN _from flags ... THEN construct Employee ...; e IS OF Employee
// desugars to $type IN {subtype closure}).
//
// Null semantics: comparisons involving a plain NULL are false (two-valued
// logic, documented simplification); labeled nulls compare by label.
class Scalar;
using ScalarRef = std::shared_ptr<const Scalar>;

class Scalar {
 public:
  enum class Kind {
    kColumn,
    kLiteral,
    kCompare,
    kAnd,
    kOr,
    kNot,
    kIsNull,
    kIn,
    kCase,
  };

  enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

  struct CaseBranch {
    ScalarRef condition;
    ScalarRef result;
  };

  Kind kind() const { return kind_; }
  const std::string& column() const { return column_; }
  const instance::Value& literal() const { return literal_; }
  CompareOp compare_op() const { return compare_op_; }
  const std::vector<ScalarRef>& children() const { return children_; }
  const std::vector<instance::Value>& in_list() const { return in_list_; }
  const std::vector<CaseBranch>& case_branches() const {
    return case_branches_;
  }
  const ScalarRef& case_else() const { return case_else_; }

  // Column names referenced anywhere in this expression.
  void CollectColumns(std::vector<std::string>* out) const;

  std::string ToString() const;

  // Factories.
  static ScalarRef Column(std::string name);
  static ScalarRef Literal(instance::Value value);
  static ScalarRef Compare(CompareOp op, ScalarRef left, ScalarRef right);
  static ScalarRef Eq(ScalarRef left, ScalarRef right);
  static ScalarRef And(std::vector<ScalarRef> children);
  static ScalarRef Or(std::vector<ScalarRef> children);
  static ScalarRef Not(ScalarRef child);
  static ScalarRef IsNull(ScalarRef child);
  static ScalarRef In(ScalarRef child, std::vector<instance::Value> values);
  static ScalarRef Case(std::vector<CaseBranch> branches, ScalarRef else_expr);

 private:
  Scalar() = default;

  Kind kind_ = Kind::kLiteral;
  std::string column_;
  instance::Value literal_;
  CompareOp compare_op_ = CompareOp::kEq;
  std::vector<ScalarRef> children_;
  std::vector<instance::Value> in_list_;
  std::vector<CaseBranch> case_branches_;
  ScalarRef case_else_;
};

// Convenience shorthands used throughout the operator implementations.
ScalarRef Col(std::string name);
ScalarRef Lit(instance::Value value);
ScalarRef ColEqLit(std::string column, instance::Value value);
ScalarRef ColEqCol(std::string left, std::string right);

// ---------------------------------------------------------------------------
// Relational expressions
// ---------------------------------------------------------------------------

// An output column: name plus the scalar that computes it. Extended
// projection subsumes rename and computed columns.
struct NamedExpr {
  std::string name;
  ScalarRef expr;
};

// A relational algebra expression tree. Output columns are named and the
// names within one operator's output must be unique; Join concatenates the
// operand columns (collisions are an evaluation error, callers rename via
// Project). Set semantics come from Distinct; other operators preserve
// bags, matching SQL.
class Expr;
using ExprRef = std::shared_ptr<const Expr>;

class Expr {
 public:
  enum class Kind {
    kScan,      // base relation by name
    kConst,     // literal relation (rows baked in), e.g. {("US")}
    kSelect,    // sigma
    kProject,   // extended projection / rename / computed columns
    kJoin,      // equijoin (inner or left outer) or cross product
    kUnion,     // UNION ALL (same arity; column names from first child)
    kDifference,// set difference (left rows not in right)
    kDistinct,  // duplicate elimination
    kAggregate, // group-by with COUNT/SUM/MIN/MAX/AVG
  };

  enum class JoinKind { kInner, kLeftOuter, kCross };

  enum class AggOp { kCount, kSum, kMin, kMax, kAvg };

  // One aggregate output: op over `input` (column name; ignored for
  // kCount), emitted as `name`.
  struct AggSpec {
    AggOp op = AggOp::kCount;
    std::string input;
    std::string name;
  };

  Kind kind() const { return kind_; }
  const std::string& relation() const { return relation_; }
  const std::vector<std::string>& const_columns() const {
    return const_columns_;
  }
  const std::vector<instance::Tuple>& const_rows() const { return const_rows_; }
  const std::vector<ExprRef>& children() const { return children_; }
  const ScalarRef& predicate() const { return predicate_; }
  const std::vector<NamedExpr>& projections() const { return projections_; }
  JoinKind join_kind() const { return join_kind_; }
  const std::vector<std::pair<std::string, std::string>>& join_keys() const {
    return join_keys_;
  }
  const std::vector<std::string>& group_by() const { return group_by_; }
  const std::vector<AggSpec>& aggregates() const { return aggregates_; }

  // Number of relational operators in this tree (for size metrics).
  std::size_t NodeCount() const;

  // Compact algebra notation, e.g. "π{a,b}(σ[x = 1](R))".
  std::string ToString() const;
  // SQL-flavored rendering (multi-line), used to reproduce Fig. 3's listing.
  std::string ToSql() const;

  // Factories.
  static ExprRef Scan(std::string relation);
  static ExprRef Const(std::vector<std::string> columns,
                       std::vector<instance::Tuple> rows);
  static ExprRef Select(ExprRef child, ScalarRef predicate);
  static ExprRef Project(ExprRef child, std::vector<NamedExpr> projections);
  // Projection onto existing columns by name (no renaming).
  static ExprRef ProjectCols(ExprRef child, std::vector<std::string> columns);
  static ExprRef Join(ExprRef left, ExprRef right, JoinKind kind,
                      std::vector<std::pair<std::string, std::string>> keys);
  static ExprRef Union(std::vector<ExprRef> children);
  static ExprRef Difference(ExprRef left, ExprRef right);
  static ExprRef Distinct(ExprRef child);
  // Grouped aggregation: output columns are the group-by columns followed
  // by one column per AggSpec. With an empty group_by, a single global
  // group (one output row even for empty input, SQL-style for COUNT).
  static ExprRef Aggregate(ExprRef child, std::vector<std::string> group_by,
                           std::vector<AggSpec> aggregates);

 private:
  Expr() = default;

  std::string SqlIndented(int indent) const;

  Kind kind_ = Kind::kScan;
  std::string relation_;
  std::vector<std::string> const_columns_;
  std::vector<instance::Tuple> const_rows_;
  std::vector<ExprRef> children_;
  ScalarRef predicate_;
  std::vector<NamedExpr> projections_;
  JoinKind join_kind_ = JoinKind::kInner;
  std::vector<std::pair<std::string, std::string>> join_keys_;
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggregates_;
};

}  // namespace mm2::algebra

#endif  // MM2_ALGEBRA_EXPR_H_
