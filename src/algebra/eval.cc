#include "algebra/eval.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "common/strings.h"
#include "common/thread_pool.h"

namespace mm2::algebra {

using instance::Tuple;
using instance::Value;

std::size_t Table::ColumnIndex(std::string_view name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  return kNpos;
}

Table Table::Distinct() const {
  Table out;
  out.columns = columns;
  std::set<Tuple> seen;
  for (const Tuple& row : rows) {
    if (seen.insert(row).second) out.rows.push_back(row);
  }
  return out;
}

bool Table::SetEquals(const Table& other) const {
  if (columns != other.columns) return false;
  // Sorted-vector comparison: two sorts plus one linear pass, with none of
  // the per-node allocation a std::set rebuild pays.
  std::vector<Tuple> a = rows;
  std::vector<Tuple> b = other.rows;
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  return a == b;
}

std::string Table::ToString() const {
  std::string out = "(" + Join(columns, ", ") + ")\n";
  for (const Tuple& row : rows) {
    out += "  " + instance::TupleToString(row) + "\n";
  }
  return out;
}

Result<Catalog> Catalog::FromSchema(const model::Schema& schema) {
  Catalog catalog;
  for (const model::Relation& r : schema.relations()) {
    catalog.Add(r.name(), r.AttributeNames());
  }
  for (const model::EntitySet& s : schema.entity_sets()) {
    MM2_ASSIGN_OR_RETURN(instance::EntitySetLayout layout,
                         instance::ComputeEntitySetLayout(schema, s));
    std::vector<std::string> columns;
    columns.reserve(layout.columns.size() + 1);
    columns.push_back(kTypeColumn);
    for (const std::string& c : layout.columns) columns.push_back(c);
    catalog.Add(s.name, std::move(columns));
  }
  return catalog;
}

void Catalog::Add(std::string relation, std::vector<std::string> columns) {
  columns_.insert_or_assign(std::move(relation), std::move(columns));
}

bool Catalog::Has(std::string_view relation) const {
  return columns_.find(relation) != columns_.end();
}

Result<std::vector<std::string>> Catalog::ColumnsOf(
    std::string_view relation) const {
  auto it = columns_.find(relation);
  if (it == columns_.end()) {
    return Status::NotFound("relation '" + std::string(relation) +
                            "' not in catalog");
  }
  return it->second;
}

void Catalog::Merge(const Catalog& other) {
  for (const auto& [name, cols] : other.columns_) {
    columns_.insert_or_assign(name, cols);
  }
}

namespace {

// Numeric-promoting equality/ordering for comparisons; returns nullopt
// when the values are incomparable (e.g. string vs int) or either side is
// a plain NULL.
std::optional<int> CompareValues(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return std::nullopt;
  auto numeric = [](const Value& v) -> std::optional<double> {
    switch (v.kind()) {
      case Value::Kind::kInt64:
        return static_cast<double>(v.int64());
      case Value::Kind::kDouble:
        return v.dbl();
      case Value::Kind::kDate:
        return static_cast<double>(v.date());
      default:
        return std::nullopt;
    }
  };
  std::optional<double> na = numeric(a);
  std::optional<double> nb = numeric(b);
  if (na.has_value() && nb.has_value()) {
    if (*na < *nb) return -1;
    if (*na > *nb) return 1;
    return 0;
  }
  if (a.kind() != b.kind()) return std::nullopt;
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

bool IsTruthy(const Value& v) {
  return v.kind() == Value::Kind::kBool && v.boolean();
}

}  // namespace

Result<Value> EvaluateScalar(const Scalar& scalar,
                             const std::vector<std::string>& columns,
                             const Tuple& row) {
  switch (scalar.kind()) {
    case Scalar::Kind::kColumn: {
      for (std::size_t i = 0; i < columns.size(); ++i) {
        if (columns[i] == scalar.column()) return row[i];
      }
      return Status::NotFound("column '" + scalar.column() +
                              "' not in row (" + Join(columns, ", ") + ")");
    }
    case Scalar::Kind::kLiteral:
      return scalar.literal();
    case Scalar::Kind::kCompare: {
      MM2_ASSIGN_OR_RETURN(
          Value left, EvaluateScalar(*scalar.children()[0], columns, row));
      MM2_ASSIGN_OR_RETURN(
          Value right, EvaluateScalar(*scalar.children()[1], columns, row));
      std::optional<int> cmp = CompareValues(left, right);
      if (!cmp.has_value()) return Value::Bool(false);
      switch (scalar.compare_op()) {
        case Scalar::CompareOp::kEq:
          return Value::Bool(*cmp == 0);
        case Scalar::CompareOp::kNe:
          return Value::Bool(*cmp != 0);
        case Scalar::CompareOp::kLt:
          return Value::Bool(*cmp < 0);
        case Scalar::CompareOp::kLe:
          return Value::Bool(*cmp <= 0);
        case Scalar::CompareOp::kGt:
          return Value::Bool(*cmp > 0);
        case Scalar::CompareOp::kGe:
          return Value::Bool(*cmp >= 0);
      }
      return Status::Internal("bad compare op");
    }
    case Scalar::Kind::kAnd: {
      for (const ScalarRef& c : scalar.children()) {
        MM2_ASSIGN_OR_RETURN(Value v, EvaluateScalar(*c, columns, row));
        if (!IsTruthy(v)) return Value::Bool(false);
      }
      return Value::Bool(true);
    }
    case Scalar::Kind::kOr: {
      for (const ScalarRef& c : scalar.children()) {
        MM2_ASSIGN_OR_RETURN(Value v, EvaluateScalar(*c, columns, row));
        if (IsTruthy(v)) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
    case Scalar::Kind::kNot: {
      MM2_ASSIGN_OR_RETURN(
          Value v, EvaluateScalar(*scalar.children()[0], columns, row));
      return Value::Bool(!IsTruthy(v));
    }
    case Scalar::Kind::kIsNull: {
      MM2_ASSIGN_OR_RETURN(
          Value v, EvaluateScalar(*scalar.children()[0], columns, row));
      return Value::Bool(v.is_null());
    }
    case Scalar::Kind::kIn: {
      MM2_ASSIGN_OR_RETURN(
          Value v, EvaluateScalar(*scalar.children()[0], columns, row));
      for (const Value& candidate : scalar.in_list()) {
        std::optional<int> cmp = CompareValues(v, candidate);
        if (cmp.has_value() && *cmp == 0) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
    case Scalar::Kind::kCase: {
      for (const Scalar::CaseBranch& branch : scalar.case_branches()) {
        MM2_ASSIGN_OR_RETURN(Value cond,
                             EvaluateScalar(*branch.condition, columns, row));
        if (IsTruthy(cond)) {
          return EvaluateScalar(*branch.result, columns, row);
        }
      }
      if (scalar.case_else() != nullptr) {
        return EvaluateScalar(*scalar.case_else(), columns, row);
      }
      return Value::Null();
    }
  }
  return Status::Internal("bad scalar kind");
}

namespace {

// Appends right's columns to left's with the usual collision check.
Status AppendJoinColumns(const std::vector<std::string>& right_columns,
                         Table* out) {
  for (const std::string& c : right_columns) {
    if (std::find(out->columns.begin(), out->columns.end(), c) !=
        out->columns.end()) {
      return Status::InvalidArgument(
          "join output column collision on '" + c +
          "'; rename with Project before joining");
    }
    out->columns.push_back(c);
  }
  return Status::OK();
}

// Root-level evaluation context. Evaluate() recurses through the public
// entry point from every operator, so the root installs one context (with
// its lazily created thread pool) in a thread-local and the whole subtree
// shares it — no signature churn across a dozen operator evaluators, and
// nested Evaluate calls on worker threads (there are none today) would
// simply see no context and run serial.
struct EvalContext {
  EvalOptions options;
  std::size_t workers;
  bool segmented;
  std::unique_ptr<common::ThreadPool> pool;

  explicit EvalContext(const EvalOptions& opts)
      : options(opts),
        workers(common::ResolveThreadCount(opts.threads)),
        segmented(instance::ResolveStorageMode(opts.storage) ==
                  instance::StorageMode::kSegmented) {}

  // Returns the pool when this join is big enough to amortize a fan-out,
  // creating it on first use; nullptr means "run serial".
  common::ThreadPool* PoolFor(std::size_t rows) {
    if (workers <= 1 || rows < options.min_parallel_rows) return nullptr;
    if (pool == nullptr) pool = std::make_unique<common::ThreadPool>(workers);
    return pool.get();
  }
};

thread_local EvalContext* g_eval_ctx = nullptr;

struct EvalContextGuard {
  bool installed;
  explicit EvalContextGuard(EvalContext* ctx)
      : installed(g_eval_ctx == nullptr) {
    if (installed) g_eval_ctx = ctx;
  }
  ~EvalContextGuard() {
    if (installed) g_eval_ctx = nullptr;
  }
};

// Parallel generic hash join. Build: each worker scans all right rows but
// keeps only the keys hashing into its shard, so every per-key bucket
// accumulates in right-row order — the same bucket order the serial
// std::map build produces. Probe: left rows split into contiguous chunks
// whose output vectors concatenate in chunk order. Result rows are
// therefore byte-identical to the serial path, kLeftOuter padding included.
Result<Table> ParallelHashJoin(const Expr& expr, const Table& left,
                               const Table& right, Table out,
                               const std::vector<std::size_t>& left_keys,
                               const std::vector<std::size_t>& right_keys,
                               common::ThreadPool& pool) {
  const std::size_t shard_count = pool.size();
  std::vector<std::map<Tuple, std::vector<const Tuple*>>> shards(shard_count);
  instance::TupleHash hasher;
  pool.ParallelFor(
      shard_count, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t s = begin; s < end; ++s) {
          for (const Tuple& r : right.rows) {
            Tuple key;
            key.reserve(right_keys.size());
            bool has_null = false;
            for (std::size_t k : right_keys) {
              if (r[k].is_null()) has_null = true;
              key.push_back(r[k]);
            }
            if (has_null) continue;  // NULL keys never join
            if (hasher(key) % shard_count != s) continue;
            shards[s][std::move(key)].push_back(&r);
          }
        }
      });
  const std::size_t width = out.columns.size();
  std::vector<std::vector<Tuple>> partial(
      std::min(pool.size(), std::max<std::size_t>(left.rows.size(), 1)));
  pool.ParallelFor(
      left.rows.size(),
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        std::vector<Tuple>& rows = partial[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          const Tuple& l = left.rows[i];
          Tuple key;
          key.reserve(left_keys.size());
          bool has_null = false;
          for (std::size_t k : left_keys) {
            if (l[k].is_null()) has_null = true;
            key.push_back(l[k]);
          }
          const std::vector<const Tuple*>* bucket = nullptr;
          if (!has_null) {
            const auto& shard = shards[hasher(key) % shard_count];
            auto it = shard.find(key);
            if (it != shard.end()) bucket = &it->second;
          }
          if (bucket != nullptr) {
            for (const Tuple* r : *bucket) {
              Tuple row = l;
              row.insert(row.end(), r->begin(), r->end());
              rows.push_back(std::move(row));
            }
          } else if (expr.join_kind() == Expr::JoinKind::kLeftOuter) {
            Tuple row = l;
            row.resize(width, Value::Null());
            rows.push_back(std::move(row));
          }
        }
      });
  std::size_t total = 0;
  for (const auto& p : partial) total += p.size();
  out.rows.reserve(total);
  for (auto& p : partial) {
    for (Tuple& row : p) out.rows.push_back(std::move(row));
  }
  return out;
}

// Equi-join where the right operand is a base-table scan: probe the
// relation's on-demand index on the key columns instead of materializing
// the scan and rebuilding a hash map per call. Buckets come back in set
// order — exactly the order the materialized scan would have produced — so
// output rows are identical to the generic path's.
Result<Table> JoinScanProbe(const Expr& expr, const Table& left,
                            const Expr& scan, const Catalog& catalog,
                            const instance::Instance& database) {
  MM2_ASSIGN_OR_RETURN(std::vector<std::string> right_columns,
                       catalog.ColumnsOf(scan.relation()));
  const instance::RelationInstance* rel = database.Find(scan.relation());
  if (rel != nullptr && !rel->empty() &&
      rel->arity() != right_columns.size()) {
    return Status::Internal("catalog/instance arity mismatch on '" +
                            scan.relation() + "'");
  }
  Table out;
  out.columns = left.columns;
  MM2_RETURN_IF_ERROR(AppendJoinColumns(right_columns, &out));

  std::vector<std::size_t> left_keys;
  instance::RelationInstance::ColumnSet right_keys;
  for (const auto& [lname, rname] : expr.join_keys()) {
    std::size_t li = left.ColumnIndex(lname);
    std::size_t ri = Table::kNpos;
    for (std::size_t i = 0; i < right_columns.size(); ++i) {
      if (right_columns[i] == rname) {
        ri = i;
        break;
      }
    }
    if (li == Table::kNpos || ri == Table::kNpos) {
      return Status::NotFound("join key '" + lname + "'/'" + rname +
                              "' missing from operands");
    }
    left_keys.push_back(li);
    right_keys.push_back(ri);
  }
  if (left_keys.empty()) {
    return Status::InvalidArgument("equijoin requires at least one key");
  }

  // Under segmented storage, a key set covering columns [0, k) in order is
  // a prefix of the segment sort order: seal once and binary-search the
  // columns per probe instead of building a hash index. Rows come back in
  // set order — exactly the hash bucket's order — so output is identical.
  bool segment_probe = false;
  if (g_eval_ctx != nullptr && g_eval_ctx->segmented && rel != nullptr) {
    segment_probe = true;
    for (std::size_t i = 0; i < right_keys.size(); ++i) {
      if (right_keys[i] != i) segment_probe = false;
    }
    if (segment_probe) rel->PrepareSegments();
  }

  const std::size_t width = out.columns.size();
  Tuple scratch;
  for (const Tuple& l : left.rows) {
    Tuple key;
    key.reserve(left_keys.size());
    bool has_null = false;
    for (std::size_t k : left_keys) {
      if (l[k].is_null()) has_null = true;
      key.push_back(l[k]);
    }
    if (segment_probe && !has_null) {
      if (auto ranges = rel->SegmentProbePrefix(key)) {
        if (!ranges->empty()) {
          auto emit = [&](const Tuple& match) {
            Tuple row;
            row.reserve(width);
            row.insert(row.end(), l.begin(), l.end());
            row.insert(row.end(), match.begin(), match.end());
            out.rows.push_back(std::move(row));
          };
          if (ranges->count == 1) {
            const instance::SegmentRanges::Entry& entry = ranges->entries[0];
            for (std::size_t r = entry.begin; r < entry.end; ++r) {
              entry.segment->CopyRow(r, &scratch);
              emit(scratch);
            }
          } else {
            // Multi-run answers must interleave in global sort order to stay
            // byte-identical with the hash-bucket (set-order) path.
            for (instance::SegmentRangeCursor cursor(*ranges); !cursor.Done();
                 cursor.Advance()) {
              emit(cursor.Row());
            }
          }
        } else if (expr.join_kind() == Expr::JoinKind::kLeftOuter) {
          Tuple row = l;
          row.resize(width, Value::Null());
          out.rows.push_back(std::move(row));
        }
        continue;
      }
    }
    // NULL keys never join; right tuples with NULL keys live in buckets no
    // non-null probe key can reach, so the exact-match probe excludes them.
    const instance::RelationInstance::TupleRefs* refs =
        (has_null || rel == nullptr) ? nullptr : rel->Probe(right_keys, key);
    if (refs != nullptr && !refs->empty()) {
      for (const Tuple* r : *refs) {
        Tuple row;
        row.reserve(width);
        row.insert(row.end(), l.begin(), l.end());
        row.insert(row.end(), r->begin(), r->end());
        out.rows.push_back(std::move(row));
      }
    } else if (expr.join_kind() == Expr::JoinKind::kLeftOuter) {
      Tuple row = l;
      row.resize(width, Value::Null());
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

Result<Table> EvaluateJoin(const Expr& expr, const Catalog& catalog,
                           const instance::Instance& database) {
  MM2_ASSIGN_OR_RETURN(Table left,
                       Evaluate(*expr.children()[0], catalog, database));
  const Expr& right_expr = *expr.children()[1];
  if (expr.join_kind() != Expr::JoinKind::kCross &&
      right_expr.kind() == Expr::Kind::kScan) {
    return JoinScanProbe(expr, left, right_expr, catalog, database);
  }
  MM2_ASSIGN_OR_RETURN(Table right, Evaluate(right_expr, catalog, database));

  Table out;
  out.columns = left.columns;
  MM2_RETURN_IF_ERROR(AppendJoinColumns(right.columns, &out));

  if (expr.join_kind() == Expr::JoinKind::kCross) {
    const std::size_t width = out.columns.size();
    out.rows.reserve(left.rows.size() * right.rows.size());
    for (const Tuple& l : left.rows) {
      for (const Tuple& r : right.rows) {
        Tuple row;
        row.reserve(width);
        row.insert(row.end(), l.begin(), l.end());
        row.insert(row.end(), r.begin(), r.end());
        out.rows.push_back(std::move(row));
      }
    }
    return out;
  }

  std::vector<std::size_t> left_keys;
  std::vector<std::size_t> right_keys;
  for (const auto& [lname, rname] : expr.join_keys()) {
    std::size_t li = left.ColumnIndex(lname);
    std::size_t ri = right.ColumnIndex(rname);
    if (li == Table::kNpos || ri == Table::kNpos) {
      return Status::NotFound("join key '" + lname + "'/'" + rname +
                              "' missing from operands");
    }
    left_keys.push_back(li);
    right_keys.push_back(ri);
  }
  if (left_keys.empty()) {
    return Status::InvalidArgument("equijoin requires at least one key");
  }

  // Big enough inputs take the parallel build/probe path; identical output.
  common::ThreadPool* pool =
      g_eval_ctx == nullptr
          ? nullptr
          : g_eval_ctx->PoolFor(left.rows.size() + right.rows.size());
  if (pool != nullptr) {
    return ParallelHashJoin(expr, left, right, std::move(out), left_keys,
                            right_keys, *pool);
  }

  // Hash join: build on the right side.
  std::map<Tuple, std::vector<const Tuple*>> build;
  for (const Tuple& r : right.rows) {
    Tuple key;
    key.reserve(right_keys.size());
    bool has_null = false;
    for (std::size_t k : right_keys) {
      if (r[k].is_null()) has_null = true;
      key.push_back(r[k]);
    }
    if (has_null) continue;  // NULL keys never join
    build[std::move(key)].push_back(&r);
  }
  for (const Tuple& l : left.rows) {
    Tuple key;
    key.reserve(left_keys.size());
    bool has_null = false;
    for (std::size_t k : left_keys) {
      if (l[k].is_null()) has_null = true;
      key.push_back(l[k]);
    }
    auto it = has_null ? build.end() : build.find(key);
    if (it != build.end()) {
      for (const Tuple* r : it->second) {
        Tuple row = l;
        row.insert(row.end(), r->begin(), r->end());
        out.rows.push_back(std::move(row));
      }
    } else if (expr.join_kind() == Expr::JoinKind::kLeftOuter) {
      Tuple row = l;
      row.resize(out.columns.size(), Value::Null());
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

// Digs a `column = literal` conjunct out of a selection predicate (the
// predicate itself, or any AND child, searched left to right).
std::optional<std::pair<std::string, Value>> FindKeyEquality(
    const Scalar& pred) {
  if (pred.kind() == Scalar::Kind::kAnd) {
    for (const ScalarRef& c : pred.children()) {
      std::optional<std::pair<std::string, Value>> hit = FindKeyEquality(*c);
      if (hit.has_value()) return hit;
    }
    return std::nullopt;
  }
  if (pred.kind() != Scalar::Kind::kCompare ||
      pred.compare_op() != Scalar::CompareOp::kEq) {
    return std::nullopt;
  }
  const Scalar& a = *pred.children()[0];
  const Scalar& b = *pred.children()[1];
  if (a.kind() == Scalar::Kind::kColumn &&
      b.kind() == Scalar::Kind::kLiteral) {
    return std::make_pair(a.column(), b.literal());
  }
  if (b.kind() == Scalar::Kind::kColumn &&
      a.kind() == Scalar::Kind::kLiteral) {
    return std::make_pair(b.column(), a.literal());
  }
  return std::nullopt;
}

// Every stored representation the literal can equality-match under
// CompareValues' numeric promotion (Int64/Double/Date all compare as
// doubles). nullopt means the literal is not safely probeable — plain NULL
// (= is always false), or a magnitude where double promotion goes lossy —
// and the caller falls back to the scan.
std::optional<std::vector<Value>> KeyRepresentations(const Value& v) {
  constexpr double kExact = 9007199254740992.0;  // 2^53
  switch (v.kind()) {
    case Value::Kind::kNull:
      return std::nullopt;
    case Value::Kind::kString:
    case Value::Kind::kBool:
    case Value::Kind::kLabeledNull:
      return std::vector<Value>{v};
    case Value::Kind::kInt64:
    case Value::Kind::kDouble:
    case Value::Kind::kDate: {
      double d = v.kind() == Value::Kind::kDouble
                     ? v.dbl()
                     : static_cast<double>(v.kind() == Value::Kind::kInt64
                                               ? v.int64()
                                               : v.date());
      if (!(d > -kExact && d < kExact)) return std::nullopt;  // incl. NaN
      if (d != std::floor(d)) return std::vector<Value>{Value::Double(d)};
      std::int64_t n = static_cast<std::int64_t>(d);
      return std::vector<Value>{Value::Int64(n), Value::Double(d),
                                Value::Date(n)};
    }
  }
  return std::nullopt;
}

// Selection-on-key over a base-table scan: probe the single-column index
// for each representation the literal can match, then run the full
// predicate over the (tiny) candidate set. The probe is only a pre-filter,
// so semantics are exactly the scan path's; candidates are re-sorted into
// set order so output order matches too. nullopt => not applicable.
Result<std::optional<Table>> TrySelectScanProbe(
    const Expr& select, const Expr& scan, const Catalog& catalog,
    const instance::Instance& database) {
  const instance::RelationInstance* rel = database.Find(scan.relation());
  if (rel == nullptr || rel->empty()) return std::optional<Table>();
  MM2_ASSIGN_OR_RETURN(std::vector<std::string> columns,
                       catalog.ColumnsOf(scan.relation()));
  if (rel->arity() != columns.size()) {
    return std::optional<Table>();  // let the scan path report the mismatch
  }
  std::optional<std::pair<std::string, Value>> eq =
      FindKeyEquality(*select.predicate());
  if (!eq.has_value()) return std::optional<Table>();
  std::size_t col = Table::kNpos;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == eq->first) {
      col = i;
      break;
    }
  }
  if (col == Table::kNpos) return std::optional<Table>();
  std::optional<std::vector<Value>> reps = KeyRepresentations(eq->second);
  if (!reps.has_value()) return std::optional<Table>();

  std::vector<const Tuple*> candidates;
  instance::RelationInstance::ColumnSet cols{col};
  for (const Value& rep : *reps) {
    const instance::RelationInstance::TupleRefs* refs =
        rel->Probe(cols, {rep});
    if (refs != nullptr) {
      candidates.insert(candidates.end(), refs->begin(), refs->end());
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Tuple* a, const Tuple* b) { return *a < *b; });

  Table out;
  out.columns = std::move(columns);
  for (const Tuple* t : candidates) {
    MM2_ASSIGN_OR_RETURN(
        Value keep, EvaluateScalar(*select.predicate(), out.columns, *t));
    if (IsTruthy(keep)) out.rows.push_back(*t);
  }
  return std::optional<Table>(std::move(out));
}

}  // namespace

namespace {

// Grouped aggregation over an evaluated child table. NULLs are skipped by
// SUM/MIN/MAX/AVG and by COUNT(col); COUNT(*) counts rows.
Result<Table> EvaluateAggregate(const Expr& expr, const Table& in) {
  std::vector<std::size_t> group_cols;
  for (const std::string& g : expr.group_by()) {
    std::size_t idx = in.ColumnIndex(g);
    if (idx == Table::kNpos) {
      return Status::NotFound("group-by column '" + g + "' missing");
    }
    group_cols.push_back(idx);
  }
  struct Accumulator {
    std::size_t count = 0;       // rows in group (COUNT(*))
    std::vector<std::size_t> non_null;
    std::vector<double> sum;
    std::vector<Value> min;
    std::vector<Value> max;
  };
  std::vector<std::size_t> agg_cols;
  for (const Expr::AggSpec& a : expr.aggregates()) {
    if (a.op == Expr::AggOp::kCount && a.input.empty()) {
      agg_cols.push_back(Table::kNpos);
      continue;
    }
    std::size_t idx = in.ColumnIndex(a.input);
    if (idx == Table::kNpos) {
      return Status::NotFound("aggregate input column '" + a.input +
                              "' missing");
    }
    agg_cols.push_back(idx);
  }
  auto numeric = [](const Value& v, double* out) {
    switch (v.kind()) {
      case Value::Kind::kInt64:
        *out = static_cast<double>(v.int64());
        return true;
      case Value::Kind::kDouble:
        *out = v.dbl();
        return true;
      case Value::Kind::kDate:
        *out = static_cast<double>(v.date());
        return true;
      default:
        return false;
    }
  };

  std::map<Tuple, Accumulator> groups;
  for (const Tuple& row : in.rows) {
    Tuple key;
    key.reserve(group_cols.size());
    for (std::size_t c : group_cols) key.push_back(row[c]);
    Accumulator& acc = groups[key];
    if (acc.non_null.empty()) {
      acc.non_null.assign(expr.aggregates().size(), 0);
      acc.sum.assign(expr.aggregates().size(), 0.0);
      acc.min.assign(expr.aggregates().size(), Value::Null());
      acc.max.assign(expr.aggregates().size(), Value::Null());
    }
    ++acc.count;
    for (std::size_t i = 0; i < expr.aggregates().size(); ++i) {
      if (agg_cols[i] == Table::kNpos) continue;  // COUNT(*)
      const Value& v = row[agg_cols[i]];
      if (v.is_any_null()) continue;
      ++acc.non_null[i];
      double d = 0.0;
      if (numeric(v, &d)) acc.sum[i] += d;
      if (acc.min[i].is_null() || v < acc.min[i]) acc.min[i] = v;
      if (acc.max[i].is_null() || acc.max[i] < v) acc.max[i] = v;
    }
  }
  // SQL semantics: an empty input with no GROUP BY still yields one row.
  if (groups.empty() && group_cols.empty()) {
    groups[{}] = Accumulator{};
    Accumulator& acc = groups[{}];
    acc.non_null.assign(expr.aggregates().size(), 0);
    acc.sum.assign(expr.aggregates().size(), 0.0);
    acc.min.assign(expr.aggregates().size(), Value::Null());
    acc.max.assign(expr.aggregates().size(), Value::Null());
  }

  Table out;
  out.columns = expr.group_by();
  for (const Expr::AggSpec& a : expr.aggregates()) {
    out.columns.push_back(a.name);
  }
  for (const auto& [key, acc] : groups) {
    Tuple row = key;
    for (std::size_t i = 0; i < expr.aggregates().size(); ++i) {
      const Expr::AggSpec& a = expr.aggregates()[i];
      switch (a.op) {
        case Expr::AggOp::kCount:
          row.push_back(Value::Int64(static_cast<std::int64_t>(
              agg_cols[i] == Table::kNpos ? acc.count : acc.non_null[i])));
          break;
        case Expr::AggOp::kSum:
          row.push_back(acc.non_null[i] == 0 ? Value::Null()
                                             : Value::Double(acc.sum[i]));
          break;
        case Expr::AggOp::kMin:
          row.push_back(acc.min[i]);
          break;
        case Expr::AggOp::kMax:
          row.push_back(acc.max[i]);
          break;
        case Expr::AggOp::kAvg:
          row.push_back(acc.non_null[i] == 0
                            ? Value::Null()
                            : Value::Double(acc.sum[i] /
                                            static_cast<double>(
                                                acc.non_null[i])));
          break;
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace

Result<Table> Evaluate(const Expr& expr, const Catalog& catalog,
                       const instance::Instance& database,
                       const EvalOptions& options) {
  EvalContext ctx(options);
  // When a context is already installed (a recursive call re-entering with
  // explicit options), the root's options win and this guard is a no-op.
  EvalContextGuard guard(&ctx);
  return Evaluate(expr, catalog, database);
}

Result<Table> Evaluate(const Expr& expr, const Catalog& catalog,
                       const instance::Instance& database) {
  if (g_eval_ctx == nullptr) {
    // Root call without explicit options: install defaults (which honor
    // MM2_THREADS) so the whole evaluation tree shares one context.
    return Evaluate(expr, catalog, database, EvalOptions{});
  }
  switch (expr.kind()) {
    case Expr::Kind::kScan: {
      MM2_ASSIGN_OR_RETURN(std::vector<std::string> columns,
                           catalog.ColumnsOf(expr.relation()));
      Table out;
      out.columns = std::move(columns);
      const instance::RelationInstance* rel = database.Find(expr.relation());
      if (rel != nullptr) {
        if (!rel->empty() && rel->arity() != out.columns.size()) {
          return Status::Internal("catalog/instance arity mismatch on '" +
                                  expr.relation() + "'");
        }
        out.rows.assign(rel->tuples().begin(), rel->tuples().end());
      }
      return out;
    }
    case Expr::Kind::kConst: {
      Table out;
      out.columns = expr.const_columns();
      out.rows = expr.const_rows();
      return out;
    }
    case Expr::Kind::kSelect: {
      if (expr.children()[0]->kind() == Expr::Kind::kScan) {
        MM2_ASSIGN_OR_RETURN(std::optional<Table> fast,
                             TrySelectScanProbe(expr, *expr.children()[0],
                                                catalog, database));
        if (fast.has_value()) return std::move(*fast);
      }
      MM2_ASSIGN_OR_RETURN(Table in,
                           Evaluate(*expr.children()[0], catalog, database));
      Table out;
      out.columns = in.columns;
      for (Tuple& row : in.rows) {
        MM2_ASSIGN_OR_RETURN(
            Value keep, EvaluateScalar(*expr.predicate(), in.columns, row));
        if (IsTruthy(keep)) out.rows.push_back(std::move(row));
      }
      return out;
    }
    case Expr::Kind::kProject: {
      MM2_ASSIGN_OR_RETURN(Table in,
                           Evaluate(*expr.children()[0], catalog, database));
      Table out;
      for (const NamedExpr& p : expr.projections()) {
        out.columns.push_back(p.name);
      }
      for (const Tuple& row : in.rows) {
        Tuple projected;
        projected.reserve(expr.projections().size());
        for (const NamedExpr& p : expr.projections()) {
          MM2_ASSIGN_OR_RETURN(Value v,
                               EvaluateScalar(*p.expr, in.columns, row));
          projected.push_back(std::move(v));
        }
        out.rows.push_back(std::move(projected));
      }
      return out;
    }
    case Expr::Kind::kJoin:
      return EvaluateJoin(expr, catalog, database);
    case Expr::Kind::kUnion: {
      if (expr.children().empty()) {
        return Status::InvalidArgument("union of zero inputs");
      }
      Table out;
      for (std::size_t i = 0; i < expr.children().size(); ++i) {
        MM2_ASSIGN_OR_RETURN(Table part,
                             Evaluate(*expr.children()[i], catalog, database));
        if (i == 0) {
          out.columns = part.columns;
        } else if (part.columns.size() != out.columns.size()) {
          return Status::InvalidArgument("union operands differ in arity");
        }
        for (Tuple& row : part.rows) out.rows.push_back(std::move(row));
      }
      return out;
    }
    case Expr::Kind::kDifference: {
      MM2_ASSIGN_OR_RETURN(Table left,
                           Evaluate(*expr.children()[0], catalog, database));
      MM2_ASSIGN_OR_RETURN(Table right,
                           Evaluate(*expr.children()[1], catalog, database));
      if (left.columns.size() != right.columns.size()) {
        return Status::InvalidArgument("difference operands differ in arity");
      }
      // Sorted anti-join: sort the right side once, keep the left side in
      // its original (bag) order, and resolve membership with binary
      // searches over the contiguous vector.
      std::vector<Tuple> exclude = std::move(right.rows);
      std::sort(exclude.begin(), exclude.end());
      Table out;
      out.columns = left.columns;
      for (Tuple& row : left.rows) {
        if (!std::binary_search(exclude.begin(), exclude.end(), row)) {
          out.rows.push_back(std::move(row));
        }
      }
      return out;
    }
    case Expr::Kind::kDistinct: {
      MM2_ASSIGN_OR_RETURN(Table in,
                           Evaluate(*expr.children()[0], catalog, database));
      if (g_eval_ctx->segmented) {
        // Sort-based dedup with the same first-occurrence output order the
        // set-based path produces: order row indices by (row, position),
        // keep each run's first index, then emit in original position
        // order.
        std::vector<std::size_t> order(in.rows.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&in](std::size_t a, std::size_t b) {
                    if (in.rows[a] < in.rows[b]) return true;
                    if (in.rows[b] < in.rows[a]) return false;
                    return a < b;
                  });
        std::vector<char> keep(in.rows.size(), 0);
        for (std::size_t i = 0; i < order.size(); ++i) {
          if (i == 0 || in.rows[order[i]] != in.rows[order[i - 1]]) {
            keep[order[i]] = 1;
          }
        }
        Table out;
        out.columns = in.columns;
        for (std::size_t i = 0; i < in.rows.size(); ++i) {
          if (keep[i] != 0) out.rows.push_back(std::move(in.rows[i]));
        }
        return out;
      }
      return in.Distinct();
    }
    case Expr::Kind::kAggregate: {
      MM2_ASSIGN_OR_RETURN(Table in,
                           Evaluate(*expr.children()[0], catalog, database));
      return EvaluateAggregate(expr, in);
    }
  }
  return Status::Internal("bad expression kind");
}

void Materialize(const Table& table, std::string relation,
                 instance::Instance* database) {
  database->DeclareRelation(relation, table.columns.size());
  for (const Tuple& row : table.rows) {
    database->InsertUnchecked(relation, row);
  }
}

}  // namespace mm2::algebra
