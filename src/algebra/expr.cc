#include "algebra/expr.h"

#include <algorithm>

#include "common/strings.h"

namespace mm2::algebra {

namespace {

const char* CompareOpToString(Scalar::CompareOp op) {
  switch (op) {
    case Scalar::CompareOp::kEq:
      return "=";
    case Scalar::CompareOp::kNe:
      return "<>";
    case Scalar::CompareOp::kLt:
      return "<";
    case Scalar::CompareOp::kLe:
      return "<=";
    case Scalar::CompareOp::kGt:
      return ">";
    case Scalar::CompareOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace

ScalarRef Scalar::Column(std::string name) {
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kColumn;
  s->column_ = std::move(name);
  return s;
}

ScalarRef Scalar::Literal(instance::Value value) {
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kLiteral;
  s->literal_ = std::move(value);
  return s;
}

ScalarRef Scalar::Compare(CompareOp op, ScalarRef left, ScalarRef right) {
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kCompare;
  s->compare_op_ = op;
  s->children_ = {std::move(left), std::move(right)};
  return s;
}

ScalarRef Scalar::Eq(ScalarRef left, ScalarRef right) {
  return Compare(CompareOp::kEq, std::move(left), std::move(right));
}

ScalarRef Scalar::And(std::vector<ScalarRef> children) {
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kAnd;
  s->children_ = std::move(children);
  return s;
}

ScalarRef Scalar::Or(std::vector<ScalarRef> children) {
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kOr;
  s->children_ = std::move(children);
  return s;
}

ScalarRef Scalar::Not(ScalarRef child) {
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kNot;
  s->children_ = {std::move(child)};
  return s;
}

ScalarRef Scalar::IsNull(ScalarRef child) {
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kIsNull;
  s->children_ = {std::move(child)};
  return s;
}

ScalarRef Scalar::In(ScalarRef child, std::vector<instance::Value> values) {
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kIn;
  s->children_ = {std::move(child)};
  s->in_list_ = std::move(values);
  return s;
}

ScalarRef Scalar::Case(std::vector<CaseBranch> branches, ScalarRef else_expr) {
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kCase;
  s->case_branches_ = std::move(branches);
  s->case_else_ = std::move(else_expr);
  return s;
}

void Scalar::CollectColumns(std::vector<std::string>* out) const {
  switch (kind_) {
    case Kind::kColumn:
      if (std::find(out->begin(), out->end(), column_) == out->end()) {
        out->push_back(column_);
      }
      break;
    case Kind::kLiteral:
      break;
    case Kind::kCase:
      for (const CaseBranch& b : case_branches_) {
        b.condition->CollectColumns(out);
        b.result->CollectColumns(out);
      }
      if (case_else_ != nullptr) case_else_->CollectColumns(out);
      break;
    default:
      for (const ScalarRef& c : children_) c->CollectColumns(out);
      break;
  }
}

std::string Scalar::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return column_;
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kCompare:
      return children_[0]->ToString() + " " + CompareOpToString(compare_op_) +
             " " + children_[1]->ToString();
    case Kind::kAnd: {
      std::vector<std::string> parts;
      for (const ScalarRef& c : children_) {
        parts.push_back("(" + c->ToString() + ")");
      }
      return mm2::Join(parts, " AND ");
    }
    case Kind::kOr: {
      std::vector<std::string> parts;
      for (const ScalarRef& c : children_) {
        parts.push_back("(" + c->ToString() + ")");
      }
      return mm2::Join(parts, " OR ");
    }
    case Kind::kNot:
      return "NOT (" + children_[0]->ToString() + ")";
    case Kind::kIsNull:
      return children_[0]->ToString() + " IS NULL";
    case Kind::kIn: {
      std::vector<std::string> parts;
      for (const instance::Value& v : in_list_) parts.push_back(v.ToString());
      return children_[0]->ToString() + " IN (" + mm2::Join(parts, ", ") + ")";
    }
    case Kind::kCase: {
      std::string out = "CASE";
      for (const CaseBranch& b : case_branches_) {
        out += " WHEN " + b.condition->ToString() + " THEN " +
               b.result->ToString();
      }
      if (case_else_ != nullptr) out += " ELSE " + case_else_->ToString();
      out += " END";
      return out;
    }
  }
  return "?";
}

ScalarRef Col(std::string name) { return Scalar::Column(std::move(name)); }
ScalarRef Lit(instance::Value value) {
  return Scalar::Literal(std::move(value));
}
ScalarRef ColEqLit(std::string column, instance::Value value) {
  return Scalar::Eq(Col(std::move(column)), Lit(std::move(value)));
}
ScalarRef ColEqCol(std::string left, std::string right) {
  return Scalar::Eq(Col(std::move(left)), Col(std::move(right)));
}

ExprRef Expr::Scan(std::string relation) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kScan;
  e->relation_ = std::move(relation);
  return e;
}

ExprRef Expr::Const(std::vector<std::string> columns,
                    std::vector<instance::Tuple> rows) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kConst;
  e->const_columns_ = std::move(columns);
  e->const_rows_ = std::move(rows);
  return e;
}

ExprRef Expr::Select(ExprRef child, ScalarRef predicate) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kSelect;
  e->children_ = {std::move(child)};
  e->predicate_ = std::move(predicate);
  return e;
}

ExprRef Expr::Project(ExprRef child, std::vector<NamedExpr> projections) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kProject;
  e->children_ = {std::move(child)};
  e->projections_ = std::move(projections);
  return e;
}

ExprRef Expr::ProjectCols(ExprRef child, std::vector<std::string> columns) {
  std::vector<NamedExpr> projections;
  projections.reserve(columns.size());
  for (std::string& c : columns) {
    projections.push_back(NamedExpr{c, Scalar::Column(c)});
  }
  return Project(std::move(child), std::move(projections));
}

ExprRef Expr::Join(ExprRef left, ExprRef right, JoinKind kind,
                   std::vector<std::pair<std::string, std::string>> keys) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kJoin;
  e->children_ = {std::move(left), std::move(right)};
  e->join_kind_ = kind;
  e->join_keys_ = std::move(keys);
  return e;
}

ExprRef Expr::Union(std::vector<ExprRef> children) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kUnion;
  e->children_ = std::move(children);
  return e;
}

ExprRef Expr::Difference(ExprRef left, ExprRef right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kDifference;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprRef Expr::Distinct(ExprRef child) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kDistinct;
  e->children_ = {std::move(child)};
  return e;
}

ExprRef Expr::Aggregate(ExprRef child, std::vector<std::string> group_by,
                        std::vector<AggSpec> aggregates) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kAggregate;
  e->children_ = {std::move(child)};
  e->group_by_ = std::move(group_by);
  e->aggregates_ = std::move(aggregates);
  return e;
}

namespace {

const char* AggOpName(Expr::AggOp op) {
  switch (op) {
    case Expr::AggOp::kCount:
      return "COUNT";
    case Expr::AggOp::kSum:
      return "SUM";
    case Expr::AggOp::kMin:
      return "MIN";
    case Expr::AggOp::kMax:
      return "MAX";
    case Expr::AggOp::kAvg:
      return "AVG";
  }
  return "?";
}

std::string AggList(const std::vector<Expr::AggSpec>& aggs) {
  std::vector<std::string> parts;
  for (const Expr::AggSpec& a : aggs) {
    std::string call = std::string(AggOpName(a.op)) + "(" +
                       (a.op == Expr::AggOp::kCount && a.input.empty()
                            ? "*"
                            : a.input) +
                       ")";
    parts.push_back(call + " AS " + a.name);
  }
  return mm2::Join(parts, ", ");
}

}  // namespace

std::size_t Expr::NodeCount() const {
  std::size_t count = 1;
  for (const ExprRef& c : children_) count += c->NodeCount();
  return count;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kScan:
      return relation_;
    case Kind::kConst: {
      std::vector<std::string> rows;
      for (const instance::Tuple& t : const_rows_) {
        rows.push_back(instance::TupleToString(t));
      }
      return "{" + mm2::Join(rows, ", ") + "}";
    }
    case Kind::kSelect:
      return "σ[" + predicate_->ToString() + "](" +
             children_[0]->ToString() + ")";
    case Kind::kProject: {
      std::vector<std::string> parts;
      for (const NamedExpr& p : projections_) {
        if (p.expr->kind() == Scalar::Kind::kColumn &&
            p.expr->column() == p.name) {
          parts.push_back(p.name);
        } else {
          parts.push_back(p.name + ":=" + p.expr->ToString());
        }
      }
      return "π{" + mm2::Join(parts, ", ") + "}(" + children_[0]->ToString() + ")";
    }
    case Kind::kJoin: {
      std::string op;
      switch (join_kind_) {
        case JoinKind::kInner:
          op = " ⋈ ";
          break;
        case JoinKind::kLeftOuter:
          op = " ⟕ ";
          break;
        case JoinKind::kCross:
          op = " × ";
          break;
      }
      std::string keys;
      if (!join_keys_.empty()) {
        std::vector<std::string> parts;
        for (const auto& [l, r] : join_keys_) parts.push_back(l + "=" + r);
        keys = "[" + mm2::Join(parts, ",") + "]";
      }
      return "(" + children_[0]->ToString() + op + keys +
             children_[1]->ToString() + ")";
    }
    case Kind::kUnion: {
      std::vector<std::string> parts;
      for (const ExprRef& c : children_) parts.push_back(c->ToString());
      return "(" + mm2::Join(parts, " ∪ ") + ")";
    }
    case Kind::kDifference:
      return "(" + children_[0]->ToString() + " − " +
             children_[1]->ToString() + ")";
    case Kind::kDistinct:
      return "δ(" + children_[0]->ToString() + ")";
    case Kind::kAggregate:
      return "γ{" + mm2::Join(group_by_, ",") + "; " + AggList(aggregates_) +
             "}(" + children_[0]->ToString() + ")";
  }
  return "?";
}

std::string Expr::SqlIndented(int indent) const {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (kind_) {
    case Kind::kScan:
      return pad + relation_;
    case Kind::kConst: {
      std::vector<std::string> rows;
      for (const instance::Tuple& t : const_rows_) {
        rows.push_back("ROW" + instance::TupleToString(t));
      }
      return pad + "(VALUES " + mm2::Join(rows, ", ") + ") AS v(" +
             mm2::Join(const_columns_, ", ") + ")";
    }
    case Kind::kSelect:
      return pad + "SELECT * FROM (\n" +
             children_[0]->SqlIndented(indent + 1) + "\n" + pad +
             ") WHERE " + predicate_->ToString();
    case Kind::kProject: {
      std::vector<std::string> parts;
      for (const NamedExpr& p : projections_) {
        if (p.expr->kind() == Scalar::Kind::kColumn &&
            p.expr->column() == p.name) {
          parts.push_back(p.name);
        } else {
          parts.push_back(p.expr->ToString() + " AS " + p.name);
        }
      }
      return pad + "SELECT " + mm2::Join(parts, ", ") + " FROM (\n" +
             children_[0]->SqlIndented(indent + 1) + "\n" + pad + ")";
    }
    case Kind::kJoin: {
      std::string op;
      switch (join_kind_) {
        case JoinKind::kInner:
          op = "INNER JOIN";
          break;
        case JoinKind::kLeftOuter:
          op = "LEFT OUTER JOIN";
          break;
        case JoinKind::kCross:
          op = "CROSS JOIN";
          break;
      }
      std::string on;
      if (!join_keys_.empty()) {
        std::vector<std::string> parts;
        for (const auto& [l, r] : join_keys_) parts.push_back(l + " = " + r);
        on = "\n" + pad + "ON " + mm2::Join(parts, " AND ");
      }
      return pad + "(\n" + children_[0]->SqlIndented(indent + 1) + "\n" + pad +
             ") " + op + " (\n" + children_[1]->SqlIndented(indent + 1) +
             "\n" + pad + ")" + on;
    }
    case Kind::kUnion: {
      std::vector<std::string> parts;
      for (const ExprRef& c : children_) {
        parts.push_back(c->SqlIndented(indent + 1));
      }
      return pad + "(\n" + mm2::Join(parts, "\n" + pad + ") UNION ALL (\n") + "\n" +
             pad + ")";
    }
    case Kind::kDifference:
      return pad + "(\n" + children_[0]->SqlIndented(indent + 1) + "\n" + pad +
             ") EXCEPT (\n" + children_[1]->SqlIndented(indent + 1) + "\n" +
             pad + ")";
    case Kind::kDistinct:
      return pad + "SELECT DISTINCT * FROM (\n" +
             children_[0]->SqlIndented(indent + 1) + "\n" + pad + ")";
    case Kind::kAggregate: {
      std::string select = mm2::Join(group_by_, ", ");
      if (!select.empty() && !aggregates_.empty()) select += ", ";
      select += AggList(aggregates_);
      std::string out = pad + "SELECT " + select + " FROM (\n" +
                        children_[0]->SqlIndented(indent + 1) + "\n" + pad +
                        ")";
      if (!group_by_.empty()) {
        out += "\n" + pad + "GROUP BY " + mm2::Join(group_by_, ", ");
      }
      return out;
    }
  }
  return pad + "?";
}

std::string Expr::ToSql() const { return SqlIndented(0); }

}  // namespace mm2::algebra
