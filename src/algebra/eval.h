#ifndef MM2_ALGEBRA_EVAL_H_
#define MM2_ALGEBRA_EVAL_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/expr.h"
#include "common/result.h"
#include "common/status.h"
#include "instance/instance.h"
#include "model/schema.h"

namespace mm2::algebra {

// An intermediate query result: named columns plus rows (bag semantics).
struct Table {
  std::vector<std::string> columns;
  std::vector<instance::Tuple> rows;

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  std::size_t ColumnIndex(std::string_view name) const;

  // Duplicate-eliminated copy.
  Table Distinct() const;
  // Set equality (ignores row order and duplicates; columns must match by
  // position and name).
  bool SetEquals(const Table& other) const;

  std::string ToString() const;
};

// Maps relation names to their runtime column lists. Built from a schema:
// relations contribute their attribute names; entity sets contribute the
// hidden "$type" column followed by their EntitySetLayout columns.
class Catalog {
 public:
  Catalog() = default;

  // Builds a catalog for `schema`; fails if an entity-set layout cannot be
  // computed.
  static Result<Catalog> FromSchema(const model::Schema& schema);

  void Add(std::string relation, std::vector<std::string> columns);
  bool Has(std::string_view relation) const;
  Result<std::vector<std::string>> ColumnsOf(std::string_view relation) const;

  // Merges `other`'s entries into this catalog (later wins on collision).
  void Merge(const Catalog& other);

 private:
  std::map<std::string, std::vector<std::string>, std::less<>> columns_;
};

// The column name of the hidden entity-type discriminator.
inline constexpr char kTypeColumn[] = "$type";

// Evaluates a scalar against one row. `columns` names the row's fields.
Result<instance::Value> EvaluateScalar(const Scalar& scalar,
                                       const std::vector<std::string>& columns,
                                       const instance::Tuple& row);

// Evaluation knobs. Defaults reproduce the serial evaluator unless the
// MM2_THREADS environment variable says otherwise.
struct EvalOptions {
  // Worker threads for the parallel generic hash join (sharded build +
  // partitioned probe). 0 defers to MM2_THREADS, which defaults to 1
  // (serial). Output rows are byte-identical to the serial path at any
  // thread count: build workers keep per-key buckets in right-row order and
  // probe chunks concatenate in left-row order.
  std::size_t threads = 0;
  // Joins below this many combined input rows always run serial — the
  // fan-out costs more than the probes it spreads. Tests lower it to force
  // the parallel path on small inputs.
  std::size_t min_parallel_rows = 2048;
  // Storage representation for base-table probes. kDefault defers to the
  // MM2_STORAGE environment variable (default: indexed). Under kSegmented,
  // scan-side equi-join probes on a key prefix binary-search the relation's
  // sealed columnar segment instead of building a hash index, and Distinct
  // dedups via a stable sort. Output rows are byte-identical either way.
  instance::StorageMode storage = instance::StorageMode::kDefault;
};

// Evaluates a relational expression against a database instance.
Result<Table> Evaluate(const Expr& expr, const Catalog& catalog,
                       const instance::Instance& database);

// As above with explicit evaluation options (threaded through every
// recursive operator evaluation under this call).
Result<Table> Evaluate(const Expr& expr, const Catalog& catalog,
                       const instance::Instance& database,
                       const EvalOptions& options);

// Materializes a table into `database` under `relation` with set semantics
// (declares/overwrites the relation extension).
void Materialize(const Table& table, std::string relation,
                 instance::Instance* database);

}  // namespace mm2::algebra

#endif  // MM2_ALGEBRA_EVAL_H_
