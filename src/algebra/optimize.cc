#include "algebra/optimize.h"

#include "algebra/eval.h"

#include <optional>
#include <utility>
#include <vector>

namespace mm2::algebra {

namespace {

using instance::Value;

std::optional<bool> LiteralTruth(const ScalarRef& s) {
  if (s->kind() != Scalar::Kind::kLiteral) return std::nullopt;
  const Value& v = s->literal();
  if (v.kind() != Value::Kind::kBool) return std::nullopt;
  return v.boolean();
}

}  // namespace

ScalarRef SubstituteColumns(const ScalarRef& scalar,
                            const std::map<std::string, ScalarRef>& bindings) {
  switch (scalar->kind()) {
    case Scalar::Kind::kColumn: {
      auto it = bindings.find(scalar->column());
      return it == bindings.end() ? scalar : it->second;
    }
    case Scalar::Kind::kLiteral:
      return scalar;
    case Scalar::Kind::kCompare:
      return Scalar::Compare(
          scalar->compare_op(),
          SubstituteColumns(scalar->children()[0], bindings),
          SubstituteColumns(scalar->children()[1], bindings));
    case Scalar::Kind::kAnd:
    case Scalar::Kind::kOr: {
      std::vector<ScalarRef> children;
      for (const ScalarRef& c : scalar->children()) {
        children.push_back(SubstituteColumns(c, bindings));
      }
      return scalar->kind() == Scalar::Kind::kAnd
                 ? Scalar::And(std::move(children))
                 : Scalar::Or(std::move(children));
    }
    case Scalar::Kind::kNot:
      return Scalar::Not(SubstituteColumns(scalar->children()[0], bindings));
    case Scalar::Kind::kIsNull:
      return Scalar::IsNull(
          SubstituteColumns(scalar->children()[0], bindings));
    case Scalar::Kind::kIn:
      return Scalar::In(SubstituteColumns(scalar->children()[0], bindings),
                        scalar->in_list());
    case Scalar::Kind::kCase: {
      std::vector<Scalar::CaseBranch> branches;
      for (const Scalar::CaseBranch& b : scalar->case_branches()) {
        branches.push_back({SubstituteColumns(b.condition, bindings),
                            SubstituteColumns(b.result, bindings)});
      }
      ScalarRef else_expr =
          scalar->case_else() == nullptr
              ? nullptr
              : SubstituteColumns(scalar->case_else(), bindings);
      return Scalar::Case(std::move(branches), std::move(else_expr));
    }
  }
  return scalar;
}

ScalarRef FoldScalar(const ScalarRef& scalar) {
  switch (scalar->kind()) {
    case Scalar::Kind::kColumn:
    case Scalar::Kind::kLiteral:
      return scalar;
    case Scalar::Kind::kCompare: {
      ScalarRef left = FoldScalar(scalar->children()[0]);
      ScalarRef right = FoldScalar(scalar->children()[1]);
      if (left->kind() == Scalar::Kind::kLiteral &&
          right->kind() == Scalar::Kind::kLiteral) {
        // Evaluate against an empty row: literals need no columns.
        auto v = EvaluateScalar(*Scalar::Compare(scalar->compare_op(), left,
                                                 right),
                                {}, {});
        if (v.ok()) return Lit(*v);
      }
      return Scalar::Compare(scalar->compare_op(), std::move(left),
                             std::move(right));
    }
    case Scalar::Kind::kAnd: {
      std::vector<ScalarRef> kept;
      for (const ScalarRef& c : scalar->children()) {
        ScalarRef folded = FoldScalar(c);
        std::optional<bool> truth = LiteralTruth(folded);
        if (truth.has_value()) {
          if (!*truth) return Lit(Value::Bool(false));
          continue;  // TRUE conjunct drops out
        }
        kept.push_back(std::move(folded));
      }
      if (kept.empty()) return Lit(Value::Bool(true));
      if (kept.size() == 1) return kept.front();
      return Scalar::And(std::move(kept));
    }
    case Scalar::Kind::kOr: {
      std::vector<ScalarRef> kept;
      for (const ScalarRef& c : scalar->children()) {
        ScalarRef folded = FoldScalar(c);
        std::optional<bool> truth = LiteralTruth(folded);
        if (truth.has_value()) {
          if (*truth) return Lit(Value::Bool(true));
          continue;
        }
        kept.push_back(std::move(folded));
      }
      if (kept.empty()) return Lit(Value::Bool(false));
      if (kept.size() == 1) return kept.front();
      return Scalar::Or(std::move(kept));
    }
    case Scalar::Kind::kNot: {
      ScalarRef child = FoldScalar(scalar->children()[0]);
      std::optional<bool> truth = LiteralTruth(child);
      if (truth.has_value()) return Lit(Value::Bool(!*truth));
      return Scalar::Not(std::move(child));
    }
    case Scalar::Kind::kIsNull: {
      ScalarRef child = FoldScalar(scalar->children()[0]);
      if (child->kind() == Scalar::Kind::kLiteral) {
        return Lit(Value::Bool(child->literal().is_null()));
      }
      return Scalar::IsNull(std::move(child));
    }
    case Scalar::Kind::kIn: {
      ScalarRef child = FoldScalar(scalar->children()[0]);
      if (child->kind() == Scalar::Kind::kLiteral) {
        auto v = EvaluateScalar(*Scalar::In(child, scalar->in_list()), {}, {});
        if (v.ok()) return Lit(*v);
      }
      return Scalar::In(std::move(child), scalar->in_list());
    }
    case Scalar::Kind::kCase: {
      std::vector<Scalar::CaseBranch> branches;
      for (const Scalar::CaseBranch& b : scalar->case_branches()) {
        ScalarRef condition = FoldScalar(b.condition);
        std::optional<bool> truth = LiteralTruth(condition);
        if (truth.has_value()) {
          if (!*truth) continue;  // dead branch
          // First statically-true branch: the CASE collapses to it if no
          // earlier dynamic branch exists, else it becomes the ELSE.
          ScalarRef result = FoldScalar(b.result);
          if (branches.empty()) return result;
          return Scalar::Case(std::move(branches), std::move(result));
        }
        branches.push_back({std::move(condition), FoldScalar(b.result)});
      }
      ScalarRef else_expr = scalar->case_else() == nullptr
                                ? nullptr
                                : FoldScalar(scalar->case_else());
      if (branches.empty()) {
        return else_expr == nullptr ? Lit(Value::Null()) : else_expr;
      }
      return Scalar::Case(std::move(branches), std::move(else_expr));
    }
  }
  return scalar;
}

ExprRef Simplify(const ExprRef& expr) {
  // Bottom-up.
  std::vector<ExprRef> children;
  children.reserve(expr->children().size());
  for (const ExprRef& c : expr->children()) {
    children.push_back(Simplify(c));
  }

  switch (expr->kind()) {
    case Expr::Kind::kScan:
    case Expr::Kind::kConst:
      return expr;
    case Expr::Kind::kSelect: {
      ScalarRef predicate = FoldScalar(expr->predicate());
      std::optional<bool> truth = LiteralTruth(predicate);
      if (truth.has_value() && *truth) return children[0];
      // Select over Select: conjoin.
      if (children[0]->kind() == Expr::Kind::kSelect) {
        return Expr::Select(
            children[0]->children()[0],
            FoldScalar(Scalar::And(
                {children[0]->predicate(), std::move(predicate)})));
      }
      return Expr::Select(std::move(children[0]), std::move(predicate));
    }
    case Expr::Kind::kProject: {
      std::vector<NamedExpr> projections;
      for (const NamedExpr& p : expr->projections()) {
        projections.push_back({p.name, FoldScalar(p.expr)});
      }
      // Project over Project: substitute inner definitions.
      if (children[0]->kind() == Expr::Kind::kProject) {
        std::map<std::string, ScalarRef> inner;
        for (const NamedExpr& p : children[0]->projections()) {
          inner[p.name] = p.expr;
        }
        std::vector<NamedExpr> merged;
        for (const NamedExpr& p : projections) {
          merged.push_back(
              {p.name, FoldScalar(SubstituteColumns(p.expr, inner))});
        }
        return Expr::Project(children[0]->children()[0], std::move(merged));
      }
      return Expr::Project(std::move(children[0]), std::move(projections));
    }
    case Expr::Kind::kJoin:
      return Expr::Join(std::move(children[0]), std::move(children[1]),
                        expr->join_kind(), expr->join_keys());
    case Expr::Kind::kUnion:
      if (children.size() == 1) return children[0];
      return Expr::Union(std::move(children));
    case Expr::Kind::kDifference:
      return Expr::Difference(std::move(children[0]), std::move(children[1]));
    case Expr::Kind::kDistinct:
      if (children[0]->kind() == Expr::Kind::kDistinct) return children[0];
      return Expr::Distinct(std::move(children[0]));
    case Expr::Kind::kAggregate:
      return Expr::Aggregate(std::move(children[0]), expr->group_by(),
                             expr->aggregates());
  }
  return expr;
}

}  // namespace mm2::algebra
