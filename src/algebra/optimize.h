#ifndef MM2_ALGEBRA_OPTIMIZE_H_
#define MM2_ALGEBRA_OPTIMIZE_H_

#include <map>
#include <string>

#include "algebra/expr.h"

namespace mm2::algebra {

// A small rewriting pass over algebra expressions, applied to the plans
// TransGen emits (which are deliberately naive, mirroring the declarative
// constraints). Rewrites, to fixpoint:
//   - Project(Project(x))        -> one Project (scalar composition)
//   - Select(Select(x, p), q)    -> Select(x, p AND q)
//   - Distinct(Distinct(x))      -> Distinct(x)
//   - Union(single child)        -> child
//   - Select(x, TRUE)            -> x
//   - constant folding inside scalars (comparisons of literals, AND/OR
//     with literal operands, NOT of literals, CASE on literal conditions)
// Semantics are preserved exactly (tests evaluate both forms).
ExprRef Simplify(const ExprRef& expr);

// Scalar-level helpers, exposed for tests.
ScalarRef FoldScalar(const ScalarRef& scalar);
// Replaces column references per `bindings` (used to merge projections);
// columns absent from the map are kept.
ScalarRef SubstituteColumns(const ScalarRef& scalar,
                            const std::map<std::string, ScalarRef>& bindings);

}  // namespace mm2::algebra

#endif  // MM2_ALGEBRA_OPTIMIZE_H_
