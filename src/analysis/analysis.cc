#include "analysis/analysis.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/strings.h"

namespace mm2::analysis {

namespace {

constexpr std::uint64_t kSat = std::numeric_limits<std::uint64_t>::max();

std::uint64_t SatAdd(std::uint64_t a, std::uint64_t b) {
  return a > kSat - b ? kSat : a + b;
}

std::uint64_t SatMul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > kSat / b ? kSat : a * b;
}

std::uint64_t SatPow(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t out = 1;
  for (std::uint64_t i = 0; i < exp; ++i) out = SatMul(out, base);
  return out;
}

std::string JoinRelations(const std::vector<logic::Atom>& atoms) {
  std::vector<std::string> names;
  names.reserve(atoms.size());
  for (const logic::Atom& atom : atoms) names.push_back(atom.relation);
  return Join(names, "+");
}

// Labels mirror chase.cc's RuleLabel so `explain mapping` rows line up
// with the RuleStats / chase.rule.* rows of the same slot.
std::string TgdLabel(const logic::Tgd& tgd, std::size_t index) {
  return "tgd" + std::to_string(index) + ":" + JoinRelations(tgd.body) +
         "->" + JoinRelations(tgd.head);
}

std::string SoLabel(const logic::SoTgdClause& clause, std::size_t index) {
  return "so" + std::to_string(index) + ":" + JoinRelations(clause.body) +
         "->" + JoinRelations(clause.head);
}

std::string EgdLabel(const logic::Egd& egd, std::size_t index) {
  return "egd" + std::to_string(index) + ":" + JoinRelations(egd.body) +
         ":" + egd.left + "=" + egd.right;
}

void CollectConstants(const logic::Term& term, std::set<std::string>* out) {
  if (term.is_constant()) {
    out->insert(term.value().ToString());
  } else if (term.is_function()) {
    for (const logic::Term& arg : term.args()) CollectConstants(arg, out);
  }
}

// Iterative-enough Tarjan SCC (recursion depth = graph diameter, fine at
// mapping scale). Returns component ids; components are emitted in
// reverse topological order of the condensation.
std::size_t StronglyConnectedComponents(
    std::size_t n, const std::vector<std::vector<std::size_t>>& adj,
    std::vector<std::size_t>* comp_of) {
  comp_of->assign(n, n);
  std::vector<std::size_t> index(n, n), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0, components = 0;
  auto strongconnect = [&](std::size_t v, auto&& self) -> void {
    index[v] = low[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    for (std::size_t w : adj[v]) {
      if (index[w] == n) {
        self(w, self);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack[w]) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      while (true) {
        std::size_t w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        (*comp_of)[w] = components;
        if (w == v) break;
      }
      ++components;
    }
  };
  for (std::size_t v = 0; v < n; ++v) {
    if (index[v] == n) strongconnect(v, strongconnect);
  }
  return components;
}

struct PosEdge {
  std::size_t to;
  bool special;
};

// For the witness cycle: does `from` reach `to` in the position graph?
bool Reaches(const std::vector<std::vector<PosEdge>>& adj, std::size_t from,
             std::size_t to, std::vector<std::size_t>* path) {
  std::vector<bool> visited(adj.size(), false);
  std::vector<std::size_t> stack_path;
  bool found = false;
  auto dfs = [&](std::size_t node, auto&& self) -> void {
    if (found || visited[node]) return;
    visited[node] = true;
    stack_path.push_back(node);
    if (node == to) {
      *path = stack_path;
      found = true;
      return;
    }
    for (const PosEdge& e : adj[node]) {
      self(e.to, self);
      if (found) return;
    }
    stack_path.pop_back();
  };
  dfs(from, dfs);
  return found;
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string DotEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string BoundToString(std::uint64_t v) {
  return v == kSat ? "unbounded" : std::to_string(v);
}

// Accumulates rules, positions, and edges, then condenses. One instance
// per Analyze* call.
class Builder {
 public:
  explicit Builder(ChaseMode mode) : mode_(mode) {
    out_.mode = mode;
    read_ns_ = mode == ChaseMode::kExchange ? "src:" : "";
    write_ns_ = mode == ChaseMode::kExchange ? "tgt:" : "";
  }

  void AddTgd(const logic::Tgd& tgd, std::size_t index) {
    RuleNode rule;
    rule.label = TgdLabel(tgd, index);
    rule.kind = "tgd";
    std::set<std::string> existentials = tgd.ExistentialVariables();
    std::set<std::string> head_vars = tgd.HeadVariables();
    rule.creates_values = !existentials.empty();
    out_.invention_count += existentials.size();
    out_.max_body_vars =
        std::max(out_.max_body_vars, tgd.BodyVariables().size());

    std::map<std::string, std::vector<std::size_t>> body_positions;
    std::set<std::string> reads, writes;
    for (const logic::Atom& atom : tgd.body) {
      reads.insert(read_ns_ + atom.relation);
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        CollectConstants(atom.terms[i], &constants_);
        if (atom.terms[i].is_variable()) {
          body_positions[atom.terms[i].name()].push_back(
              Pos(read_ns_, atom.relation, i));
        }
      }
    }
    std::vector<std::size_t> invented_positions;
    for (const logic::Atom& atom : tgd.head) {
      writes.insert(write_ns_ + atom.relation);
      NoteWrittenArity(write_ns_ + atom.relation, atom.terms.size());
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        const logic::Term& t = atom.terms[i];
        CollectConstants(t, &constants_);
        if (!t.is_variable()) continue;
        std::size_t head_pos = Pos(write_ns_, atom.relation, i);
        if (existentials.count(t.name()) > 0) {
          invented_positions.push_back(head_pos);
          continue;
        }
        auto it = body_positions.find(t.name());
        if (it == body_positions.end()) continue;
        for (std::size_t from : it->second) AddPosEdge(from, head_pos, false);
      }
    }
    AddSpecialEdges(body_positions, head_vars, existentials,
                    invented_positions);
    FinishRule(std::move(rule), std::move(reads), std::move(writes));
  }

  void AddSoClause(const logic::SoTgdClause& clause, std::size_t index) {
    RuleNode rule;
    rule.label = SoLabel(clause, index);
    rule.kind = "so";
    rule.creates_values = false;
    out_.max_body_vars =
        std::max(out_.max_body_vars, clause.BodyVariables().size());

    std::map<std::string, std::vector<std::size_t>> body_positions;
    std::set<std::string> reads, writes;
    std::set<std::string> body_vars = clause.BodyVariables();
    for (const logic::Atom& atom : clause.body) {
      reads.insert(read_ns_ + atom.relation);
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        CollectConstants(atom.terms[i], &constants_);
        if (atom.terms[i].is_variable()) {
          body_positions[atom.terms[i].name()].push_back(
              Pos(read_ns_, atom.relation, i));
        }
      }
    }
    // Distinct Skolem terms of this clause invent values; head variables
    // used in the head (incl. inside function arguments) feed them.
    std::set<std::string> skolems;
    std::set<std::string> head_used;
    std::vector<std::size_t> invented_positions;
    for (const logic::Atom& atom : clause.head) {
      writes.insert(write_ns_ + atom.relation);
      NoteWrittenArity(write_ns_ + atom.relation, atom.terms.size());
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        const logic::Term& t = atom.terms[i];
        CollectConstants(t, &constants_);
        t.CollectVariables(&head_used);
        if (t.is_function()) {
          skolems.insert(t.ToString());
          invented_positions.push_back(Pos(write_ns_, atom.relation, i));
        } else if (t.is_variable()) {
          auto it = body_positions.find(t.name());
          if (it == body_positions.end()) continue;
          std::size_t head_pos = Pos(write_ns_, atom.relation, i);
          for (std::size_t from : it->second) {
            AddPosEdge(from, head_pos, false);
          }
        }
      }
    }
    for (const auto& [lhs, rhs] : clause.equalities) {
      CollectConstants(lhs, &constants_);
      CollectConstants(rhs, &constants_);
      if (lhs.is_function()) skolems.insert(lhs.ToString());
      if (rhs.is_function()) skolems.insert(rhs.ToString());
    }
    rule.creates_values = !skolems.empty();
    out_.invention_count += skolems.size();
    // Only variables that actually occur in the body can vary the Skolem
    // arguments; intersect before drawing special edges.
    std::set<std::string> head_used_universals;
    for (const std::string& v : head_used) {
      if (body_vars.count(v) > 0) head_used_universals.insert(v);
    }
    AddSpecialEdges(body_positions, head_used_universals, {},
                    invented_positions);
    FinishRule(std::move(rule), std::move(reads), std::move(writes));
  }

  void AddEgd(const logic::Egd& egd, std::size_t index) {
    RuleNode rule;
    rule.label = EgdLabel(egd, index);
    rule.kind = "egd";
    std::set<std::string> reads;
    for (const logic::Atom& atom : egd.body) {
      // Egd bodies always match the written vocabulary (the chase target).
      reads.insert(write_ns_ + atom.relation);
      for (const logic::Term& t : atom.terms) {
        CollectConstants(t, &constants_);
      }
    }
    out_.max_body_vars = [&] {
      std::set<std::string> vars;
      for (const logic::Atom& atom : egd.body) atom.CollectVariables(&vars);
      return std::max(out_.max_body_vars, vars.size());
    }();
    egd_rules_.push_back(out_.rules.size());
    // Writes resolved in Finish(): a unification may rewrite nulls in any
    // relation of the written vocabulary, so egds conservatively write
    // all of it.
    FinishRule(std::move(rule), std::move(reads), {});
  }

  MappingAnalysis Finish() {
    // Conservative egd write set: every relation of the written vocabulary
    // any rule touches (tgd/SO heads plus egd bodies).
    std::set<std::string> written_vocab;
    for (std::size_t i = 0; i < out_.rules.size(); ++i) {
      if (out_.rules[i].kind == "egd") {
        for (const std::string& r : rule_reads_[i]) written_vocab.insert(r);
      } else {
        for (const std::string& r : rule_writes_[i]) written_vocab.insert(r);
      }
    }
    for (std::size_t i : egd_rules_) rule_writes_[i] = written_vocab;
    for (std::size_t i = 0; i < out_.rules.size(); ++i) {
      out_.rules[i].reads.assign(rule_reads_[i].begin(),
                                 rule_reads_[i].end());
      out_.rules[i].writes.assign(rule_writes_[i].begin(),
                                  rule_writes_[i].end());
    }

    BuildRuleGraph();
    Stratify();
    ClassifyTermination();
    out_.constant_count = constants_.size();
    return std::move(out_);
  }

 private:
  std::size_t Pos(const std::string& ns, const std::string& relation,
                  std::size_t column) {
    std::string name = ns + relation + "." + std::to_string(column);
    auto [it, inserted] = pos_index_.try_emplace(name, out_.positions.size());
    if (inserted) {
      out_.positions.push_back(PositionNode{name});
      pos_adj_.emplace_back();
    }
    return it->second;
  }

  void AddPosEdge(std::size_t from, std::size_t to, bool special) {
    if (!pos_edge_seen_.insert({from, to, special}).second) return;
    out_.position_edges.push_back(PositionEdge{from, to, special});
    pos_adj_[from].push_back(PosEdge{to, special});
  }

  void AddSpecialEdges(
      const std::map<std::string, std::vector<std::size_t>>& body_positions,
      const std::set<std::string>& head_vars,
      const std::set<std::string>& existentials,
      const std::vector<std::size_t>& invented_positions) {
    if (invented_positions.empty()) return;
    for (const auto& [var, froms] : body_positions) {
      if (head_vars.count(var) == 0 || existentials.count(var) > 0) continue;
      for (std::size_t from : froms) {
        for (std::size_t to : invented_positions) {
          AddPosEdge(from, to, true);
        }
      }
    }
  }

  void NoteWrittenArity(const std::string& name, std::size_t arity) {
    if (written_arity_.try_emplace(name, arity).second) {
      out_.written_arities.push_back(arity);
    }
  }

  void FinishRule(RuleNode rule, std::set<std::string> reads,
                  std::set<std::string> writes) {
    out_.rules.push_back(std::move(rule));
    rule_reads_.push_back(std::move(reads));
    rule_writes_.push_back(std::move(writes));
  }

  void BuildRuleGraph() {
    std::size_t n = out_.rules.size();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        bool depends = std::any_of(
            rule_writes_[i].begin(), rule_writes_[i].end(),
            [&](const std::string& w) { return rule_reads_[j].count(w); });
        if (depends) out_.rule_edges.push_back(RuleEdge{i, j});
      }
    }
  }

  // SCC condensation of the rule graph, topologically ordered; ties go to
  // the stratum containing the smallest rule index (stable across runs).
  void Stratify() {
    std::size_t n = out_.rules.size();
    std::vector<std::vector<std::size_t>> adj(n);
    std::set<std::pair<std::size_t, std::size_t>> self_loops;
    for (const RuleEdge& e : out_.rule_edges) {
      adj[e.from].push_back(e.to);
      if (e.from == e.to) self_loops.insert({e.from, e.to});
    }
    std::vector<std::size_t> comp_of;
    std::size_t k = StronglyConnectedComponents(n, adj, &comp_of);

    std::vector<std::vector<std::size_t>> members(k);
    for (std::size_t v = 0; v < n; ++v) members[comp_of[v]].push_back(v);
    std::vector<std::set<std::size_t>> comp_adj(k);
    std::vector<std::size_t> indegree(k, 0);
    for (const RuleEdge& e : out_.rule_edges) {
      std::size_t cf = comp_of[e.from], ct = comp_of[e.to];
      if (cf != ct && comp_adj[cf].insert(ct).second) ++indegree[ct];
    }
    // Kahn with a min-rule-index priority for a deterministic order.
    std::set<std::pair<std::size_t, std::size_t>> ready;  // (min rule, comp)
    for (std::size_t c = 0; c < k; ++c) {
      if (indegree[c] == 0) ready.insert({members[c].front(), c});
    }
    std::vector<std::size_t> stratum_of_comp(k, 0);
    while (!ready.empty()) {
      auto [min_rule, c] = *ready.begin();
      ready.erase(ready.begin());
      stratum_of_comp[c] = out_.strata.size();
      out_.strata.push_back(members[c]);
      bool recursive =
          members[c].size() > 1 ||
          self_loops.count({members[c].front(), members[c].front()}) > 0;
      for (std::size_t v : members[c]) {
        out_.rules[v].stratum = stratum_of_comp[c];
        out_.rules[v].recursive = recursive;
      }
      for (std::size_t next : comp_adj[c]) {
        if (--indegree[next] == 0) {
          ready.insert({members[next].front(), next});
        }
      }
    }
  }

  void ClassifyTermination() {
    // A cycle through a special edge u -s-> v exists iff v reaches u.
    for (const PositionEdge& e : out_.position_edges) {
      if (!e.special) continue;
      std::vector<std::size_t> path;
      if (Reaches(pos_adj_, e.to, e.from, &path)) {
        out_.weakly_acyclic = false;
        out_.termination = Termination::kPotentiallyNonTerminating;
        out_.cycle.push_back(out_.positions[e.from].name);
        for (std::size_t p : path) {
          out_.cycle.push_back(out_.positions[p].name);
        }
        out_.cycle.push_back(out_.positions[e.from].name);
        return;
      }
    }
    ComputeRanks();
  }

  // rank(p) = max number of special edges on any path ending at p. Weak
  // acyclicity guarantees no special edge inside a position SCC, so the
  // condensation DAG carries a simple longest-path DP.
  void ComputeRanks() {
    std::size_t n = out_.positions.size();
    if (n == 0) return;
    std::vector<std::vector<std::size_t>> adj(n);
    for (const PositionEdge& e : out_.position_edges) {
      adj[e.from].push_back(e.to);
    }
    std::vector<std::size_t> comp_of;
    std::size_t k = StronglyConnectedComponents(n, adj, &comp_of);
    std::vector<std::vector<std::pair<std::size_t, bool>>> comp_adj(k);
    std::vector<std::size_t> indegree(k, 0);
    for (const PositionEdge& e : out_.position_edges) {
      std::size_t cf = comp_of[e.from], ct = comp_of[e.to];
      if (cf == ct) continue;
      comp_adj[cf].push_back({ct, e.special});
      ++indegree[ct];
    }
    std::vector<std::size_t> rank(k, 0), queue;
    for (std::size_t c = 0; c < k; ++c) {
      if (indegree[c] == 0) queue.push_back(c);
    }
    while (!queue.empty()) {
      std::size_t c = queue.back();
      queue.pop_back();
      for (const auto& [next, special] : comp_adj[c]) {
        rank[next] = std::max(rank[next], rank[c] + (special ? 1 : 0));
        if (--indegree[next] == 0) queue.push_back(next);
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      out_.max_rank = std::max(out_.max_rank, rank[c]);
    }
  }

  ChaseMode mode_;
  std::string read_ns_, write_ns_;
  MappingAnalysis out_;
  std::map<std::string, std::size_t> pos_index_;
  std::vector<std::vector<PosEdge>> pos_adj_;
  std::set<std::tuple<std::size_t, std::size_t, bool>> pos_edge_seen_;
  std::map<std::string, std::size_t> written_arity_;
  std::set<std::string> constants_;
  std::vector<std::set<std::string>> rule_reads_, rule_writes_;
  std::vector<std::size_t> egd_rules_;
};

}  // namespace

std::uint64_t MappingAnalysis::PredictedValues(std::uint64_t domain) const {
  if (!weakly_acyclic) return kSat;
  std::uint64_t g = SatAdd(std::max<std::uint64_t>(domain, 1),
                           constant_count);
  if (invention_count == 0) return g;
  std::size_t iterations = std::max<std::size_t>(max_rank, 1);
  for (std::size_t i = 0; i < iterations && g != kSat; ++i) {
    g = SatAdd(g, SatMul(invention_count, SatPow(g, max_body_vars)));
  }
  return g;
}

std::uint64_t MappingAnalysis::PredictedTuples(std::uint64_t domain) const {
  if (!weakly_acyclic) return kSat;
  std::uint64_t values = PredictedValues(domain);
  std::uint64_t total = 0;
  for (std::size_t arity : written_arities) {
    total = SatAdd(total, SatPow(values, arity));
  }
  return total;
}

std::uint64_t MappingAnalysis::PredictedRounds(std::uint64_t domain) const {
  if (!weakly_acyclic) return kSat;
  std::uint64_t base = SatAdd(2, strata.size());
  bool has_egds = std::any_of(rules.begin(), rules.end(), [](const RuleNode& r) {
    return r.kind == "egd";
  });
  std::uint64_t values = PredictedValues(domain);
  std::uint64_t base_values = SatAdd(std::max<std::uint64_t>(domain, 1),
                                     constant_count);
  std::uint64_t nulls = values >= base_values ? values - base_values : 0;
  if (mode == ChaseMode::kExchange) {
    // Tgds quiesce after one fire+confirm pass; every further round
    // performs at least one egd unification, each consuming a null.
    return has_egds ? SatAdd(base, SatAdd(nulls, 1)) : base;
  }
  // Closure: every non-final round inserts a tuple or consumes a null.
  return SatAdd(base, SatAdd(PredictedTuples(domain), SatAdd(nulls, 1)));
}

std::string MappingAnalysis::ToText(std::uint64_t domain) const {
  std::ostringstream out;
  out << "mapping analysis ("
      << (mode == ChaseMode::kExchange ? "exchange" : "closure")
      << " mode)\n";
  out << "  termination: "
      << (terminating() ? "terminating (weakly acyclic)"
                        : "potentially non-terminating (cycle through an "
                          "existential edge)")
      << "\n";
  if (!cycle.empty()) {
    out << "  cycle: " << Join(cycle, " -> ") << "\n";
  }
  out << "  rules: " << rules.size() << ", strata: " << strata.size()
      << ", positions: " << positions.size() << " ("
      << position_edges.size() << " edges, max rank " << max_rank << ")\n";
  for (std::size_t s = 0; s < strata.size(); ++s) {
    out << "  stratum " << s << ":";
    for (std::size_t r : strata[s]) {
      out << " " << rules[r].label
          << (rules[r].recursive ? " (recursive)" : "");
    }
    out << "\n";
  }
  out << "  predicted (domain=" << domain
      << "): values<=" << BoundToString(PredictedValues(domain))
      << ", tuples<=" << BoundToString(PredictedTuples(domain))
      << ", rounds<=" << BoundToString(PredictedRounds(domain)) << "\n";
  return out.str();
}

std::string MappingAnalysis::ToJson(std::uint64_t domain) const {
  std::ostringstream out;
  out << "{\"mode\": \""
      << (mode == ChaseMode::kExchange ? "exchange" : "closure")
      << "\", \"termination\": \""
      << (terminating() ? "terminating" : "potentially_non_terminating")
      << "\", \"weakly_acyclic\": " << (weakly_acyclic ? "true" : "false")
      << ", \"max_rank\": " << max_rank;
  out << ", \"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleNode& r = rules[i];
    if (i > 0) out << ", ";
    out << "{\"label\": \"" << JsonEscape(r.label) << "\", \"kind\": \""
        << r.kind << "\", \"stratum\": " << r.stratum
        << ", \"recursive\": " << (r.recursive ? "true" : "false")
        << ", \"creates_values\": " << (r.creates_values ? "true" : "false")
        << ", \"reads\": [";
    for (std::size_t j = 0; j < r.reads.size(); ++j) {
      if (j > 0) out << ", ";
      out << "\"" << JsonEscape(r.reads[j]) << "\"";
    }
    out << "], \"writes\": [";
    for (std::size_t j = 0; j < r.writes.size(); ++j) {
      if (j > 0) out << ", ";
      out << "\"" << JsonEscape(r.writes[j]) << "\"";
    }
    out << "]}";
  }
  out << "], \"rule_edges\": [";
  for (std::size_t i = 0; i < rule_edges.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"from\": " << rule_edges[i].from
        << ", \"to\": " << rule_edges[i].to << "}";
  }
  out << "], \"strata\": [";
  for (std::size_t s = 0; s < strata.size(); ++s) {
    if (s > 0) out << ", ";
    out << "[";
    for (std::size_t j = 0; j < strata[s].size(); ++j) {
      if (j > 0) out << ", ";
      out << strata[s][j];
    }
    out << "]";
  }
  out << "], \"positions\": [";
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (i > 0) out << ", ";
    out << "\"" << JsonEscape(positions[i].name) << "\"";
  }
  out << "], \"position_edges\": [";
  for (std::size_t i = 0; i < position_edges.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"from\": " << position_edges[i].from
        << ", \"to\": " << position_edges[i].to << ", \"special\": "
        << (position_edges[i].special ? "true" : "false") << "}";
  }
  out << "], \"cycle\": [";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i > 0) out << ", ";
    out << "\"" << JsonEscape(cycle[i]) << "\"";
  }
  out << "], \"predicted\": {\"domain\": " << domain
      << ", \"values\": " << PredictedValues(domain)
      << ", \"tuples\": " << PredictedTuples(domain)
      << ", \"rounds\": " << PredictedRounds(domain) << "}}";
  return out.str();
}

std::string MappingAnalysis::ToDot() const {
  std::ostringstream out;
  out << "digraph mapping_analysis {\n";
  out << "  rankdir=LR;\n";
  out << "  label=\""
      << (terminating() ? "terminating (weakly acyclic)"
                        : "potentially non-terminating")
      << "; " << strata.size() << " strata\";\n";
  for (std::size_t s = 0; s < strata.size(); ++s) {
    out << "  subgraph cluster_stratum_" << s << " {\n";
    out << "    label=\"stratum " << s << "\";\n";
    for (std::size_t r : strata[s]) {
      out << "    r" << r << " [shape=box, label=\""
          << DotEscape(rules[r].label)
          << (rules[r].recursive ? "\\n(recursive)" : "") << "\"];\n";
    }
    out << "  }\n";
  }
  for (const RuleEdge& e : rule_edges) {
    out << "  r" << e.from << " -> r" << e.to << ";\n";
  }
  if (!positions.empty()) {
    out << "  subgraph cluster_positions {\n";
    out << "    label=\"position graph (dashed = existential)\";\n";
    for (std::size_t i = 0; i < positions.size(); ++i) {
      out << "    p" << i << " [label=\"" << DotEscape(positions[i].name)
          << "\"];\n";
    }
    out << "  }\n";
    for (const PositionEdge& e : position_edges) {
      out << "  p" << e.from << " -> p" << e.to
          << (e.special ? " [style=dashed, color=red]" : "") << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

MappingAnalysis AnalyzeMapping(const logic::Mapping& mapping) {
  Builder builder(ChaseMode::kExchange);
  if (mapping.is_second_order()) {
    const std::vector<logic::SoTgdClause>& clauses =
        mapping.so_tgd().clauses;
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      builder.AddSoClause(clauses[i], i);
    }
  } else {
    for (std::size_t i = 0; i < mapping.tgds().size(); ++i) {
      builder.AddTgd(mapping.tgds()[i], i);
    }
  }
  for (std::size_t i = 0; i < mapping.target_egds().size(); ++i) {
    builder.AddEgd(mapping.target_egds()[i], i);
  }
  return builder.Finish();
}

MappingAnalysis AnalyzeClosure(const std::vector<logic::Tgd>& tgds,
                               const std::vector<logic::Egd>& egds) {
  Builder builder(ChaseMode::kClosure);
  for (std::size_t i = 0; i < tgds.size(); ++i) builder.AddTgd(tgds[i], i);
  for (std::size_t i = 0; i < egds.size(); ++i) builder.AddEgd(egds[i], i);
  return builder.Finish();
}

}  // namespace mm2::analysis
