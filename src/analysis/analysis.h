#ifndef MM2_ANALYSIS_ANALYSIS_H_
#define MM2_ANALYSIS_ANALYSIS_H_

// Static mapping introspection (paper Sections 2 and 6: mappings are
// first-class artifacts the engine reasons about, not just executes).
// Given a mapping's tgds/egds/SO-clauses this module builds
//
//   1. the *position graph* of Fagin-Kolaitis-Miller-Popa weak acyclicity:
//      nodes are (relation, column) positions; a regular edge copies a
//      universal variable from a body position to a head position; a
//      special edge runs from the body positions of head-used universals
//      to every position where the rule invents a value (an existential
//      variable, or a Skolem function term of an SO-clause). A cycle
//      through a special edge means the chase can keep feeding fresh
//      labelled nulls back into the positions that generate them —
//      potentially non-terminating. No such cycle -> weakly acyclic ->
//      terminating, with polynomial bounds derived from the position
//      ranks (max number of special edges on any path into a position).
//
//   2. the *rule-dependency graph*: an edge i -> j whenever rule i writes
//      a relation rule j's body reads, i.e. firing i can create new work
//      for j. Its SCC condensation, topologically ordered, is the
//      mapping's *stratification*: rules in a stratum only ever receive
//      new input from strictly earlier strata (or from their own SCC).
//      The chase scheduler uses this to skip matching rules whose input
//      strata are quiescent (chase.h, ChaseOptions::stratified).
//
// Two modes mirror the two chase entry points. kExchange models RunChase:
// tgd/SO bodies read the immutable source vocabulary (namespaced "src:")
// and heads write the target ("tgt:"), so tgd-only mappings are always
// weakly acyclic and every tgd sits in its own stratum ahead of the egds.
// kClosure models ChaseInstance: one vocabulary serving both roles, the
// textbook setting where weak acyclicity has teeth.
//
// Everything here is static — no instance is consulted. The Predicted*
// bounds take the active-domain size as a parameter and saturate instead
// of overflowing, so callers can evaluate them on real inputs.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "logic/formula.h"
#include "logic/mapping.h"

namespace mm2::analysis {

enum class ChaseMode { kExchange, kClosure };
enum class Termination { kTerminating, kPotentiallyNonTerminating };

// One rule of the analyzed set, in chase slot order (SO-clauses, then
// first-order tgds, then egds — the order ChaseRun sizes its RuleStats).
struct RuleNode {
  std::string label;  // matches the RuleStats label of the same slot
  std::string kind;   // "tgd" | "so" | "egd"
  std::vector<std::string> reads;   // namespaced body relations
  std::vector<std::string> writes;  // namespaced written relations
  bool creates_values = false;      // existentials or Skolem terms
  std::size_t stratum = 0;          // index into MappingAnalysis::strata
  bool recursive = false;           // in a rule-graph cycle (incl. self-loop)
};

struct RuleEdge {
  std::size_t from = 0;  // writer
  std::size_t to = 0;    // reader
};

struct PositionNode {
  std::string name;  // "R.0", namespaced "src:R.0"/"tgt:R.0" in exchange mode
};

struct PositionEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  bool special = false;  // target position receives invented values
};

struct MappingAnalysis {
  ChaseMode mode = ChaseMode::kExchange;

  std::vector<RuleNode> rules;
  std::vector<RuleEdge> rule_edges;
  std::vector<PositionNode> positions;
  std::vector<PositionEdge> position_edges;

  // SCC condensation of the rule graph in a stable topological order:
  // strata[s] lists rule indices, ascending; s1 < s2 whenever some rule in
  // strata[s1] writes what a rule in strata[s2] reads. Ties are broken by
  // the smallest rule index so the order is deterministic.
  std::vector<std::vector<std::size_t>> strata;

  bool weakly_acyclic = true;
  Termination termination = Termination::kTerminating;
  // When not weakly acyclic: the witness cycle through a special edge,
  // as position names (first entry repeated at the end).
  std::vector<std::string> cycle;

  // Bound ingredients (meaningful when weakly_acyclic).
  std::size_t max_rank = 0;          // max special edges on a path
  std::size_t max_body_vars = 0;     // W: widest rule body (variables)
  std::size_t invention_count = 0;   // E: existentials + Skolem terms
  std::size_t constant_count = 0;    // distinct constants in rule bodies/heads
  std::vector<std::size_t> written_arities;  // one per distinct written rel

  // FKMP-style saturating upper bounds, evaluated at active-domain size
  // `domain`. PredictedValues bounds the number of distinct values (domain
  // constants + invented nulls) via G_0 = domain + constants,
  // G_{i+1} = G_i + E * G_i^W, iterated max_rank times. PredictedTuples
  // sums PredictedValues^arity over the written relations. PredictedRounds
  // bounds the observed ChaseStats::rounds of a semi-naive chase (flat or
  // stratified) over an instance with that active domain; it is the
  // testable contract of the classifier. All three saturate at UINT64_MAX,
  // which callers should render as "huge", not as a precise count.
  std::uint64_t PredictedValues(std::uint64_t domain) const;
  std::uint64_t PredictedTuples(std::uint64_t domain) const;
  std::uint64_t PredictedRounds(std::uint64_t domain) const;

  bool terminating() const {
    return termination == Termination::kTerminating;
  }

  // Human-readable report: termination class, strata table, bounds
  // evaluated at `domain`.
  std::string ToText(std::uint64_t domain = 1000) const;
  // One JSON object (single line) with the full graphs, strata, and
  // bounds evaluated at `domain`.
  std::string ToJson(std::uint64_t domain = 1000) const;
  // Graphviz digraph: rule-dependency graph clustered by stratum plus the
  // position graph (special edges dashed). Feed to `dot -Tsvg`.
  std::string ToDot() const;
};

// Analyzes a mapping as RunChase executes it (exchange mode). Covers
// first-order tgds or the SO-tgd's clauses, plus target egds.
MappingAnalysis AnalyzeMapping(const logic::Mapping& mapping);

// Analyzes a closure rule set as ChaseInstance executes it: bodies and
// heads share one vocabulary.
MappingAnalysis AnalyzeClosure(const std::vector<logic::Tgd>& tgds,
                               const std::vector<logic::Egd>& egds);

}  // namespace mm2::analysis

#endif  // MM2_ANALYSIS_ANALYSIS_H_
