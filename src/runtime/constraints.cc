#include "runtime/constraints.h"

#include <optional>
#include <utility>

#include "compose/compose.h"

namespace mm2::runtime {

using instance::Instance;
using instance::Tuple;
using instance::Value;
using logic::Atom;
using logic::Egd;
using logic::Mapping;
using logic::SoTgdClause;
using logic::Term;
using logic::Tgd;

std::string EgdViolation::ToString() const {
  return "egd '" + egd.ToString() + "' violated: " + left_fact.ToString() +
         " vs " + right_fact.ToString() + " (" + left_value.ToString() +
         " != " + right_value.ToString() + ")";
}

std::vector<EgdViolation> CheckEgds(const Instance& database,
                                    const std::vector<Egd>& egds,
                                    std::size_t limit) {
  std::vector<EgdViolation> violations;
  for (const Egd& egd : egds) {
    std::size_t found = 0;
    for (const chase::Assignment& assignment :
         chase::MatchAtoms(egd.body, database)) {
      auto li = assignment.find(egd.left);
      auto ri = assignment.find(egd.right);
      if (li == assignment.end() || ri == assignment.end()) continue;
      if (li->second == ri->second) continue;
      EgdViolation violation;
      violation.egd = egd;
      violation.left_value = li->second;
      violation.right_value = ri->second;
      // Reconstruct the two witness facts (first and last body atom images
      // carrying the disagreeing values; fall back to the first atom).
      auto instantiate = [&](const Atom& atom) {
        chase::Fact fact;
        fact.relation = atom.relation;
        for (const Term& t : atom.terms) {
          fact.tuple.push_back(t.is_constant() ? t.value()
                                               : assignment.at(t.name()));
        }
        return fact;
      };
      violation.left_fact = instantiate(egd.body.front());
      violation.right_fact = instantiate(egd.body.back());
      violations.push_back(std::move(violation));
      ++found;
      if (limit != 0 && found >= limit) break;
    }
  }
  return violations;
}

namespace {

std::optional<Term> GroundTerm(const Term& term,
                               const chase::Assignment& assignment) {
  switch (term.kind()) {
    case Term::Kind::kConstant:
      return term;
    case Term::Kind::kVariable: {
      auto it = assignment.find(term.name());
      if (it == assignment.end()) return std::nullopt;
      return Term::Const(it->second);
    }
    case Term::Kind::kFunction: {
      std::vector<Term> args;
      for (const Term& arg : term.args()) {
        std::optional<Term> g = GroundTerm(arg, assignment);
        if (!g.has_value()) return std::nullopt;
        args.push_back(std::move(*g));
      }
      return Term::Func(term.name(), std::move(args));
    }
  }
  return std::nullopt;
}

}  // namespace

Result<bool> ImpliesTargetEgd(const Mapping& mapping,
                              const std::vector<Egd>& source_egds,
                              const Egd& target_egd,
                              Instance* counterexample) {
  if (mapping.is_second_order()) {
    return Status::Unsupported(
        "ImpliesTargetEgd handles first-order mappings");
  }
  MM2_RETURN_IF_ERROR(target_egd.Validate(nullptr));

  // Pose the egd body as a consumer rule producing Viol(left, right) and
  // resolve it against the mapping, exactly as Compose and RewriteQuery do.
  model::Schema viol_schema("viol", model::Metamodel::kRelational);
  viol_schema.AddRelation(model::Relation(
      "Viol", {{"l", model::DataType::String(), false},
               {"r", model::DataType::String(), false}}));
  Tgd consumer;
  consumer.body = target_egd.body;
  consumer.head = {
      Atom{"Viol", {Term::Var(target_egd.left), Term::Var(target_egd.right)}}};
  Mapping query = Mapping::FromTgds("viol_probe", mapping.target(),
                                    std::move(viol_schema), {consumer});
  MM2_ASSIGN_OR_RETURN(Mapping composed, compose::Compose(mapping, query));

  // For each resolved clause, freeze its body as the most general source
  // instance triggering it (variables become labeled nulls), close it
  // under the source egds, and check whether the two equated values can
  // still differ on the canonical exchange result.
  for (const SoTgdClause& clause : composed.Skolemized().clauses) {
    // Freeze.
    std::set<std::string> vars;
    for (const Atom& a : clause.body) a.CollectVariables(&vars);
    chase::Assignment freeze;
    std::int64_t label = 0;
    for (const std::string& v : vars) {
      freeze[v] = Value::LabeledNull(label++);
    }
    Instance frozen = Instance::EmptyFor(mapping.source());
    for (const Atom& a : clause.body) {
      Tuple tuple;
      for (const Term& t : a.terms) {
        tuple.push_back(t.is_constant() ? t.value() : freeze.at(t.name()));
      }
      if (!frozen.HasRelation(a.relation)) {
        frozen.DeclareRelation(a.relation, tuple.size());
      }
      frozen.InsertUnchecked(a.relation, std::move(tuple));
    }
    // Close under source constraints; an inconsistency means no legal
    // source can trigger this clause at all.
    auto closed = chase::ChaseInstance({}, source_egds, frozen);
    if (!closed.ok()) {
      if (closed.status().code() == StatusCode::kInconsistent) continue;
      return closed.status();
    }
    // Re-match the clause body against the closed instance; every match is
    // a potential violation pattern.
    for (const chase::Assignment& assignment :
         chase::MatchAtoms(clause.body, closed->target)) {
      bool premise_holds = true;
      for (const auto& [l, r] : clause.equalities) {
        std::optional<Term> gl = GroundTerm(l, assignment);
        std::optional<Term> gr = GroundTerm(r, assignment);
        // Structurally distinct ground Skolem terms denote independent
        // invented values on the canonical target; the premise equality
        // then fails there. (Conservative: see header.)
        if (!gl.has_value() || !gr.has_value() || !(*gl == *gr)) {
          premise_holds = false;
          break;
        }
      }
      if (!premise_holds) continue;
      if (clause.head.empty() || clause.head[0].terms.size() != 2) continue;
      std::optional<Term> gl = GroundTerm(clause.head[0].terms[0], assignment);
      std::optional<Term> gr = GroundTerm(clause.head[0].terms[1], assignment);
      if (!gl.has_value() || !gr.has_value()) continue;
      if (!(*gl == *gr)) {
        // The equated positions can carry distinct values: counterexample.
        if (counterexample != nullptr) {
          *counterexample = closed->target;
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace mm2::runtime
