#ifndef MM2_RUNTIME_CONSTRAINTS_H_
#define MM2_RUNTIME_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "chase/chase.h"
#include "common/result.h"
#include "instance/instance.h"
#include "logic/formula.h"
#include "logic/mapping.h"

namespace mm2::runtime {

// The integrity-constraint service of Section 5: constraints stated on the
// target of a mapping must be checked somewhere — enforced during exchange
// (the chase does that), validated on materialized data, or shown to be
// implied so no runtime check is needed at all.

// One violation of an egd: two facts matched the body but disagreed on the
// equated values.
struct EgdViolation {
  logic::Egd egd;
  chase::Fact left_fact;
  chase::Fact right_fact;
  instance::Value left_value;
  instance::Value right_value;

  std::string ToString() const;
};

// Validates egds against a materialized instance; returns every violation
// (up to `limit` per egd, 0 = unlimited).
std::vector<EgdViolation> CheckEgds(const instance::Instance& database,
                                    const std::vector<logic::Egd>& egds,
                                    std::size_t limit = 0);

// Static implication test: does the mapping *guarantee* the target egd for
// every source instance satisfying `source_egds`? Uses the critical-
// instance chase: freeze the egd's body over the target, pull it back
// through an inverted canonical run... in full generality this is
// undecidable (tgds + egds), so this implements the standard sufficient
// test for s-t tgd mappings: chase the frozen source instance pair that
// could violate the egd and see whether the source constraints collapse
// it. Returns:
//   true  -> the egd provably holds on every exchanged target;
//   false -> a counterexample source instance exists (returned via
//            `counterexample` when non-null).
Result<bool> ImpliesTargetEgd(const logic::Mapping& mapping,
                              const std::vector<logic::Egd>& source_egds,
                              const logic::Egd& target_egd,
                              instance::Instance* counterexample = nullptr);

}  // namespace mm2::runtime

#endif  // MM2_RUNTIME_CONSTRAINTS_H_
