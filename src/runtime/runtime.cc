#include "runtime/runtime.h"

#include <algorithm>
#include <set>
#include <utility>

#include "obs/obs.h"

namespace mm2::runtime {

using instance::Instance;
using instance::Tuple;
using instance::Value;

bool Delta::Empty() const {
  return inserts.TotalTuples() == 0 && deletes.TotalTuples() == 0;
}

std::size_t Delta::Size() const {
  return inserts.TotalTuples() + deletes.TotalTuples();
}

std::string Delta::ToString() const {
  std::string out;
  for (const auto& [name, rel] : inserts.relations()) {
    for (const Tuple& t : rel.tuples()) {
      out += "+" + name + instance::TupleToString(t) + "\n";
    }
  }
  for (const auto& [name, rel] : deletes.relations()) {
    for (const Tuple& t : rel.tuples()) {
      out += "-" + name + instance::TupleToString(t) + "\n";
    }
  }
  return out;
}

Delta DiffInstances(const Instance& before, const Instance& after) {
  Delta delta;
  delta.inserts = after.Minus(before);
  delta.deletes = before.Minus(after);
  return delta;
}

Status ApplyDelta(const Delta& delta, Instance* db) {
  for (const auto& [name, rel] : delta.deletes.relations()) {
    for (const Tuple& t : rel.tuples()) {
      MM2_RETURN_IF_ERROR(db->Erase(name, t));
    }
  }
  for (const auto& [name, rel] : delta.inserts.relations()) {
    if (!db->HasRelation(name)) db->DeclareRelation(name, rel.arity());
    for (const Tuple& t : rel.tuples()) {
      MM2_RETURN_IF_ERROR(db->Insert(name, t));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MaterializedView
// ---------------------------------------------------------------------------

MaterializedView::MaterializedView(std::string name, algebra::ExprRef view,
                                   algebra::Catalog catalog)
    : name_(std::move(name)),
      view_(std::move(view)),
      catalog_(std::move(catalog)) {}

Result<algebra::Table> MaterializedView::EvalOver(const Instance& db) const {
  return algebra::Evaluate(*view_, catalog_, db);
}

Status MaterializedView::Initialize(const Instance& base) {
  MM2_ASSIGN_OR_RETURN(current_, EvalOver(base));
  return Status::OK();
}

namespace {

bool TreeIsMonotonePipeline(const algebra::Expr& expr) {
  switch (expr.kind()) {
    case algebra::Expr::Kind::kScan:
      return true;
    case algebra::Expr::Kind::kSelect:
    case algebra::Expr::Kind::kProject:
    case algebra::Expr::Kind::kUnion: {
      for (const algebra::ExprRef& c : expr.children()) {
        if (!TreeIsMonotonePipeline(*c)) return false;
      }
      return true;
    }
    // Joins and difference are not per-row maintainable; Distinct loses
    // multiplicities; aggregates need group re-evaluation; Const would
    // leak its rows into delta evaluation.
    case algebra::Expr::Kind::kConst:
    case algebra::Expr::Kind::kJoin:
    case algebra::Expr::Kind::kDifference:
    case algebra::Expr::Kind::kDistinct:
    case algebra::Expr::Kind::kAggregate:
      return false;
  }
  return false;
}

// Removes one occurrence of each row of `rows` from `table`.
void RemoveRows(const std::vector<Tuple>& rows, algebra::Table* table) {
  for (const Tuple& row : rows) {
    for (auto it = table->rows.begin(); it != table->rows.end(); ++it) {
      if (*it == row) {
        table->rows.erase(it);
        break;
      }
    }
  }
}

Delta TableDelta(const std::string& name, const algebra::Table& before,
                 const algebra::Table& after) {
  // Set-semantics diff for notification purposes: sort + dedup both sides
  // once, then two linear set_difference passes — same enumeration order a
  // std::set rebuild produced (sorted), without the per-node allocations.
  std::vector<Tuple> b = before.rows;
  std::vector<Tuple> a = after.rows;
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::vector<Tuple> inserted;
  std::vector<Tuple> deleted;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(inserted));
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(deleted));
  Delta delta;
  delta.inserts.DeclareRelation(name, after.columns.size());
  delta.deletes.DeclareRelation(name, before.columns.size());
  for (const Tuple& t : inserted) delta.inserts.InsertUnchecked(name, t);
  for (const Tuple& t : deleted) delta.deletes.InsertUnchecked(name, t);
  return delta;
}

}  // namespace

bool MaterializedView::IsIncrementallyMaintainable() const {
  return TreeIsMonotonePipeline(*view_);
}

Result<Delta> MaterializedView::Update(const Instance& new_base,
                                       const Delta& base_delta) {
  if (IsIncrementallyMaintainable()) {
    // Monotone pipeline over set-semantics bases: the view image of the
    // base inserts/deletes IS the view delta, row for row — O(|delta|),
    // never touching the rest of the view.
    MM2_ASSIGN_OR_RETURN(algebra::Table plus,
                         EvalOver(base_delta.inserts));
    MM2_ASSIGN_OR_RETURN(algebra::Table minus,
                         EvalOver(base_delta.deletes));
    RemoveRows(minus.rows, &current_);
    Delta delta;
    delta.inserts.DeclareRelation(name_, current_.columns.size());
    delta.deletes.DeclareRelation(name_, current_.columns.size());
    for (Tuple& row : plus.rows) {
      delta.inserts.InsertUnchecked(name_, row);
      current_.rows.push_back(std::move(row));
    }
    for (Tuple& row : minus.rows) {
      delta.deletes.InsertUnchecked(name_, std::move(row));
    }
    return delta;
  }
  algebra::Table before = std::move(current_);
  MM2_ASSIGN_OR_RETURN(current_, EvalOver(new_base));
  return TableDelta(name_, before, current_);
}

// ---------------------------------------------------------------------------
// UpdatePropagator
// ---------------------------------------------------------------------------

UpdatePropagator::UpdatePropagator(
    transgen::CompiledViews views,
    std::vector<modelgen::MappingFragment> fragments, model::Schema er,
    model::Schema relational)
    : views_(std::move(views)),
      fragments_(std::move(fragments)),
      er_(std::move(er)),
      relational_(std::move(relational)) {}

Result<std::optional<std::pair<std::string, Tuple>>> UpdatePropagator::RowFor(
    const modelgen::MappingFragment& fragment, const Tuple& entity) const {
  using RowOpt = std::optional<std::pair<std::string, Tuple>>;
  if (fragment.entity_set != views_.entity_set) return RowOpt{};
  const std::string& type = entity[0].str();
  if (std::find(fragment.types.begin(), fragment.types.end(), type) ==
      fragment.types.end()) {
    return RowOpt{};
  }
  const model::Relation* table = relational_.FindRelation(fragment.table);
  if (table == nullptr) {
    return Status::Internal("fragment table '" + fragment.table +
                            "' missing");
  }
  Tuple row;
  row.reserve(table->arity());
  for (const model::Attribute& column : table->attributes()) {
    if (column.name == fragment.discriminator_column) {
      row.push_back(entity[0]);
      continue;
    }
    const std::string* attr = nullptr;
    for (const auto& [a, c] : fragment.attribute_map) {
      if (c == column.name) attr = &a;
    }
    if (attr == nullptr) {
      row.push_back(Value::Null());
      continue;
    }
    std::size_t idx = layout_.ColumnIndex(*attr);
    if (idx == instance::EntitySetLayout::kNpos) {
      return Status::Internal("fragment attribute '" + *attr +
                              "' missing from layout");
    }
    row.push_back(entity[1 + idx]);
  }
  return std::make_optional(std::make_pair(fragment.table, std::move(row)));
}

Status UpdatePropagator::Initialize(const Instance& entities) {
  const model::EntitySet* set = er_.FindEntitySet(views_.entity_set);
  if (set == nullptr) {
    return Status::NotFound("entity set '" + views_.entity_set +
                            "' not in ER schema");
  }
  MM2_ASSIGN_OR_RETURN(layout_,
                       instance::ComputeEntitySetLayout(er_, *set));
  entities_ = entities;
  tables_ = Instance();
  MM2_RETURN_IF_ERROR(transgen::ApplyUpdateViews(views_, er_, relational_,
                                                 entities_, &tables_));
  // Build per-table row reference counts: how many entities produce each
  // materialized row (DISTINCT semantics need the count to know when a
  // row truly disappears).
  row_counts_.clear();
  const instance::RelationInstance* extent =
      entities_.Find(views_.entity_set);
  if (extent != nullptr) {
    for (const Tuple& entity : extent->tuples()) {
      for (const modelgen::MappingFragment& fragment : fragments_) {
        MM2_ASSIGN_OR_RETURN(auto row, RowFor(fragment, entity));
        if (row.has_value()) ++row_counts_[row->first][row->second];
      }
    }
  }
  return Status::OK();
}

Result<std::map<std::string, Delta>> UpdatePropagator::Apply(
    const EntityOp& op) {
  // 1. Apply the entity operation to the extent.
  switch (op.kind) {
    case EntityOp::Kind::kInsert:
      MM2_RETURN_IF_ERROR(entities_.Insert(views_.entity_set, op.entity));
      break;
    case EntityOp::Kind::kDelete:
      MM2_RETURN_IF_ERROR(entities_.Erase(views_.entity_set, op.entity));
      break;
  }
  // 2. Incremental propagation: only the fragments covering this entity's
  // type contribute rows; reference counts decide visibility transitions.
  std::map<std::string, Delta> deltas;
  for (const modelgen::MappingFragment& fragment : fragments_) {
    MM2_ASSIGN_OR_RETURN(auto row, RowFor(fragment, op.entity));
    if (!row.has_value()) continue;
    const std::string& table = row->first;
    std::map<Tuple, std::size_t>& counts = row_counts_[table];
    Delta& delta = deltas[table];
    if (op.kind == EntityOp::Kind::kInsert) {
      if (++counts[row->second] == 1) {
        if (!tables_.HasRelation(table)) {
          tables_.DeclareRelation(table, row->second.size());
        }
        tables_.InsertUnchecked(table, row->second);
        if (!delta.inserts.HasRelation(table)) {
          delta.inserts.DeclareRelation(table, row->second.size());
        }
        delta.inserts.InsertUnchecked(table, row->second);
      }
    } else {
      auto it = counts.find(row->second);
      if (it == counts.end() || it->second == 0) {
        return Status::Internal("row count underflow on table '" + table +
                                "'");
      }
      if (--it->second == 0) {
        counts.erase(it);
        MM2_RETURN_IF_ERROR(tables_.Erase(table, row->second));
        if (!delta.deletes.HasRelation(table)) {
          delta.deletes.DeclareRelation(table, row->second.size());
        }
        delta.deletes.InsertUnchecked(table, row->second);
      }
    }
  }
  // Drop empty deltas, notify the rest.
  for (auto it = deltas.begin(); it != deltas.end();) {
    if (it->second.Empty()) {
      it = deltas.erase(it);
    } else {
      for (const TableListener& listener : listeners_) {
        listener(it->first, it->second);
      }
      ++it;
    }
  }
  return deltas;
}

void UpdatePropagator::Subscribe(TableListener listener) {
  listeners_.push_back(std::move(listener));
}

// ---------------------------------------------------------------------------
// ErrorTranslator
// ---------------------------------------------------------------------------

ErrorTranslator::ErrorTranslator(
    std::vector<modelgen::MappingFragment> fragments)
    : fragments_(std::move(fragments)) {}

std::string ErrorTranslator::EntityAttributeFor(
    const std::string& table, const std::string& column) const {
  for (const modelgen::MappingFragment& f : fragments_) {
    if (f.table != table) continue;
    for (const auto& [attr, col] : f.attribute_map) {
      if (col == column) return attr;
    }
  }
  return "";
}

std::string ErrorTranslator::Translate(const std::string& table,
                                       const std::string& column,
                                       const std::string& message) const {
  std::string attr = EntityAttributeFor(table, column);
  if (attr.empty()) {
    return "error on table " + table + "." + column + ": " + message +
           " (no entity-level mapping)";
  }
  // Which entity types does this touch?
  std::string types;
  for (const modelgen::MappingFragment& f : fragments_) {
    if (f.table != table) continue;
    for (const std::string& t : f.types) {
      if (!types.empty()) types += ", ";
      types += t;
    }
  }
  return "error on attribute " + attr + " of {" + types + "} (stored in " +
         table + "." + column + "): " + message;
}

// ---------------------------------------------------------------------------
// Provenance
// ---------------------------------------------------------------------------

std::string ExplainFact(const chase::ChaseResult& result,
                        const chase::Fact& fact) {
  const std::vector<chase::Witness>* witnesses =
      result.provenance.WitnessesOf(fact);
  if (witnesses == nullptr || witnesses->empty()) {
    return fact.ToString() + " has no recorded derivation";
  }
  std::string out = fact.ToString() + " because:\n";
  for (const chase::Witness& w : *witnesses) {
    out += "  <-";
    for (const chase::Fact& f : w) out += " " + f.ToString();
    out += "\n";
  }
  return out;
}

std::vector<chase::Fact> Lineage(const chase::ChaseResult& result,
                                 const chase::Fact& fact) {
  std::vector<chase::Fact> lineage;
  const std::vector<chase::Witness>* witnesses =
      result.provenance.WitnessesOf(fact);
  if (witnesses == nullptr) return lineage;
  std::set<chase::Fact> seen;
  for (const chase::Witness& w : *witnesses) {
    for (const chase::Fact& f : w) {
      if (seen.insert(f).second) lineage.push_back(f);
    }
  }
  return lineage;
}

// ---------------------------------------------------------------------------
// Exchange
// ---------------------------------------------------------------------------

Result<ExchangeResult> Exchange(const logic::Mapping& mapping,
                                const Instance& source,
                                const ExchangeOptions& options) {
  obs::ObsSpan span(options.obs, "exchange.run");
  span.SetAttribute("mapping", mapping.name());
  span.SetAttribute("source_tuples", source.TotalTuples());
  chase::ChaseOptions chase_options;
  chase_options.track_provenance = options.track_provenance;
  chase_options.naive = options.naive;
  chase_options.semi_naive = options.semi_naive;
  chase_options.stratified = options.stratified;
  chase_options.threads = options.threads;
  chase_options.storage = options.storage;
  chase_options.wall_budget_us = options.wall_budget_us;
  chase_options.tuple_budget = options.tuple_budget;
  chase_options.rss_budget_kb = options.rss_budget_kb;
  chase_options.cancel = options.cancel;
  chase_options.obs = options.obs;
  MM2_ASSIGN_OR_RETURN(chase::ChaseResult chased,
                       chase::RunChase(mapping, source, chase_options));
  ExchangeResult result;
  result.stats = chased.stats;
  result.provenance = std::move(chased.provenance);
  result.breach = std::move(chased.breach);
  // A breached chase produced a partial (non-universal) solution; core
  // minimization of it would be wasted work on a wrong premise, so keep
  // the partial target as-is for post-mortem inspection.
  if (options.compute_core && !result.breach.has_value()) {
    result.pre_core_tuples = chased.target.TotalTuples();
    result.target = chase::ComputeCore(chased.target, options.obs,
                                       options.threads, options.cancel);
  } else {
    result.target = std::move(chased.target);
  }
  span.SetAttribute("target_tuples", result.target.TotalTuples());
  if (result.breach.has_value()) {
    span.SetAttribute("breach", result.breach->kind);
  }
  return result;
}

}  // namespace mm2::runtime
